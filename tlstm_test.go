package tlstm_test

import (
	"sync"
	"testing"

	"tlstm"
)

// The facade must expose a complete, working surface: this exercises
// the documented quick-start plus every re-exported structure.
func TestQuickStartCompiles(t *testing.T) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 3})
	d := rt.Direct()
	counter := d.Alloc(1)

	thr := rt.NewThread()
	err := thr.Atomic(
		func(tk *tlstm.Task) { tk.Store(counter, tk.Load(counter)+1) },
		func(tk *tlstm.Task) { tk.Store(counter, tk.Load(counter)+1) },
	)
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if d.Load(counter) != 2 {
		t.Fatalf("counter = %d, want 2", d.Load(counter))
	}
}

func TestBaselineFacade(t *testing.T) {
	rt := tlstm.NewBaseline()
	var a tlstm.Addr
	rt.Atomic(nil, func(tx *tlstm.BaselineTx) {
		a = tx.Alloc(1)
		tlstm.StoreInt64(tx, a, -5)
	})
	rt.Atomic(nil, func(tx *tlstm.BaselineTx) {
		if tlstm.LoadInt64(tx, a) != -5 {
			t.Error("int64 round trip failed")
		}
	})
}

func TestCMFacade(t *testing.T) {
	for _, name := range []string{"suicide", "backoff", "greedy", "karma", "taskaware"} {
		pol, err := tlstm.NewCM(name)
		if err != nil {
			t.Fatalf("NewCM(%q): %v", name, err)
		}
		if pol == nil || pol.Name() != name {
			t.Fatalf("NewCM(%q) = %v", name, pol)
		}
	}
	if pol, err := tlstm.NewCM("default"); err != nil || pol != nil {
		t.Fatalf("NewCM(default) = (%v, %v), want (nil, nil)", pol, err)
	}
	if _, err := tlstm.NewCM("bogus"); err == nil {
		t.Fatal("NewCM must reject unknown policies")
	}

	// A runtime built on a named policy works end to end: baseline on
	// karma, TLSTM on backoff via Config.CM.
	karma, _ := tlstm.NewCM("karma")
	base := tlstm.NewBaselineWithCM(karma)
	var a tlstm.Addr
	base.Atomic(nil, func(tx *tlstm.BaselineTx) {
		a = tx.Alloc(1)
		tx.Store(a, 7)
	})
	if base.LoadWordRaw(a) != 7 {
		t.Fatal("karma baseline round trip failed")
	}

	backoff, _ := tlstm.NewCM("backoff")
	rt := tlstm.New(tlstm.Config{SpecDepth: 2, CM: backoff})
	defer rt.Close()
	d := rt.Direct()
	c := d.Alloc(1)
	thr := rt.NewThread()
	if err := thr.Atomic(
		func(tk *tlstm.Task) { tk.Store(c, tk.Load(c)+1) },
		func(tk *tlstm.Task) { tk.Store(c, tk.Load(c)+1) },
	); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if d.Load(c) != 2 {
		t.Fatalf("counter = %d, want 2", d.Load(c))
	}
}

func TestDataStructuresOnBothRuntimes(t *testing.T) {
	// TLSTM side.
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	d := rt.Direct()
	tree := tlstm.NewRBTree(d)
	list := tlstm.NewList(d)
	hmap := tlstm.NewHashMap(d, 8)

	thr := rt.NewThread()
	err := thr.Atomic(
		func(tk *tlstm.Task) {
			tree.Insert(tk, 1, 10)
			list.Insert(tk, 2, 20)
		},
		func(tk *tlstm.Task) {
			hmap.Insert(tk, 3, 30)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if v, ok := tree.Lookup(d, 1); !ok || v != 10 {
		t.Fatal("tree value lost")
	}
	if v, ok := list.Lookup(d, 2); !ok || v != 20 {
		t.Fatal("list value lost")
	}
	if v, ok := hmap.Lookup(d, 3); !ok || v != 30 {
		t.Fatal("map value lost")
	}

	// Baseline side, same structures.
	bl := tlstm.NewBaseline()
	bd := bl.Direct()
	tr2 := tlstm.NewRBTree(bd)
	bl.Atomic(nil, func(tx *tlstm.BaselineTx) { tr2.Insert(tx, 7, 70) })
	if v, ok := tr2.Lookup(bd, 7); !ok || v != 70 {
		t.Fatal("baseline tree value lost")
	}
}

func TestSubmitPipeline(t *testing.T) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 4})
	d := rt.Direct()
	a := d.Alloc(1)
	thr := rt.NewThread()
	var hs []tlstm.TxHandle
	for i := 0; i < 20; i++ {
		h, err := thr.Submit(func(tk *tlstm.Task) { tk.Store(a, tk.Load(a)+1) })
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for _, h := range hs {
		h.Wait()
	}
	thr.Sync()
	if d.Load(a) != 20 {
		t.Fatalf("counter = %d, want 20", d.Load(a))
	}
	st := thr.Stats()
	if st.TxCommitted != 20 {
		t.Fatalf("TxCommitted = %d", st.TxCommitted)
	}
}

func TestSpecDOALLViaFacade(t *testing.T) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 4})
	d := rt.Direct()
	const n = 32
	base := d.Alloc(n)
	thr := rt.NewThread()
	if err := thr.SpecDOALL(n, 4, func(tk *tlstm.Task, i int) {
		tk.Store(base+tlstm.Addr(i), uint64(i+1))
	}); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	for i := 0; i < n; i++ {
		if d.Load(base+tlstm.Addr(i)) != uint64(i+1) {
			t.Fatalf("iteration %d lost", i)
		}
	}
}

func TestNestViaFacade(t *testing.T) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 1})
	d := rt.Direct()
	a := d.Alloc(1)
	thr := rt.NewThread()
	if err := thr.Atomic(func(tk *tlstm.Task) {
		tk.Nest(func(tk *tlstm.Task) { tk.Store(a, 5) })
	}); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if d.Load(a) != 5 {
		t.Fatal("nested write lost")
	}
}

func TestMultipleThreadsViaFacade(t *testing.T) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	d := rt.Direct()
	a := d.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				_ = thr.Atomic(func(tk *tlstm.Task) { tk.Store(a, tk.Load(a)+1) })
			}
			thr.Sync()
		}()
	}
	wg.Wait()
	if d.Load(a) != 90 {
		t.Fatalf("counter = %d, want 90", d.Load(a))
	}
}

// The scheduler surface: Close drains worker pools, the Inline policy
// runs depth-1 transactions on the caller, and the scheduler counters
// reach the public Stats.
func TestSchedulerFacade(t *testing.T) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	d := rt.Direct()
	a := d.Alloc(1)
	thr := rt.NewThread()
	for i := 0; i < 5; i++ {
		if err := thr.Atomic(func(tk *tlstm.Task) { tk.Store(a, tk.Load(a)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	st := thr.Stats()
	if st.WorkersSpawned == 0 || st.DescriptorReuses == 0 {
		t.Fatalf("scheduler counters missing from public Stats: %+v", st)
	}
	rt.Close()
	rt.Close() // idempotent

	ir := tlstm.New(tlstm.Config{SpecDepth: 1, Policy: tlstm.SchedInline})
	defer ir.Close()
	if ir.Policy() != tlstm.SchedInline {
		t.Fatalf("Policy = %v, want %v", ir.Policy(), tlstm.SchedInline)
	}
	ithr := ir.NewThread()
	b := ir.Direct().Alloc(1)
	h, err := ithr.Submit(func(tk *tlstm.Task) { tk.Store(b, 7) })
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	h.Wait() // idempotent: serial-keyed, not channel-keyed
	ithr.Sync()
	if got := ir.Direct().Load(b); got != 7 {
		t.Fatalf("inline store = %d, want 7", got)
	}
	if st := ithr.Stats(); st.WorkersSpawned != 0 {
		t.Fatalf("inline policy spawned %d workers", st.WorkersSpawned)
	}
}
