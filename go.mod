module tlstm

go 1.22
