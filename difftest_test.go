package tlstm_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/core"
	"tlstm/internal/mode"
	"tlstm/internal/stm"
	"tlstm/internal/tl2"
	"tlstm/internal/tm"
	"tlstm/internal/txcheck"
	"tlstm/internal/txtrace"
	"tlstm/internal/wtstm"
)

// Differential testing: the same deterministic workload executed on the
// SwissTM baseline, the TL2 baseline and TLSTM (at several speculative
// depths) — each under every commit-clock strategy — must leave the
// word store in exactly the same state. A divergence pinpoints a
// semantics bug in one runtime (or one clock strategy).

// diffOp is one step of a deterministic single-thread program.
type diffOp struct {
	kind int // 0: w[dst] = w[src]+k; 1: w[dst] = w[src]*3+k; 2: swap
	src  uint8
	dst  uint8
	k    uint8
}

const diffWords = 48

func applyOp(tx tm.Tx, base tm.Addr, op diffOp) {
	src := base + tm.Addr(op.src%diffWords)
	dst := base + tm.Addr(op.dst%diffWords)
	switch op.kind % 3 {
	case 0:
		tx.Store(dst, tx.Load(src)+uint64(op.k))
	case 1:
		tx.Store(dst, tx.Load(src)*3+uint64(op.k))
	default:
		a, b := tx.Load(src), tx.Load(dst)
		tx.Store(src, b)
		tx.Store(dst, a)
	}
}

// genProgram builds a random program of transactions (each a short op
// list) from a seed.
func genProgram(seed int64, txs int) [][]diffOp {
	rng := rand.New(rand.NewSource(seed))
	prog := make([][]diffOp, txs)
	for i := range prog {
		n := 1 + rng.Intn(6)
		ops := make([]diffOp, n)
		for j := range ops {
			ops[j] = diffOp{
				kind: rng.Intn(3),
				src:  uint8(rng.Intn(diffWords)),
				dst:  uint8(rng.Intn(diffWords)),
				k:    uint8(1 + rng.Intn(7)),
			}
		}
		prog[i] = ops
	}
	return prog
}

func snapshot(d tm.Tx, base tm.Addr) [diffWords]uint64 {
	var m [diffWords]uint64
	for i := range m {
		m[i] = d.Load(base + tm.Addr(i))
	}
	return m
}

func runOnSTM(prog [][]diffOp, kind clock.Kind, pol cm.Kind) [diffWords]uint64 {
	rt := stm.New(stm.WithClock(clock.New(kind)), stm.WithCM(cm.New(pol)))
	base := rt.Direct().Alloc(diffWords)
	for _, ops := range prog {
		ops := ops
		rt.Atomic(nil, func(tx *stm.Tx) {
			for _, op := range ops {
				applyOp(tx, base, op)
			}
		})
	}
	return snapshot(rt.Direct(), base)
}

func runOnTL2(prog [][]diffOp, kind clock.Kind, pol cm.Kind) [diffWords]uint64 {
	rt := tl2.New(16, tl2.WithClock(clock.New(kind)), tl2.WithCM(cm.New(pol)))
	base := rt.Direct().Alloc(diffWords)
	for _, ops := range prog {
		ops := ops
		rt.Atomic(nil, func(tx *tl2.Tx) {
			for _, op := range ops {
				applyOp(tx, base, op)
			}
		})
	}
	return snapshot(rt.Direct(), base)
}

func runOnWriteThrough(prog [][]diffOp, kind clock.Kind, pol cm.Kind) [diffWords]uint64 {
	rt := wtstm.New(16, wtstm.WithClock(clock.New(kind)), wtstm.WithCM(cm.New(pol)))
	base := rt.Direct().Alloc(diffWords)
	for _, ops := range prog {
		ops := ops
		rt.Atomic(nil, func(tx *wtstm.Tx) {
			for _, op := range ops {
				applyOp(tx, base, op)
			}
		})
	}
	return snapshot(rt.Direct(), base)
}

func runOnTLSTM(prog [][]diffOp, depth int, split bool, kind clock.Kind, pol cm.Kind) [diffWords]uint64 {
	return runOnTLSTMCfg(prog, split, core.Config{SpecDepth: depth, LockTableBits: 14, Clock: clock.New(kind), CM: cm.New(pol)})
}

func runOnTLSTMCfg(prog [][]diffOp, split bool, cfg core.Config) [diffWords]uint64 {
	rt := core.New(cfg)
	defer rt.Close() // drain the pooled workers; difftests build many runtimes
	depth := cfg.SpecDepth
	base := rt.Direct().Alloc(diffWords)
	thr := rt.NewThread()
	for _, ops := range prog {
		var fns []core.TaskFunc
		if split && len(ops) > 1 && depth > 1 {
			mid := len(ops) / 2
			first, second := ops[:mid], ops[mid:]
			fns = []core.TaskFunc{
				func(tk *core.Task) {
					for _, op := range first {
						applyOp(tk, base, op)
					}
				},
				func(tk *core.Task) {
					for _, op := range second {
						applyOp(tk, base, op)
					}
				},
			}
		} else {
			ops := ops
			fns = []core.TaskFunc{func(tk *core.Task) {
				for _, op := range ops {
					applyOp(tk, base, op)
				}
			}}
		}
		if _, err := thr.Submit(fns...); err != nil {
			panic(err)
		}
	}
	thr.Sync()
	return snapshot(rt.Direct(), base)
}

// The multi-version leg interleaves a declared read-only audit scan
// after every write transaction, with the version store enabled at the
// degenerate depth K=1. The runs are sequential, so each scan's sum is
// a deterministic function of the program prefix: every runtime must
// produce the same final state AND the same per-step scan sums as the
// multi-version-free reference — any stale, torn or mis-indexed version
// served by the wait-free path shows up as a sum divergence.

func runOnSTMMV(prog [][]diffOp) ([diffWords]uint64, []uint64) {
	rt := stm.New(stm.WithMultiVersion(1))
	base := rt.Direct().Alloc(diffWords)
	sums := make([]uint64, len(prog))
	for i, ops := range prog {
		ops := ops
		rt.Atomic(nil, func(tx *stm.Tx) {
			for _, op := range ops {
				applyOp(tx, base, op)
			}
		})
		i := i
		rt.AtomicRO(nil, func(tx *stm.Tx) {
			var s uint64
			for j := 0; j < diffWords; j++ {
				s += tx.Load(base + tm.Addr(j))
			}
			sums[i] = s
		})
	}
	return snapshot(rt.Direct(), base), sums
}

func runOnTL2MV(prog [][]diffOp) ([diffWords]uint64, []uint64) {
	rt := tl2.New(16, tl2.WithMultiVersion(1))
	base := rt.Direct().Alloc(diffWords)
	sums := make([]uint64, len(prog))
	for i, ops := range prog {
		ops := ops
		rt.Atomic(nil, func(tx *tl2.Tx) {
			for _, op := range ops {
				applyOp(tx, base, op)
			}
		})
		i := i
		rt.AtomicRO(nil, func(tx *tl2.Tx) {
			var s uint64
			for j := 0; j < diffWords; j++ {
				s += tx.Load(base + tm.Addr(j))
			}
			sums[i] = s
		})
	}
	return snapshot(rt.Direct(), base), sums
}

func runOnWriteThroughMV(prog [][]diffOp) ([diffWords]uint64, []uint64) {
	rt := wtstm.New(16, wtstm.WithMultiVersion(1))
	base := rt.Direct().Alloc(diffWords)
	sums := make([]uint64, len(prog))
	for i, ops := range prog {
		ops := ops
		rt.Atomic(nil, func(tx *wtstm.Tx) {
			for _, op := range ops {
				applyOp(tx, base, op)
			}
		})
		i := i
		rt.AtomicRO(nil, func(tx *wtstm.Tx) {
			var s uint64
			for j := 0; j < diffWords; j++ {
				s += tx.Load(base + tm.Addr(j))
			}
			sums[i] = s
		})
	}
	return snapshot(rt.Direct(), base), sums
}

// runOnTLSTMMV pipelines the program through a depth-2 TLSTM thread
// with MVDepth 1, a read-only scan submitted after every write
// transaction. Scans overlap in-flight writers here, so the wait-free
// path's own-thread hazard check (pending redo chains force a validated
// fallback) is exercised, not just the quiet case.
func runOnTLSTMMV(prog [][]diffOp, split bool) ([diffWords]uint64, []uint64) {
	rt := core.New(core.Config{SpecDepth: 2, LockTableBits: 14, MVDepth: 1})
	defer rt.Close()
	base := rt.Direct().Alloc(diffWords)
	thr := rt.NewThread()
	sums := make([]uint64, len(prog))
	for i, ops := range prog {
		var fns []core.TaskFunc
		if split && len(ops) > 1 {
			mid := len(ops) / 2
			first, second := ops[:mid], ops[mid:]
			fns = []core.TaskFunc{
				func(tk *core.Task) {
					for _, op := range first {
						applyOp(tk, base, op)
					}
				},
				func(tk *core.Task) {
					for _, op := range second {
						applyOp(tk, base, op)
					}
				},
			}
		} else {
			ops := ops
			fns = []core.TaskFunc{func(tk *core.Task) {
				for _, op := range ops {
					applyOp(tk, base, op)
				}
			}}
		}
		if _, err := thr.Submit(fns...); err != nil {
			panic(err)
		}
		i := i
		if _, err := thr.SubmitRO(func(tk *core.Task) {
			var s uint64
			for j := 0; j < diffWords; j++ {
				s += tk.Load(base + tm.Addr(j))
			}
			sums[i] = s
		}); err != nil {
			panic(err)
		}
	}
	thr.Sync()
	return snapshot(rt.Direct(), base), sums
}

func TestDifferentialMultiVersion(t *testing.T) {
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		prog := genProgram(seed+200, 30)
		want := runOnSTM(prog, clock.KindGV4, cm.KindDefault)

		gotSTM, wantSums := runOnSTMMV(prog)
		if gotSTM != want {
			t.Fatalf("seed %d: SwissTM/mv1 diverges from plain SwissTM\n got: %v\nwant: %v", seed, gotSTM, want)
		}
		check := func(name string, got [diffWords]uint64, sums []uint64) {
			if got != want {
				t.Fatalf("seed %d: %s/mv1 diverges\n got: %v\nwant: %v", seed, name, got, want)
			}
			for i := range sums {
				if sums[i] != wantSums[i] {
					t.Fatalf("seed %d: %s/mv1 scan %d saw sum %d, want %d (stale or torn version served)",
						seed, name, i, sums[i], wantSums[i])
				}
			}
		}
		got, sums := runOnTL2MV(prog)
		check("TL2", got, sums)
		got, sums = runOnWriteThroughMV(prog)
		check("write-through", got, sums)
		for _, split := range []bool{false, true} {
			got, sums = runOnTLSTMMV(prog, split)
			check(fmt.Sprintf("TLSTM(split=%v)", split), got, sums)
		}
	}
}

// TestDifferentialAggressiveReclamation is the entry-reclamation leg:
// the sequential-equivalence workload re-run on TLSTM with reclamation
// forced aggressive — quiescence rings capped at one slot, the horizon
// consulted on every retire, and the reclamation invariant checker
// armed — so write-lock entries are recycled on (almost) every commit
// rather than only under pipelined load. Any recycle that broke
// validate-task's pointer-identity check (the ABA the horizon rules
// out) would surface here as a state divergence from the SwissTM
// reference, and any horizon violation as an audit panic.
func TestDifferentialAggressiveReclamation(t *testing.T) {
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		prog := genProgram(seed+50, 30)
		want := runOnSTM(prog, clock.KindGV4, cm.KindDefault)
		for _, depth := range []int{2, 4} {
			for _, split := range []bool{false, true} {
				cfg := core.Config{
					SpecDepth: depth, LockTableBits: 14,
					Clock: clock.New(clock.KindGV4), CM: cm.New(cm.KindDefault),
					ReclaimRing: 1, ReclaimAudit: true,
				}
				if got := runOnTLSTMCfg(prog, split, cfg); got != want {
					t.Fatalf("seed %d: TLSTM depth %d (split=%v, aggressive reclaim) diverges\n got: %v\nwant: %v",
						seed, depth, split, got, want)
				}
			}
		}
	}
}

// TestDifferentialCMPolicies is the contention-management leg: the same
// deterministic programs, executed under every policy on every runtime
// (TLSTM at depth 2 both unsplit and split, so the task-aware decorator
// sees real task structure), must be sequentially equivalent — byte for
// byte the state the default-policy SwissTM/gv4 run produces. The
// default TaskAware policy on core doubles as the bit-for-bit
// regression against the pre-subsystem behavior.
func TestDifferentialCMPolicies(t *testing.T) {
	const seeds = 6
	progs := make([][][]diffOp, seeds)
	wants := make([][diffWords]uint64, seeds)
	for i := range progs {
		progs[i] = genProgram(int64(i+100), 30)
		wants[i] = runOnSTM(progs[i], clock.KindGV4, cm.KindDefault)
	}
	for _, pol := range cm.Kinds() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				prog, want := progs[seed], wants[seed]
				if got := runOnSTM(prog, clock.KindGV4, pol); got != want {
					t.Fatalf("seed %d: SwissTM/%v diverges\n got: %v\nwant: %v", seed, pol, got, want)
				}
				if got := runOnTL2(prog, clock.KindGV4, pol); got != want {
					t.Fatalf("seed %d: TL2/%v diverges\n got: %v\nwant: %v", seed, pol, got, want)
				}
				if got := runOnWriteThrough(prog, clock.KindGV4, pol); got != want {
					t.Fatalf("seed %d: write-through/%v diverges\n got: %v\nwant: %v", seed, pol, got, want)
				}
				for _, split := range []bool{false, true} {
					if got := runOnTLSTM(prog, 2, split, clock.KindGV4, pol); got != want {
						t.Fatalf("seed %d: TLSTM/%v (split=%v) diverges\n got: %v\nwant: %v", seed, pol, split, got, want)
					}
				}
			}
		})
	}
}

func TestDifferentialRuntimes(t *testing.T) {
	// The reference state comes from the GV4 baseline run, computed
	// once per seed and shared by every strategy subtest, so every
	// strategy is also compared across strategies, not just across
	// runtimes.
	const seeds = 12
	progs := make([][][]diffOp, seeds)
	wants := make([][diffWords]uint64, seeds)
	for i := range progs {
		progs[i] = genProgram(int64(i+1), 30)
		wants[i] = runOnSTM(progs[i], clock.KindGV4, cm.KindDefault)
	}
	for _, kind := range clock.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				prog, want := progs[seed-1], wants[seed-1]

				if got := runOnSTM(prog, kind, cm.KindDefault); got != want {
					t.Fatalf("seed %d: SwissTM/%v diverges from SwissTM/gv4\n got: %v\nwant: %v", seed, kind, got, want)
				}
				if got := runOnTL2(prog, kind, cm.KindDefault); got != want {
					t.Fatalf("seed %d: TL2/%v diverges from SwissTM\n tl2: %v\n stm: %v", seed, kind, got, want)
				}
				if got := runOnWriteThrough(prog, kind, cm.KindDefault); got != want {
					t.Fatalf("seed %d: write-through/%v diverges from SwissTM\n  wt: %v\n stm: %v", seed, kind, got, want)
				}
				for _, depth := range []int{1, 2, 4} {
					if got := runOnTLSTM(prog, depth, false, kind, cm.KindDefault); got != want {
						t.Fatalf("seed %d: TLSTM/%v depth %d (unsplit) diverges\n got: %v\nwant: %v", seed, kind, depth, got, want)
					}
				}
				for _, depth := range []int{2, 4} {
					if got := runOnTLSTM(prog, depth, true, kind, cm.KindDefault); got != want {
						t.Fatalf("seed %d: TLSTM/%v depth %d (split) diverges\n got: %v\nwant: %v", seed, kind, depth, got, want)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Lock-table geometry leg
// ---------------------------------------------------------------------------

// TestDifferentialSharding is the lock-table geometry leg: the same
// deterministic programs, executed with the lock table sharded (and
// with the affinity placement remapping threads mid-run, and with
// cache-line padding where the runtime supports it), must be
// sequentially equivalent to the flat-table SwissTM/gv4 reference.
// Sharding only relabels pairs for conflict attribution — address→pair
// resolution is identical at every geometry — so any divergence here
// means a remap or a padded stride leaked into semantics.
func TestDifferentialSharding(t *testing.T) {
	const seeds = 6
	type leg struct {
		name     string
		shards   int
		affinity bool
		padded   bool
	}
	legs := []leg{
		{"s4-static", 4, false, false},
		{"s4-affinity", 4, true, false},
		{"s1-padded", 1, false, true},
		{"s8-affinity-padded", 8, true, true},
	}
	for _, l := range legs {
		l := l
		t.Run(l.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				prog := genProgram(seed+400, 30)
				want := runOnSTM(prog, clock.KindGV4, cm.KindDefault)

				{
					rt := stm.New(stm.WithShards(l.shards), stm.WithAffinity(l.affinity),
						stm.WithPaddedLockTable(l.padded))
					base := rt.Direct().Alloc(diffWords)
					for _, ops := range prog {
						ops := ops
						rt.Atomic(nil, func(tx *stm.Tx) {
							for _, op := range ops {
								applyOp(tx, base, op)
							}
						})
					}
					if got := snapshot(rt.Direct(), base); got != want {
						t.Fatalf("seed %d: SwissTM/%s diverges\n got: %v\nwant: %v", seed, l.name, got, want)
					}
				}
				{
					rt := tl2.New(16, tl2.WithShards(l.shards), tl2.WithAffinity(l.affinity))
					base := rt.Direct().Alloc(diffWords)
					for _, ops := range prog {
						ops := ops
						rt.Atomic(nil, func(tx *tl2.Tx) {
							for _, op := range ops {
								applyOp(tx, base, op)
							}
						})
					}
					if got := snapshot(rt.Direct(), base); got != want {
						t.Fatalf("seed %d: TL2/%s diverges\n got: %v\nwant: %v", seed, l.name, got, want)
					}
				}
				{
					rt := wtstm.New(16, wtstm.WithShards(l.shards), wtstm.WithAffinity(l.affinity))
					base := rt.Direct().Alloc(diffWords)
					for _, ops := range prog {
						ops := ops
						rt.Atomic(nil, func(tx *wtstm.Tx) {
							for _, op := range ops {
								applyOp(tx, base, op)
							}
						})
					}
					if got := snapshot(rt.Direct(), base); got != want {
						t.Fatalf("seed %d: write-through/%s diverges\n got: %v\nwant: %v", seed, l.name, got, want)
					}
				}
				for _, split := range []bool{false, true} {
					cfg := core.Config{
						SpecDepth: 2, LockTableBits: 14,
						Shards: l.shards, Affinity: l.affinity, PadLockTable: l.padded,
					}
					if got := runOnTLSTMCfg(prog, split, cfg); got != want {
						t.Fatalf("seed %d: TLSTM/%s (split=%v) diverges\n got: %v\nwant: %v",
							seed, l.name, split, got, want)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Tracing leg
// ---------------------------------------------------------------------------

// TestDifferentialTracing is the observability leg: the same programs,
// re-run with the flight recorder armed on every runtime (TLSTM at
// depth 2, split, so tracing covers real task structure), must produce
// bit-identical final state — tracing is pure observation. Each
// recorder's dump must also round-trip through the binary format with
// its structural invariants (monotonic sequences, known kinds) intact.
func TestDifferentialTracing(t *testing.T) {
	const seeds = 4
	for seed := int64(0); seed < seeds; seed++ {
		prog := genProgram(seed+300, 30)
		want := runOnSTM(prog, clock.KindGV4, cm.KindDefault)

		check := func(name string, got [diffWords]uint64, rec *txtrace.Recorder) {
			t.Helper()
			if got != want {
				t.Fatalf("seed %d: %s traced run diverges\n got: %v\nwant: %v", seed, name, got, want)
			}
			var buf bytes.Buffer
			if err := rec.Dump(&buf); err != nil {
				t.Fatalf("seed %d: %s dump: %v", seed, name, err)
			}
			tr, err := txtrace.ReadTrace(&buf)
			if err != nil {
				t.Fatalf("seed %d: %s trace round-trip: %v", seed, name, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("seed %d: %s trace invalid: %v", seed, name, err)
			}
			if rec.Events() == 0 {
				t.Fatalf("seed %d: %s recorded no events", seed, name)
			}
			rep, err := txcheck.Check(tr)
			if err != nil {
				t.Fatalf("seed %d: %s opacity check: %v", seed, name, err)
			}
			if !rep.Ok() {
				for _, v := range rep.Violations {
					t.Errorf("seed %d: %s ring %q seq %d: %s: %s",
						seed, name, v.Ring, v.Seq, v.Code, v.Msg)
				}
				t.Fatalf("seed %d: %s opacity violated (%d violations)", seed, name, len(rep.Violations))
			}
			// These runs are short enough to fit entirely in the rings,
			// so the checker must see the whole history, not a suffix.
			if !rep.Complete() {
				t.Fatalf("seed %d: %s verdict partial (dropped=%d) on a drop-free run",
					seed, name, rep.DroppedEvents)
			}
			if rep.TxsChecked == 0 || rep.ReadsChecked == 0 {
				t.Fatalf("seed %d: %s checker saw no work (txs=%d reads=%d)",
					seed, name, rep.TxsChecked, rep.ReadsChecked)
			}
		}

		{
			rec := txtrace.NewRecorder(1 << 10)
			rt := stm.New(stm.WithTrace(rec))
			base := rt.Direct().Alloc(diffWords)
			for _, ops := range prog {
				ops := ops
				rt.Atomic(nil, func(tx *stm.Tx) {
					for _, op := range ops {
						applyOp(tx, base, op)
					}
				})
			}
			check("SwissTM", snapshot(rt.Direct(), base), rec)
		}
		{
			rec := txtrace.NewRecorder(1 << 10)
			rt := tl2.New(16, tl2.WithTrace(rec))
			base := rt.Direct().Alloc(diffWords)
			for _, ops := range prog {
				ops := ops
				rt.Atomic(nil, func(tx *tl2.Tx) {
					for _, op := range ops {
						applyOp(tx, base, op)
					}
				})
			}
			check("TL2", snapshot(rt.Direct(), base), rec)
		}
		{
			rec := txtrace.NewRecorder(1 << 10)
			rt := wtstm.New(16, wtstm.WithTrace(rec))
			base := rt.Direct().Alloc(diffWords)
			for _, ops := range prog {
				ops := ops
				rt.Atomic(nil, func(tx *wtstm.Tx) {
					for _, op := range ops {
						applyOp(tx, base, op)
					}
				})
			}
			check("write-through", snapshot(rt.Direct(), base), rec)
		}
		{
			rec := txtrace.NewRecorder(1 << 10)
			cfg := core.Config{SpecDepth: 2, LockTableBits: 14, Trace: rec}
			got := runOnTLSTMCfg(prog, true, cfg)
			check("TLSTM", got, rec)
		}
	}
}

// ---------------------------------------------------------------------------
// Execution-mode ladder leg
// ---------------------------------------------------------------------------

// TestDifferentialModeLadder is the mode-ladder leg: the same programs
// under a forced ladder (every full window falls back, every served
// residency recovers), traced and pushed through the opacity checker on
// all four runtimes. The runs oscillate speculative↔serialized many
// times mid-program, so the leg proves the rung transitions are pure
// scheduling — bit-identical final state, zero opacity violations,
// complete verdicts — and the trace must actually contain both
// directions of KindModeShift, or the ladder never engaged and the leg
// proved nothing.
func TestDifferentialModeLadder(t *testing.T) {
	forced := mode.Config{Policy: mode.Adaptive, Window: 2, SerialWindow: 2, FallbackRatio: -1}
	const seeds = 4
	for seed := int64(0); seed < seeds; seed++ {
		prog := genProgram(seed+500, 30)
		want := runOnSTM(prog, clock.KindGV4, cm.KindDefault)

		check := func(name string, got [diffWords]uint64, rec *txtrace.Recorder) {
			t.Helper()
			if got != want {
				t.Fatalf("seed %d: %s ladder run diverges\n got: %v\nwant: %v", seed, name, got, want)
			}
			var buf bytes.Buffer
			if err := rec.Dump(&buf); err != nil {
				t.Fatalf("seed %d: %s dump: %v", seed, name, err)
			}
			tr, err := txtrace.ReadTrace(&buf)
			if err != nil {
				t.Fatalf("seed %d: %s trace round-trip: %v", seed, name, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("seed %d: %s trace invalid: %v", seed, name, err)
			}
			var fallbacks, recoveries int
			for _, rd := range tr.Rings {
				for _, e := range rd.Events {
					if txtrace.Kind(e.Kind) == txtrace.KindModeShift {
						if mode.State(e.Arg) == mode.StateSerial {
							fallbacks++
						} else {
							recoveries++
						}
					}
				}
			}
			if fallbacks == 0 || recoveries == 0 {
				t.Fatalf("seed %d: %s forced ladder never oscillated (fallbacks=%d recoveries=%d)",
					seed, name, fallbacks, recoveries)
			}
			rep, err := txcheck.Check(tr)
			if err != nil {
				t.Fatalf("seed %d: %s opacity check: %v", seed, name, err)
			}
			if !rep.Ok() {
				for _, v := range rep.Violations {
					t.Errorf("seed %d: %s ring %q seq %d: %s: %s",
						seed, name, v.Ring, v.Seq, v.Code, v.Msg)
				}
				t.Fatalf("seed %d: %s opacity violated across rung transitions (%d violations)",
					seed, name, len(rep.Violations))
			}
			if !rep.Complete() {
				t.Fatalf("seed %d: %s verdict partial (dropped=%d) on a drop-free run",
					seed, name, rep.DroppedEvents)
			}
			if rep.TxsChecked == 0 {
				t.Fatalf("seed %d: %s checker saw no transactions", seed, name)
			}
		}

		{
			rec := txtrace.NewRecorder(1 << 10)
			rt := stm.New(stm.WithTrace(rec), stm.WithMode(forced))
			base := rt.Direct().Alloc(diffWords)
			for _, ops := range prog {
				ops := ops
				rt.Atomic(nil, func(tx *stm.Tx) {
					for _, op := range ops {
						applyOp(tx, base, op)
					}
				})
			}
			check("SwissTM", snapshot(rt.Direct(), base), rec)
		}
		{
			rec := txtrace.NewRecorder(1 << 10)
			rt := tl2.New(16, tl2.WithTrace(rec), tl2.WithMode(forced))
			base := rt.Direct().Alloc(diffWords)
			// TL2/write-through hang the ladder controller off the
			// caller-owned Stats shard; a nil shard runs modeless.
			st := &tl2.Stats{}
			for _, ops := range prog {
				ops := ops
				rt.Atomic(st, func(tx *tl2.Tx) {
					for _, op := range ops {
						applyOp(tx, base, op)
					}
				})
			}
			check("TL2", snapshot(rt.Direct(), base), rec)
		}
		{
			rec := txtrace.NewRecorder(1 << 10)
			rt := wtstm.New(16, wtstm.WithTrace(rec), wtstm.WithMode(forced))
			base := rt.Direct().Alloc(diffWords)
			st := &wtstm.Stats{}
			for _, ops := range prog {
				ops := ops
				rt.Atomic(st, func(tx *wtstm.Tx) {
					for _, op := range ops {
						applyOp(tx, base, op)
					}
				})
			}
			check("write-through", snapshot(rt.Direct(), base), rec)
		}
		for _, split := range []bool{false, true} {
			rec := txtrace.NewRecorder(1 << 10)
			cfg := core.Config{SpecDepth: 2, LockTableBits: 14, Trace: rec, Mode: forced}
			got := runOnTLSTMCfg(prog, split, cfg)
			check(fmt.Sprintf("TLSTM(split=%v)", split), got, rec)
		}
	}
}
