// Package mem implements the word-addressed shared memory both runtimes
// operate on: a paged store of 64-bit words with atomic word access, plus
// a free-list allocator with malloc-style block headers.
//
// The store stands in for raw process memory in the paper's C++
// prototype. SwissTM and TLSTM are word-based systems — every conflict is
// detected at word granularity through a lock table keyed by address — so
// a word store with atomic loads and stores exposes exactly the memory
// model the algorithms need, while staying free of data races under the
// Go memory model (speculative readers may race with committing writers
// on the same word; both sides use sync/atomic).
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tlstm/internal/tm"
)

const (
	// pageBits fixes the page size at 2^pageBits words (512 KiB pages).
	pageBits  = 16
	pageWords = 1 << pageBits
	pageMask  = pageWords - 1
)

// page is one fixed-size block of words. Words are accessed only through
// sync/atomic so that speculative readers and committing writers never
// constitute a data race.
type page [pageWords]uint64

// Store is a growable word store. The zero value is not usable; call
// NewStore.
type Store struct {
	// dir is the page directory. Grown copy-on-write under growMu;
	// readers load it atomically and never mutate it.
	dir atomic.Pointer[[]*page]

	growMu sync.Mutex

	// next is the bump pointer for never-before-allocated words.
	// Address 0 is reserved as the nil address.
	next atomic.Uint64
}

// NewStore returns an empty store with one page mapped.
func NewStore() *Store {
	s := &Store{}
	d := make([]*page, 1)
	d[0] = new(page)
	s.dir.Store(&d)
	s.next.Store(1) // keep address 0 unused (tm.NilAddr)
	return s
}

// LoadWord atomically reads the word at a. The address must have been
// produced by an allocator backed by this store.
func (s *Store) LoadWord(a tm.Addr) uint64 {
	p := s.pageFor(a)
	return atomic.LoadUint64(&p[uint64(a)&pageMask])
}

// StoreWord atomically writes v to the word at a.
func (s *Store) StoreWord(a tm.Addr, v uint64) {
	p := s.pageFor(a)
	atomic.StoreUint64(&p[uint64(a)&pageMask], v)
}

func (s *Store) pageFor(a tm.Addr) *page {
	dir := *s.dir.Load()
	idx := uint64(a) >> pageBits
	if idx >= uint64(len(dir)) {
		panic(fmt.Sprintf("mem: address %#x beyond mapped memory (%d pages)", uint64(a), len(dir)))
	}
	return dir[idx]
}

// reserve claims n fresh words and maps pages as needed, returning the
// base address of the run.
func (s *Store) reserve(n uint64) tm.Addr {
	base := s.next.Add(n) - n
	last := base + n - 1
	for {
		dir := *s.dir.Load()
		if (last >> pageBits) < uint64(len(dir)) {
			return tm.Addr(base)
		}
		s.grow(last >> pageBits)
	}
}

func (s *Store) grow(pageIdx uint64) {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	dir := *s.dir.Load()
	if pageIdx < uint64(len(dir)) {
		return
	}
	nd := make([]*page, pageIdx+1)
	copy(nd, dir)
	for i := len(dir); i < len(nd); i++ {
		nd[i] = new(page)
	}
	s.dir.Store(&nd)
}

// MappedWords reports how many words have been reserved so far (an upper
// bound on live data; used by tests and stats).
func (s *Store) MappedWords() uint64 { return s.next.Load() }
