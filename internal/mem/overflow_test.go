package mem

import (
	"sync"
	"testing"

	"tlstm/internal/tm"
)

// Deeper coverage of the allocator's overflow path (blocks larger than
// maxSizeClass live on a single first-fit list) and of the store's
// reserve/grow concurrency.

// First-fit must skip overflow blocks that are too small and reuse the
// first one large enough.
func TestOverflowFirstFitSkipsTooSmall(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)

	small := al.Alloc(maxSizeClass + 10)
	large := al.Alloc(maxSizeClass + 500)
	al.Free(small)
	al.Free(large)

	got := al.Alloc(maxSizeClass + 100)
	if got != large {
		t.Fatalf("Alloc(%d) = %#x, want the large overflow block %#x (small %#x cannot fit)",
			maxSizeClass+100, got, large, small)
	}
	// The small block must still be reusable for a fitting request.
	if got := al.Alloc(maxSizeClass + 5); got != small {
		t.Fatalf("small overflow block not reused: got %#x want %#x", got, small)
	}
}

// A reused overflow block keeps its original header: BlockSize reports
// the size it was created with, not the smaller re-request, and the
// header word sits at base−1 exactly like a malloc header.
func TestOverflowHeaderSemantics(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)

	const orig = maxSizeClass + 300
	a := al.Alloc(orig)
	if al.BlockSize(a) != orig {
		t.Fatalf("BlockSize = %d, want %d", al.BlockSize(a), orig)
	}
	if hdr := s.LoadWord(a - headerWords); hdr != orig {
		t.Fatalf("header word = %d, want %d", hdr, orig)
	}

	al.Free(a)
	again := al.Alloc(maxSizeClass + 50)
	if again != a {
		t.Fatalf("expected first-fit reuse of %#x, got %#x", a, again)
	}
	if al.BlockSize(again) != orig {
		t.Fatalf("reused block BlockSize = %d, want original %d (header must survive reuse)",
			al.BlockSize(again), orig)
	}
}

// The requested prefix of a recycled overflow block must come back
// zeroed even if the previous user scribbled on it.
func TestOverflowReuseZeroesRequestedWords(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)

	const orig = maxSizeClass + 64
	a := al.Alloc(orig)
	for i := 0; i < orig; i++ {
		s.StoreWord(a+tm.Addr(i), ^uint64(0))
	}
	al.Free(a)

	const re = maxSizeClass + 8
	got := al.Alloc(re)
	if got != a {
		t.Fatalf("expected reuse of %#x, got %#x", a, got)
	}
	for i := 0; i < re; i++ {
		if v := s.LoadWord(got + tm.Addr(i)); v != 0 {
			t.Fatalf("word %d of recycled block = %#x, want 0", i, v)
		}
	}
}

// LiveBlocks must track overflow blocks exactly like size-classed ones,
// across fresh allocation, free and first-fit reuse.
func TestOverflowLiveBlocksAccounting(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)

	if al.LiveBlocks() != 0 {
		t.Fatalf("fresh allocator LiveBlocks = %d", al.LiveBlocks())
	}
	a := al.Alloc(maxSizeClass + 1)
	b := al.Alloc(maxSizeClass + 2)
	small := al.Alloc(4)
	if al.LiveBlocks() != 3 {
		t.Fatalf("LiveBlocks = %d, want 3", al.LiveBlocks())
	}
	al.Free(a)
	if al.LiveBlocks() != 2 {
		t.Fatalf("LiveBlocks after overflow free = %d, want 2", al.LiveBlocks())
	}
	if got := al.Alloc(maxSizeClass + 1); got != a {
		t.Fatalf("expected reuse of %#x, got %#x", a, got)
	}
	if al.LiveBlocks() != 3 {
		t.Fatalf("LiveBlocks after overflow reuse = %d, want 3", al.LiveBlocks())
	}
	al.Free(b)
	al.Free(small)
	al.Free(a)
	if al.LiveBlocks() != 0 {
		t.Fatalf("LiveBlocks after freeing all = %d, want 0", al.LiveBlocks())
	}
}

// Concurrent reserve calls crossing page boundaries must hand out
// non-overlapping runs and grow the page directory safely: every
// goroutine writes a signature across its whole run and verifies it
// after the dust settles. Run with -race this doubles as a
// reserve/grow race test (copy-on-write directory vs concurrent
// readers).
func TestConcurrentReserveGrowRace(t *testing.T) {
	s := NewStore()
	const workers = 8
	const perWorker = 24
	// Runs sized near half a page force frequent directory growth and
	// make overlapping runs certain to collide on the signature check.
	const runWords = pageWords/2 + 17

	bases := make([][]tm.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sig := uint64(w + 1)
			for i := 0; i < perWorker; i++ {
				base := s.reserve(runWords)
				bases[w] = append(bases[w], base)
				for off := uint64(0); off < runWords; off += 97 {
					s.StoreWord(base+tm.Addr(off), sig<<32|off)
				}
			}
		}(w)
	}
	wg.Wait()

	for w := range bases {
		sig := uint64(w + 1)
		for _, base := range bases[w] {
			for off := uint64(0); off < runWords; off += 97 {
				if v := s.LoadWord(base + tm.Addr(off)); v != sig<<32|off {
					t.Fatalf("worker %d base %#x off %d: word = %#x, want %#x (overlapping reserve?)",
						w, base, off, v, sig<<32|off)
				}
			}
		}
	}
}
