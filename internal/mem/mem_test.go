package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"tlstm/internal/tm"
)

func TestStoreLoadRoundTrip(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	a := al.Alloc(4)
	if a == tm.NilAddr {
		t.Fatal("Alloc returned nil address")
	}
	for i := 0; i < 4; i++ {
		s.StoreWord(a+tm.Addr(i), uint64(100+i))
	}
	for i := 0; i < 4; i++ {
		if got := s.LoadWord(a + tm.Addr(i)); got != uint64(100+i) {
			t.Fatalf("word %d: got %d, want %d", i, got, 100+i)
		}
	}
}

func TestAddressZeroReserved(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	for i := 0; i < 100; i++ {
		if a := al.Alloc(1); a == tm.NilAddr {
			t.Fatalf("allocation %d returned the nil address", i)
		}
	}
}

func TestStoreGrowsAcrossPages(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	// Allocate more than two pages worth of words.
	n := 3 * pageWords
	a := al.Alloc(n)
	s.StoreWord(a, 1)
	s.StoreWord(a+tm.Addr(n-1), 2)
	if s.LoadWord(a) != 1 || s.LoadWord(a+tm.Addr(n-1)) != 2 {
		t.Fatal("cross-page words not stored correctly")
	}
}

func TestAllocZeroesRecycledBlocks(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	a := al.Alloc(3)
	for i := 0; i < 3; i++ {
		s.StoreWord(a+tm.Addr(i), 7)
	}
	al.Free(a)
	b := al.Alloc(3)
	if b != a {
		t.Fatalf("expected free-list reuse: got %#x, want %#x", b, a)
	}
	for i := 0; i < 3; i++ {
		if s.LoadWord(b+tm.Addr(i)) != 0 {
			t.Fatalf("recycled word %d not zeroed", i)
		}
	}
}

func TestAllocFreeBookkeeping(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	var blocks []tm.Addr
	for i := 1; i <= 10; i++ {
		blocks = append(blocks, al.Alloc(i))
	}
	if got := al.LiveBlocks(); got != 10 {
		t.Fatalf("LiveBlocks = %d, want 10", got)
	}
	for i, a := range blocks {
		if got := al.BlockSize(a); got != i+1 {
			t.Fatalf("BlockSize(%d) = %d, want %d", i, got, i+1)
		}
		al.Free(a)
	}
	if got := al.LiveBlocks(); got != 0 {
		t.Fatalf("LiveBlocks after frees = %d, want 0", got)
	}
}

func TestOverflowSizeClass(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	big := al.Alloc(maxSizeClass + 100)
	al.Free(big)
	again := al.Alloc(maxSizeClass + 50)
	if again != big {
		t.Fatalf("overflow block not reused first-fit: got %#x want %#x", again, big)
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	al.Alloc(0)
}

func TestConcurrentAllocDistinctBlocks(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	const workers, per = 8, 200
	got := make([][]tm.Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				got[w] = append(got[w], al.Alloc(2))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[tm.Addr]bool, workers*per)
	for _, list := range got {
		for _, a := range list {
			if seen[a] {
				t.Fatalf("address %#x handed out twice", a)
			}
			seen[a] = true
		}
	}
}

func TestDirectImplementsTx(t *testing.T) {
	s := NewStore()
	d := Direct{Mem: s, Al: NewAllocator(s)}
	a := d.Alloc(2)
	d.Store(a, 42)
	if d.Load(a) != 42 {
		t.Fatal("Direct store/load mismatch")
	}
	tm.StoreInt64(d, a+1, -7)
	if tm.LoadInt64(d, a+1) != -7 {
		t.Fatal("int64 helpers mismatch")
	}
	d.Free(a)
}

// Property: alloc/free sequences never hand out overlapping live blocks.
func TestQuickAllocNoOverlap(t *testing.T) {
	s := NewStore()
	al := NewAllocator(s)
	type block struct {
		base tm.Addr
		n    int
	}
	var live []block
	f := func(sizes []uint8, freeIdx []uint8) bool {
		for _, sz := range sizes {
			n := int(sz%64) + 1
			live = append(live, block{base: al.Alloc(n), n: n})
		}
		for _, fi := range freeIdx {
			if len(live) == 0 {
				break
			}
			i := int(fi) % len(live)
			al.Free(live[i].base)
			live = append(live[:i], live[i+1:]...)
		}
		// Check pairwise non-overlap of live blocks.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.base < b.base+tm.Addr(b.n) && b.base < a.base+tm.Addr(a.n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
