package mem

import (
	"fmt"
	"sync"

	"tlstm/internal/tm"
)

// headerWords is the per-block allocator header (one word holding the
// block's payload size). It lives at base-1, exactly like a classic
// malloc header, so Free can recover the size class.
const headerWords = 1

// maxSizeClass bounds the exact-fit free lists; larger blocks get a
// single overflow list searched first-fit (rare in the benchmarks).
const maxSizeClass = 256

// Allocator hands out blocks of words from a Store and recycles freed
// blocks through per-size free lists. It is safe for concurrent use.
//
// Transactional allocation/free semantics (undo an Alloc when the
// transaction aborts, defer a Free until commit) are implemented by the
// runtimes on top of the raw Alloc/Free here, via their per-task logs.
type Allocator struct {
	store *Store

	mu       sync.Mutex
	free     [maxSizeClass + 1][]tm.Addr
	overflow []tm.Addr // blocks larger than maxSizeClass

	allocated uint64 // live blocks, for leak tests
}

// NewAllocator returns an allocator backed by store.
func NewAllocator(store *Store) *Allocator {
	return &Allocator{store: store}
}

// Alloc returns the base address of a zeroed block of n (>0) words.
func (al *Allocator) Alloc(n int) tm.Addr {
	if n <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d): size must be positive", n))
	}
	if a := al.takeFree(n); a != tm.NilAddr {
		for i := 0; i < n; i++ {
			al.store.StoreWord(a+tm.Addr(i), 0)
		}
		return a
	}
	base := al.store.reserve(uint64(n) + headerWords)
	al.store.StoreWord(base, uint64(n))
	al.mu.Lock()
	al.allocated++
	al.mu.Unlock()
	return base + headerWords
}

func (al *Allocator) takeFree(n int) tm.Addr {
	al.mu.Lock()
	defer al.mu.Unlock()
	if n <= maxSizeClass {
		l := al.free[n]
		if len(l) == 0 {
			return tm.NilAddr
		}
		a := l[len(l)-1]
		al.free[n] = l[:len(l)-1]
		al.allocated++
		return a
	}
	for i, a := range al.overflow {
		if al.store.LoadWord(a-headerWords) >= uint64(n) {
			al.overflow[i] = al.overflow[len(al.overflow)-1]
			al.overflow = al.overflow[:len(al.overflow)-1]
			al.allocated++
			return a
		}
	}
	return tm.NilAddr
}

// Free returns the block with base address a to the free lists. Freeing
// NilAddr is a no-op. Double frees are not detected (as in C malloc).
func (al *Allocator) Free(a tm.Addr) {
	if a == tm.NilAddr {
		return
	}
	n := al.store.LoadWord(a - headerWords)
	al.mu.Lock()
	defer al.mu.Unlock()
	if n <= maxSizeClass {
		al.free[n] = append(al.free[n], a)
	} else {
		al.overflow = append(al.overflow, a)
	}
	al.allocated--
}

// BlockSize reports the payload size in words of the block at base a.
func (al *Allocator) BlockSize(a tm.Addr) int {
	return int(al.store.LoadWord(a - headerWords))
}

// LiveBlocks reports the number of currently allocated blocks.
func (al *Allocator) LiveBlocks() uint64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	return al.allocated
}
