package mem

import "tlstm/internal/tm"

// Direct is a non-transactional tm.Tx over a store and allocator. It is
// used for single-threaded setup (building initial data structures before
// any transaction runs) and for post-mortem verification in tests. It
// must never be used concurrently with transactions.
type Direct struct {
	Mem *Store
	Al  *Allocator
}

// Load implements tm.Tx.
func (d Direct) Load(a tm.Addr) uint64 { return d.Mem.LoadWord(a) }

// Store implements tm.Tx.
func (d Direct) Store(a tm.Addr, v uint64) { d.Mem.StoreWord(a, v) }

// Alloc implements tm.Tx.
func (d Direct) Alloc(n int) tm.Addr { return d.Al.Alloc(n) }

// Free implements tm.Tx.
func (d Direct) Free(a tm.Addr) { d.Al.Free(a) }

var _ tm.Tx = Direct{}
