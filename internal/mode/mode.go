// Package mode is the execution-mode ladder of the runtime: a
// per-thread controller that starts transactions in the cheapest viable
// mode and moves between modes from live contention signals, plus the
// serialized-fallback gate and the Retry/Wait registry the runtimes
// share.
//
// The ladder ports the aahtm exemplar's production answer to
// pathological conflict storms (SNIPPETS.md 1-2): speculate a bounded
// number of tries with tuned backoff, then fall to a global lock, and
// probe back to speculation once the storm passes. "On the Cost of
// Concurrency in Transactional Memory" formalizes the regime where this
// wins: under sustained write/write storms an optimistic runtime burns
// unbounded work on aborted attempts while a single lock makes linear
// progress.
//
// Three pieces, deliberately decoupled from any one runtime:
//
//   - Controller: a single-owner state machine (one per thread/worker,
//     no atomics) fed commit/abort/CM-defeat outcomes. In Adaptive
//     policy it trips from speculative to serialized when a window's
//     aborts-per-commit ratio, its CM-defeat count, or one
//     transaction's attempt count crosses the configured thresholds,
//     and probes back after a serial window; rapid re-fallback doubles
//     the next serial window (SpinFactor, capped by SpinCell), the
//     exemplar's exponential-backoff idea applied to mode residency.
//
//   - Gate: the serialized-fallback lock. Pending() is exported so a
//     speculative transaction riding out a CM Wait decision can yield
//     to an entrant instead of deadlocking against it (the entrant
//     drains its own pipeline first; see the runtimes' wait loops).
//     Serialized transactions still run the full STM protocol under
//     the gate — locks, validation, commit clock — so opacity is
//     preserved by construction and no mixed-mode commit exists: the
//     gate only serializes the fallback cohort against itself.
//
//   - WaitHub: the Retry/Wait (cond-var) registry. A transaction whose
//     predicate fails subscribes a read-set fingerprint, re-validates
//     its reads (the lost-wakeup guard), and parks on a one-token
//     doorbell; a committing writer whose write set intersects the
//     fingerprint wakes it. The commit path pays one atomic load when
//     no one waits.
package mode

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Policy selects how a runtime's threads choose execution modes.
type Policy int

const (
	// Speculative always runs optimistically: the controller is
	// disarmed and the runtime behaves exactly as before the ladder
	// existed. The default.
	Speculative Policy = iota
	// Adaptive arms the ladder: transactions start in the cheapest
	// viable mode and fall back to the serialized gate under sustained
	// contention, recovering when it passes.
	Adaptive
	// Serial always serializes transactions through the global gate —
	// the degenerate bottom rung, useful as a baseline and for tests.
	Serial
)

// String names the policy for flags and labels.
func (p Policy) String() string {
	switch p {
	case Speculative:
		return "spec"
	case Adaptive:
		return "adaptive"
	case Serial:
		return "serial"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Parse resolves a policy name from a flag.
func Parse(s string) (Policy, error) {
	switch s {
	case "spec", "speculative", "":
		return Speculative, nil
	case "adaptive":
		return Adaptive, nil
	case "serial":
		return Serial, nil
	default:
		return 0, fmt.Errorf("unknown execution-mode policy %q (want %v)", s, Names())
	}
}

// Names lists the policy names accepted by Parse, sweep order.
func Names() []string { return []string{"spec", "adaptive", "serial"} }

// Policies lists the policies in sweep order.
func Policies() []Policy { return []Policy{Speculative, Adaptive, Serial} }

// Config tunes the ladder. The zero value (with Policy Speculative)
// disarms everything; fill picks the aahtm-style defaults for the rest.
type Config struct {
	Policy Policy

	// FallbackAttempts is the per-transaction attempt budget before a
	// mid-transaction escalation to the gate (the aahtm TK_NUM_TRIES
	// analogue): a single transaction that aborts this many times stops
	// speculating immediately instead of waiting for the window.
	FallbackAttempts int

	// FallbackRatio is the windowed aborts-per-commit threshold: when a
	// window of Window commits accumulates at least
	// FallbackRatio×Window aborts, the thread falls back. Negative
	// forces a fallback at every full window regardless of aborts —
	// a test hook that exercises the full ladder deterministically.
	FallbackRatio int

	// DefeatStreak is the CM-defeat budget per window: losing this many
	// contention-manager decisions (AbortSelf verdicts) within one
	// window trips the fallback without waiting for the ratio.
	DefeatStreak int

	// Window is the speculative observation window, in commits.
	Window int

	// SerialWindow is how many serialized commits a fallen-back thread
	// performs before probing recovery back to speculation.
	SerialWindow int

	// SpinInit is the backoff, in scheduler yields, charged to a
	// speculative attempt that aborted itself to let a gate entrant
	// pass (the Pending() wait-loop break), so the serialized cohort
	// gets cycles before the optimist relaunches.
	SpinInit int

	// SpinFactor multiplies the serial window on a rapid re-fallback
	// (falling back again within one Window of recovering); SpinCell
	// caps the growth. Together they are the exemplar's exponential
	// backoff applied to serial-mode residency.
	SpinFactor int
	SpinCell   int
}

// Defaults (aahtm exemplar constants adapted to window units).
const (
	DefaultFallbackAttempts = 8
	DefaultFallbackRatio    = 2
	DefaultDefeatStreak     = 16
	DefaultWindow           = 64
	DefaultSerialWindow     = 16
	DefaultSpinInit         = 16
	DefaultSpinFactor       = 2
	DefaultSpinCell         = 1024
)

// Fill replaces unset fields with defaults. FallbackRatio keeps
// negative values (the force-fallback test hook). The runtimes call it
// once at construction so wait loops read tuned constants directly.
func (c Config) Fill() Config {
	if c.FallbackAttempts <= 0 {
		c.FallbackAttempts = DefaultFallbackAttempts
	}
	if c.FallbackRatio == 0 {
		c.FallbackRatio = DefaultFallbackRatio
	}
	if c.DefeatStreak <= 0 {
		c.DefeatStreak = DefaultDefeatStreak
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.SerialWindow <= 0 {
		c.SerialWindow = DefaultSerialWindow
	}
	if c.SpinInit <= 0 {
		c.SpinInit = DefaultSpinInit
	}
	if c.SpinFactor <= 1 {
		c.SpinFactor = DefaultSpinFactor
	}
	if c.SpinCell <= 0 {
		c.SpinCell = DefaultSpinCell
	}
	return c
}

// State is a controller's current rung.
type State int32

const (
	// StateSpec: transactions run optimistically.
	StateSpec State = iota
	// StateSerial: transactions run serialized under the gate.
	StateSerial
)

// String names the state for trace rendering.
func (s State) String() string {
	switch s {
	case StateSpec:
		return "spec"
	case StateSerial:
		return "serial"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Controller is one thread's mode state machine. Single-owner: exactly
// one goroutine (the thread's submitter / the worker) feeds and reads
// it, so it uses no atomics and embedding it costs no allocation.
type Controller struct {
	cfg Config

	state State

	// Speculative observation window.
	winCommits uint64
	winAborts  uint64
	winDefeats uint64

	// Serialized residency.
	serialLeft int
	span       int

	// Rapid-refallback detection: commits since the last recovery.
	sinceRecover uint64
	recoveredYet bool

	fallbacks  uint64
	recoveries uint64
}

// NewController builds a controller for cfg (defaults filled).
func NewController(cfg Config) Controller {
	cfg = cfg.Fill()
	c := Controller{cfg: cfg, span: cfg.SerialWindow}
	if cfg.Policy == Serial {
		c.state = StateSerial
	}
	return c
}

// Config reports the filled configuration.
func (c *Controller) Config() Config { return c.cfg }

// Armed reports whether the adaptive ladder is active.
func (c *Controller) Armed() bool { return c.cfg.Policy == Adaptive }

// Serial reports whether the next transaction must run serialized
// under the gate.
func (c *Controller) Serial() bool {
	return c.cfg.Policy == Serial || (c.cfg.Policy == Adaptive && c.state == StateSerial)
}

// State reports the current rung.
func (c *Controller) State() State { return c.state }

// Fallbacks reports speculative→serialized transitions so far.
func (c *Controller) Fallbacks() uint64 { return c.fallbacks }

// Recoveries reports serialized→speculative transitions so far.
func (c *Controller) Recoveries() uint64 { return c.recoveries }

// Escalate is the mid-transaction hook: called with the running
// transaction's abort count after each failed attempt, it reports
// whether the controller just fell back — the caller must then move the
// in-flight transaction under the gate before retrying.
func (c *Controller) Escalate(attempts int) bool {
	if c.cfg.Policy != Adaptive || c.state != StateSpec {
		return false
	}
	if attempts < c.cfg.FallbackAttempts {
		return false
	}
	c.fallBack()
	return true
}

// OnOutcome feeds one committed transaction's outcome: its abort count
// and whether it lost at least one CM decision. It reports whether the
// call tripped a fallback or a recovery (for the caller's stats).
func (c *Controller) OnOutcome(aborts uint64, defeated bool) (fellBack, recovered bool) {
	var d uint64
	if defeated {
		d = 1
	}
	return c.OnWindow(1, aborts, d)
}

// OnWindow is the batch form of OnOutcome: commits transactions with
// aborts total aborts and defeats total CM defeats since the last call.
// TLSTM's submitter uses it — task outcomes fold in on worker
// goroutines, so the submitter observes cumulative counter deltas at
// submit boundaries rather than per-commit callbacks. Abort-only
// windows (commits == 0) are meaningful and feed the eager ratio
// check: a transaction stuck re-aborting in a storm may never commit,
// and waiting for its commit to report the aborts would starve the
// controller of exactly the signal that should trip the fallback.
func (c *Controller) OnWindow(commits, aborts, defeats uint64) (fellBack, recovered bool) {
	if c.cfg.Policy != Adaptive || (commits == 0 && aborts == 0 && defeats == 0) {
		return false, false
	}
	if c.state == StateSerial {
		c.serialLeft -= int(commits)
		if c.serialLeft > 0 {
			return false, false
		}
		// Residency served: probe recovery.
		c.state = StateSpec
		c.recoveries++
		c.recoveredYet = true
		c.sinceRecover = 0
		c.resetWindow()
		return false, true
	}
	c.winCommits += commits
	c.winAborts += aborts
	c.winDefeats += defeats
	c.sinceRecover += commits
	w := uint64(c.cfg.Window)
	switch {
	case c.winDefeats >= uint64(c.cfg.DefeatStreak):
		c.fallBack()
		return true, false
	case c.cfg.FallbackRatio >= 0 && c.recoveredYet &&
		c.sinceRecover <= w && c.winAborts > uint64(c.cfg.FallbackRatio):
		// Recovery probe: this thread was serialized a moment ago, so an
		// abort burst within one window of recovering means the storm is
		// still on — refall immediately instead of paying a full window
		// of storm-priced aborts to rediscover it. (fallBack sees the
		// short sinceRecover and doubles the next serial residency.)
		c.fallBack()
		return true, false
	case c.cfg.FallbackRatio >= 0 && c.winAborts >= uint64(c.cfg.FallbackRatio)*w:
		// Already more aborts than a full window tolerates: don't wait
		// for the window to fill.
		c.fallBack()
		return true, false
	case c.winCommits >= w:
		if c.cfg.FallbackRatio < 0 || c.winAborts >= uint64(c.cfg.FallbackRatio)*c.winCommits {
			c.fallBack() // negative ratio: forced-ladder test hook
			return true, false
		}
		c.resetWindow()
	}
	return false, false
}

func (c *Controller) resetWindow() {
	c.winCommits, c.winAborts, c.winDefeats = 0, 0, 0
}

func (c *Controller) fallBack() {
	if c.recoveredYet && c.sinceRecover <= uint64(c.cfg.Window) {
		// Re-fell within one window of recovering: the storm is still
		// on — double the residency, capped.
		if c.span < c.cfg.SpinCell {
			c.span *= c.cfg.SpinFactor
			if c.span > c.cfg.SpinCell {
				c.span = c.cfg.SpinCell
			}
		}
	} else {
		c.span = c.cfg.SerialWindow
	}
	c.state = StateSerial
	c.serialLeft = c.span
	c.fallbacks++
	c.resetWindow()
}

// Gate is the serialized-fallback lock, one per runtime. Enter raises
// the pending count before blocking on the mutex, so speculative
// transactions riding out CM Wait decisions can observe Pending() and
// yield (abort themselves) instead of deadlocking against a draining
// entrant; the entrant itself is exempt from that break.
type Gate struct {
	pending atomic.Int32
	mu      sync.Mutex
}

// Enter announces the entrant (Pending becomes true) and acquires the
// serialization lock. The caller must have drained its own speculative
// pipeline first: no mixed-mode commits from one thread.
func (g *Gate) Enter() {
	g.pending.Add(1)
	g.mu.Lock()
}

// Exit releases the lock and withdraws the announcement.
func (g *Gate) Exit() {
	g.mu.Unlock()
	g.pending.Add(-1)
}

// Pending reports whether any thread holds or awaits the gate. Wait
// loops in the runtimes consult it every round.
func (g *Gate) Pending() bool { return g.pending.Load() != 0 }

// Fingerprint is a 64-bit bloom filter over lock-pair identities: the
// read set of a parked waiter, the write set of a notifying committer.
// A shared bit is necessary for a true intersection, so false positives
// cost only a spurious wake and false negatives cannot occur — both
// sides hash the same pointer.
type Fingerprint uint64

// FPAdd folds one lock-pair identity (its pointer) into fp.
func FPAdd(fp Fingerprint, key uintptr) Fingerprint {
	h := uint64(key) * 0x9e3779b97f4a7c15 // Fibonacci mix, top bits well-stirred
	return fp | 1<<(h>>58)
}

// Waiter is one thread's parking slot in a WaitHub, embedded in the
// owning worker/task so the park path allocates only once (the bell).
type Waiter struct {
	fp     Fingerprint
	bell   chan struct{}
	queued bool
}

// WaitHub is one runtime's Retry registry. The commit-side fast path is
// a single atomic load (Active); everything else happens under the
// registry mutex on the cold park/wake paths.
type WaitHub struct {
	active  atomic.Int32
	mu      sync.Mutex
	waiters map[*Waiter]struct{}
}

// NewWaitHub builds an empty registry.
func NewWaitHub() *WaitHub {
	return &WaitHub{waiters: make(map[*Waiter]struct{})}
}

// Active reports whether any waiter is subscribed. Commit paths gate
// fingerprint computation and Notify on it.
func (h *WaitHub) Active() bool { return h.active.Load() != 0 }

// Subscribe registers w with a read-set fingerprint. The caller must
// then re-validate its read set before parking: a conflicting commit
// that published before this call is visible to that validation, and
// one that publishes after it will find w registered — no lost wakeup
// (the operations on the active counter and the lock-pair versions are
// all sequentially consistent atomics).
func (h *WaitHub) Subscribe(w *Waiter, fp Fingerprint) {
	if w.bell == nil {
		w.bell = make(chan struct{}, 1)
	}
	// Drain a stale token from an earlier aborted subscription so Park
	// cannot return spuriously on it.
	select {
	case <-w.bell:
	default:
	}
	w.fp = fp
	h.mu.Lock()
	h.waiters[w] = struct{}{}
	w.queued = true
	h.mu.Unlock()
	h.active.Add(1)
}

// Unsubscribe removes w (idempotent).
func (h *WaitHub) Unsubscribe(w *Waiter) {
	h.mu.Lock()
	if w.queued {
		delete(h.waiters, w)
		w.queued = false
		h.mu.Unlock()
		h.active.Add(-1)
		return
	}
	h.mu.Unlock()
}

// Park blocks until a conflicting commit (or WakeAll) rings w's bell.
// The caller must have subscribed and re-validated first.
func (w *Waiter) Park() { <-w.bell }

// Notify wakes every waiter whose fingerprint intersects fp. Called by
// committers after publishing, only when Active reported waiters.
func (h *WaitHub) Notify(fp Fingerprint) {
	h.mu.Lock()
	for w := range h.waiters {
		if w.fp&fp != 0 {
			select {
			case w.bell <- struct{}{}:
			default:
			}
		}
	}
	h.mu.Unlock()
}

// WakeAll rings every bell regardless of fingerprints — the safety
// valve for shutdown paths.
func (h *WaitHub) WakeAll() {
	h.mu.Lock()
	for w := range h.waiters {
		select {
		case w.bell <- struct{}{}:
		default:
		}
	}
	h.mu.Unlock()
}
