package mode

import (
	"sync"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("Parse(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse accepted a bogus policy")
	}
	if p, err := Parse("speculative"); err != nil || p != Speculative {
		t.Fatalf("Parse(speculative) = %v, %v", p, err)
	}
}

func TestControllerDisarmed(t *testing.T) {
	c := NewController(Config{Policy: Speculative})
	if c.Armed() || c.Serial() {
		t.Fatal("speculative policy must disarm the ladder")
	}
	if c.Escalate(1 << 20) {
		t.Fatal("disarmed controller escalated")
	}
	for i := 0; i < 10_000; i++ {
		c.OnOutcome(100, true)
	}
	if c.Serial() || c.Fallbacks() != 0 {
		t.Fatal("disarmed controller changed state")
	}

	s := NewController(Config{Policy: Serial})
	if !s.Serial() || s.Armed() {
		t.Fatal("serial policy must pin the gate rung")
	}
	s.OnOutcome(0, false)
	if !s.Serial() {
		t.Fatal("serial policy recovered")
	}
}

func TestControllerRatioFallbackAndRecovery(t *testing.T) {
	c := NewController(Config{Policy: Adaptive, Window: 8, FallbackRatio: 2, SerialWindow: 4})
	// Clean commits: no fallback across many windows.
	for i := 0; i < 100; i++ {
		if fb, _ := c.OnOutcome(0, false); fb {
			t.Fatal("fell back on clean commits")
		}
	}
	// A storm of 2 aborts/commit trips it within a couple of windows
	// regardless of where the clean run left the window cursor.
	var fell bool
	for i := 0; i < 24 && !fell; i++ {
		fell, _ = c.OnOutcome(2, false)
	}
	if !fell || !c.Serial() || c.Fallbacks() != 1 {
		t.Fatalf("ratio fallback did not trip: serial=%v fallbacks=%d", c.Serial(), c.Fallbacks())
	}
	// Serve the serial window; the 4th commit recovers.
	for i := 0; i < 3; i++ {
		if _, rec := c.OnOutcome(0, false); rec {
			t.Fatal("recovered early")
		}
	}
	if _, rec := c.OnOutcome(0, false); !rec || c.Serial() || c.Recoveries() != 1 {
		t.Fatalf("recovery did not trip: serial=%v recoveries=%d", c.Serial(), c.Recoveries())
	}
}

func TestControllerDefeatStreakAndEscalate(t *testing.T) {
	c := NewController(Config{Policy: Adaptive, Window: 64, DefeatStreak: 3})
	c.OnOutcome(0, true)
	c.OnOutcome(0, true)
	if fb, _ := c.OnOutcome(0, true); !fb || !c.Serial() {
		t.Fatal("defeat streak did not trip the fallback")
	}

	e := NewController(Config{Policy: Adaptive, FallbackAttempts: 4})
	if e.Escalate(3) {
		t.Fatal("escalated under budget")
	}
	if !e.Escalate(4) || !e.Serial() || e.Fallbacks() != 1 {
		t.Fatal("mid-transaction escalation did not trip")
	}
	if e.Escalate(100) {
		t.Fatal("escalated while already serial")
	}
}

func TestControllerRapidRefallbackDoublesResidency(t *testing.T) {
	cfg := Config{Policy: Adaptive, Window: 4, FallbackRatio: -1, SerialWindow: 2, SpinFactor: 2, SpinCell: 8}
	c := NewController(cfg)
	serve := func(n int) {
		for i := 0; i < n; i++ {
			c.OnOutcome(0, false)
		}
	}
	// Forced ladder: every full window falls back. First residency = 2.
	serve(4)
	if !c.Serial() {
		t.Fatal("forced fallback did not trip")
	}
	serve(2) // recover
	if c.Serial() {
		t.Fatal("did not recover after the serial window")
	}
	// Refalling within one window of recovery doubles the span: 4, 8, 8 (capped).
	for _, wantSpan := range []int{4, 8, 8} {
		serve(4) // forced re-fallback
		if !c.Serial() {
			t.Fatal("forced re-fallback did not trip")
		}
		if c.span != wantSpan {
			t.Fatalf("span = %d, want %d", c.span, wantSpan)
		}
		serve(wantSpan)
		if c.Serial() {
			t.Fatal("did not recover")
		}
	}
}

func TestControllerWindowBatch(t *testing.T) {
	c := NewController(Config{Policy: Adaptive, Window: 8, FallbackRatio: 2, SerialWindow: 4})
	if fb, _ := c.OnWindow(4, 16, 0); !fb {
		t.Fatal("batched aborts did not trip the early ratio check")
	}
	if _, rec := c.OnWindow(4, 0, 0); !rec {
		t.Fatal("batched serial commits did not recover")
	}
}

func TestGatePending(t *testing.T) {
	var g Gate
	if g.Pending() {
		t.Fatal("fresh gate pending")
	}
	g.Enter()
	if !g.Pending() {
		t.Fatal("held gate not pending")
	}
	entered := make(chan struct{})
	go func() {
		g.Enter()
		close(entered)
		g.Exit()
	}()
	// The second entrant is blocked but already pending.
	for !g.Pending() {
		time.Sleep(time.Millisecond)
	}
	g.Exit()
	<-entered
	for g.Pending() {
		time.Sleep(time.Millisecond)
	}
}

func TestWaitHubNotifyByFingerprint(t *testing.T) {
	h := NewWaitHub()
	if h.Active() {
		t.Fatal("fresh hub active")
	}
	var a, b Waiter
	fpA := FPAdd(0, 0x1000)
	fpB := FPAdd(0, 0x2000)
	if fpA == fpB {
		t.Skip("fingerprint collision between test keys") // astronomically unlikely
	}
	h.Subscribe(&a, fpA)
	h.Subscribe(&b, fpB)
	if !h.Active() {
		t.Fatal("hub inactive with two waiters")
	}
	wokeA := make(chan struct{})
	go func() { a.Park(); close(wokeA) }()
	h.Notify(fpA)
	select {
	case <-wokeA:
	case <-time.After(5 * time.Second):
		t.Fatal("intersecting waiter not woken")
	}
	select {
	case <-b.bell:
		t.Fatal("disjoint waiter woken")
	default:
	}
	h.Unsubscribe(&a)
	h.Unsubscribe(&b)
	h.Unsubscribe(&b) // idempotent
	if h.Active() {
		t.Fatal("hub active after unsubscribes")
	}
}

func TestWaitHubStaleTokenDrained(t *testing.T) {
	h := NewWaitHub()
	var w Waiter
	fp := FPAdd(0, 0xabc)
	h.Subscribe(&w, fp)
	h.Notify(fp) // token delivered, but the waiter aborts instead of parking
	h.Unsubscribe(&w)
	h.Subscribe(&w, fp) // re-subscribe must drain the stale token
	select {
	case <-w.bell:
		t.Fatal("stale token survived re-subscription")
	default:
	}
	h.WakeAll()
	select {
	case <-w.bell:
	default:
		t.Fatal("WakeAll missed a waiter")
	}
	h.Unsubscribe(&w)
}

// TestWaitHubNoLostWakeup hammers the subscribe/validate/park vs
// publish/notify race: a "committer" flips an atomic-ish word and
// notifies; the waiter subscribes, validates the word, and parks only
// if unchanged. The waiter must always terminate.
func TestWaitHubNoLostWakeup(t *testing.T) {
	h := NewWaitHub()
	for round := 0; round < 2000; round++ {
		var versionMu sync.Mutex
		version := 0
		readVersion := func() int {
			versionMu.Lock()
			defer versionMu.Unlock()
			return version
		}
		fp := FPAdd(0, uintptr(round))
		done := make(chan struct{})
		go func() { // committer
			versionMu.Lock()
			version = 1
			versionMu.Unlock()
			if h.Active() {
				h.Notify(fp)
			}
		}()
		go func() { // waiter
			defer close(done)
			var w Waiter
			for {
				if readVersion() != 0 {
					return
				}
				h.Subscribe(&w, fp)
				if readVersion() != 0 { // validate after subscribe
					h.Unsubscribe(&w)
					return
				}
				w.Park()
				h.Unsubscribe(&w)
			}
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: lost wakeup", round)
		}
	}
}
