// Package tmlist implements a transactional sorted singly-linked list
// over word-addressed transactional memory, used by the Vacation
// application for customer reservation lists (STAMP keeps the same
// structure) and exercised directly by tests as a second index shape
// with very different conflict patterns from the red-black tree (every
// traversal reads a prefix of the list).
package tmlist

import "tlstm/internal/tm"

// Node layout.
const (
	fKey  = 0
	fVal  = 1
	fNext = 2

	nodeWords = 3
)

// List is a handle to a transactional sorted list. The header word holds
// the first node's address; the second word caches the length.
type List struct {
	head tm.Addr
}

const headWords = 2

// New allocates an empty list.
func New(tx tm.Tx) List {
	h := tx.Alloc(headWords)
	tx.Store(h+0, uint64(tm.NilAddr))
	tx.Store(h+1, 0)
	return List{head: h}
}

// Handle reconstructs a List from its header address.
func Handle(head tm.Addr) List { return List{head: head} }

// Head exposes the header address.
func (l List) Head() tm.Addr { return l.head }

// Len reports the number of elements.
func (l List) Len(tx tm.Tx) int { return int(tx.Load(l.head + 1)) }

func (l List) bump(tx tm.Tx, d int) {
	tx.Store(l.head+1, uint64(int64(tx.Load(l.head+1))+int64(d)))
}

// Insert adds k→v keeping the list sorted; if k exists the value is
// updated and Insert reports false.
func (l List) Insert(tx tm.Tx, k int64, v uint64) bool {
	prev := l.head // prev+0 acts as the next pointer of the header
	cur := tm.LoadAddr(tx, prev)
	for cur != tm.NilAddr {
		ck := tm.LoadInt64(tx, cur+fKey)
		if ck == k {
			tx.Store(cur+fVal, v)
			return false
		}
		if ck > k {
			break
		}
		prev = cur + fNext
		cur = tm.LoadAddr(tx, prev)
	}
	n := tx.Alloc(nodeWords)
	tm.StoreInt64(tx, n+fKey, k)
	tx.Store(n+fVal, v)
	tm.StoreAddr(tx, n+fNext, cur)
	tm.StoreAddr(tx, prev, n)
	l.bump(tx, 1)
	return true
}

// Lookup returns the value stored under k.
func (l List) Lookup(tx tm.Tx, k int64) (uint64, bool) {
	cur := tm.LoadAddr(tx, l.head)
	for cur != tm.NilAddr {
		ck := tm.LoadInt64(tx, cur+fKey)
		if ck == k {
			return tx.Load(cur + fVal), true
		}
		if ck > k {
			return 0, false
		}
		cur = tm.LoadAddr(tx, cur+fNext)
	}
	return 0, false
}

// Contains reports whether k is present.
func (l List) Contains(tx tm.Tx, k int64) bool {
	_, ok := l.Lookup(tx, k)
	return ok
}

// Delete removes k, reporting whether it was present.
func (l List) Delete(tx tm.Tx, k int64) bool {
	prev := l.head
	cur := tm.LoadAddr(tx, prev)
	for cur != tm.NilAddr {
		ck := tm.LoadInt64(tx, cur+fKey)
		if ck == k {
			tm.StoreAddr(tx, prev, tm.LoadAddr(tx, cur+fNext))
			tx.Free(cur)
			l.bump(tx, -1)
			return true
		}
		if ck > k {
			return false
		}
		prev = cur + fNext
		cur = tm.LoadAddr(tx, prev)
	}
	return false
}

// Each walks the list in key order; fn returning false stops the walk.
func (l List) Each(tx tm.Tx, fn func(k int64, v uint64) bool) {
	cur := tm.LoadAddr(tx, l.head)
	for cur != tm.NilAddr {
		if !fn(tm.LoadInt64(tx, cur+fKey), tx.Load(cur+fVal)) {
			return
		}
		cur = tm.LoadAddr(tx, cur+fNext)
	}
}

// Clear removes every element, freeing the nodes.
func (l List) Clear(tx tm.Tx) {
	cur := tm.LoadAddr(tx, l.head)
	for cur != tm.NilAddr {
		next := tm.LoadAddr(tx, cur+fNext)
		tx.Free(cur)
		cur = next
	}
	tm.StoreAddr(tx, l.head, tm.NilAddr)
	tx.Store(l.head+1, 0)
}
