package tmlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlstm/internal/mem"
	"tlstm/internal/stm"
)

func direct() mem.Direct {
	s := mem.NewStore()
	return mem.Direct{Mem: s, Al: mem.NewAllocator(s)}
}

func TestInsertSortedLookupDelete(t *testing.T) {
	d := direct()
	l := New(d)
	for _, k := range []int64{5, 1, 9, 3, 7} {
		if !l.Insert(d, k, uint64(k*2)) {
			t.Fatalf("fresh insert of %d reported existing", k)
		}
	}
	if l.Insert(d, 5, 50) {
		t.Fatal("duplicate insert must report false")
	}
	if v, ok := l.Lookup(d, 5); !ok || v != 50 {
		t.Fatalf("Lookup(5) = %d,%v", v, ok)
	}
	var keys []int64
	l.Each(d, func(k int64, v uint64) bool { keys = append(keys, k); return true })
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("order = %v, want %v", keys, want)
		}
	}
	if !l.Delete(d, 1) || !l.Delete(d, 9) || l.Delete(d, 9) {
		t.Fatal("delete behaviour wrong")
	}
	if l.Len(d) != 3 {
		t.Fatalf("Len = %d, want 3", l.Len(d))
	}
}

func TestClearFreesNodes(t *testing.T) {
	d := direct()
	l := New(d)
	live0 := d.Al.LiveBlocks()
	for k := int64(0); k < 50; k++ {
		l.Insert(d, k, 1)
	}
	l.Clear(d)
	if got := d.Al.LiveBlocks(); got != live0 {
		t.Fatalf("LiveBlocks = %d, want %d", got, live0)
	}
	if l.Len(d) != 0 {
		t.Fatal("list not empty after Clear")
	}
}

func TestQuickOracle(t *testing.T) {
	f := func(ops []int16) bool {
		d := direct()
		l := New(d)
		oracle := map[int64]uint64{}
		for i, raw := range ops {
			k := int64(raw % 64)
			switch i % 3 {
			case 0:
				l.Insert(d, k, uint64(i))
				oracle[k] = uint64(i)
			case 1:
				_, existed := oracle[k]
				if l.Delete(d, k) != existed {
					return false
				}
				delete(oracle, k)
			default:
				want, existed := oracle[k]
				got, ok := l.Lookup(d, k)
				if ok != existed || (ok && got != want) {
					return false
				}
			}
		}
		return l.Len(d) == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The list must behave identically under a real STM runtime.
func TestUnderSTM(t *testing.T) {
	rt := stm.New()
	var l List
	rt.Atomic(nil, func(tx *stm.Tx) { l = New(tx) })

	rng := rand.New(rand.NewSource(3))
	oracle := map[int64]uint64{}
	for i := 0; i < 300; i++ {
		k := int64(rng.Intn(40))
		v := rng.Uint64() % 100
		switch rng.Intn(3) {
		case 0:
			rt.Atomic(nil, func(tx *stm.Tx) { l.Insert(tx, k, v) })
			oracle[k] = v
		case 1:
			rt.Atomic(nil, func(tx *stm.Tx) { l.Delete(tx, k) })
			delete(oracle, k)
		default:
			var got uint64
			var ok bool
			rt.Atomic(nil, func(tx *stm.Tx) { got, ok = l.Lookup(tx, k) })
			want, existed := oracle[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v; want %d,%v", i, k, got, ok, want, existed)
			}
		}
	}
}
