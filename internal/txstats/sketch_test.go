package txstats

import "testing"

func TestSketchObserveAliasing(t *testing.T) {
	var s Sketch
	s.Observe(3)
	s.Observe(3)
	s.Observe(3 + SketchShards) // aliases modulo the slot count
	if s[3] != 3 {
		t.Fatalf("slot 3 = %d, want 3", s[3])
	}
	if s.Total() != 3 {
		t.Fatalf("Total = %d, want 3", s.Total())
	}
}

// TestSketchMergeMinusConformance pins the shard-fold algebra every
// Stats pipeline relies on: Merge is slot-wise addition, Minus is its
// inverse, and windowed deltas (cur.Minus(prev)) recover exactly the
// observations between two snapshots.
func TestSketchMergeMinusConformance(t *testing.T) {
	var a, b Sketch
	for i := 0; i < 100; i++ {
		a.Observe(i % 5)
	}
	for i := 0; i < 40; i++ {
		b.Observe(1 + i%3)
	}
	sum := a
	sum.Merge(b)
	if sum.Total() != a.Total()+b.Total() {
		t.Fatalf("Merge total = %d, want %d", sum.Total(), a.Total()+b.Total())
	}
	for i := range sum {
		if sum[i] != a[i]+b[i] {
			t.Fatalf("Merge slot %d = %d, want %d", i, sum[i], a[i]+b[i])
		}
	}
	if got := sum.Minus(b); got != a {
		t.Fatalf("Minus did not invert Merge: %v", got)
	}
	if got := sum.Minus(sum); got.Total() != 0 {
		t.Fatalf("x.Minus(x) not empty: %v", got)
	}

	// Windowed delta: observations after a snapshot are exactly the
	// snapshot difference.
	snap := sum
	sum.Observe(7)
	sum.Observe(7)
	delta := sum.Minus(snap)
	if delta[7] != 2 || delta.Total() != 2 {
		t.Fatalf("windowed delta = %v, want two observations of slot 7", delta)
	}
}

func TestSketchHot(t *testing.T) {
	var s Sketch
	if shard, frac := s.Hot(); shard != 0 || frac != 0 {
		t.Fatalf("empty Hot = (%d, %v), want (0, 0)", shard, frac)
	}
	for i := 0; i < 6; i++ {
		s.Observe(2)
	}
	for i := 0; i < 2; i++ {
		s.Observe(9)
	}
	shard, frac := s.Hot()
	if shard != 2 {
		t.Fatalf("Hot shard = %d, want 2", shard)
	}
	if frac < 0.74 || frac > 0.76 {
		t.Fatalf("Hot frac = %v, want 0.75", frac)
	}
	// Ties resolve to the lowest slot.
	var tie Sketch
	tie.Observe(4)
	tie.Observe(11)
	if shard, _ := tie.Hot(); shard != 4 {
		t.Fatalf("tied Hot = %d, want lowest slot 4", shard)
	}
}
