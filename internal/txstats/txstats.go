// Package txstats implements the per-thread statistics idiom used by
// mature TM runtimes (e.g. the per-thread tm_stats_t counters that
// hardware-TM harnesses merge at thread exit): every worker accumulates
// its execution counters into a private, unshared shard and folds the
// shard into a global aggregate only at synchronization boundaries
// (worker exit, Sync). The hot path — one commit, one abort, one work
// charge — therefore never touches a shared cache line, and the only
// mutex in the system guards the cold merge.
//
// The aggregate is generic over the concrete stats struct so the four
// runtimes (each with its own counter set) share one implementation.
package txstats

import "sync"

// Folder is implemented by a stats struct pointer that can fold another
// value of the same struct into itself (the runtimes' Stats.Add).
type Folder[S any] interface {
	Add(S)
}

// Aggregate is the global side of the sharding idiom: a mutex-guarded
// total that worker shards are merged into. The zero value is ready to
// use. All methods are safe for concurrent use; the intended pattern is
// that Merge is called rarely (per worker exit or per Sync), never per
// transaction.
type Aggregate[S any, PS interface {
	*S
	Folder[S]
}] struct {
	mu    sync.Mutex
	total S
}

// Merge folds one worker's shard into the global total.
func (a *Aggregate[S, PS]) Merge(shard S) {
	a.mu.Lock()
	PS(&a.total).Add(shard)
	a.mu.Unlock()
}

// Snapshot returns a copy of the global total.
func (a *Aggregate[S, PS]) Snapshot() S {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}
