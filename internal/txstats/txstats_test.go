package txstats

import (
	"sync"
	"testing"
)

type counters struct {
	A uint64
	B uint64
}

func (c *counters) Add(o counters) {
	c.A += o.A
	c.B += o.B
}

func TestMergeAndSnapshot(t *testing.T) {
	var agg Aggregate[counters, *counters]
	agg.Merge(counters{A: 1, B: 2})
	agg.Merge(counters{A: 10, B: 20})
	got := agg.Snapshot()
	if got.A != 11 || got.B != 22 {
		t.Fatalf("snapshot = %+v, want {11 22}", got)
	}
}

func TestConcurrentMerges(t *testing.T) {
	const workers = 16
	const perWorker = 500

	var agg Aggregate[counters, *counters]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker accumulates unshared, merges once at exit —
			// the intended usage pattern.
			var shard counters
			for i := 0; i < perWorker; i++ {
				shard.A++
				shard.B += 2
			}
			agg.Merge(shard)
		}()
	}
	wg.Wait()
	got := agg.Snapshot()
	if got.A != workers*perWorker || got.B != 2*workers*perWorker {
		t.Fatalf("snapshot = %+v, want {%d %d}", got, workers*perWorker, 2*workers*perWorker)
	}
}
