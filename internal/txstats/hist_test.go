package txstats

import "testing"

func TestHistBucketEdges(t *testing.T) {
	cases := []struct{ n, bucket int }{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 14, 15}, {1 << 20, 15},
	}
	for _, c := range cases {
		if b := histBucket(c.n); b != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.n, b, c.bucket)
		}
	}
	if u := histUpper(0); u != 0 {
		t.Errorf("histUpper(0) = %d, want 0", u)
	}
	if u := histUpper(3); u != 7 {
		t.Errorf("histUpper(3) = %d, want 7", u)
	}
}

func TestHistObserveQuantileMax(t *testing.T) {
	var h Hist
	if h.String() != "n=0" {
		t.Fatalf("empty String() = %q, want n=0", h.String())
	}
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty hist reported nonzero quantile/max")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if got := h.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(0.95); q != 127 {
		t.Fatalf("p95 = %d, want 127 (upper edge of 100's bucket)", q)
	}
	if m := h.Max(); m != 127 {
		t.Fatalf("Max = %d, want 127", m)
	}
}

func TestHistMergeMinus(t *testing.T) {
	var a, b Hist
	a.Observe(0)
	a.Observe(5)
	b.Observe(5)
	b.Observe(9)

	sum := a
	sum.Merge(b)
	if sum.Total() != 4 {
		t.Fatalf("merged Total = %d, want 4", sum.Total())
	}
	d := sum.Minus(a)
	if d != b {
		t.Fatalf("Minus: got %v, want %v", d, b)
	}
	// Comparable-array property the Stats delta checks rely on.
	if (Hist{}) != (Hist{}) || d == (Hist{}) {
		t.Fatalf("Hist comparability broken")
	}
}
