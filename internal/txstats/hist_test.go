package txstats

import "testing"

func TestHistBucketEdges(t *testing.T) {
	cases := []struct{ n, bucket int }{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 14, 15}, {1 << 20, 21},
		{1 << 30, 31}, {1<<31 - 1, 31}, {1 << 31, 31}, {1 << 40, 31},
	}
	for _, c := range cases {
		if b := histBucket(c.n); b != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.n, b, c.bucket)
		}
	}
	if u := histUpper(0); u != 0 {
		t.Errorf("histUpper(0) = %d, want 0", u)
	}
	if u := histUpper(3); u != 7 {
		t.Errorf("histUpper(3) = %d, want 7", u)
	}
}

func TestHistObserveQuantileMax(t *testing.T) {
	var h Hist
	if h.String() != "n=0" {
		t.Fatalf("empty String() = %q, want n=0", h.String())
	}
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatalf("empty hist reported nonzero quantile/max")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if got := h.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(0.95); q != 127 {
		t.Fatalf("p95 = %d, want 127 (upper edge of 100's bucket)", q)
	}
	if m := h.Max(); m != 127 {
		t.Fatalf("Max = %d, want 127", m)
	}
}

// TestHistQuantileBoundaryBuckets is the directed boundary coverage:
// bucket 0 (all-zero observations), the open-ended top bucket, and the
// rank arithmetic at exact bucket edges.
func TestHistQuantileBoundaryBuckets(t *testing.T) {
	// All mass in bucket 0: every quantile is 0.
	var zeros Hist
	for i := 0; i < 7; i++ {
		zeros.Observe(0)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := zeros.Quantile(q); got != 0 {
			t.Errorf("all-zeros Quantile(%v) = %d, want 0", q, got)
		}
	}
	if zeros.Max() != 0 {
		t.Errorf("all-zeros Max = %d, want 0", zeros.Max())
	}

	// All mass in the open-ended top bucket: every quantile reports its
	// (clamped) inclusive upper edge, and Max agrees.
	var top Hist
	top.Observe(1 << 62) // far beyond the last bucket's lower edge
	top.Observe(1<<31 - 1)
	wantTop := histUpper(HistBuckets - 1)
	for _, q := range []float64{0.01, 0.5, 1.0} {
		if got := top.Quantile(q); got != wantTop {
			t.Errorf("top-bucket Quantile(%v) = %d, want %d", q, got, wantTop)
		}
	}
	if top.Max() != wantTop {
		t.Errorf("top-bucket Max = %d, want %d", top.Max(), wantTop)
	}

	// Regression for the truncation off-by-one: 2 observations of 0 and
	// 8 of 1 — the 0.2-quantile sits exactly on bucket 0's cumulative
	// mass (2 of 10), so p20 must be 0 and p30 must already be 1. The
	// old integer-rank form truncated q·total and reported p30 = 0.
	var edge Hist
	edge.Observe(0)
	edge.Observe(0)
	for i := 0; i < 8; i++ {
		edge.Observe(1)
	}
	if got := edge.Quantile(0.2); got != 0 {
		t.Errorf("p20 = %d, want 0 (exact boundary)", got)
	}
	if got := edge.Quantile(0.3); got != 1 {
		t.Errorf("p30 = %d, want 1 (truncation off-by-one)", got)
	}
	if got := edge.Quantile(1.0); got != 1 {
		t.Errorf("p100 = %d, want 1", got)
	}
}

func TestHistMergeMinus(t *testing.T) {
	var a, b Hist
	a.Observe(0)
	a.Observe(5)
	b.Observe(5)
	b.Observe(9)

	sum := a
	sum.Merge(b)
	if sum.Total() != 4 {
		t.Fatalf("merged Total = %d, want 4", sum.Total())
	}
	d := sum.Minus(a)
	if d != b {
		t.Fatalf("Minus: got %v, want %v", d, b)
	}
	// Comparable-array property the Stats delta checks rely on.
	if (Hist{}) != (Hist{}) || d == (Hist{}) {
		t.Fatalf("Hist comparability broken")
	}
}
