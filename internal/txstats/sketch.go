package txstats

import (
	"fmt"
	"strings"
)

// SketchShards is the fixed slot count of a conflict Sketch. It bounds
// the shard counts the sketch can distinguish; a lock table with more
// shards than this aliases modulo SketchShards (coarser attribution,
// never lost counts). 16 slots is 128 B — two cache lines inside a
// Stats shard that only its owner touches.
const SketchShards = 16

// Sketch is a per-thread conflict sketch: a fixed-size array counting,
// per lock-table shard, the aborts and contention-manager defeats the
// owning thread suffered there. It follows the shard idiom of this
// package exactly as Hist does — Observe is owner-only, shards are
// folded with Merge at synchronization boundaries, Minus yields
// windowed deltas — and it is a plain comparable array so the Stats
// structs embedding it stay comparable. The affinity placement policy
// (internal/sched) reads sketch windows to rebind threads toward the
// shards their conflicts concentrate in.
type Sketch [SketchShards]uint64

// Observe counts one conflict attributed to the given lock-table shard.
func (s *Sketch) Observe(shard int) {
	s[uint(shard)%SketchShards]++
}

// Merge folds another sketch into this one (shard → aggregate).
func (s *Sketch) Merge(o Sketch) {
	for i := range s {
		s[i] += o[i]
	}
}

// Minus returns the slot-wise difference s − o (windowed deltas).
func (s Sketch) Minus(o Sketch) Sketch {
	var d Sketch
	for i := range s {
		d[i] = s[i] - o[i]
	}
	return d
}

// Total reports the number of observed conflicts.
func (s Sketch) Total() uint64 {
	var n uint64
	for _, c := range s {
		n += c
	}
	return n
}

// Hot returns the slot holding the most conflicts and that slot's
// share of the total (0 ≤ frac ≤ 1). An empty sketch reports (0, 0).
// Ties resolve to the lowest slot, so Hot is deterministic.
func (s Sketch) Hot() (shard int, frac float64) {
	total := s.Total()
	if total == 0 {
		return 0, 0
	}
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i] > s[best] {
			best = i
		}
	}
	return best, float64(s[best]) / float64(total)
}

// String renders the non-empty slots for result rows and debugging.
func (s Sketch) String() string {
	if s.Total() == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d", s.Total())
	for i, c := range s {
		if c != 0 {
			fmt.Fprintf(&b, " s%d:%d", i, c)
		}
	}
	return b.String()
}
