package txstats

import (
	"fmt"
	"math/bits"
)

// HistBuckets is the number of power-of-two buckets in a Hist. Bucket 0
// counts observations of 0; bucket b >= 1 counts observations in
// [2^(b-1), 2^b). The last bucket absorbs everything larger. 32 buckets
// cover both set sizes and nanosecond latencies (histUpper(31) ≈ 2.1 s).
const HistBuckets = 32

// Hist is a fixed-size power-of-two histogram of small per-transaction
// quantities (set sizes, restart/commit latencies in nanoseconds,
// attempts per commit). It follows the shard idiom of this package: a
// Hist lives inside a runtime's Stats shard, Observe is called by the
// owning worker only, and shards are folded with Merge at
// synchronization boundaries. The zero value is ready to use, and the
// type is a plain comparable array so Stats structs that embed it stay
// comparable.
type Hist [HistBuckets]uint64

func histBucket(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// histUpper is the inclusive upper bound of bucket b.
func histUpper(b int) int {
	if b == 0 {
		return 0
	}
	return 1<<b - 1
}

// Observe counts one set of size n.
func (h *Hist) Observe(n int) { h[histBucket(n)]++ }

// Merge folds another histogram into this one (shard → aggregate).
func (h *Hist) Merge(o Hist) {
	for i := range h {
		h[i] += o[i]
	}
}

// Minus returns the bucket-wise difference h − o (windowed Sync deltas).
func (h Hist) Minus(o Hist) Hist {
	var d Hist
	for i := range h {
		d[i] = h[i] - o[i]
	}
	return d
}

// Total reports the number of observations.
func (h Hist) Total() uint64 {
	var n uint64
	for _, c := range h {
		n += c
	}
	return n
}

// Quantile returns an inclusive upper bound on the q-quantile (0 < q <=
// 1) of the observed sizes: the upper edge of the first bucket at which
// the cumulative count reaches q·Total. An empty histogram reports 0.
func (h Hist) Quantile(q float64) int {
	total := h.Total()
	if total == 0 {
		return 0
	}
	// Compare cumulative mass against q·total in floating point: the
	// truncating integer form (need := uint64(q*total)) understated the
	// rank — e.g. q=0.3 over 10 observations truncated 3.0 - ε to 2 and
	// returned a bucket below 30% of the mass, violating the inclusive
	// upper-bound contract at bucket boundaries.
	target := q * float64(total)
	var cum uint64
	for b, c := range h {
		cum += c
		if float64(cum) >= target {
			return histUpper(b)
		}
	}
	return histUpper(HistBuckets - 1)
}

// Max returns an inclusive upper bound on the largest observed size.
func (h Hist) Max() int {
	for b := HistBuckets - 1; b >= 0; b-- {
		if h[b] != 0 {
			return histUpper(b)
		}
	}
	return 0
}

// String renders the summary figures consume: observation count and
// quantile bounds.
func (h Hist) String() string {
	total := h.Total()
	if total == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50<=%d p90<=%d max<=%d",
		total, h.Quantile(0.5), h.Quantile(0.9), h.Max())
}
