package clock

import (
	"fmt"
	"sync"
	"testing"
)

// Raw strategy costs. BenchmarkClockCommitPath is the headline number:
// one begin-sample plus one commit-tick per iteration — the exact clock
// traffic of a small writer transaction — hammered from an exact number
// of goroutines (not RunParallel, whose worker count scales with
// GOMAXPROCS and would make the threads= labels machine-dependent).
// The deferred strategy replaces GV4's atomic Add with a plain load,
// which is the whole point of the strategy layer.

func benchSources() []struct {
	name string
	mk   func() Source
} {
	return []struct {
		name string
		mk   func() Source
	}{
		{"gv4", func() Source { return &GV4{} }},
		{"deferred", func() Source { return &Deferred{} }},
		{"sharded", func() Source { return NewSharded(4) }},
		{"gv7", func() Source { return NewGV7(8) }},
	}
}

// BenchmarkClockBeginPath measures the begin-path sample alone — one
// Now() per transaction begin, the single hottest clock operation in a
// begin-heavy (read-dominated) workload. The interesting strategy is
// Sharded: its Now used to scan every shard per begin; the cached
// minimum makes it one plain load, like the flat clocks. The clock is
// pre-warmed with a few observed ticks so the fast path runs against a
// realistic non-zero state.
func BenchmarkClockBeginPath(b *testing.B) {
	for _, s := range benchSources() {
		b.Run(s.name, func(b *testing.B) {
			src := s.mk()
			var p Probe
			for i := 0; i < 16; i++ {
				src.Observe(src.Tick(&p), &p)
			}
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += src.Now()
			}
			_ = sink
		})
	}
}

func BenchmarkClockCommitPath(b *testing.B) {
	for _, s := range benchSources() {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, par), func(b *testing.B) {
				src := s.mk()
				iters := b.N / par
				var wg sync.WaitGroup
				b.ResetTimer()
				for g := 0; g < par; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						var p Probe
						var sink uint64
						for i := 0; i < iters; i++ {
							sink += src.Now()    // begin: snapshot sample
							sink += src.Tick(&p) // commit: stamp
						}
						_ = sink
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkShardedNowScan measures the shard scan the cached begin
// sample replaced: what Sharded.Now used to cost per transaction begin
// (and what Observe still pays once per reconciliation).
func BenchmarkShardedNowScan(b *testing.B) {
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewSharded(shards)
			var p Probe
			for i := 0; i < 16; i++ {
				c.Observe(c.Tick(&p), &p)
			}
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += c.scanMin()
			}
			_ = sink
		})
	}
}

// BenchmarkClockReadValidation measures the reader side: a Now sample
// plus an Observe of a fresh stamp (the extension path pre-publishing
// strategies push work onto).
func BenchmarkClockReadValidation(b *testing.B) {
	for _, s := range benchSources() {
		b.Run(s.name, func(b *testing.B) {
			src := s.mk()
			var p Probe
			var sink uint64
			for i := 0; i < b.N; i++ {
				ts := src.Tick(&p)
				sink += src.Observe(ts, &p)
				sink += src.Now()
			}
			_ = sink
		})
	}
}
