package clock

import (
	"fmt"
	"sync"
	"testing"
)

// Raw strategy costs. BenchmarkClockCommitPath is the headline number:
// one begin-sample plus one commit-tick per iteration — the exact clock
// traffic of a small writer transaction — hammered from an exact number
// of goroutines (not RunParallel, whose worker count scales with
// GOMAXPROCS and would make the threads= labels machine-dependent).
// The deferred strategy replaces GV4's atomic Add with a plain load,
// which is the whole point of the strategy layer.

func benchSources() []struct {
	name string
	mk   func() Source
} {
	return []struct {
		name string
		mk   func() Source
	}{
		{"gv4", func() Source { return &GV4{} }},
		{"deferred", func() Source { return &Deferred{} }},
		{"sharded", func() Source { return NewSharded(4) }},
	}
}

func BenchmarkClockCommitPath(b *testing.B) {
	for _, s := range benchSources() {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", s.name, par), func(b *testing.B) {
				src := s.mk()
				iters := b.N / par
				var wg sync.WaitGroup
				b.ResetTimer()
				for g := 0; g < par; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						var p Probe
						var sink uint64
						for i := 0; i < iters; i++ {
							sink += src.Now()    // begin: snapshot sample
							sink += src.Tick(&p) // commit: stamp
						}
						_ = sink
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkClockReadValidation measures the reader side: a Now sample
// plus an Observe of a fresh stamp (the extension path pre-publishing
// strategies push work onto).
func BenchmarkClockReadValidation(b *testing.B) {
	for _, s := range benchSources() {
		b.Run(s.name, func(b *testing.B) {
			src := s.mk()
			var p Probe
			var sink uint64
			for i := 0; i < b.N; i++ {
				ts := src.Tick(&p)
				sink += src.Observe(ts, &p)
				sink += src.Now()
			}
			_ = sink
		})
	}
}
