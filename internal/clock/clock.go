// Package clock abstracts the global commit timestamp shared by every
// transactional runtime in this repository.
//
// SwissTM (paper §3.1), TLSTM (§3.2), TL2 and the write-through STM all
// serialize commits through a single monotonically increasing counter:
// a transaction samples it when it begins (its snapshot / read version)
// and a writer ticks it exactly once at commit, stamping the published
// locations with the new value. Until this package existed, each runtime
// carried its own bare atomic.Uint64 copy of that counter; hiding it
// behind one type gives scalable variants (deferred-update GV5/GV7-style
// clocks, per-core sharded clocks with periodic reconciliation) a single
// place to land without touching the four runtimes again.
package clock

import "sync/atomic"

// pad keeps the counter on its own cache line: the clock is the single
// most contended word in the system (every beginning transaction reads
// it, every committing writer CASes it), and false sharing with adjacent
// runtime fields would charge that contention to innocent bystanders.
type pad [56]byte

// Clock is the global commit counter. The zero value is a valid clock
// reading 0; the first Tick returns 1. A Clock must not be copied after
// first use.
type Clock struct {
	_  pad
	ts atomic.Uint64
	_  pad
}

// Now returns the current timestamp: the serial of the most recent
// writer commit. Transactions sample it at begin (valid-ts / read
// version) and during snapshot extension.
func (c *Clock) Now() uint64 { return c.ts.Load() }

// Tick advances the clock by one commit and returns the new timestamp.
// A committing writer calls it exactly once, after acquiring its commit
// locks and before final validation.
func (c *Clock) Tick() uint64 { return c.ts.Add(1) }
