// Package clock abstracts the global commit timestamp shared by every
// transactional runtime in this repository — and, since it became a
// strategy layer, lets each runtime choose HOW that timestamp is
// maintained.
//
// SwissTM (paper §3.1), TLSTM (§3.2), TL2 and the write-through STM all
// serialize commits through a single monotonically increasing counter:
// a transaction samples it when it begins (its snapshot / read version)
// and a writer stamps the published locations with a commit timestamp.
// That counter is the single most contended word in the whole system —
// every Begin reads it, every writer commit writes it — so TL2's family
// of global-version-clock variants (GV4/GV5/GV7) trades a few extra
// snapshot extensions or aborts for dramatically less cache-line
// ping-pong. This package implements three of those strategies behind
// one interface:
//
//   - GV4 (the default): a padded atomic counter ticked with a single
//     fetch-and-add per writer commit. Timestamps are dense and unique.
//   - Deferred (GV5-style): writers stamp Now()+1 WITHOUT advancing the
//     clock; the clock only advances when a reader observes a stamp
//     ahead of it (Observe). The commit path performs no read-modify-
//     write on the shared line at all; the price is that concurrent
//     writers may share a timestamp and readers pay one extra snapshot
//     extension per fresh stamp they encounter.
//   - Sharded: per-context shards, each ticked locally; Now is the
//     minimum over all shards and Observe reconciles lagging shards up
//     to a witnessed stamp (the slow-path global max). Commits touch
//     only their own shard's line, and begins read a cached minimum
//     maintained by Observe instead of scanning the shards.
//   - GV7: the randomized-increment variant of the deferred clock:
//     writers stamp Now()+δ for a per-context random δ in [1, width]
//     without advancing the clock. Like Deferred there is no RMW on the
//     commit path; unlike Deferred, concurrent writers rarely share a
//     stamp, which removes most of the shared-stamp aborts/extensions
//     at the cost of a faster-growing (sparser) clock.
//
// # The safety contract
//
// A runtime that accepts a read of version v without validation when
// v ≤ validTS (its Now sample) is safe if and only if
//
//	every Tick completes strictly above every Now sample
//	that completed before the Tick was taken,           (T1)
//
// provided the runtime takes the Tick only AFTER acquiring the commit
// locks of everything it is about to publish (all four runtimes do:
// the lock acquisition makes concurrent readers of those locations spin
// or abort rather than record a version). All three strategies satisfy
// (T1):
//
//   - GV4: Tick = Add(1) > everything any Load ever returned.
//   - Deferred: Tick = Now()+1 and the clock is monotonic, so any
//     sample that completed before the Tick is ≤ Now() < Tick.
//   - Sharded: Now = a cached past minimum over the (monotonic) shards
//     ≤ the current minimum ≤ the ticking context's own shard < its
//     Tick result.
//   - GV7: Tick = Now()+δ with δ ≥ 1, same argument as Deferred.
//
// Strategies whose stamps can run ahead of Now (Deferred, Sharded) are
// called pre-publishing: a reader can meet a version its own snapshot
// cannot cover yet, and no amount of re-sampling Now would help. The
// Observe hook is the read-validation escape: Observe(v) folds a
// witnessed stamp v back into the clock and returns a reading ≥ v, so
// the caller's snapshot extension can succeed. Runtimes MUST call
// Observe (directly or via their extend path) whenever they see a
// version above their snapshot, or pre-publishing strategies livelock.
//
// Equality-based read validation (SwissTM's cur == recorded) stays
// sound under shared stamps for the same reason (T1) holds: recording
// (pair, v) requires validTS ≥ v, hence every shard/clock ≥ v at record
// time, hence any later tick that could re-stamp the pair is > v; and a
// writer that took stamp v before the record holds the pair's commit
// lock from before its Tick until publication, so the record cannot
// have been made in between.
package clock

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"tlstm/internal/xrand"
)

// Probe carries per-context clock-contention feedback: operations that
// spin on a CAS report their retries here instead of keeping shared
// counters inside the clock (which would reintroduce exactly the
// contention the strategies exist to remove). Each worker/thread owns
// one Probe and folds it into its private stats shard; the shard/Merge
// plumbing of internal/txstats carries it the rest of the way.
//
// A Probe also pins its owner to a shard (Sharded strategy): the
// assignment is sticky for the Probe's lifetime, which is what makes
// shard ticks contention-free between contexts.
type Probe struct {
	// CASRetries counts failed compare-and-swaps inside clock
	// operations since the last TakeRetries.
	CASRetries uint64

	// shard is the 1-based sticky shard assignment (0 = unassigned).
	shard uint32

	// rng is the per-context xorshift state behind GV7's randomized
	// increments; seeded lazily, never shared.
	rng uint64
}

// rand steps the probe's xorshift64 generator (GV7's increment draw).
func (p *Probe) rand() uint64 { return xrand.Next(&p.rng) }

// TakeRetries returns and clears the accumulated retry count (the shard
// pinning survives, so a recycled descriptor keeps its affinity).
func (p *Probe) TakeRetries() uint64 {
	n := p.CASRetries
	p.CASRetries = 0
	return n
}

// NoWindow is the Window() value of strategies whose stamps may lead
// Now() by an unbounded margin.
const NoWindow = ^uint64(0)

// Source is one commit-clock strategy. All methods are safe for
// concurrent use. The *Probe arguments may be nil (retries are then
// dropped and the Sharded strategy falls back to shard 0); hot paths
// should pass their context's Probe.
type Source interface {
	// Name is the strategy's flag/label name ("gv4", "deferred",
	// "sharded").
	Name() string

	// Now returns the current timestamp: a value no greater than any
	// Tick taken after Now completes (contract T1). Transactions sample
	// it at begin and during snapshot extension.
	Now() uint64

	// Tick returns the commit timestamp for one writer commit. The
	// caller must already hold the commit locks of every location it
	// will stamp (see the package docs). Unless Exclusive reports true,
	// concurrent writers may receive equal timestamps.
	Tick(p *Probe) uint64

	// Observe is the read-validation hook for pre-published stamps: it
	// folds a witnessed version v (a value previously returned by Tick,
	// or 0 for a plain re-sample) into the clock and returns a reading
	// ≥ v. After Observe(v) returns, Now() ≥ v.
	Observe(v uint64, p *Probe) uint64

	// Exclusive reports whether every Tick value is handed to exactly
	// one committer. TL2-style runtimes may skip read-set validation
	// when their commit stamp is exactly readVersion+1 — that shortcut
	// is sound only on exclusive sources.
	Exclusive() bool

	// Window bounds how far a stamp returned by Tick may lead Now() at
	// the moment of publication: 0 (GV4; ticks publish immediately),
	// a small constant (Deferred: 1), or NoWindow (Sharded; readers
	// rely on Observe instead of a bound).
	Window() uint64
}

// Kind names a built-in strategy; the zero value is the GV4 default.
type Kind int

const (
	// KindGV4 is the fetch-and-add clock (TL2's GV4; the default).
	KindGV4 Kind = iota
	// KindDeferred is the GV5-style deferred-tick clock.
	KindDeferred
	// KindSharded is the per-context sharded clock.
	KindSharded
	// KindGV7 is the randomized-increment deferred clock.
	KindGV7
)

// Kinds lists every built-in strategy, in flag order.
func Kinds() []Kind { return []Kind{KindGV4, KindDeferred, KindSharded, KindGV7} }

// String returns the flag/label name of the kind.
func (k Kind) String() string {
	switch k {
	case KindGV4:
		return "gv4"
	case KindDeferred:
		return "deferred"
	case KindSharded:
		return "sharded"
	case KindGV7:
		return "gv7"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse maps a flag name to its Kind.
func Parse(name string) (Kind, error) {
	for _, k := range Kinds() {
		if name == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("clock: unknown strategy %q (want gv4, deferred, sharded or gv7)", name)
}

// New returns a fresh instance of the kind's strategy.
func New(k Kind) Source {
	switch k {
	case KindDeferred:
		return &Deferred{}
	case KindSharded:
		return NewSharded(0)
	case KindGV7:
		return NewGV7(0)
	default:
		return &GV4{}
	}
}

// pad keeps a counter on its own cache line: false sharing with
// adjacent fields would charge the clock's contention to innocent
// bystanders.
type pad [56]byte

// ---------------------------------------------------------------------------
// GV4
// ---------------------------------------------------------------------------

// GV4 is the classic fetch-and-add commit clock: dense, unique,
// immediately published timestamps; one atomic Add per writer commit.
// The zero value is a valid clock reading 0; the first Tick returns 1.
// A GV4 must not be copied after first use.
type GV4 struct {
	_  pad
	ts atomic.Uint64
	_  pad
}

// Name implements Source.
func (c *GV4) Name() string { return KindGV4.String() }

// Now implements Source.
func (c *GV4) Now() uint64 { return c.ts.Load() }

// Tick implements Source: one fetch-and-add, never any retries.
func (c *GV4) Tick(*Probe) uint64 { return c.ts.Add(1) }

// Observe implements Source. GV4 stamps never lead the clock, so this
// is a plain re-sample.
func (c *GV4) Observe(uint64, *Probe) uint64 { return c.ts.Load() }

// Exclusive implements Source: Add hands each committer its own stamp.
func (c *GV4) Exclusive() bool { return true }

// Window implements Source: a stamp is public the instant it exists.
func (c *GV4) Window() uint64 { return 0 }

// ---------------------------------------------------------------------------
// Deferred (GV5-style)
// ---------------------------------------------------------------------------

// Deferred is the GV5-style deferred-tick clock: Tick returns Now()+1
// without writing, so the writer commit path performs no atomic RMW on
// the shared line — the CAS storm of a commit-heavy workload simply
// disappears. The clock advances only when a reader Observes a stamp
// ahead of it, costing that reader one CAS and one snapshot extension.
// Concurrent writers may share a stamp (Exclusive is false), which is
// safe under the package's (T1) argument but forbids the
// "wv == rv+1 ⇒ skip validation" shortcut.
// The zero value is a valid clock reading 0.
type Deferred struct {
	_  pad
	ts atomic.Uint64
	_  pad
}

// Name implements Source.
func (c *Deferred) Name() string { return KindDeferred.String() }

// Now implements Source.
func (c *Deferred) Now() uint64 { return c.ts.Load() }

// Tick implements Source: stamp one past the clock, never advance it.
func (c *Deferred) Tick(*Probe) uint64 { return c.ts.Load() + 1 }

// Observe implements Source: fold the witnessed stamp into the clock
// (CAS-max; stamps lead by at most 1, so one step usually suffices).
func (c *Deferred) Observe(v uint64, p *Probe) uint64 {
	for {
		cur := c.ts.Load()
		if cur >= v {
			return cur
		}
		if c.ts.CompareAndSwap(cur, v) {
			return v
		}
		if p != nil {
			p.CASRetries++
		}
	}
}

// Exclusive implements Source: concurrent writers may share stamps.
func (c *Deferred) Exclusive() bool { return false }

// Window implements Source: a stamp leads the clock by at most one.
func (c *Deferred) Window() uint64 { return 1 }

// ---------------------------------------------------------------------------
// Sharded
// ---------------------------------------------------------------------------

type shard struct {
	_ pad
	v atomic.Uint64
	_ pad
}

// Sharded distributes the clock over per-context shards: Tick is a CAS
// on the ticking context's own shard (contention-free across contexts)
// and Observe is the slow-path reconciliation: it raises every lagging
// shard to a witnessed stamp and recomputes the minimum over all
// shards, which is also what keeps the clock from stalling behind an
// idle shard.
//
// Now — the begin-path fast sample — returns a cached copy of the last
// minimum Observe reconciled, one plain load instead of a shard scan.
// Returning a stale minimum is safe because it is conservative: shards
// are monotonic, so a past minimum is ≤ the current minimum — the
// reader just begins on a slightly older snapshot and, on meeting a
// fresher stamp, lands in Observe, which both extends the snapshot and
// refreshes the cache. Begin-heavy workloads therefore skip the O(
// shards) scan entirely.
//
// Safety (package docs, T1): Now = cached past min ≤ current min ≤ own
// shard < own Tick, and every shard is monotonic (the cache is raised
// by CAS-max only). Stamps from different shards may collide
// (Exclusive is false) and may lead Now by an unbounded margin
// (Window is NoWindow) — readers are expected to Observe.
type Sharded struct {
	shards []shard
	mask   uint32
	assign atomic.Uint32

	// cachedNow is the begin-path fast sample: the last reconciled
	// minimum, raised only in Observe (and only upward).
	_         pad
	cachedNow atomic.Uint64
	_         pad
}

// NewSharded creates a sharded clock with n shards (rounded up to a
// power of two; n ≤ 0 picks a default based on GOMAXPROCS).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	size := 2
	for size < n {
		size *= 2
	}
	return &Sharded{shards: make([]shard, size), mask: uint32(size - 1)}
}

// ShardCount reports the number of shards (tests).
func (c *Sharded) ShardCount() int { return len(c.shards) }

// slot returns the probe's sticky shard, assigning one round-robin on
// first use. A nil probe shares shard 0.
func (c *Sharded) slot(p *Probe) *atomic.Uint64 {
	if p == nil {
		return &c.shards[0].v
	}
	if p.shard == 0 {
		p.shard = c.assign.Add(1)
	}
	return &c.shards[(p.shard-1)&c.mask].v
}

// Name implements Source.
func (c *Sharded) Name() string { return KindSharded.String() }

// Now implements Source: the cached reconciled minimum (see the type
// docs). Monotonic because the cache only moves up.
func (c *Sharded) Now() uint64 { return c.cachedNow.Load() }

// scanMin computes the current minimum over all shards (the Observe
// slow path; Now serves the cached copy).
func (c *Sharded) scanMin() uint64 {
	m := c.shards[0].v.Load()
	for i := 1; i < len(c.shards); i++ {
		if v := c.shards[i].v.Load(); v < m {
			m = v
		}
	}
	return m
}

// Tick implements Source: advance the caller's own shard only.
func (c *Sharded) Tick(p *Probe) uint64 {
	s := c.slot(p)
	for {
		cur := s.Load()
		if s.CompareAndSwap(cur, cur+1) {
			return cur + 1
		}
		if p != nil {
			p.CASRetries++
		}
	}
}

// Observe implements Source: the reconciliation slow path. Every shard
// below the witnessed stamp is raised to it, so the global minimum —
// and with it every future Now — covers v; the freshly scanned minimum
// is then published into the begin-path cache (CAS-max, so concurrent
// observers never lower it).
func (c *Sharded) Observe(v uint64, p *Probe) uint64 {
	for i := range c.shards {
		s := &c.shards[i].v
		for {
			cur := s.Load()
			if cur >= v {
				break
			}
			if s.CompareAndSwap(cur, v) {
				break
			}
			if p != nil {
				p.CASRetries++
			}
		}
	}
	m := c.scanMin()
	for {
		cur := c.cachedNow.Load()
		if cur >= m || c.cachedNow.CompareAndSwap(cur, m) {
			break
		}
		if p != nil {
			p.CASRetries++
		}
	}
	if m > v {
		return m
	}
	return v
}

// Exclusive implements Source: shards mint stamps independently.
func (c *Sharded) Exclusive() bool { return false }

// Window implements Source: an idle reader may lag a busy shard by an
// unbounded margin; Observe is the recovery path.
func (c *Sharded) Window() uint64 { return NoWindow }

// ---------------------------------------------------------------------------
// GV7
// ---------------------------------------------------------------------------

// GV7 is the randomized-increment deferred clock (the GV7 proposal of
// TL2's global-version-clock lineage): Tick stamps Now()+δ for a
// per-context random δ in [1, width] without writing the shared line —
// the commit path, like Deferred's, performs no atomic RMW at all. The
// randomization is the difference from Deferred: concurrent writers
// draw different δ with high probability, so they rarely share a stamp,
// which removes most of the shared-stamp validation work (extra aborts
// on TL2, extra extensions elsewhere) that Deferred trades for its free
// commits. The price is a sparser, faster-growing clock and a slightly
// larger publication window (Window = width instead of 1).
//
// Safety (package docs, T1): Tick = Now()+δ with δ ≥ 1 and the clock is
// monotonic, so any sample that completed before the Tick is ≤ Now() <
// Tick — the same argument as Deferred. Stamps may still collide
// (Exclusive is false): randomization makes sharing rare, not
// impossible.
type GV7 struct {
	_    pad
	ts   atomic.Uint64
	_    pad
	mask uint64        // width−1 (width is a power of two)
	seed atomic.Uint64 // fallback δ stream for nil-probe callers
}

// DefaultGV7Width is the default randomized-increment width.
const DefaultGV7Width = 8

// NewGV7 creates a randomized-increment clock with increments drawn
// from [1, width] (width rounded up to a power of two; width ≤ 0 picks
// DefaultGV7Width).
func NewGV7(width int) *GV7 {
	if width <= 0 {
		width = DefaultGV7Width
	}
	size := 1
	for size < width {
		size *= 2
	}
	return &GV7{mask: uint64(size - 1)}
}

// Width reports the increment width (tests).
func (c *GV7) Width() int { return int(c.mask + 1) }

// Name implements Source.
func (c *GV7) Name() string { return KindGV7.String() }

// Now implements Source.
func (c *GV7) Now() uint64 { return c.ts.Load() }

// Tick implements Source: stamp a random step past the clock, never
// advance it.
func (c *GV7) Tick(p *Probe) uint64 {
	var r uint64
	if p != nil {
		r = p.rand()
	} else {
		r = c.seed.Add(0x9e3779b97f4a7c15)
	}
	return c.ts.Load() + 1 + (r & c.mask)
}

// Observe implements Source: fold the witnessed stamp into the clock
// (CAS-max, exactly like Deferred).
func (c *GV7) Observe(v uint64, p *Probe) uint64 {
	for {
		cur := c.ts.Load()
		if cur >= v {
			return cur
		}
		if c.ts.CompareAndSwap(cur, v) {
			return v
		}
		if p != nil {
			p.CASRetries++
		}
	}
}

// Exclusive implements Source: concurrent writers may (rarely) share
// stamps.
func (c *GV7) Exclusive() bool { return false }

// Window implements Source: a stamp leads the clock by at most width.
func (c *GV7) Window() uint64 { return c.mask + 1 }

var (
	_ Source = (*GV4)(nil)
	_ Source = (*Deferred)(nil)
	_ Source = (*Sharded)(nil)
	_ Source = (*GV7)(nil)
)
