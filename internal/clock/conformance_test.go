package clock

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Shared conformance suite: every commit-clock strategy must satisfy
// the properties the runtimes' safety arguments rest on (package docs,
// contract T1). Run with -race: the suite doubles as the strategies'
// concurrency hammering.

// conformanceSources builds one fresh instance per strategy.
func conformanceSources() map[string]func() Source {
	return map[string]func() Source{
		"gv4":      func() Source { return &GV4{} },
		"deferred": func() Source { return &Deferred{} },
		"sharded":  func() Source { return NewSharded(4) },
		"gv7":      func() Source { return NewGV7(8) },
	}
}

func casMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// TestConformance runs the full property set against all strategies.
func TestConformance(t *testing.T) {
	for name, mk := range conformanceSources() {
		t.Run(name, func(t *testing.T) {
			t.Run("ZeroValue", func(t *testing.T) { conformZero(t, mk()) })
			t.Run("TickAboveCompletedSamples", func(t *testing.T) { conformT1(t, mk()) })
			t.Run("MonotonicNow", func(t *testing.T) { conformMonotonic(t, mk()) })
			t.Run("ObserveCatchesUp", func(t *testing.T) { conformObserve(t, mk()) })
			t.Run("NoLostTicks", func(t *testing.T) { conformNoLostTicks(t, mk()) })
			t.Run("WindowBound", func(t *testing.T) { conformWindow(t, mk()) })
		})
	}
}

// conformZero: the zero/fresh state reads 0 and the first tick is ≥ 1.
func conformZero(t *testing.T, src Source) {
	if src.Now() != 0 {
		t.Fatalf("fresh clock reads %d, want 0", src.Now())
	}
	var p Probe
	if ts := src.Tick(&p); ts < 1 {
		t.Fatalf("first Tick = %d, want ≥ 1", ts)
	}
}

// conformT1 is the load-bearing safety property: a Tick must come out
// strictly above every Now sample that completed before the Tick
// started. hi tracks the maximum completed sample; a ticker reads hi,
// then ticks — everything folded into hi before that read
// happened-before the tick, so the tick must exceed it.
func conformT1(t *testing.T, src Source) {
	const samplers, tickers, iters = 4, 4, 2000

	var hi atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < samplers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				casMax(&hi, src.Now())
			}
		}()
	}
	for w := 0; w < tickers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var p Probe
			for i := 0; i < iters; i++ {
				m := hi.Load()
				if ts := src.Tick(&p); ts <= m {
					t.Errorf("Tick = %d, but a Now sample of %d had already completed (T1 violated)", ts, m)
					return
				}
				// Publish the stamp back so samplers can advance
				// (pre-publishing strategies stall otherwise).
				src.Observe(src.Tick(&p), &p)
			}
		}()
	}
	wg.Wait()
}

// conformMonotonic: per-goroutine Now observations never go backwards,
// under concurrent ticking and observing.
func conformMonotonic(t *testing.T, src Source) {
	const readers, writers, iters = 4, 2, 2000

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			var p Probe
			for i := 0; i < iters; i++ {
				src.Observe(src.Tick(&p), &p)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			prev := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := src.Now()
				if now < prev {
					t.Errorf("Now went backwards: %d after %d", now, prev)
					return
				}
				prev = now
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
}

// conformObserve: after Observe(v) of any previously minted stamp v,
// Now() must cover v — and no later Tick may ever re-issue v or
// anything below it (published stamps are retired: this is what keeps
// location versions from regressing once a runtime has stamped memory
// and advanced the clock past it).
func conformObserve(t *testing.T, src Source) {
	const workers, iters = 6, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var p Probe
			prev := uint64(0)
			for i := 0; i < iters; i++ {
				ts := src.Tick(&p)
				if ts <= prev {
					t.Errorf("Tick = %d after this goroutine observed %d: published stamps must be retired", ts, prev)
					return
				}
				if got := src.Observe(ts, &p); got < ts {
					t.Errorf("Observe(%d) = %d, want ≥ %d", ts, got, ts)
					return
				}
				if now := src.Now(); now < ts {
					t.Errorf("Now() = %d after Observe(%d), want ≥", now, ts)
					return
				}
				prev = ts
			}
		}()
	}
	wg.Wait()
}

// conformNoLostTicks: exclusive sources hand out globally unique,
// dense, per-goroutine increasing timestamps; for every source the
// final observed maximum is recoverable through Observe (no tick is
// lost to the clock). Non-exclusive pre-publishing sources may wobble
// within their window between Observes (GV7's randomized step does) —
// their ordering obligation is conformObserve's: never below a
// published stamp.
func conformNoLostTicks(t *testing.T, src Source) {
	const workers, perWorker = 6, 1500

	got := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p Probe
			for i := 0; i < perWorker; i++ {
				got[w] = append(got[w], src.Tick(&p))
			}
		}(w)
	}
	wg.Wait()

	var max uint64
	seen := make(map[uint64]bool)
	for w := range got {
		prev := uint64(0)
		for _, ts := range got[w] {
			if ts == 0 {
				t.Fatal("Tick returned 0")
			}
			if src.Exclusive() {
				if ts <= prev && prev != 0 {
					t.Fatalf("exclusive ticks not strictly increasing: %d after %d", ts, prev)
				}
				if seen[ts] {
					t.Fatalf("exclusive source handed out duplicate timestamp %d", ts)
				}
				seen[ts] = true
			}
			prev = ts
			if ts > max {
				max = ts
			}
		}
	}
	if src.Exclusive() {
		if want := uint64(workers * perWorker); src.Now() != want {
			t.Fatalf("final exclusive clock = %d, want %d (dense)", src.Now(), want)
		}
	}
	if got := src.Observe(max, nil); got < max {
		t.Fatalf("Observe(max=%d) = %d: the maximum minted stamp was lost", max, got)
	}
	if src.Now() < max {
		t.Fatalf("Now() = %d after observing max %d", src.Now(), max)
	}
}

// conformWindow: when the strategy declares a finite window, a freshly
// minted stamp leads Now by at most that much.
func conformWindow(t *testing.T, src Source) {
	w := src.Window()
	if w == NoWindow {
		t.Skip("strategy declares no publication window; readers rely on Observe")
	}
	var p Probe
	for i := 0; i < 100; i++ {
		ts := src.Tick(&p)
		if now := src.Now(); ts > now+w {
			t.Fatalf("stamp %d leads Now %d by more than the declared window %d", ts, now, w)
		}
		if i%3 == 0 {
			src.Observe(ts, &p)
		}
	}
}

// TestSnapshotValidity is the clock-level form of the runtimes' read
// rule: if a transaction samples s := Now() and then a writer Ticks t,
// the sample can never cover the stamp (s < t) — so a value stamped t
// is unreadable at snapshot s without an extension. The concurrent
// version is conformT1; this is the direct sequential statement.
func TestSnapshotValidity(t *testing.T) {
	for name, mk := range conformanceSources() {
		t.Run(name, func(t *testing.T) {
			src := mk()
			var p Probe
			for i := 0; i < 1000; i++ {
				s := src.Now()
				ts := src.Tick(&p)
				if s >= ts {
					t.Fatalf("snapshot %d covers later stamp %d: a value stamped %d would be readable without extension", s, ts, ts)
				}
				if i%2 == 0 {
					src.Observe(ts, &p)
				}
			}
		})
	}
}
