package clock

import (
	"sync"
	"testing"
)

func TestZeroValueAndTick(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %d, want 0", c.Now())
	}
	if ts := c.Tick(); ts != 1 {
		t.Fatalf("first Tick = %d, want 1", ts)
	}
	if c.Now() != 1 {
		t.Fatalf("Now after Tick = %d, want 1", c.Now())
	}
}

// Concurrent Ticks must hand out unique, dense timestamps — commit
// serialization in every runtime depends on it.
func TestConcurrentTicksUnique(t *testing.T) {
	const workers = 8
	const perWorker = 1000

	var c Clock
	got := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				got[w] = append(got[w], c.Tick())
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]bool, workers*perWorker)
	for w := range got {
		prev := uint64(0)
		for _, ts := range got[w] {
			if ts == 0 {
				t.Fatal("Tick returned 0 (reserved for the initial state)")
			}
			if ts <= prev {
				t.Fatalf("timestamps not monotonic within a worker: %d after %d", ts, prev)
			}
			prev = ts
			if seen[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			seen[ts] = true
		}
	}
	if want := uint64(workers * perWorker); c.Now() != want {
		t.Fatalf("final clock = %d, want %d (dense)", c.Now(), want)
	}
}
