package clock

import (
	"sync"
	"testing"
)

func TestGV4ZeroValueAndTick(t *testing.T) {
	var c GV4
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %d, want 0", c.Now())
	}
	if ts := c.Tick(nil); ts != 1 {
		t.Fatalf("first Tick = %d, want 1", ts)
	}
	if c.Now() != 1 {
		t.Fatalf("Now after Tick = %d, want 1", c.Now())
	}
	if !c.Exclusive() || c.Window() != 0 {
		t.Fatal("GV4 must be exclusive with window 0")
	}
}

// Concurrent GV4 Ticks must hand out unique, dense timestamps — commit
// serialization under the default strategy depends on it.
func TestGV4ConcurrentTicksUnique(t *testing.T) {
	const workers = 8
	const perWorker = 1000

	var c GV4
	got := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p Probe
			for i := 0; i < perWorker; i++ {
				got[w] = append(got[w], c.Tick(&p))
			}
			if p.CASRetries != 0 {
				t.Errorf("GV4 Tick reported %d CAS retries, want 0 (it is an Add)", p.CASRetries)
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]bool, workers*perWorker)
	for w := range got {
		prev := uint64(0)
		for _, ts := range got[w] {
			if ts == 0 {
				t.Fatal("Tick returned 0 (reserved for the initial state)")
			}
			if ts <= prev {
				t.Fatalf("timestamps not monotonic within a worker: %d after %d", ts, prev)
			}
			prev = ts
			if seen[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			seen[ts] = true
		}
	}
	if want := uint64(workers * perWorker); c.Now() != want {
		t.Fatalf("final clock = %d, want %d (dense)", c.Now(), want)
	}
}

// The deferred clock's whole point: ticking does not move the clock;
// observing the resulting stamp does.
func TestDeferredTickDoesNotAdvance(t *testing.T) {
	var c Deferred
	var p Probe
	if ts := c.Tick(&p); ts != 1 {
		t.Fatalf("Tick = %d, want 1", ts)
	}
	if c.Now() != 0 {
		t.Fatalf("Now after deferred Tick = %d, want 0 (tick is deferred)", c.Now())
	}
	if got := c.Observe(1, &p); got < 1 {
		t.Fatalf("Observe(1) = %d, want ≥ 1", got)
	}
	if c.Now() != 1 {
		t.Fatalf("Now after Observe = %d, want 1", c.Now())
	}
	// The next tick builds on the observed stamp.
	if ts := c.Tick(&p); ts != 2 {
		t.Fatalf("Tick after Observe = %d, want 2", ts)
	}
	if c.Exclusive() {
		t.Fatal("deferred clock must not claim exclusive stamps")
	}
	if c.Window() != 1 {
		t.Fatalf("deferred window = %d, want 1", c.Window())
	}
}

// The sharded clock: Now is the min over shards, so a tick on one shard
// is invisible until Observe reconciles the others up to it.
func TestShardedMinAndReconcile(t *testing.T) {
	c := NewSharded(4)
	if c.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", c.ShardCount())
	}
	var p1, p2 Probe
	ts := c.Tick(&p1)
	if ts != 1 {
		t.Fatalf("first Tick = %d, want 1", ts)
	}
	if c.Now() != 0 {
		t.Fatalf("Now = %d, want 0 (other shards still at 0)", c.Now())
	}
	if got := c.Observe(ts, &p2); got < ts {
		t.Fatalf("Observe(%d) = %d, want ≥ %d", ts, got, ts)
	}
	if c.Now() < ts {
		t.Fatalf("Now after Observe = %d, want ≥ %d", c.Now(), ts)
	}
	// Distinct probes stick to distinct shards: their ticks are
	// independent (both mint min+1 here).
	a, b := c.Tick(&p1), c.Tick(&p2)
	if a == 0 || b == 0 {
		t.Fatal("ticks must be positive")
	}
	if c.Exclusive() {
		t.Fatal("sharded clock must not claim exclusive stamps")
	}
	if c.Window() != NoWindow {
		t.Fatalf("sharded window = %d, want NoWindow", c.Window())
	}
}

func TestParseAndNew(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%q) = %v, %v", k.String(), got, err)
		}
		src := New(k)
		if src.Name() != k.String() {
			t.Fatalf("New(%v).Name() = %q, want %q", k, src.Name(), k.String())
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse must reject unknown strategies")
	}
}

func TestProbeTakeRetries(t *testing.T) {
	p := Probe{CASRetries: 7}
	if p.TakeRetries() != 7 {
		t.Fatal("TakeRetries must return the accumulated count")
	}
	if p.CASRetries != 0 || p.TakeRetries() != 0 {
		t.Fatal("TakeRetries must clear the count")
	}
}
