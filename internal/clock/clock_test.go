package clock

import (
	"sync"
	"testing"
)

func TestGV4ZeroValueAndTick(t *testing.T) {
	var c GV4
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %d, want 0", c.Now())
	}
	if ts := c.Tick(nil); ts != 1 {
		t.Fatalf("first Tick = %d, want 1", ts)
	}
	if c.Now() != 1 {
		t.Fatalf("Now after Tick = %d, want 1", c.Now())
	}
	if !c.Exclusive() || c.Window() != 0 {
		t.Fatal("GV4 must be exclusive with window 0")
	}
}

// Concurrent GV4 Ticks must hand out unique, dense timestamps — commit
// serialization under the default strategy depends on it.
func TestGV4ConcurrentTicksUnique(t *testing.T) {
	const workers = 8
	const perWorker = 1000

	var c GV4
	got := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p Probe
			for i := 0; i < perWorker; i++ {
				got[w] = append(got[w], c.Tick(&p))
			}
			if p.CASRetries != 0 {
				t.Errorf("GV4 Tick reported %d CAS retries, want 0 (it is an Add)", p.CASRetries)
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[uint64]bool, workers*perWorker)
	for w := range got {
		prev := uint64(0)
		for _, ts := range got[w] {
			if ts == 0 {
				t.Fatal("Tick returned 0 (reserved for the initial state)")
			}
			if ts <= prev {
				t.Fatalf("timestamps not monotonic within a worker: %d after %d", ts, prev)
			}
			prev = ts
			if seen[ts] {
				t.Fatalf("duplicate timestamp %d", ts)
			}
			seen[ts] = true
		}
	}
	if want := uint64(workers * perWorker); c.Now() != want {
		t.Fatalf("final clock = %d, want %d (dense)", c.Now(), want)
	}
}

// The deferred clock's whole point: ticking does not move the clock;
// observing the resulting stamp does.
func TestDeferredTickDoesNotAdvance(t *testing.T) {
	var c Deferred
	var p Probe
	if ts := c.Tick(&p); ts != 1 {
		t.Fatalf("Tick = %d, want 1", ts)
	}
	if c.Now() != 0 {
		t.Fatalf("Now after deferred Tick = %d, want 0 (tick is deferred)", c.Now())
	}
	if got := c.Observe(1, &p); got < 1 {
		t.Fatalf("Observe(1) = %d, want ≥ 1", got)
	}
	if c.Now() != 1 {
		t.Fatalf("Now after Observe = %d, want 1", c.Now())
	}
	// The next tick builds on the observed stamp.
	if ts := c.Tick(&p); ts != 2 {
		t.Fatalf("Tick after Observe = %d, want 2", ts)
	}
	if c.Exclusive() {
		t.Fatal("deferred clock must not claim exclusive stamps")
	}
	if c.Window() != 1 {
		t.Fatalf("deferred window = %d, want 1", c.Window())
	}
}

// The sharded clock: Now is the min over shards, so a tick on one shard
// is invisible until Observe reconciles the others up to it.
func TestShardedMinAndReconcile(t *testing.T) {
	c := NewSharded(4)
	if c.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", c.ShardCount())
	}
	var p1, p2 Probe
	ts := c.Tick(&p1)
	if ts != 1 {
		t.Fatalf("first Tick = %d, want 1", ts)
	}
	if c.Now() != 0 {
		t.Fatalf("Now = %d, want 0 (other shards still at 0)", c.Now())
	}
	if got := c.Observe(ts, &p2); got < ts {
		t.Fatalf("Observe(%d) = %d, want ≥ %d", ts, got, ts)
	}
	if c.Now() < ts {
		t.Fatalf("Now after Observe = %d, want ≥ %d", c.Now(), ts)
	}
	// Distinct probes stick to distinct shards: their ticks are
	// independent (both mint min+1 here).
	a, b := c.Tick(&p1), c.Tick(&p2)
	if a == 0 || b == 0 {
		t.Fatal("ticks must be positive")
	}
	if c.Exclusive() {
		t.Fatal("sharded clock must not claim exclusive stamps")
	}
	if c.Window() != NoWindow {
		t.Fatalf("sharded window = %d, want NoWindow", c.Window())
	}
}

// The sharded begin-path fast sample: Now is the cached minimum
// maintained by Observe — stale (conservative) between reconciliations,
// refreshed by any Observe, including the plain re-sample Observe(0).
func TestShardedCachedNow(t *testing.T) {
	c := NewSharded(4)
	var p Probe
	ts := c.Tick(&p)
	// All other shards are still 0, so the true minimum is 0 and the
	// cache agrees.
	if c.Now() != 0 {
		t.Fatalf("Now = %d, want 0", c.Now())
	}
	// Raise every shard via Observe: the cache must now cover the stamp.
	if got := c.Observe(ts, &p); got < ts {
		t.Fatalf("Observe(%d) = %d", ts, got)
	}
	if c.Now() < ts {
		t.Fatalf("cached Now = %d after Observe(%d)", c.Now(), ts)
	}
	// A tick on one shard advances the true minimum only after the
	// other shards catch up; the cache must never run AHEAD of the true
	// minimum (conservative), and a plain re-sample Observe(0) must
	// refresh it to exactly the true minimum.
	ts2 := c.Tick(&p)
	if now := c.Now(); now >= ts2 {
		t.Fatalf("cached Now = %d runs ahead of unreconciled stamp %d", now, ts2)
	}
	c.Observe(ts2, &p)
	if got, want := c.Observe(0, nil), c.Now(); got != want {
		t.Fatalf("Observe(0) = %d, want reconciled minimum %d", got, want)
	}
	if c.Now() < ts2 {
		t.Fatalf("cached Now = %d after reconciling %d", c.Now(), ts2)
	}
}

// GV7: ticking never advances the clock, stamps lead it by a bounded
// random step in [1, width], and observing folds them back in.
func TestGV7RandomizedIncrement(t *testing.T) {
	c := NewGV7(8)
	if c.Width() != 8 {
		t.Fatalf("Width = %d, want 8", c.Width())
	}
	var p Probe
	steps := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		now := c.Now()
		ts := c.Tick(&p)
		if ts <= now || ts > now+uint64(c.Width()) {
			t.Fatalf("Tick = %d with Now = %d, want in (%d, %d]", ts, now, now, now+uint64(c.Width()))
		}
		if c.Now() != now {
			t.Fatalf("Tick advanced the clock: %d -> %d", now, c.Now())
		}
		steps[ts-now] = true
		c.Observe(ts, &p)
		if c.Now() < ts {
			t.Fatalf("Now = %d after Observe(%d)", c.Now(), ts)
		}
	}
	if len(steps) < 2 {
		t.Fatal("randomized increments produced a constant step; expected a spread")
	}
	if c.Exclusive() {
		t.Fatal("gv7 must not claim exclusive stamps")
	}
	if c.Window() != uint64(c.Width()) {
		t.Fatalf("Window = %d, want %d", c.Window(), c.Width())
	}
	// Width rounds up to a power of two; zero picks the default.
	if NewGV7(5).Width() != 8 || NewGV7(0).Width() != DefaultGV7Width {
		t.Fatal("width rounding/default broken")
	}
}

func TestParseAndNew(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%q) = %v, %v", k.String(), got, err)
		}
		src := New(k)
		if src.Name() != k.String() {
			t.Fatalf("New(%v).Name() = %q, want %q", k, src.Name(), k.String())
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse must reject unknown strategies")
	}
}

func TestProbeTakeRetries(t *testing.T) {
	p := Probe{CASRetries: 7}
	if p.TakeRetries() != 7 {
		t.Fatal("TakeRetries must return the accumulated count")
	}
	if p.CASRetries != 0 || p.TakeRetries() != 0 {
		t.Fatal("TakeRetries must clear the count")
	}
}
