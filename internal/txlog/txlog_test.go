package txlog

import (
	"sync/atomic"
	"testing"

	"tlstm/internal/locktable"
	"tlstm/internal/tm"
)

func TestWriteLogRecycleReusesEntries(t *testing.T) {
	tbl := locktable.NewTable(8)
	owner := &locktable.OwnerRef{ThreadID: -1}
	var wl WriteLog

	e1 := wl.NewEntry(owner, 0, tbl.For(1), 1, 10)
	e2 := wl.NewEntry(owner, 0, tbl.For(2), 2, 20)
	e2.Prev.Store(e1)
	wl.Append(e1)
	wl.Append(e2)
	if wl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", wl.Len())
	}
	wl.Recycle()
	if wl.Len() != 0 {
		t.Fatalf("Len after Recycle = %d, want 0", wl.Len())
	}

	// The pool must hand the same entries back, re-initialized.
	r1 := wl.NewEntry(owner, 7, tbl.For(3), 3, 30)
	r2 := wl.NewEntry(owner, 7, tbl.For(4), 4, 40)
	if (r1 != e1 && r1 != e2) || (r2 != e1 && r2 != e2) || r1 == r2 {
		t.Fatal("Recycle must feed NewEntry from the retired entries")
	}
	for _, e := range []*locktable.WEntry{r1, r2} {
		if e.Owner != owner || e.Serial != 7 || e.Prev.Load() != nil {
			t.Fatalf("recycled entry not re-initialized: %+v", e)
		}
		if len(e.Words) != 1 {
			t.Fatalf("recycled entry Words = %v, want exactly the new word", e.Words)
		}
	}
	if v, ok := r1.Lookup(3); !ok || v != 30 {
		t.Fatalf("recycled entry Lookup(3) = %d,%v", v, ok)
	}
}

func TestWriteLogResetDoesNotRecycle(t *testing.T) {
	tbl := locktable.NewTable(8)
	owner := &locktable.OwnerRef{}
	var wl WriteLog
	e := wl.NewEntry(owner, 0, tbl.For(1), 1, 1)
	wl.Append(e)
	wl.Reset()
	if got := wl.NewEntry(owner, 0, tbl.For(1), 1, 1); got == e {
		t.Fatal("Reset must not return entries to the pool (TLSTM chain identity)")
	}
}

func TestWriteLogReleaseReturnsLoserToPool(t *testing.T) {
	tbl := locktable.NewTable(8)
	owner := &locktable.OwnerRef{}
	var wl WriteLog
	e := wl.NewEntry(owner, 0, tbl.For(1), 1, 1)
	wl.Release(e) // CAS lost: entry never installed
	if got := wl.NewEntry(owner, 0, tbl.For(2), 2, 2); got != e {
		t.Fatal("released entry must be reused")
	}
}

func TestCommitScratchLockRestorePublish(t *testing.T) {
	tbl := locktable.NewTable(8)
	p1, p2 := tbl.For(1), tbl.For(2)
	p1.R.Store(5)
	p2.R.Store(9)

	var cs CommitScratch
	if !cs.LockPair(p1) || !cs.LockPair(p2) {
		t.Fatal("first LockPair per pair must report newly locked")
	}
	if cs.LockPair(p1) {
		t.Fatal("duplicate LockPair must report already locked")
	}
	if p1.R.Load() != locktable.Locked || p2.R.Load() != locktable.Locked {
		t.Fatal("LockPair must install the Locked sentinel")
	}
	if v, ok := cs.Saved(p1); !ok || v != 5 {
		t.Fatalf("Saved(p1) = %d,%v want 5,true", v, ok)
	}
	if _, ok := cs.Saved(tbl.For(3)); ok {
		t.Fatal("Saved must miss on pairs this commit did not lock")
	}

	cs.Restore()
	if p1.R.Load() != 5 || p2.R.Load() != 9 {
		t.Fatal("Restore must put displaced versions back")
	}

	cs.Reset()
	cs.LockPair(p1)
	for _, p := range cs.Pairs() {
		p.R.Store(42)
	}
	if p1.R.Load() != 42 || p2.R.Load() != 9 {
		t.Fatal("publish via Pairs must touch exactly the locked pairs")
	}
}

func TestReadLogAppendReset(t *testing.T) {
	tbl := locktable.NewTable(8)
	var rl ReadLog
	rl.Append(tbl.For(1), 3, nil)
	rl.Append(tbl.For(2), NoVersion, nil)
	if rl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rl.Len())
	}
	es := rl.Entries()
	if es[0].Version != 3 || es[1].Version != NoVersion {
		t.Fatalf("entries = %+v", es)
	}
	rl.Reset()
	if rl.Len() != 0 {
		t.Fatal("Reset must empty the log")
	}
}

func TestLockLogAppendReset(t *testing.T) {
	var l1, l2 atomic.Uint64
	var ll LockLog
	ll.Append(&l1)
	ll.Append(&l2)
	if ll.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ll.Len())
	}
	locks := ll.Locks()
	if locks[0] != &l1 || locks[1] != &l2 {
		t.Fatal("Locks must expose entries in append order")
	}
	ll.Reset()
	if ll.Len() != 0 {
		t.Fatal("Reset must empty the log")
	}
}

func TestLockSetRestorePublish(t *testing.T) {
	var l1, l2 atomic.Uint64
	l1.Store(1)
	l2.Store(2)
	const locked = ^uint64(0)

	var ls LockSet
	v1 := l1.Swap(locked)
	ls.Add(&l1, v1)
	if !ls.Holds(&l1) || ls.Holds(&l2) {
		t.Fatal("Holds membership wrong")
	}
	ls.Restore()
	if l1.Load() != 1 {
		t.Fatalf("Restore: l1 = %d, want 1", l1.Load())
	}
	if ls.Len() != 0 || ls.Holds(&l1) {
		t.Fatal("Restore must empty the set")
	}

	ls.Add(&l1, l1.Swap(locked))
	ls.Add(&l2, l2.Swap(locked))
	ls.Publish(7)
	if l1.Load() != 7 || l2.Load() != 7 {
		t.Fatal("Publish must stamp the new version")
	}
	if ls.Len() != 0 {
		t.Fatal("Publish must empty the set")
	}
}

func TestWriteSetPutGetSorted(t *testing.T) {
	var ws WriteSet
	if _, ok := ws.Get(1); ok {
		t.Fatal("empty set must miss")
	}
	ws.Put(30, 3)
	ws.Put(10, 1)
	ws.Put(20, 2)
	ws.Put(10, 11) // overwrite
	if ws.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ws.Len())
	}
	if v, ok := ws.Get(10); !ok || v != 11 {
		t.Fatalf("Get(10) = %d,%v want 11,true", v, ok)
	}
	addrs := ws.SortedAddrs()
	if len(addrs) != 3 || addrs[0] != 10 || addrs[1] != 20 || addrs[2] != 30 {
		t.Fatalf("SortedAddrs = %v", addrs)
	}
	sum := uint64(0)
	ws.Range(func(a tm.Addr, v uint64) { sum += v })
	if sum != 11+2+3 {
		t.Fatalf("Range sum = %d", sum)
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatal("Reset must empty the set")
	}
}

func TestUndoLogOrder(t *testing.T) {
	var ul UndoLog
	ul.Append(1, 10)
	ul.Append(2, 20)
	recs := ul.Recs()
	if len(recs) != 2 || recs[0] != (UndoRec{1, 10}) || recs[1] != (UndoRec{2, 20}) {
		t.Fatalf("recs = %+v", recs)
	}
	ul.Reset()
	if ul.Len() != 0 {
		t.Fatal("Reset must empty the log")
	}
}
