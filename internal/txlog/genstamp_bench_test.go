package txlog

import (
	"testing"

	"tlstm/internal/locktable"
	"tlstm/internal/tm"
)

// Variant (a) measurement harness for epoch-based entry reclamation
// (ROADMAP "Epoch-based entry reclamation").
//
// Entry reuse in TLSTM had two candidate shapes:
//
//	(a) generation-stamp every read-log entry: widen ReadEntry with the
//	    FirstPast entry's generation counter and check (pointer, gen)
//	    in validate-task, so a recycled entry is distinguishable from
//	    its former self and entries may be reused immediately;
//	(b) quiescence: keep ReadEntry and validate-task untouched and gate
//	    reuse on the thread's committed-transaction frontier
//	    (locktable.FreeRing — what shipped).
//
// This file is the benchmark harness that implemented (a) far enough
// to price its cost — the read-log widening (24 → 32 bytes per entry,
// a 33% bigger append and validation working set) plus the extra
// generation load+compare per validation step — against (b)'s cost, a
// single frontier load per fresh-entry request
// (core.BenchmarkEntryReclaimHorizonCheck). Reads vastly outnumber
// entry creations in every workload the harness runs, so (a) taxes the
// common path to relieve the rare one; the measured numbers (recorded
// in the ROADMAP) confirmed it and (a) was deleted — these types are
// its remaining artifact, kept as the comparison's reproduction
// recipe.

// genWEntry is variant (a)'s write-lock entry: locktable.WEntry plus
// the generation counter Seed would bump on every reuse.
type genWEntry struct {
	locktable.WEntry
	Gen uint64
}

// genReadEntry is variant (a)'s widened read-log entry: ReadEntry plus
// the FirstPast generation observed at read time (32 bytes vs 24).
type genReadEntry struct {
	Pair         *locktable.Pair
	Version      uint64
	FirstPast    *genWEntry
	FirstPastGen uint64
}

// genReadLog mirrors ReadLog over the widened entry.
type genReadLog struct{ entries []genReadEntry }

func (rl *genReadLog) Reset() { rl.entries = rl.entries[:0] }

func (rl *genReadLog) Append(p *locktable.Pair, version uint64, fp *genWEntry, gen uint64) {
	rl.entries = append(rl.entries, genReadEntry{Pair: p, Version: version, FirstPast: fp, FirstPastGen: gen})
}

// readLogSize is the per-transaction read-set size the append/validate
// benchmarks model (a mid-sized task; the widening cost scales
// linearly with it).
const readLogSize = 64

// BenchmarkReadLogAppend prices one warmed task's read recording under
// both entry shapes: readLogSize appends plus the reset, per op.
func BenchmarkReadLogAppend(b *testing.B) {
	tbl := locktable.NewTable(8)
	b.Run("narrow-24B", func(b *testing.B) {
		var rl ReadLog
		e := locktable.NewEntry(&locktable.OwnerRef{}, 1, tbl.For(1), 1, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rl.Reset()
			for j := 0; j < readLogSize; j++ {
				rl.Append(tbl.For(1), uint64(j), e)
			}
		}
	})
	b.Run("genstamped-32B", func(b *testing.B) {
		var rl genReadLog
		e := &genWEntry{Gen: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rl.Reset()
			for j := 0; j < readLogSize; j++ {
				rl.Append(tbl.For(1), uint64(j), e, e.Gen)
			}
		}
	})
}

// BenchmarkReadLogValidate prices one validate-task pass under both
// shapes: scan readLogSize entries comparing the FirstPast identity —
// bare pointer for (b), pointer plus generation for (a). TLSTM runs
// this scan on every gated read/write/commit after a writer completes,
// so it is the hottest loop the widening touches.
func BenchmarkReadLogValidate(b *testing.B) {
	tbl := locktable.NewTable(8)
	b.Run("narrow-24B", func(b *testing.B) {
		var rl ReadLog
		e := locktable.NewEntry(&locktable.OwnerRef{}, 1, tbl.For(1), 1, 1)
		for j := 0; j < readLogSize; j++ {
			rl.Append(tbl.For(tm.Addr(j)), uint64(j), e)
		}
		b.ReportAllocs()
		var ok bool
		for i := 0; i < b.N; i++ {
			ok = true
			for _, re := range rl.Entries() {
				if re.FirstPast != e {
					ok = false
					break
				}
			}
		}
		_ = ok
	})
	b.Run("genstamped-32B", func(b *testing.B) {
		var rl genReadLog
		e := &genWEntry{Gen: 7}
		for j := 0; j < readLogSize; j++ {
			rl.Append(tbl.For(tm.Addr(j)), uint64(j), e, e.Gen)
		}
		b.ReportAllocs()
		var ok bool
		for i := 0; i < b.N; i++ {
			ok = true
			for _, re := range rl.entries {
				if re.FirstPast != e || re.FirstPastGen != e.Gen {
					ok = false
					break
				}
			}
		}
		_ = ok
	})
}
