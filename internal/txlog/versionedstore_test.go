package txlog

import (
	"testing"

	"tlstm/internal/tm"
)

func TestVersionedStoreIntervalSemantics(t *testing.T) {
	vs := NewVersionedStore(3, 4)
	a := tm.Addr(7)
	vs.Publish(a, 42, 5, 9)

	if v, from, ok := vs.ReadAt(a, 5); !ok || v != 42 || from != 5 {
		t.Fatalf("ReadAt(snap=from) = %d (from %d), %v; want 42 (from 5), true", v, from, ok)
	}
	if v, from, ok := vs.ReadAt(a, 8); !ok || v != 42 || from != 5 {
		t.Fatalf("ReadAt(snap inside) = %d (from %d), %v; want 42 (from 5), true", v, from, ok)
	}
	if _, _, ok := vs.ReadAt(a, 4); ok {
		t.Fatalf("ReadAt(snap < from) hit; want miss")
	}
	if _, _, ok := vs.ReadAt(a, 9); ok {
		t.Fatalf("ReadAt(snap = to) hit; the interval is half-open, want miss")
	}
	if _, _, ok := vs.ReadAt(tm.Addr(8), 6); ok {
		t.Fatalf("ReadAt on an unpublished address hit; want miss")
	}
}

func TestVersionedStoreEmptyIntervalIgnored(t *testing.T) {
	vs := NewVersionedStore(2, 4)
	a := tm.Addr(3)
	vs.Publish(a, 99, 6, 6) // from >= to: no reader could use it
	vs.Publish(a, 98, 7, 5)
	for snap := uint64(0); snap < 10; snap++ {
		if v, _, ok := vs.ReadAt(a, snap); ok {
			t.Fatalf("empty-interval publish became readable: snap=%d val=%d", snap, v)
		}
	}
}

// TestVersionedStoreRingWraparound is the store-level half of the
// overrun regression: once K fresher versions displace an entry, a
// reader parked at the old snapshot must get a miss (fall back to the
// validated path) — never a too-new value.
func TestVersionedStoreRingWraparound(t *testing.T) {
	const k = 2
	vs := NewVersionedStore(k, 4)
	a := tm.Addr(11)
	// Consecutive committed versions: val i was current over [i, i+1).
	for i := uint64(1); i <= k+2; i++ {
		vs.Publish(a, 100+i, i, i+1)
	}
	// Snapshots covered by evicted entries must miss.
	for snap := uint64(1); snap <= 2; snap++ {
		if v, _, ok := vs.ReadAt(a, snap); ok {
			t.Fatalf("snap=%d served %d after ring wraparound; want miss", snap, v)
		}
	}
	// The last k published versions are still served exactly.
	for i := uint64(3); i <= k+2; i++ {
		if v, from, ok := vs.ReadAt(a, i); !ok || v != 100+i || from != i {
			t.Fatalf("snap=%d = %d (from %d), %v; want %d (from %d), true", i, v, from, ok, 100+i, i)
		}
	}
}

// TestVersionedStoreK1Degenerate pins the K=1 configuration used by the
// differential test: only the single most recent displaced version is
// retained, and it still obeys interval semantics.
func TestVersionedStoreK1Degenerate(t *testing.T) {
	vs := NewVersionedStore(1, 4)
	if vs.K() != 1 {
		t.Fatalf("K() = %d, want 1", vs.K())
	}
	a := tm.Addr(5)
	vs.Publish(a, 10, 1, 2)
	vs.Publish(a, 20, 2, 3)
	if _, _, ok := vs.ReadAt(a, 1); ok {
		t.Fatalf("K=1 retained the displaced version; want miss at snap=1")
	}
	if v, from, ok := vs.ReadAt(a, 2); !ok || v != 20 || from != 2 {
		t.Fatalf("ReadAt(2) = %d (from %d), %v; want 20 (from 2), true", v, from, ok)
	}
	if c := NewVersionedStore(0, 4); c.K() != 1 {
		t.Fatalf("K clamp: NewVersionedStore(0).K() = %d, want 1", c.K())
	}
}

// TestVersionedStoreSlotCollision checks that two addresses hashing to
// the same slot are distinguished by the stored address and only ever
// cost each other ring capacity, never a wrong value.
func TestVersionedStoreSlotCollision(t *testing.T) {
	vs := NewVersionedStore(2, 4)
	a := tm.Addr(1)
	b := a + 16 // same slot under 2^4 slots
	vs.Publish(a, 111, 1, 5)
	vs.Publish(b, 222, 1, 5)
	if v, _, ok := vs.ReadAt(a, 3); !ok || v != 111 {
		t.Fatalf("ReadAt(a) = %d, %v; want 111, true", v, ok)
	}
	if v, _, ok := vs.ReadAt(b, 3); !ok || v != 222 {
		t.Fatalf("ReadAt(b) = %d, %v; want 222, true", v, ok)
	}
	// A third publish into the shared ring evicts a's entry; a must then
	// miss rather than serve b's value.
	vs.Publish(b, 333, 5, 6)
	if v, _, ok := vs.ReadAt(a, 3); ok {
		t.Fatalf("evicted address served %d from a colliding slot; want miss", v)
	}
}
