package txlog

import (
	"slices"
	"sync/atomic"

	"tlstm/internal/tm"
)

// VersionedRead records one read (or one held lock) of a bare versioned
// lock: the lock word and the version observed (or displaced).
type VersionedRead struct {
	Lock    *atomic.Uint64
	Version uint64
}

// VersionedReadLog is the read set of a runtime built on bare versioned
// locks (TL2, write-through). Reset retains capacity.
type VersionedReadLog struct {
	entries []VersionedRead
}

// Reset empties the log, keeping its backing storage.
func (rl *VersionedReadLog) Reset() { rl.entries = rl.entries[:0] }

// Append records one read.
func (rl *VersionedReadLog) Append(l *atomic.Uint64, version uint64) {
	rl.entries = append(rl.entries, VersionedRead{Lock: l, Version: version})
}

// Entries exposes the recorded reads for validation loops. The slice is
// owned by the log and valid until the next Append or Reset.
func (rl *VersionedReadLog) Entries() []VersionedRead { return rl.entries }

// Len reports the number of recorded reads.
func (rl *VersionedReadLog) Len() int { return len(rl.entries) }

// LockLog is a read log that records only the lock words observed, for
// runtimes whose validation compares every lock against a single read
// version rather than per-entry versions (TL2: any version above rv, or
// a lock held by someone else, kills the transaction). Half the entry
// size of VersionedReadLog, which matters in the validation loop of
// read-heavy workloads. Reset retains capacity.
type LockLog struct {
	locks []*atomic.Uint64
}

// Reset empties the log, keeping its backing storage.
func (ll *LockLog) Reset() { ll.locks = ll.locks[:0] }

// Append records one observed lock.
func (ll *LockLog) Append(l *atomic.Uint64) { ll.locks = append(ll.locks, l) }

// Locks exposes the recorded locks for validation loops. The slice is
// owned by the log and valid until the next Append or Reset.
func (ll *LockLog) Locks() []*atomic.Uint64 { return ll.locks }

// Len reports the number of recorded locks.
func (ll *LockLog) Len() int { return len(ll.locks) }

// LockSet tracks the versioned locks a transaction holds, with the
// version each acquisition displaced, plus a membership index for O(1)
// holds-this-lock tests (read-own-lock on the load path, self-locked
// entries during validation) and displaced-version lookups (the
// multi-version publish at commit). Reset retains all backing storage.
type LockSet struct {
	held []VersionedRead
	mine map[*atomic.Uint64]int32
}

// Reset empties the set, keeping its backing storage.
func (ls *LockSet) Reset() {
	ls.held = ls.held[:0]
	clear(ls.mine)
}

// Add records that l was acquired, displacing version ver. The caller
// performs the CAS itself (acquisition protocols differ per runtime).
func (ls *LockSet) Add(l *atomic.Uint64, ver uint64) {
	if ls.mine == nil {
		ls.mine = make(map[*atomic.Uint64]int32, 16)
	}
	ls.mine[l] = int32(len(ls.held))
	ls.held = append(ls.held, VersionedRead{Lock: l, Version: ver})
}

// Holds reports whether l is in the set.
func (ls *LockSet) Holds(l *atomic.Uint64) bool {
	_, ok := ls.mine[l]
	return ok
}

// Displaced returns the version this transaction's acquisition of l
// displaced, if l is in the set. Commit-time version publishing uses it
// as the `from` stamp of the interval the overwritten value covered.
func (ls *LockSet) Displaced(l *atomic.Uint64) (uint64, bool) {
	i, ok := ls.mine[l]
	if !ok {
		return 0, false
	}
	return ls.held[i].Version, true
}

// Len reports the number of held locks.
func (ls *LockSet) Len() int { return len(ls.held) }

// Restore releases every held lock at its displaced version (abort) and
// empties the set.
func (ls *LockSet) Restore() {
	for _, h := range ls.held {
		h.Lock.Store(h.Version)
	}
	ls.held = ls.held[:0]
	clear(ls.mine)
}

// Publish releases every held lock at the new version ver (commit) and
// empties the set.
func (ls *LockSet) Publish(ver uint64) {
	for _, h := range ls.held {
		h.Lock.Store(ver)
	}
	ls.held = ls.held[:0]
	clear(ls.mine)
}

// WriteSet is a lazy-versioning write buffer (TL2 style): address →
// latest buffered value, with a reusable scratch for the sorted-address
// commit order. Reset retains all backing storage.
type WriteSet struct {
	vals  map[tm.Addr]uint64
	addrs []tm.Addr
}

// Reset empties the set, keeping its backing storage.
func (ws *WriteSet) Reset() {
	clear(ws.vals)
	ws.addrs = ws.addrs[:0]
}

// Put buffers value v for address a, overwriting any earlier write.
func (ws *WriteSet) Put(a tm.Addr, v uint64) {
	if ws.vals == nil {
		ws.vals = make(map[tm.Addr]uint64, 16)
	}
	ws.vals[a] = v
}

// Get returns the buffered value for a, if any (read-own-write).
func (ws *WriteSet) Get(a tm.Addr) (uint64, bool) {
	v, ok := ws.vals[a]
	return v, ok
}

// Len reports the number of buffered addresses.
func (ws *WriteSet) Len() int { return len(ws.vals) }

// Range calls f for every buffered (address, value) pair, in map order.
func (ws *WriteSet) Range(f func(a tm.Addr, v uint64)) {
	for a, v := range ws.vals {
		f(a, v)
	}
}

// SortedAddrs returns the buffered addresses in ascending order, filled
// into a scratch slice owned by the set (valid until the next Put or
// Reset). Committers lock in this order to avoid deadlock between each
// other.
func (ws *WriteSet) SortedAddrs() []tm.Addr {
	ws.addrs = ws.addrs[:0]
	for a := range ws.vals {
		ws.addrs = append(ws.addrs, a)
	}
	slices.Sort(ws.addrs)
	return ws.addrs
}

// UndoRec is one in-place write's undo record: the target word and the
// value it held before the write.
type UndoRec struct {
	Addr tm.Addr
	Old  uint64
}

// UndoLog is the undo log of a write-through (in-place) STM. Reset
// retains capacity.
type UndoLog struct {
	recs []UndoRec
}

// Reset empties the log, keeping its backing storage.
func (ul *UndoLog) Reset() { ul.recs = ul.recs[:0] }

// Append records that the word at a held old before being overwritten.
func (ul *UndoLog) Append(a tm.Addr, old uint64) {
	ul.recs = append(ul.recs, UndoRec{Addr: a, Old: old})
}

// Recs exposes the records in append order; aborts must replay them in
// reverse. The slice is owned by the log and valid until the next
// Append or Reset.
func (ul *UndoLog) Recs() []UndoRec { return ul.recs }

// Len reports the number of records.
func (ul *UndoLog) Len() int { return len(ul.recs) }
