//go:build !race

package txlog

import (
	"testing"

	"tlstm/internal/locktable"
)

// The substrate's own zero-alloc guarantees: warmed logs and scratch
// buffers must be reusable without touching the heap. These are the
// primitives the runtimes' commit paths are built from, so TLSTM's
// commit-time bookkeeping (thread-owned CommitScratch) is covered here
// even though its per-transaction setup is not allocation-free.
func TestWarmedPrimitivesZeroAlloc(t *testing.T) {
	tbl := locktable.NewTable(8)
	owner := &locktable.OwnerRef{}

	var cs CommitScratch
	pairs := []*locktable.Pair{tbl.For(1), tbl.For(2), tbl.For(3)}
	warm := func() {
		cs.Reset()
		for _, p := range pairs {
			cs.LockPair(p)
		}
		for _, p := range pairs {
			if _, ok := cs.Saved(p); !ok {
				t.Fatal("Saved must hit")
			}
		}
		cs.Restore()
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Fatalf("warmed CommitScratch cycle allocates %.1f objects/op, want 0", n)
	}

	var wl WriteLog
	wlCycle := func() {
		for i := 0; i < 4; i++ {
			e := wl.NewEntry(owner, 0, pairs[0], 1, uint64(i))
			wl.Append(e)
		}
		wl.Recycle()
	}
	wlCycle()
	if n := testing.AllocsPerRun(100, wlCycle); n != 0 {
		t.Fatalf("warmed WriteLog cycle allocates %.1f objects/op, want 0", n)
	}

	var rl ReadLog
	rlCycle := func() {
		rl.Reset()
		for i := 0; i < 16; i++ {
			rl.Append(pairs[i%3], uint64(i), nil)
		}
	}
	rlCycle()
	if n := testing.AllocsPerRun(100, rlCycle); n != 0 {
		t.Fatalf("warmed ReadLog cycle allocates %.1f objects/op, want 0", n)
	}
}
