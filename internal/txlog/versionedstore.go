package txlog

import (
	"sync/atomic"

	"tlstm/internal/tm"
)

// mvWords is the flat width of one version entry: address, value, and
// the [from, to) timestamp interval over which value was the word's
// committed value.
const mvWords = 4

// DefaultVersionedStoreBits sizes the version table at 2^16 slots
// (~0.5 MiB per retained version depth). The table is deliberately
// smaller than the lock table: versions are a best-effort cache for
// parked readers, and a hash collision only costs a fallback to the
// validated read path, never a wrong value.
const DefaultVersionedStoreBits = 16

// VersionedStore retains, per hashed word slot, a small ring of the
// last K displaced committed versions. Committers publish into it at
// commit time, while they hold the word's write lock and memory still
// holds the value they are about to overwrite; declared read-only
// transactions whose snapshot predates the current committed version
// read from it instead of validating (see the runtimes' loadMV paths).
//
// Entry format and soundness. Each entry is (addr, val, from, to):
// val was the committed value of addr over the timestamp interval
// [from, to), where `from` is the version the publishing commit
// displaced from the word's lock and `to` is the commit's own
// timestamp. A reader with snapshot s may consume val iff
// from <= s < to. The interval makes every entry self-validating:
// correctness never depends on ring order, on publish completeness, or
// on which addresses share a slot. When several addresses share a lock,
// `from` may exceed the address's true last-write timestamp — the entry
// then claims a sub-interval of the value's real validity, which is
// conservative and sound.
//
// Publishing is lossy by design: a publisher that fails to win a slot's
// seqlock (two locks hashing onto one version slot) simply skips the
// publish. A missing entry only sends a reader to the validated path.
//
// Retirement needs no second garbage collector: unlike the write-log
// entries PR 5's FreeRing reclaims, version entries are value-inline —
// four words, no pointers — so a slot ring retires its oldest version
// by in-place overwrite under the seqlock, and the interval stamps keep
// any concurrent reader from consuming a half-overwritten or too-new
// entry. The committed-version frontier that bounds retention is the
// same one the FreeRing's horizon tracks: an entry leaves the ring
// exactly K commits after it was displaced.
//
// Concurrency. Per slot: a seqlock word (odd while a publisher is
// writing) guards K flat entries of atomics. Readers are wait-free
// (bounded retries, then a miss); publishers never block (failed
// seqlock acquisition skips). heads is written only under the seqlock,
// whose acquire/release edges order it across publishers.
type VersionedStore struct {
	seqs  []atomic.Uint64 // one seqlock per slot
	heads []uint32        // per slot: next ring position to overwrite
	vers  []atomic.Uint64 // slots × k × mvWords flat entries
	mask  uint64
	k     int
}

// NewVersionedStore creates a store with 2^bits slots of k retained
// versions each. k is clamped to at least 1.
func NewVersionedStore(k, bits int) *VersionedStore {
	if k < 1 {
		k = 1
	}
	if bits < 4 || bits > 24 {
		panic("txlog: versioned store bits out of range [4,24]")
	}
	n := 1 << bits
	return &VersionedStore{
		seqs:  make([]atomic.Uint64, n),
		heads: make([]uint32, n),
		vers:  make([]atomic.Uint64, n*k*mvWords),
		mask:  uint64(n) - 1,
		k:     k,
	}
}

// K reports the configured version depth.
func (vs *VersionedStore) K() int { return vs.k }

// Publish records that val was the committed value of a over [from, to).
// The caller must hold a's write lock (so publishers for one word are
// serialized); cross-word slot contention makes the publish a no-op.
// Intervals that are empty — from >= to, possible when a lock-sharing
// neighbor published between the displaced version and this commit's
// timestamp — carry no information a reader could use and are skipped.
func (vs *VersionedStore) Publish(a tm.Addr, val, from, to uint64) {
	if from >= to {
		return
	}
	s := uint64(a) & vs.mask
	seq := &vs.seqs[s]
	v := seq.Load()
	if v&1 != 0 || !seq.CompareAndSwap(v, v+1) {
		return // slot busy with another publisher: lossy by design
	}
	base := (int(s)*vs.k + int(vs.heads[s])) * mvWords
	vs.vers[base].Store(uint64(a))
	vs.vers[base+1].Store(val)
	vs.vers[base+2].Store(from)
	vs.vers[base+3].Store(to)
	if vs.heads[s]++; int(vs.heads[s]) == vs.k {
		vs.heads[s] = 0
	}
	seq.Add(1)
}

// ReadAt returns the retained value of a at snapshot snap, if the ring
// still holds a version whose interval covers snap, together with the
// version's birth stamp `from` (the committed version the value's
// publisher displaced — what a trace event must carry as the observed
// version stamp). A miss — no covering entry, or a publisher
// overwriting the slot faster than the bounded retries — returns
// ok == false and the caller falls back to its validated read path.
// ReadAt is wait-free.
func (vs *VersionedStore) ReadAt(a tm.Addr, snap uint64) (val, from uint64, ok bool) {
	s := uint64(a) & vs.mask
	seq := &vs.seqs[s]
	base := int(s) * vs.k * mvWords
	for attempt := 0; attempt < 3; attempt++ {
		v1 := seq.Load()
		if v1&1 != 0 {
			continue // publisher mid-write: reread the seqlock
		}
		matched := false
		var mval, mfrom uint64
		for i := 0; i < vs.k; i++ {
			e := base + i*mvWords
			if vs.vers[e].Load() != uint64(a) {
				continue
			}
			f := vs.vers[e+2].Load()
			to := vs.vers[e+3].Load()
			if f <= snap && snap < to {
				mval = vs.vers[e+1].Load()
				mfrom = f
				matched = true
				break
			}
		}
		if seq.Load() != v1 {
			continue // slot changed under the scan: retry
		}
		return mval, mfrom, matched
	}
	return 0, 0, false
}
