// Package txlog is the shared transaction-engine substrate of the four
// runtimes in this repository (internal/stm, internal/core,
// internal/tl2, internal/wtstm): read logs, write logs, write sets,
// undo logs and commit-time scratch buffers, all owned by a transaction
// (or task) descriptor and reused across attempts and — where the
// runtime pools descriptors — across transactions.
//
// The design goal is that every hot-path container here is *pooled and
// reusable*: Reset never frees backing storage, so a warmed transaction
// performs its read/write/commit work without allocating. Before this
// package, each runtime re-implemented this bookkeeping privately and
// the commit paths allocated fresh scratch (a saved-versions slice and
// a pair→version map) on every writer commit.
//
// Two families of primitives exist because the runtimes use two lock
// representations:
//
//   - ReadLog / WriteLog / CommitScratch operate on locktable.Pair
//     (r-lock, w-lock) pairs — used by SwissTM (internal/stm) and TLSTM
//     (internal/core);
//   - VersionedReadLog / LockSet / WriteSet / UndoLog operate on bare
//     versioned locks (atomic.Uint64) — used by TL2 (internal/tl2) and
//     the write-through STM (internal/wtstm).
package txlog

import (
	"math"

	"tlstm/internal/locktable"
	"tlstm/internal/tm"
)

// NoVersion marks read-log entries whose value came from a speculative
// (intra-thread) source rather than committed state: they carry no
// committed version to validate inter-thread (TLSTM tracks their
// validity purely by redo-chain identity, see internal/core).
const NoVersion = ^uint64(0)

// ReadEntry records one read at lock-pair granularity.
//
// Version is the committed version observed (NoVersion for reads served
// from a redo-log chain). FirstPast is TLSTM's chain-identity marker:
// the newest redo-chain entry from a past task of the reading thread at
// read time (nil if none, and always nil in the SwissTM baseline).
type ReadEntry struct {
	Pair      *locktable.Pair
	Version   uint64
	FirstPast *locktable.WEntry
}

// ReadLog is a transaction's read set. The zero value is ready to use;
// Reset retains capacity so a warmed log appends without allocating.
type ReadLog struct {
	entries []ReadEntry
}

// Reset empties the log, keeping its backing storage.
func (rl *ReadLog) Reset() { rl.entries = rl.entries[:0] }

// Append records one read.
func (rl *ReadLog) Append(p *locktable.Pair, version uint64, firstPast *locktable.WEntry) {
	rl.entries = append(rl.entries, ReadEntry{Pair: p, Version: version, FirstPast: firstPast})
}

// Entries exposes the recorded reads for validation loops. The slice is
// owned by the log and valid until the next Append or Reset.
func (rl *ReadLog) Entries() []ReadEntry { return rl.entries }

// Len reports the number of recorded reads.
func (rl *ReadLog) Len() int { return len(rl.entries) }

// WriteLog is a transaction's (or task's) ordered set of write-lock
// entries, with a pool of retired entries (locktable.FreeRing).
//
// Pooling contract: all entries produced by one WriteLog must share the
// same owner — the Owner field of a pooled entry is written exactly
// once, when the entry is first allocated, so stale cross-thread
// readers of Owner never race with reuse. Beyond that, the two runtimes
// that pool entries have different soundness obligations:
//
//   - The SwissTM baseline recycles unconditionally (Recycle/NewEntry):
//     entries are detached by commit/rollback before the next attempt
//     begins, and cross-thread readers consult no field but Owner.
//   - TLSTM's validate-task detects chain changes by entry pointer
//     identity, so there reuse must additionally wait out a quiescence
//     horizon (Retire/RetireCommitted/NewEntryAt): an entry is reusable
//     only once the thread's committed-transaction frontier has passed
//     its retirement serial, which guarantees every task that could
//     hold the pointer as a txlog.ReadEntry.FirstPast marker has
//     exited. Recycling without the horizon is the ABA the reclamation
//     test suite (internal/core/reclaim_test.go) exists to rule out.
type WriteLog struct {
	entries []*locktable.WEntry
	ring    locktable.FreeRing
}

// Ring exposes the log's entry pool for configuration (cap, audit
// hook) and inspection by tests.
func (wl *WriteLog) Ring() *locktable.FreeRing { return &wl.ring }

// Reset drops the log's entries without recycling them (entries keep
// their identity and are left to the GC).
func (wl *WriteLog) Reset() { wl.entries = wl.entries[:0] }

// Recycle moves every logged entry straight to the reusable tier and
// empties the log (SwissTM mode; see the pooling contract above).
func (wl *WriteLog) Recycle() {
	for _, e := range wl.entries {
		wl.ring.Put(e)
	}
	wl.entries = wl.entries[:0]
}

// Retire queues every logged entry for horizon-gated reuse and empties
// the log (TLSTM abort paths: every entry has been detached from its
// chain by the caller). at is the retirement serial reuse must wait
// for, epoch the thread's retirement epoch after the detach, and
// horizon the current committed frontier (used to promote already
// matured entries).
func (wl *WriteLog) Retire(at, epoch, horizon int64) {
	for _, e := range wl.entries {
		wl.ring.Retire(e, at, epoch, horizon)
	}
	wl.entries = wl.entries[:0]
}

// RetireCommitted is Retire for the commit path, where not every entry
// is guaranteed detached: a task of a future transaction may have
// stacked its own entry on top of a written pair, in which case the
// commit's release loop leaves that chain — committed entries included
// — in place (they now mirror memory). Only entries whose pair the
// commit actually released (scr.Released) are queued for reuse; the
// still-chained remainder is dropped to the GC, exactly as the
// pre-reclamation runtime dropped every entry.
func (wl *WriteLog) RetireCommitted(scr *CommitScratch, at, epoch, horizon int64) {
	for _, e := range wl.entries {
		if scr.Released(e.Pair) {
			wl.ring.Retire(e, at, epoch, horizon)
		}
	}
	wl.entries = wl.entries[:0]
}

// NewEntry returns an entry initialized with one buffered word, reusing
// a pooled entry when one is immediately available (SwissTM mode: no
// quiescence horizon; see the pooling contract above).
func (wl *WriteLog) NewEntry(owner *locktable.OwnerRef, serial int64, p *locktable.Pair, a tm.Addr, v uint64) *locktable.WEntry {
	return wl.NewEntryAt(owner, serial, p, a, v, math.MaxInt64)
}

// NewEntryAt returns an entry initialized with one buffered word,
// reusing a pooled entry when one is reusable under the given horizon
// (the owning thread's committed-transaction frontier). When only
// immature retired entries exist the ring records a horizon stall and a
// fresh entry is allocated.
func (wl *WriteLog) NewEntryAt(owner *locktable.OwnerRef, serial int64, p *locktable.Pair, a tm.Addr, v uint64, horizon int64) *locktable.WEntry {
	if e := wl.ring.Get(horizon); e != nil {
		e.Seed(serial, p, a, v)
		return e
	}
	return locktable.NewEntry(owner, serial, p, a, v)
}

// TakeReclaimCounts returns and clears the pool's reclaim/stall
// counters (folded into the owning runtime's stats shard at commit).
func (wl *WriteLog) TakeReclaimCounts() (reclaims, stalls uint64) {
	return wl.ring.TakeCounts()
}

// Append records an entry that has been installed in the lock table.
func (wl *WriteLog) Append(e *locktable.WEntry) { wl.entries = append(wl.entries, e) }

// Release returns an entry that was never installed (its CAS lost) to
// the pool, so a contended Store does not leak one pooled entry per
// race. Unpublished entries need no quiescence: no other task can hold
// a pointer to them.
func (wl *WriteLog) Release(e *locktable.WEntry) { wl.ring.Put(e) }

// Entries exposes the installed entries in installation order. The
// slice is owned by the log and valid until the next Append, Reset or
// Recycle.
func (wl *WriteLog) Entries() []*locktable.WEntry { return wl.entries }

// Len reports the number of installed entries.
func (wl *WriteLog) Len() int { return len(wl.entries) }

// CommitScratch holds the commit-time buffers of a writer commit: the
// set of pairs whose r-locks the commit holds and the versions it
// displaced. It replaces the per-commit saved-versions slice and
// pair→version map the runtimes used to allocate; Reset retains all
// backing storage, so a warmed committer does not allocate.
//
// A CommitScratch belongs to one committing context at a time (one
// SwissTM transaction descriptor, or one TLSTM thread — whose
// transaction commits are serialized).
type CommitScratch struct {
	pairs []*locktable.Pair
	saved []uint64
	index map[*locktable.Pair]int32

	// released marks, per locked pair, whether the commit's release
	// loop actually dropped the pair's redo chain (it leaves the chain
	// when a future task has stacked an entry on top). Entry
	// reclamation consults it: only entries on released pairs are
	// detached and may be queued for reuse (WriteLog.RetireCommitted).
	released []bool
}

// Reset empties the scratch, keeping its backing storage.
func (cs *CommitScratch) Reset() {
	cs.pairs = cs.pairs[:0]
	cs.saved = cs.saved[:0]
	cs.released = cs.released[:0]
	clear(cs.index)
}

// LockPair r-locks p (installing the Locked sentinel) and records the
// displaced version, unless this commit already holds p. It reports
// whether the pair was newly locked.
func (cs *CommitScratch) LockPair(p *locktable.Pair) bool {
	if _, dup := cs.index[p]; dup {
		return false
	}
	if cs.index == nil {
		cs.index = make(map[*locktable.Pair]int32, 16)
	}
	cs.index[p] = int32(len(cs.pairs))
	cs.pairs = append(cs.pairs, p)
	cs.saved = append(cs.saved, p.R.Swap(locktable.Locked))
	cs.released = append(cs.released, false)
	return true
}

// MarkReleased records that the commit's release loop dropped p's redo
// chain, detaching every entry of this transaction installed under p.
func (cs *CommitScratch) MarkReleased(p *locktable.Pair) {
	if i, ok := cs.index[p]; ok {
		cs.released[i] = true
	}
}

// Released reports whether p's chain was dropped by this commit.
func (cs *CommitScratch) Released(p *locktable.Pair) bool {
	i, ok := cs.index[p]
	return ok && cs.released[i]
}

// Saved returns the version displaced from p, if this commit locked it.
func (cs *CommitScratch) Saved(p *locktable.Pair) (uint64, bool) {
	i, ok := cs.index[p]
	if !ok {
		return 0, false
	}
	return cs.saved[i], true
}

// Restore puts every displaced version back (failed validation).
func (cs *CommitScratch) Restore() {
	for i, p := range cs.pairs {
		p.R.Store(cs.saved[i])
	}
}

// Pairs exposes the locked pairs in locking order. The slice is owned
// by the scratch and valid until the next LockPair or Reset.
func (cs *CommitScratch) Pairs() []*locktable.Pair { return cs.pairs }

// Len reports the number of locked pairs.
func (cs *CommitScratch) Len() int { return len(cs.pairs) }
