// Package txlog is the shared transaction-engine substrate of the four
// runtimes in this repository (internal/stm, internal/core,
// internal/tl2, internal/wtstm): read logs, write logs, write sets,
// undo logs and commit-time scratch buffers, all owned by a transaction
// (or task) descriptor and reused across attempts and — where the
// runtime pools descriptors — across transactions.
//
// The design goal is that every hot-path container here is *pooled and
// reusable*: Reset never frees backing storage, so a warmed transaction
// performs its read/write/commit work without allocating. Before this
// package, each runtime re-implemented this bookkeeping privately and
// the commit paths allocated fresh scratch (a saved-versions slice and
// a pair→version map) on every writer commit.
//
// Two families of primitives exist because the runtimes use two lock
// representations:
//
//   - ReadLog / WriteLog / CommitScratch operate on locktable.Pair
//     (r-lock, w-lock) pairs — used by SwissTM (internal/stm) and TLSTM
//     (internal/core);
//   - VersionedReadLog / LockSet / WriteSet / UndoLog operate on bare
//     versioned locks (atomic.Uint64) — used by TL2 (internal/tl2) and
//     the write-through STM (internal/wtstm).
package txlog

import (
	"tlstm/internal/locktable"
	"tlstm/internal/tm"
)

// NoVersion marks read-log entries whose value came from a speculative
// (intra-thread) source rather than committed state: they carry no
// committed version to validate inter-thread (TLSTM tracks their
// validity purely by redo-chain identity, see internal/core).
const NoVersion = ^uint64(0)

// ReadEntry records one read at lock-pair granularity.
//
// Version is the committed version observed (NoVersion for reads served
// from a redo-log chain). FirstPast is TLSTM's chain-identity marker:
// the newest redo-chain entry from a past task of the reading thread at
// read time (nil if none, and always nil in the SwissTM baseline).
type ReadEntry struct {
	Pair      *locktable.Pair
	Version   uint64
	FirstPast *locktable.WEntry
}

// ReadLog is a transaction's read set. The zero value is ready to use;
// Reset retains capacity so a warmed log appends without allocating.
type ReadLog struct {
	entries []ReadEntry
}

// Reset empties the log, keeping its backing storage.
func (rl *ReadLog) Reset() { rl.entries = rl.entries[:0] }

// Append records one read.
func (rl *ReadLog) Append(p *locktable.Pair, version uint64, firstPast *locktable.WEntry) {
	rl.entries = append(rl.entries, ReadEntry{Pair: p, Version: version, FirstPast: firstPast})
}

// Entries exposes the recorded reads for validation loops. The slice is
// owned by the log and valid until the next Append or Reset.
func (rl *ReadLog) Entries() []ReadEntry { return rl.entries }

// Len reports the number of recorded reads.
func (rl *ReadLog) Len() int { return len(rl.entries) }

// WriteLog is a transaction's (or task's) ordered set of write-lock
// entries, with an optional pool of retired entries.
//
// Pooling contract: NewEntry reuses a retired entry only if Recycle has
// been called, and Recycle is only sound when (a) none of the retired
// entries is still installed in a lock table, and (b) concurrent holders
// of stale entry pointers read no field other than Owner and the atomics
// it points to. The SwissTM baseline satisfies both (entries are
// detached by commit/rollback before the next attempt begins, and
// cross-thread readers only consult Owner), so it recycles. TLSTM must
// NOT recycle: its validate-task procedure detects chain changes by
// entry pointer identity, and reusing an entry on the same pair would
// let a stale read revalidate against a recycled pointer (ABA).
type WriteLog struct {
	entries []*locktable.WEntry
	free    []*locktable.WEntry
}

// Reset drops the log's entries without recycling them (TLSTM mode:
// retired entries keep their identity and are left to the GC).
func (wl *WriteLog) Reset() { wl.entries = wl.entries[:0] }

// Recycle retires every logged entry into the reuse pool and empties
// the log (SwissTM mode; see the pooling contract above).
func (wl *WriteLog) Recycle() {
	wl.free = append(wl.free, wl.entries...)
	wl.entries = wl.entries[:0]
}

// NewEntry returns an entry initialized with one buffered word, reusing
// a retired entry when one is available. All entries produced by one
// WriteLog must share the same owner: the Owner field of a pooled entry
// is written exactly once, when the entry is first allocated, so stale
// cross-thread readers of Owner never race with reuse.
func (wl *WriteLog) NewEntry(owner *locktable.OwnerRef, serial int64, p *locktable.Pair, a tm.Addr, v uint64) *locktable.WEntry {
	if n := len(wl.free); n > 0 {
		e := wl.free[n-1]
		wl.free = wl.free[:n-1]
		e.Seed(serial, p, a, v)
		return e
	}
	return locktable.NewEntry(owner, serial, p, a, v)
}

// Append records an entry that has been installed in the lock table.
func (wl *WriteLog) Append(e *locktable.WEntry) { wl.entries = append(wl.entries, e) }

// Release returns an entry that was never installed (its CAS lost) to
// the pool, so a contended Store does not leak one pooled entry per
// race.
func (wl *WriteLog) Release(e *locktable.WEntry) { wl.free = append(wl.free, e) }

// Entries exposes the installed entries in installation order. The
// slice is owned by the log and valid until the next Append, Reset or
// Recycle.
func (wl *WriteLog) Entries() []*locktable.WEntry { return wl.entries }

// Len reports the number of installed entries.
func (wl *WriteLog) Len() int { return len(wl.entries) }

// CommitScratch holds the commit-time buffers of a writer commit: the
// set of pairs whose r-locks the commit holds and the versions it
// displaced. It replaces the per-commit saved-versions slice and
// pair→version map the runtimes used to allocate; Reset retains all
// backing storage, so a warmed committer does not allocate.
//
// A CommitScratch belongs to one committing context at a time (one
// SwissTM transaction descriptor, or one TLSTM thread — whose
// transaction commits are serialized).
type CommitScratch struct {
	pairs []*locktable.Pair
	saved []uint64
	index map[*locktable.Pair]int32
}

// Reset empties the scratch, keeping its backing storage.
func (cs *CommitScratch) Reset() {
	cs.pairs = cs.pairs[:0]
	cs.saved = cs.saved[:0]
	clear(cs.index)
}

// LockPair r-locks p (installing the Locked sentinel) and records the
// displaced version, unless this commit already holds p. It reports
// whether the pair was newly locked.
func (cs *CommitScratch) LockPair(p *locktable.Pair) bool {
	if _, dup := cs.index[p]; dup {
		return false
	}
	if cs.index == nil {
		cs.index = make(map[*locktable.Pair]int32, 16)
	}
	cs.index[p] = int32(len(cs.pairs))
	cs.pairs = append(cs.pairs, p)
	cs.saved = append(cs.saved, p.R.Swap(locktable.Locked))
	return true
}

// Saved returns the version displaced from p, if this commit locked it.
func (cs *CommitScratch) Saved(p *locktable.Pair) (uint64, bool) {
	i, ok := cs.index[p]
	if !ok {
		return 0, false
	}
	return cs.saved[i], true
}

// Restore puts every displaced version back (failed validation).
func (cs *CommitScratch) Restore() {
	for i, p := range cs.pairs {
		p.R.Store(cs.saved[i])
	}
}

// Pairs exposes the locked pairs in locking order. The slice is owned
// by the scratch and valid until the next LockPair or Reset.
func (cs *CommitScratch) Pairs() []*locktable.Pair { return cs.pairs }

// Len reports the number of locked pairs.
func (cs *CommitScratch) Len() int { return len(cs.pairs) }
