// Package txmetrics is the live-export side of the observability
// layer: it turns the engine's end-of-run statistics into something a
// running process can serve while the workload is still in flight.
//
// The runtimes' stats shards are single-owner by design — reading a
// live shard is a data race. What IS safe to read mid-run is the
// mutex-guarded runtime aggregate (Runtime.Stats), fed whenever a
// thread passes a Sync boundary, and the trace recorder's atomic drop
// counters. A Publisher samples those through caller-registered Source
// functions, flattens counters and histogram quantiles into one
// key→value map, and exposes it three ways:
//
//   - expvar: Publish registers the map as an expvar.Func, so the
//     standard /debug/vars endpoint serves it as JSON;
//   - HTTP: Serve binds a listener and serves the default mux, which
//     carries /debug/vars (expvar) and /debug/pprof (net/http/pprof —
//     worker goroutines are pprof-labeled by internal/sched, so
//     profiles attribute samples per user-thread);
//   - deltas: DeltaLine formats the change in every counter since the
//     previous call as a one-line summary for periodic printing.
//
// The poll path allocates freely: it runs on the observer's goroutine
// at human timescales, never on a transaction hot path.
package txmetrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the default mux
	"sort"
	"strings"
	"sync"

	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

// Snapshot is one source's point-in-time contribution: named counters
// and named histograms. Histograms are flattened into .p50/.p90/.p99/
// .max/.count rows by the publisher.
type Snapshot struct {
	Counters map[string]uint64
	Hists    map[string]txstats.Hist
}

// Source produces a snapshot on demand. It is called from observer
// goroutines (HTTP handlers, the delta ticker), so it must be safe to
// call concurrently with the run it observes: sample mutex-guarded
// aggregates like Runtime.Stats, never a live per-thread shard.
type Source func() Snapshot

// Publisher samples registered sources into a flat metrics map.
type Publisher struct {
	mu      sync.Mutex
	names   []string // registration order, for stable output
	sources map[string]Source
	trace   *txtrace.Recorder
	prev    map[string]uint64 // counter values at the last DeltaLine
}

// New returns an empty publisher.
func New() *Publisher {
	return &Publisher{sources: map[string]Source{}, prev: map[string]uint64{}}
}

// AddSource registers src under name; its keys appear as "name.key".
// Re-registering a name replaces the source.
func (p *Publisher) AddSource(name string, src Source) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.sources[name]; !ok {
		p.names = append(p.names, name)
	}
	p.sources[name] = src
}

// SetTrace attaches a flight recorder whose ring count and summed drop
// counter are exported as trace.rings and trace.drops. Drop counters
// are atomics, so sampling them live is safe even while rings record.
func (p *Publisher) SetTrace(rec *txtrace.Recorder) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = rec
}

// counters samples every source's counters (plus trace drops) into one
// flat map. Histograms are excluded: deltas over quantiles are
// meaningless.
func (p *Publisher) counters() map[string]uint64 {
	p.mu.Lock()
	names := append([]string(nil), p.names...)
	srcs := make(map[string]Source, len(p.sources))
	for k, v := range p.sources {
		srcs[k] = v
	}
	trace := p.trace
	p.mu.Unlock()

	out := map[string]uint64{}
	for _, name := range names {
		for k, v := range srcs[name]().Counters {
			out[name+"."+k] = v
		}
	}
	if trace != nil {
		out["trace.drops"] = trace.Drops()
		out["trace.rings"] = uint64(len(trace.Rings()))
	}
	return out
}

// Snapshot flattens every source into "source.key" rows: counters as
// uint64, histograms as quantile/max/count rows. The result is fresh
// on every call — this is what expvar serves.
func (p *Publisher) Snapshot() map[string]any {
	p.mu.Lock()
	names := append([]string(nil), p.names...)
	srcs := make(map[string]Source, len(p.sources))
	for k, v := range p.sources {
		srcs[k] = v
	}
	trace := p.trace
	p.mu.Unlock()

	out := map[string]any{}
	for _, name := range names {
		s := srcs[name]()
		for k, v := range s.Counters {
			out[name+"."+k] = v
		}
		for k, h := range s.Hists {
			base := name + "." + k
			out[base+".count"] = h.Total()
			if h.Total() == 0 {
				continue
			}
			out[base+".p50"] = h.Quantile(0.50)
			out[base+".p90"] = h.Quantile(0.90)
			out[base+".p99"] = h.Quantile(0.99)
			out[base+".max"] = h.Max()
		}
	}
	if trace != nil {
		out["trace.drops"] = trace.Drops()
		out["trace.rings"] = uint64(len(trace.Rings()))
	}
	return out
}

// Publish registers the publisher with the process-global expvar
// registry under name. expvar panics on duplicate names, so call it
// once per process (tests use distinct names).
func (p *Publisher) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return p.Snapshot() }))
}

// DeltaLine samples the counters and formats every one that changed
// since the previous call as "key=+n", sorted by key. The first call
// baselines against zero, so it reports absolute values. Returns ""
// when nothing moved.
func (p *Publisher) DeltaLine() string {
	cur := p.counters()
	p.mu.Lock()
	prev := p.prev
	p.prev = cur
	p.mu.Unlock()

	keys := make([]string, 0, len(cur))
	for k := range cur {
		if cur[k] != prev[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=+%d", k, cur[k]-prev[k])
	}
	return b.String()
}

// Serve binds addr and serves the default HTTP mux in the background:
// /debug/vars (expvar, including everything Published) and /debug/pprof.
// It returns the bound address, so addr may use port 0.
func Serve(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(l, nil) }()
	return l.Addr().String(), nil
}
