package txmetrics

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

func testSource(commits *uint64, h *txstats.Hist) Source {
	return func() Snapshot {
		return Snapshot{
			Counters: map[string]uint64{"commits": *commits},
			Hists:    map[string]txstats.Hist{"commitLat": *h},
		}
	}
}

func TestSnapshotFlattensCountersAndHists(t *testing.T) {
	p := New()
	commits := uint64(7)
	var h txstats.Hist
	for i := 0; i < 100; i++ {
		h.Observe(i)
	}
	p.AddSource("core", testSource(&commits, &h))

	rec := txtrace.NewRecorder(16)
	ring := rec.NewRing("t")
	for i := 0; i < 40; i++ { // overrun a 16-slot ring: 24 drops
		ring.Record(txtrace.KindCommit, uint64(i), 0, 0)
	}
	p.SetTrace(rec)

	s := p.Snapshot()
	if got := s["core.commits"].(uint64); got != 7 {
		t.Fatalf("core.commits = %d, want 7", got)
	}
	if got := s["core.commitLat.count"].(uint64); got != 100 {
		t.Fatalf("commitLat.count = %d, want 100", got)
	}
	for _, k := range []string{"core.commitLat.p50", "core.commitLat.p90", "core.commitLat.p99", "core.commitLat.max"} {
		if _, ok := s[k]; !ok {
			t.Fatalf("snapshot missing %s: %v", k, s)
		}
	}
	if got := s["trace.drops"].(uint64); got != 24 {
		t.Fatalf("trace.drops = %d, want 24", got)
	}
	if got := s["trace.rings"].(uint64); got != 1 {
		t.Fatalf("trace.rings = %d, want 1", got)
	}
}

func TestSnapshotOmitsQuantilesOfEmptyHist(t *testing.T) {
	p := New()
	commits := uint64(0)
	var h txstats.Hist
	p.AddSource("x", testSource(&commits, &h))
	s := p.Snapshot()
	if got := s["x.commitLat.count"].(uint64); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	if _, ok := s["x.commitLat.p50"]; ok {
		t.Fatal("empty hist must not export quantiles")
	}
}

func TestDeltaLine(t *testing.T) {
	p := New()
	commits := uint64(5)
	var h txstats.Hist
	p.AddSource("core", testSource(&commits, &h))

	if got, want := p.DeltaLine(), "core.commits=+5"; got != want {
		t.Fatalf("first DeltaLine = %q, want %q", got, want)
	}
	if got := p.DeltaLine(); got != "" {
		t.Fatalf("unchanged DeltaLine = %q, want empty", got)
	}
	commits = 12
	if got, want := p.DeltaLine(), "core.commits=+7"; got != want {
		t.Fatalf("delta = %q, want %q", got, want)
	}
}

func TestServeExportsExpvar(t *testing.T) {
	p := New()
	commits := uint64(3)
	var h txstats.Hist
	h.Observe(1)
	p.AddSource("core", testSource(&commits, &h))
	p.Publish("tlstm-test") // unique per process; this test registers it once

	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("invalid /debug/vars JSON: %v\n%s", err, body)
	}
	var snap map[string]any
	if err := json.Unmarshal(vars["tlstm-test"], &snap); err != nil {
		t.Fatalf("tlstm-test var missing or invalid: %v", err)
	}
	if got := snap["core.commits"].(float64); got != 3 {
		t.Fatalf("exported core.commits = %v, want 3", got)
	}
}
