package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// waitSpin is how many cooperative yields a waiter burns before falling
// back to a condition-variable park. On a pipelined thread the commit
// being waited for is usually a handful of scheduler quanta away, so
// the park — a futex round-trip both ways — is the exception.
const waitSpin = 64

// Latch is a reusable, sequence-numbered completion latch: the pooled
// replacement for a per-transaction `done` channel.
//
// Completions call Publish with a monotonically increasing serial;
// waiters call Wait with the serial they need. Because the sequence
// only advances, a Latch serves an unbounded stream of completions
// without ever being reallocated or reset, and a stale handle can at
// worst observe "already done" — never block on a recycled object
// (the ABA hazard that pointer-identity tokens like channels reintroduce
// as soon as descriptors are pooled).
//
// The fast paths are futex-style: a satisfied Wait is one atomic load;
// a Publish with no parked waiters is one CAS plus one atomic load. The
// mutex and condition variable are touched only when someone actually
// parks. The zero value is ready to use and reads sequence 0. A Latch
// must not be copied after first use.
type Latch struct {
	seq     atomic.Int64
	waiters atomic.Int32

	mu   sync.Mutex
	cond sync.Cond // lazily wired to mu by the first parking waiter
}

// Seq returns the latest published sequence number.
func (l *Latch) Seq() int64 { return l.seq.Load() }

// Publish advances the latch to sequence n (monotonically: a smaller or
// equal n is a no-op) and wakes every waiter whose serial is now
// reached. The store is sequentially consistent, so a waiter that the
// publisher does not observe is guaranteed to observe the new sequence
// instead — one side of the race always sees the other.
func (l *Latch) Publish(n int64) {
	for {
		cur := l.seq.Load()
		if cur >= n {
			return
		}
		if l.seq.CompareAndSwap(cur, n) {
			break
		}
	}
	if l.waiters.Load() == 0 {
		return // futex fast path: nobody parked, nothing to wake
	}
	l.mu.Lock()
	l.cond.Broadcast() // Broadcast does not require cond.L to be wired
	l.mu.Unlock()
}

// Wait blocks until the latch reaches sequence n. It may be called any
// number of times, with any serial, from any goroutine: a serial that
// has already been published returns immediately.
func (l *Latch) Wait(n int64) {
	if l.seq.Load() >= n {
		return
	}
	// Spin briefly: on a loaded scheduler the publisher is typically
	// one quantum away, and parking would cost two futex transitions.
	for i := 0; i < waitSpin; i++ {
		runtime.Gosched()
		if l.seq.Load() >= n {
			return
		}
	}
	l.mu.Lock()
	if l.cond.L == nil {
		l.cond.L = &l.mu
	}
	l.waiters.Add(1)
	for l.seq.Load() < n {
		l.cond.Wait()
	}
	l.waiters.Add(-1)
	l.mu.Unlock()
}
