// Package sched is the speculative-task scheduler of the TLSTM runtime:
// the machinery that turns "start a task" from a goroutine spawn plus a
// handful of allocations into a store to a recycled descriptor slot and
// a wake of a long-lived worker.
//
// The TM literature is blunt that for short transactions the runtime's
// own overhead — descriptor allocation, thread hand-off, completion
// signalling — bounds throughput long before validation does, and that
// pinning work to long-lived workers is the lever for locality. This
// package owns exactly that layer, decoupled from the transactional
// semantics in internal/core:
//
//   - Pool: per user-thread, a ring of SPECDEPTH execution slots, each
//     backed by one lazily-spawned, long-lived worker goroutine. The
//     submitting goroutine arms a slot (the descriptor for that slot
//     has already been prepared in place); the slot's worker runs it
//     and parks again. Workers park on a one-token doorbell channel
//     after a short spin, so an idle thread costs nothing and a busy
//     one never pays a futex round-trip per task.
//
//   - Latch: a reusable, sequence-numbered completion latch that
//     replaces the per-transaction `done` channel. Completions publish
//     a monotonically increasing serial; waiters block until the serial
//     they hold is reached. Because serials are never reused, a latch
//     wait is immune to the ABA hazard that recycling descriptors
//     introduces everywhere pointer identity used to be the token.
//
//   - Policy: the pluggable spawn policy. Pooled (the default)
//     dispatches to the worker ring; Inline runs the task body on the
//     submitting goroutine — the fast path for SPECDEPTH-1 runtimes,
//     where there is no intra-thread speculation to overlap and a
//     worker hand-off would be pure overhead. Having both behind one
//     switch lets the harness compare scheduling modes on identical
//     workloads.
//
// A Pool is owned by a single submitting goroutine: Arm and WaitIdle
// must only be called from it. Close may be called from any goroutine
// once the owner has quiesced.
package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Policy selects how speculative tasks are dispatched to execution.
type Policy int

const (
	// Pooled dispatches each task to a ring of long-lived worker
	// goroutines (one per slot, spawned lazily on first use). This is
	// the default: tasks of one user-thread execute concurrently with
	// each other and with the submitting goroutine.
	Pooled Policy = iota
	// Inline runs each task synchronously on the submitting goroutine.
	// Only sound when at most one task is active at a time (SPECDEPTH
	// 1): an intermediate task of a multi-task transaction parks until
	// its transaction commits, which would deadlock the submitter.
	// internal/core enforces that restriction.
	Inline
)

// String names the policy for flags and labels.
func (p Policy) String() string {
	switch p {
	case Pooled:
		return "pooled"
	case Inline:
		return "inline"
	default:
		return "unknown"
	}
}

// slot states. A slot cycles idle → armed (submitter) → idle (worker,
// after the run function returns).
const (
	slotIdle uint32 = iota
	slotArmed
)

// workerSpin is how many cooperative yields a worker burns waiting for
// new work before parking on its doorbell, and likewise how many a
// WaitIdle caller burns before starting to yield unconditionally. On
// the steady state of a pipelined thread the next task arrives within a
// few yields, so parking — a full futex round-trip — is the exception.
const workerSpin = 32

// slot is one execution slot of the ring.
type slot struct {
	// state is slotIdle or slotArmed. The submitter's idle→armed store
	// publishes the descriptor prepared for this slot (release); the
	// worker's load observes it (acquire).
	state atomic.Uint32
	// gen counts arms of this slot: the slot's descriptor-generation
	// stamp. Generation 1 is the first use; every later generation is a
	// descriptor reuse. Written by the submitter only.
	gen uint64
	// spawned records whether this slot's worker goroutine exists.
	// Written by the submitter only (Pooled arms are submitter-owned).
	spawned bool
	// bell is the worker's parking doorbell: one token, sent by the
	// submitter after arming, closed by Close. Spurious tokens are
	// harmless (the worker re-checks state after every receive).
	bell chan struct{}
}

// Pool is the per-thread scheduler instance: a ring of slots and their
// workers, plus the spawn policy.
type Pool struct {
	policy Policy
	run    func(slot int)
	slots  []slot

	closed  atomic.Bool
	workers sync.WaitGroup
	closeMu sync.Mutex // serializes Close; guards closedDone
	drained bool

	spawnedCount int // submitter-owned counter of workers spawned

	// label, when set, tags every worker goroutine spawned afterwards
	// with pprof labels, so CPU and goroutine profiles attribute samples
	// to the owning user-thread instead of an anonymous pool.
	label string
}

// New creates a pool of n execution slots whose armed descriptors are
// executed by run(slot). run is invoked on a worker goroutine under the
// Pooled policy and on the arming goroutine under Inline. A panic out
// of run is the caller's contract violation: on a worker it crashes the
// process (as a crashed spawned goroutine would have before pooling);
// under Inline it propagates to the armer with the slot restored to
// idle.
func New(n int, policy Policy, run func(slot int)) *Pool {
	p := &Pool{policy: policy, run: run, slots: make([]slot, n)}
	for i := range p.slots {
		p.slots[i].bell = make(chan struct{}, 1)
	}
	return p
}

// SetLabel names the pool in runtime profiles: every worker spawned
// after the call carries the pprof labels {"sched_pool": name,
// "sched_slot": <i>}. Submitter-owned like Arm; call it before the
// first Arm so every worker is tagged. An empty name (the default)
// spawns unlabeled workers.
func (p *Pool) SetLabel(name string) { p.label = name }

// Policy reports the pool's spawn policy.
func (p *Pool) Policy() Policy { return p.policy }

// Slots reports the ring size.
func (p *Pool) Slots() int { return len(p.slots) }

// Arm hands slot i's prepared descriptor to its worker (Pooled) or runs
// it in place (Inline). The slot must be idle — the caller observes
// that through WaitIdle — and the descriptor must be fully initialized
// before Arm: the armed store is the publication point. It reports
// whether a new worker goroutine was spawned by this call.
func (p *Pool) Arm(i int) (spawnedWorker bool) {
	s := &p.slots[i]
	s.gen++
	if p.policy == Inline {
		s.state.Store(slotArmed)
		// Restore idle via defer: if the run function panics into the
		// arming goroutine and the application recovers, the slot must
		// not stay armed forever.
		defer s.state.Store(slotIdle)
		p.run(i)
		return false
	}
	if !s.spawned {
		s.spawned = true
		p.spawnedCount++
		spawnedWorker = true
		p.workers.Add(1)
		go p.workerEntry(i)
	}
	s.state.Store(slotArmed)
	// One token at most is ever outstanding: the worker drains stale
	// tokens and re-checks state, so a skipped send (full buffer) still
	// wakes it.
	select {
	case s.bell <- struct{}{}:
	default:
	}
	return spawnedWorker
}

// WaitIdle blocks until slot i's previous task has finished (its run
// function returned). The returning worker's idle store is the release
// that makes every write of the finished task visible to the caller.
func (p *Pool) WaitIdle(i int) {
	s := &p.slots[i]
	for s.state.Load() != slotIdle {
		runtime.Gosched()
	}
}

// Generation reports how many times slot i has been armed. Generations
// are the scheduler's descriptor-reuse stamps: serial numbers handed to
// slot i are gen, gen+ring, gen+2·ring, … so a generation uniquely
// names one descriptor incarnation.
func (p *Pool) Generation(i int) uint64 { return p.slots[i].gen }

// WorkersSpawned reports how many worker goroutines this pool has
// created so far. Submitter-owned, like Arm.
func (p *Pool) WorkersSpawned() int { return p.spawnedCount }

// workerEntry is the spawned goroutine's entry point: apply the pool's
// pprof labels (if any), then run the worker loop.
func (p *Pool) workerEntry(i int) {
	if p.label == "" {
		p.worker(i)
		return
	}
	pprof.Do(context.Background(),
		pprof.Labels("sched_pool", p.label, "sched_slot", strconv.Itoa(i)),
		func(context.Context) { p.worker(i) })
}

// worker is the long-lived execution loop for slot i: run the armed
// descriptor, mark the slot idle, park until the next arm.
func (p *Pool) worker(i int) {
	defer p.workers.Done()
	s := &p.slots[i]
	spin := 0
	for {
		if s.state.Load() == slotArmed {
			p.run(i)
			s.state.Store(slotIdle)
			spin = 0
			continue
		}
		if p.closed.Load() {
			return
		}
		if spin < workerSpin {
			spin++
			runtime.Gosched()
			continue
		}
		// Park. A doorbell token (or the closed channel) wakes us; the
		// loop re-checks state, so stale tokens are harmless.
		<-s.bell
		spin = 0
	}
}

// Close drains the pool: it waits for every armed slot to finish its
// task, then parks no more — all worker goroutines exit and are joined.
// The owner must have stopped arming (for TLSTM: every thread Synced)
// before Close; arming after Close panics. Close is idempotent and safe
// to call from a goroutine other than the owner once the owner has
// quiesced.
func (p *Pool) Close() {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.drained {
		return
	}
	p.drained = true
	p.closed.Store(true)
	for i := range p.slots {
		close(p.slots[i].bell) // wake parked workers; they see closed and exit
	}
	p.workers.Wait()
}
