package sched

import (
	"testing"

	"tlstm/internal/txstats"
)

func concentrated(shard, n int) txstats.Sketch {
	var s txstats.Sketch
	for i := 0; i < n; i++ {
		s.Observe(shard)
	}
	return s
}

func TestRoundRobinStatic(t *testing.T) {
	p := NewRoundRobin(4)
	for i := 0; i < 12; i++ {
		if p.Home(i) != i%4 {
			t.Fatalf("Home(%d) = %d, want %d", i, p.Home(i), i%4)
		}
	}
	if p.Rebalance(1, concentrated(3, 1000)) {
		t.Fatal("static placement must never rebalance")
	}
	if p.Home(1) != 1 {
		t.Fatal("static home moved")
	}
}

func TestAffinityRebindsOnConcentratedWindow(t *testing.T) {
	p := NewAffinity(4)
	if p.Home(1) != 1 {
		t.Fatalf("initial home = %d, want round-robin 1", p.Home(1))
	}
	if !p.Rebalance(1, concentrated(3, AffinityMinSamples)) {
		t.Fatal("concentrated window must rebind")
	}
	if p.Home(1) != 3 {
		t.Fatalf("home after rebind = %d, want 3", p.Home(1))
	}
	// Already home: no churn.
	if p.Rebalance(1, concentrated(3, 100)) {
		t.Fatal("rebind to the current home must report no move")
	}
}

func TestAffinityIgnoresThinAndDiffuseWindows(t *testing.T) {
	p := NewAffinity(4)
	if p.Rebalance(0, concentrated(2, AffinityMinSamples-1)) {
		t.Fatal("thin window must not rebind")
	}
	var diffuse txstats.Sketch
	for i := 0; i < 100; i++ {
		diffuse.Observe(i % 4) // 25% per shard: under the concentration bar
	}
	if p.Rebalance(0, diffuse) {
		t.Fatal("diffuse window must not rebind")
	}
	if p.Home(0) != 0 {
		t.Fatal("home moved without a rebind")
	}
}

func TestAffinityHotSlotAliasesIntoShardRange(t *testing.T) {
	// A hot sketch slot above the policy's shard count (the sketch has
	// txstats.SketchShards slots regardless of the table's geometry)
	// must fold back into the valid home range.
	p := NewAffinity(2)
	if !p.Rebalance(0, concentrated(3, 100)) {
		t.Fatal("expected rebind")
	}
	if h := p.Home(0); h != 3%2 {
		t.Fatalf("home = %d, want %d", h, 3%2)
	}
}
