package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLatchZeroValueAndOrder(t *testing.T) {
	var l Latch
	if l.Seq() != 0 {
		t.Fatalf("zero latch Seq = %d", l.Seq())
	}
	l.Wait(0) // already satisfied: must not block
	l.Publish(3)
	l.Publish(1) // regression must be a no-op
	if l.Seq() != 3 {
		t.Fatalf("Seq = %d after Publish(3), Publish(1)", l.Seq())
	}
	l.Wait(2)
	l.Wait(3)
}

func TestLatchWakesParkedWaiters(t *testing.T) {
	var l Latch
	const waiters = 8
	var wg sync.WaitGroup
	var woken atomic.Int32
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			l.Wait(n)
			if l.Seq() < n {
				t.Errorf("Wait(%d) returned at seq %d", n, l.Seq())
			}
			woken.Add(1)
		}(int64(i))
	}
	// Publish serials one at a time; every waiter must eventually pass.
	for n := int64(1); n <= waiters; n++ {
		l.Publish(n)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if woken.Load() != waiters {
		t.Fatalf("woken = %d, want %d", woken.Load(), waiters)
	}
}

func TestLatchConcurrentPublishers(t *testing.T) {
	var l Latch
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				l.Publish(base + i*4)
			}
		}(int64(p + 1))
	}
	done := make(chan struct{})
	go func() {
		l.Wait(999*4 + 1) // reachable: max published is ≥ 4 + 999*4
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not observe the final sequence")
	}
	if got := l.Seq(); got != 4+999*4 {
		t.Fatalf("final Seq = %d, want %d", got, 4+999*4)
	}
}

func TestPoolRunsArmedSlotsOnWorkers(t *testing.T) {
	const slots = 3
	var ran [slots]atomic.Int64
	p := New(slots, Pooled, func(i int) {
		ran[i].Add(1)
	})
	defer p.Close()
	if p.Policy() != Pooled || p.Slots() != slots {
		t.Fatal("pool identity")
	}
	for round := 0; round < 50; round++ {
		for i := 0; i < slots; i++ {
			p.WaitIdle(i)
			p.Arm(i)
		}
	}
	for i := 0; i < slots; i++ {
		p.WaitIdle(i)
		if ran[i].Load() != 50 {
			t.Fatalf("slot %d ran %d times, want 50", i, ran[i].Load())
		}
		if p.Generation(i) != 50 {
			t.Fatalf("slot %d generation = %d, want 50", i, p.Generation(i))
		}
	}
	if p.WorkersSpawned() != slots {
		t.Fatalf("WorkersSpawned = %d, want %d", p.WorkersSpawned(), slots)
	}
}

func TestPoolInlineRunsSynchronously(t *testing.T) {
	var depth int
	p := New(1, Inline, func(i int) {
		depth++ // no synchronization: must run on the arming goroutine
	})
	for i := 0; i < 10; i++ {
		p.WaitIdle(0)
		if spawned := p.Arm(0); spawned {
			t.Fatal("Inline must not spawn workers")
		}
		if depth != i+1 {
			t.Fatalf("Arm returned before inline run: depth=%d", depth)
		}
	}
	if p.WorkersSpawned() != 0 {
		t.Fatalf("WorkersSpawned = %d under Inline", p.WorkersSpawned())
	}
	p.Close()
}

func TestPoolCloseDrainsAndJoins(t *testing.T) {
	before := runtime.NumGoroutine()
	var ran atomic.Int32
	p := New(4, Pooled, func(i int) {
		time.Sleep(time.Millisecond)
		ran.Add(1)
	})
	for i := 0; i < 4; i++ {
		p.Arm(i)
	}
	p.Close() // must wait for armed slots to finish, then join workers
	if ran.Load() != 4 {
		t.Fatalf("Close returned with %d/4 tasks finished", ran.Load())
	}
	p.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d > %d", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
	}
}

func TestPoolLazySpawn(t *testing.T) {
	p := New(4, Pooled, func(i int) {})
	defer p.Close()
	if p.WorkersSpawned() != 0 {
		t.Fatal("workers must spawn lazily")
	}
	if spawned := p.Arm(2); !spawned {
		t.Fatal("first arm of a slot must spawn its worker")
	}
	p.WaitIdle(2)
	if spawned := p.Arm(2); spawned {
		t.Fatal("re-arm must reuse the long-lived worker")
	}
	p.WaitIdle(2)
	if p.WorkersSpawned() != 1 {
		t.Fatalf("WorkersSpawned = %d, want 1", p.WorkersSpawned())
	}
}

func TestPolicyString(t *testing.T) {
	if Pooled.String() != "pooled" || Inline.String() != "inline" || Policy(9).String() != "unknown" {
		t.Fatal("Policy.String")
	}
}

// A panic out of an Inline run must restore the slot to idle on its way
// to the armer, so a recovering application does not wedge the ring.
func TestPoolInlinePanicRestoresIdle(t *testing.T) {
	boom := true
	p := New(1, Inline, func(i int) {
		if boom {
			panic("task body bug")
		}
	})
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate to the armer")
			}
		}()
		p.Arm(0)
	}()
	p.WaitIdle(0) // must not spin forever
	boom = false
	p.Arm(0) // slot must be re-armable
	p.WaitIdle(0)
	if p.Generation(0) != 2 {
		t.Fatalf("Generation = %d, want 2", p.Generation(0))
	}
}
