package sched

import (
	"sync/atomic"

	"tlstm/internal/txstats"
)

// Placement is the thread→lock-table-shard placement policy: the
// scheduling half of conflict-aware thread/data mapping (Pasqualin et
// al.'s survey axis). Every thread has a "home" shard; the runtimes
// count a conflict as cross-shard when it lands outside the suffering
// thread's home, and periodically offer the policy a window of their
// conflict sketch so it can rebind them.
//
// The mapping moves threads, never addresses: a remap changes only
// which shard a thread calls home (and therefore where its conflicts
// are counted, and — on real multi-socket hardware — where the
// scheduler would pin it). Address→pair resolution is immutable
// (locktable.Layout), which is what keeps remapping semantically
// invisible.
//
// Concurrency contract: Home may be called from any goroutine at any
// time. Rebalance(thread, ...) is called only by thread's own context
// at its serialization points (commit epilogues), so per-thread windows
// need no locks; implementations publish home changes atomically.
type Placement interface {
	// Name labels the policy in result rows and flags.
	Name() string
	// Home reports thread's current home shard.
	Home(thread int) int
	// Rebalance offers the window of conflicts thread observed since
	// its previous call (a sketch delta, not a cumulative total) and
	// reports whether the thread's home changed. Owner-called only.
	Rebalance(thread int, window txstats.Sketch) bool
}

// RoundRobin is the static default placement: thread i is homed on
// shard i mod N forever. It is the degenerate policy that preserves
// the pre-sharding behaviour (and the control leg of every
// affinity-vs-static comparison).
type RoundRobin struct {
	shards int
}

// NewRoundRobin builds the static policy for an N-shard table.
func NewRoundRobin(shards int) *RoundRobin {
	if shards <= 0 {
		shards = 1
	}
	return &RoundRobin{shards: shards}
}

// Name implements Placement.
func (r *RoundRobin) Name() string { return "static" }

// Home implements Placement: thread mod shards, forever.
func (r *RoundRobin) Home(thread int) int { return thread % r.shards }

// Rebalance implements Placement: the static policy never moves.
func (r *RoundRobin) Rebalance(int, txstats.Sketch) bool { return false }

// placementThreads bounds the thread identities an Affinity policy
// tracks; higher thread ids alias modulo this (a power of two). 64
// home slots is 256 B — far above the thread counts the harness runs.
const placementThreads = 64

// Affinity thresholds: a window must carry at least MinSamples
// conflicts, with the hottest shard owning at least half of them,
// before a rebind is worth the locality churn. Thin or diffuse windows
// leave the thread where it is. The sample bar is deliberately low:
// the runtimes observe only cold abort/defeat paths into the sketch,
// so even a heavily contended window yields a handful of samples per
// remap period.
const (
	AffinityMinSamples    = 8
	affinityConcentration = 0.5
)

// Affinity is the conflict-sketch-driven placement: each thread starts
// at its round-robin home and is rebound toward the shard its recent
// conflicts concentrate in. Reconciliation is online and decentralized
// the way the sharded clock's Observe is — each thread feeds its own
// sketch window at its own commit boundary; there is no central
// controller goroutine to synchronize with.
type Affinity struct {
	shards int
	homes  [placementThreads]atomic.Int32
}

// NewAffinity builds the affinity policy for an N-shard table, with
// every thread initially at its round-robin home.
func NewAffinity(shards int) *Affinity {
	if shards <= 0 {
		shards = 1
	}
	a := &Affinity{shards: shards}
	for i := range a.homes {
		a.homes[i].Store(int32(i % shards))
	}
	return a
}

// Name implements Placement.
func (a *Affinity) Name() string { return "affinity" }

// Home implements Placement.
func (a *Affinity) Home(thread int) int {
	return int(a.homes[uint(thread)&(placementThreads-1)].Load())
}

// Rebalance implements Placement: rebind the thread's home to the
// window's hottest shard when the window is big and concentrated
// enough to justify the move.
func (a *Affinity) Rebalance(thread int, window txstats.Sketch) bool {
	if window.Total() < AffinityMinSamples {
		return false
	}
	hot, frac := window.Hot()
	if frac < affinityConcentration {
		return false
	}
	home := int32(hot % a.shards)
	slot := &a.homes[uint(thread)&(placementThreads-1)]
	if slot.Load() == home {
		return false
	}
	slot.Store(home)
	return true
}
