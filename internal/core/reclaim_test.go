package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tlstm/internal/tm"
	"tlstm/internal/xrand"
)

// Reclamation conformance suite: the tests that make epoch-based entry
// reclamation trustworthy. The hazard is ABA on validate-task's pointer
// identity — a write-lock entry recycled and re-installed on the same
// pair while a task still holds it as a txlog.ReadEntry.FirstPast
// marker would let a stale read revalidate falsely. The property test
// drives the invariant checker (Config.ReclaimAudit) through contended,
// abort-heavy pipelines under both ring configurations; the directed
// test stages the ABA scenario by hand and proves the quiescence gate
// degrades it to a spurious abort, never a false pass.

// TestReclaimQuiescenceInvariant is the property test: no entry is ever
// recycled while any task's read horizon is below its retirement epoch.
// Every recycle is audited (Config.ReclaimAudit panics on violation)
// while 3 threads × depth-4 transactions hammer a small account array —
// plenty of WAW restarts, CM defeats and whole-transaction aborts, so
// entries retire through all three retirement sites. Runs under -race
// in CI, where a broken horizon would additionally surface as a data
// race on the recycled entry's plain fields. Both ring configurations
// are exercised: unbounded (the production default) and the aggressive
// single-slot ring that recycles on almost every commit.
func TestReclaimQuiescenceInvariant(t *testing.T) {
	const (
		threads     = 3
		depth       = 4
		accounts    = 32
		txPerThread = 1200
		initial     = 1_000_000
	)
	for _, ring := range []int{0, 1} {
		rt := New(Config{SpecDepth: depth, LockTableBits: 12, ReclaimRing: ring, ReclaimAudit: true})
		d := rt.Direct()
		base := d.Alloc(accounts)
		for i := 0; i < accounts; i++ {
			d.Store(base+tm.Addr(i), initial)
		}

		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			thr := rt.NewThread()
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				rng := seed
				next := func() uint64 { return xrand.Splitmix(&rng) }
				for i := 0; i < txPerThread; i++ {
					// A transaction of `depth` tasks moving money along
					// a random cycle (the stress soak's workload shape).
					idx := make([]tm.Addr, depth+1)
					for j := range idx {
						idx[j] = base + tm.Addr(next()%accounts)
					}
					amt := next() % 100
					fns := make([]TaskFunc, depth)
					for j := 0; j < depth; j++ {
						from, to := idx[j], idx[j+1]
						fns[j] = func(tk *Task) {
							f := tk.Load(from)
							if from != to && f >= amt {
								tk.Store(from, f-amt)
								tk.Store(to, tk.Load(to)+amt)
							}
						}
					}
					if err := thr.Atomic(fns...); err != nil {
						t.Error(err)
						return
					}
				}
				thr.Sync()
			}(uint64(w + 1))
		}
		wg.Wait()

		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += d.Load(base + tm.Addr(i))
		}
		if want := uint64(accounts) * initial; sum != want {
			t.Fatalf("ring=%d: total = %d, want %d (atomicity violated)", ring, sum, want)
		}
		st := rt.Stats()
		if st.EntryReclaims == 0 {
			t.Fatalf("ring=%d: EntryReclaims = 0 — the audit never saw a recycle, the property test proved nothing", ring)
		}
		rt.Close()
	}
}

// TestReclaimABADirectedSpuriousAbortOnly stages the textbook ABA
// scenario by hand and asserts the reclamation design contains it:
//
//  1. transaction 1's first task installs entry E on a pair and
//     completes, while the transaction is held open;
//  2. a speculating reader B of transaction 2 records E as its
//     FirstPast chain-identity marker, then parks mid-attempt;
//  3. transaction 1 commits: E is detached and retired — but B, still
//     parked on the stale pointer, keeps the quiescence horizon below
//     E's retirement serial, so E must NOT be recycled;
//  4. a writer task C of transaction 3 (running on E's own descriptor,
//     the only context that could ever reuse E) write-locks the same
//     pair: the ring must stall and hand it a fresh entry instead;
//  5. B wakes and revalidates: the worst permitted outcome is a
//     spurious abort (the chain changed under it), never a false pass —
//     B re-runs and its committed read still observes transaction 1's
//     value.
//
// Afterwards the pipeline drains and E's descriptor writes again: now
// the horizon has passed and E is reclaimed for real (the "quiescent →
// reused" tail of the entry lifecycle).
func TestReclaimABADirectedSpuriousAbortOnly(t *testing.T) {
	const depth = 3
	rt := New(Config{SpecDepth: depth, LockTableBits: 12, ReclaimAudit: true})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	addr := d.Alloc(1)
	pair := rt.locks.For(addr)

	var holdTx1, bParked, bRelease atomic.Bool
	var bRuns atomic.Int32
	var bCommittedRead atomic.Uint64

	holdTx1.Store(true)
	// tx1: serial 1 writes the pair (installing E), serial 2 holds the
	// transaction open so E stays installed while B reads it.
	h1, err := thr.Submit(
		func(tk *Task) { tk.Store(addr, 100) },
		func(tk *Task) {
			for holdTx1.Load() {
				runtime.Gosched()
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	// tx2: B (serial 3) waits for the writer to complete, reads the
	// pair — recording FirstPast = E — and parks mid-attempt.
	h2, err := thr.Submit(func(tk *Task) {
		for thr.completedTask.Load() < 1 {
			runtime.Gosched() // let serial 1 complete so E becomes readable past state
		}
		v := tk.Load(addr)
		bCommittedRead.Store(v)
		if bRuns.Add(1) == 1 {
			bParked.Store(true)
			for !bRelease.Load() {
				runtime.Gosched()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	for !bParked.Load() {
		runtime.Gosched()
	}
	e := pair.W.Load()
	if e == nil || e.Serial != 1 {
		t.Fatalf("setup: expected serial-1 entry installed on the pair, got %+v", e)
	}
	if got := bCommittedRead.Load(); got != 100 {
		t.Fatalf("setup: B's speculative read = %d, want 100 (served from E)", got)
	}

	// Commit tx1: E is detached and retired. B still parks on the stale
	// pointer, pinning the committed frontier at 2 — below E's
	// retirement serial (startSerial-1+depth = 3) — so E must stay
	// quiescing.
	holdTx1.Store(false)
	h1.Wait()

	// tx3: C (serial 4) runs on E's own descriptor (slot 4%3 = 1%3) —
	// the only context whose ring holds E. Its write to the same pair
	// must be served a fresh entry (a horizon stall), not E.
	h3, err := thr.Submit(func(tk *Task) { tk.Store(addr, 200) })
	if err != nil {
		t.Fatal(err)
	}
	var e2 = pair.W.Load()
	for e2 == nil {
		runtime.Gosched()
		e2 = pair.W.Load()
	}
	if e2 == e {
		t.Fatal("ABA: entry E was recycled and re-installed while a parked reader still held it as FirstPast")
	}

	// Wake B: its validate-task must observe the chain change and
	// restart (spurious abort — its read was in fact still consistent),
	// and the re-run must still read transaction 1's committed value.
	bRelease.Store(true)
	h2.Wait()
	h3.Wait()
	thr.Sync()

	if runs := bRuns.Load(); runs < 2 {
		t.Fatalf("B ran %d attempt(s); the stale FirstPast must cost it at least one spurious restart", runs)
	}
	if got := bCommittedRead.Load(); got != 100 {
		t.Fatalf("B's committed read = %d, want 100 (a false-pass or lost serialization)", got)
	}
	if got := d.Load(addr); got != 200 {
		t.Fatalf("final memory = %d, want 200 (tx1 then tx3 in program order)", got)
	}
	st := thr.Stats()
	if st.RestartWAR == 0 {
		t.Fatal("expected B's spurious restart to be classified RestartWAR (validate-task failure)")
	}
	if st.HorizonStalls == 0 {
		t.Fatal("expected C's entry request to stall on the horizon (E still quiescing)")
	}
	if st.EntryReclaims != 0 {
		t.Fatalf("EntryReclaims = %d before quiescence; nothing may be recycled while B parks", st.EntryReclaims)
	}

	// Lifecycle tail: with the pipeline drained the frontier has passed
	// E's stamp; the next writes on E's descriptor reclaim it.
	for i := 0; i < 2*depth; i++ {
		if err := thr.Atomic(func(tk *Task) { tk.Store(addr, tk.Load(addr)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	if st := thr.Stats(); st.EntryReclaims == 0 {
		t.Fatal("E (and tx3's entry) never reclaimed after quiescence")
	}
}
