package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tlstm/internal/tm"
)

// Memory-model litmus tests for the thread's two completion counters.
//
// finishCommit stores completedTask (the commit task's serial) strictly
// before it publishes the committed-transaction frontier (txDone), and
// entry reclamation leans on exactly that order: a reuse gated on the
// frontier may assume every task of the covered transaction has fully
// completed. The litmus pins the ordering as an observable contract —
// an observer that reads the frontier first and completedTask second
// must never see the frontier ahead — instead of leaving it implicit
// in finishCommit's statement order.
//
// The contract only holds on abort-free runs: a transaction abort
// deliberately lowers completedTask below already-published frontiers
// of *earlier* transactions' serials it replays (see lowerCounter in
// abort.go). The workload is therefore a single thread running
// conflict-free transactions — no other thread exists to feed the
// contention manager, so no transaction ever aborts (asserted at the
// end, keeping the litmus honest about its own precondition).
func TestLitmusFrontierOrdersCompletedTask(t *testing.T) {
	const (
		depth = 3
		txs   = 4000
	)
	rt := New(Config{SpecDepth: depth, LockTableBits: 10})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	base := d.Alloc(depth)

	stop := make(chan struct{})
	var violations atomic.Int64
	var observed atomic.Int64 // highest frontier the observer ever saw
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Load order is the contract: frontier first, counter
			// second. Both are sequentially consistent atomics, so
			// observing frontier f proves the Store(completedTask=f)
			// that preceded Publish(f) — and completedTask only grows
			// on an abort-free run.
			f := thr.txDone.Seq()
			c := thr.completedTask.Load()
			if c < f {
				violations.Add(1)
			}
			if f > observed.Load() {
				observed.Store(f)
			}
			// Yield unconditionally: on a single-CPU box a spinning
			// observer would otherwise starve the workers it watches.
			runtime.Gosched()
		}
	}()

	fns := make([]TaskFunc, depth)
	for j := 0; j < depth; j++ {
		addr := base + tm.Addr(j)
		fns[j] = func(tk *Task) { tk.Store(addr, tk.Load(addr)+1) }
	}
	for i := 0; i < txs; i++ {
		if err := thr.Atomic(fns...); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if got := thr.stats.TxAborted; got != 0 {
		t.Fatalf("litmus precondition broken: %d transaction aborts on a conflict-free single-thread run", got)
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("observer saw the frontier ahead of completedTask %d times", n)
	}
	if observed.Load() == 0 {
		t.Fatalf("observer never saw the frontier advance; litmus is vacuous")
	}
	for j := 0; j < depth; j++ {
		if got := d.Load(base + tm.Addr(j)); got != txs {
			t.Fatalf("word %d: got %d, want %d", j, got, txs)
		}
	}
}
