package core

import (
	"testing"

	"tlstm/internal/tm"
)

func TestNestFlattening(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	err := thr.Atomic(func(tk *Task) {
		tk.Store(a, 1)
		tk.Nest(func(tk *Task) {
			tk.Store(a, tk.Load(a)+10)
			tk.Nest(func(tk *Task) {
				tk.Store(a, tk.Load(a)*2)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got := d.Load(a); got != 22 {
		t.Fatalf("nested effects = %d, want 22", got)
	}
}

func TestSpecDOALLIndependentIterations(t *testing.T) {
	rt := newRT(4)
	thr := rt.NewThread()
	d := rt.Direct()
	const n = 40
	base := d.Alloc(n)

	err := thr.SpecDOALL(n, 4, func(tk *Task, i int) {
		tk.Store(base+tm.Addr(i), uint64(i*i))
	})
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	for i := 0; i < n; i++ {
		if got := d.Load(base + tm.Addr(i)); got != uint64(i*i) {
			t.Fatalf("iteration %d wrote %d", i, got)
		}
	}
	if st := thr.Stats(); st.TxCommitted != 1 {
		t.Fatalf("SpecDOALL must be one transaction, committed %d", st.TxCommitted)
	}
}

// Cross-iteration dependencies: a prefix-sum loop carries a dependency
// from every iteration to the next; spec-DOALL must still produce the
// sequential result via rollbacks.
func TestSpecDOALLLoopCarriedDependency(t *testing.T) {
	rt := newRT(3)
	thr := rt.NewThread()
	d := rt.Direct()
	const n = 24
	base := d.Alloc(n + 1)
	for i := 0; i < n; i++ {
		d.Store(base+tm.Addr(i), uint64(i+1))
	}
	acc := base + tm.Addr(n)

	err := thr.SpecDOALL(n, 3, func(tk *Task, i int) {
		tk.Store(acc, tk.Load(acc)+tk.Load(base+tm.Addr(i)))
	})
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got := d.Load(acc); got != n*(n+1)/2 {
		t.Fatalf("accumulator = %d, want %d", got, n*(n+1)/2)
	}
}

func TestSpecDOALLTaskClamping(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	// More tasks than depth and more tasks than iterations: both clamp.
	if err := thr.SpecDOALL(1, 8, func(tk *Task, i int) { tk.Store(a, 9) }); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if d.Load(a) != 9 {
		t.Fatal("clamped SpecDOALL did not run")
	}
}

func TestSpecDOACROSSPipelines(t *testing.T) {
	rt := newRT(4)
	thr := rt.NewThread()
	d := rt.Direct()
	const n = 60
	base := d.Alloc(n)
	acc := d.Alloc(1)

	err := thr.SpecDOACROSS(n, func(tk *Task, i int) {
		tk.Store(base+tm.Addr(i), uint64(i))
		if i%10 == 0 {
			tk.Store(acc, tk.Load(acc)+1) // occasional shared dependency
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got := d.Load(acc); got != 6 {
		t.Fatalf("accumulator = %d, want 6", got)
	}
	st := thr.Stats()
	if st.TxCommitted != n {
		t.Fatalf("SpecDOACROSS must commit one transaction per iteration, got %d", st.TxCommitted)
	}
}
