package core

import (
	"sync"
	"testing"
)

// Sync must merge each thread's unshared shard into the runtime-global
// aggregate exactly once: the aggregate equals the sum of the per-thread
// snapshots, and a second Sync must not double-count.
func TestRuntimeStatsAggregatesThreadShards(t *testing.T) {
	rt := newRT(2)
	d := rt.Direct()
	a := d.Alloc(1)

	const threads, txs = 3, 30
	thrs := make([]*Thread, threads)
	var wg sync.WaitGroup
	for i := range thrs {
		thrs[i] = rt.NewThread()
		wg.Add(1)
		go func(thr *Thread) {
			defer wg.Done()
			for j := 0; j < txs; j++ {
				_ = thr.Atomic(
					func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
					func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
				)
			}
			thr.Sync()
		}(thrs[i])
	}
	wg.Wait()

	var want Stats
	for _, thr := range thrs {
		want.Add(thr.Stats())
	}
	if got := rt.Stats(); got != want {
		t.Fatalf("runtime aggregate = %+v, want sum of thread shards %+v", got, want)
	}
	if want.TxCommitted != threads*txs {
		t.Fatalf("TxCommitted = %d, want %d", want.TxCommitted, threads*txs)
	}

	// Re-Sync without new work: the aggregate must not change.
	for _, thr := range thrs {
		thr.Sync()
	}
	if got := rt.Stats(); got != want {
		t.Fatalf("idempotent Sync violated: aggregate = %+v, want %+v", got, want)
	}
}
