package core

import (
	"sync"
	"testing"
)

// TestExtensionRefusesZombieAcrossOwnWriteLock is the TLSTM twin of the
// stm regression with the same name: extension must not exempt pairs
// this task write-locks, because the pair's r-lock may have been
// advanced by another thread's commit between the task's read and its
// own chain installation. The trace-based opacity checker caught the
// old exemption letting a doomed task extend past a conflicting commit
// and run on old-X/new-Y until commit-time validation aborted it.
func TestExtensionRefusesZombieAcrossOwnWriteLock(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 12})
	defer rt.Close()
	d := rt.Direct()
	base := d.Alloc(2)
	addrX, addrY := base, base+1

	start := make(chan struct{})
	committed := make(chan struct{})
	var once sync.Once
	go func() {
		<-start
		thr := rt.NewThread()
		if err := thr.Atomic(func(tk *Task) {
			tk.Store(addrX, 1)
			tk.Store(addrY, 1)
		}); err != nil {
			t.Error(err)
		}
		close(committed)
	}()

	thr := rt.NewThread()
	attempts := 0
	torn := false
	if err := thr.Atomic(func(tk *Task) {
		attempts++
		x := tk.Load(addrX)
		once.Do(func() {
			close(start)
			<-committed
		})
		<-committed
		tk.Store(addrX, x+2)
		y := tk.Load(addrY)
		if x == 0 && y == 1 {
			torn = true
		}
	}); err != nil {
		t.Fatal(err)
	}

	if torn {
		t.Fatalf("task observed old X with new Y: zombie snapshot survived extension")
	}
	if attempts < 2 {
		t.Fatalf("victim committed in %d attempt(s); the interleaving never forced the doomed first attempt", attempts)
	}
	if got := d.Load(addrX); got != 3 {
		t.Fatalf("X = %d, want 3 (writer's 1 + victim's +2)", got)
	}
	if got := d.Load(addrY); got != 1 {
		t.Fatalf("Y = %d, want 1", got)
	}
}
