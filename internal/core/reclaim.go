package core

import "fmt"

// Entry reclamation (ROADMAP "Epoch-based entry reclamation", option
// (b)): the machinery that closed the last allocation on the TLSTM
// writer hot path. The moving parts live in three layers —
// locktable.FreeRing holds each descriptor's retired entries,
// txlog.WriteLog routes retirement and reuse through it, and this
// package decides *when*: entries retire at finishCommit and in the
// abort sweeps, stamped with a retirement serial no armed task can
// exceed, and are reused only once the thread's committed-transaction
// frontier (sched.Latch txDone) has passed that stamp.
//
// Entry lifecycle:
//
//	armed      the owning task installed the entry in a redo chain
//	committed  the transaction published its writes; the release loop
//	           dropped the chain (or left it to a future stacker, in
//	           which case the entry is abandoned to the GC instead)
//	retired    the entry sits in its descriptor's free ring, stamped
//	           with retirement serial = committed frontier + SPECDEPTH
//	quiescent  the frontier passed the stamp: every task whose attempt
//	           could span the retirement has exited, so no stale
//	           FirstPast pointer to the entry survives anywhere
//	reused     Seed re-initializes it for a new install
//
// Why the frontier and not completedTask: the reuse gate must be
// monotonic (stamps in one ring are FIFO) and completedTask is lowered
// by transaction aborts; the committed frontier only advances, and
// "frontier ≥ serial s" implies every task with serial ≤ s has exited
// for good — committed transactions never restart.
//
// The stamps are upper bounds on armed serials only because every task
// exit is ordered after its transaction's txDone publish: the
// commit-task exits after finishCommit (which publishes), and the
// intermediate commit wait gates on the latch rather than on
// completedTask — finishCommit stores completedTask a moment before it
// publishes, and an exit inside that window would let the submitter
// arm a serial the abort sweep's frontier-based stamp no longer
// covers. (Caught in review; the commit path was always safe because
// it retires before the completedTask store.)
//
// The audit below is the runtime half of the reclamation conformance
// suite (reclaim_test.go): enabled by Config.ReclaimAudit, it hangs off
// locktable.FreeRing.OnReclaim and re-proves, on every recycle served
// from the quiescence tier, that no live attempt could still hold the
// entry.

// auditReclaim is the reclamation invariant checker, invoked on every
// entry reuse served from a quiescence ring when Config.ReclaimAudit is
// set. It asserts, independently of the derivation that makes the gate
// sound:
//
//  1. the reuse gate itself — the committed frontier has reached the
//     entry's retirement serial;
//  2. the quiescence invariant — no task of the thread is inside an
//     attempt that began before the entry was retired. Each task
//     publishes the retirement epoch it observed at attempt begin
//     (Task.readHorizon, horizonDead while its read log is dead); an
//     attempt spanning the retirement would still show an epoch below
//     the entry's, and could hold the recycled pointer as a FirstPast
//     marker — the ABA the horizon exists to rule out.
//
// A violation is a runtime bug, never a workload artifact, so it panics.
func (thr *Thread) auditReclaim(at, epoch int64) {
	if f := thr.txDone.Seq(); f < at {
		panic(fmt.Sprintf(
			"core: reclaim audit: entry with retirement serial %d recycled at committed frontier %d (thread %d)",
			at, f, thr.id))
	}
	for i := range thr.slots {
		if p := thr.slots[i].Load(); p != nil {
			if h := p.readHorizon.Load(); h < epoch {
				panic(fmt.Sprintf(
					"core: reclaim audit: entry with retirement epoch %d recycled while task serial %d is mid-attempt with read horizon %d (thread %d)",
					epoch, p.serial.Load(), h, thr.id))
			}
		}
	}
}
