package core

import (
	"runtime"
	"time"
	"unsafe"

	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mode"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

// commitCost is the modeled per-task commit serialization cost in work
// units, used by the virtual-time model (DESIGN.md §3).
const commitCost = 2

// remapPeriod is how many committed transactions a thread accumulates
// between affinity-placement rebalance checks (same cadence as the flat
// runtimes' per-worker remap windows).
const remapPeriod = 64

// commitStep is the task's commit procedure (Alg. 3 lines 65–77): wait
// for all past tasks of the user-thread to complete, run the gated WAR
// validation, then either mark this task completed and wait for the
// user-transaction to commit (intermediate task) or commit the whole
// user-transaction (commit-task).
func (t *Task) commitStep() {
	thr := t.thr
	ser := t.serial.Load()

	// Commits of tasks of the same user-thread are serialized: wait for
	// every task with a lower serial to complete (lines 66–68).
	for thr.completedTask.Load() < ser-1 {
		t.checkSignals()
		runtime.Gosched()
	}
	t.checkSignals()

	// Previously undetected WAR conflicts (lines 69–70): validate when
	// a writer completed since we last validated.
	t.maybeValidate()

	// That was the attempt's last validate-task: from here on the read
	// log's FirstPast markers are never compared again (commit-time
	// validation is version-based), so the entry-reclamation audit may
	// stop charging this task. A transaction abort from here restarts
	// through begin, which reopens the window.
	t.readHorizon.Store(horizonDead)

	if !t.tryCommit {
		// Intermediate task (lines 71–77): publish completion, then
		// wait until the commit-task commits the user-transaction. The
		// wait gates on the committed-transaction frontier (txDone),
		// NOT on completedTask, and the distinction is load-bearing for
		// entry reclamation: finishCommit stores completedTask before
		// it publishes the frontier, so a completedTask-gated exit
		// could free this slot — letting the submitter arm serial
		// ser+SPECDEPTH — while the frontier still trails, and the
		// abort sweep's retirement stamp (frontier + SPECDEPTH) would
		// no longer bound every armed serial. Exiting only after the
		// publish keeps "armed serial ≤ frontier + SPECDEPTH" a
		// whole-runtime invariant (see reclaim.go).
		if t.writeLog.Len() > 0 {
			thr.completedWriter.Store(ser)
		}
		thr.completedTask.Store(ser)
		for thr.txDone.Seq() < t.tx.commitSerial {
			if t.tx.abortTx.Load() {
				if t.rendezvousMayCommit(true) {
					// The signal arrived after the commit-task passed
					// its last validation: the transaction committed
					// and the "abort" was spurious (see
					// rendezvousMayCommit). Exit the wait normally.
					return
				}
				if t.traced {
					t.tr.Record(txtrace.KindAbort, t.validTS, uint64(ser), txtrace.AbortSignal)
				}
				panic(restartSignal{})
			}
			runtime.Gosched()
		}
		return
	}

	t.commitTransaction()
}

// commitTransaction is the commit-task's user-transaction commit
// (Alg. 3 lines 78–94): it considers the read and write logs of every
// task of the transaction, locks and publishes all buffered writes, and
// finally signals completion of the whole transaction.
func (t *Task) commitTransaction() {
	tx := t.tx
	thr := t.thr
	rt := thr.rt

	writeTx := false
	for _, task := range tx.tasks {
		if task.writeLog.Len() > 0 {
			writeTx = true
			break
		}
	}

	if !writeTx {
		// Read-only transaction: tasks may have completed at different
		// logical times; if their valid-ts values diverge the union of
		// their reads must be revalidated, otherwise commit is free
		// (§3.3, "Commit").
		sameTS := true
		for _, task := range tx.tasks {
			if task.validTS != t.validTS {
				sameTS = false
				break
			}
		}
		if !sameTS {
			if failed := t.validateTxReads(nil); failed != nil {
				t.noteConflictPair(failed)
				t.recordTxValidate(t.validTS, false)
				t.abortOwnTx()
			}
		}
		t.finishCommit(0, false)
		return
	}

	// Optimistic pre-lock validation (line 78): cheaper to discover a
	// doomed transaction before acquiring r-locks.
	if failed := t.validateTxReads(nil); failed != nil {
		t.noteConflictPair(failed)
		t.recordTxValidate(t.validTS, false)
		t.abortOwnTx()
	}

	// Lock the r-locks of every written pair, remembering displaced
	// versions for restoration on failure (lines 81–83). Several tasks
	// may have written the same pair; lock it once. The scratch is
	// thread-owned and reused, so steady-state commits do not allocate.
	scr := &thr.commitScratch
	scr.Reset()
	for _, task := range tx.tasks {
		for _, e := range task.writeLog.Entries() {
			if scr.LockPair(e.Pair) {
				t.workAcc++
			}
		}
	}

	ts := rt.clk.Tick(&t.clkProbe) // line 84

	if failed := t.validateTxReads(scr); failed != nil { // line 85
		scr.Restore()
		t.noteConflictPair(failed)
		t.recordTxValidate(ts, false)
		t.abortOwnTx()
	}
	t.recordTxValidate(ts, true)

	// Feed the multi-version store while memory still holds the
	// pre-images this commit is about to overwrite: each written word's
	// current committed value was valid over [displaced r-lock version,
	// ts), exactly the interval stamp a VersionedStore entry carries.
	// When several tasks wrote the same word the publishes are
	// identical duplicates — they only cost ring slots, never
	// correctness.
	if mv := rt.mv; mv != nil {
		for _, task := range tx.tasks {
			for _, e := range task.writeLog.Entries() {
				if pre, ok := scr.Saved(e.Pair); ok {
					for _, w := range e.Words {
						mv.Publish(w.Addr, rt.store.LoadWord(w.Addr), pre, ts)
					}
				}
			}
		}
	}

	// Publish every task's buffered writes in serial order, so that when
	// several tasks wrote the same word the latest in program order wins
	// (lines 87–89; tx.tasks is already serial-ordered and each write
	// log is in program order).
	for _, task := range tx.tasks {
		for _, e := range task.writeLog.Entries() {
			for _, w := range e.Words {
				rt.store.StoreWord(w.Addr, w.Val)
				if t.traced {
					// Written-word identities land on the commit task's
					// ring, between its Validate and Commit events, so the
					// opacity checker can rebuild per-slot version
					// histories. Same-word repeats across tasks dedup
					// offline.
					t.tr.Record(txtrace.KindCommitWord, ts, uint64(w.Addr), 0)
				}
				t.workAcc++
			}
		}
	}

	// Release: publish the new version, then drop the redo chain if its
	// head belongs to this transaction (lines 90–92). If a task of a
	// future transaction already stacked an entry on top, the chain
	// stays; the committed entries below it now mirror memory, and the
	// future transaction's own commit or abort will unwind them. Pairs
	// whose chain we actually dropped are marked in the scratch: only
	// their entries are detached, so only they retire into the free
	// rings (finishCommit); entries left chained are dropped to the GC.
	for _, p := range scr.Pairs() {
		p.R.Store(ts)
		h := p.W.Load()
		if h != nil && h.Owner.ThreadID == thr.id &&
			h.Serial >= tx.startSerial && h.Serial <= tx.commitSerial {
			if p.W.CompareAndSwap(h, nil) {
				scr.MarkReleased(p)
			}
		}
	}

	// Ring the Retry doorbells of waiters whose read sets intersect this
	// commit's writes — after the versions above are published, so a
	// woken waiter revalidates against post-commit state. One atomic
	// load when nobody waits; the entries are still live (retirement
	// happens in finishCommit).
	if hub := rt.hub; hub.Active() {
		var fp mode.Fingerprint
		for _, task := range tx.tasks {
			for _, e := range task.writeLog.Entries() {
				fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(e.Pair)))
			}
		}
		hub.Notify(fp)
	}

	t.finishCommit(ts, true)
}

// validateTxReads validates the committed reads of every task of the
// transaction against current r-lock versions, returning the first
// failing pair (nil when every read is valid — the pair feeds the
// conflict sketch). Pairs r-locked by this commit (recorded in scr;
// nil during the optimistic pre-lock pass) compare against their
// displaced version.
func (t *Task) validateTxReads(scr *txlog.CommitScratch) *locktable.Pair {
	for _, task := range t.tx.tasks {
		for i, re := range task.readLog.Entries() {
			if re.Version == noVersion {
				continue // speculative read; validated intra-thread
			}
			if i%8 == 0 {
				t.workAcc++
			}
			cur := re.Pair.R.Load()
			if cur == re.Version {
				continue
			}
			if cur == locktable.Locked && scr != nil {
				if pre, ours := scr.Saved(re.Pair); ours && pre == re.Version {
					continue
				}
			}
			return re.Pair
		}
	}
	return nil
}

// recordTxValidate records a commit-time whole-transaction validation
// pass on the commit-task's flight recorder — and, on failure, the
// validation abort that inevitably follows (every failing caller aborts
// the transaction next).
func (t *Task) recordTxValidate(clock uint64, ok bool) {
	if !t.traced {
		return
	}
	var n uint64
	for _, task := range t.tx.tasks {
		n += uint64(task.readLog.Len())
	}
	aux := uint32(0)
	if ok {
		aux = 1
	}
	t.tr.Record(txtrace.KindValidate, clock, n, aux)
	if !ok {
		t.tr.Record(txtrace.KindAbort, clock, uint64(t.serial.Load()), txtrace.AbortValidation)
	}
}

// abortOwnTx aborts this task's entire user-transaction: commit-time
// inter-thread conflict (§3.2, "Transaction abort").
func (t *Task) abortOwnTx() {
	t.tx.abortTx.Store(true)
	t.rendezvous()
	panic(restartSignal{})
}

// finishCommit publishes the transaction's completion (Alg. 3 lines
// 93–94), folds statistics and the virtual-time model, and releases
// waiters.
func (t *Task) finishCommit(ts uint64, writeTx bool) {
	tx := t.tx
	thr := t.thr
	ser := t.serial.Load()

	// Virtual-time model: tasks start together; task k finishes at
	// max(own work, finish of task k−1) + commit cost (serialized
	// commits). See DESIGN.md §3.
	var finish, work uint64
	for _, task := range tx.tasks {
		w := task.workAcc
		work += w
		if w > finish {
			finish = w
		}
		finish += commitCost
	}

	// Fold into the thread's unshared stats shard. This must happen
	// BEFORE completedTask is advanced: that store is what releases the
	// next transaction's commit-task, so folding first keeps
	// finishCommit invocations strictly serialized per thread — the
	// shard needs no mutex (SNIPPETS-style per-thread stats).
	thr.stats.TxCommitted++
	thr.stats.TxAborted += tx.txAborts.Load()
	thr.stats.TaskRestarts += tx.taskRestarts.Load()
	thr.stats.RestartWAR += tx.restartKind[restartWAR].Load()
	thr.stats.RestartWAW += tx.restartKind[restartWAW].Load()
	thr.stats.RestartExtend += tx.restartKind[restartExtend].Load()
	thr.stats.RestartCM += tx.restartKind[restartCM].Load()
	thr.stats.RestartSandbox += tx.restartKind[restartSandbox].Load()
	thr.stats.RestartRetry += tx.restartKind[restartRetry].Load()
	thr.stats.Work += work
	thr.stats.VirtualTime += finish

	// Execution-mode ladder signals: finishCommit runs on a worker while
	// the controller is submitter-owned, so the outcome flows through
	// the thread's signal atomics and the submitter folds the deltas
	// into its controller at the next submission boundary.
	thr.ctlCommits.Add(1)
	// Aborts fold at abort time (cleanupTx), so a storm registers while
	// it is happening; only the commit and defeat outcomes fold here.
	if tx.cmDefeats.Load() > 0 {
		thr.ctlDefeats.Add(1)
	}

	// Clock- and contention-probe counters fold (and clear) per task
	// under the same serialization that protects workAcc: intermediate
	// tasks are parked until the completedTask store below, and their
	// next incarnation's accesses are ordered after it. The policy's
	// commit bookkeeping runs per task for the same reason each task
	// has its own probe: Karma's account lives in the probe, and an
	// intermediate task's lost work must be settled at its
	// transaction's commit too, or the carry would outlive the
	// transaction and inflate that descriptor's priority forever.
	var txWrites uint64
	for _, task := range tx.tasks {
		thr.stats.SnapshotExtensions += task.extends
		task.extends = 0
		thr.stats.ClockCASRetries += task.clkProbe.TakeRetries()
		cmSelf, cmOwner, spins := task.cmProbe.TakeCounts()
		thr.stats.CMAbortsSelf += cmSelf
		thr.stats.CMAbortsOwner += cmOwner
		thr.stats.BackoffSpins += spins
		reclaims, stalls := task.writeLog.TakeReclaimCounts()
		thr.stats.EntryReclaims += reclaims
		thr.stats.HorizonStalls += stalls
		thr.stats.MVReads += task.mvReads
		task.mvReads = 0
		thr.stats.MVMisses += task.mvMisses
		task.mvMisses = 0
		// Conflict-sketch fold: into the thread shard for reporting and
		// into the remap window the placement step below consumes.
		thr.stats.ConflictSketch.Merge(task.sketch)
		thr.stats.CrossShardConflicts += task.crossShard
		thr.remapWindow.Merge(task.sketch)
		task.sketch = txstats.Sketch{}
		task.crossShard = 0
		// Set-size histograms: read before RetireCommitted empties the
		// write logs below. A wait-free read-only task logs nothing, so
		// the multi-version fast path shows up as read-set size 0.
		thr.stats.ReadSetSizes.Observe(task.readLog.Len())
		thr.stats.WriteSetSizes.Observe(task.writeLog.Len())
		txWrites += uint64(task.writeLog.Len())
		// Rolled-back attempt latencies fold like the probes above —
		// accumulated by each task's own worker, read here after the
		// tasks have completed (intermediate tasks are parked until the
		// completedTask store below).
		thr.stats.RestartLatency.Merge(task.restartLat)
		task.restartLat = txstats.Hist{}
		thr.stats.RetryWakes += task.retryWakes
		task.retryWakes = 0
		cm.Committed(thr.rt.cm, &task.cmSelf)
	}
	thr.stats.CommitLatency.Observe(int(time.Since(t.attemptStart)))
	thr.stats.Attempts.Observe(int(tx.txAborts.Load()) + 1)
	if t.traced {
		t.tr.Record(txtrace.KindCommit, ts, txWrites, 0)
	}

	// Affinity remap step: every remapPeriod commits, hand the window of
	// conflict observations since the last check to the placement policy
	// and adopt whatever home it decides. finishCommit is serialized per
	// thread, so the window and countdown need no synchronization; only
	// the home itself is shared (tasks read it on conflict paths).
	thr.txSinceRemap++
	if thr.txSinceRemap >= remapPeriod {
		thr.txSinceRemap = 0
		if thr.rt.placement.Rebalance(int(thr.id), thr.remapWindow) {
			old := thr.homeShard.Load()
			home := int32(thr.rt.placement.Home(int(thr.id)))
			thr.homeShard.Store(home)
			thr.stats.Remaps++
			if t.traced {
				t.tr.Record(txtrace.KindRemap, ts, uint64(home), uint32(old))
			}
		}
		thr.remapWindow = txstats.Sketch{}
	}

	// Retire the transaction's write-lock entries into their
	// descriptors' free rings (entry lifecycle: armed → committed →
	// retired → quiescent → reused). The chains were dropped by the
	// release loop above, so the entries are detached; tasks whose
	// attempts could still hold one as a FirstPast marker are exactly
	// those armed by now, and every serial armed at any moment is at
	// most the committed frontier plus SPECDEPTH — hence the retirement
	// serial below, which reuse waits for. The epoch bump must follow
	// the detach and precede this transaction's txDone publish so tasks
	// arming after the frontier passes observe it (the audit's
	// happens-before edge). Intermediate tasks of this transaction are
	// parked until the txDone publish below (their commit wait gates on
	// the latch), so pushing into their rings is unraced, and their
	// next incarnation's pops are ordered after it.
	if writeTx {
		epoch := thr.retireEpoch.Add(1)
		at := tx.startSerial - 1 + int64(thr.depth)
		horizon := thr.txDone.Seq()
		for _, task := range tx.tasks {
			task.writeLog.RetireCommitted(&thr.commitScratch, at, epoch, horizon)
		}
	}

	// Deferred frees of every task take effect now that the
	// transaction's writes are durable. This, too, must precede the
	// completedTask store: that store releases the transaction's
	// intermediate tasks, whose recycled descriptors — frees slices
	// included — may be re-armed with new state the moment they exit.
	for _, task := range tx.tasks {
		for _, a := range task.frees {
			thr.rt.alloc.Free(a)
		}
	}

	if writeTx {
		thr.completedWriter.Store(ser)
	}
	thr.completedTask.Store(ser)

	// Release waiters: the sequence-numbered latch replaces the
	// per-transaction done channel. Serials are never reused, so a
	// handle can at worst observe "already committed" — never block on
	// a recycled descriptor.
	thr.txDone.Publish(tx.commitSerial)
}
