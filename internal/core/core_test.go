package core

import (
	"runtime"
	"sync"
	"testing"

	"tlstm/internal/tm"
)

func newRT(depth int) *Runtime {
	return New(Config{SpecDepth: depth, LockTableBits: 16})
}

func TestSingleTaskTransaction(t *testing.T) {
	rt := newRT(1)
	thr := rt.NewThread()
	var a tm.Addr
	if err := thr.Atomic(func(tk *Task) {
		a = tk.Alloc(1)
		tk.Store(a, 7)
	}); err != nil {
		t.Fatal(err)
	}
	if err := thr.Atomic(func(tk *Task) {
		if tk.Load(a) != 7 {
			t.Error("committed value not visible")
		}
	}); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	st := thr.Stats()
	if st.TxCommitted != 2 {
		t.Fatalf("TxCommitted = %d, want 2", st.TxCommitted)
	}
}

func TestArityValidation(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	if _, err := thr.Submit(); err == nil {
		t.Fatal("empty transaction must be rejected")
	}
	fn := func(tk *Task) {}
	if _, err := thr.Submit(fn, fn, fn); err == nil {
		t.Fatal("transaction larger than SPECDEPTH must be rejected")
	}
}

// Forwarding: a later task of the same transaction must observe the
// writes of past tasks (paper §2: intra-thread sequential semantics).
func TestTaskReadsPastTaskWrite(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	var a tm.Addr
	d := rt.Direct()
	a = d.Alloc(1)

	var got uint64
	err := thr.Atomic(
		func(tk *Task) { tk.Store(a, 42) },
		func(tk *Task) { got = tk.Load(a) },
	)
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got != 42 {
		t.Fatalf("future task read %d, want the past task's 42", got)
	}
	if d.Load(a) != 42 {
		t.Fatalf("memory = %d, want 42", d.Load(a))
	}
}

// WAW within a transaction: the last task in program order must win.
func TestIntraThreadWAWLastTaskWins(t *testing.T) {
	rt := newRT(3)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	for i := 0; i < 20; i++ {
		err := thr.Atomic(
			func(tk *Task) { tk.Store(a, 1) },
			func(tk *Task) { tk.Store(a, 2) },
			func(tk *Task) { tk.Store(a, 3) },
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	if got := d.Load(a); got != 3 {
		t.Fatalf("memory = %d, want 3 (program order)", got)
	}
}

// Read-modify-write chains across tasks of one transaction behave
// sequentially regardless of speculative interleaving.
func TestTaskChainIncrement(t *testing.T) {
	rt := newRT(4)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	inc := func(tk *Task) { tk.Store(a, tk.Load(a)+1) }
	for i := 0; i < 25; i++ {
		if err := thr.Atomic(inc, inc, inc, inc); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	if got := d.Load(a); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

// Cross-transaction speculation: with SpecDepth larger than transaction
// size, later transactions start while earlier ones are active; program
// order must still hold.
func TestCrossTransactionSpeculation(t *testing.T) {
	rt := newRT(4)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	var handles []TxHandle
	for i := 0; i < 50; i++ {
		h, err := thr.Submit(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Wait()
	}
	thr.Sync()
	if got := d.Load(a); got != 50 {
		t.Fatalf("counter = %d, want 50", got)
	}
	if st := thr.Stats(); st.TxCommitted != 50 {
		t.Fatalf("TxCommitted = %d, want 50", st.TxCommitted)
	}
}

// Multi-thread counter: inter-thread conflict handling must serialize
// read-modify-write transactions correctly.
func TestMultiThreadCounter(t *testing.T) {
	rt := newRT(2)
	d := rt.Direct()
	a := d.Alloc(1)

	const threads, per = 4, 100
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = thr.Atomic(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
			}
			thr.Sync()
		}()
	}
	wg.Wait()
	if got := d.Load(a); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
}

// Bank test: each transfer is one transaction of two tasks
// whose guard is evaluated identically: task 1 computes and withdraws,
// task 2 re-reads the flag word written by task 1 and deposits.
func TestBankInvariantWithFlagWord(t *testing.T) {
	rt := newRT(2)
	d := rt.Direct()
	const accounts = 16
	const initial = 1000
	base := d.Alloc(accounts)
	for i := 0; i < accounts; i++ {
		d.Store(base+tm.Addr(i), initial)
	}

	const threads, transfers = 3, 80
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		thr := rt.NewThread()
		scratch := d.Alloc(1)
		wg.Add(1)
		go func(seed uint64, scratch tm.Addr) {
			defer wg.Done()
			r := seed
			next := func() uint64 { r = r*6364136223846793005 + 1442695040888963407; return r >> 33 }
			for i := 0; i < transfers; i++ {
				from := tm.Addr(next() % accounts)
				to := tm.Addr(next() % accounts)
				amt := next() % 5
				_ = thr.Atomic(
					func(tk *Task) {
						f := tk.Load(base + from)
						if from != to && f >= amt {
							tk.Store(base+from, f-amt)
							tk.Store(scratch, amt)
						} else {
							tk.Store(scratch, 0)
						}
					},
					func(tk *Task) {
						a := tk.Load(scratch)
						if a != 0 {
							tk.Store(base+to, tk.Load(base+to)+a)
						}
					},
				)
			}
		}(uint64(w+1), scratch)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < accounts; i++ {
		total += d.Load(base + tm.Addr(i))
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d", total, accounts*initial)
	}
}

// Opacity across threads with multi-task readers: x+y is kept constant
// by a writer thread; reader transactions split across two tasks must
// never observe a torn sum.
func TestSnapshotInvariantMultiTask(t *testing.T) {
	rt := newRT(2)
	d := rt.Direct()
	x := d.Alloc(1)
	y := d.Alloc(1)
	d.Store(x, 500)
	d.Store(y, 500)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := rt.NewThread()
		for {
			select {
			case <-stop:
				thr.Sync()
				return
			default:
			}
			_ = thr.Atomic(func(tk *Task) {
				vx := tk.Load(x)
				vy := tk.Load(y)
				tk.Store(x, vx-1)
				tk.Store(y, vy+1)
			})
			// Leave scheduling windows between commits: a writer that
			// commits on every scheduler slice starves multi-task
			// readers on GOMAXPROCS=1 (their commit validation spans
			// several slices; real workloads have natural gaps).
			for i := 0; i < 200; i++ {
				runtime.Gosched()
			}
		}
	}()

	reader := rt.NewThread()
	violations := 0
	for i := 0; i < 300; i++ {
		var vx, vy uint64
		_ = reader.Atomic(
			func(tk *Task) { vx = tk.Load(x) },
			func(tk *Task) { vy = tk.Load(y) },
		)
		if vx+vy != 1000 {
			violations++
		}
	}
	reader.Sync()
	close(stop)
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d torn snapshots observed", violations)
	}
}

func TestAllocReclaimedOnTaskRollback(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	// Create intra-thread WAR conflicts so tasks roll back while holding
	// fresh allocations.
	for i := 0; i < 30; i++ {
		_ = thr.Atomic(
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
			func(tk *Task) {
				blk := tk.Alloc(4)
				tk.Store(blk, tk.Load(a))
				tk.Free(blk)
			},
		)
	}
	thr.Sync()
	if live := rt.Allocator().LiveBlocks(); live != 1 {
		t.Fatalf("LiveBlocks = %d, want 1 (only the setup block)", live)
	}
}

func TestStatsAccumulate(t *testing.T) {
	rt := newRT(3)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	for i := 0; i < 10; i++ {
		_ = thr.Atomic(
			func(tk *Task) { tk.Load(a) },
			func(tk *Task) { tk.Store(a, 1) },
			func(tk *Task) { tk.Load(a) },
		)
	}
	thr.Sync()
	st := thr.Stats()
	if st.TxCommitted != 10 {
		t.Fatalf("TxCommitted = %d, want 10", st.TxCommitted)
	}
	if st.Work == 0 || st.VirtualTime == 0 {
		t.Fatal("work/virtual-time not accumulated")
	}
	if st.VirtualTime > st.Work+10*3*commitCost {
		t.Fatalf("virtual time %d should not exceed serial work %d plus commit costs", st.VirtualTime, st.Work)
	}
}
