package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"tlstm/internal/sched"
	"tlstm/internal/tm"
)

// Integration tests for the pooled scheduler: worker lifecycle,
// descriptor recycling under aborts, and the Inline policy's semantics.

func TestRuntimeCloseDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	rt := New(Config{SpecDepth: 3})
	thrs := make([]*Thread, 2)
	d := rt.Direct()
	a := d.Alloc(1)
	var wg sync.WaitGroup
	for i := range thrs {
		thrs[i] = rt.NewThread()
		wg.Add(1)
		go func(thr *Thread) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = thr.Atomic(
					func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
					func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
				)
			}
			thr.Sync()
		}(thrs[i])
	}
	wg.Wait()
	rt.Close()
	rt.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked after Close: %d > %d", runtime.NumGoroutine(), before)
		}
		runtime.Gosched()
	}
	if got := d.Load(a); got != 2*50*2 {
		t.Fatalf("counter = %d, want %d", got, 2*50*2)
	}
}

func TestSchedulerCountersAccumulate(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	const txs = 25
	for i := 0; i < txs; i++ {
		_ = thr.Atomic(
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
		)
	}
	thr.Sync()
	st := thr.Stats()
	if st.WorkersSpawned != 2 {
		t.Fatalf("WorkersSpawned = %d, want 2 (ring size, spawned once)", st.WorkersSpawned)
	}
	// Every submission past the first recycles one txState; every task
	// past the first ring-full recycles one descriptor: 2·txs tasks on a
	// 2-slot ring → 2·txs−2 task reuses, plus txs−2 txState reuses.
	wantReuses := uint64(2*txs-2) + uint64(txs-2)
	if st.DescriptorReuses != wantReuses {
		t.Fatalf("DescriptorReuses = %d, want %d", st.DescriptorReuses, wantReuses)
	}
	// Counters must survive the shard merge plumbing.
	if agg := rt.Stats(); agg.WorkersSpawned != st.WorkersSpawned || agg.DescriptorReuses != st.DescriptorReuses {
		t.Fatalf("aggregate lost scheduler counters: %+v vs %+v", agg, st)
	}
}

func TestInlinePolicySerialEquivalence(t *testing.T) {
	rt := New(Config{SpecDepth: 1, Policy: sched.Inline})
	defer rt.Close()
	if rt.Policy() != sched.Inline {
		t.Fatal("Policy accessor")
	}
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	for i := 0; i < 50; i++ {
		h, err := thr.Submit(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
		if err != nil {
			t.Fatal(err)
		}
		h.Wait() // must already be committed: Submit ran the task inline
	}
	thr.Sync()
	if d.Load(a) != 50 {
		t.Fatalf("counter = %d, want 50", d.Load(a))
	}
	if st := thr.Stats(); st.TxCommitted != 50 || st.WorkersSpawned != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Inline still participates in inter-thread contention management:
// conflicting threads — one inline, one pooled — must both make
// progress and preserve atomicity.
func TestInlinePolicyInterThreadConflicts(t *testing.T) {
	rt := New(Config{SpecDepth: 1, Policy: sched.Inline})
	defer rt.Close()
	d := rt.Direct()
	a := d.Alloc(1)
	var wg sync.WaitGroup
	const threads, txs = 3, 60
	for w := 0; w < threads; w++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txs; i++ {
				_ = thr.Atomic(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
			}
			thr.Sync()
		}()
	}
	wg.Wait()
	if got := d.Load(a); got != threads*txs {
		t.Fatalf("counter = %d, want %d", got, threads*txs)
	}
}

func TestInlinePolicyRejectsDeeperRings(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on Inline with SpecDepth > 1")
		}
	}()
	New(Config{SpecDepth: 2, Policy: sched.Inline})
}

// Handles stay valid across descriptor recycling: waiting on an old
// transaction's handle after its descriptors were reused many times
// over must return immediately rather than hang or mis-wait (serials,
// not descriptor identity, are the wait tokens).
func TestHandleOutlivesDescriptorRecycling(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	first, err := thr.Submit(func(tk *Task) { tk.Store(a, 1) })
	if err != nil {
		t.Fatal(err)
	}
	var handles []TxHandle
	for i := 0; i < 40; i++ {
		h, err := thr.Submit(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Wait in submission order, then re-wait the first handle: both its
	// descriptor and its txState have been recycled ~20 times by now.
	for _, h := range handles {
		h.Wait()
	}
	first.Wait()
	first.Wait() // idempotent
	thr.Sync()
	if got := d.Load(a); got != 41 {
		t.Fatalf("counter = %d, want 41", got)
	}
}

// Descriptor recycling under transaction aborts: force inter-thread
// commit-validation aborts while the pipeline stays full, so recycled
// descriptors constantly re-enter the abort rendezvous machinery.
func TestRecyclingSurvivesAbortStorm(t *testing.T) {
	rt := New(Config{SpecDepth: 3, LockTableBits: 4})
	defer rt.Close()
	d := rt.Direct()
	const words = 8
	base := d.Alloc(words)
	var wg sync.WaitGroup
	const threads, txs = 3, 80
	for w := 0; w < threads; w++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := seed
			next := func() uint64 { s = s*6364136223846793005 + 1; return s >> 33 }
			for i := 0; i < txs; i++ {
				x := base + tm.Addr(next()%words)
				y := base + tm.Addr(next()%words)
				_ = thr.Atomic(
					func(tk *Task) { tk.Store(x, tk.Load(x)+1) },
					func(tk *Task) { _ = tk.Load(y) },
					func(tk *Task) { tk.Store(y, tk.Load(y)+1) },
				)
			}
			thr.Sync()
		}(uint64(w + 1))
	}
	wg.Wait()
	var sum uint64
	for i := 0; i < words; i++ {
		sum += d.Load(base + tm.Addr(i))
	}
	if sum != threads*txs*2 {
		t.Fatalf("sum = %d, want %d (each tx adds exactly 2)", sum, threads*txs*2)
	}
}

// Spurious abort-transaction signals — the price of recycled owner
// headers (a stale cross-thread reader re-pointed onto a live tx) —
// must never wedge a thread. In particular a signal landing after the
// commit-task's final validation once parked the intermediate tasks in
// an abort rendezvous that could never complete; rendezvousMayCommit's
// committed-escape is the fix under test. The adversary sprays the
// abort flags of every transaction descriptor in pulses while real
// transactions stream underneath.
func TestSpuriousAbortSignalsNeverWedge(t *testing.T) {
	rt := newRT(2)
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tx := range thr.txRing {
				tx.abortTx.Store(true)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const txs = 150
	for i := 0; i < txs; i++ {
		_ = thr.Atomic(
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
		)
	}
	close(stop)
	wg.Wait()
	thr.Sync()
	if got := d.Load(a); got != txs*2 {
		t.Fatalf("counter = %d, want %d", got, txs*2)
	}
}
