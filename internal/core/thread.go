package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

// Thread is one user-thread: a serial stream of user-transactions, each
// decomposed into speculative tasks that the runtime executes out of
// order. All methods must be called from the single goroutine that owns
// the Thread.
//
// Scheduling (internal/sched): a Thread owns a ring of SPECDEPTH
// recycled task descriptors, a ring of SPECDEPTH recycled transaction
// descriptors, and a scheduler pool of SPECDEPTH long-lived worker
// goroutines (spawned lazily, drained by Runtime.Close). Submit writes
// into descriptors that have retired and arms their slots; it allocates
// nothing and spawns nothing at steady state. Serial numbers are never
// reused, so they double as the generation stamps that make waiting on
// recycled state ABA-safe: handles and completion waits are keyed on
// serials, never on descriptor identity.
type Thread struct {
	rt    *Runtime
	id    int32
	depth int

	// completedTask and completedWriter are the serials of the last
	// completed task and last completed writer task (paper §3.3, task
	// and user-thread state). Tasks complete strictly in serial order.
	completedTask   atomic.Int64
	completedWriter atomic.Int64

	// retireEpoch counts entry-retirement batches: finishCommit bumps
	// it once per committed transaction, and the abort sweeps
	// (unwindWrites, cleanupTx) once per retiring task's log — always
	// after the batch's entries are detached from their chains and
	// before they are queued for reuse. A task's attempt that began at epoch E can hold (as a
	// FirstPast marker) only entries retired with epoch > E — the
	// relation the reclamation audit checks on every recycle. Note the
	// epoch is deliberately distinct from the reuse gate: the gate keys
	// on the committed-transaction frontier (txDone), which is monotonic
	// where completedTask is not (transaction aborts lower it).
	retireEpoch atomic.Int64

	// slots is the owners[SPECDEPTH] array: slot serial%depth points to
	// the active task with that serial, nil when free. It mirrors the
	// scheduler's slot states for the abort machinery, which scans it to
	// signal tasks speculating beyond an aborting transaction.
	slots []atomic.Pointer[Task]

	// ring is the fixed set of recycled task descriptors: ring[i] is
	// the only *Task that ever occupies slots[i]. Descriptor i runs
	// serials i+1, i+1+depth, i+1+2·depth, … — its generation sequence.
	ring []*Task

	// txRing is the fixed set of recycled transaction descriptors.
	// At most SPECDEPTH user-transactions are in flight (every in-flight
	// transaction holds at least one task slot until it commits), so
	// Submit number k reuses txRing[k%depth] after waiting for its
	// previous occupant to fully retire (txState.live reaching zero).
	txRing []*txState
	txSeq  int64 // submitter-owned count of Submits so far

	// pool executes armed descriptors on the worker ring; txDone is the
	// reusable completion latch that replaced per-transaction done
	// channels: finishCommit publishes the transaction's commit serial,
	// TxHandle.Wait blocks until its serial is reached.
	pool   *sched.Pool
	txDone sched.Latch

	// chainMu serializes redo-log chain *removals* for this thread
	// (single-task rollback and transaction abort). Chain pushes stay
	// lock-free; only workers of this thread ever touch these chains,
	// so the mutex is never contended across threads.
	chainMu sync.Mutex

	nextSerial int64 // owned by the submitting goroutine
	inlineRuns int64 // inline-rung executions (submitter-owned; see submit)

	// homeShard is the thread's current home lock-table shard under the
	// runtime's placement policy. Tasks read it from their workers while
	// finishCommit's remap step may rebind it, hence the atomic; the
	// remap bookkeeping below it (window, countdown) is written only by
	// finishCommit, serialized per thread like stats.
	homeShard    atomic.Int32
	remapWindow  txstats.Sketch
	txSinceRemap int

	// stats is the thread's unshared statistics shard (SNIPPETS-style
	// per-thread counters). Transaction counters are written only by
	// finishCommit, whose invocations are serialized per thread by the
	// commit order; scheduler counters (WorkersSpawned,
	// DescriptorReuses) are written only by the submitting goroutine.
	// The two writers touch disjoint fields, so the shard needs no
	// mutex; synced tracks what Sync has already merged into the
	// runtime-global aggregate.
	stats  Stats
	synced Stats

	// commitScratch holds the commit-time r-lock bookkeeping of this
	// thread's transaction commits. Commit-tasks are serialized per
	// thread (see stats above), so one scratch per thread suffices and
	// writer commits allocate nothing at steady state.
	commitScratch txlog.CommitScratch

	// ctl is the thread's execution-mode ladder controller
	// (Config.Mode), owned by the submitting goroutine. Its signals
	// arrive through the atomics below: finishCommit runs on a worker,
	// so it bumps ctlCommits/ctlAborts/ctlDefeats there, and submit
	// feeds the controller the deltas against the seen* snapshots
	// (submitter-owned) at each submission boundary.
	ctl                                  mode.Controller
	ctlCommits                           atomic.Uint64
	ctlAborts                            atomic.Uint64
	ctlDefeats                           atomic.Uint64
	seenCommits, seenAborts, seenDefeats uint64

	// tr records the thread-level ladder events (KindModeShift) on a
	// dedicated ring: mode shifts happen on the submitting goroutine,
	// not on any task's worker, so they must not share a task ring.
	tr     txtrace.Tracer
	traced bool
}

// ID reports the thread's identifier within its runtime.
func (thr *Thread) ID() int32 { return thr.id }

// runSlot is the pool's run hook: execute slot i's armed descriptor.
func (thr *Thread) runSlot(i int) { thr.ring[i].run() }

// TxHandle tracks one submitted user-transaction. It is a plain value
// (no allocation): the pair (thread, commit serial) of the transaction
// it tracks. The zero TxHandle is invalid; use only handles returned by
// Submit.
type TxHandle struct {
	thr    *Thread
	commit int64
}

// Wait blocks until the user-transaction has committed.
//
// Contract: a handle names exactly one submitted transaction, through
// its never-reused commit serial, so Wait is idempotent — it may be
// called again (or from several goroutines) and returns immediately
// once the transaction has committed, even though the transaction's
// descriptor has long been recycled. Wait must not be used after
// Runtime.Close, and a handle must not outlive its Thread.
func (h TxHandle) Wait() { h.thr.txDone.Wait(h.commit) }

// Submit starts one user-transaction decomposed into the given tasks (in
// program order) and returns without waiting for it to commit: with
// SpecDepth larger than the task count, tasks of the next transaction
// speculate while this one is still active (paper §1: "TLSTM can even be
// more optimistic and speculatively execute future transactions").
//
// Submit recycles descriptors and dispatches to long-lived workers; at
// steady state it performs no allocation and spawns no goroutine. Under
// the Inline scheduling policy (SpecDepth 1 only) the task body runs on
// the calling goroutine and Submit returns after the commit.
//
// Submit returns an error only for invalid arity; conflicts are handled
// internally by re-execution.
func (thr *Thread) Submit(fns ...TaskFunc) (TxHandle, error) {
	return thr.submit(false, fns...)
}

// SubmitRO is Submit for a user-transaction the caller declares
// read-only. With multi-versioning enabled (Config.MVDepth > 0) its
// tasks take the wait-free read path: every load resolves against the
// transaction's frozen snapshot (current memory if unchanged since, a
// retained version otherwise), nothing is appended to the read logs,
// and the commit needs no validation. A task that cannot be served at
// the snapshot — the version ring was overrun by more than MVDepth
// later commits, or the task observes speculative state of an earlier
// task of its own thread — aborts the transaction once and re-executes
// it on the ordinary validated path; a task that writes does the same.
// So declaring a transaction read-only is a hint, never a correctness
// obligation. Without multi-versioning SubmitRO is identical to Submit.
func (thr *Thread) SubmitRO(fns ...TaskFunc) (TxHandle, error) {
	return thr.submit(true, fns...)
}

func (thr *Thread) submit(ro bool, fns ...TaskFunc) (TxHandle, error) {
	if err := thr.rt.validateArity(len(fns)); err != nil {
		return TxHandle{}, err
	}
	start := thr.nextSerial + 1
	commit := thr.nextSerial + int64(len(fns))
	thr.nextSerial = commit
	depth := int64(thr.depth)

	// Acquire this submission's transaction descriptor and wait for its
	// previous incarnation to retire: live reaches zero only after every
	// task of that transaction has returned, so the acquire-load below
	// orders all their accesses before our plain-field reset.
	if thr.txSeq >= depth {
		thr.stats.DescriptorReuses++
	}
	tx := thr.txRing[thr.txSeq%depth]
	thr.txSeq++
	for tx.live.Load() != 0 {
		// The previous incarnation is stuck re-aborting under a storm:
		// keep feeding the controller while we stall, so the fallback
		// decision below is made on the storm's live signals rather than
		// whatever was known when the stall started.
		if thr.ctl.Armed() {
			thr.pollMode()
		}
		runtime.Gosched()
	}

	// Execution-mode ladder (Config.Mode): fold the outcome signals
	// accumulated by finishCommit/cleanupTx since the last submission
	// into the controller, then pick this transaction's rung.
	if thr.ctl.Armed() {
		thr.pollMode()
	}
	serial := thr.ctl.Serial()

	tx.startSerial = start
	tx.commitSerial = commit
	tx.readOnly = ro
	tx.inSerial = serial
	tx.mvOff.Store(false)
	tx.snapshot.Store(mvSnapUnset)
	tx.gen = 0
	tx.acks = 0
	tx.participants = 0
	tx.cleaning = false
	tx.abortTx.Store(false)
	tx.greedTS.Store(0)
	tx.txAborts.Store(0)
	tx.taskRestarts.Store(0)
	for k := range tx.restartKind {
		tx.restartKind[k].Store(0)
	}
	tx.cmDefeats.Store(0)
	tx.armed.Store(0)
	tx.live.Store(int32(len(fns)))
	// The descriptor for serial s is always ring[s%depth], so the task
	// list is known before any slot frees up. Descriptors still running
	// a previous incarnation are not touched through this slice until
	// tx.armed covers them (see cleanupTx).
	tx.tasks = tx.tasks[:0]
	for i := range fns {
		tx.tasks = append(tx.tasks, thr.ring[(start+int64(i))%depth])
	}

	if serial {
		// Serialized-fallback rung: drain this thread's own in-flight
		// speculation first (no mixed-mode commits — every transaction
		// of this thread either finished before the gate was taken or
		// runs entirely under it), then hold the global gate across the
		// whole transaction. The tasks still run the unchanged
		// speculative protocol, so opacity is untouched; the gate only
		// removes the concurrent fallback entrants it would conflict
		// with, and other threads' optimists yield to Pending() instead
		// of riding conflicts out against us.
		for i := range thr.slots {
			thr.pool.WaitIdle(i)
		}
		thr.rt.gate.Enter()
	}

	// Inline rung: at SpecDepth 1 with the ladder armed, a single-task
	// speculative transaction runs on the submitting goroutine itself —
	// the cheapest viable mode, no worker handoff or wakeup. The
	// WaitIdle in the arm loop makes the submitter the descriptor's
	// owner, so executing it here keeps every per-descriptor structure
	// (logs, free ring, trace ring) single-owner; the slot simply stays
	// idle for the next occupant.
	inline := !serial && thr.depth == 1 && len(fns) == 1 &&
		thr.rt.policy == sched.Pooled && thr.ctl.Armed()

	for i, fn := range fns {
		serial := start + int64(i)
		s := int(serial % depth)
		// A task may only start when the number of active tasks is
		// below SPECDEPTH, i.e. when the task that previously occupied
		// this slot has exited (paper §3.3, "Starting a task"). The
		// scheduler's idle state is the retirement signal; once it is
		// observed the submitter owns the descriptor.
		thr.pool.WaitIdle(s)
		if thr.pool.Generation(s) > 0 || thr.inlineRuns > 0 {
			// The scheduler's generation stamp is the source of truth
			// for descriptor reuse: any slot armed before is recycled.
			// Inline runs bypass Arm, so they are counted separately.
			thr.stats.DescriptorReuses++
		}
		t := thr.ring[s]
		t.tx = tx
		t.fn = fn
		t.serial.Store(serial)
		t.tryCommit = i == len(fns)-1
		t.waitBeforeRestart = -1
		t.backoff = 0
		t.workAcc = 0
		t.abortInternal.Store(false)
		t.readLog.Reset()
		t.writeLog.Reset()
		t.allocs = t.allocs[:0]
		t.frees = t.frees[:0]
		t.ownerRef.BindTx(start, &tx.abortTx, &tx.greedTS)
		// The task's CM identity follows the descriptor onto the new
		// transaction: priority slot, start serial, and the defeat
		// count accumulated by this transaction so far.
		t.cmSelf.Timestamp = &tx.greedTS
		t.cmSelf.Start = start
		thr.slots[s].Store(t)
		tx.armed.Add(1)
		if inline {
			thr.inlineRuns++
			thr.runSlot(s)
		} else if thr.pool.Arm(s) {
			thr.stats.WorkersSpawned++
		}
	}
	if serial {
		thr.txDone.Wait(commit)
		thr.rt.gate.Exit()
	}
	return TxHandle{thr: thr, commit: commit}, nil
}

// pollMode feeds the mode controller the commit/abort/defeat deltas
// since the last submission and folds any rung transition into the
// thread's stats shard (ModeFallbacks/ModeRecoveries are
// submitter-written fields, disjoint from finishCommit's — see the
// Stats contract above).
func (thr *Thread) pollMode() {
	c := thr.ctlCommits.Load()
	a := thr.ctlAborts.Load()
	d := thr.ctlDefeats.Load()
	dc, da, dd := c-thr.seenCommits, a-thr.seenAborts, d-thr.seenDefeats
	if dc == 0 && da == 0 && dd == 0 {
		return
	}
	thr.seenCommits, thr.seenAborts, thr.seenDefeats = c, a, d
	fell, recovered := thr.ctl.OnWindow(dc, da, dd)
	if fell {
		thr.stats.ModeFallbacks++
		if thr.traced {
			thr.tr.Record(txtrace.KindModeShift, thr.rt.clk.Now(),
				uint64(mode.StateSerial), uint32(mode.StateSpec))
		}
	}
	if recovered {
		thr.stats.ModeRecoveries++
		if thr.traced {
			thr.tr.Record(txtrace.KindModeShift, thr.rt.clk.Now(),
				uint64(mode.StateSpec), uint32(mode.StateSerial))
		}
	}
}

// Atomic runs one user-transaction decomposed into the given tasks and
// waits for it to commit.
func (thr *Thread) Atomic(fns ...TaskFunc) error {
	h, err := thr.Submit(fns...)
	if err != nil {
		return err
	}
	h.Wait()
	return nil
}

// AtomicRO is Atomic for a declared read-only transaction (see
// SubmitRO).
func (thr *Thread) AtomicRO(fns ...TaskFunc) error {
	h, err := thr.SubmitRO(fns...)
	if err != nil {
		return err
	}
	h.Wait()
	return nil
}

// Sync waits until every submitted user-transaction has committed and
// every task descriptor has retired to its slot, then merges the
// thread's statistics shard (the part not yet merged) into the
// runtime-global aggregate. The worker goroutines stay parked, ready
// for the next Submit; Runtime.Close drains them.
func (thr *Thread) Sync() {
	thr.txDone.Wait(thr.nextSerial)
	for i := range thr.slots {
		thr.pool.WaitIdle(i)
	}
	delta := thr.stats.minus(thr.synced)
	if delta != (Stats{}) {
		thr.rt.stats.Merge(delta)
		thr.synced = thr.stats
	}
}

// Stats returns a snapshot of the thread's accumulated statistics. The
// shard is unsynchronized: call it only when the thread is quiescent —
// after Sync, or after Wait on the *last* submitted transaction (the
// fold happens before a handle unblocks). Calling it while a later
// transaction is still in flight is a data race.
func (thr *Thread) Stats() Stats {
	return thr.stats
}

// Stats aggregates per-thread execution statistics.
type Stats struct {
	// TxCommitted counts committed user-transactions.
	TxCommitted uint64
	// TxAborted counts whole-transaction aborts (inter-thread conflicts
	// detected at commit, and contention-manager victims).
	TxAborted uint64
	// TaskRestarts counts single-task rollbacks (intra-thread WAR/WAW
	// conflicts, inconsistent speculative reads).
	TaskRestarts uint64
	// Restart cause breakdown (sums to TaskRestarts):
	//   RestartWAR     — validate-task failures (intra-thread write-after-read);
	//   RestartWAW     — write-lock evictions and writes past a running writer;
	//   RestartExtend  — failed snapshot extensions (inter-thread read invalidation);
	//   RestartCM      — inter-thread contention-manager defeats;
	//   RestartSandbox — panics converted to restarts by the
	//                    inconsistent-read sandbox;
	//   RestartRetry   — Tx.Retry unwinds (cond-var waits; the restart
	//                    re-executes the task after its predicate may
	//                    have changed).
	RestartWAR     uint64
	RestartWAW     uint64
	RestartExtend  uint64
	RestartCM      uint64
	RestartSandbox uint64
	RestartRetry   uint64
	// Work is the total work in abstract units across all attempts,
	// including aborted ones.
	Work uint64
	// VirtualTime is the modeled parallel execution time in work units:
	// per transaction, tasks start together and task k finishes at
	// max(own work, finish of task k−1) + commit cost, reflecting the
	// serialized commit order (DESIGN.md §3, hardware substitution).
	VirtualTime uint64
	// WorkersSpawned counts scheduler worker goroutines created: at
	// most SPECDEPTH per thread over its whole lifetime, and zero per
	// task at steady state (the pooled scheduler's point).
	WorkersSpawned uint64
	// DescriptorReuses counts task and transaction descriptors served
	// from the recycled rings instead of freshly allocated — the
	// steady-state case for every Submit after warm-up.
	DescriptorReuses uint64
	// SnapshotExtensions counts successful valid-ts extensions across
	// all tasks. Pre-publishing clock strategies (deferred, sharded)
	// trade commit-path clock contention for these.
	SnapshotExtensions uint64
	// ClockCASRetries counts failed CASes inside commit-clock
	// operations (internal/clock.Probe): the direct measure of clock
	// contention under the configured strategy.
	ClockCASRetries uint64
	// CMAbortsSelf counts inter-thread conflicts this thread's tasks
	// lost (one AbortSelf decision each); CMAbortsOwner counts
	// AbortOwner decisions, one per round spent waiting for a
	// signalled owner to concede; BackoffSpins counts the scheduler
	// yields the policy charged between retries (internal/cm.Probe).
	CMAbortsSelf  uint64
	CMAbortsOwner uint64
	BackoffSpins  uint64
	// EntryReclaims counts write-lock entries served from the
	// descriptors' free rings instead of the heap — the steady-state
	// case for every writer task once its ring has warmed, and what
	// makes the writer hot path allocation-free. HorizonStalls counts
	// entry requests that found only retired entries still inside their
	// quiescence window and had to allocate fresh: the price of the
	// reclamation safety rule under deep pipelining (each stalled
	// allocation grows the ring, so stalls are self-limiting).
	EntryReclaims uint64
	HorizonStalls uint64
	// ConflictSketch histograms aborts and contention-manager defeats by
	// the lock-table shard of the contended location; it is the signal
	// the affinity placement's remap step reads. CrossShardConflicts
	// counts the subset that hit outside the thread's home shard at the
	// time of the conflict; Remaps counts home-shard rebinds.
	ConflictSketch      txstats.Sketch
	CrossShardConflicts uint64
	Remaps              uint64
	// MVReads counts loads served on the multi-version wait-free path
	// (declared read-only transactions, Config.MVDepth > 0): current
	// memory unchanged since the snapshot, or a retained version.
	// MVMisses counts the times a declared read-only transaction left
	// that path — version-ring overruns, same-thread speculative state
	// at the snapshot, or a write in a declared read-only body — and
	// re-executed validated.
	MVReads  uint64
	MVMisses uint64
	// ReadSetSizes and WriteSetSizes are per-task histograms of the
	// read-log and write-log lengths at commit (multi-version reads are
	// unlogged, so a wait-free read-only task observes size 0).
	ReadSetSizes  txstats.Hist
	WriteSetSizes txstats.Hist
	// RestartLatency histograms the nanoseconds burned per rolled-back
	// task attempt (all restart kinds); CommitLatency the nanoseconds of
	// each transaction's final commit-task attempt; Attempts the
	// whole-transaction attempt distribution (abort rounds + 1, so 1 =
	// first-try commit; single-task restarts do not count as rounds).
	RestartLatency txstats.Hist
	CommitLatency  txstats.Hist
	Attempts       txstats.Hist
	// ModeFallbacks counts speculative→serialized ladder transitions
	// (adaptive policy only); ModeRecoveries the serialized→speculative
	// returns after a served residency. RetryWakes counts Retry parks
	// that were woken by a conflicting commit's doorbell.
	ModeFallbacks  uint64
	ModeRecoveries uint64
	RetryWakes     uint64
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.TxCommitted += o.TxCommitted
	s.TxAborted += o.TxAborted
	s.TaskRestarts += o.TaskRestarts
	s.RestartWAR += o.RestartWAR
	s.RestartWAW += o.RestartWAW
	s.RestartExtend += o.RestartExtend
	s.RestartCM += o.RestartCM
	s.RestartSandbox += o.RestartSandbox
	s.RestartRetry += o.RestartRetry
	s.Work += o.Work
	s.VirtualTime += o.VirtualTime
	s.WorkersSpawned += o.WorkersSpawned
	s.DescriptorReuses += o.DescriptorReuses
	s.SnapshotExtensions += o.SnapshotExtensions
	s.ClockCASRetries += o.ClockCASRetries
	s.CMAbortsSelf += o.CMAbortsSelf
	s.CMAbortsOwner += o.CMAbortsOwner
	s.BackoffSpins += o.BackoffSpins
	s.EntryReclaims += o.EntryReclaims
	s.HorizonStalls += o.HorizonStalls
	s.ConflictSketch.Merge(o.ConflictSketch)
	s.CrossShardConflicts += o.CrossShardConflicts
	s.Remaps += o.Remaps
	s.MVReads += o.MVReads
	s.MVMisses += o.MVMisses
	s.ReadSetSizes.Merge(o.ReadSetSizes)
	s.WriteSetSizes.Merge(o.WriteSetSizes)
	s.RestartLatency.Merge(o.RestartLatency)
	s.CommitLatency.Merge(o.CommitLatency)
	s.Attempts.Merge(o.Attempts)
	s.ModeFallbacks += o.ModeFallbacks
	s.ModeRecoveries += o.ModeRecoveries
	s.RetryWakes += o.RetryWakes
}

// minus returns the fieldwise difference s−o. It is only meaningful
// when o is an earlier snapshot of s (counters are monotonic), which is
// how Sync computes the not-yet-merged part of a thread's shard.
func (s Stats) minus(o Stats) Stats {
	return Stats{
		TxCommitted:         s.TxCommitted - o.TxCommitted,
		TxAborted:           s.TxAborted - o.TxAborted,
		TaskRestarts:        s.TaskRestarts - o.TaskRestarts,
		RestartWAR:          s.RestartWAR - o.RestartWAR,
		RestartWAW:          s.RestartWAW - o.RestartWAW,
		RestartExtend:       s.RestartExtend - o.RestartExtend,
		RestartCM:           s.RestartCM - o.RestartCM,
		RestartSandbox:      s.RestartSandbox - o.RestartSandbox,
		RestartRetry:        s.RestartRetry - o.RestartRetry,
		Work:                s.Work - o.Work,
		VirtualTime:         s.VirtualTime - o.VirtualTime,
		WorkersSpawned:      s.WorkersSpawned - o.WorkersSpawned,
		DescriptorReuses:    s.DescriptorReuses - o.DescriptorReuses,
		SnapshotExtensions:  s.SnapshotExtensions - o.SnapshotExtensions,
		ClockCASRetries:     s.ClockCASRetries - o.ClockCASRetries,
		CMAbortsSelf:        s.CMAbortsSelf - o.CMAbortsSelf,
		CMAbortsOwner:       s.CMAbortsOwner - o.CMAbortsOwner,
		BackoffSpins:        s.BackoffSpins - o.BackoffSpins,
		EntryReclaims:       s.EntryReclaims - o.EntryReclaims,
		HorizonStalls:       s.HorizonStalls - o.HorizonStalls,
		ConflictSketch:      s.ConflictSketch.Minus(o.ConflictSketch),
		CrossShardConflicts: s.CrossShardConflicts - o.CrossShardConflicts,
		Remaps:              s.Remaps - o.Remaps,
		MVReads:             s.MVReads - o.MVReads,
		MVMisses:            s.MVMisses - o.MVMisses,
		ReadSetSizes:        s.ReadSetSizes.Minus(o.ReadSetSizes),
		WriteSetSizes:       s.WriteSetSizes.Minus(o.WriteSetSizes),
		RestartLatency:      s.RestartLatency.Minus(o.RestartLatency),
		CommitLatency:       s.CommitLatency.Minus(o.CommitLatency),
		Attempts:            s.Attempts.Minus(o.Attempts),
		ModeFallbacks:       s.ModeFallbacks - o.ModeFallbacks,
		ModeRecoveries:      s.ModeRecoveries - o.ModeRecoveries,
		RetryWakes:          s.RetryWakes - o.RetryWakes,
	}
}

// txState is the shared state of one user-transaction. Descriptors are
// recycled through the thread's txRing: all plain fields are reset by
// Submit after the previous incarnation's live count reaches zero.
type txState struct {
	thr          *Thread
	startSerial  int64
	commitSerial int64
	tasks        []*Task

	// greedTS is the transaction's greedy CM timestamp, shared by all
	// tasks and persisting across transaction retries so long
	// transactions eventually win conflicts (no starvation).
	greedTS atomic.Uint64

	// abortTx is the abort-transaction signal (paper §3.2, "Transaction
	// abort"): set by the contention manager of another thread or by a
	// failed commit validation; observed by every task at safe points.
	abortTx atomic.Bool

	// Abort rendezvous state (guarded by mu): all participant tasks
	// park, the last to arrive unwinds the transaction's speculative
	// state, then everyone restarts. gen distinguishes abort rounds.
	mu           sync.Mutex
	gen          uint64
	acks         int32
	participants int32
	cleaning     bool

	txAborts     atomic.Uint64 // abort rounds; also drives restart backoff
	taskRestarts atomic.Uint64
	restartKind  [numRestartKinds]atomic.Uint64
	cmDefeats    atomic.Int32 // conflicts lost (two-phase greedy escalation)

	// armed counts tasks dispatched for this incarnation; the
	// submitter's increment is the release that publishes the freshly
	// reset descriptor, and cleanupTx bounds its write-log sweep by it
	// so it never touches a descriptor still retiring from a previous
	// transaction.
	armed atomic.Int32

	// live counts tasks of this incarnation that have not yet returned
	// to their slots. The decrement in Task.run is each task's final
	// access to this state; Submit reuses the descriptor only at zero.
	live atomic.Int32

	// inSerial marks a transaction running under the serialized-fallback
	// gate (submit holds the gate across its whole lifetime). Tasks read
	// it to exempt themselves from the gate-yield break in conflict
	// ride-out loops and to release the gate across a Retry park. Plain
	// field: written by submit before arming, read by this transaction's
	// own tasks after the arm that published the descriptor.
	inSerial bool

	// Multi-version read-only state (SubmitRO with Config.MVDepth > 0).
	// readOnly is the caller's declaration, set by submit. snapshot is
	// the transaction's frozen read timestamp, shared by all tasks: the
	// first task to begin CAS-publishes its clock sample and every other
	// task (and every re-begin after a single-task restart) adopts it,
	// because unlogged reads taken at one snapshot cannot be revalidated
	// at another. mvOff latches the fallback: once any task leaves the
	// wait-free path the whole transaction aborts and re-executes with
	// ordinary validated reads — mixing modes across tasks of one
	// transaction would leave the unlogged reads unvalidated at commit.
	// A whole-transaction abort clears snapshot (cleanupTx) so the
	// validated re-execution's successor transactions resample.
	readOnly bool
	mvOff    atomic.Bool
	snapshot atomic.Uint64
}

// mvSnapUnset marks a transaction whose frozen snapshot has not been
// sampled yet.
const mvSnapUnset = ^uint64(0)

// sharedSnapshot returns the transaction's frozen read snapshot,
// lazily initialized to fresh (the calling task's clock sample) if no
// task published one first.
func (tx *txState) sharedSnapshot(fresh uint64) uint64 {
	if s := tx.snapshot.Load(); s != mvSnapUnset {
		return s
	}
	if tx.snapshot.CompareAndSwap(mvSnapUnset, fresh) {
		return fresh
	}
	return tx.snapshot.Load()
}
