package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tlstm/internal/txlog"
)

// Thread is one user-thread: a serial stream of user-transactions, each
// decomposed into speculative tasks that the runtime executes out of
// order. All methods must be called from the single goroutine that owns
// the Thread.
type Thread struct {
	rt    *Runtime
	id    int32
	depth int

	// completedTask and completedWriter are the serials of the last
	// completed task and last completed writer task (paper §3.3, task
	// and user-thread state). Tasks complete strictly in serial order.
	completedTask   atomic.Int64
	completedWriter atomic.Int64

	// slots is the owners[SPECDEPTH] array: slot serial%depth points to
	// the active task with that serial, nil when free. The submitting
	// goroutine waits for a slot to free before starting the next task.
	slots []atomic.Pointer[Task]

	// chainMu serializes redo-log chain *removals* for this thread
	// (single-task rollback and transaction abort). Chain pushes stay
	// lock-free; only writers of this thread ever touch these chains,
	// so the mutex is never contended across threads.
	chainMu sync.Mutex

	nextSerial int64 // owned by the submitting goroutine

	pending sync.WaitGroup

	// stats is the thread's unshared statistics shard (SNIPPETS-style
	// per-thread counters). It is written only by finishCommit, whose
	// invocations are serialized per thread by the commit order: the
	// next transaction's commit-task cannot reach finishCommit before
	// this one stores completedTask, which happens after the fold. No
	// mutex guards the hot path; synced tracks what Sync has already
	// merged into the runtime-global aggregate.
	stats  Stats
	synced Stats

	// commitScratch holds the commit-time r-lock bookkeeping of this
	// thread's transaction commits. Commit-tasks are serialized per
	// thread (see stats above), so one scratch per thread suffices and
	// writer commits allocate nothing at steady state.
	commitScratch txlog.CommitScratch
}

// ID reports the thread's identifier within its runtime.
func (thr *Thread) ID() int32 { return thr.id }

// TxHandle tracks one submitted user-transaction.
type TxHandle struct {
	tx *txState
}

// Wait blocks until the user-transaction has committed.
func (h *TxHandle) Wait() { <-h.tx.done }

// Submit starts one user-transaction decomposed into the given tasks (in
// program order) and returns without waiting for it to commit: with
// SpecDepth larger than the task count, tasks of the next transaction
// speculate while this one is still active (paper §1: "TLSTM can even be
// more optimistic and speculatively execute future transactions").
//
// Submit returns an error only for invalid arity; conflicts are handled
// internally by re-execution.
func (thr *Thread) Submit(fns ...TaskFunc) (*TxHandle, error) {
	if err := thr.rt.validateArity(len(fns)); err != nil {
		return nil, err
	}
	start := thr.nextSerial + 1
	commit := thr.nextSerial + int64(len(fns))
	thr.nextSerial = commit

	tx := &txState{
		thr:          thr,
		startSerial:  start,
		commitSerial: commit,
		tasks:        make([]*Task, len(fns)),
		done:         make(chan struct{}),
	}
	for i, fn := range fns {
		t := &Task{
			thr:               thr,
			tx:                tx,
			fn:                fn,
			serial:            start + int64(i),
			tryCommit:         i == len(fns)-1,
			waitBeforeRestart: -1,
		}
		t.ownerRef.ThreadID = thr.id
		t.ownerRef.StartSerial = start
		t.ownerRef.CompletedTask = &thr.completedTask
		t.ownerRef.AbortTx = &tx.abortTx
		t.ownerRef.AbortInternal = &t.abortInternal
		t.ownerRef.Timestamp = &tx.greedTS
		tx.tasks[i] = t
	}
	for _, t := range tx.tasks {
		slot := &thr.slots[t.serial%int64(thr.depth)]
		// A task may only start when the number of active tasks is
		// below SPECDEPTH, i.e. when the task that previously occupied
		// this slot has exited (paper §3.3, "Starting a task").
		for slot.Load() != nil {
			runtime.Gosched()
		}
		slot.Store(t)
		thr.pending.Add(1)
		go t.run()
	}
	return &TxHandle{tx: tx}, nil
}

// Atomic runs one user-transaction decomposed into the given tasks and
// waits for it to commit.
func (thr *Thread) Atomic(fns ...TaskFunc) error {
	h, err := thr.Submit(fns...)
	if err != nil {
		return err
	}
	h.Wait()
	return nil
}

// Sync waits until every submitted user-transaction has committed and
// all task goroutines have exited, then merges the thread's statistics
// shard (the part not yet merged) into the runtime-global aggregate.
func (thr *Thread) Sync() {
	thr.pending.Wait()
	delta := thr.stats.minus(thr.synced)
	if delta != (Stats{}) {
		thr.rt.stats.Merge(delta)
		thr.synced = thr.stats
	}
}

// Stats returns a snapshot of the thread's accumulated statistics. The
// shard is unsynchronized: call it only when the thread is quiescent —
// after Sync, or after Wait on the *last* submitted transaction (the
// fold happens before a handle unblocks). Calling it while a later
// transaction is still in flight is a data race.
func (thr *Thread) Stats() Stats {
	return thr.stats
}

// Stats aggregates per-thread execution statistics.
type Stats struct {
	// TxCommitted counts committed user-transactions.
	TxCommitted uint64
	// TxAborted counts whole-transaction aborts (inter-thread conflicts
	// detected at commit, and contention-manager victims).
	TxAborted uint64
	// TaskRestarts counts single-task rollbacks (intra-thread WAR/WAW
	// conflicts, inconsistent speculative reads).
	TaskRestarts uint64
	// Restart cause breakdown (sums to TaskRestarts):
	//   RestartWAR     — validate-task failures (intra-thread write-after-read);
	//   RestartWAW     — write-lock evictions and writes past a running writer;
	//   RestartExtend  — failed snapshot extensions (inter-thread read invalidation);
	//   RestartCM      — inter-thread contention-manager defeats;
	//   RestartSandbox — panics converted to restarts by the
	//                    inconsistent-read sandbox.
	RestartWAR     uint64
	RestartWAW     uint64
	RestartExtend  uint64
	RestartCM      uint64
	RestartSandbox uint64
	// Work is the total work in abstract units across all attempts,
	// including aborted ones.
	Work uint64
	// VirtualTime is the modeled parallel execution time in work units:
	// per transaction, tasks start together and task k finishes at
	// max(own work, finish of task k−1) + commit cost, reflecting the
	// serialized commit order (DESIGN.md §3, hardware substitution).
	VirtualTime uint64
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.TxCommitted += o.TxCommitted
	s.TxAborted += o.TxAborted
	s.TaskRestarts += o.TaskRestarts
	s.RestartWAR += o.RestartWAR
	s.RestartWAW += o.RestartWAW
	s.RestartExtend += o.RestartExtend
	s.RestartCM += o.RestartCM
	s.RestartSandbox += o.RestartSandbox
	s.Work += o.Work
	s.VirtualTime += o.VirtualTime
}

// minus returns the fieldwise difference s−o. It is only meaningful
// when o is an earlier snapshot of s (counters are monotonic), which is
// how Sync computes the not-yet-merged part of a thread's shard.
func (s Stats) minus(o Stats) Stats {
	return Stats{
		TxCommitted:    s.TxCommitted - o.TxCommitted,
		TxAborted:      s.TxAborted - o.TxAborted,
		TaskRestarts:   s.TaskRestarts - o.TaskRestarts,
		RestartWAR:     s.RestartWAR - o.RestartWAR,
		RestartWAW:     s.RestartWAW - o.RestartWAW,
		RestartExtend:  s.RestartExtend - o.RestartExtend,
		RestartCM:      s.RestartCM - o.RestartCM,
		RestartSandbox: s.RestartSandbox - o.RestartSandbox,
		Work:           s.Work - o.Work,
		VirtualTime:    s.VirtualTime - o.VirtualTime,
	}
}

// txState is the shared state of one user-transaction.
type txState struct {
	thr          *Thread
	startSerial  int64
	commitSerial int64
	tasks        []*Task

	// greedTS is the transaction's greedy CM timestamp, shared by all
	// tasks and persisting across transaction retries so long
	// transactions eventually win conflicts (no starvation).
	greedTS atomic.Uint64

	// abortTx is the abort-transaction signal (paper §3.2, "Transaction
	// abort"): set by the contention manager of another thread or by a
	// failed commit validation; observed by every task at safe points.
	abortTx atomic.Bool

	// Abort rendezvous state (guarded by mu): all participant tasks
	// park, the last to arrive unwinds the transaction's speculative
	// state, then everyone restarts. gen distinguishes abort rounds.
	mu           sync.Mutex
	gen          uint64
	acks         int32
	participants int32
	cleaning     bool

	txAborts     atomic.Uint64 // abort rounds; also drives restart backoff
	taskRestarts atomic.Uint64
	restartKind  [numRestartKinds]atomic.Uint64
	cmDefeats    atomic.Int32 // conflicts lost (two-phase greedy escalation)

	done chan struct{}
}
