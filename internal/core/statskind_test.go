package core

import (
	"testing"
)

// Restart-kind accounting: the breakdown must sum to TaskRestarts and
// attribute the right causes.

func TestRestartKindsSumToTotal(t *testing.T) {
	rt := newRT(3)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	// WAW-heavy workload: three tasks writing the same word.
	for i := 0; i < 20; i++ {
		_ = thr.Atomic(
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
			func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
		)
	}
	thr.Sync()
	st := thr.Stats()
	sum := st.RestartWAR + st.RestartWAW + st.RestartExtend + st.RestartCM + st.RestartSandbox + st.RestartRetry
	if sum != st.TaskRestarts {
		t.Fatalf("kind sum %d != TaskRestarts %d", sum, st.TaskRestarts)
	}
	if st.TaskRestarts > 0 && st.RestartWAW+st.RestartWAR == 0 {
		t.Fatalf("conflicting same-word tasks should restart intra-thread, got %+v", st)
	}
	if got := d.Load(a); got != 60 {
		t.Fatalf("counter = %d, want 60", got)
	}
}

func TestRestartKindWARAttribution(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	// Task 2 reads the word task 1 writes: if task 2's read runs first
	// it commits a WAR restart when task 1's write completes.
	var total Stats
	for i := 0; i < 50; i++ {
		_ = thr.Atomic(
			func(tk *Task) { tk.Store(a, uint64(i+1)) },
			func(tk *Task) { _ = tk.Load(a) },
		)
	}
	thr.Sync()
	total = thr.Stats()
	if total.TxCommitted != 50 {
		t.Fatalf("TxCommitted = %d", total.TxCommitted)
	}
	// Some runs may schedule task 2 after task 1 every time (no WAR),
	// so only check attribution consistency, not a minimum count.
	sum := total.RestartWAR + total.RestartWAW + total.RestartExtend + total.RestartCM + total.RestartSandbox + total.RestartRetry
	if sum != total.TaskRestarts {
		t.Fatalf("kind sum %d != TaskRestarts %d (%+v)", sum, total.TaskRestarts, total)
	}
}
