package core_test

import (
	"sync"
	"testing"

	"tlstm/internal/clock"
	"tlstm/internal/core"
	"tlstm/internal/tm"
	"tlstm/internal/xrand"
)

// Cross-thread atomicity under every commit-clock strategy: concurrent
// multi-task transfer transactions over a shared account array must
// preserve the global total. This is the runtime-level form of the
// clock conformance suite's snapshot-validity property — a strategy
// that let a stamp slip under a snapshot would manifest here as a lost
// or duplicated update. Run with -race in CI.
func TestClockStrategiesTransferAtomicity(t *testing.T) {
	const (
		threads  = 3
		depth    = 3
		accounts = 16
		txPerThr = 150
		initial  = 1_000
	)
	for _, kind := range clock.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := core.New(core.Config{SpecDepth: depth, LockTableBits: 14, Clock: clock.New(kind)})
			defer rt.Close()
			d := rt.Direct()
			base := d.Alloc(accounts)
			for i := 0; i < accounts; i++ {
				d.Store(base+tm.Addr(i), initial)
			}

			var wg sync.WaitGroup
			for w := 0; w < threads; w++ {
				thr := rt.NewThread()
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := seed
					next := func() uint64 { return xrand.Splitmix(&rng) }
					for i := 0; i < txPerThr; i++ {
						idx := make([]tm.Addr, depth+1)
						for j := range idx {
							idx[j] = base + tm.Addr(next()%accounts)
						}
						amt := next() % 50
						fns := make([]core.TaskFunc, depth)
						for j := 0; j < depth; j++ {
							from, to := idx[j], idx[j+1]
							fns[j] = func(tk *core.Task) {
								f := tk.Load(from)
								if from != to && f >= amt {
									tk.Store(from, f-amt)
									tk.Store(to, tk.Load(to)+amt)
								}
							}
						}
						if err := thr.Atomic(fns...); err != nil {
							panic(err)
						}
					}
					thr.Sync()
				}(uint64(w + 1))
			}
			wg.Wait()

			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += d.Load(base + tm.Addr(i))
			}
			if want := uint64(accounts * initial); sum != want {
				t.Fatalf("clock %v: total = %d, want %d (atomicity violated)", kind, sum, want)
			}
			st := rt.Stats()
			if st.TxCommitted != threads*txPerThr {
				t.Fatalf("clock %v: committed %d, want %d", kind, st.TxCommitted, threads*txPerThr)
			}
		})
	}
}

// The sweep's stats must distinguish the strategies: pre-publishing
// clocks pay in snapshot extensions where GV4 pays in shared-line RMWs.
func TestDeferredClockReportsExtensions(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 1, Clock: clock.New(clock.KindDeferred)})
	defer rt.Close()
	d := rt.Direct()
	a := d.Alloc(1)

	thr := rt.NewThread()
	// Writer commits stamp Now()+1 without advancing the clock, so the
	// next transaction's read of the fresh stamp must extend.
	for i := 0; i < 8; i++ {
		if err := thr.Atomic(func(tk *core.Task) { tk.Store(a, tk.Load(a)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	if d.Load(a) != 8 {
		t.Fatalf("counter = %d, want 8", d.Load(a))
	}
	st := rt.Stats()
	if st.SnapshotExtensions == 0 {
		t.Fatal("deferred clock produced no snapshot extensions: the deferred stamp was never observed ahead of the clock")
	}
	if rt.ClockName() != "deferred" {
		t.Fatalf("ClockName = %q, want deferred", rt.ClockName())
	}
}
