package core

import (
	"context"
	"os"
	"os/exec"
	"sync/atomic"
	"testing"
	"time"

	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mode"
	"tlstm/internal/tm"
)

// forcedLadder is the deterministic ladder config used by the mode
// tests: the negative ratio makes every full window fall back and every
// served residency recover, so transitions happen regardless of the
// actual conflict rate.
func forcedLadder() mode.Config {
	return mode.Config{Policy: mode.Adaptive, Window: 2, SerialWindow: 2, FallbackRatio: -1}
}

func TestAdaptiveLadderFallbackAndRecovery(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 12, Mode: forcedLadder()})
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	for i := 0; i < 40; i++ {
		if err := thr.Atomic(func(tk *Task) { tk.Store(a, tk.Load(a)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	st := thr.Stats()
	if st.ModeFallbacks == 0 {
		t.Fatalf("forced ladder never fell back: %+v", st)
	}
	if st.ModeRecoveries == 0 {
		t.Fatalf("forced ladder never recovered: %+v", st)
	}
	if got := d.Load(a); got != 40 {
		t.Fatalf("counter = %d, want 40 (mixed-rung commits must agree)", got)
	}
	if st.TxCommitted != 40 {
		t.Fatalf("TxCommitted = %d, want 40", st.TxCommitted)
	}
}

// TestModeConformance runs the same hot-word mix under every rung —
// always-speculative, forced adaptive oscillation, and always-serial —
// plus the inline rung (adaptive at SpecDepth 1) and requires identical
// final state.
func TestModeConformance(t *testing.T) {
	run := func(depth int, mc mode.Config) []uint64 {
		rt := New(Config{SpecDepth: depth, LockTableBits: 12, Mode: mc})
		defer rt.Close()
		d := rt.Direct()
		words := make([]tm.Addr, 4)
		for i := range words {
			words[i] = d.Alloc(1)
		}
		done := make(chan *Thread, 4)
		for w := 0; w < 4; w++ {
			go func(seed int) {
				thr := rt.NewThread()
				for i := 0; i < 50; i++ {
					x := words[(seed+i)%4]
					y := words[(seed+i+1)%4]
					_ = thr.Atomic(func(tk *Task) {
						tk.Store(x, tk.Load(x)+1)
						tk.Store(y, tk.Load(y)+2)
					})
				}
				thr.Sync()
				done <- thr
			}(w)
		}
		for i := 0; i < 4; i++ {
			<-done
		}
		out := make([]uint64, len(words))
		for i, w := range words {
			out[i] = d.Load(w)
		}
		return out
	}

	spec := run(2, mode.Config{Policy: mode.Speculative})
	adaptive := run(2, forcedLadder())
	serial := run(2, mode.Config{Policy: mode.Serial})
	inline := run(1, forcedLadder())
	for i := range spec {
		if adaptive[i] != spec[i] || serial[i] != spec[i] || inline[i] != spec[i] {
			t.Fatalf("rung divergence at word %d: spec=%v adaptive=%v serial=%v inline=%v",
				i, spec, adaptive, serial, inline)
		}
	}
}

// TestInlineRungRunsOnSubmitter checks that an armed ladder at
// SpecDepth 1 executes single-task transactions without waking a pool
// worker.
func TestInlineRungRunsOnSubmitter(t *testing.T) {
	rt := New(Config{SpecDepth: 1, LockTableBits: 12,
		Mode: mode.Config{Policy: mode.Adaptive}})
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	for i := 0; i < 10; i++ {
		if err := thr.Atomic(func(tk *Task) { tk.Store(a, tk.Load(a)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	st := thr.Stats()
	if st.WorkersSpawned != 0 {
		t.Fatalf("inline rung spawned %d workers", st.WorkersSpawned)
	}
	if st.TxCommitted != 10 {
		t.Fatalf("TxCommitted = %d", st.TxCommitted)
	}
	if got := d.Load(a); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if st.DescriptorReuses == 0 {
		t.Fatalf("inline runs must still count descriptor reuse: %+v", st)
	}
}

// TestRetryProducerConsumer parks a single-task consumer on its
// predicate and wakes it with a conflicting producer commit.
func TestRetryProducerConsumer(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 12})
	d := rt.Direct()
	cell := d.Alloc(1)
	out := d.Alloc(1)

	consumer := rt.NewThread()
	producer := rt.NewThread()

	done := make(chan error, 1)
	go func() {
		done <- consumer.Atomic(func(tk *Task) {
			v := tk.Load(cell)
			if v == 0 {
				tk.Retry()
			}
			tk.Store(out, v)
		})
	}()

	time.Sleep(20 * time.Millisecond) // let the consumer park
	if err := producer.Atomic(func(tk *Task) { tk.Store(cell, 42) }); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumer never woke from Retry park")
	}
	consumer.Sync()
	if got := d.Load(out); got != 42 {
		t.Fatalf("consumer stored %d, want 42", got)
	}
	st := consumer.Stats()
	if st.RetryWakes == 0 {
		t.Fatalf("expected a doorbell wake, got %+v", st)
	}
	if st.RestartRetry == 0 {
		t.Fatalf("Retry unwind not attributed: %+v", st)
	}
	producer.Sync()
}

// TestRetryMultiTaskRespins checks the multi-task form: an intermediate
// task cannot park (it would strand its siblings' locks), so Retry
// respins with backoff until the predicate flips.
func TestRetryMultiTaskRespins(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 12})
	d := rt.Direct()
	cell := d.Alloc(1)
	out := d.Alloc(1)

	consumer := rt.NewThread()
	producer := rt.NewThread()

	done := make(chan error, 1)
	go func() {
		done <- consumer.Atomic(
			func(tk *Task) {
				v := tk.Load(cell)
				if v == 0 {
					tk.Retry()
				}
			},
			func(tk *Task) { tk.Store(out, tk.Load(cell)) },
		)
	}()

	time.Sleep(10 * time.Millisecond)
	if err := producer.Atomic(func(tk *Task) { tk.Store(cell, 7) }); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("multi-task Retry never observed the producer's write")
	}
	consumer.Sync()
	if got := d.Load(out); got != 7 {
		t.Fatalf("out = %d, want 7", got)
	}
	st := consumer.Stats()
	if st.RestartRetry == 0 {
		t.Fatalf("respin not attributed to RestartRetry: %+v", st)
	}
	if st.RetryWakes != 0 {
		t.Fatalf("multi-task Retry must not park: %+v", st)
	}
	producer.Sync()
}

// waitCM is an always-Wait contention manager: it never aborts either
// side, so any cross-thread lock standoff it adjudicates persists until
// something else (the gate-yield break) resolves it.
type waitCM struct{}

func (waitCM) Name() string                                         { return "wait" }
func (waitCM) OnConflict(*cm.Self, *locktable.OwnerRef) cm.Decision { return cm.Wait }
func (waitCM) OnAbort(*cm.Self) int                                 { return 0 }
func (waitCM) OnCommit(*cm.Self)                                    {}

// runGateStandoff builds the directed cross-thread standoff of the
// drain-deadlock regression: thread B falls back to the serialized rung
// and, under the gate, takes Y then wants X; speculative thread A takes
// X then wants Y, and its CM (always-Wait) would ride the conflict out
// forever. Only the gate-yield break in the wait loop lets A concede,
// release X, and unblock the gated entrant. It returns once both
// threads committed.
func runGateStandoff() {
	rt := New(Config{SpecDepth: 1, LockTableBits: 12, CM: waitCM{},
		Mode: mode.Config{Policy: mode.Adaptive, Window: 1, SerialWindow: 8, FallbackRatio: -1}})
	d := rt.Direct()
	x := d.Alloc(1)
	y := d.Alloc(1)

	var aHasX, bHasY atomic.Bool
	done := make(chan struct{}, 2)

	go func() { // thread B: trivial commit, then a gated transaction
		thr := rt.NewThread()
		_ = thr.Atomic(func(tk *Task) { tk.Load(y) })
		// Window=1 with the forced ratio: the next submit falls back.
		_ = thr.Atomic(func(tk *Task) {
			tk.Store(y, 1)
			bHasY.Store(true)
			for !aHasX.Load() {
				time.Sleep(time.Millisecond)
			}
			tk.Store(x, 1) // X is held by A: ride out under the gate
		})
		thr.Sync()
		done <- struct{}{}
	}()

	go func() { // thread A: speculative, cross-holds against B
		thr := rt.NewThread()
		_ = thr.Atomic(func(tk *Task) {
			tk.Store(x, 2)
			aHasX.Store(true)
			for !bHasY.Load() {
				time.Sleep(time.Millisecond)
			}
			tk.Store(y, 2) // Y is held by the gated entrant
		})
		thr.Sync()
		done <- struct{}{}
	}()

	<-done
	<-done
}

// TestGateDrainBreaksWaitStandoff is the satellite regression: a ladder
// fallback entered while a CM Wait decision is pending must not
// deadlock against the draining speculative cohort.
func TestGateDrainBreaksWaitStandoff(t *testing.T) {
	finished := make(chan struct{})
	go func() {
		runGateStandoff()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("gate standoff deadlocked despite the wait-loop break")
	}
}

// TestGateDrainBreakIsLoadBearing mutation-verifies the regression
// above: with the break disarmed (gatePendingBreak=false) the same
// standoff must deadlock. The mutant runs in a subprocess so its
// wedged goroutines cannot poison this process.
func TestGateDrainBreakIsLoadBearing(t *testing.T) {
	if os.Getenv("CORE_GATE_MUTANT") == "1" {
		gatePendingBreak = false
		runGateStandoff() // expected to wedge; the parent kills us
		return
	}
	if testing.Short() {
		t.Skip("subprocess mutant check")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0], "-test.run=^TestGateDrainBreakIsLoadBearing$")
	cmd.Env = append(os.Environ(), "CORE_GATE_MUTANT=1")
	out, err := cmd.CombinedOutput()
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("mutant with the break disarmed did not deadlock (err=%v):\n%s", err, out)
	}
}
