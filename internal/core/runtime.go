// Package core implements TLSTM, the unified STM+TLS runtime of the
// paper (Algorithms 1–3): SwissTM extended so that every user-thread is
// decomposed into speculative tasks that execute out of order and commit
// sequentially, while user-transactions spanning one or more tasks keep
// SwissTM's opacity guarantees across threads.
//
// Key vocabulary (paper §2):
//
//   - user-thread: a hand-parallelized thread of the program, here a
//     Thread;
//   - user-transaction: a critical section delimited by the programmer,
//     here one Submit/Atomic call, decomposed into tasks;
//   - speculative task: the unit of speculative execution, here a Task.
//     What used to be a SwissTM transaction is a task in TLSTM (§3.2).
//
// Within a user-thread, at most SPECDEPTH tasks are simultaneously
// active; tasks carry monotonically increasing serial numbers and commit
// in serial order. Intra-thread conflicts (WAR and WAW) are detected with
// per-location redo-log chains and the validate-task procedure;
// inter-thread conflicts reuse SwissTM's machinery plus the task-aware
// contention manager.
package core

import (
	"fmt"
	"sync/atomic"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mem"
	"tlstm/internal/txstats"
)

// Config configures a Runtime.
type Config struct {
	// SpecDepth is SPECDEPTH: the maximum number of simultaneously
	// active tasks per user-thread (paper §3.3). It also bounds the
	// number of tasks a single user-transaction may be split into,
	// because every task of a transaction stays active until the
	// transaction commits. Defaults to 4.
	SpecDepth int
	// LockTableBits sizes the global lock table at 2^bits pairs.
	// Defaults to 20.
	LockTableBits int
	// PlainGreedyCM disables the task-aware inter-thread contention
	// policy and falls back to bare two-phase greedy. The paper argues
	// task-awareness is necessary to avoid inter-thread deadlocks and
	// favour transactions likely to finish (§3.2); this switch exists
	// for the ablation benchmark that quantifies it.
	PlainGreedyCM bool
}

func (c *Config) fill() {
	if c.SpecDepth <= 0 {
		c.SpecDepth = 4
	}
	if c.LockTableBits == 0 {
		c.LockTableBits = 20
	}
}

// Runtime is one TLSTM instance. Independent Runtimes are fully isolated.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator
	locks *locktable.Table

	clk clock.Clock
	cm  cm.TaskAware

	// stats aggregates per-thread shards, merged at Sync boundaries
	// (see Thread.Sync); the hot path never touches it.
	stats txstats.Aggregate[Stats, *Stats]

	specDepth     int
	plainGreedyCM bool
	nextThreadID  atomic.Int32
}

// New creates a TLSTM runtime.
func New(cfg Config) *Runtime {
	cfg.fill()
	st := mem.NewStore()
	return &Runtime{
		store:         st,
		alloc:         mem.NewAllocator(st),
		locks:         locktable.NewTable(cfg.LockTableBits),
		specDepth:     cfg.SpecDepth,
		plainGreedyCM: cfg.PlainGreedyCM,
	}
}

// SpecDepth reports the runtime's SPECDEPTH.
func (rt *Runtime) SpecDepth() int { return rt.specDepth }

// CommitTS exposes the global commit timestamp (tests and stats).
func (rt *Runtime) CommitTS() uint64 { return rt.clk.Now() }

// Stats returns the runtime-global statistics aggregate: the sum of
// every per-thread shard merged so far (threads merge at Sync).
func (rt *Runtime) Stats() Stats { return rt.stats.Snapshot() }

// Direct returns a non-transactional tm.Tx for single-threaded setup,
// before any user-thread runs.
func (rt *Runtime) Direct() mem.Direct {
	return mem.Direct{Mem: rt.store, Al: rt.alloc}
}

// Allocator exposes the runtime's allocator (tests).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

// NewThread creates a user-thread. A Thread must be driven by exactly
// one goroutine (the "user-thread" itself); its speculative tasks run on
// goroutines managed by the runtime.
func (rt *Runtime) NewThread() *Thread {
	id := rt.nextThreadID.Add(1) - 1
	thr := &Thread{
		rt:    rt,
		id:    id,
		depth: rt.specDepth,
		slots: make([]atomic.Pointer[Task], rt.specDepth),
	}
	return thr
}

// TaskFunc is the body of one speculative task. It receives the Task as
// its tm.Tx access handle. Bodies must be re-executable: the runtime may
// run them several times (speculation may fail), so they must not have
// external side effects. A body that panics while its speculative reads
// were inconsistent is restarted (inconsistent-read sandboxing, §3.2);
// a panic in a consistent state propagates as a genuine bug.
type TaskFunc func(t *Task)

// validateArity checks a Submit's task count against SPECDEPTH.
func (rt *Runtime) validateArity(n int) error {
	if n == 0 {
		return fmt.Errorf("core: transaction needs at least one task")
	}
	if n > rt.specDepth {
		return fmt.Errorf("core: transaction with %d tasks exceeds SPECDEPTH %d (all tasks of a transaction must be simultaneously active)", n, rt.specDepth)
	}
	return nil
}
