// Package core implements TLSTM, the unified STM+TLS runtime of the
// paper (Algorithms 1–3): SwissTM extended so that every user-thread is
// decomposed into speculative tasks that execute out of order and commit
// sequentially, while user-transactions spanning one or more tasks keep
// SwissTM's opacity guarantees across threads.
//
// Key vocabulary (paper §2):
//
//   - user-thread: a hand-parallelized thread of the program, here a
//     Thread;
//   - user-transaction: a critical section delimited by the programmer,
//     here one Submit/Atomic call, decomposed into tasks;
//   - speculative task: the unit of speculative execution, here a Task.
//     What used to be a SwissTM transaction is a task in TLSTM (§3.2).
//
// Within a user-thread, at most SPECDEPTH tasks are simultaneously
// active; tasks carry monotonically increasing serial numbers and commit
// in serial order. Intra-thread conflicts (WAR and WAW) are detected with
// per-location redo-log chains and the validate-task procedure;
// inter-thread conflicts reuse SwissTM's machinery plus the task-aware
// contention manager.
package core

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mem"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

// Config configures a Runtime.
type Config struct {
	// SpecDepth is SPECDEPTH: the maximum number of simultaneously
	// active tasks per user-thread (paper §3.3). It also bounds the
	// number of tasks a single user-transaction may be split into,
	// because every task of a transaction stays active until the
	// transaction commits. Defaults to 4.
	SpecDepth int
	// LockTableBits sizes the global lock table at 2^bits pairs.
	// Defaults to 20.
	LockTableBits int
	// Shards splits the lock table into that many contiguous shards
	// (power of two; 0 or 1 means flat). Sharding never changes which
	// pair an address resolves to — it only labels regions for the
	// conflict sketch and affinity placement.
	Shards int
	// Affinity enables the affinity placement policy: threads whose
	// conflict sketches concentrate on one shard are re-homed onto it
	// (sched.Affinity). Off means static round-robin homes.
	Affinity bool
	// PadLockTable spreads lock pairs one per cache line
	// (locktable.PadStride) to trade memory for false-sharing isolation.
	PadLockTable bool
	// PlainGreedyCM disables the task-aware inter-thread contention
	// policy and falls back to bare two-phase greedy. The paper argues
	// task-awareness is necessary to avoid inter-thread deadlocks and
	// favour transactions likely to finish (§3.2); this switch exists
	// for the ablation benchmark that quantifies it. It is shorthand
	// for CM: cm.New(cm.KindGreedy) and is ignored when CM is set.
	PlainGreedyCM bool
	// CM selects the contention-management policy (internal/cm) that
	// resolves inter-thread write/write conflicts. nil means the
	// paper's task-aware policy over two-phase greedy (or bare greedy
	// under PlainGreedyCM).
	CM cm.Policy
	// Policy selects the scheduler's spawn policy (internal/sched):
	// sched.Pooled (the zero value, default) dispatches tasks to each
	// thread's ring of long-lived workers; sched.Inline runs task
	// bodies on the submitting goroutine and requires SpecDepth 1 —
	// with no intra-thread speculation to overlap, the hand-off to a
	// worker is pure overhead, and an intermediate task of a multi-task
	// transaction would deadlock its own submitter. New panics on an
	// Inline policy with SpecDepth > 1.
	Policy sched.Policy
	// Clock selects the commit-clock strategy (internal/clock): the
	// GV4 fetch-and-add clock (default), the GV5-style deferred clock,
	// or the sharded clock. nil means GV4.
	Clock clock.Source
	// ReclaimRing bounds each task descriptor's quiescence ring of
	// retired write-lock entries (locktable.FreeRing): retirements past
	// the bound fall back to the garbage collector. 0 means unbounded —
	// the rings self-size to the pipeline depth and steady-state writer
	// transactions allocate nothing. 1 is the aggressive test
	// configuration: the single slot forces recycling to be exercised
	// on (almost) every commit instead of only under pipelined load.
	ReclaimRing int
	// ReclaimAudit installs the entry-reclamation invariant checker on
	// every thread: each entry reuse served from a quiescence ring
	// re-verifies that the committed frontier covers the entry's
	// retirement serial and that no task is mid-attempt from before the
	// retirement (see reclaim.go). Costs a slot scan per recycle; meant
	// for tests and stress soaks, not production runs.
	ReclaimAudit bool
	// MVDepth, when positive, retains the last MVDepth displaced
	// committed versions per word (txlog.VersionedStore) and enables the
	// wait-free read path for user-transactions submitted through
	// SubmitRO/AtomicRO. 0 (the default) disables multi-versioning.
	MVDepth int
	// Trace, when non-nil, attaches a flight recorder
	// (internal/txtrace): every task descriptor gets its own
	// single-owner event ring and records the task lifecycle (begin,
	// attempts, reads, writes, validation, CM decisions, aborts,
	// commits, entry reclaims). nil keeps tracing off — the default
	// no-op tracer compiles to a dead branch on the hot paths.
	Trace *txtrace.Recorder
	// Mode configures the execution-mode ladder (internal/mode): under
	// the adaptive policy each thread starts transactions in the
	// cheapest viable mode (inline sequential at SpecDepth 1, pooled
	// speculative otherwise) and falls back to a serialized global-lock
	// rung when its commit window turns abort-heavy, recovering after a
	// clean serialized window. The zero value keeps the ladder disarmed
	// (always speculative).
	Mode mode.Config
}

func (c *Config) fill() {
	if c.SpecDepth <= 0 {
		c.SpecDepth = 4
	}
	if c.LockTableBits == 0 {
		c.LockTableBits = 20
	}
	if c.Clock == nil {
		c.Clock = clock.New(clock.KindGV4)
	}
	if c.CM == nil {
		if c.PlainGreedyCM {
			c.CM = cm.New(cm.KindGreedy)
		} else {
			c.CM = cm.New(cm.KindTaskAware)
		}
	}
	c.Mode = c.Mode.Fill()
}

// Runtime is one TLSTM instance. Independent Runtimes are fully isolated.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator
	locks *locktable.Table

	clk clock.Source
	cm  cm.Policy

	// mv, when non-nil, is the multi-version word store declared
	// read-only transactions read from without validating.
	mv *txlog.VersionedStore

	// trace, when non-nil, hands each task descriptor a flight-recorder
	// ring.
	trace *txtrace.Recorder

	// stats aggregates per-thread shards, merged at Sync boundaries
	// (see Thread.Sync); the hot path never touches it.
	stats txstats.Aggregate[Stats, *Stats]

	// placement assigns each thread a home lock-table shard and, under
	// the affinity policy, rebinds it toward where the thread's
	// conflicts concentrate (finishCommit's remap step).
	placement sched.Placement

	// modeCfg/gate/hub are the execution-mode ladder (Config.Mode): the
	// gate serializes fallback entrants while speculative threads keep
	// running (their conflict ride-out loops yield to it), and the hub
	// parks Retry waiters until a conflicting commit rings them.
	modeCfg mode.Config
	gate    mode.Gate
	hub     *mode.WaitHub

	specDepth    int
	policy       sched.Policy
	reclaimRing  int
	reclaimAudit bool
	nextThreadID atomic.Int32

	// threadsMu guards the registry of threads whose scheduler pools
	// Close drains.
	threadsMu sync.Mutex
	threads   []*Thread
}

// New creates a TLSTM runtime.
func New(cfg Config) *Runtime {
	cfg.fill()
	if cfg.Policy == sched.Inline && cfg.SpecDepth != 1 {
		panic(fmt.Sprintf("core: the Inline scheduling policy requires SpecDepth 1, got %d (an intermediate task of a multi-task transaction parks until its transaction commits, which would deadlock the submitting goroutine)", cfg.SpecDepth))
	}
	st := mem.NewStore()
	rt := &Runtime{
		store: st,
		alloc: mem.NewAllocator(st),
		locks: locktable.New(locktable.Config{
			Bits:   cfg.LockTableBits,
			Shards: cfg.Shards,
			Padded: cfg.PadLockTable,
		}),
		clk:          cfg.Clock,
		cm:           cfg.CM,
		modeCfg:      cfg.Mode,
		hub:          mode.NewWaitHub(),
		specDepth:    cfg.SpecDepth,
		policy:       cfg.Policy,
		reclaimRing:  cfg.ReclaimRing,
		reclaimAudit: cfg.ReclaimAudit,
		trace:        cfg.Trace,
	}
	if cfg.Affinity {
		rt.placement = sched.NewAffinity(rt.locks.Shards())
	} else {
		rt.placement = sched.NewRoundRobin(rt.locks.Shards())
	}
	if cfg.MVDepth > 0 {
		rt.mv = txlog.NewVersionedStore(cfg.MVDepth, txlog.DefaultVersionedStoreBits)
	}
	if rt.trace != nil {
		// The offline opacity checker recomputes lock-table slots and
		// picks its clock model from this metadata (txcheck).
		rt.trace.SetMeta("core.lockbits", strconv.Itoa(cfg.LockTableBits))
		rt.trace.SetMeta("core.clock", rt.clk.Name())
		rt.trace.SetMeta("core.exclusive", strconv.FormatBool(rt.clk.Exclusive()))
		rt.trace.SetMeta("core.mvdepth", strconv.Itoa(cfg.MVDepth))
	}
	return rt
}

// Shards reports the lock table's shard count (1 when flat).
func (rt *Runtime) Shards() int { return rt.locks.Shards() }

// PlacementName reports the thread-placement policy ("static" or
// "affinity").
func (rt *Runtime) PlacementName() string { return rt.placement.Name() }

// SpecDepth reports the runtime's SPECDEPTH.
func (rt *Runtime) SpecDepth() int { return rt.specDepth }

// MVDepth reports the retained version depth (0 when multi-versioning
// is off).
func (rt *Runtime) MVDepth() int {
	if rt.mv == nil {
		return 0
	}
	return rt.mv.K()
}

// Policy reports the runtime's scheduler spawn policy.
func (rt *Runtime) Policy() sched.Policy { return rt.policy }

// Close drains every thread's scheduler pool: armed tasks finish, the
// long-lived worker goroutines exit and are joined. Call it when the
// runtime is done — after every thread has Synced and no further
// Submits will happen; submitting after Close panics. Close is
// idempotent. A runtime that is simply garbage-collected without Close
// leaks nothing but the parked workers' stacks until process exit.
func (rt *Runtime) Close() {
	rt.threadsMu.Lock()
	threads := append([]*Thread(nil), rt.threads...)
	rt.threadsMu.Unlock()
	for _, thr := range threads {
		thr.pool.Close()
	}
}

// CommitTS exposes the global commit timestamp (tests and stats).
func (rt *Runtime) CommitTS() uint64 { return rt.clk.Now() }

// ClockName reports the commit-clock strategy this runtime uses.
func (rt *Runtime) ClockName() string { return rt.clk.Name() }

// CMName reports the contention-management policy this runtime uses.
func (rt *Runtime) CMName() string { return rt.cm.Name() }

// ModeName reports the execution-mode policy this runtime's threads
// ladder under.
func (rt *Runtime) ModeName() string { return rt.modeCfg.Policy.String() }

// Stats returns the runtime-global statistics aggregate: the sum of
// every per-thread shard merged so far (threads merge at Sync).
func (rt *Runtime) Stats() Stats { return rt.stats.Snapshot() }

// Direct returns a non-transactional tm.Tx for single-threaded setup,
// before any user-thread runs.
func (rt *Runtime) Direct() mem.Direct {
	return mem.Direct{Mem: rt.store, Al: rt.alloc}
}

// Allocator exposes the runtime's allocator (tests).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

// NewThread creates a user-thread. A Thread must be driven by exactly
// one goroutine (the "user-thread" itself); its speculative tasks run
// on the thread's scheduler pool: a ring of SPECDEPTH recycled task
// descriptors executed by SPECDEPTH long-lived workers (spawned lazily
// on first use, drained by Runtime.Close). Creating a thread allocates
// its rings once; steady-state Submits allocate nothing.
func (rt *Runtime) NewThread() *Thread {
	id := rt.nextThreadID.Add(1) - 1
	thr := &Thread{
		rt:     rt,
		id:     id,
		depth:  rt.specDepth,
		slots:  make([]atomic.Pointer[Task], rt.specDepth),
		ring:   make([]*Task, rt.specDepth),
		txRing: make([]*txState, rt.specDepth),
		ctl:    mode.NewController(rt.modeCfg),
	}
	thr.homeShard.Store(int32(rt.placement.Home(int(id))))
	thr.tr = txtrace.Nop
	if rt.trace != nil {
		// Mode-ladder transitions happen on the submitting goroutine,
		// never on a task's worker, so they get their own ring.
		thr.tr = rt.trace.NewRing(fmt.Sprintf("core-thr%d-mode", id))
		thr.traced = true
	}
	for i := range thr.ring {
		t := &Task{thr: thr, waitBeforeRestart: -1}
		// The per-context owner-header fields are wired once for the
		// descriptor's whole pooled lifetime; the per-transaction slots
		// are re-bound by every Submit (locktable.OwnerRef.BindTx).
		t.ownerRef.ThreadID = id
		t.ownerRef.CompletedTask = &thr.completedTask
		t.ownerRef.AbortInternal = &t.abortInternal
		t.cmSelf.Probe = &t.cmProbe
		// Entry-reclamation wiring: no live read log yet, ring bound
		// and audit hook fixed for the descriptor's whole lifetime.
		t.readHorizon.Store(horizonDead)
		t.writeLog.Ring().SetCap(rt.reclaimRing)
		if rt.reclaimAudit {
			t.writeLog.Ring().OnReclaim = thr.auditReclaim
		}
		t.tr = txtrace.Nop
		if rt.trace != nil {
			t.tr = rt.trace.NewRing(fmt.Sprintf("core-thr%d-slot%d", id, i))
			t.traced = true
			// Compose the reclaim hook: OnReclaim fires on the pop path
			// of the descriptor's own free ring, i.e. on the ring
			// owner's worker, so recording here stays single-owner.
			tr, audit := t.tr, t.writeLog.Ring().OnReclaim
			t.writeLog.Ring().OnReclaim = func(at, epoch int64) {
				tr.Record(txtrace.KindReclaim, uint64(epoch), uint64(at), uint32(epoch))
				if audit != nil {
					audit(at, epoch)
				}
			}
		}
		thr.ring[i] = t
	}
	for i := range thr.txRing {
		thr.txRing[i] = &txState{thr: thr}
	}
	thr.pool = sched.New(rt.specDepth, rt.policy, thr.runSlot)
	thr.pool.SetLabel(fmt.Sprintf("tlstm-thr%d", id))
	rt.threadsMu.Lock()
	rt.threads = append(rt.threads, thr)
	rt.threadsMu.Unlock()
	return thr
}

// TaskFunc is the body of one speculative task. It receives the Task as
// its tm.Tx access handle. Bodies must be re-executable: the runtime may
// run them several times (speculation may fail), so they must not have
// external side effects. A body that panics while its speculative reads
// were inconsistent is restarted (inconsistent-read sandboxing, §3.2);
// a panic in a consistent state propagates as a genuine bug.
type TaskFunc func(t *Task)

// validateArity checks a Submit's task count against SPECDEPTH.
func (rt *Runtime) validateArity(n int) error {
	if n == 0 {
		return fmt.Errorf("core: transaction needs at least one task")
	}
	if n > rt.specDepth {
		return fmt.Errorf("core: transaction with %d tasks exceeds SPECDEPTH %d (all tasks of a transaction must be simultaneously active)", n, rt.specDepth)
	}
	return nil
}
