package core

import (
	"runtime"
	"sync/atomic"

	"tlstm/internal/locktable"
)

// unwindWrites removes this task's redo-chain entries and retires them
// into the descriptor's free ring. It is idempotent: a transaction-abort
// cleanup may already have removed (and retired) them, in which case the
// log is empty here.
func (t *Task) unwindWrites() {
	if t.writeLog.Len() == 0 {
		return
	}
	t.thr.chainMu.Lock()
	for _, e := range t.writeLog.Entries() {
		removeEntryLocked(e)
	}
	t.thr.chainMu.Unlock()
	// Retire, never Recycle: other tasks may still hold these entries
	// as chain-identity markers (see the read-entry comment in
	// task.go), so reuse must wait for the quiescence horizon. Ordering
	// matters for the audit's happens-before argument: detach first
	// (above), then bump the retirement epoch, then sample the frontier
	// for the stamp — a task arming after the frontier passes the stamp
	// is then guaranteed to observe the bumped epoch.
	t.retireWriteLog()
}

// retireWriteLog queues every (already detached) logged entry for
// horizon-gated reuse: retirement serial = committed frontier +
// SPECDEPTH, the upper bound on serials armed — and hence possibly
// holding a stale pointer — at this moment. The bound holds because a
// slot frees only when its previous task exits, and every exit is
// gated on the task's transaction having PUBLISHED its commit to
// txDone (the intermediate wait in commitStep deliberately gates on
// the latch, not completedTask): armed serial n therefore implies
// frontier ≥ n − SPECDEPTH.
func (t *Task) retireWriteLog() {
	thr := t.thr
	epoch := thr.retireEpoch.Add(1)
	horizon := thr.txDone.Seq()
	t.writeLog.Retire(horizon+int64(thr.depth), epoch, horizon)
}

// removeEntryLocked unlinks e from its pair's redo chain. The caller
// holds the owning thread's chainMu, which serializes all removals on
// this thread's chains; pushes (head CAS by tasks of the same thread)
// are handled by the retry loop.
func removeEntryLocked(e *locktable.WEntry) {
	p := e.Pair
	for {
		h := p.W.Load()
		if h == nil {
			return // chain already gone (e.g. committed and dropped)
		}
		if h == e {
			if p.W.CompareAndSwap(e, e.Prev.Load()) {
				return
			}
			continue // a push or a commit release raced us; retry
		}
		// e sits mid-chain: splice it out through its successor. Only
		// removals mutate Prev links and they are serialized by
		// chainMu, so the walk is stable.
		s := h
		for s != nil && s.Prev.Load() != e {
			s = s.Prev.Load()
		}
		if s == nil {
			return // e is no longer linked
		}
		s.Prev.Store(e.Prev.Load())
		return
	}
}

// rendezvous coordinates a whole-transaction abort (paper §3.2,
// "Transaction abort"): every task of the user-transaction parks here;
// the last one to arrive unwinds the transaction's speculative state and
// opens a new round; everyone then restarts.
//
// A task may also arrive after the round already finished (it read the
// abort flag just before it was cleared); it then simply returns and its
// caller restarts it, which is harmless.
func (t *Task) rendezvous() {
	t.rendezvousMayCommit(false)
}

// rendezvousMayCommit is rendezvous with an escape hatch for the one
// caller that needs it, the intermediate-task commit wait. There — and
// only there — the abort flag can be raised after the commit-task has
// passed its final validation: the round then can never complete (the
// commit-task finishes without ever acking) and the signal is
// necessarily spurious, e.g. a stale cross-thread reader of a recycled
// descriptor's owner header aborting a transaction that was already
// done. With allowCommit, a parked task watches the thread's committed
// latch and reports true once its transaction commits, so its caller
// exits the commit wait normally instead of parking forever. Every
// other call site runs before the task has completed, so its
// transaction cannot commit under it and allowCommit is false.
func (t *Task) rendezvousMayCommit(allowCommit bool) (committed bool) {
	tx := t.tx

	tx.mu.Lock()
	if !tx.abortTx.Load() {
		tx.mu.Unlock()
		return false
	}
	gen := tx.gen
	tx.acks++
	if tx.acks == tx.participants && !tx.cleaning {
		tx.cleaning = true
		tx.mu.Unlock()

		t.cleanupTx()

		tx.mu.Lock()
		tx.acks = 0
		tx.gen++
		tx.cleaning = false
		tx.abortTx.Store(false)
		tx.mu.Unlock()
		return false
	}
	tx.mu.Unlock()

	for {
		tx.mu.Lock()
		g := tx.gen
		tx.mu.Unlock()
		if g != gen {
			return false
		}
		if allowCommit && t.thr.txDone.Seq() >= tx.commitSerial {
			return true
		}
		runtime.Gosched()
	}
}

// cleanupTx is Alg. 3 rollback-transaction, executed by exactly one task
// while every participant of the transaction is parked:
//
//  1. every write-lock taken by any task of the transaction is unwound
//     (line 96–99);
//  2. the thread's completion counters are reset below the transaction
//     (lines 100–101) — lowered only, since an earlier transaction of
//     the thread may still be in flight below us;
//  3. active tasks beyond the transaction are signalled aborted-
//     internally: they may have read our speculative state, and the
//     counter reset also invalidates their validation gates. (The paper
//     resets "the tasks' state to their last known correct values";
//     restarting the speculative suffix is the simple sound version.)
func (t *Task) cleanupTx() {
	tx := t.tx
	thr := t.thr

	// Only descriptors the submitter has armed for THIS incarnation may
	// be swept: tx.tasks names every descriptor the transaction will
	// use, but a not-yet-armed one still belongs to (or is retiring
	// from) an earlier transaction, and its write log is not ours to
	// read. The armed load is the acquire matching the submitter's
	// post-reset increment, so every swept log is the freshly reset
	// one. Armed tasks are all parked in the rendezvous (or on their
	// way to joinTx, having touched nothing yet), so the sweep runs
	// unraced.
	n := int(tx.armed.Load())
	if n > len(tx.tasks) {
		n = len(tx.tasks)
	}
	thr.chainMu.Lock()
	for _, task := range tx.tasks[:n] {
		for _, e := range task.writeLog.Entries() {
			removeEntryLocked(e)
		}
	}
	thr.chainMu.Unlock()

	// Retire the swept entries into their descriptors' free rings and
	// empty the swept logs, so the participants' own unwindWrites (run
	// when they wake from the rendezvous) cannot retire them twice.
	// The participants are parked until the round closes, so mutating
	// their logs here is unraced, and the round's mutex hand-off orders
	// these writes before their next access. Detach (above) precedes
	// the epoch bump inside retireWriteLog, as the audit requires.
	for _, task := range tx.tasks[:n] {
		if task.writeLog.Len() > 0 {
			task.retireWriteLog()
		}
	}

	lowerCounter(&thr.completedTask, tx.startSerial-1)
	lowerCounter(&thr.completedWriter, tx.startSerial-1)

	for i := range thr.slots {
		// Serial is atomic because the submitter may be re-arming a
		// freed slot while we scan; at worst we signal a brand-new
		// incarnation beyond the transaction, which costs it one
		// harmless restart.
		if p := thr.slots[i].Load(); p != nil && p.serial.Load() > tx.commitSerial {
			p.abortInternal.Store(true)
		}
	}

	// A fresh round of attempts must not inherit the aborted round's
	// frozen snapshot: if the transaction is still on the wait-free
	// read-only path it resamples (the abort may have been raised
	// precisely because the snapshot was too old to serve).
	tx.snapshot.Store(mvSnapUnset)

	tx.txAborts.Add(1)

	// Execution-mode ladder signal, folded per abort round rather than
	// at commit: a transaction stuck re-aborting under a conflict storm
	// may not commit for a long time, and the controller needs the
	// abort pressure while the storm is on, not after it survives it.
	thr.ctlAborts.Add(1)
}

// lowerCounter moves c down to v; it never raises it (completions of
// earlier transactions may race with an abort and must win).
func lowerCounter(c *atomic.Int64, v int64) {
	for {
		cur := c.Load()
		if cur <= v || c.CompareAndSwap(cur, v) {
			return
		}
	}
}
