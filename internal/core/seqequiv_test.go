package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tlstm/internal/tm"
)

// The fundamental TLS property (paper §2): within a user-thread, the
// decomposed speculative execution must be indistinguishable from the
// sequential execution of the same program — every read observes all
// past-task writes and no future-task writes.
//
// We generate random straight-line programs over a small word array,
// split them into random task boundaries, run them on TLSTM with a
// single user-thread, and compare the final memory against a sequential
// interpreter.

// seqOp is one "v := mem[src]; mem[dst] = v + add" step.
type seqOp struct {
	Src uint8
	Dst uint8
	Add uint8
}

const seqWords = 24

func runSequential(ops []seqOp) [seqWords]uint64 {
	var m [seqWords]uint64
	for _, op := range ops {
		v := m[op.Src%seqWords]
		m[op.Dst%seqWords] = v + uint64(op.Add)
	}
	return m
}

func runSpeculative(t *testing.T, ops []seqOp, cuts []int, depth int) [seqWords]uint64 {
	t.Helper()
	rt := New(Config{SpecDepth: depth, LockTableBits: 12})
	thr := rt.NewThread()
	d := rt.Direct()
	base := d.Alloc(seqWords)

	// Split ops at cut points into task bodies.
	var fns []TaskFunc
	prev := 0
	bounds := append(append([]int{}, cuts...), len(ops))
	for _, b := range bounds {
		lo, hi := prev, b
		prev = b
		slice := ops[lo:hi]
		fns = append(fns, func(tk *Task) {
			for _, op := range slice {
				v := tk.Load(base + tm.Addr(op.Src%seqWords))
				tk.Store(base+tm.Addr(op.Dst%seqWords), v+uint64(op.Add))
			}
		})
	}
	if err := thr.Atomic(fns...); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	thr.Sync()

	var m [seqWords]uint64
	for i := 0; i < seqWords; i++ {
		m[i] = d.Load(base + tm.Addr(i))
	}
	return m
}

func TestSequentialEquivalenceFixedCases(t *testing.T) {
	cases := []struct {
		name string
		ops  []seqOp
		cuts []int
	}{
		{
			name: "war-chain",
			ops: []seqOp{
				{Src: 0, Dst: 1, Add: 1}, // t1: m1 = m0+1
				{Src: 1, Dst: 2, Add: 1}, // t2: m2 = m1+1 (reads t1's write)
				{Src: 2, Dst: 3, Add: 1}, // t3: m3 = m2+1 (reads t2's write)
			},
			cuts: []int{1, 2},
		},
		{
			name: "waw-same-loc",
			ops: []seqOp{
				{Src: 0, Dst: 5, Add: 1},
				{Src: 0, Dst: 5, Add: 2},
				{Src: 0, Dst: 5, Add: 3},
			},
			cuts: []int{1, 2},
		},
		{
			name: "read-then-overwritten",
			ops: []seqOp{
				{Src: 7, Dst: 8, Add: 9}, // t1 reads m7 (0), writes m8=9
				{Src: 0, Dst: 7, Add: 5}, // t2 writes m7=5 — no WAR with t1's read (t1 past)
				{Src: 7, Dst: 9, Add: 0}, // t2 reads m7 → 5
			},
			cuts: []int{1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runSequential(tc.ops)
			for depth := len(tc.cuts) + 1; depth <= 4; depth++ {
				got := runSpeculative(t, tc.ops, tc.cuts, depth)
				if got != want {
					t.Fatalf("depth %d: speculative %v != sequential %v", depth, got, want)
				}
			}
		})
	}
}

func TestSequentialEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 120; iter++ {
		nOps := 2 + rng.Intn(18)
		ops := make([]seqOp, nOps)
		for i := range ops {
			ops[i] = seqOp{
				Src: uint8(rng.Intn(seqWords)),
				Dst: uint8(rng.Intn(seqWords)),
				Add: uint8(1 + rng.Intn(9)),
			}
		}
		nTasks := 1 + rng.Intn(4)
		if nTasks > nOps {
			nTasks = nOps
		}
		cutSet := map[int]bool{}
		for len(cutSet) < nTasks-1 {
			cutSet[1+rng.Intn(nOps-1)] = true
		}
		var cuts []int
		for c := range cutSet {
			cuts = append(cuts, c)
		}
		// Sort cuts.
		for i := 0; i < len(cuts); i++ {
			for j := i + 1; j < len(cuts); j++ {
				if cuts[j] < cuts[i] {
					cuts[i], cuts[j] = cuts[j], cuts[i]
				}
			}
		}
		want := runSequential(ops)
		got := runSpeculative(t, ops, cuts, nTasks+rng.Intn(2))
		if got != want {
			t.Fatalf("iter %d (ops %v, cuts %v): speculative %v != sequential %v",
				iter, ops, cuts, got, want)
		}
	}
}

// Property-based variant driven by testing/quick.
func TestQuickSequentialEquivalence(t *testing.T) {
	f := func(rawOps []seqOp, rawCut uint8) bool {
		if len(rawOps) == 0 {
			return true
		}
		if len(rawOps) > 24 {
			rawOps = rawOps[:24]
		}
		cut := 1 + int(rawCut)%len(rawOps)
		var cuts []int
		if cut < len(rawOps) {
			cuts = []int{cut}
		}
		want := runSequential(rawOps)
		got := runSpeculative(t, rawOps, cuts, 2)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Several transactions submitted back-to-back on one thread must apply
// in program order even when the runtime speculates across them.
func TestSequentialEquivalenceAcrossTransactions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		var allOps [][]seqOp
		total := 0
		for txi := 0; txi < 5; txi++ {
			n := 1 + rng.Intn(6)
			ops := make([]seqOp, n)
			for i := range ops {
				ops[i] = seqOp{
					Src: uint8(rng.Intn(seqWords)),
					Dst: uint8(rng.Intn(seqWords)),
					Add: uint8(1 + rng.Intn(9)),
				}
			}
			allOps = append(allOps, ops)
			total += n
		}

		var flat []seqOp
		for _, ops := range allOps {
			flat = append(flat, ops...)
		}
		want := runSequential(flat)

		rt := New(Config{SpecDepth: 3, LockTableBits: 12})
		thr := rt.NewThread()
		d := rt.Direct()
		base := d.Alloc(seqWords)
		for _, ops := range allOps {
			ops := ops
			// Each transaction split into up to two tasks.
			mid := len(ops) / 2
			var fns []TaskFunc
			if mid > 0 {
				fns = append(fns, taskFor(ops[:mid], base))
				fns = append(fns, taskFor(ops[mid:], base))
			} else {
				fns = append(fns, taskFor(ops, base))
			}
			if _, err := thr.Submit(fns...); err != nil {
				t.Fatal(err)
			}
		}
		thr.Sync()

		var got [seqWords]uint64
		for i := 0; i < seqWords; i++ {
			got[i] = d.Load(base + tm.Addr(i))
		}
		if got != want {
			t.Fatalf("iter %d: pipelined %v != sequential %v", iter, got, want)
		}
	}
}

func taskFor(ops []seqOp, base tm.Addr) TaskFunc {
	return func(tk *Task) {
		for _, op := range ops {
			v := tk.Load(base + tm.Addr(op.Src%seqWords))
			tk.Store(base+tm.Addr(op.Dst%seqWords), v+uint64(op.Add))
		}
	}
}
