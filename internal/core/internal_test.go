package core

import (
	"sync/atomic"
	"testing"

	"tlstm/internal/locktable"
)

// White-box tests for the redo-chain and counter machinery.

func TestRemoveEntryHead(t *testing.T) {
	tbl := locktable.NewTable(8)
	p := tbl.For(1)
	e1 := &locktable.WEntry{Serial: 1, Pair: p}
	e2 := &locktable.WEntry{Serial: 2, Pair: p}
	p.W.Store(e1)
	e2.Prev.Store(e1)
	p.W.Store(e2)

	removeEntryLocked(e2)
	if p.W.Load() != e1 {
		t.Fatal("head removal should expose the previous entry")
	}
	removeEntryLocked(e1)
	if p.W.Load() != nil {
		t.Fatal("removing the last entry should unlock the pair")
	}
}

func TestRemoveEntryMidChainSplice(t *testing.T) {
	tbl := locktable.NewTable(8)
	p := tbl.For(2)
	e1 := &locktable.WEntry{Serial: 1, Pair: p}
	e2 := &locktable.WEntry{Serial: 2, Pair: p}
	e3 := &locktable.WEntry{Serial: 3, Pair: p}
	e2.Prev.Store(e1)
	e3.Prev.Store(e2)
	p.W.Store(e3)

	removeEntryLocked(e2)
	if p.W.Load() != e3 {
		t.Fatal("head must be untouched by mid-chain removal")
	}
	if e3.Prev.Load() != e1 {
		t.Fatal("successor must be spliced to the removed entry's Prev")
	}
	// Removing an already-unlinked entry is a no-op.
	removeEntryLocked(e2)
	if e3.Prev.Load() != e1 || p.W.Load() != e3 {
		t.Fatal("idempotence violated")
	}
}

func TestRemoveEntryGoneChain(t *testing.T) {
	tbl := locktable.NewTable(8)
	p := tbl.For(3)
	e := &locktable.WEntry{Serial: 1, Pair: p}
	// Chain already empty (commit dropped it).
	removeEntryLocked(e)
	if p.W.Load() != nil {
		t.Fatal("no-op removal must leave the pair unlocked")
	}
}

func TestLowerCounterNeverRaises(t *testing.T) {
	var c atomic.Int64
	c.Store(5)
	lowerCounter(&c, 10)
	if c.Load() != 5 {
		t.Fatal("lowerCounter must never raise")
	}
	lowerCounter(&c, 3)
	if c.Load() != 3 {
		t.Fatal("lowerCounter must lower")
	}
	lowerCounter(&c, 3)
	if c.Load() != 3 {
		t.Fatal("idempotent at equal value")
	}
}

func TestFirstPastOfSelection(t *testing.T) {
	rt := newRT(4)
	thr := rt.NewThread()
	tx := &txState{thr: thr, startSerial: 3, commitSerial: 3}
	task := &Task{thr: thr, tx: tx, waitBeforeRestart: -1}
	task.serial.Store(3)
	task.ownerRef.ThreadID = thr.id

	tbl := locktable.NewTable(8)
	p := tbl.For(7)

	mk := func(serial int64, owner *locktable.OwnerRef) *locktable.WEntry {
		e := &locktable.WEntry{Serial: serial, Pair: p, Owner: owner}
		return e
	}
	other := &locktable.OwnerRef{ThreadID: thr.id}

	// nil chain → nil.
	if task.firstPastOf(nil) != nil {
		t.Fatal("nil chain must yield nil")
	}
	// Other thread's chain → nil.
	foreign := &locktable.OwnerRef{ThreadID: thr.id + 1}
	if task.firstPastOf(mk(1, foreign)) != nil {
		t.Fatal("foreign chain must yield nil")
	}
	// Chain: 5 → (mine:3) → 2 → 1: the first past entry is serial 2.
	e1 := mk(1, other)
	e2 := mk(2, other)
	mine := mk(3, &task.ownerRef)
	e5 := mk(5, other)
	e2.Prev.Store(e1)
	mine.Prev.Store(e2)
	e5.Prev.Store(mine)
	got := task.firstPastOf(e5)
	if got != e2 {
		t.Fatalf("firstPastOf selected serial %d, want 2", got.Serial)
	}
	// Only own and future entries → nil.
	mine2 := mk(3, &task.ownerRef)
	e6 := mk(6, other)
	e6.Prev.Store(mine2)
	if task.firstPastOf(e6) != nil {
		t.Fatal("own/future-only chain must yield nil")
	}
}

func TestWEntryOwnershipByPointer(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	// After a transaction commits, the chain must be fully unlinked so
	// the next transaction starts fresh.
	if err := thr.Atomic(func(tk *Task) { tk.Store(a, 1) }); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	p := rt.locks.For(a)
	if p.W.Load() != nil {
		t.Fatal("write lock must be released after commit")
	}
	if p.R.Load() == 0 || p.R.Load() == locktable.Locked {
		t.Fatalf("r-lock version not published: %d", p.R.Load())
	}
}

func TestCommitTSAdvancesOncePerWriteTx(t *testing.T) {
	rt := newRT(3)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)

	before := rt.CommitTS()
	// Read-only multi-task transaction: no advance.
	if err := thr.Atomic(
		func(tk *Task) { tk.Load(a) },
		func(tk *Task) { tk.Load(a) },
	); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if rt.CommitTS() != before {
		t.Fatal("read-only transaction advanced commit-ts")
	}
	// Write transaction with three writer tasks: exactly one tick.
	if err := thr.Atomic(
		func(tk *Task) { tk.Store(a, 1) },
		func(tk *Task) { tk.Store(a, 2) },
		func(tk *Task) { tk.Store(a, 3) },
	); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if rt.CommitTS() != before+1 {
		t.Fatalf("commit-ts advanced by %d, want 1", rt.CommitTS()-before)
	}
}

// The owners window must never hold two tasks in one slot.
func TestSlotExclusivity(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	for i := 0; i < 30; i++ {
		h, err := thr.Submit(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
		if err != nil {
			t.Fatal(err)
		}
		_ = h
	}
	thr.Sync()
	for i := range thr.slots {
		if thr.slots[i].Load() != nil {
			t.Fatalf("slot %d still occupied after Sync", i)
		}
	}
	if d.Load(a) != 30 {
		t.Fatalf("counter = %d, want 30", d.Load(a))
	}
}

// Config defaults must fill in sane values.
func TestConfigDefaults(t *testing.T) {
	rt := New(Config{})
	if rt.SpecDepth() != 4 {
		t.Fatalf("default SpecDepth = %d, want 4", rt.SpecDepth())
	}
	if rt.locks.Len() != 1<<20 {
		t.Fatalf("default lock table = %d pairs", rt.locks.Len())
	}
}
