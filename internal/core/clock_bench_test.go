package core

import (
	"fmt"
	"sync"
	"testing"

	"tlstm/internal/clock"
	"tlstm/internal/tm"
)

// BenchmarkThreadCommitSmallTxClock is BenchmarkThreadCommitSmallTx
// under contention: exactly 4 concurrent user-threads (goroutines are
// spawned directly, not via RunParallel, whose worker count scales with
// GOMAXPROCS), each running single-task writer transactions on its own
// address, per commit-clock strategy. The threads share no data — the
// only shared state on the path is the commit clock itself — so the
// delta between strategies is the commit-path clock cost (GV4's
// fetch-and-add storm vs the deferred strategy's plain load vs the
// sharded clock's local CAS + min-scan).
func BenchmarkThreadCommitSmallTxClock(b *testing.B) {
	const threads = 4
	for _, kind := range clock.Kinds() {
		b.Run(fmt.Sprintf("%s/threads=%d", kind, threads), func(b *testing.B) {
			rt := New(Config{SpecDepth: 1, Clock: clock.New(kind)})
			defer rt.Close()
			d := rt.Direct()
			addrs := make([]tm.Addr, threads)
			thrs := make([]*Thread, threads)
			for i := range addrs {
				addrs[i] = d.Alloc(1)
				thrs[i] = rt.NewThread()
			}
			iters := b.N / threads
			var wg sync.WaitGroup
			b.ResetTimer()
			for g := 0; g < threads; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					thr, a := thrs[g], addrs[g]
					body := func(t *Task) { t.Store(a, t.Load(a)+1) }
					for i := 0; i < iters; i++ {
						_ = thr.Atomic(body)
					}
					thr.Sync()
				}(g)
			}
			wg.Wait()
		})
	}
}
