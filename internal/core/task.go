package core

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mode"
	"tlstm/internal/tm"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
	"tlstm/internal/xrand"
)

// noVersion marks read-log entries whose value came from a speculative
// (intra-thread) source rather than committed state: they carry no
// committed version to validate inter-thread; their validity is tracked
// purely by redo-chain identity (validateTask).
const noVersion = txlog.NoVersion

// Task is one speculative task (paper §2): the unit of speculative
// execution, implementing tm.Tx for its body. What used to be a SwissTM
// transaction is a task in TLSTM (§3.2).
//
// Task descriptors are recycled: descriptor i of a thread's ring runs
// every serial congruent to i+1 modulo SPECDEPTH, re-initialized in
// place by Submit once the previous incarnation has retired. Serials
// are never reused, which is what keeps identity checks on recycled
// descriptors sound: "this entry is mine" is (owner pointer, serial),
// never the owner pointer alone.
type Task struct {
	thr *Thread
	tx  *txState
	fn  TaskFunc

	// serial is the task's program-order serial for the current
	// incarnation. It is atomic because the abort machinery reads it
	// from other workers while the submitting goroutine may be
	// re-arming the descriptor; everyone else reads it after the arm
	// that published it.
	serial    atomic.Int64
	tryCommit bool

	// ownerRef is the stable cross-thread header installed in this
	// task's write-log entries; see locktable.OwnerRef. Its
	// per-transaction slots are re-bound by Submit at every dispatch.
	ownerRef locktable.OwnerRef

	// abortInternal is the aborted-internally signal (paper Alg. 2
	// line 47): set by a past task of the same thread that needs a
	// write lock we hold, or by the abort of an earlier transaction
	// whose speculative state we may have observed.
	abortInternal atomic.Bool

	// readHorizon is the thread's retirement epoch observed when the
	// current attempt began, or MaxInt64 while the task holds no live
	// read log (between attempts, and once the attempt is past its last
	// validate-task). It is the task's side of the entry-reclamation
	// invariant: an entry whose retirement epoch exceeds a live task's
	// readHorizon may still be held by that task as a FirstPast marker,
	// so it must not be recycled yet. The quiescence gate makes such a
	// recycle impossible; the ReclaimAudit checker reads this field from
	// other workers to prove it, hence the atomic.
	readHorizon atomic.Int64

	// ---- per-incarnation state (reset by Submit and begin) ----

	validTS    uint64
	lastWriter int64

	readLog  txlog.ReadLog
	writeLog txlog.WriteLog

	allocs []tm.Addr
	frees  []tm.Addr

	workAcc uint64 // work units across all attempts (virtual-time model)

	// extends counts successful snapshot extensions and clkProbe
	// accumulates clock CAS retries (both across all attempts of the
	// current incarnation, like workAcc); finishCommit folds them into
	// the thread's stats shard and clears them under the same
	// serialization argument that protects workAcc. The probe's shard
	// pinning (sharded clock strategy) survives folding, so a recycled
	// descriptor keeps its shard affinity.
	extends  uint64
	clkProbe clock.Probe

	// mvActive marks an attempt on the multi-version wait-free read
	// path (declared read-only transaction, multi-versioning on, no
	// fallback latched yet); begin recomputes it per attempt. mvReads
	// and mvMisses accumulate across attempts of the incarnation and
	// fold into the thread's shard in finishCommit, like extends.
	mvActive bool
	mvReads  uint64
	mvMisses uint64

	// sketch histograms this incarnation's conflicts by lock-table
	// shard and crossShard counts those outside the thread's home shard
	// at conflict time; both accumulate across attempts and fold into
	// the thread's shard in finishCommit, like mvReads.
	sketch     txstats.Sketch
	crossShard uint64

	// cmSelf is the task's contention-management identity (its
	// situational fields are refreshed in place before every Resolve,
	// so the conflict path never allocates); cmProbe carries the
	// decision counters and backoff/karma state, folded into the
	// thread's stats shard by finishCommit like clkProbe.
	cmSelf  cm.Self
	cmProbe cm.Probe

	// jitterRng is the xorshift state behind the randomized relaunch
	// jitter of whole-transaction aborts (see preRestartWait); lazily
	// seeded, private to the descriptor's worker.
	jitterRng uint64

	// waitBeforeRestart, when ≥ 0, is a completed-task serial the next
	// attempt must wait for before re-executing. Set on intra-thread
	// WAW rollbacks: restarting immediately would let this task re-grab
	// the contended write lock before the past writer that evicted us,
	// livelocking the pair. Waiting until the conflicting past tasks
	// complete makes the conflicting suffix run serially — exactly the
	// behaviour the paper reports for write-heavy workloads ("these
	// transactions will execute almost serially", §4).
	waitBeforeRestart int64

	// backoff is the adaptive yield count applied before a restart that
	// followed an inter-thread contention-manager defeat.
	backoff int

	// tr is this descriptor's flight recorder (txtrace.Nop unless the
	// runtime was configured with a Trace recorder); traced caches
	// tr.Enabled() so the hot paths pay one predictable branch. The
	// descriptor is always executed by the same scheduler slot's worker
	// (or the submitting goroutine under Inline), so the ring stays
	// single-owner across incarnations.
	tr     txtrace.Tracer
	traced bool

	// attemptStart stamps the start of the current attempt; restartLat
	// accumulates the latency of this descriptor's rolled-back attempts
	// until finishCommit folds it into the thread shard (under the same
	// serialization that protects workAcc).
	attemptStart time.Time
	restartLat   txstats.Hist

	// Retry/Wait cond-var state: Retry subscribes the waiter on the
	// attempt's read-set fingerprint and sets parkPending; the next
	// attempt parks on the doorbell before re-executing (after the
	// rollback released the attempt's locks). retryWakes accumulates
	// doorbell wakes across the incarnation and folds in finishCommit
	// like the probes.
	waiter      mode.Waiter
	parkPending bool
	parkFP      mode.Fingerprint
	retryWakes  uint64
}

// Read entries are txlog.ReadEntry at lock-pair granularity (SwissTM's
// conflict granularity).
//
// Version is the committed version observed (noVersion for reads served
// from a redo-log chain). FirstPast is the newest redo-chain entry from
// a past task of this thread at read time (nil if none): validateTask
// recomputes it and requires pointer identity, which subsumes the
// paper's serial-number checks of both the task-read-log (Alg. 1 lines
// 18–25) and the read-log (lines 26–31) and is additionally robust to a
// writer aborting and re-executing with the same serial. That identity
// argument is also why entry reuse here is quiescence-gated: a reused
// entry re-installed on the same pair while a stale reader still holds
// it as FirstPast would defeat the pointer-identity check (ABA).
// Entries therefore retire through the descriptor's free ring
// (locktable.FreeRing) stamped with a retirement serial, and are
// recycled only once the thread's committed-transaction frontier has
// passed it — by which point every task whose attempt could span the
// retirement has exited, so no stale FirstPast pointer survives. See
// reclaim_test.go for the machinery that proves this.

// restartSignal unwinds a task attempt back to its run loop. It never
// escapes the package.
type restartSignal struct{}

// yieldQuantum is the forced-interleaving grain (see the identical
// constant in internal/stm): tasks yield every yieldQuantum work units
// so that cross-thread overlap — and therefore contention — exists on a
// single-CPU simulator; inter-thread lock waits charge one quantum per
// spin iteration.
const yieldQuantum = 64

// taskStartCost models per-task setup (descriptor, logs, counters) per
// attempt; it matches the baseline's per-transaction constant — each
// TLSTM task carries a full SwissTM-transaction skeleton (§3.2), which
// is what keeps Figure 1a's speedups below the task count.
const taskStartCost = 24

// validationStride discounts validation steps: one work unit per this
// many log entries checked (a version/pointer compare is much cheaper
// than an instrumented load).
const validationStride = 8

// txSelfAbortDefeats is the deadlock escape hatch for policies that
// only ever abort the requester: after this many contention-manager
// defeats, losing once more aborts the whole user-transaction instead
// of just the task, releasing every lock the transaction holds (a task
// restart alone cannot release locks its transaction's other tasks
// took, so a cross-thread lock cycle under a pure self-abort policy
// would otherwise never break).
const txSelfAbortDefeats = 8

// tick charges work units and enforces the interleaving grain.
func (t *Task) tick(units uint64) {
	t.workAcc += units
	if t.workAcc%yieldQuantum < units {
		runtime.Gosched()
	}
}

func (t *Task) slot() *atomic.Pointer[Task] {
	return &t.thr.slots[t.serial.Load()%int64(t.thr.depth)]
}

// run executes one task incarnation on its scheduler slot's worker (or
// on the submitting goroutine under the Inline policy): join the
// transaction, then execute attempts until the enclosing
// user-transaction commits, then retire the descriptor. The final
// tx.live decrement is this incarnation's last access to the
// transaction descriptor — Submit recycles it only at zero.
func (t *Task) run() {
	tx := t.tx
	// Retire via defer so a genuine-bug panic propagating out of
	// attempt still leaves the descriptor machinery consistent: on a
	// pooled worker the panic then crashes the process (as the old
	// goroutine-per-task spawn did), but under the Inline policy it
	// surfaces in the submitting goroutine, where application code may
	// recover — the runtime must wedge loudly (that transaction never
	// commits) rather than corrupt its rings.
	defer func() {
		t.slot().Store(nil)
		tx.live.Add(-1)
	}()
	if t.traced {
		t.tr.Record(txtrace.KindTxBegin, t.thr.rt.clk.Now(), uint64(t.serial.Load()), 0)
	}
	t.joinTx()
	for t.attempt() {
	}
}

// joinTx registers the task with its transaction's abort rendezvous
// before it touches any shared state; if an abort round is in progress
// the task waits it out (it has nothing to clean yet).
func (t *Task) joinTx() {
	tx := t.tx
	tx.mu.Lock()
	tx.participants++
	tx.mu.Unlock()
	if tx.abortTx.Load() {
		t.rendezvous()
	}
}

// attempt runs the body once; it reports whether the task must restart.
func (t *Task) attempt() (restart bool) {
	t.attemptStart = time.Now()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, is := r.(restartSignal); is {
			t.undoAttempt()
			t.restartLat.Observe(int(time.Since(t.attemptStart)))
			restart = true
			return
		}
		// A panic out of the body: if our speculative reads were
		// inconsistent, this is the sandboxing case of §3.2
		// ("Inconsistent reads") — restart. Otherwise it is a genuine
		// bug; release our state and propagate.
		if !t.consistent() {
			t.undoAttempt()
			t.tx.taskRestarts.Add(1)
			t.tx.restartKind[restartSandbox].Add(1)
			if t.traced {
				t.tr.Record(txtrace.KindAbort, t.validTS, uint64(t.serial.Load()), txtrace.AbortSpec)
			}
			t.restartLat.Observe(int(time.Since(t.attemptStart)))
			restart = true
			return
		}
		t.undoAttempt()
		panic(r)
	}()

	if t.parkPending {
		t.parkRetry()
	}
	t.preRestartWait()
	t.begin()
	t.fn(t)
	t.commitStep()
	t.backoff = 0
	return false
}

// preRestartWait delays a restart while the condition that rolled us
// back clears (see waitBeforeRestart and backoff). The wait is charged
// one quantum per spin round: it is real serialization — the past
// writer we conflicted with is executing during it — and it is exactly
// what makes the paper's write traversals "execute almost serially".
func (t *Task) preRestartWait() {
	if w := t.waitBeforeRestart; w >= 0 {
		for t.thr.completedTask.Load() < w {
			if t.tx.abortTx.Load() {
				if t.traced {
					t.tr.Record(txtrace.KindAbort, t.validTS, uint64(t.serial.Load()), txtrace.AbortSignal)
				}
				t.rendezvous()
				panic(restartSignal{})
			}
			t.workAcc += yieldQuantum
			runtime.Gosched()
		}
		t.waitBeforeRestart = -1
	}
	for i := 0; i < t.backoff; i++ {
		runtime.Gosched()
	}
	// Whole-transaction aborts back off per policy: repeated
	// inter-thread defeats or failed commit validations mean the
	// conflict window is being re-entered too eagerly. Routing this
	// through OnAbort matters beyond style — policies whose conflicts
	// can kill both sides of a lock cycle (Karma's push-through rule)
	// depend on randomized spacing here, or the mutually-killed
	// transactions relaunch in lockstep and livelock.
	if n := t.tx.txAborts.Load(); n > 0 {
		t.cmSelf.Aborts = n
		y := cm.AbortBackoff(t.thr.rt.cm, &t.cmSelf)
		// Randomized relaunch jitter on top of whatever the policy
		// returned. The txSelfAbortDefeats escalation can kill BOTH
		// sides of a cross-thread lock cycle, and under a policy with
		// deterministic backoff (suicide) the two victims relaunch in
		// lockstep and can re-kill each other indefinitely; the policies
		// with randomized spacing never needed this, and a few extra
		// yields on a whole-transaction abort are noise to them.
		y += int(xrand.Next(&t.jitterRng) & 63)
		for i := 0; i < y; i++ {
			runtime.Gosched()
		}
	}
}

// begin is the paper's start() (Alg. 1 lines 1–4) for one incarnation.
func (t *Task) begin() {
	// Open the read-log liveness window before anything is read: any
	// entry retired from here on carries a retirement epoch above this
	// snapshot, so the reclamation audit knows this attempt may hold it.
	t.readHorizon.Store(t.thr.retireEpoch.Load())
	t.abortInternal.Store(false)
	t.lastWriter = t.thr.completedWriter.Load()
	t.validTS = t.thr.rt.clk.Now()
	t.mvActive = false
	if tx := t.tx; tx.readOnly && t.thr.rt.mv != nil && !tx.mvOff.Load() {
		// Wait-free read-only mode: every task of the transaction reads
		// at one frozen snapshot (the first beginner's clock sample), so
		// the commit-time read-only fast path needs no validation even
		// though nothing was logged. The snapshot must serialize after
		// the thread's own program-order predecessors: a pipelined task
		// can begin before an earlier transaction of this thread
		// commits, and a snapshot frozen then would read the pre-state
		// and commit it unvalidated. Park on the committed frontier
		// first — a wait on our own pipeline only; the path stays
		// wait-free with respect to other threads' writers.
		for t.thr.txDone.Seq() < tx.startSerial-1 {
			t.checkSignals()
			runtime.Gosched()
		}
		t.validTS = tx.sharedSnapshot(t.thr.rt.clk.Now())
		t.mvActive = true
	}
	t.workAcc += taskStartCost
	t.readLog.Reset()
	t.writeLog.Reset()
	t.allocs = t.allocs[:0]
	t.frees = t.frees[:0]
	if t.traced {
		aux := uint32(0)
		if t.mvActive {
			aux = 1
		}
		t.tr.Record(txtrace.KindAttemptStart, t.validTS, uint64(t.serial.Load()), aux)
	}
}

// undoAttempt releases everything a failed attempt left behind. Chain
// removal is idempotent, so it is safe whether or not a transaction
// abort already unwound our entries.
func (t *Task) undoAttempt() {
	t.unwindWrites()
	for _, a := range t.allocs {
		t.thr.rt.alloc.Free(a)
	}
	t.allocs = t.allocs[:0]
	// The attempt's read log is dead: it will never be validated again
	// (consistent() runs before undoAttempt in the sandbox path, and a
	// restart resets the log before reading). Close the liveness window
	// so the reclamation audit stops charging this attempt.
	t.readHorizon.Store(horizonDead)
}

// horizonDead is the readHorizon value of a task holding no live read
// log: above every retirement epoch, so the reclamation audit never
// charges it.
const horizonDead = int64(math.MaxInt64)

// consistent reports whether the attempt's reads are still valid (used
// to distinguish speculation-induced panics from real bugs).
func (t *Task) consistent() bool {
	if !t.validateTask() {
		return false
	}
	for _, re := range t.readLog.Entries() {
		if re.Version == noVersion {
			continue
		}
		// Same rule as extendTo: a moved version on a pair we
		// write-lock still means the read predates a conflicting
		// commit, so the attempt is a zombie — classify it as
		// inconsistent and restart rather than surface its panic.
		cur := re.Pair.R.Load()
		if cur != re.Version {
			return false
		}
	}
	return true
}

// restartKind classifies single-task rollbacks for Stats.
type restartKind int

const (
	restartWAR restartKind = iota
	restartWAW
	restartExtend
	restartCM
	restartSandbox
	restartRetry
	numRestartKinds
)

// restartAbortCode maps single-task restart kinds onto the txtrace
// abort-reason codes (WAR and sandbox restarts are both
// speculation-specific; the fine-grained breakdown lives in Stats).
var restartAbortCode = [numRestartKinds]uint32{
	restartWAR:     txtrace.AbortSpec,
	restartWAW:     txtrace.AbortConflict,
	restartExtend:  txtrace.AbortExtend,
	restartCM:      txtrace.AbortCM,
	restartSandbox: txtrace.AbortSpec,
	restartRetry:   txtrace.AbortRetry,
}

// noteConflict attributes one conflict to the lock-table shard of the
// contended address: observed in the task's sketch (the affinity
// placement's input) and counted as cross-shard when it lies outside
// the thread's current home. Called only on cold abort/defeat paths.
func (t *Task) noteConflict(a tm.Addr) {
	shard := t.thr.rt.locks.ShardOf(a)
	t.sketch.Observe(shard)
	if int32(shard) != t.thr.homeShard.Load() {
		t.crossShard++
	}
}

// noteConflictPair is noteConflict for sites that hold only the lock
// pair (commit-time validation walks log entries, not addresses).
func (t *Task) noteConflictPair(p *locktable.Pair) {
	shard := t.thr.rt.locks.ShardOfPair(p)
	t.sketch.Observe(shard)
	if int32(shard) != t.thr.homeShard.Load() {
		t.crossShard++
	}
}

// rollbackTask aborts just this task and restarts it, recording why.
func (t *Task) rollbackTask(kind restartKind) {
	t.tx.taskRestarts.Add(1)
	t.tx.restartKind[kind].Add(1)
	if t.traced {
		t.tr.Record(txtrace.KindAbort, t.validTS, uint64(t.serial.Load()), restartAbortCode[kind])
	}
	panic(restartSignal{})
}

// checkSignals honours both abort signals at a safe point (every loop in
// Alg. 1–3 polls them).
func (t *Task) checkSignals() {
	if t.abortInternal.Load() {
		// A past task evicted us from a write lock (or an earlier
		// transaction we may have observed aborted): let every past
		// task complete before re-running, or we would race it for the
		// same lock again.
		t.waitBeforeRestart = t.serial.Load() - 1
		t.rollbackTask(restartWAW)
	}
	if t.tx.abortTx.Load() {
		if t.traced {
			t.tr.Record(txtrace.KindAbort, t.validTS, uint64(t.serial.Load()), txtrace.AbortSignal)
		}
		t.rendezvous()
		panic(restartSignal{})
	}
}

// firstPastOf walks a chain for the newest entry written by a *past*
// task of this thread (serial strictly below ours; our own and future
// entries are skipped). It returns nil when the pair is unlocked or held
// by another thread.
func (t *Task) firstPastOf(head *locktable.WEntry) *locktable.WEntry {
	if head == nil || head.Owner.ThreadID != t.thr.id {
		return nil
	}
	ser := t.serial.Load()
	for e := head; e != nil; e = e.Prev.Load() {
		if e.Serial < ser {
			return e
		}
	}
	return nil
}

// Load implements tm.Tx: the read-word procedure of Alg. 1.
func (t *Task) Load(a tm.Addr) uint64 {
	if t.mvActive {
		return t.loadMV(a)
	}
	t.tick(1)
	p := t.thr.rt.locks.For(a)
	ser := t.serial.Load()
	for {
		t.checkSignals()
		head := p.W.Load()
		if head == nil || head.Owner.ThreadID != t.thr.id {
			// Unlocked or locked by another user-thread: read the
			// committed value from memory (redo logging keeps it
			// intact until the writer commits) — Alg. 1 line 16.
			return t.loadCommitted(p, a)
		}

		// Locked by my user-thread: locate my own buffered value or the
		// most recent speculative value from my past (Alg. 1 lines 8–15).
		e := head
		for e != nil && e.Serial >= ser {
			if e.Serial == ser && e.Owner == &t.ownerRef {
				if v, hit := e.Lookup(a); hit {
					return v // read-own-write, no validation needed
				}
			}
			e = e.Prev.Load()
		}
		firstPast := e // newest past entry, nil if none

		if firstPast == nil {
			// Only our own / future entries, none covering a: the
			// committed value still stands.
			return t.loadCommittedRecording(p, a, nil)
		}

		// Wait until the past writer completes; reading from running
		// tasks would force validating intermediate values (§3.3).
		t.waitCompleted(firstPast.Serial)
		// Re-resolve: a running past task may have pushed a newer entry
		// (or an abort may have unwound the chain) while we waited.
		if t.firstPastOf(p.W.Load()) != firstPast {
			continue
		}

		// WAR validation gate (Alg. 1 line 13).
		t.maybeValidate()

		// The chain below firstPast holds strictly older, completed
		// entries; the newest one covering a supplies the value. If none
		// covers a, the committed value stands (and its version must be
		// recorded for inter-thread validation).
		for e := firstPast; e != nil; e = e.Prev.Load() {
			if v, hit := e.Lookup(a); hit {
				t.readLog.Append(p, noVersion, firstPast)
				t.workAcc++
				if t.traced {
					// Aux 2: speculative read served from a past task's
					// redo chain (no committed version to carry).
					t.tr.Record(txtrace.KindRead, 0, uint64(a), 2)
				}
				return v
			}
		}
		return t.loadCommittedRecording(p, a, firstPast)
	}
}

// waitCompleted blocks until the thread's completed-task counter reaches
// serial, honouring abort signals (which panic out via checkSignals).
// The wait is charged one quantum per round: reading a running past
// writer's location serializes this task behind it (paper §3.3,
// "Reading"), and that serialization must appear in virtual time.
func (t *Task) waitCompleted(serial int64) {
	for t.thr.completedTask.Load() < serial {
		t.checkSignals()
		t.workAcc += yieldQuantum
		runtime.Gosched()
	}
}

// maybeValidate runs validate-task when a writer task completed since we
// last validated (the check the paper performs at read, write and commit
// time).
func (t *Task) maybeValidate() {
	cw := t.thr.completedWriter.Load()
	if cw == t.lastWriter {
		return
	}
	if !t.validateTask() {
		t.rollbackTask(restartWAR)
	}
	t.lastWriter = cw
}

// loadCommittedRecording reads the committed value of a and records the
// read with the given firstPast chain identity.
func (t *Task) loadCommittedRecording(p *locktable.Pair, a tm.Addr, firstPast *locktable.WEntry) uint64 {
	for {
		t.checkSignals()
		v1 := p.R.Load()
		if v1 == locktable.Locked {
			runtime.Gosched()
			continue
		}
		val := t.thr.rt.store.LoadWord(a)
		if p.R.Load() != v1 {
			continue
		}
		if v1 > t.validTS && !t.extendTo(v1) {
			t.noteConflict(a)
			t.rollbackTask(restartExtend)
		}
		if v1 > t.validTS {
			continue
		}
		t.readLog.Append(p, v1, firstPast)
		if t.traced {
			t.tr.Record(txtrace.KindRead, v1, uint64(a), 0)
		}
		return val
	}
}

// loadCommitted is the plain SwissTM read path, with WAR bookkeeping for
// the case where our thread later write-locks the pair.
func (t *Task) loadCommitted(p *locktable.Pair, a tm.Addr) uint64 {
	return t.loadCommittedRecording(p, a, nil)
}

// loadMV is the wait-free read path of a declared read-only
// transaction with multi-versioning on: resolve a against the
// transaction's frozen snapshot without appending to the read log. The
// word's current value serves when its pair's version is at most the
// snapshot; otherwise the version store supplies the displaced value
// whose validity interval covers the snapshot. Neither case needs
// validation or extension — the snapshot never moves — so the only
// exits besides a value are the whole-transaction fallback
// (mvFallback) and the abort signals every read path polls.
func (t *Task) loadMV(a tm.Addr) uint64 {
	t.tick(1)
	p := t.thr.rt.locks.For(a)
	for {
		t.checkSignals()
		if t.firstPastOf(p.W.Load()) != nil {
			// A past task of this thread holds speculative state on the
			// pair: in program order its value precedes us but in commit
			// order it lies after the frozen snapshot, so the snapshot
			// cannot serve this read. Re-execute validated, where the
			// redo chains are read through.
			t.mvFallback()
		}
		v1 := p.R.Load()
		if v1 != locktable.Locked && v1 <= t.validTS {
			val := t.thr.rt.store.LoadWord(a)
			if p.R.Load() == v1 {
				t.mvReads++
				if t.traced {
					t.tr.Record(txtrace.KindRead, v1, uint64(a), 1)
				}
				return val
			}
			continue
		}
		if val, from, ok := t.thr.rt.mv.ReadAt(a, t.validTS); ok {
			t.mvReads++
			if t.traced {
				// Clock carries the served version's birth stamp, not the
				// snapshot: the opacity checker needs the observed version.
				t.tr.Record(txtrace.KindRead, from, uint64(a), 1)
			}
			return val
		}
		if v1 == locktable.Locked {
			// A commit holds the r-lock for a bounded publish window; it
			// may hand the version store exactly the displaced value the
			// snapshot needs. Waiting on it costs parallel time.
			t.workAcc += yieldQuantum
			runtime.Gosched()
			continue
		}
		// Committed past the snapshot and the ring holds no version old
		// enough: overrun by more than MVDepth later commits.
		t.mvFallback()
	}
}

// mvFallback abandons the wait-free path: latch the fallback for the
// whole user-transaction and abort it, so the re-execution runs every
// task with ordinary validated reads. The abort must be
// transaction-wide — the attempt's multi-version reads were never
// logged, so no per-task restart could revalidate them against a moved
// snapshot.
func (t *Task) mvFallback() {
	t.mvMisses++
	t.tx.mvOff.Store(true)
	if t.traced {
		t.tr.Record(txtrace.KindAbort, t.validTS, uint64(t.serial.Load()), txtrace.AbortSpec)
	}
	t.abortOwnTx()
}

// extendTo revalidates the read log and advances valid-ts (SwissTM's
// lazy snapshot extension), after asking the clock to cover the
// witnessed stamp: pre-publishing strategies (deferred, sharded) only
// advance on Observe, and without it the stamp that triggered the
// extension would stay forever ahead of valid-ts and the read would
// livelock.
func (t *Task) extendTo(witness uint64) bool {
	ts := t.thr.rt.clk.Observe(witness, &t.clkProbe)
	for i, re := range t.readLog.Entries() {
		if re.Version == noVersion {
			continue
		}
		if i%validationStride == 0 {
			t.workAcc++
		}
		cur := re.Pair.R.Load()
		if cur == re.Version {
			continue
		}
		// Pairs this task write-locks are deliberately NOT exempt:
		// holding the chain freezes the r-lock against other threads,
		// but the version may have moved between our read and our
		// acquisition (a foreign commit while the pair was free), and
		// under pipelining an earlier transaction of our own thread
		// may publish a pair our entry sits on. Either way the read's
		// snapshot no longer covers the extension target — the
		// exemption let such zombies run on a mixed read set until
		// commit-time validation, which the trace-based opacity
		// checker flagged under high contention.
		if t.traced {
			t.tr.Record(txtrace.KindExtend, ts, witness, 0)
		}
		return false
	}
	if ts > t.validTS {
		t.extends++
		if t.traced {
			t.tr.Record(txtrace.KindExtend, ts, witness, 1)
		}
	}
	t.validTS = ts
	return true
}

// validateTask is Alg. 1 lines 17–31 at pair granularity: for every
// recorded read, the newest past-task entry of the pair's redo chain
// must be exactly the one observed at read time (nil included). Any new
// past writer, any unwound writer, and any writer whose transaction
// committed (chain unlocked) invalidates the read.
func (t *Task) validateTask() bool {
	for i, re := range t.readLog.Entries() {
		if i%validationStride == 0 {
			t.workAcc++
		}
		if t.firstPastOf(re.Pair.W.Load()) != re.FirstPast {
			return false
		}
	}
	return true
}

// Store implements tm.Tx: the write-word procedure of Alg. 2.
func (t *Task) Store(a tm.Addr, v uint64) {
	if t.mvActive {
		// A write under a read-only declaration: the declaration was
		// wrong (or conservative). Re-execute the transaction validated;
		// correctness never depended on the caller's hint.
		t.mvFallback()
	}
	t.tick(2)
	p := t.thr.rt.locks.For(a)
	ser := t.serial.Load()
	waited := 0
	for {
		t.checkSignals()
		e := p.W.Load()
		if e == nil {
			// Unlocked: install an entry, recycled from this
			// descriptor's free ring when one has quiesced.
			// validateTask depends on entry pointer identity (see the
			// read-entry comment above), so reuse is gated on the
			// thread's committed frontier: an entry is served only
			// once every task that could hold its pointer has exited
			// (txlog.WriteLog.NewEntryAt).
			ne := t.newEntry(p, a, v, ser)
			if p.W.CompareAndSwap(nil, ne) {
				t.writeLog.Append(ne)
				if t.traced {
					t.tr.Record(txtrace.KindWrite, t.validTS, uint64(a), 0)
				}
				break
			}
			t.writeLog.Release(ne) // never published; immediately reusable
			continue
		}
		if e.Owner == &t.ownerRef && e.Serial == ser {
			// Already ours: update the buffered value (Alg. 2 line 37).
			e.Update(a, v)
			return
		}
		if e.Owner.ThreadID != t.thr.id {
			// Write-locked by another user-thread: inter-thread
			// contention management (Alg. 2 lines 41–43, 54–64 under the
			// default task-aware policy). If we lose, this task rolls
			// back (Alg. 2 line 42); if the owner loses, its whole
			// user-transaction is signalled to abort and we wait for
			// the lock to be released.
			t.cmSelf.Point = cm.PointEncounter
			t.cmSelf.Writes = t.writeLog.Len()
			t.cmSelf.Defeats = int(t.tx.cmDefeats.Load())
			t.cmSelf.Completed = t.thr.completedTask.Load()
			t.cmSelf.Waited = waited
			dec := cm.Resolve(t.thr.rt.cm, &t.cmSelf, e.Owner)
			if t.traced {
				t.tr.Record(txtrace.KindCMDecision, t.validTS, uint64(a),
					txtrace.CMAux(int(dec), int(cm.PointEncounter)))
			}
			switch dec {
			case cm.AbortSelf:
				t.noteConflict(a)
				defeats := t.tx.cmDefeats.Add(1)
				t.cmSelf.Aborts = uint64(defeats)
				t.backoff = cm.AbortBackoff(t.thr.rt.cm, &t.cmSelf)
				// A task-level restart does not release the locks held
				// by this transaction's OTHER tasks, so a policy that
				// never aborts owners (suicide, backoff) would leave a
				// cross-thread lock cycle standing forever — the §3.2
				// inter-thread deadlock. Every txSelfAbortDefeats-th
				// defeat therefore escalates to a whole-transaction
				// self-abort, releasing everything the transaction
				// holds; policies that escalate to AbortOwner (greedy,
				// task-aware, karma) break cycles long before this
				// bound is reached.
				if defeats%txSelfAbortDefeats == 0 {
					if t.traced {
						t.tr.Record(txtrace.KindAbort, t.validTS, uint64(ser), txtrace.AbortCM)
					}
					t.abortOwnTx()
				}
				t.rollbackTask(restartCM)
			case cm.AbortOwner:
				e.Owner.AbortTx.Load().Store(true)
			}
			// A serialized-fallback entrant is draining: riding the
			// conflict out here can deadlock — the entrant waits for
			// in-flight speculation to finish while this wait loop may
			// (transitively) depend on a lock the gated transaction will
			// only take once inside. Abort the whole transaction, not
			// just the task: a task restart cannot release locks held by
			// this transaction's sibling tasks, and those are exactly
			// what the entrant can be stuck behind. Transactions already
			// under the gate are exempt.
			if gatePendingBreak && !t.tx.inSerial && t.thr.rt.gate.Pending() {
				t.noteConflict(a)
				if t.traced {
					t.tr.Record(txtrace.KindAbort, t.validTS, uint64(ser), txtrace.AbortCM)
				}
				t.abortOwnTx()
			}
			// AbortOwner and Wait both ride the conflict out for a
			// round; waiting on another thread's lock costs parallel
			// time (about one quantum of owner progress per round).
			waited++
			t.workAcc += yieldQuantum
			runtime.Gosched()
			continue
		}
		if e.Serial > ser {
			// A future task of my thread holds the lock: it is the one
			// in the wrong in program order; signal it to abort and
			// wait for the chain to unwind (Alg. 2 lines 46–48).
			e.Owner.AbortInternal.Store(true)
			t.workAcc += yieldQuantum
			runtime.Gosched()
			continue
		}
		// A past task holds the lock. If it is still running this is a
		// WAW conflict against program order: we (the future writer)
		// abort and re-run once the writer has completed (Alg. 2 lines
		// 44–45). If it completed, we stack a new entry on the
		// location's redo log (lines 49–51).
		if t.thr.completedTask.Load() < e.Serial {
			t.noteConflict(a)
			t.waitBeforeRestart = e.Serial
			t.rollbackTask(restartWAW)
		}
		ne := t.newEntry(p, a, v, ser)
		ne.Prev.Store(e)
		if p.W.CompareAndSwap(e, ne) {
			t.writeLog.Append(ne)
			if t.traced {
				t.tr.Record(txtrace.KindWrite, t.validTS, uint64(a), 0)
			}
			break
		}
		t.writeLog.Release(ne) // never published; immediately reusable
	}
	// Post-write checks (Alg. 2 lines 52–53). Passing the witnessed
	// version into the extension matters beyond liveness: it guarantees
	// this transaction's eventual commit stamp exceeds every version it
	// displaces, so locations never regress under pre-publishing
	// strategies.
	if ver := p.R.Load(); ver != locktable.Locked && ver > t.validTS && !t.extendTo(ver) {
		t.noteConflict(a)
		t.rollbackTask(restartExtend)
	}
	t.maybeValidate()
}

// newEntry produces a write-lock entry for installation, recycling a
// retired one when the thread's committed-transaction frontier
// (sched.Latch txDone — the horizon every reuse is gated on) has passed
// its retirement serial.
func (t *Task) newEntry(p *locktable.Pair, a tm.Addr, v uint64, ser int64) *locktable.WEntry {
	return t.writeLog.NewEntryAt(&t.ownerRef, ser, p, a, v, t.thr.txDone.Seq())
}

// gatePendingBreak arms the wait-loop break above. It exists as a
// package variable only so the directed deadlock regression
// (gate_test.go) can verify the break is load-bearing by disarming it;
// it is never cleared in production.
var gatePendingBreak = true

// Retry implements the transactional cond-var wait: the caller's
// predicate over its reads failed, so abandon the attempt and block
// until a conflicting commit changes something the attempt read. The
// task subscribes a fingerprint over its read-set's lock pairs, then
// revalidates — if the reads are already stale the wake may have
// happened before the subscription, so the re-execution proceeds
// immediately; otherwise the next attempt parks on the doorbell first
// (after this attempt's rollback has released its locks and, under the
// serialized rung, the gate).
//
// Only a single-task transaction may park: a parked intermediate task
// would strand the locks its sibling tasks hold (and cannot observe the
// abort signals that resolve such stand-offs). Multi-task transactions
// therefore respin with exponential backoff instead — the predicate is
// re-checked from scratch each round.
func (t *Task) Retry() {
	if t.mvActive {
		// Wait-free reads are unlogged: there is no read set to
		// fingerprint or revalidate. Re-execute validated.
		t.mvFallback()
	}
	tx := t.tx
	if tx.startSerial != tx.commitSerial {
		cfg := &t.thr.rt.modeCfg
		if t.backoff == 0 {
			t.backoff = cfg.SpinInit
		} else if t.backoff < cfg.SpinCell {
			t.backoff *= cfg.SpinFactor
			if t.backoff > cfg.SpinCell {
				t.backoff = cfg.SpinCell
			}
		}
		t.rollbackTask(restartRetry)
	}
	var fp mode.Fingerprint
	for _, re := range t.readLog.Entries() {
		fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(re.Pair)))
	}
	if fp != 0 {
		hub := t.thr.rt.hub
		hub.Subscribe(&t.waiter, fp)
		valid := true
		for _, re := range t.readLog.Entries() {
			if re.Version == noVersion {
				continue
			}
			if re.Pair.R.Load() != re.Version {
				valid = false
				break
			}
		}
		if valid {
			t.parkPending = true
			t.parkFP = fp
		} else {
			hub.Unsubscribe(&t.waiter)
		}
	}
	t.rollbackTask(restartRetry)
}

// parkRetry blocks the task on its Retry doorbell until a conflicting
// commit rings it (see Retry). Under the serialized rung the gate is
// released across the park — holding it would stall every other
// fallback entrant behind a predicate only a speculative committer can
// change — and retaken before the re-execution. Cross-goroutine
// Exit/Enter is sound: the gate's mutex is not owner-tracked, and the
// submitting goroutine is itself blocked on this transaction's latch
// for the whole window.
func (t *Task) parkRetry() {
	t.parkPending = false
	if t.traced {
		t.tr.Record(txtrace.KindRetryPark, t.thr.rt.clk.Now(), uint64(t.parkFP), 0)
	}
	gated := t.tx.inSerial
	if gated {
		t.thr.rt.gate.Exit()
	}
	t.waiter.Park()
	t.thr.rt.hub.Unsubscribe(&t.waiter)
	if gated {
		t.thr.rt.gate.Enter()
	}
	t.retryWakes++
	if t.traced {
		t.tr.Record(txtrace.KindRetryPark, t.thr.rt.clk.Now(), uint64(t.parkFP), 1)
	}
}

// Alloc implements tm.Tx; the block is reclaimed if the attempt aborts.
func (t *Task) Alloc(n int) tm.Addr {
	t.workAcc++
	a := t.thr.rt.alloc.Alloc(n)
	t.allocs = append(t.allocs, a)
	return a
}

// Free implements tm.Tx; the release applies at transaction commit.
func (t *Task) Free(a tm.Addr) {
	t.frees = append(t.frees, a)
}

// Serial reports the task's program-order serial within its user-thread
// (tests and instrumentation).
func (t *Task) Serial() int64 { return t.serial.Load() }

var _ tm.Tx = (*Task)(nil)
