package core

import (
	"sync/atomic"
	"testing"

	"tlstm/internal/tm"
)

func newMVRT(depth, k int) *Runtime {
	return New(Config{SpecDepth: depth, LockTableBits: 16, MVDepth: k})
}

// TestAtomicROMVSoak is the TLSTM half of the acceptance soak, driven
// from one goroutine for deterministic assertions: a writer thread
// commits transfers, a reader thread runs declared read-only
// transactions of SPECDEPTH tasks, each scanning the array at the
// transaction's shared frozen snapshot. Every scan must commit on the
// wait-free path: zero transaction aborts, zero fallback misses, zero
// snapshot extensions, nothing logged.
func TestAtomicROMVSoak(t *testing.T) {
	const words, init, iters, depth = 8, 100, 300, 2
	rt := newMVRT(depth, 2)
	defer rt.Close()
	d := rt.Direct()
	base := d.Alloc(words)
	for i := 0; i < words; i++ {
		d.Store(base+tm.Addr(i), init)
	}
	writer := rt.NewThread()
	reader := rt.NewThread()

	scan := func(tk *Task) {
		var sum uint64
		for i := 0; i < words; i++ {
			sum += tk.Load(base + tm.Addr(i))
		}
		if sum != words*init {
			t.Errorf("scan saw total %d, want %d", sum, words*init)
		}
	}
	for i := 0; i < iters; i++ {
		src, dst := base+tm.Addr(i%words), base+tm.Addr((i+1)%words)
		if err := writer.Atomic(func(tk *Task) {
			tk.Store(src, tk.Load(src)-1)
			tk.Store(dst, tk.Load(dst)+1)
		}); err != nil {
			t.Fatal(err)
		}
		if err := reader.AtomicRO(scan, scan); err != nil {
			t.Fatal(err)
		}
	}
	reader.Sync()
	st := reader.Stats()
	if st.TxCommitted != iters {
		t.Errorf("reader commits = %d, want %d", st.TxCommitted, iters)
	}
	if st.TxAborted != 0 || st.MVMisses != 0 || st.SnapshotExtensions != 0 {
		t.Errorf("reader left the wait-free path: aborts=%d misses=%d ext=%d",
			st.TxAborted, st.MVMisses, st.SnapshotExtensions)
	}
	if want := uint64(iters * depth * words); st.MVReads != want {
		t.Errorf("MVReads = %d, want %d", st.MVReads, want)
	}
	if st.ReadSetSizes.Max() != 0 || st.WriteSetSizes.Max() != 0 {
		t.Errorf("mv tasks logged entries: rset[%s] wset[%s]",
			st.ReadSetSizes, st.WriteSetSizes)
	}
}

// TestAtomicROMVRingWraparound is the TLSTM overrun regression: a
// reader parked across K+2 commits to one word must fall back to the
// validated path (whole-transaction restart) — never return a torn or
// too-new value.
func TestAtomicROMVRingWraparound(t *testing.T) {
	const k, total = 2, 1000
	rt := newMVRT(1, k)
	defer rt.Close()
	d := rt.Direct()
	base := d.Alloc(2)
	d.Store(base, total) // invariant: base + base+1 == total

	writer := rt.NewThread()
	reader := rt.NewThread()
	trigger := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-trigger
		for i := 0; i < k+2; i++ {
			if err := writer.Atomic(func(tk *Task) {
				tk.Store(base, tk.Load(base)-1)
				tk.Store(base+1, tk.Load(base+1)+1)
			}); err != nil {
				t.Error(err)
			}
		}
		writer.Sync()
		close(done)
	}()

	var once atomic.Bool
	if err := reader.AtomicRO(func(tk *Task) {
		a := tk.Load(base)
		if once.CompareAndSwap(false, true) {
			close(trigger)
			<-done
		}
		b := tk.Load(base + 1)
		if a+b != total {
			t.Errorf("inconsistent read after wraparound: %d + %d != %d", a, b, total)
		}
	}); err != nil {
		t.Fatal(err)
	}
	reader.Sync()
	st := reader.Stats()
	if st.MVMisses == 0 || st.TxAborted == 0 {
		t.Fatalf("fallback not recorded: mvMiss=%d txAborts=%d, want >= 1 each",
			st.MVMisses, st.TxAborted)
	}
	if got := d.Load(base) + d.Load(base+1); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
}

// TestAtomicROMVStoreFallsBack: a store inside a declared read-only
// transaction aborts the wait-free attempt and re-runs the whole
// transaction validated — mis-declaring costs a restart, never
// correctness.
func TestAtomicROMVStoreFallsBack(t *testing.T) {
	rt := newMVRT(2, 2)
	defer rt.Close()
	d := rt.Direct()
	a := d.Alloc(1)
	d.Store(a, 5)

	thr := rt.NewThread()
	if err := thr.AtomicRO(
		func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
		func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
	); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got := d.Load(a); got != 7 {
		t.Fatalf("word = %d, want 7", got)
	}
	st := thr.Stats()
	if st.MVMisses == 0 || st.TxAborted == 0 {
		t.Fatalf("store fallback not recorded: mvMiss=%d txAborts=%d", st.MVMisses, st.TxAborted)
	}
	if st.TxCommitted != 1 {
		t.Fatalf("commits = %d, want 1", st.TxCommitted)
	}
}

// TestAtomicROMVDisabled: without MVDepth the declared read-only entry
// point is just the validated path.
func TestAtomicROMVDisabled(t *testing.T) {
	rt := newRT(2)
	defer rt.Close()
	if rt.MVDepth() != 0 {
		t.Fatalf("MVDepth = %d, want 0", rt.MVDepth())
	}
	d := rt.Direct()
	a := d.Alloc(1)
	d.Store(a, 9)
	thr := rt.NewThread()
	var got atomic.Uint64
	if err := thr.AtomicRO(func(tk *Task) { got.Store(tk.Load(a)) }); err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got.Load() != 9 {
		t.Fatalf("read %d, want 9", got.Load())
	}
	st := thr.Stats()
	if st.MVReads != 0 || st.MVMisses != 0 {
		t.Fatalf("mv counters moved without multi-versioning: %d/%d", st.MVReads, st.MVMisses)
	}
}
