package core

import (
	"testing"

	"tlstm/internal/sched"
	"tlstm/internal/tm"
)

// Allocation-regression benchmarks for the TLSTM hot paths. The
// steady-state read/write path of a warmed task must not allocate; with
// the pooled scheduler (internal/sched) the whole Submit+Wait
// round-trip must not allocate either for read-only transactions, and a
// small writer transaction is down to the one write-lock entry this
// runtime deliberately never recycles (validate-task depends on entry
// pointer identity; see the ROADMAP's epoch-reclamation item).
// Companion assertions live in alloc_norace_test.go.

// BenchmarkTaskLoadStoreWarmed measures one read-modify-write pair per
// op inside a single long-running task whose working set has already
// been touched (logs grown, write-lock entries installed). allocs/op
// must be 0.
func BenchmarkTaskLoadStoreWarmed(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	addrs := make([]tm.Addr, benchAddrs)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	b.ReportAllocs()
	_ = thr.Atomic(func(t *Task) {
		for _, a := range addrs {
			t.Store(a, t.Load(a)+1) // warm: one entry per pair, logs grown
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addrs[i%benchAddrs]
			t.Store(a, t.Load(a)+1)
		}
	})
	thr.Sync()
}

const benchAddrs = 8

// BenchmarkThreadCommitSmallTx measures a whole single-task writer
// transaction — Submit, pooled dispatch, commit, Wait — on one thread.
// With descriptors, handles and completion waits all recycled, the only
// remaining allocation is the fresh write-lock entry (one object, via
// the lock table's inline word buffer).
func BenchmarkThreadCommitSmallTx(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(t *Task) { t.Store(a, t.Load(a)+1) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkThreadCommitSmallTxInline is the same transaction under the
// Inline scheduling policy (SpecDepth 1): no worker hand-off, the task
// body runs on the submitting goroutine. The gap to the Pooled variant
// is the per-task cost of the wake/park protocol.
func BenchmarkThreadCommitSmallTxInline(b *testing.B) {
	rt := New(Config{SpecDepth: 1, Policy: sched.Inline})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(t *Task) { t.Store(a, t.Load(a)+1) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkThreadCommitReadOnlyTx measures a whole single-task
// read-only transaction round-trip. No write-lock entry is created, so
// a warmed round-trip must be 0 allocs/op — the pooled scheduler's
// acceptance number (asserted in alloc_norace_test.go).
func BenchmarkThreadCommitReadOnlyTx(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(t *Task) { sink += t.Load(a) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkSubmitPipelined measures Submit throughput with the pipeline
// kept full (wait only every SpecDepth transactions): the scheduler's
// steady-state dispatch cost with speculation overlap.
func BenchmarkSubmitPipelined(b *testing.B) {
	const depth = 4
	rt := New(Config{SpecDepth: depth})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(t *Task) { sink += t.Load(a) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	var last TxHandle
	for i := 0; i < b.N; i++ {
		h, _ := thr.Submit(body)
		if i%depth == depth-1 {
			h.Wait()
		}
		last = h
	}
	last.Wait()
	b.StopTimer()
	thr.Sync()
}
