package core

import (
	"testing"

	"tlstm/internal/locktable"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/tm"
	"tlstm/internal/txlog"
)

// Allocation-regression benchmarks for the TLSTM hot paths. The
// steady-state read/write path of a warmed task must not allocate; with
// the pooled scheduler (internal/sched) the whole Submit+Wait
// round-trip must not allocate for read-only transactions, and — since
// epoch-based entry reclamation (reclaim.go) — not for small writer
// transactions either: retired write-lock entries recycle through each
// descriptor's quiescence ring instead of reallocating (validate-task
// depends on entry pointer identity, so reuse waits out the horizon).
// Companion assertions live in alloc_norace_test.go.

// BenchmarkTaskLoadStoreWarmed measures one read-modify-write pair per
// op inside a single long-running task whose working set has already
// been touched (logs grown, write-lock entries installed). allocs/op
// must be 0.
func BenchmarkTaskLoadStoreWarmed(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	addrs := make([]tm.Addr, benchAddrs)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	b.ReportAllocs()
	_ = thr.Atomic(func(t *Task) {
		for _, a := range addrs {
			t.Store(a, t.Load(a)+1) // warm: one entry per pair, logs grown
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addrs[i%benchAddrs]
			t.Store(a, t.Load(a)+1)
		}
	})
	thr.Sync()
}

const benchAddrs = 8

// BenchmarkThreadCommitSmallTx measures a whole single-task writer
// transaction — Submit, pooled dispatch, commit, Wait — on one thread.
// With descriptors, handles, completion waits and (via the quiescence
// rings) write-lock entries all recycled, allocs/op must be 0.
func BenchmarkThreadCommitSmallTx(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(t *Task) { t.Store(a, t.Load(a)+1) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkThreadCommitSmallTxAdaptive is the same transaction with
// the execution-mode controller armed (Policy adaptive). The ladder's
// bookkeeping — attempt escalation checks, the per-commit outcome fold,
// the window poll — rides the existing counters, so arming it must not
// cost an allocation: allocs/op stays 0.
func BenchmarkThreadCommitSmallTxAdaptive(b *testing.B) {
	rt := New(Config{SpecDepth: 2, Mode: mode.Config{Policy: mode.Adaptive}})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(t *Task) { t.Store(a, t.Load(a)+1) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkThreadCommitSmallTxInline is the same transaction under the
// Inline scheduling policy (SpecDepth 1): no worker hand-off, the task
// body runs on the submitting goroutine. The gap to the Pooled variant
// is the per-task cost of the wake/park protocol.
func BenchmarkThreadCommitSmallTxInline(b *testing.B) {
	rt := New(Config{SpecDepth: 1, Policy: sched.Inline})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(t *Task) { t.Store(a, t.Load(a)+1) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkThreadCommitReadOnlyTx measures a whole single-task
// read-only transaction round-trip. No write-lock entry is created, so
// a warmed round-trip must be 0 allocs/op — the pooled scheduler's
// acceptance number (asserted in alloc_norace_test.go).
func BenchmarkThreadCommitReadOnlyTx(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(t *Task) { sink += t.Load(a) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}

// BenchmarkEntryReclaimHorizonCheck isolates the reclamation machinery
// the writer hot path gained: the committed-frontier load, the
// quiescence-ring head check, retirement stamping and the Seed reset —
// one full retire/reclaim cycle per op, no transaction around it. The
// gap to BenchmarkEntryFreshAlloc is what recycling saves per entry;
// the cycle's own ns/op is what the horizon check costs.
func BenchmarkEntryReclaimHorizonCheck(b *testing.B) {
	var latch sched.Latch
	var wl txlog.WriteLog
	tbl := locktable.NewTable(8)
	owner := &locktable.OwnerRef{ThreadID: 0}
	p := tbl.For(1)
	const depth = 2
	// Warm the ring with one retired, already-quiescent entry.
	wl.Append(wl.NewEntryAt(owner, 0, p, 1, 0, latch.Seq()))
	wl.Retire(0+depth, 1, latch.Seq())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := int64(i + 1)
		latch.Publish(serial + depth) // advance the frontier past the stamp
		e := wl.NewEntryAt(owner, serial, p, 1, uint64(i), latch.Seq())
		wl.Append(e)
		wl.Retire(serial+depth, serial, latch.Seq())
	}
}

// BenchmarkEntryFreshAlloc is the no-reclamation baseline for the
// benchmark above: a heap-fresh entry per op.
func BenchmarkEntryFreshAlloc(b *testing.B) {
	tbl := locktable.NewTable(8)
	owner := &locktable.OwnerRef{ThreadID: 0}
	p := tbl.For(1)
	var sink *locktable.WEntry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = locktable.NewEntry(owner, int64(i), p, 1, uint64(i))
	}
	_ = sink
}

// BenchmarkSubmitPipelined measures Submit throughput with the pipeline
// kept full (wait only every SpecDepth transactions): the scheduler's
// steady-state dispatch cost with speculation overlap.
func BenchmarkSubmitPipelined(b *testing.B) {
	const depth = 4
	rt := New(Config{SpecDepth: depth})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(t *Task) { sink += t.Load(a) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	var last TxHandle
	for i := 0; i < b.N; i++ {
		h, _ := thr.Submit(body)
		if i%depth == depth-1 {
			h.Wait()
		}
		last = h
	}
	last.Wait()
	b.StopTimer()
	thr.Sync()
}
