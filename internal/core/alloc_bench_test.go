package core

import (
	"testing"

	"tlstm/internal/tm"
)

// Allocation-regression benchmarks for the TLSTM hot paths. The
// steady-state read/write path of a warmed task must not allocate; the
// commit path reuses the thread-owned scratch (its zero-alloc proof is
// in internal/txlog), while per-transaction task/goroutine setup is
// tracked here as a trend number. Companion assertions live in
// alloc_norace_test.go.

// BenchmarkTaskLoadStoreWarmed measures one read-modify-write pair per
// op inside a single long-running task whose working set has already
// been touched (logs grown, write-lock entries installed). allocs/op
// must be 0.
func BenchmarkTaskLoadStoreWarmed(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	thr := rt.NewThread()
	d := rt.Direct()
	addrs := make([]tm.Addr, benchAddrs)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	b.ReportAllocs()
	_ = thr.Atomic(func(t *Task) {
		for _, a := range addrs {
			t.Store(a, t.Load(a)+1) // warm: one entry per pair, logs grown
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := addrs[i%benchAddrs]
			t.Store(a, t.Load(a)+1)
		}
	})
	thr.Sync()
}

const benchAddrs = 8

// BenchmarkThreadCommitSmallTx measures a whole single-task writer
// transaction — Submit, task goroutine, commit — on one thread. The
// commit-time r-lock bookkeeping is allocation-free (thread-owned
// scratch); the remaining allocs/op are per-transaction setup
// (txState, task, handle, goroutine), tracked here so regressions in
// either part are visible.
func BenchmarkThreadCommitSmallTx(b *testing.B) {
	rt := New(Config{SpecDepth: 2})
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(t *Task) { t.Store(a, t.Load(a)+1) }
	_ = thr.Atomic(body)
	thr.Sync()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(body)
	}
	b.StopTimer()
	thr.Sync()
}
