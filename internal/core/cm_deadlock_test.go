package core

import (
	"testing"
	"time"

	"tlstm/internal/cm"
	"tlstm/internal/tm"
)

// TestCrossThreadLockCycleTerminatesPerPolicy is the TLSTM form of the
// paper's §3.2 inter-thread deadlock: two user-threads run depth-2
// transactions whose tasks take the same two write locks in OPPOSITE
// order, with enough filler work that both transactions regularly hold
// one lock while a task wants the other. A task-level self-abort
// cannot release the lock the transaction's other task holds, so a
// policy that never aborts owners (suicide, backoff) breaks the cycle
// only through the txSelfAbortDefeats escalation — this test is the
// regression for that escape hatch (it deadlocked before it existed),
// and for the owner-aborting policies it checks their own escalation
// orderings terminate. Final counters double as the atomicity check.
func TestCrossThreadLockCycleTerminatesPerPolicy(t *testing.T) {
	const txPerThread = 40
	const fill = 96

	for _, kind := range cm.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := New(Config{SpecDepth: 2, CM: cm.New(kind)})
			defer rt.Close()
			d := rt.Direct()
			a := d.Alloc(2)
			b := a + 1
			filler := d.Alloc(2 * fill)

			run := func(first, second tm.Addr, fillBase tm.Addr, done chan<- struct{}) {
				thr := rt.NewThread()
				touch := func(addr tm.Addr) TaskFunc {
					return func(tk *Task) {
						tk.Store(addr, tk.Load(addr)+1)
						var sink uint64
						for j := 0; j < fill; j++ {
							sink += tk.Load(fillBase + tm.Addr(j))
						}
						tk.Store(addr, tk.Load(addr)+sink)
					}
				}
				for i := 0; i < txPerThread; i++ {
					if err := thr.Atomic(touch(first), touch(second)); err != nil {
						t.Error(err)
						break
					}
				}
				thr.Sync()
				done <- struct{}{}
			}

			done := make(chan struct{}, 2)
			go run(a, b, filler, done)
			go run(b, a, filler+fill, done)

			deadline := time.After(90 * time.Second)
			for i := 0; i < 2; i++ {
				select {
				case <-done:
				case <-deadline:
					t.Fatalf("policy %v: cross-thread lock cycle did not terminate (the §3.2 deadlock)", kind)
				}
			}
			want := uint64(2 * txPerThread)
			if got := d.Load(a); got != want {
				t.Fatalf("policy %v: counter a = %d, want %d", kind, got, want)
			}
			if got := d.Load(b); got != want {
				t.Fatalf("policy %v: counter b = %d, want %d", kind, got, want)
			}
		})
	}
}
