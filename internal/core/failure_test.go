package core

import (
	"strings"
	"sync"
	"testing"

	"tlstm/internal/tm"
)

// A panic raised while the task's reads were consistent is a genuine
// bug and must propagate out of Atomic's goroutine — which crashes the
// process; we verify the inverse here instead: a panic raised while the
// speculative state was inconsistent must be swallowed and the task
// re-executed (inconsistent-read sandboxing, §3.2).
func TestSandboxRestartsInconsistentPanic(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	ptr := d.Alloc(1) // holds a word-encoded pointer
	tgt := d.Alloc(1) // the pointee
	bad := tm.Addr(0) // dereferencing nil panics in the word store
	d.Store(ptr, uint64(tgt))
	_ = bad

	// Task 1 swings the pointer to nil and back; task 2 dereferences
	// whatever it reads. If task 2 observes the intermediate nil it
	// panics exactly like the paper's NULL-pointer example; the runtime
	// must convert that into a restart, and the committed execution
	// must be consistent.
	for i := 0; i < 40; i++ {
		err := thr.Atomic(
			func(tk *Task) {
				tk.Store(ptr, uint64(tm.NilAddr))
				tk.Store(ptr, uint64(tgt))
				tk.Store(tgt, uint64(i))
			},
			func(tk *Task) {
				p := tm.LoadAddr(tk, ptr)
				if p == tm.NilAddr {
					panic("nil dereference on speculative state")
				}
				_ = tk.Load(p)
			},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
}

// A panic in a consistent state must propagate (it is a real bug, not a
// speculation artifact). Run the task on a throwaway goroutine-confined
// runtime and catch the crash via recover inside the task's own
// goroutine is impossible — so we assert the documented contract at the
// attempt level through the exported behaviour: a consistent panic
// never commits and never silently retries forever. We approximate by
// checking that the panicking transaction does not commit.
func TestConsistentPanicDoesNotCommitSilently(t *testing.T) {
	// The crash takes down the process if unhandled, so we only verify
	// the sandbox *check* logic directly: with no conflicting state, a
	// task's consistent() must be true right after begin.
	rt := newRT(1)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	ok := false
	err := thr.Atomic(func(tk *Task) {
		tk.Load(a)
		ok = tk.consistent()
	})
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if !ok {
		t.Fatal("freshly begun task with untouched state must be consistent")
	}
}

// Lock-pair collisions (tiny table) must only cause false conflicts,
// never wrong results.
func TestCollisionsPreserveCorrectness(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 4}) // 16 pairs only
	d := rt.Direct()
	const words = 256
	base := d.Alloc(words)

	const threads, txs = 3, 40
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := seed
			next := func() uint64 { s = s*6364136223846793005 + 1; return s >> 33 }
			for i := 0; i < txs; i++ {
				x := base + tm.Addr(next()%words)
				y := base + tm.Addr(next()%words)
				_ = thr.Atomic(
					func(tk *Task) { tk.Store(x, tk.Load(x)+1) },
					func(tk *Task) { tk.Store(y, tk.Load(y)+1) },
				)
			}
			thr.Sync()
		}(uint64(w + 1))
	}
	wg.Wait()

	var sum uint64
	for i := 0; i < words; i++ {
		sum += d.Load(base + tm.Addr(i))
	}
	if sum != threads*txs*2 {
		t.Fatalf("sum = %d, want %d (each tx adds exactly 2)", sum, threads*txs*2)
	}
}

// An aborting earlier transaction must drag down later speculative
// transactions of the same thread that read its state: final memory is
// as if everything ran serially.
func TestCrossTxSpeculationSurvivesAborts(t *testing.T) {
	rt := newRT(4)
	d := rt.Direct()
	shared := d.Alloc(1) // contended across threads
	chainA := d.Alloc(1) // thread A private chain

	var wg sync.WaitGroup
	// Thread B hammers `shared` to force thread A's transactions to
	// abort at commit validation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := rt.NewThread()
		for i := 0; i < 150; i++ {
			_ = thr.Atomic(func(tk *Task) { tk.Store(shared, tk.Load(shared)+1) })
		}
		thr.Sync()
	}()

	thrA := rt.NewThread()
	for i := 0; i < 150; i++ {
		// tx1 reads shared and writes chainA; tx2 (speculated ahead)
		// reads chainA.
		h1, err := thrA.Submit(func(tk *Task) {
			v := tk.Load(shared)
			tk.Store(chainA, tk.Load(chainA)+v-v+1)
		})
		if err != nil {
			t.Fatal(err)
		}
		h2, err := thrA.Submit(func(tk *Task) {
			tk.Store(chainA, tk.Load(chainA)+1)
		})
		if err != nil {
			t.Fatal(err)
		}
		h1.Wait()
		h2.Wait()
	}
	thrA.Sync()
	wg.Wait()

	if got := d.Load(chainA); got != 300 {
		t.Fatalf("chainA = %d, want 300 (two increments per round)", got)
	}
	if got := d.Load(shared); got != 150 {
		t.Fatalf("shared = %d, want 150", got)
	}
}

// Long transactions must not starve behind streams of small ones: the
// greedy timestamp persists across retries, so the long transaction
// eventually wins every conflict.
func TestLongTransactionEventuallyWins(t *testing.T) {
	rt := newRT(2)
	d := rt.Direct()
	const words = 32
	base := d.Alloc(words)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // stream of small writers
		defer wg.Done()
		thr := rt.NewThread()
		i := uint64(0)
		for {
			select {
			case <-stop:
				thr.Sync()
				return
			default:
			}
			i++
			a := base + tm.Addr(i%words)
			_ = thr.Atomic(func(tk *Task) { tk.Store(a, tk.Load(a)+1) })
		}
	}()

	// One long transaction touching every word.
	thr := rt.NewThread()
	done := make(chan struct{})
	go func() {
		_ = thr.Atomic(func(tk *Task) {
			for i := 0; i < words; i++ {
				a := base + tm.Addr(i)
				tk.Store(a, tk.Load(a)+1000)
			}
		})
		thr.Sync()
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()

	var big int
	for i := 0; i < words; i++ {
		if d.Load(base+tm.Addr(i)) >= 1000 {
			big++
		}
	}
	if big != words {
		t.Fatalf("long transaction updated %d/%d words", big, words)
	}
}

// Deferred frees from every task of a transaction apply exactly once.
func TestTaskFreesApplyAtCommit(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	d := rt.Direct()
	blocks := []tm.Addr{d.Alloc(4), d.Alloc(4)}
	live := rt.Allocator().LiveBlocks()

	err := thr.Atomic(
		func(tk *Task) { tk.Free(blocks[0]) },
		func(tk *Task) { tk.Free(blocks[1]) },
	)
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got := rt.Allocator().LiveBlocks(); got != live-2 {
		t.Fatalf("LiveBlocks = %d, want %d", got, live-2)
	}
}

// The arity error message must be actionable.
func TestArityErrorMessage(t *testing.T) {
	rt := newRT(2)
	thr := rt.NewThread()
	fn := func(tk *Task) {}
	_, err := thr.Submit(fn, fn, fn)
	if err == nil || !strings.Contains(err.Error(), "SPECDEPTH") {
		t.Fatalf("unhelpful arity error: %v", err)
	}
}

// SPECDEPTH=1 must degenerate to strictly serial task execution while
// still supporting multi-transaction pipelines.
func TestDepthOneSerialEquivalence(t *testing.T) {
	rt := newRT(1)
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	for i := 0; i < 50; i++ {
		if err := thr.Atomic(func(tk *Task) { tk.Store(a, tk.Load(a)+1) }); err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	if d.Load(a) != 50 {
		t.Fatalf("counter = %d, want 50", d.Load(a))
	}
}

// Stats must reflect aborts under forced inter-thread contention.
func TestStatsCountAborts(t *testing.T) {
	rt := newRT(2)
	d := rt.Direct()
	a := d.Alloc(1)
	var wg sync.WaitGroup
	threads := make([]*Thread, 3)
	for w := range threads {
		threads[w] = rt.NewThread()
		wg.Add(1)
		go func(thr *Thread) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_ = thr.Atomic(
					func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
					func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
				)
			}
			thr.Sync()
		}(threads[w])
	}
	wg.Wait()
	if d.Load(a) != 3*60*2 {
		t.Fatalf("counter = %d, want %d", d.Load(a), 3*60*2)
	}
	var total Stats
	for _, thr := range threads {
		total.Add(thr.Stats())
	}
	if total.TxCommitted != 180 {
		t.Fatalf("TxCommitted = %d, want 180", total.TxCommitted)
	}
	if total.TxAborted == 0 && total.TaskRestarts == 0 {
		t.Fatal("expected some contention effects under a shared counter")
	}
}
