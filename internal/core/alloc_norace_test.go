//go:build !race

package core

import (
	"testing"

	"tlstm/internal/tm"
)

// TestTaskOpsZeroAllocWarmed asserts the TLSTM steady-state read/write
// path allocates nothing once a task's working set is warmed: loads hit
// the task's own write-lock entries or the committed store, stores
// update entries in place, and the logs reuse their backing arrays.
// (!race: AllocsPerRun is not meaningful under the race detector.)
func TestTaskOpsZeroAllocWarmed(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	thr := rt.NewThread()
	d := rt.Direct()
	addrs := make([]tm.Addr, 8)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	var got float64
	_ = thr.Atomic(func(tk *Task) {
		for _, a := range addrs {
			tk.Store(a, tk.Load(a)+1) // warm
		}
		i := 0
		got = testing.AllocsPerRun(200, func() {
			a := addrs[i%len(addrs)]
			tk.Store(a, tk.Load(a)+1)
			i++
		})
	})
	thr.Sync()
	if got != 0 {
		t.Fatalf("warmed task Load+Store allocates %.1f objects/op, want 0", got)
	}
}
