//go:build !race

package core

import (
	"runtime"
	"testing"

	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/tm"
	"tlstm/internal/txtrace"
)

// Zero-allocation and zero-spawn assertions for the pooled scheduler
// (mirroring internal/stm/alloc_norace_test.go): a warmed TLSTM
// Submit+Wait round-trip must neither allocate nor spawn a goroutine.
// (!race: AllocsPerRun and goroutine counting are not meaningful under
// the race detector's instrumentation.)

// TestTaskOpsZeroAllocWarmed asserts the TLSTM steady-state read/write
// path allocates nothing once a task's working set is warmed: loads hit
// the task's own write-lock entries or the committed store, stores
// update entries in place, and the logs reuse their backing arrays.
func TestTaskOpsZeroAllocWarmed(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	addrs := make([]tm.Addr, 8)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	var got float64
	_ = thr.Atomic(func(tk *Task) {
		for _, a := range addrs {
			tk.Store(a, tk.Load(a)+1) // warm
		}
		i := 0
		got = testing.AllocsPerRun(200, func() {
			a := addrs[i%len(addrs)]
			tk.Store(a, tk.Load(a)+1)
			i++
		})
	})
	thr.Sync()
	if got != 0 {
		t.Fatalf("warmed task Load+Store allocates %.1f objects/op, want 0", got)
	}
}

// TestSubmitWaitZeroAllocWarmed is the pooled scheduler's headline
// assertion: a warmed read-only Submit+Wait round-trip — transaction
// descriptor, task descriptor, handle, dispatch, completion — touches
// the heap not at all. Writer transactions reach the same floor once
// their descriptors' entry rings have warmed (asserted below): retired
// write-lock entries are recycled under the epoch-based quiescence
// horizon instead of reallocated.
func TestSubmitWaitZeroAllocWarmed(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(tk *Task) { sink += tk.Load(a) }
	_ = thr.Atomic(body) // warm: spawn workers, grow logs and rings
	thr.Sync()
	if got := testing.AllocsPerRun(200, func() {
		h, err := thr.Submit(body)
		if err != nil {
			t.Fatal(err)
		}
		h.Wait()
	}); got != 0 {
		t.Fatalf("warmed read-only Submit+Wait allocates %.1f objects/op, want 0", got)
	}
	thr.Sync()
}

// TestAtomicMultiTaskZeroAllocWarmed extends the round-trip assertion
// to a two-task read-only transaction: the variadic task list stays on
// the caller's stack and both recycled descriptors dispatch without
// touching the heap.
func TestAtomicMultiTaskZeroAllocWarmed(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	f1 := func(tk *Task) { sink += tk.Load(a) }
	f2 := func(tk *Task) { sink += tk.Load(a) }
	_ = thr.Atomic(f1, f2) // warm
	thr.Sync()
	if got := testing.AllocsPerRun(200, func() {
		if err := thr.Atomic(f1, f2); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("warmed two-task Atomic allocates %.1f objects/op, want 0", got)
	}
	thr.Sync()
}

// TestWriterTxZeroAllocWarmed pins the writer-transaction floor at
// zero: once every descriptor's entry ring has a quiesced entry to
// serve, a whole single-write Submit+Wait round-trip allocates nothing
// — no txState, no Task, no handle, no channel, no goroutine stack,
// and (the last piece, via epoch-based entry reclamation) no fresh
// write-lock entry either. This is the headline number of the
// reclamation work: BenchmarkThreadCommitSmallTx at 0 allocs/op.
func TestWriterTxZeroAllocWarmed(t *testing.T) {
	rt := New(Config{SpecDepth: 2})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(tk *Task) { tk.Store(a, tk.Load(a)+1) }
	for i := 0; i < 2*rt.SpecDepth(); i++ {
		_ = thr.Atomic(body) // warm: one retired entry per descriptor ring
	}
	thr.Sync()
	got := testing.AllocsPerRun(200, func() {
		if err := thr.Atomic(body); err != nil {
			t.Fatal(err)
		}
	})
	thr.Sync()
	if got != 0 {
		t.Fatalf("warmed single-write Atomic allocates %.1f objects/op, want 0 (entries must recycle through the quiescence ring)", got)
	}
	if st := thr.Stats(); st.EntryReclaims == 0 {
		t.Fatal("EntryReclaims = 0 after a warmed writer run; the zero-alloc floor must come from reclamation, not dead code")
	}
}

// TestWriterTxZeroAllocModeArmed repeats the writer floor with the
// execution-mode controller armed: the adaptive ladder's escalation
// checks, outcome folds and window polls must ride the existing
// counters without adding an allocation to the commit path.
func TestWriterTxZeroAllocModeArmed(t *testing.T) {
	rt := New(Config{SpecDepth: 2, Mode: mode.Config{Policy: mode.Adaptive}})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(tk *Task) { tk.Store(a, tk.Load(a)+1) }
	for i := 0; i < 2*rt.SpecDepth(); i++ {
		_ = thr.Atomic(body)
	}
	thr.Sync()
	got := testing.AllocsPerRun(200, func() {
		if err := thr.Atomic(body); err != nil {
			t.Fatal(err)
		}
	})
	thr.Sync()
	if got != 0 {
		t.Fatalf("armed-controller single-write Atomic allocates %.1f objects/op, want 0", got)
	}
	if st := thr.Stats(); st.ModeFallbacks != 0 {
		t.Fatalf("uncontended run must not fall back: %+v", st)
	}
}

// TestSubmitSpawnsNoGoroutines asserts the worker pool is long-lived:
// after warm-up, a burst of transactions leaves the process goroutine
// count unchanged — Submit dispatches to parked workers instead of
// spawning.
func TestSubmitSpawnsNoGoroutines(t *testing.T) {
	rt := New(Config{SpecDepth: 3})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(tk *Task) { sink += tk.Load(a) }
	for i := 0; i < 10; i++ { // warm: all three workers spawned
		_ = thr.Atomic(body)
	}
	thr.Sync()
	before := runtime.NumGoroutine()
	for i := 0; i < 500; i++ {
		_ = thr.Atomic(body)
	}
	thr.Sync()
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d → %d across 500 warmed transactions; Submit must not spawn", before, after)
	}
	st := thr.Stats()
	if st.WorkersSpawned != 3 {
		t.Fatalf("WorkersSpawned = %d, want 3 (one per SpecDepth slot, spawned once)", st.WorkersSpawned)
	}
	if st.DescriptorReuses == 0 {
		t.Fatal("DescriptorReuses = 0 after 510 transactions on a depth-3 ring")
	}
}

// TestInlinePolicyZeroAllocAndZeroWorkers asserts the depth-1 fast
// path: Inline runs the task body on the submitting goroutine — no
// workers at all — and stays allocation-free for read-only work.
func TestInlinePolicyZeroAllocAndZeroWorkers(t *testing.T) {
	rt := New(Config{SpecDepth: 1, Policy: sched.Inline})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	var sink uint64
	body := func(tk *Task) { sink += tk.Load(a) }
	_ = thr.Atomic(body) // warm
	thr.Sync()
	if got := testing.AllocsPerRun(200, func() { _ = thr.Atomic(body) }); got != 0 {
		t.Fatalf("warmed Inline Atomic allocates %.1f objects/op, want 0", got)
	}
	thr.Sync()
	if st := thr.Stats(); st.WorkersSpawned != 0 {
		t.Fatalf("WorkersSpawned = %d under Inline, want 0", st.WorkersSpawned)
	}
}

// TestTracedWriterTxZeroAllocWarmed is TestWriterTxZeroAllocWarmed with
// the flight recorder armed: the rings are pre-allocated at NewThread,
// so every Record on the warmed writer path is a plain store into a
// ring slot — tracing must not reintroduce allocations. (The disabled
// case is covered by every other test here: Config.Trace defaults to
// nil, which is exactly the no-op-tracer hot path the benchmarks
// measure.)
func TestTracedWriterTxZeroAllocWarmed(t *testing.T) {
	rec := txtrace.NewRecorder(1 << 12)
	rt := New(Config{SpecDepth: 2, Trace: rec})
	defer rt.Close()
	thr := rt.NewThread()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(tk *Task) { tk.Store(a, tk.Load(a)+1) }
	for i := 0; i < 2*rt.SpecDepth(); i++ {
		_ = thr.Atomic(body) // warm: one retired entry per descriptor ring
	}
	thr.Sync()
	got := testing.AllocsPerRun(200, func() {
		if err := thr.Atomic(body); err != nil {
			t.Fatal(err)
		}
	})
	thr.Sync()
	if got != 0 {
		t.Fatalf("traced warmed single-write Atomic allocates %.1f objects/op, want 0 (the record path must be a plain ring store)", got)
	}
	if rec.Events() == 0 {
		t.Fatal("recorder captured no events; the zero-alloc result would be vacuous")
	}
}
