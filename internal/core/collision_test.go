package core

import (
	"testing"

	"tlstm/internal/tm"
)

// Lock-pair collisions on the speculative read path: a future task
// reading address B while a past task wrote address A of the same pair
// must fall through the redo chain to B's committed value, and the
// recorded chain identity must still validate.
func TestSpeculativeReadThroughNonCoveringEntry(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 4}) // 16 pairs
	d := rt.Direct()
	a := d.Alloc(1)
	b := a + 16 // same pair (stride = table size)
	if rt.locks.For(a) != rt.locks.For(b) {
		t.Skip("allocator layout changed; addresses no longer collide")
	}
	d.Store(b, 77)

	thr := rt.NewThread()
	var got uint64
	err := thr.Atomic(
		func(tk *Task) { tk.Store(a, 1) }, // locks the shared pair
		func(tk *Task) { got = tk.Load(b) },
	)
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if got != 77 {
		t.Fatalf("read through non-covering entry = %d, want 77", got)
	}
	if d.Load(a) != 1 || d.Load(b) != 77 {
		t.Fatal("committed state wrong after collision transaction")
	}
}

// Both tasks writing different addresses of the same pair: the chain
// stacks two entries; the commit must publish both words.
func TestCollidingWritesAcrossTasks(t *testing.T) {
	rt := New(Config{SpecDepth: 2, LockTableBits: 4})
	d := rt.Direct()
	a := d.Alloc(1)
	b := a + 16
	if rt.locks.For(a) != rt.locks.For(b) {
		t.Skip("allocator layout changed; addresses no longer collide")
	}

	thr := rt.NewThread()
	err := thr.Atomic(
		func(tk *Task) { tk.Store(a, 11) },
		func(tk *Task) { tk.Store(b, 22) },
	)
	if err != nil {
		t.Fatal(err)
	}
	thr.Sync()
	if d.Load(a) != 11 || d.Load(b) != 22 {
		t.Fatalf("collided writes published %d/%d, want 11/22", d.Load(a), d.Load(b))
	}
	// The pair must be fully unlocked afterwards.
	if rt.locks.For(a).W.Load() != nil {
		t.Fatal("write lock leaked after commit")
	}
}

// Read-modify-write across tasks on colliding addresses: program order
// must hold for both words.
func TestCollidingRMWSequence(t *testing.T) {
	rt := New(Config{SpecDepth: 3, LockTableBits: 4})
	d := rt.Direct()
	a := d.Alloc(1)
	b := a + 16
	if rt.locks.For(a) != rt.locks.For(b) {
		t.Skip("allocator layout changed; addresses no longer collide")
	}
	for i := 0; i < 15; i++ {
		err := thrAtomic3(rt, a, b)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.Load(a) != 15 || d.Load(b) != 30 {
		t.Fatalf("a=%d b=%d, want 15/30", d.Load(a), d.Load(b))
	}
}

func thrAtomic3(rt *Runtime, a, b tm.Addr) error {
	thr := rt.NewThread()
	defer thr.Sync()
	return thr.Atomic(
		func(tk *Task) { tk.Store(a, tk.Load(a)+1) },
		func(tk *Task) { tk.Store(b, tk.Load(b)+1) },
		func(tk *Task) { tk.Store(b, tk.Load(b)+1) },
	)
}
