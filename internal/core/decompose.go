package core

// Decomposition helpers. The paper leaves the choice of task
// decomposition open ("Several standard techniques can be used for
// user-thread decomposition, from loop iteration speculation (e.g.
// spec-DOALL and spec-DOACROSS) to procedure fall-through speculation",
// §3.3); these provide the two loop-speculation shapes directly over
// the Thread API.

// Nest runs fn as a nested user-transaction with flattening semantics:
// the paper's model assumes flat user-transactions and notes the model
// "can easily be extended to consider user-transaction nesting" — the
// classic flat extension subsumes the nested transaction into the
// enclosing task, which is exactly what executing fn inline does (an
// abort of the enclosing transaction rolls the nested effects back with
// it, and the nested transaction has no independent abort).
func (t *Task) Nest(fn func(t *Task)) {
	fn(t)
}

// SpecDOALL runs the loop body for i ∈ [0, n) as one user-transaction
// decomposed into `tasks` speculative tasks over contiguous index
// ranges (the spec-DOALL shape: iterations are speculated independent;
// cross-iteration dependencies are detected and repaired by the
// runtime's WAR/WAW machinery). It blocks until the transaction commits.
func (thr *Thread) SpecDOALL(n, tasks int, body func(t *Task, i int)) error {
	if tasks > thr.depth {
		tasks = thr.depth
	}
	if tasks > n {
		tasks = n
	}
	if tasks < 1 {
		tasks = 1
	}
	fns := make([]TaskFunc, 0, tasks)
	for k := 0; k < tasks; k++ {
		lo := k * n / tasks
		hi := (k + 1) * n / tasks
		fns = append(fns, func(t *Task) {
			for i := lo; i < hi; i++ {
				body(t, i)
			}
		})
	}
	return thr.Atomic(fns...)
}

// SpecDOACROSS runs the loop body for i ∈ [0, n), one single-task
// user-transaction per iteration, submitted speculatively so up to
// SPECDEPTH iterations are in flight (the spec-DOACROSS shape:
// iterations commit in order; dependencies between nearby iterations
// cause rollbacks, distant ones pipeline freely). It blocks until every
// iteration has committed.
func (thr *Thread) SpecDOACROSS(n int, body func(t *Task, i int)) error {
	handles := make([]TxHandle, 0, n)
	for i := 0; i < n; i++ {
		i := i
		h, err := thr.Submit(func(t *Task) { body(t, i) })
		if err != nil {
			return err
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Wait()
	}
	return nil
}
