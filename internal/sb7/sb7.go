// Package sb7 is a scaled-down port of STMBench7 (Guerraoui, Kapałka,
// Vitek — EuroSys'07) sufficient for the paper's evaluation (§4,
// Figures 2a and 2b): the CAD-like shared structure — a module whose
// design root is a tree of complex assemblies with three top-level
// branches, base assemblies at the leaves referencing composite parts
// from a shared pool, each composite part owning a connected graph of
// atomic parts — plus the "Long Traversals" operation family, the only
// one the paper parallelizes into speculative tasks.
//
// Two properties of the original drive the paper's results and are
// preserved here:
//
//   - the tree has three branches departing from the root, so long
//     traversals split naturally into multiples of three tasks;
//   - composite parts are shared between base assemblies of different
//     branches, and write traversals update every atomic part they
//     reach plus per-module metadata, so the speculative tasks of a
//     write traversal conflict with each other ("several tasks writing
//     to the same location", §4) and the transaction degenerates to a
//     nearly serial execution — the paper's worst case.
package sb7

import (
	"fmt"

	"tlstm/internal/tm"
)

// Params sizes the structure. The original's CAD model is much larger;
// these defaults keep simulator runs tractable while preserving shape
// (documented substitution, DESIGN.md §3).
type Params struct {
	// Levels is the number of complex-assembly levels including the
	// root (original: 7).
	Levels int
	// Fanout is the subassembly count per complex assembly (original
	// and paper: 3 — "three branches departing from the root").
	Fanout int
	// CompPerBase is the number of composite parts per base assembly
	// (original: 3).
	CompPerBase int
	// AtomicPerComp is the number of atomic parts per composite part
	// (original: 200; scaled down).
	AtomicPerComp int
	// NumCompParts is the shared composite-part pool size (original:
	// 500); base assemblies draw from the pool round-robin, so parts
	// are shared across branches.
	NumCompParts int
	// ConnPerPart is the out-degree of each atomic part (original: 3).
	ConnPerPart int
}

// Default is the scaled default configuration used by tests and benches.
func Default() Params {
	return Params{
		Levels:        4,
		Fanout:        3,
		CompPerBase:   3,
		AtomicPerComp: 20,
		NumCompParts:  30,
		ConnPerPart:   3,
	}
}

// Validate reports a descriptive error for unusable parameters.
func (p Params) Validate() error {
	if p.Levels < 2 || p.Fanout < 1 || p.CompPerBase < 1 ||
		p.AtomicPerComp < 1 || p.NumCompParts < 1 || p.ConnPerPart < 0 {
		return fmt.Errorf("sb7: invalid params %+v", p)
	}
	return nil
}

// Atomic part block layout.
const (
	apID        = 0
	apX         = 1
	apY         = 2
	apBuildDate = 3
	apConnBase  = 4 // ConnPerPart connection addresses follow
)

// Composite part block layout.
const (
	cpID        = 0
	cpBuildDate = 1
	cpNParts    = 2
	cpParts     = 3 // address of the parts pointer array
	cpDoc       = 4 // address of the documentation block
	cpRootPart  = 5 // address of the root atomic part

	cpWords = 6
)

// Base assembly block layout.
const (
	baID    = 0
	baNComp = 1
	baComps = 2 // address of the composite-part pointer array

	baWords = 3
)

// Complex assembly block layout.
const (
	caID    = 0
	caLevel = 1
	caNSub  = 2
	caSubs  = 3 // address of the subassembly pointer array
	caIsCpx = 4 // 1 if subassemblies are complex, 0 if base

	caWords = 5
)

// Module block layout.
const (
	mRoot      = 0
	mBuildDate = 1
	mTraversed = 2 // counter bumped by write traversals (shared hot word)

	mWords = 3
)

// Bench is a built STMBench7 instance. The struct itself is immutable
// shared metadata; all state lives in transactional memory.
type Bench struct {
	P      Params
	Module tm.Addr

	// rootAddr caches the design root (immutable after Build).
	rootAddr tm.Addr

	// TopBranches are the root's Fanout subassembly addresses (the
	// 3-way split of the paper's traversals).
	TopBranches []tm.Addr
	// SecondBranches are the Fanout² second-level subassemblies (the
	// 9-way split).
	SecondBranches []tm.Addr

	// TotalAtomicVisits is the number of atomic-part visits a full
	// traversal performs (with pool sharing, composite parts are
	// visited once per referencing base assembly).
	TotalAtomicVisits int
	// TotalCompositeVisits is the number of composite-part visits a
	// full traversal performs; each committed write traversal updates
	// exactly one atomic part date per composite visit.
	TotalCompositeVisits int
}

// Build allocates and links the structure (call on a Direct handle or
// inside a transaction).
func Build(tx tm.Tx, p Params) (*Bench, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := &Bench{P: p}

	// Composite-part pool with deterministic atomic-part graphs.
	pool := make([]tm.Addr, p.NumCompParts)
	for i := range pool {
		pool[i] = buildCompositePart(tx, p, int64(i))
	}

	nextComp := 0
	takeComp := func() tm.Addr {
		a := pool[nextComp%len(pool)]
		nextComp++
		return a
	}

	var nextID int64 = 1
	var buildAssembly func(level int) tm.Addr
	buildAssembly = func(level int) tm.Addr {
		if level == 1 {
			ba := tx.Alloc(baWords)
			tm.StoreInt64(tx, ba+baID, nextID)
			nextID++
			tm.StoreInt64(tx, ba+baNComp, int64(p.CompPerBase))
			arr := tx.Alloc(p.CompPerBase)
			for i := 0; i < p.CompPerBase; i++ {
				tm.StoreAddr(tx, arr+tm.Addr(i), takeComp())
			}
			tm.StoreAddr(tx, ba+baComps, arr)
			return ba
		}
		ca := tx.Alloc(caWords)
		tm.StoreInt64(tx, ca+caID, nextID)
		nextID++
		tm.StoreInt64(tx, ca+caLevel, int64(level))
		tm.StoreInt64(tx, ca+caNSub, int64(p.Fanout))
		arr := tx.Alloc(p.Fanout)
		for i := 0; i < p.Fanout; i++ {
			tm.StoreAddr(tx, arr+tm.Addr(i), buildAssembly(level-1))
		}
		tm.StoreAddr(tx, ca+caSubs, arr)
		if level-1 == 1 {
			tx.Store(ca+caIsCpx, 0)
		} else {
			tx.Store(ca+caIsCpx, 1)
		}
		return ca
	}

	root := buildAssembly(p.Levels)
	mod := tx.Alloc(mWords)
	tm.StoreAddr(tx, mod+mRoot, root)
	tx.Store(mod+mBuildDate, 0)
	tx.Store(mod+mTraversed, 0)
	b.Module = mod
	b.rootAddr = root

	// Cache branch addresses for task splitting.
	if p.Levels >= 2 {
		subs := tm.LoadAddr(tx, root+caSubs)
		for i := 0; i < p.Fanout; i++ {
			b.TopBranches = append(b.TopBranches, tm.LoadAddr(tx, subs+tm.Addr(i)))
		}
	}
	if p.Levels >= 3 {
		for _, t1 := range b.TopBranches {
			subs := tm.LoadAddr(tx, t1+caSubs)
			for i := 0; i < p.Fanout; i++ {
				b.SecondBranches = append(b.SecondBranches, tm.LoadAddr(tx, subs+tm.Addr(i)))
			}
		}
	}

	baseCount := 1
	for l := 1; l < p.Levels; l++ {
		baseCount *= p.Fanout
	}
	b.TotalAtomicVisits = baseCount * p.CompPerBase * p.AtomicPerComp
	b.TotalCompositeVisits = baseCount * p.CompPerBase
	return b, nil
}

func buildCompositePart(tx tm.Tx, p Params, id int64) tm.Addr {
	cp := tx.Alloc(cpWords)
	tm.StoreInt64(tx, cp+cpID, id)
	tx.Store(cp+cpBuildDate, 0)
	tm.StoreInt64(tx, cp+cpNParts, int64(p.AtomicPerComp))
	tm.StoreAddr(tx, cp+cpDoc, newDocument(tx, id,
		fmt.Sprintf("composite part #%d: original unchanged documentation text", id)))
	arr := tx.Alloc(p.AtomicPerComp)
	parts := make([]tm.Addr, p.AtomicPerComp)
	for i := range parts {
		ap := tx.Alloc(apConnBase + p.ConnPerPart)
		tm.StoreInt64(tx, ap+apID, id*int64(p.AtomicPerComp)+int64(i))
		tx.Store(ap+apX, uint64(i))
		tx.Store(ap+apY, uint64(i*i))
		tx.Store(ap+apBuildDate, 0)
		parts[i] = ap
		tm.StoreAddr(tx, arr+tm.Addr(i), ap)
	}
	// Deterministic expander-ish connections.
	for i, ap := range parts {
		for j := 0; j < p.ConnPerPart; j++ {
			to := parts[(i*p.ConnPerPart+j+1)%len(parts)]
			tm.StoreAddr(tx, ap+apConnBase+tm.Addr(j), to)
		}
	}
	tm.StoreAddr(tx, cp+cpParts, arr)
	tm.StoreAddr(tx, cp+cpRootPart, parts[0])
	return cp
}
