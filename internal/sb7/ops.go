package sb7

import (
	"fmt"

	"tlstm/internal/tm"
)

// The remaining STMBench7 operation families. The paper's figures run
// long traversals only ("Most of the remainder operations were either
// non-divisible or very short, so they would not benefit from
// parallelization too much", §4), but a faithful port provides them:
// short traversals, queries over the composite-part index, text
// operations on documents, and structural modifications. They are used
// by tests and by the extended benchmarks.

// CompositeByIndex returns the pool composite part with the given index
// (0 ≤ i < NumCompParts) by walking the structure's first referencing
// base assembly — the original resolves composite parts through an id
// index; we expose the pool directly for the same effect.
func (b *Bench) CompositeByIndex(tx tm.Tx, i int) (tm.Addr, error) {
	if i < 0 || i >= b.P.NumCompParts {
		return tm.NilAddr, fmt.Errorf("sb7: composite index %d out of range [0,%d)", i, b.P.NumCompParts)
	}
	// The pool assigns composite parts to base assemblies round-robin;
	// find the composite part with id == i by scanning one base
	// assembly chain. Pool ids are assigned densely at build time, so
	// locate it through any base assembly that references it:
	// reference k of base assembly j is pool[(j*CompPerBase+k) % N].
	per := b.P.CompPerBase
	j := i / per
	k := i % per
	// walk to base assembly j (left-to-right DFS order).
	ba, err := b.baseAssembly(tx, j)
	if err != nil {
		return tm.NilAddr, err
	}
	comps := tm.LoadAddr(tx, ba+baComps)
	return tm.LoadAddr(tx, comps+tm.Addr(k)), nil
}

// baseAssembly returns the idx-th base assembly in DFS order.
func (b *Bench) baseAssembly(tx tm.Tx, idx int) (tm.Addr, error) {
	node := b.rootAddr
	level := b.P.Levels
	for level > 1 {
		n := int(tm.LoadInt64(tx, node+caNSub))
		subSize := 1
		for l := 1; l < level-1; l++ {
			subSize *= b.P.Fanout
		}
		child := idx / subSize
		if child >= n {
			return tm.NilAddr, fmt.Errorf("sb7: base assembly %d out of range", idx)
		}
		idx -= child * subSize
		subs := tm.LoadAddr(tx, node+caSubs)
		node = tm.LoadAddr(tx, subs+tm.Addr(child))
		level--
	}
	return node, nil
}

// ShortTraversalPath is STMBench7's ST family shape: descend one random
// root-to-leaf path and scan a single composite part, returning the
// number of atomic parts touched.
func (b *Bench) ShortTraversalPath(tx tm.Tx, seed uint64) int {
	node := b.rootAddr
	level := b.P.Levels
	for level > 1 {
		n := int(tm.LoadInt64(tx, node+caNSub))
		subs := tm.LoadAddr(tx, node+caSubs)
		node = tm.LoadAddr(tx, subs+tm.Addr(mixSeed(seed+uint64(level))%uint64(n)))
		level--
	}
	nc := int(tm.LoadInt64(tx, node+baNComp))
	comps := tm.LoadAddr(tx, node+baComps)
	cp := tm.LoadAddr(tx, comps+tm.Addr(mixSeed(seed)%uint64(nc)))
	return b.scanComposite(tx, cp, false, 0)
}

// QueryPartByID is the Q family shape: look up one composite part and
// fold its atomic parts' coordinates.
func (b *Bench) QueryPartByID(tx tm.Tx, id int) (uint64, error) {
	cp, err := b.CompositeByIndex(tx, id)
	if err != nil {
		return 0, err
	}
	np := int(tm.LoadInt64(tx, cp+cpNParts))
	arr := tm.LoadAddr(tx, cp+cpParts)
	var sum uint64
	for i := 0; i < np; i++ {
		ap := tm.LoadAddr(tx, arr+tm.Addr(i))
		sum += tx.Load(ap+apX) + tx.Load(ap+apY)
	}
	return sum, nil
}

// StructuralAddPart is the SM family's "add atomic part": grow one
// composite part's graph by a fresh atomic part connected to the root
// part. Returns the new part count.
func (b *Bench) StructuralAddPart(tx tm.Tx, compIdx int) (int, error) {
	cp, err := b.CompositeByIndex(tx, compIdx)
	if err != nil {
		return 0, err
	}
	np := int(tm.LoadInt64(tx, cp+cpNParts))
	oldArr := tm.LoadAddr(tx, cp+cpParts)

	ap := tx.Alloc(apConnBase + b.P.ConnPerPart)
	tm.StoreInt64(tx, ap+apID, int64(np))
	tx.Store(ap+apX, uint64(np))
	tx.Store(ap+apY, uint64(np*np))
	tx.Store(ap+apBuildDate, 0)
	root := tm.LoadAddr(tx, cp+cpRootPart)
	for j := 0; j < b.P.ConnPerPart; j++ {
		tm.StoreAddr(tx, ap+apConnBase+tm.Addr(j), root)
	}

	newArr := tx.Alloc(np + 1)
	for i := 0; i < np; i++ {
		tm.StoreAddr(tx, newArr+tm.Addr(i), tm.LoadAddr(tx, oldArr+tm.Addr(i)))
	}
	tm.StoreAddr(tx, newArr+tm.Addr(np), ap)
	tm.StoreAddr(tx, cp+cpParts, newArr)
	tm.StoreInt64(tx, cp+cpNParts, int64(np+1))
	tx.Free(oldArr)
	return np + 1, nil
}

// StructuralRemovePart undoes StructuralAddPart: drop the last atomic
// part of the composite (never below one part). Returns the new count.
func (b *Bench) StructuralRemovePart(tx tm.Tx, compIdx int) (int, error) {
	cp, err := b.CompositeByIndex(tx, compIdx)
	if err != nil {
		return 0, err
	}
	np := int(tm.LoadInt64(tx, cp+cpNParts))
	if np <= 1 {
		return np, nil
	}
	oldArr := tm.LoadAddr(tx, cp+cpParts)
	last := tm.LoadAddr(tx, oldArr+tm.Addr(np-1))

	newArr := tx.Alloc(np - 1)
	for i := 0; i < np-1; i++ {
		tm.StoreAddr(tx, newArr+tm.Addr(i), tm.LoadAddr(tx, oldArr+tm.Addr(i)))
	}
	tm.StoreAddr(tx, cp+cpParts, newArr)
	tm.StoreInt64(tx, cp+cpNParts, int64(np-1))
	tx.Free(oldArr)
	tx.Free(last)
	return np - 1, nil
}

// PartCount reports the composite's current atomic-part count.
func (b *Bench) PartCount(tx tm.Tx, compIdx int) (int, error) {
	cp, err := b.CompositeByIndex(tx, compIdx)
	if err != nil {
		return 0, err
	}
	return int(tm.LoadInt64(tx, cp+cpNParts)), nil
}
