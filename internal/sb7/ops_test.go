package sb7

import (
	"strings"
	"testing"

	"tlstm/internal/core"
	"tlstm/internal/stm"
)

func TestCompositeByIndex(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	seen := map[int64]bool{}
	for i := 0; i < b.P.NumCompParts; i++ {
		cp, err := b.CompositeByIndex(d, i)
		if err != nil {
			t.Fatal(err)
		}
		id := d.Load(cp + cpID)
		if int(id) != i {
			t.Fatalf("CompositeByIndex(%d) has id %d", i, id)
		}
		seen[int64(id)] = true
	}
	if len(seen) != b.P.NumCompParts {
		t.Fatalf("resolved %d distinct composites, want %d", len(seen), b.P.NumCompParts)
	}
	if _, err := b.CompositeByIndex(d, -1); err == nil {
		t.Fatal("negative index must error")
	}
	if _, err := b.CompositeByIndex(d, b.P.NumCompParts); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestBaseAssemblyDFSOrder(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	ids := map[int64]bool{}
	baseCount := 9 // 3^(3-1)
	for i := 0; i < baseCount; i++ {
		ba, err := b.baseAssembly(d, i)
		if err != nil {
			t.Fatal(err)
		}
		id := int64(d.Load(ba + baID))
		if ids[id] {
			t.Fatalf("base assembly %d resolved twice", id)
		}
		ids[id] = true
	}
}

func TestShortTraversalTouchesOneComposite(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	for seed := uint64(0); seed < 20; seed++ {
		n := b.ShortTraversalPath(d, seed)
		if n != b.P.AtomicPerComp {
			t.Fatalf("seed %d: touched %d parts, want %d", seed, n, b.P.AtomicPerComp)
		}
	}
}

func TestQueryPartByID(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	// x=i, y=i² per part: sum over i in [0,AtomicPerComp).
	var want uint64
	for i := 0; i < b.P.AtomicPerComp; i++ {
		want += uint64(i) + uint64(i*i)
	}
	got, err := b.QueryPartByID(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("QueryPartByID = %d, want %d", got, want)
	}
}

func TestStructuralAddRemove(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	live0 := d.Al.LiveBlocks()
	n0, _ := b.PartCount(d, 1)

	n1, err := b.StructuralAddPart(d, 1)
	if err != nil || n1 != n0+1 {
		t.Fatalf("add: %d, %v", n1, err)
	}
	n2, err := b.StructuralRemovePart(d, 1)
	if err != nil || n2 != n0 {
		t.Fatalf("remove: %d, %v", n2, err)
	}
	if got := d.Al.LiveBlocks(); got != live0 {
		t.Fatalf("blocks leaked: %d != %d", got, live0)
	}
	// Scans still work after structural churn.
	if got := b.FullRead(d); got != b.TotalAtomicVisits {
		t.Fatalf("FullRead after churn = %d, want %d", got, b.TotalAtomicVisits)
	}
}

func TestStructuralRemoveFloor(t *testing.T) {
	d := direct()
	p := tiny()
	p.AtomicPerComp = 1
	b, _ := Build(d, p)
	n, err := b.StructuralRemovePart(d, 0)
	if err != nil || n != 1 {
		t.Fatalf("remove below floor: %d, %v", n, err)
	}
}

func TestDocumentSearchAndReplace(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	cp, _ := b.CompositeByIndex(d, 0)

	if !b.DocumentContains(d, cp, "original") {
		t.Fatal("expected token missing")
	}
	if b.DocumentContains(d, cp, "zebra") {
		t.Fatal("unexpected token found")
	}
	if !b.DocumentReplace(d, cp, "original", "modified") {
		t.Fatal("replace failed")
	}
	if b.DocumentContains(d, cp, "original") || !b.DocumentContains(d, cp, "modified") {
		t.Fatal("replace did not apply")
	}
	// Length-mismatched replacement is rejected.
	if b.DocumentReplace(d, cp, "modified", "x") {
		t.Fatal("length-mismatched replace must be rejected")
	}
	text := b.DocumentText(d, cp)
	if !strings.Contains(text, "modified unchanged") {
		t.Fatalf("text corrupted: %q", text)
	}
}

// Mixed short operations under the SwissTM baseline keep structural
// invariants.
func TestShortOpsUnderSTM(t *testing.T) {
	rt := stm.New(stm.WithLockTableBits(14))
	b, err := Build(rt.Direct(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		idx := i % b.P.NumCompParts
		switch i % 4 {
		case 0:
			rt.Atomic(nil, func(tx *stm.Tx) { _, _ = b.StructuralAddPart(tx, idx) })
		case 1:
			rt.Atomic(nil, func(tx *stm.Tx) { _, _ = b.StructuralRemovePart(tx, idx) })
		case 2:
			rt.Atomic(nil, func(tx *stm.Tx) { b.ShortTraversalPath(tx, uint64(i)) })
		default:
			rt.Atomic(nil, func(tx *stm.Tx) { _, _ = b.QueryPartByID(tx, idx) })
		}
	}
	// Every composite still scannable and within sane part counts.
	d := rt.Direct()
	for i := 0; i < b.P.NumCompParts; i++ {
		n, err := b.PartCount(d, i)
		if err != nil || n < 1 {
			t.Fatalf("composite %d: count %d, err %v", i, n, err)
		}
	}
}

// Short operations as speculative tasks: a transaction bundling a query
// task and a structural task must stay atomic under TLSTM.
func TestShortOpsUnderTLSTM(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 2, LockTableBits: 14})
	b, err := Build(rt.Direct(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	thr := rt.NewThread()
	for i := 0; i < 30; i++ {
		idx := i % b.P.NumCompParts
		err := thr.Atomic(
			func(tk *core.Task) { _, _ = b.StructuralAddPart(tk, idx) },
			func(tk *core.Task) {
				// Task 2 must observe task 1's structural change.
				n, err := b.PartCount(tk, idx)
				if err != nil {
					panic(err)
				}
				if n < 2 {
					panic("structural change not forwarded to future task")
				}
				_, _ = b.StructuralRemovePart(tk, idx)
			},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	thr.Sync()
	d := rt.Direct()
	for i := 0; i < b.P.NumCompParts; i++ {
		n, err := b.PartCount(d, i)
		if err != nil || n != b.P.AtomicPerComp {
			t.Fatalf("composite %d: count %d (want %d), err %v", i, n, b.P.AtomicPerComp, err)
		}
	}
}
