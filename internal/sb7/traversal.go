package sb7

import (
	"fmt"

	"tlstm/internal/tm"
)

// Long traversals (STMBench7's T1/T2 family). The read traversal visits
// every assembly, composite part and atomic part reachable from the
// given subtree root and folds a checksum; the write traversal
// additionally updates every atomic part's build date and the module's
// build metadata — the paper's high-intra-conflict write workload.
//
// A full traversal runs over the design root; the speculative split
// runs one traversal per branch (TopBranches for 3 tasks,
// SecondBranches for 9), exactly how the paper decomposes "Long
// Traversals" ("it made sense to split [them] in multiples of three
// tasks", §4).

// TraverseRead walks the subtree rooted at node (a complex or base
// assembly at the given level; use LevelsOfTop/… helpers) and returns
// the number of atomic parts visited.
func (b *Bench) TraverseRead(tx tm.Tx, node tm.Addr, level int) int {
	if level == 1 {
		return b.scanBase(tx, node, false, 0)
	}
	n := int(tm.LoadInt64(tx, node+caNSub))
	subs := tm.LoadAddr(tx, node+caSubs)
	total := 0
	for i := 0; i < n; i++ {
		total += b.TraverseRead(tx, tm.LoadAddr(tx, subs+tm.Addr(i)), level-1)
	}
	return total
}

// TraverseWrite is the write long traversal (STMBench7's T2a shape): it
// reads everything a read traversal reads, updates the build date of
// *one* atomic part per composite part visited (the part index derives
// from the traversal seed, as the original rotates dates), and bumps
// the module's traversal counter and build date once per call — per
// task when the traversal is split.
//
// Two conflict properties follow, both central to the paper's Figure 2
// discussion: tasks of one split traversal share the seed, so they
// update the same atomic parts of the composite parts shared across
// branches (plus the module words) — high *intra*-thread conflict; and
// traversals with different seeds mostly touch different parts, so
// *inter*-thread write/write overlap stays bounded, as in the original
// benchmark where T2a touches a sliver of the structure.
func (b *Bench) TraverseWrite(tx tm.Tx, node tm.Addr, level int, seed uint64) int {
	count := b.traverseWrite(tx, node, level, seed)
	tx.Store(b.Module+mTraversed, tx.Load(b.Module+mTraversed)+1)
	tx.Store(b.Module+mBuildDate, tx.Load(b.Module+mBuildDate)+1)
	return count
}

func (b *Bench) traverseWrite(tx tm.Tx, node tm.Addr, level int, seed uint64) int {
	if level == 1 {
		return b.scanBase(tx, node, true, seed)
	}
	n := int(tm.LoadInt64(tx, node+caNSub))
	subs := tm.LoadAddr(tx, node+caSubs)
	total := 0
	for i := 0; i < n; i++ {
		total += b.traverseWrite(tx, tm.LoadAddr(tx, subs+tm.Addr(i)), level-1, seed)
	}
	return total
}

// scanBase visits one base assembly's composite parts and their atomic
// part graphs.
func (b *Bench) scanBase(tx tm.Tx, ba tm.Addr, write bool, seed uint64) int {
	nc := int(tm.LoadInt64(tx, ba+baNComp))
	comps := tm.LoadAddr(tx, ba+baComps)
	total := 0
	for i := 0; i < nc; i++ {
		cp := tm.LoadAddr(tx, comps+tm.Addr(i))
		total += b.scanComposite(tx, cp, write, seed)
	}
	return total
}

func mixSeed(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (b *Bench) scanComposite(tx tm.Tx, cp tm.Addr, write bool, seed uint64) int {
	np := int(tm.LoadInt64(tx, cp+cpNParts))
	arr := tm.LoadAddr(tx, cp+cpParts)
	count := 0
	var updateIdx int
	if write {
		id := uint64(tm.LoadInt64(tx, cp+cpID))
		updateIdx = int(mixSeed(seed^(id*0x9e3779b97f4a7c15)) % uint64(np))
		// A fixed quarter of the composite parts also get their own
		// build date stamped (T2 updates composite metadata); this
		// subset is the same for every write traversal, so concurrent
		// write transactions overlap on it — the original's traversals
		// share exactly this kind of metadata footprint.
		if mixSeed(id)%4 == 0 {
			tx.Store(cp+cpBuildDate, tx.Load(cp+cpBuildDate)+1)
		}
	}
	for i := 0; i < np; i++ {
		ap := tm.LoadAddr(tx, arr+tm.Addr(i))
		// Touch the part as the original traversal does: read its
		// coordinates and date, follow its connections' ids.
		x := tx.Load(ap + apX)
		y := tx.Load(ap + apY)
		_ = x + y
		for j := 0; j < b.P.ConnPerPart; j++ {
			to := tm.LoadAddr(tx, ap+apConnBase+tm.Addr(j))
			_ = tx.Load(to + apID)
		}
		if write && i == updateIdx {
			tx.Store(ap+apBuildDate, tx.Load(ap+apBuildDate)+1)
		} else {
			_ = tx.Load(ap + apBuildDate)
		}
		count++
	}
	return count
}

// SplitRoots returns the subtree roots and their level for an n-way
// traversal split: 1 → the design root, Fanout → the top branches,
// Fanout² → the second-level branches (the paper's 3- and 9-task
// splits). It panics on unsupported n, which is a programming error.
func (b *Bench) SplitRoots(n int) ([]tm.Addr, int) {
	switch n {
	case 1:
		// The root address is immutable after Build; read it through a
		// throwaway traversal-time load is unnecessary.
		return []tm.Addr{b.rootAddr}, b.P.Levels
	case b.P.Fanout:
		return b.TopBranches, b.TopLevel()
	case b.P.Fanout * b.P.Fanout:
		return b.SecondBranches, b.SecondLevel()
	default:
		panic(fmt.Sprintf("sb7: unsupported split %d (want 1, %d or %d)",
			n, b.P.Fanout, b.P.Fanout*b.P.Fanout))
	}
}

// TopLevel returns the assembly level of the entries of TopBranches.
func (b *Bench) TopLevel() int { return b.P.Levels - 1 }

// SecondLevel returns the assembly level of the entries of SecondBranches.
func (b *Bench) SecondLevel() int { return b.P.Levels - 2 }

// Root returns the design root assembly address.
func (b *Bench) Root(tx tm.Tx) tm.Addr { return tm.LoadAddr(tx, b.Module+mRoot) }

// FullRead runs the unsplit read long traversal.
func (b *Bench) FullRead(tx tm.Tx) int {
	return b.TraverseRead(tx, b.Root(tx), b.P.Levels)
}

// FullWrite runs the unsplit write long traversal with the given seed.
func (b *Bench) FullWrite(tx tm.Tx, seed uint64) int {
	return b.TraverseWrite(tx, b.Root(tx), b.P.Levels, seed)
}

// SumBuildDates folds every atomic part's build date (verification: a
// committed write traversal contributes exactly TotalAtomicVisits,
// counting pool sharing multiplicity).
func (b *Bench) SumBuildDates(tx tm.Tx) uint64 {
	var sum uint64
	seen := make(map[tm.Addr]uint64)
	var walk func(node tm.Addr, level int)
	walk = func(node tm.Addr, level int) {
		if level == 1 {
			nc := int(tm.LoadInt64(tx, node+baNComp))
			comps := tm.LoadAddr(tx, node+baComps)
			for i := 0; i < nc; i++ {
				cp := tm.LoadAddr(tx, comps+tm.Addr(i))
				if _, dup := seen[cp]; dup {
					continue
				}
				np := int(tm.LoadInt64(tx, cp+cpNParts))
				arr := tm.LoadAddr(tx, cp+cpParts)
				var s uint64
				for j := 0; j < np; j++ {
					ap := tm.LoadAddr(tx, arr+tm.Addr(j))
					s += tx.Load(ap + apBuildDate)
				}
				seen[cp] = s
				sum += s
			}
			return
		}
		n := int(tm.LoadInt64(tx, node+caNSub))
		subs := tm.LoadAddr(tx, node+caSubs)
		for i := 0; i < n; i++ {
			walk(tm.LoadAddr(tx, subs+tm.Addr(i)), level-1)
		}
	}
	walk(b.Root(tx), b.P.Levels)
	return sum
}

// TraversedCount reads the module's write-traversal counter.
func (b *Bench) TraversedCount(tx tm.Tx) uint64 { return tx.Load(b.Module + mTraversed) }
