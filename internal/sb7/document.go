package sb7

import "tlstm/internal/tm"

// Documents: every composite part owns a documentation object (title +
// text) stored *in transactional memory*, as in the original STMBench7,
// where text operations (T3 family) search and replace inside it. Text
// is packed 8 bytes per word.

// Document block layout.
const (
	docID       = 0
	docTextLen  = 1
	docTextAddr = 2

	docWords = 3
)

// packText writes s into freshly allocated words, 8 bytes per word,
// returning the block address.
func packText(tx tm.Tx, s string) (tm.Addr, int) {
	n := (len(s) + 7) / 8
	if n == 0 {
		n = 1
	}
	blk := tx.Alloc(n)
	for w := 0; w < n; w++ {
		var word uint64
		for b := 0; b < 8; b++ {
			i := w*8 + b
			if i < len(s) {
				word |= uint64(s[i]) << (8 * b)
			}
		}
		tx.Store(blk+tm.Addr(w), word)
	}
	return blk, len(s)
}

// unpackText reads length bytes of packed text starting at blk.
func unpackText(tx tm.Tx, blk tm.Addr, length int) string {
	buf := make([]byte, 0, length)
	words := (length + 7) / 8
	for w := 0; w < words; w++ {
		word := tx.Load(blk + tm.Addr(w))
		for b := 0; b < 8 && len(buf) < length; b++ {
			buf = append(buf, byte(word>>(8*b)))
		}
	}
	return string(buf)
}

// newDocument allocates a document for composite part id.
func newDocument(tx tm.Tx, id int64, text string) tm.Addr {
	d := tx.Alloc(docWords)
	tm.StoreInt64(tx, d+docID, id)
	blk, n := packText(tx, text)
	tm.StoreInt64(tx, d+docTextLen, int64(n))
	tm.StoreAddr(tx, d+docTextAddr, blk)
	return d
}

// DocumentText reads the full text of the document attached to the
// composite part at cp.
func (b *Bench) DocumentText(tx tm.Tx, cp tm.Addr) string {
	doc := tm.LoadAddr(tx, cp+cpDoc)
	n := int(tm.LoadInt64(tx, doc+docTextLen))
	return unpackText(tx, tm.LoadAddr(tx, doc+docTextAddr), n)
}

// DocumentContains is T3a's core: scan the composite part's document
// for a byte pattern, transactionally (reads every text word).
func (b *Bench) DocumentContains(tx tm.Tx, cp tm.Addr, pattern string) bool {
	text := b.DocumentText(tx, cp)
	if len(pattern) == 0 {
		return true
	}
	for i := 0; i+len(pattern) <= len(text); i++ {
		if text[i:i+len(pattern)] == pattern {
			return true
		}
	}
	return false
}

// DocumentReplace is T3b/T3c's core: replace the first occurrence of
// old with new (same length, as the original swaps fixed tokens),
// returning whether a replacement happened.
func (b *Bench) DocumentReplace(tx tm.Tx, cp tm.Addr, oldPat, newPat string) bool {
	if len(oldPat) != len(newPat) || len(oldPat) == 0 {
		return false
	}
	doc := tm.LoadAddr(tx, cp+cpDoc)
	n := int(tm.LoadInt64(tx, doc+docTextLen))
	blk := tm.LoadAddr(tx, doc+docTextAddr)
	text := unpackText(tx, blk, n)
	idx := -1
	for i := 0; i+len(oldPat) <= len(text); i++ {
		if text[i:i+len(oldPat)] == oldPat {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	// Rewrite only the affected words.
	for i := idx; i < idx+len(newPat); i++ {
		w := i / 8
		bshift := uint(8 * (i % 8))
		word := tx.Load(blk + tm.Addr(w))
		word = (word &^ (0xff << bshift)) | uint64(newPat[i-idx])<<bshift
		tx.Store(blk+tm.Addr(w), word)
	}
	return true
}
