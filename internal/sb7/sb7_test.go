package sb7

import (
	"sync"
	"testing"

	"tlstm/internal/core"
	"tlstm/internal/mem"
	"tlstm/internal/stm"
	"tlstm/internal/tm"
)

func direct() mem.Direct {
	s := mem.NewStore()
	return mem.Direct{Mem: s, Al: mem.NewAllocator(s)}
}

func tiny() Params {
	return Params{Levels: 3, Fanout: 3, CompPerBase: 2, AtomicPerComp: 5, NumCompParts: 4, ConnPerPart: 2}
}

func TestBuildShape(t *testing.T) {
	d := direct()
	b, err := Build(d, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.TopBranches) != 3 {
		t.Fatalf("TopBranches = %d, want 3", len(b.TopBranches))
	}
	if len(b.SecondBranches) != 9 {
		t.Fatalf("SecondBranches = %d, want 9", len(b.SecondBranches))
	}
	// 3^(3-1)=9 base assemblies × 2 comps × 5 parts = 90 visits.
	if b.TotalAtomicVisits != 90 {
		t.Fatalf("TotalAtomicVisits = %d, want 90", b.TotalAtomicVisits)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	d := direct()
	if _, err := Build(d, Params{}); err == nil {
		t.Fatal("empty params must be rejected")
	}
}

func TestFullReadCountsEverything(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	if got := b.FullRead(d); got != b.TotalAtomicVisits {
		t.Fatalf("FullRead = %d, want %d", got, b.TotalAtomicVisits)
	}
}

func TestSplitTraversalCoversTree(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	sum3 := 0
	for _, br := range b.TopBranches {
		sum3 += b.TraverseRead(d, br, b.TopLevel())
	}
	if sum3 != b.TotalAtomicVisits {
		t.Fatalf("3-way split covers %d, want %d", sum3, b.TotalAtomicVisits)
	}
	sum9 := 0
	for _, br := range b.SecondBranches {
		sum9 += b.TraverseRead(d, br, b.SecondLevel())
	}
	if sum9 != b.TotalAtomicVisits {
		t.Fatalf("9-way split covers %d, want %d", sum9, b.TotalAtomicVisits)
	}
}

func TestWriteTraversalUpdatesDates(t *testing.T) {
	d := direct()
	b, _ := Build(d, tiny())
	if got := b.FullWrite(d, 1); got != b.TotalAtomicVisits {
		t.Fatalf("FullWrite visited %d, want %d", got, b.TotalAtomicVisits)
	}
	if sum := b.SumBuildDates(d); sum == 0 {
		t.Fatal("write traversal did not update dates")
	}
	if b.TraversedCount(d) != 1 {
		t.Fatalf("TraversedCount = %d, want 1", b.TraversedCount(d))
	}
}

// Under the SwissTM baseline, concurrent full write traversals and read
// traversals must keep the date-sum equal to committed-writes × visits.
func TestConcurrentTraversalsSTM(t *testing.T) {
	rt := stm.New(stm.WithLockTableBits(16))
	b, err := Build(rt.Direct(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 2, 5
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rt.Atomic(nil, func(tx *stm.Tx) { b.FullWrite(tx, uint64(i)) })
			}
		}()
	}
	readerDone := make(chan int, 1)
	go func() {
		bad := 0
		for i := 0; i < 10; i++ {
			var visits int
			rt.Atomic(nil, func(tx *stm.Tx) { visits = b.FullRead(tx) })
			if visits != b.TotalAtomicVisits {
				bad++
			}
		}
		readerDone <- bad
	}()
	wg.Wait()
	if bad := <-readerDone; bad != 0 {
		t.Fatalf("%d inconsistent read traversals", bad)
	}

	d := rt.Direct()
	// Every committed write traversal updates each pool part once per
	// reference; the global date sum must match exactly.
	wantTraversals := uint64(writers * perWriter)
	if got := b.TraversedCount(d); got != wantTraversals {
		t.Fatalf("TraversedCount = %d, want %d", got, wantTraversals)
	}
	if got := b.SumBuildDates(d); got != wantTraversals*uint64(b.TotalCompositeVisits) {
		t.Fatalf("SumBuildDates = %d, want %d", got, wantTraversals*uint64(b.TotalCompositeVisits))
	}
}

// Under TLSTM, a traversal split into three tasks (one per top branch)
// must behave exactly like the unsplit traversal.
func TestSplitTraversalTLSTM(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 3, LockTableBits: 16})
	b, err := Build(rt.Direct(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	thr := rt.NewThread()

	// Read traversal split three ways.
	counts := make([]int, 3)
	fns := make([]core.TaskFunc, 3)
	for i := 0; i < 3; i++ {
		i := i
		fns[i] = func(tk *core.Task) {
			counts[i] = b.TraverseRead(tk, b.TopBranches[i], b.TopLevel())
		}
	}
	if err := thr.Atomic(fns...); err != nil {
		t.Fatal(err)
	}
	if counts[0]+counts[1]+counts[2] != b.TotalAtomicVisits {
		t.Fatalf("split read covered %d, want %d", counts[0]+counts[1]+counts[2], b.TotalAtomicVisits)
	}

	// Write traversal split three ways: tasks conflict on shared pool
	// parts and module words, but the committed result must equal one
	// full write traversal per branch-task set.
	for i := 0; i < 3; i++ {
		i := i
		fns[i] = func(tk *core.Task) {
			b.TraverseWrite(tk, b.TopBranches[i], b.TopLevel(), 7)
		}
	}
	if err := thr.Atomic(fns...); err != nil {
		t.Fatal(err)
	}
	thr.Sync()

	d := rt.Direct()
	if got := b.TraversedCount(d); got != 3 {
		t.Fatalf("TraversedCount = %d, want 3 (one bump per task)", got)
	}
	if got := b.SumBuildDates(d); got != uint64(b.TotalCompositeVisits) {
		t.Fatalf("SumBuildDates = %d, want %d", got, b.TotalCompositeVisits)
	}
}

// Multi-thread TLSTM: write traversals from two threads with 3 tasks
// each; accounting must stay exact despite inter- and intra-thread
// conflicts.
func TestMultiThreadWriteTraversalsTLSTM(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 3, LockTableBits: 16})
	b, err := Build(rt.Direct(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	const threads, per = 2, 3
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fns := make([]core.TaskFunc, 3)
				for j := 0; j < 3; j++ {
					j := j
					fns[j] = func(tk *core.Task) {
						b.TraverseWrite(tk, b.TopBranches[j], b.TopLevel(), uint64(i))
					}
				}
				_ = thr.Atomic(fns...)
			}
			thr.Sync()
		}()
	}
	wg.Wait()

	d := rt.Direct()
	want := uint64(threads * per * 3) // one counter bump per task
	if got := b.TraversedCount(d); got != want {
		t.Fatalf("TraversedCount = %d, want %d", got, want)
	}
	wantDates := uint64(threads * per * b.TotalCompositeVisits)
	if got := b.SumBuildDates(d); got != wantDates {
		t.Fatalf("SumBuildDates = %d, want %d", got, wantDates)
	}
}

var _ tm.Tx = (*core.Task)(nil)
