// Package tm defines the word-addressed transactional-memory interface
// shared by the SwissTM baseline (internal/stm) and the TLSTM unified
// runtime (internal/core).
//
// Both runtimes are word-based, exactly like the SwissTM system the paper
// extends: every shared location is a 64-bit word identified by an Addr,
// and conflict detection happens on addresses mapped into a global lock
// table. Data structures (red-black trees, lists, hash tables, the
// Vacation and STMBench7 applications) are written once against the Tx
// interface and run unchanged on either runtime.
package tm

// Addr identifies one 64-bit word of transactional memory. Address 0 is
// the nil address and is never returned by an allocator.
type Addr uint64

// NilAddr is the zero Addr. It plays the role of a NULL pointer for
// word-encoded data structures.
const NilAddr Addr = 0

// Tx is the access handle a transaction (SwissTM) or speculative task
// (TLSTM) passes to transactional code. All loads and stores of shared
// state must go through it; the runtime may restart the enclosing
// transaction or task at any operation, so transactional code must be
// re-executable (no external side effects).
type Tx interface {
	// Load returns the value of the word at a, as observed at a point
	// consistent with every other value this transaction has read
	// (opacity). It may abort and restart the caller.
	Load(a Addr) uint64

	// Store buffers a write of v to the word at a. The write becomes
	// visible to other user-threads only when the enclosing
	// user-transaction commits. It may abort and restart the caller.
	Store(a Addr, v uint64)

	// Alloc returns the base address of a fresh block of n words,
	// zero-initialized. If the enclosing transaction aborts, the block
	// is returned to the allocator.
	Alloc(n int) Addr

	// Free releases the block with base address a. The release takes
	// effect only if the enclosing transaction commits.
	Free(a Addr)
}

// LoadInt64 reads the word at a and reinterprets it as an int64.
func LoadInt64(t Tx, a Addr) int64 { return int64(t.Load(a)) }

// StoreInt64 writes v to the word at a, reinterpreted as a uint64 word.
func StoreInt64(t Tx, a Addr, v int64) { t.Store(a, uint64(v)) }

// LoadAddr reads the word at a and reinterprets it as an Addr (a
// word-encoded pointer).
func LoadAddr(t Tx, a Addr) Addr { return Addr(t.Load(a)) }

// StoreAddr writes the word-encoded pointer p to the word at a.
func StoreAddr(t Tx, a Addr, p Addr) { t.Store(a, uint64(p)) }

// LoadBool reads the word at a as a boolean (non-zero is true).
func LoadBool(t Tx, a Addr) bool { return t.Load(a) != 0 }

// StoreBool writes b to the word at a (1 for true, 0 for false).
func StoreBool(t Tx, a Addr, b bool) {
	if b {
		t.Store(a, 1)
	} else {
		t.Store(a, 0)
	}
}
