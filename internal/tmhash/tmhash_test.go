package tmhash

import (
	"testing"
	"testing/quick"

	"tlstm/internal/mem"
)

func direct() mem.Direct {
	s := mem.NewStore()
	return mem.Direct{Mem: s, Al: mem.NewAllocator(s)}
}

func TestBasicOps(t *testing.T) {
	d := direct()
	m := New(d, 8)
	if !m.Insert(d, 1, 10) || !m.Insert(d, 9, 90) {
		t.Fatal("fresh inserts must report true")
	}
	if m.Insert(d, 1, 11) {
		t.Fatal("duplicate insert must report false")
	}
	if v, ok := m.Lookup(d, 1); !ok || v != 11 {
		t.Fatalf("Lookup(1) = %d,%v", v, ok)
	}
	if m.Len(d) != 2 {
		t.Fatalf("Len = %d, want 2", m.Len(d))
	}
	if !m.Delete(d, 9) || m.Delete(d, 9) {
		t.Fatal("delete behaviour wrong")
	}
}

func TestHandleRoundTrip(t *testing.T) {
	d := direct()
	m := New(d, 4)
	m.Insert(d, 42, 420)
	m2 := Handle(d, m.Head())
	if v, ok := m2.Lookup(d, 42); !ok || v != 420 {
		t.Fatal("Handle lost data")
	}
}

func TestEachVisitsAll(t *testing.T) {
	d := direct()
	m := New(d, 4)
	for k := int64(0); k < 40; k++ {
		m.Insert(d, k, uint64(k))
	}
	seen := map[int64]bool{}
	m.Each(d, func(k int64, v uint64) bool {
		if v != uint64(k) {
			t.Fatalf("value mismatch at %d", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 40 {
		t.Fatalf("Each visited %d keys, want 40", len(seen))
	}
}

func TestEachEarlyStop(t *testing.T) {
	d := direct()
	m := New(d, 4)
	for k := int64(0); k < 20; k++ {
		m.Insert(d, k, 1)
	}
	n := 0
	m.Each(d, func(k int64, v uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
}

func TestQuickOracle(t *testing.T) {
	f := func(keys []int16, buckets uint8) bool {
		d := direct()
		m := New(d, int(buckets%16)+1)
		oracle := map[int64]uint64{}
		for i, raw := range keys {
			k := int64(raw)
			if i%2 == 0 {
				m.Insert(d, k, uint64(i))
				oracle[k] = uint64(i)
			} else {
				_, existed := oracle[k]
				if m.Delete(d, k) != existed {
					return false
				}
				delete(oracle, k)
			}
		}
		if m.Len(d) != len(oracle) {
			return false
		}
		for k, want := range oracle {
			got, ok := m.Lookup(d, k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
