// Package tmhash implements a transactional fixed-bucket hash table over
// word-addressed transactional memory (separate chaining with the
// transactional sorted list). STAMP's Vacation keeps its customer table
// in a hash map; the fixed bucket count mirrors STAMP's non-resizing
// table and keeps conflict footprints per-bucket.
package tmhash

import (
	"tlstm/internal/tm"
	"tlstm/internal/tmlist"
)

// Map is a handle to a transactional hash map. The header block holds
// the bucket count followed by one list-header address per bucket.
type Map struct {
	head    tm.Addr
	buckets int
}

// New allocates a map with the given bucket count (rounded up to 1).
func New(tx tm.Tx, buckets int) Map {
	if buckets < 1 {
		buckets = 1
	}
	h := tx.Alloc(1 + buckets)
	tx.Store(h, uint64(buckets))
	for i := 0; i < buckets; i++ {
		l := tmlist.New(tx)
		tm.StoreAddr(tx, h+1+tm.Addr(i), l.Head())
	}
	return Map{head: h, buckets: buckets}
}

// Handle reconstructs a Map from its header address.
func Handle(tx tm.Tx, head tm.Addr) Map {
	return Map{head: head, buckets: int(tx.Load(head))}
}

// Head exposes the header address.
func (m Map) Head() tm.Addr { return m.head }

func (m Map) bucket(tx tm.Tx, k int64) tmlist.List {
	h := uint64(k) * 0x9e3779b97f4a7c15
	idx := h % uint64(m.buckets)
	return tmlist.Handle(tm.LoadAddr(tx, m.head+1+tm.Addr(idx)))
}

// Insert adds k→v; existing keys are updated and report false.
func (m Map) Insert(tx tm.Tx, k int64, v uint64) bool {
	return m.bucket(tx, k).Insert(tx, k, v)
}

// Lookup returns the value stored under k.
func (m Map) Lookup(tx tm.Tx, k int64) (uint64, bool) {
	return m.bucket(tx, k).Lookup(tx, k)
}

// Contains reports whether k is present.
func (m Map) Contains(tx tm.Tx, k int64) bool {
	return m.bucket(tx, k).Contains(tx, k)
}

// Delete removes k, reporting whether it was present.
func (m Map) Delete(tx tm.Tx, k int64) bool {
	return m.bucket(tx, k).Delete(tx, k)
}

// Len reports the number of elements (reads every bucket header).
func (m Map) Len(tx tm.Tx) int {
	n := 0
	for i := 0; i < m.buckets; i++ {
		n += tmlist.Handle(tm.LoadAddr(tx, m.head+1+tm.Addr(i))).Len(tx)
	}
	return n
}

// Each visits every key/value (bucket by bucket; order is arbitrary);
// fn returning false stops the walk.
func (m Map) Each(tx tm.Tx, fn func(k int64, v uint64) bool) {
	stop := false
	for i := 0; i < m.buckets && !stop; i++ {
		tmlist.Handle(tm.LoadAddr(tx, m.head+1+tm.Addr(i))).Each(tx, func(k int64, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
	}
}
