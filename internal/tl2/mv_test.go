package tl2

import (
	"testing"
)

// TestAtomicROMVServesDisplacedVersion: a TL2 reader parked across a
// conflicting commit is served the displaced value from the version
// ring — where plain TL2 (abort-on-newer-read, no extension) would have
// aborted — and commits wait-free.
func TestAtomicROMVServesDisplacedVersion(t *testing.T) {
	rt := New(16, WithMultiVersion(2))
	d := rt.Direct()
	base := d.Alloc(2)
	d.Store(base, 10)
	d.Store(base+1, 20)

	var st Stats
	attempts := 0
	rt.AtomicRO(&st, func(tx *Tx) {
		attempts++
		a := tx.Load(base)
		if attempts == 1 {
			rt.Atomic(nil, func(wtx *Tx) { wtx.Store(base+1, 99) })
		}
		b := tx.Load(base + 1)
		if a != 10 || b != 20 {
			t.Errorf("frozen snapshot broken: read (%d, %d), want (10, 20)", a, b)
		}
	})
	if attempts != 1 || st.Aborts != 0 || st.MVMisses != 0 || st.MVReads != 2 {
		t.Fatalf("attempts=%d aborts=%d mvMiss=%d mvRead=%d, want 1/0/0/2",
			attempts, st.Aborts, st.MVMisses, st.MVReads)
	}
	if st.ReadSetSizes.Max() != 0 {
		t.Fatalf("mv transaction logged reads: rset[%s]", st.ReadSetSizes)
	}
}

// TestAtomicROMVRingWraparoundFallsBack: overrun by K+2 commits, the
// reader must fall back to the validated path — never a torn or
// too-new value.
func TestAtomicROMVRingWraparoundFallsBack(t *testing.T) {
	const k, total = 2, 1000
	rt := New(16, WithMultiVersion(k))
	d := rt.Direct()
	base := d.Alloc(2)
	d.Store(base, total) // invariant: base + base+1 == total

	var st Stats
	attempts := 0
	rt.AtomicRO(&st, func(tx *Tx) {
		attempts++
		a := tx.Load(base)
		if attempts == 1 {
			for i := 0; i < k+2; i++ {
				rt.Atomic(nil, func(wtx *Tx) {
					wtx.Store(base, wtx.Load(base)-1)
					wtx.Store(base+1, wtx.Load(base+1)+1)
				})
			}
		}
		b := tx.Load(base + 1)
		if a+b != total {
			t.Errorf("inconsistent read after wraparound: %d + %d != %d", a, b, total)
		}
	})
	if attempts != 2 || st.MVMisses != 1 || st.Aborts != 1 {
		t.Fatalf("attempts=%d mvMiss=%d aborts=%d, want 2/1/1", attempts, st.MVMisses, st.Aborts)
	}
	if got := d.Load(base) + d.Load(base+1); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
}
