//go:build !race

package tl2

import (
	"testing"

	"tlstm/internal/tm"
)

// The pooled TL2 descriptor must make a warmed Atomic — including the
// sorted-lock commit — allocation-free. (!race: AllocsPerRun is not
// meaningful under the race detector.)
func TestAtomicZeroAllocWarmed(t *testing.T) {
	rt := New(8)
	d := rt.Direct()
	addrs := make([]tm.Addr, 8)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	body := func(tx *Tx) {
		for _, a := range addrs {
			tx.Store(a, tx.Load(a)+1)
		}
	}
	rt.Atomic(nil, body)
	if n := testing.AllocsPerRun(200, func() { rt.Atomic(nil, body) }); n != 0 {
		t.Fatalf("warmed TL2 Atomic allocates %.1f objects/op, want 0", n)
	}
}
