package tl2

import (
	"sync"
	"testing"

	"tlstm/internal/rbtree"
	"tlstm/internal/tm"
)

func TestReadWriteRoundTrip(t *testing.T) {
	rt := New(14)
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) {
		a = tx.Alloc(2)
		tx.Store(a, 5)
		tx.Store(a+1, 6)
		if tx.Load(a) != 5 || tx.Load(a+1) != 6 {
			t.Error("read-own-write failed")
		}
	})
	rt.Atomic(nil, func(tx *Tx) {
		if tx.Load(a) != 5 || tx.Load(a+1) != 6 {
			t.Error("committed values lost")
		}
	})
}

func TestConcurrentCounter(t *testing.T) {
	rt := New(14)
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	const workers, per = 6, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rt.Atomic(nil, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}()
	}
	wg.Wait()
	if got := rt.Direct().Load(a); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestSnapshotInvariant(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	x := d.Alloc(1)
	y := d.Alloc(1)
	d.Store(x, 500)
	d.Store(y, 500)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.Atomic(nil, func(tx *Tx) {
				vx := tx.Load(x)
				tx.Store(x, vx-1)
				tx.Store(y, tx.Load(y)+1)
			})
		}
	}()
	violations := 0
	for i := 0; i < 400; i++ {
		rt.Atomic(nil, func(tx *Tx) {
			if tx.Load(x)+tx.Load(y) != 1000 {
				violations++
			}
		})
	}
	close(stop)
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d torn snapshots", violations)
	}
}

func TestBankInvariant(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	const accounts, initial = 24, 1000
	base := d.Alloc(accounts)
	for i := 0; i < accounts; i++ {
		d.Store(base+tm.Addr(i), initial)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := seed
			next := func() uint64 { s = s*6364136223846793005 + 1; return s >> 33 }
			for i := 0; i < 200; i++ {
				from := base + tm.Addr(next()%accounts)
				to := base + tm.Addr(next()%accounts)
				amt := next() % 9
				rt.Atomic(nil, func(tx *Tx) {
					f := tx.Load(from)
					if from != to && f >= amt {
						tx.Store(from, f-amt)
						tx.Store(to, tx.Load(to)+amt)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	var sum uint64
	for i := 0; i < accounts; i++ {
		sum += d.Load(base + tm.Addr(i))
	}
	if sum != accounts*initial {
		t.Fatalf("sum = %d, want %d", sum, accounts*initial)
	}
}

// The shared data structures must run unmodified on TL2 (they only
// depend on tm.Tx).
func TestRBTreeOnTL2(t *testing.T) {
	rt := New(14)
	var tr rbtree.Tree
	rt.Atomic(nil, func(tx *Tx) { tr = rbtree.New(tx) })
	for k := int64(0); k < 300; k++ {
		rt.Atomic(nil, func(tx *Tx) { tr.Insert(tx, k, uint64(k)) })
	}
	for k := int64(0); k < 300; k += 2 {
		rt.Atomic(nil, func(tx *Tx) { tr.Delete(tx, k) })
	}
	d := rt.Direct()
	if msg := tr.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
	if tr.Size(d) != 150 {
		t.Fatalf("Size = %d, want 150", tr.Size(d))
	}
}

func TestAbortedAllocReclaimed(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	a := d.Alloc(1)
	live := rt.Allocator().LiveBlocks()
	func() {
		defer func() { _ = recover() }()
		rt.Atomic(nil, func(tx *Tx) {
			tx.Alloc(4)
			tx.Store(a, 1)
			panic("boom")
		})
	}()
	if got := rt.Allocator().LiveBlocks(); got != live {
		t.Fatalf("leak: %d != %d", got, live)
	}
}

func TestStatsAccumulate(t *testing.T) {
	rt := New(14)
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	var st Stats
	for i := 0; i < 7; i++ {
		rt.Atomic(&st, func(tx *Tx) { tx.Store(a, uint64(i)) })
	}
	if st.Commits != 7 || st.Work == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
