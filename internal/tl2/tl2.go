// Package tl2 implements Transactional Locking II (Dice, Shalev, Shavit
// — DISC'06), the STM whose global-version-clock validation SwissTM
// builds on (the paper cites it as [15] for lazy counter-based
// validation). It serves as a second baseline: the SwissTM paper showed
// SwissTM outperforming TL2, and the ablation benchmark
// BenchmarkAblationBaselines checks that relationship holds here too.
//
// Differences from SwissTM (internal/stm), per the two papers:
//
//   - TL2 detects write/write conflicts lazily at commit time (write
//     locks are only taken while committing), where SwissTM acquires
//     write locks eagerly at encounter time;
//   - TL2 aborts immediately on reading a location newer than the
//     transaction's read version (no timestamp extension), where
//     SwissTM revalidates and extends its snapshot;
//   - conflict resolution defaults to pure self-abort with backoff
//     (the cm.Suicide policy); WithCM swaps in any other
//     contention-management strategy — TL2's locks are anonymous
//     version words, so policies resolve against a nil owner and can
//     shape only the requester's waiting, aborting and backoff.
//
// The engine substrate (version clock, read log, write set, held-lock
// bookkeeping) comes from internal/clock and internal/txlog; descriptors
// are pooled per runtime, so steady-state transactions allocate nothing.
package tl2

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mem"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/tm"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

// Locked marks a versioned lock held by a committing transaction.
const locked = ^uint64(0)

// yieldQuantum mirrors the other runtimes' forced-interleaving grain so
// cross-runtime virtual-time comparisons stay meaningful.
const yieldQuantum = 64

const txStartCost = 24

const validationStride = 8

// Option configures a Runtime.
type Option func(*Runtime)

// WithClock selects the commit-clock strategy (internal/clock); the
// default is the GV4 fetch-and-add clock. Non-exclusive strategies
// (deferred, sharded) disable TL2's "wv == rv+1 ⇒ skip validation"
// commit shortcut, which is only sound when timestamps are unique.
func WithClock(src clock.Source) Option {
	return func(rt *Runtime) { rt.clk = src }
}

// WithCM selects the contention-management policy (internal/cm); the
// default is cm.Suicide, the self-abort-with-grace behavior TL2 had
// hardwired before the policy layer existed. nil keeps the default.
func WithCM(pol cm.Policy) Option {
	return func(rt *Runtime) { rt.cmPol = pol }
}

// WithMultiVersion retains the last k displaced committed versions per
// word and enables the wait-free read path for transactions run through
// AtomicRO. k <= 0 disables multi-versioning (the default).
func WithMultiVersion(k int) Option {
	return func(rt *Runtime) {
		if k > 0 {
			rt.mv = txlog.NewVersionedStore(k, txlog.DefaultVersionedStoreBits)
		}
	}
}

// WithTrace arms flight-recorder tracing: every pooled descriptor
// records its transactional events into its own txtrace ring registered
// with rec. nil (the default) keeps the no-op tracer.
func WithTrace(rec *txtrace.Recorder) Option {
	return func(rt *Runtime) { rt.trace = rec }
}

// WithShards splits the versioned-lock array into n contiguous shards
// (a power of two; 0 and 1 both mean flat). Sharding only relabels
// locks for conflict attribution — address→lock resolution is
// identical at every shard count.
func WithShards(n int) Option {
	return func(rt *Runtime) { rt.shards = n }
}

// WithAffinity replaces the static round-robin thread placement with
// the conflict-sketch affinity policy (sched.Affinity).
func WithAffinity(on bool) Option {
	return func(rt *Runtime) { rt.affinity = on }
}

// WithMode configures the execution-mode ladder (internal/mode): the
// adaptive policy starts transactions speculative and falls back to a
// serialized global-lock rung under sustained conflict, recovering
// once the serialized window drains cleanly. The default keeps the
// ladder disarmed (always speculative).
func WithMode(cfg mode.Config) Option {
	return func(rt *Runtime) { rt.modeCfg = cfg }
}

// Runtime is one TL2 instance.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator

	clk       clock.Source // global version clock
	exclusive bool         // cached clk.Exclusive() (commit fast path)

	cmPol cm.Policy // contention-management policy (conflict paths only)

	locks  []atomic.Uint64  // versioned write-locks (version or locked)
	layout locktable.Layout // address→lock→shard mapping (shared geometry)

	// shards/affinity are config captured by options; placement is the
	// resulting thread→shard policy. threadIDs hands each caller-owned
	// Stats shard a placement identity on first use.
	shards    int
	affinity  bool
	placement sched.Placement
	threadIDs atomic.Int32

	// mv, when non-nil, is the multi-version word store declared
	// read-only transactions read from without validating.
	mv *txlog.VersionedStore

	// trace, when non-nil, is the flight recorder pooled descriptors
	// register their event rings with (WithTrace).
	trace *txtrace.Recorder

	// modeCfg/gate/hub are the execution-mode ladder (WithMode): the
	// gate serializes fallback entrants, the hub parks Retry waiters.
	modeCfg mode.Config
	gate    mode.Gate
	hub     *mode.WaitHub

	txPool sync.Pool // *Tx descriptors, reused across Atomic calls
}

// New creates a TL2 runtime with 2^bits versioned locks.
func New(bits int, opts ...Option) *Runtime {
	if bits <= 0 {
		bits = 20
	}
	st := mem.NewStore()
	rt := &Runtime{
		store: st,
		alloc: mem.NewAllocator(st),
	}
	for _, o := range opts {
		o(rt)
	}
	rt.modeCfg = rt.modeCfg.Fill()
	rt.hub = mode.NewWaitHub()
	rt.layout = locktable.NewLayout(bits, rt.shards)
	rt.locks = make([]atomic.Uint64, rt.layout.Slots())
	if rt.affinity {
		rt.placement = sched.NewAffinity(rt.layout.Shards())
	} else {
		rt.placement = sched.NewRoundRobin(rt.layout.Shards())
	}
	if rt.clk == nil {
		rt.clk = clock.New(clock.KindGV4)
	}
	if rt.cmPol == nil {
		rt.cmPol = cm.New(cm.KindSuicide)
	}
	rt.exclusive = rt.clk.Exclusive()
	if rt.trace != nil {
		// The offline opacity checker recomputes lock-table slots and
		// picks its clock model from this metadata (txcheck).
		rt.trace.SetMeta("tl2.lockbits", strconv.Itoa(bits))
		rt.trace.SetMeta("tl2.clock", rt.clk.Name())
		rt.trace.SetMeta("tl2.exclusive", strconv.FormatBool(rt.exclusive))
		mvDepth := 0
		if rt.mv != nil {
			mvDepth = rt.mv.K()
		}
		rt.trace.SetMeta("tl2.mvdepth", strconv.Itoa(mvDepth))
	}
	return rt
}

// Shards reports the lock array's shard count.
func (rt *Runtime) Shards() int { return rt.layout.Shards() }

// PlacementName reports the thread-placement policy in use.
func (rt *Runtime) PlacementName() string { return rt.placement.Name() }

// MVDepth reports the retained version depth (0 when multi-versioning
// is off).
func (rt *Runtime) MVDepth() int {
	if rt.mv == nil {
		return 0
	}
	return rt.mv.K()
}

// ClockName reports the commit-clock strategy this runtime uses.
func (rt *Runtime) ClockName() string { return rt.clk.Name() }

// CMName reports the contention-management policy this runtime uses.
func (rt *Runtime) CMName() string { return rt.cmPol.Name() }

// Direct returns the non-transactional setup handle.
func (rt *Runtime) Direct() mem.Direct { return mem.Direct{Mem: rt.store, Al: rt.alloc} }

// Allocator exposes the allocator (tests).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

func (rt *Runtime) lockFor(a tm.Addr) *atomic.Uint64 {
	return &rt.locks[rt.layout.Index(a)]
}

// lockShard recovers the shard of a lock word previously returned by
// lockFor, by pointer arithmetic within the contiguous lock array
// (read-set validation holds only the lock pointer, not the address).
func (rt *Runtime) lockShard(l *atomic.Uint64) int {
	idx := (uintptr(unsafe.Pointer(l)) - uintptr(unsafe.Pointer(&rt.locks[0]))) /
		unsafe.Sizeof(atomic.Uint64{})
	return rt.layout.ShardOfIndex(uint64(idx))
}

// Stats accumulates commits, aborts and work units across Atomic calls.
type Stats struct {
	Commits uint64
	Aborts  uint64
	Work    uint64
	// SnapshotExtensions is always 0 for TL2: the algorithm aborts on a
	// read past its read version instead of extending. The field exists
	// so clock-strategy sweeps report a uniform column across runtimes.
	SnapshotExtensions uint64
	// ClockCASRetries counts failed CASes inside commit-clock
	// operations (internal/clock.Probe).
	ClockCASRetries uint64
	// CMAbortsSelf counts lost conflicts (one AbortSelf decision
	// each); CMAbortsOwner counts AbortOwner decisions against the
	// (anonymous) owner, one per waiting round; BackoffSpins counts
	// the scheduler yields the policy charged between retries
	// (internal/cm.Probe).
	CMAbortsSelf  uint64
	CMAbortsOwner uint64
	BackoffSpins  uint64
	// EntryReclaims and HorizonStalls are always 0 for TL2: its write
	// set buffers (addr, value) records in place rather than pooling
	// lock-table entries, so there is nothing to reclaim. The fields
	// exist so reclamation sweeps report a uniform column across
	// runtimes.
	EntryReclaims uint64
	HorizonStalls uint64
	// MVReads counts reads served on the multi-version wait-free path;
	// MVMisses counts read-only transactions that fell off it (ring
	// overrun or an undeclared write) and re-ran validated. For TL2 the
	// path also removes the read-past-rv abort for declared readers.
	MVReads  uint64
	MVMisses uint64
	// ReadSetSizes and WriteSetSizes histogram the per-committed-
	// transaction set sizes (logged locks / buffered addresses).
	ReadSetSizes  txstats.Hist
	WriteSetSizes txstats.Hist
	// RestartLatency histograms attempt-start → abort deltas in
	// nanoseconds; CommitLatency histograms attempt-start → commit
	// deltas for the final attempt; Attempts histograms attempts per
	// committed transaction (1 = committed first try).
	RestartLatency txstats.Hist
	CommitLatency  txstats.Hist
	Attempts       txstats.Hist
	// ConflictSketch counts aborts and CM defeats per lock-array shard;
	// CrossShardConflicts counts the subset outside the thread's home
	// shard; Remaps counts placement rebinds.
	ConflictSketch      txstats.Sketch
	CrossShardConflicts uint64
	Remaps              uint64
	// ModeFallbacks counts speculative→serialized ladder transitions
	// (mid-transaction escalations included) and ModeRecoveries the
	// returns to speculation; RetryWakes counts Retry parks woken by a
	// conflicting commit's doorbell.
	ModeFallbacks  uint64
	ModeRecoveries uint64
	RetryWakes     uint64

	// TL2 has no thread descriptor (Tx descriptors are pooled per
	// runtime, not per caller), so the caller-owned Stats shard IS the
	// logical thread: its placement identity lives here, assigned on
	// the shard's first transaction and touched only by the owning
	// goroutine — as is the execution-mode controller.
	bound        bool
	threadID     int32
	home         int32
	txSinceRemap int
	remapWindow  txstats.Sketch
	ctl          mode.Controller
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Work += o.Work
	s.SnapshotExtensions += o.SnapshotExtensions
	s.ClockCASRetries += o.ClockCASRetries
	s.CMAbortsSelf += o.CMAbortsSelf
	s.CMAbortsOwner += o.CMAbortsOwner
	s.BackoffSpins += o.BackoffSpins
	s.EntryReclaims += o.EntryReclaims
	s.HorizonStalls += o.HorizonStalls
	s.MVReads += o.MVReads
	s.MVMisses += o.MVMisses
	s.ReadSetSizes.Merge(o.ReadSetSizes)
	s.WriteSetSizes.Merge(o.WriteSetSizes)
	s.RestartLatency.Merge(o.RestartLatency)
	s.CommitLatency.Merge(o.CommitLatency)
	s.Attempts.Merge(o.Attempts)
	s.ConflictSketch.Merge(o.ConflictSketch)
	s.CrossShardConflicts += o.CrossShardConflicts
	s.Remaps += o.Remaps
	s.ModeFallbacks += o.ModeFallbacks
	s.ModeRecoveries += o.ModeRecoveries
	s.RetryWakes += o.RetryWakes
}

type rollbackSignal struct{}

// Tx is one TL2 transaction descriptor; it implements tm.Tx. It is
// pooled by the runtime and reused across Atomic calls: its read log,
// write set and held-lock scratch keep their backing storage.
type Tx struct {
	rt *Runtime
	rv uint64 // read version (clock sample at begin)

	// readLog records only lock words: TL2 validates every read
	// against the single read version rv, so per-entry versions would
	// be dead weight (txlog.LockLog vs VersionedReadLog).
	readLog  txlog.LockLog
	writeSet txlog.WriteSet
	held     txlog.LockSet // commit-time write locks

	allocs []tm.Addr
	frees  []tm.Addr

	work   uint64
	aborts uint64

	// home is the calling thread's home shard for this transaction;
	// sketch/crossShard attribute its aborts and CM defeats to shards.
	// Per-transaction, folded into the caller's Stats after commit.
	home       int32
	sketch     txstats.Sketch
	crossShard uint64

	// ro marks a transaction declared read-only (AtomicRO); mvOn is
	// true while it runs the multi-version wait-free read path. A miss
	// clears mvOn for the rest of the transaction and re-runs it
	// validated — never an error.
	ro       bool
	mvOn     bool
	mvReads  uint64
	mvMisses uint64

	// clkProbe accumulates clock CAS retries (and pins this descriptor
	// to a shard under the sharded strategy).
	clkProbe clock.Probe

	// cmSelf/cmProbe are the descriptor's contention-management
	// identity and counters (internal/cm); greedTS is the priority slot
	// policies publish into (TL2's locks carry no owner header, so no
	// other transaction ever reads it — it still lets priority-based
	// policies track their own escalation state).
	cmSelf  cm.Self
	cmProbe cm.Probe
	greedTS atomic.Uint64

	// inSerial marks a transaction running under the ladder's
	// serialized gate (exempt from the gate-yield wait-loop breaks);
	// gateYield asks the retry loop for one SpinInit backoff after an
	// abort taken to let a gate entrant pass.
	inSerial  bool
	gateYield bool

	// waiter/parkPending/parkFP are the Retry cond-var state: Retry
	// subscribes the read-set fingerprint and sets parkPending; the
	// retry loop parks before the next attempt. retryAborts counts
	// Retry unwinds, excluded from the ladder's escalation signals.
	waiter      mode.Waiter
	parkPending bool
	parkFP      uint64
	retryAborts uint64

	// tr is this descriptor's flight recorder (txtrace.Nop by default);
	// traced caches tr.Enabled() so the disabled hot path costs one
	// predicted branch instead of an interface call per operation.
	tr     txtrace.Tracer
	traced bool
}

var _ tm.Tx = (*Tx)(nil)

// Atomic runs fn as one transaction, retrying until commit.
func (rt *Runtime) Atomic(st *Stats, fn func(tx *Tx)) {
	rt.run(st, fn, false)
}

// AtomicRO runs fn as one transaction declared read-only. With
// multi-versioning enabled (WithMultiVersion), the transaction reads
// the newest version with timestamp <= its snapshot, logs nothing,
// skips validation, and commits unconditionally; a reader overrun by
// more than K writers — or an undeclared store — silently re-runs the
// transaction on the validated path.
func (rt *Runtime) AtomicRO(st *Stats, fn func(tx *Tx)) {
	rt.run(st, fn, true)
}

func (rt *Runtime) run(st *Stats, fn func(tx *Tx), ro bool) {
	tx, _ := rt.txPool.Get().(*Tx)
	if tx == nil {
		tx = &Tx{rt: rt}
		tx.cmSelf.Timestamp = &tx.greedTS
		tx.cmSelf.Probe = &tx.cmProbe
		tx.tr = txtrace.Nop
		if rt.trace != nil {
			tx.tr = rt.trace.NewRing("tl2-tx")
			tx.traced = true
		}
	}
	tx.work = 0
	tx.aborts = 0
	tx.retryAborts = 0
	tx.gateYield = false
	tx.greedTS.Store(0)
	tx.cmSelf.Defeats = 0
	tx.ro = ro
	tx.mvOn = ro && rt.mv != nil
	tx.mvReads = 0
	tx.mvMisses = 0
	tx.sketch = txstats.Sketch{}
	tx.crossShard = 0
	tx.home = 0
	if st != nil {
		if !st.bound {
			st.bound = true
			st.threadID = rt.threadIDs.Add(1) - 1
			st.home = int32(rt.placement.Home(int(st.threadID)))
			st.ctl = mode.NewController(rt.modeCfg)
		}
		tx.home = st.home
	}
	if tx.traced {
		tx.tr.Record(txtrace.KindTxBegin, rt.clk.Now(), 0, 0)
	}
	// Ladder: a serialized transaction takes the runtime gate before
	// its first attempt (announcing itself so speculative wait loops
	// yield) and runs the unchanged TL2 protocol under it — opacity by
	// construction, serialization only against other fallback entrants.
	serial := st != nil && st.ctl.Serial()
	if serial {
		tx.enterGate()
	}
	var lastAttempt time.Time
	for {
		if tx.parkPending {
			tx.parkRetry(st, serial)
		}
		lastAttempt = time.Now()
		tx.rv = rt.clk.Now()
		tx.readLog.Reset()
		tx.writeSet.Reset()
		tx.held.Reset()
		tx.allocs = tx.allocs[:0]
		tx.frees = tx.frees[:0]
		tx.work += txStartCost
		if tx.traced {
			tx.tr.Record(txtrace.KindAttemptStart, tx.rv, tx.aborts+1, 0)
		}

		if tx.attempt(fn) {
			break
		}
		if st != nil {
			st.RestartLatency.Observe(int(time.Since(lastAttempt)))
		}
		tx.aborts++
		if tx.parkPending {
			// A Retry unwound this attempt; it parks at the top of the
			// loop — no contention backoff, no escalation pressure.
			tx.retryAborts++
			continue
		}
		if !serial && st != nil && st.ctl.Escalate(int(tx.aborts-tx.retryAborts)) {
			// Attempt budget exhausted mid-transaction (TK_NUM_TRIES):
			// move this transaction under the gate and retry there.
			serial = true
			st.ModeFallbacks++
			if tx.traced {
				tx.tr.Record(txtrace.KindModeShift, rt.clk.Now(),
					uint64(mode.StateSerial), uint32(mode.StateSpec))
			}
			tx.enterGate()
			continue
		}
		if tx.gateYield {
			// We aborted to let a gate entrant pass: back off SpinInit
			// yields so the serialized cohort gets cycles first.
			tx.gateYield = false
			for i := 0; i < rt.modeCfg.SpinInit; i++ {
				runtime.Gosched()
			}
		}
		tx.cmSelf.Aborts = tx.aborts
		for i, n := 0, cm.AbortBackoff(rt.cmPol, &tx.cmSelf); i < n; i++ {
			runtime.Gosched()
		}
	}
	if serial {
		tx.exitGate()
	}
	if st != nil {
		if fell, rec := st.ctl.OnOutcome(tx.aborts-tx.retryAborts, tx.cmSelf.Defeats > 0); fell || rec {
			if fell {
				st.ModeFallbacks++
			} else {
				st.ModeRecoveries++
			}
			if tx.traced {
				tx.tr.Record(txtrace.KindModeShift, rt.clk.Now(),
					uint64(st.ctl.State()), uint32(1-st.ctl.State()))
			}
		}
	}
	cm.Committed(rt.cmPol, &tx.cmSelf)
	cmSelf, cmOwner, spins := tx.cmProbe.TakeCounts()
	if st != nil {
		st.Commits++
		st.Aborts += tx.aborts
		st.Work += tx.work
		st.ClockCASRetries += tx.clkProbe.TakeRetries()
		st.CMAbortsSelf += cmSelf
		st.CMAbortsOwner += cmOwner
		st.BackoffSpins += spins
		st.MVReads += tx.mvReads
		st.MVMisses += tx.mvMisses
		st.ReadSetSizes.Observe(tx.readLog.Len())
		st.WriteSetSizes.Observe(tx.writeSet.Len())
		st.CommitLatency.Observe(int(time.Since(lastAttempt)))
		st.Attempts.Observe(int(tx.aborts) + 1)
		st.ConflictSketch.Merge(tx.sketch)
		st.CrossShardConflicts += tx.crossShard
		rt.maybeRemap(st, tx)
	}
	tx.ro = false
	rt.txPool.Put(tx)
}

// enterGate moves the transaction under the serialized rung: pending
// is raised before the lock is contended so speculative wait loops
// start yielding immediately.
func (tx *Tx) enterGate() {
	tx.inSerial = true
	tx.rt.gate.Enter()
}

func (tx *Tx) exitGate() {
	tx.rt.gate.Exit()
	tx.inSerial = false
}

// parkRetry blocks the transaction on its Retry doorbell until a
// conflicting commit rings it. A serialized transaction releases the
// gate across the park (its producer may need the serialized rung) and
// re-enters after.
func (tx *Tx) parkRetry(st *Stats, serial bool) {
	tx.parkPending = false
	if tx.traced {
		tx.tr.Record(txtrace.KindRetryPark, tx.rt.clk.Now(), tx.parkFP, 0)
	}
	if serial {
		tx.exitGate()
	}
	tx.waiter.Park()
	tx.rt.hub.Unsubscribe(&tx.waiter)
	if serial {
		tx.enterGate()
	}
	if st != nil {
		st.RetryWakes++
	}
	if tx.traced {
		tx.tr.Record(txtrace.KindRetryPark, tx.rt.clk.Now(), tx.parkFP, 1)
	}
}

// remapPeriod is how many transactions a thread commits between
// consecutive Rebalance offers to the placement policy.
const remapPeriod = 64

// maybeRemap is the commit-epilogue placement step, run on the calling
// thread against its own Stats shard: every remapPeriod transactions
// offer the accumulated conflict-sketch window to the placement policy
// and refresh the shard's home.
func (rt *Runtime) maybeRemap(st *Stats, tx *Tx) {
	st.remapWindow.Merge(tx.sketch)
	st.txSinceRemap++
	if st.txSinceRemap < remapPeriod {
		return
	}
	st.txSinceRemap = 0
	moved := rt.placement.Rebalance(int(st.threadID), st.remapWindow)
	st.remapWindow = txstats.Sketch{}
	if moved {
		old := st.home
		st.home = int32(rt.placement.Home(int(st.threadID)))
		st.Remaps++
		if tx.traced {
			tx.tr.Record(txtrace.KindRemap, rt.clk.Now(), uint64(st.home), uint32(old))
		}
	}
}

// noteConflict attributes one abort or CM defeat at address a to its
// lock-array shard (cold path).
func (tx *Tx) noteConflict(a tm.Addr) {
	shard := tx.rt.layout.ShardOf(a)
	tx.sketch.Observe(shard)
	if int32(shard) != tx.home {
		tx.crossShard++
	}
}

// noteConflictLock is noteConflict for sites that hold only the lock
// word (read-set validation).
func (tx *Tx) noteConflictLock(l *atomic.Uint64) {
	shard := tx.rt.lockShard(l)
	tx.sketch.Observe(shard)
	if int32(shard) != tx.home {
		tx.crossShard++
	}
}

func (tx *Tx) attempt(fn func(tx *Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(rollbackSignal); !is {
				for _, a := range tx.allocs {
					tx.rt.alloc.Free(a)
				}
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	tx.commit()
	return true
}

func (tx *Tx) rollback() {
	for _, a := range tx.allocs {
		tx.rt.alloc.Free(a)
	}
	panic(rollbackSignal{})
}

// abort records the rollback's reason on the trace and unwinds.
func (tx *Tx) abort(reason uint32) {
	if tx.traced {
		tx.tr.Record(txtrace.KindAbort, tx.rv, 0, reason)
	}
	tx.rollback()
}

func (tx *Tx) tick(units uint64) {
	tx.work += units
	if tx.work%yieldQuantum < units {
		runtime.Gosched()
	}
}

// Load implements tm.Tx: TL2's versioned read with pre/post lock checks.
func (tx *Tx) Load(a tm.Addr) uint64 {
	if tx.mvOn {
		return tx.loadMV(a)
	}
	tx.tick(1)
	if v, buffered := tx.writeSet.Get(a); buffered {
		return v
	}
	l := tx.rt.lockFor(a)
	waited := 0
	for {
		v1 := l.Load()
		if v1 == locked {
			// Locked by a committing transaction mid-publish: the
			// policy decides between riding the publish out and
			// aborting (the Suicide default waits — the hold is short
			// and the committer is past the point of being aborted).
			tx.cmSelf.Point = cm.PointCommit
			tx.cmSelf.Writes = tx.writeSet.Len()
			tx.cmSelf.Waited = waited
			dec := cm.Resolve(tx.rt.cmPol, &tx.cmSelf, nil)
			if tx.traced {
				tx.tr.Record(txtrace.KindCMDecision, tx.rv, uint64(a),
					txtrace.CMAux(int(dec), int(cm.PointCommit)))
			}
			if dec == cm.AbortSelf {
				tx.cmSelf.Defeats++
				tx.noteConflict(a)
				tx.abort(txtrace.AbortCM)
			}
			if !tx.inSerial && tx.rt.gate.Pending() {
				// A serialized entrant holds or awaits the gate: riding
				// this conflict out could starve it. Yield instead —
				// the retry loop charges SpinInit backoff first.
				tx.cmSelf.Defeats++
				tx.gateYield = true
				tx.noteConflict(a)
				tx.abort(txtrace.AbortCM)
			}
			waited++
			runtime.Gosched()
			continue
		}
		val := tx.rt.store.LoadWord(a)
		if l.Load() != v1 {
			continue
		}
		if v1 > tx.rv {
			// Newer than our read version: TL2 aborts (no extension).
			// Fold the stamp into the clock first so the retry's fresh
			// read version covers it (pre-publishing strategies never
			// advance on their own).
			tx.rt.clk.Observe(v1, &tx.clkProbe)
			tx.noteConflict(a)
			tx.abort(txtrace.AbortValidation)
		}
		tx.readLog.Append(l)
		if tx.traced {
			tx.tr.Record(txtrace.KindRead, v1, uint64(a), 0)
		}
		return val
	}
}

// loadMV is the wait-free read path of a declared read-only transaction
// under multi-versioning: serve the newest version with timestamp <=
// the frozen read version — from memory when the current version
// qualifies, else from the version ring — logging nothing. Where
// baseline TL2 aborts on any read past rv, a declared reader only
// leaves this path (and re-runs validated) when the ring has been
// overrun by more than K commits.
func (tx *Tx) loadMV(a tm.Addr) uint64 {
	tx.tick(1)
	l := tx.rt.lockFor(a)
	for {
		v1 := l.Load()
		if v1 != locked && v1 <= tx.rv {
			val := tx.rt.store.LoadWord(a)
			if l.Load() == v1 {
				tx.mvReads++
				if tx.traced {
					tx.tr.Record(txtrace.KindRead, v1, uint64(a), 1)
				}
				return val
			}
			continue // torn read: version moved underneath us
		}
		if val, from, ok := tx.rt.mv.ReadAt(a, tx.rv); ok {
			tx.mvReads++
			if tx.traced {
				// Clock carries the served version's birth stamp, not the
				// snapshot: the opacity checker needs the observed version.
				tx.tr.Record(txtrace.KindRead, from, uint64(a), 1)
			}
			return val
		}
		if v1 == locked {
			// A committer is publishing this lock; its displaced version
			// lands in the ring, so wait out the brief hold and retry.
			runtime.Gosched()
			continue
		}
		tx.mvMisses++
		tx.mvOn = false
		tx.abort(txtrace.AbortSpec)
	}
}

// Store implements tm.Tx: writes buffer in the write set until commit.
func (tx *Tx) Store(a tm.Addr, v uint64) {
	if tx.mvOn {
		// A store in a declared read-only transaction: the earlier
		// multi-version reads were unlogged at a frozen read version, so
		// re-run the attempt on the validated read-write path.
		tx.mvOn = false
		tx.abort(txtrace.AbortSpec)
	}
	tx.tick(2)
	tx.writeSet.Put(a, v)
	if tx.traced {
		tx.tr.Record(txtrace.KindWrite, tx.rv, uint64(a), 0)
	}
}

// Retry is the transactional cond-var wait: abandon this attempt and
// block until a commit whose write set intersects this attempt's read
// set publishes, then re-run fn against a fresh snapshot. The waiter
// subscribes its read-set fingerprint first, then re-validates the
// read log — a commit that published before the subscription fails the
// validation (immediate re-run, no park); one that publishes after it
// finds the waiter registered and rings its doorbell. An empty or
// already-stale read set never parks.
func (tx *Tx) Retry() {
	if tx.mvOn {
		// Multi-version reads are unlogged: nothing to fingerprint.
		// Re-run on the validated path, where the next Retry can park.
		tx.mvOn = false
		tx.abort(txtrace.AbortRetry)
	}
	var fp mode.Fingerprint
	for _, l := range tx.readLog.Locks() {
		fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(l)))
	}
	if fp != 0 {
		hub := tx.rt.hub
		hub.Subscribe(&tx.waiter, fp)
		valid := true
		for _, l := range tx.readLog.Locks() {
			if v := l.Load(); v == locked || v > tx.rv {
				valid = false
				break
			}
		}
		if valid {
			tx.parkPending = true
			tx.parkFP = uint64(fp)
		} else {
			hub.Unsubscribe(&tx.waiter)
		}
	}
	tx.abort(txtrace.AbortRetry)
}

// Alloc implements tm.Tx.
func (tx *Tx) Alloc(n int) tm.Addr {
	tx.work++
	a := tx.rt.alloc.Alloc(n)
	tx.allocs = append(tx.allocs, a)
	return a
}

// Free implements tm.Tx.
func (tx *Tx) Free(a tm.Addr) { tx.frees = append(tx.frees, a) }

// commit is TL2's commit: lock the write set (in address order, to
// avoid deadlock between committers), bump the clock, validate the read
// set, publish, release.
func (tx *Tx) commit() {
	if tx.writeSet.Len() == 0 {
		// Read-only: already validated against rv at every read.
		tx.applyFrees()
		if tx.traced {
			tx.tr.Record(txtrace.KindCommit, tx.rv, 0, 0)
		}
		return
	}

	for _, a := range tx.writeSet.SortedAddrs() {
		l := tx.rt.lockFor(a)
		if tx.held.Holds(l) {
			continue
		}
		waited := 0
		for {
			v := l.Load()
			if v == locked {
				// A competing committer holds this lock. Address-order
				// acquisition rules out committer/committer deadlock,
				// so waiting is safe; whether to wait or abort is the
				// policy's call (the Suicide default spins a bounded
				// commit grace, like the old inlined loop).
				tx.cmSelf.Point = cm.PointCommit
				tx.cmSelf.Writes = tx.writeSet.Len()
				tx.cmSelf.Waited = waited
				dec := cm.Resolve(tx.rt.cmPol, &tx.cmSelf, nil)
				if tx.traced {
					tx.tr.Record(txtrace.KindCMDecision, tx.rv, uint64(a),
						txtrace.CMAux(int(dec), int(cm.PointCommit)))
				}
				if dec == cm.AbortSelf {
					tx.cmSelf.Defeats++
					tx.held.Restore()
					tx.noteConflict(a)
					tx.abort(txtrace.AbortCM)
				}
				if !tx.inSerial && tx.rt.gate.Pending() {
					tx.cmSelf.Defeats++
					tx.gateYield = true
					tx.held.Restore()
					tx.noteConflict(a)
					tx.abort(txtrace.AbortCM)
				}
				waited++
				tx.work += yieldQuantum
				runtime.Gosched()
				continue
			}
			if v > tx.rv {
				tx.held.Restore()
				tx.rt.clk.Observe(v, &tx.clkProbe)
				tx.noteConflict(a)
				tx.abort(txtrace.AbortConflict)
			}
			if l.CompareAndSwap(v, locked) {
				tx.held.Add(l, v)
				break
			}
		}
		tx.work++
	}

	wv := tx.rt.clk.Tick(&tx.clkProbe)

	// Validate the read set unless nothing could have changed. The
	// wv == rv+1 shortcut is sound only when timestamps are exclusive:
	// a non-exclusive strategy (deferred, sharded) can hand the same wv
	// to a concurrent writer, so "the clock moved once" no longer means
	// "only we committed".
	if !tx.rt.exclusive || wv != tx.rv+1 {
		for i, l := range tx.readLog.Locks() {
			if i%validationStride == 0 {
				tx.work++
			}
			v := l.Load()
			if v == locked {
				if !tx.held.Holds(l) {
					if tx.traced {
						tx.tr.Record(txtrace.KindValidate, wv, uint64(tx.readLog.Len()), 0)
					}
					tx.held.Restore()
					tx.noteConflictLock(l)
					tx.abort(txtrace.AbortValidation)
				}
				continue
			}
			if v > tx.rv {
				if tx.traced {
					tx.tr.Record(txtrace.KindValidate, wv, uint64(tx.readLog.Len()), 0)
				}
				tx.held.Restore()
				tx.rt.clk.Observe(v, &tx.clkProbe)
				tx.noteConflictLock(l)
				tx.abort(txtrace.AbortValidation)
			}
		}
		if tx.traced {
			tx.tr.Record(txtrace.KindValidate, wv, uint64(tx.readLog.Len()), 1)
		}
	}

	// Feed the multi-version store while memory still holds the values
	// this commit is about to overwrite: each written word's old value
	// was the committed value over [displaced lock version, wv).
	if mv := tx.rt.mv; mv != nil {
		tx.writeSet.Range(func(a tm.Addr, _ uint64) {
			pre, _ := tx.held.Displaced(tx.rt.lockFor(a))
			mv.Publish(a, tx.rt.store.LoadWord(a), pre, wv)
		})
	}

	tx.writeSet.Range(func(a tm.Addr, v uint64) {
		tx.rt.store.StoreWord(a, v)
		if tx.traced {
			tx.tr.Record(txtrace.KindCommitWord, wv, uint64(a), 0)
		}
		tx.work++
	})
	tx.held.Publish(wv)
	// Ring Retry waiters whose read fingerprints intersect this write
	// set; the no-waiter fast path is one atomic load.
	if hub := tx.rt.hub; hub.Active() {
		var fp mode.Fingerprint
		tx.writeSet.Range(func(a tm.Addr, _ uint64) {
			fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(tx.rt.lockFor(a))))
		})
		hub.Notify(fp)
	}
	tx.applyFrees()
	if tx.traced {
		tx.tr.Record(txtrace.KindCommit, wv, uint64(tx.writeSet.Len()), 0)
	}
}

func (tx *Tx) applyFrees() {
	for _, a := range tx.frees {
		tx.rt.alloc.Free(a)
	}
}
