package txcheck

import (
	"bytes"
	"strings"
	"testing"

	"tlstm/internal/txtrace"
)

// traceBuilder synthesizes checker-input traces event by event — the
// mutation harness: a checker that has never seen a violation is
// untested, so each seeded-violation test builds the exact interleaving
// a broken runtime would have recorded and asserts the checker flags it.
type traceBuilder struct {
	t    *txtrace.Trace
	ring *txtrace.RingDump
	seq  uint64
	time int64
}

func newTraceBuilder(meta map[string]string) *traceBuilder {
	return &traceBuilder{t: &txtrace.Trace{Meta: meta}}
}

// gv4Meta is the exclusive-clock stm namespace every mutation test uses
// unless it is specifically about clock gating.
func gv4Meta() map[string]string {
	return map[string]string{
		"stm.lockbits":  "16",
		"stm.clock":     "gv4",
		"stm.exclusive": "true",
		"stm.mvdepth":   "0",
	}
}

func (b *traceBuilder) newRing(label string) *traceBuilder {
	b.t.Rings = append(b.t.Rings, txtrace.RingDump{ID: uint32(len(b.t.Rings)), Label: label})
	b.ring = &b.t.Rings[len(b.t.Rings)-1]
	b.seq = 0
	return b
}

func (b *traceBuilder) ev(k txtrace.Kind, clock, arg uint64, aux uint32) *traceBuilder {
	b.time++
	b.ring.Events = append(b.ring.Events, txtrace.Event{
		Seq: b.seq, Time: b.time, Clock: clock, Arg: arg, Aux: aux, Kind: uint8(k),
	})
	b.seq++
	return b
}

func (b *traceBuilder) begin() *traceBuilder {
	return b.ev(txtrace.KindTxBegin, 0, 0, 0).ev(txtrace.KindAttemptStart, 0, 1, 0)
}
func (b *traceBuilder) read(addr, stamp uint64) *traceBuilder {
	return b.ev(txtrace.KindRead, stamp, addr, 0)
}
func (b *traceBuilder) mvRead(addr, stamp uint64) *traceBuilder {
	return b.ev(txtrace.KindRead, stamp, addr, 1)
}
func (b *traceBuilder) commit(stamp uint64, addrs ...uint64) *traceBuilder {
	for _, a := range addrs {
		b.ev(txtrace.KindCommitWord, stamp, a, 0)
	}
	return b.ev(txtrace.KindCommit, stamp, uint64(len(addrs)), 0)
}
func (b *traceBuilder) abort() *traceBuilder {
	return b.ev(txtrace.KindAbort, 0, 0, txtrace.AbortValidation)
}

func mustCheck(t *testing.T, tr *txtrace.Trace) *Report {
	t.Helper()
	rep, err := Check(tr)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep
}

func wantViolation(t *testing.T, rep *Report, code string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Code == code {
			return
		}
	}
	t.Fatalf("checker missed a seeded %s violation; got %v", code, rep.Violations)
}

// Distinct small addresses land in distinct 2^16 slots under Fibonacci
// hashing; a collision would make the mutation tests fail loudly (the
// seeded violations depend on the slots being distinct).
const (
	addrX = 0x1000
	addrY = 0x2000
	addrZ = 0x3000
)

func TestMutationDoomedReadAcrossCommit(t *testing.T) {
	// A writer commits X and Y atomically at stamp 5. The victim read X
	// before that commit (version 0) and Y after it (version 5) without
	// revalidating: no instant ever held both values, even though the
	// victim eventually aborted. Opacity says doomed transactions count.
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0").begin().commit(5, addrX, addrY)
	b.newRing("stm-worker-1").begin().read(addrX, 0).read(addrY, 5).abort()
	rep := mustCheck(t, b.t)
	wantViolation(t, rep, CodeEmptyInterval)
}

func TestMutationTornMultiVersionRead(t *testing.T) {
	// X's version history is {5, 7}. A read-only snapshot that was
	// served X@5 from the version store cannot also contain Y@9: X@5
	// died at 7. A multi-version store serving a recycled or
	// half-overwritten entry produces exactly this shape.
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0").
		begin().commit(5, addrX).
		begin().commit(7, addrX).
		begin().commit(9, addrY)
	b.newRing("stm-worker-1").begin().mvRead(addrX, 5).mvRead(addrY, 9).ev(txtrace.KindCommit, 9, 0, 0)
	rep := mustCheck(t, b.t)
	wantViolation(t, rep, CodeEmptyInterval)
}

func TestMutationSerializationCycle(t *testing.T) {
	// T1 read X@0 and committed Y at stamp 10; T2 read Y@0 and
	// committed X at stamp 5. Under an exclusive clock stamps are the
	// serialization order, so T1 (serialized at 10) read an X that T2
	// (serialized at 5) had already displaced — a write-skew cycle the
	// per-attempt interval check alone cannot see.
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0").begin().read(addrX, 0).commit(10, addrY)
	b.newRing("stm-worker-1").begin().read(addrY, 0).commit(5, addrX)
	rep := mustCheck(t, b.t)
	wantViolation(t, rep, CodeStaleCommit)
}

func TestMutationPhantomVersion(t *testing.T) {
	// A read observed X@7 but no committed transaction in this
	// drop-free trace ever stamped X's slot with 7: the version was
	// torn or fabricated.
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0").begin().commit(5, addrX)
	b.newRing("stm-worker-1").begin().read(addrX, 7).abort()
	rep := mustCheck(t, b.t)
	wantViolation(t, rep, CodePhantomVersion)
}

func TestMutationDuplicateStamp(t *testing.T) {
	// Two distinct transactions committed X at stamp 5. gv4's
	// fetch-and-add hands out unique stamps, so a correct run cannot
	// produce this.
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0").begin().commit(5, addrX)
	b.newRing("stm-worker-1").begin().commit(5, addrX)
	rep := mustCheck(t, b.t)
	wantViolation(t, rep, CodeDuplicateStamp)
}

func TestExclusiveOnlyChecksGatedOffSharedStampClocks(t *testing.T) {
	// The same cycle shape under a deferred clock must NOT be flagged:
	// shared-stamp clocks legitimately break stamp-order-equals-
	// serialization-order (see the clock package's (T1) argument), and
	// a checker with false positives is worse than no checker.
	meta := gv4Meta()
	meta["stm.clock"] = "deferred"
	meta["stm.exclusive"] = "false"
	b := newTraceBuilder(meta)
	b.newRing("stm-worker-0").begin().read(addrX, 0).commit(10, addrY)
	b.newRing("stm-worker-1").begin().read(addrY, 0).commit(5, addrX)
	rep := mustCheck(t, b.t)
	if !rep.Ok() {
		t.Fatalf("anchored check fired under a non-exclusive clock: %v", rep.Violations)
	}
}

func TestCleanTraceComplete(t *testing.T) {
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0").
		begin().read(addrX, 0).commit(1, addrY).
		begin().read(addrY, 1).commit(2, addrX)
	b.newRing("stm-worker-1").
		begin().read(addrY, 1).abort().
		begin().read(addrY, 1).read(addrX, 2).ev(txtrace.KindCommit, 2, 0, 0)
	rep := mustCheck(t, b.t)
	if !rep.Ok() || !rep.Complete() {
		t.Fatalf("clean trace not complete/ok: violations=%v partial=%d", rep.Violations, rep.PartialRings)
	}
	if rep.TxsChecked != 4 || rep.Committed != 3 || rep.Aborted != 1 {
		t.Fatalf("tallies: txs=%d committed=%d aborted=%d; want 4/3/1", rep.TxsChecked, rep.Committed, rep.Aborted)
	}
	if rep.AbortedVerified != 1 {
		t.Fatalf("AbortedVerified = %d, want 1", rep.AbortedVerified)
	}
}

func TestDropsDowngradeToPartialAndDisablePhantom(t *testing.T) {
	// A ring that overwrote events yields a partial verdict, resyncs to
	// the first retained AttemptStart, and turns the phantom check off
	// for the whole namespace — the dropped window may hold the commit
	// that wrote the otherwise-unexplained stamp.
	b := newTraceBuilder(gv4Meta())
	b.newRing("stm-worker-0")
	b.ring.Drops = 3
	b.seq = 3
	// Retained window starts mid-attempt: a dangling read, then a full
	// attempt observing a stamp nobody in the window wrote.
	b.ev(txtrace.KindRead, 4, addrX, 0).
		ev(txtrace.KindAttemptStart, 0, 2, 0).read(addrX, 7).abort()
	rep := mustCheck(t, b.t)
	if !rep.Ok() {
		t.Fatalf("phantom check fired on a lossy trace: %v", rep.Violations)
	}
	rr := rep.Rings[0]
	if rr.Verdict != VerdictPartial {
		t.Fatalf("verdict = %q, want %q", rr.Verdict, VerdictPartial)
	}
	if rr.SkippedEvents != 1 {
		t.Fatalf("SkippedEvents = %d, want 1 (the dangling pre-AttemptStart read)", rr.SkippedEvents)
	}
	if rep.TxsChecked != 1 {
		t.Fatalf("TxsChecked = %d, want 1", rep.TxsChecked)
	}
}

func TestSpeculativeReadsSkipped(t *testing.T) {
	// TLSTM intra-thread speculative reads (Aux 2) carry no committed
	// version stamp; they are justified by redo-chain order, not the
	// clock, and must not feed the interval check.
	meta := map[string]string{
		"core.lockbits": "14", "core.clock": "gv4",
		"core.exclusive": "true", "core.mvdepth": "0",
	}
	b := newTraceBuilder(meta)
	b.newRing("core-thr0-slot0").begin().
		ev(txtrace.KindRead, 0, addrX, 2). // spec read, stamp field is 0
		read(addrY, 0).
		commit(1, addrY)
	rep := mustCheck(t, b.t)
	if !rep.Ok() {
		t.Fatalf("speculative read leaked into the checks: %v", rep.Violations)
	}
	if rep.ReadsChecked != 1 {
		t.Fatalf("ReadsChecked = %d, want 1 (spec read skipped)", rep.ReadsChecked)
	}
}

func TestRejectsTraceWithoutMeta(t *testing.T) {
	tr := &txtrace.Trace{Rings: []txtrace.RingDump{{Label: "stm-worker"}}}
	if _, err := Check(tr); err == nil || !strings.Contains(err.Error(), "metadata") {
		t.Fatalf("Check on a TXTRACE1-shaped trace: err = %v, want metadata error", err)
	}
}

func TestRejectsRingWithUnknownNamespace(t *testing.T) {
	b := newTraceBuilder(gv4Meta())
	b.newRing("mystery-ring").begin().commit(1, addrX)
	if _, err := Check(b.t); err == nil || !strings.Contains(err.Error(), "mystery.lockbits") {
		t.Fatalf("err = %v, want missing mystery.lockbits", err)
	}
}

// TestRoundTripThroughDump drives the real recorder end to end: meta
// registration, ring recording, TXTRACE2 serialization, and a complete
// clean verdict out the other side.
func TestRoundTripThroughDump(t *testing.T) {
	rec := txtrace.NewRecorder(256)
	for k, v := range gv4Meta() {
		rec.SetMeta(k, v)
	}
	r := rec.NewRing("stm-worker-0")
	r.Record(txtrace.KindTxBegin, 0, 0, 0)
	r.Record(txtrace.KindAttemptStart, 0, 1, 0)
	r.Record(txtrace.KindRead, 0, addrX, 0)
	r.Record(txtrace.KindCommitWord, 1, addrY, 0)
	r.Record(txtrace.KindCommit, 1, 1, 0)

	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	tr, err := txtrace.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Meta["stm.clock"] != "gv4" {
		t.Fatalf("meta lost in round trip: %v", tr.Meta)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rep := mustCheck(t, tr)
	if !rep.Ok() || !rep.Complete() {
		t.Fatalf("round-tripped clean trace: violations=%v complete=%v", rep.Violations, rep.Complete())
	}
	if rep.Committed != 1 || rep.CommitWords != 1 {
		t.Fatalf("tallies: committed=%d commitWords=%d, want 1/1", rep.Committed, rep.CommitWords)
	}
}
