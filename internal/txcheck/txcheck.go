// Package txcheck is the offline opacity checker: it consumes a
// TXTRACE2 flight-recorder dump (txtrace.ReadTrace), reconstructs every
// transaction attempt — committed, aborted, and unresolved — from the
// per-context rings, rebuilds per-lock-slot version histories from the
// committed transactions' written-word events, and decides opacity via
// the linearizability reduction (Armstrong/Dongol/Doherty, PAPERS.md):
//
//   - Every attempt's read set {(slot_i, v_i)} — where v_i is the
//     version stamp the read observed — must admit a serialization
//     point p with max(v_i) <= p < min(next(slot_i, v_i)), next(s, v)
//     being the smallest committed stamp on s strictly above v. An
//     empty intersection means no instant at which all observed values
//     were simultaneously current: the attempt saw an inconsistent
//     snapshot. This check applies to aborted and in-flight attempts
//     too — that is opacity's whole point — and is sound under every
//     clock strategy: a validated read prefix always admits p = the
//     attempt's final valid timestamp, because any writer that
//     displaces a validated read both locks and ticks after the last
//     validation covering it (clock contract T1), stamping strictly
//     above it.
//
//   - Committed writers under an exclusive clock (gv4) additionally
//     anchor at their own commit stamp ts: the unique fetch-and-add
//     stamps are the serialization order, so every read (s, v) must
//     still be current at ts — next(s, v) < ts is a serialization
//     cycle (the transaction read a value some earlier-serialized
//     commit had already displaced, yet committed above it).
//     next(s, v) == ts is the transaction's own write. Non-exclusive
//     clocks legitimately break the stamp-order-equals-serialization-
//     order premise (two serialized writers may share a stamp; sharded
//     stamps are not globally ordered), so this check is gated on the
//     trace's clock metadata.
//
//   - Under an exclusive clock, two distinct committed transactions can
//     never stamp the same slot with the same timestamp (duplicate-
//     stamp violation). Shared-stamp clocks allow it (clock package
//     docs), so the checker merges duplicates silently there.
//
//   - On a drop-free trace every observed stamp v > 0 must appear in
//     its slot's rebuilt history (phantom-version violation: the read
//     returned a torn or fabricated version). A single ring overwrite
//     anywhere in the namespace disables this check — the displacing
//     commit's CommitWord may be among the dropped events.
//
// Version stamps live on lock-table slots, not addresses: the checker
// recomputes each address's slot with the same Fibonacci-hash layout
// the runtime used, taken from the trace metadata ("stm.lockbits", ...)
// that each runtime registers when tracing is armed. Rings are grouped
// into namespaces by label prefix ("stm-worker" -> "stm",
// "core-thr0-slot2" -> "core"), so one recorder shared by several
// runtimes — the differential harness — checks each against its own
// history.
//
// Ring overwrite drops the oldest events, so a retained window can
// start mid-attempt; the checker skips to the first AttemptStart,
// counts what it skipped, and downgrades the ring's verdict from
// "complete" to "partial". Mid-ring sequence gaps are structurally
// impossible in a sound dump (txtrace.Validate rejects them) but are
// handled the same way, defensively.
package txcheck

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"tlstm/internal/locktable"
	"tlstm/internal/tm"
	"tlstm/internal/txtrace"
)

// Verdicts a ring can earn. Violated trumps Partial trumps Complete.
const (
	// VerdictComplete: every retained attempt checked, no events lost,
	// no violations.
	VerdictComplete = "complete"
	// VerdictPartial: no violations, but ring overwrite or a sequence
	// gap lost events — the checked window is a suffix of the run.
	VerdictPartial = "partial"
	// VerdictViolated: at least one opacity violation on this ring.
	VerdictViolated = "violated"
)

// Violation codes.
const (
	// CodeEmptyInterval: an attempt's observed versions admit no
	// serialization point (inconsistent snapshot).
	CodeEmptyInterval = "empty-interval"
	// CodeStaleCommit: a committed writer under an exclusive clock read
	// a version displaced before its own commit stamp (serialization
	// cycle).
	CodeStaleCommit = "stale-read-at-commit"
	// CodeDuplicateStamp: two distinct transactions committed the same
	// slot at the same timestamp under an exclusive clock.
	CodeDuplicateStamp = "duplicate-stamp"
	// CodePhantomVersion: a read observed a nonzero version stamp no
	// committed transaction in the (drop-free) trace ever wrote.
	CodePhantomVersion = "phantom-version"
)

// Violation is one opacity finding, anchored to the ring and event
// sequence that exposed it.
type Violation struct {
	Ring   string
	RingID uint32
	Seq    uint64 // sequence of the anchoring event on that ring
	Code   string
	Msg    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: ring %d (%s) seq %d: %s", v.Code, v.RingID, v.Ring, v.Seq, v.Msg)
}

// RingReport is one ring's verdict and tallies.
type RingReport struct {
	ID        uint32
	Label     string
	Namespace string

	Attempts        int // committed + aborted + unresolved
	Committed       int
	Aborted         int
	Unresolved      int // attempts with no terminal event in the window
	AbortedVerified int // aborted attempts whose read snapshot checked out
	ReadsChecked    int
	CommitWords     int

	DroppedEvents uint64 // ring-overwrite loss (oldest events)
	SeqGaps       int    // mid-ring discontinuities (defensive)
	SkippedEvents int    // events discarded while resyncing to an AttemptStart
	Verdict       string
	Violations    []Violation
}

// Report is a whole-trace verdict.
type Report struct {
	Rings []RingReport

	TxsChecked      int
	Committed       int
	Aborted         int
	AbortedVerified int
	Unresolved      int
	ReadsChecked    int
	CommitWords     int

	CompleteRings int
	PartialRings  int
	ViolatedRings int
	DroppedEvents uint64

	Violations []Violation
}

// Ok reports whether the trace is free of opacity violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Complete reports whether every ring earned a complete verdict.
func (r *Report) Complete() bool {
	return r.ViolatedRings == 0 && r.PartialRings == 0
}

// Counters flattens the report into the txmetrics counter convention.
func (r *Report) Counters() map[string]uint64 {
	return map[string]uint64{
		"txcheck.txs_checked":      uint64(r.TxsChecked),
		"txcheck.committed":        uint64(r.Committed),
		"txcheck.aborted":          uint64(r.Aborted),
		"txcheck.aborted_verified": uint64(r.AbortedVerified),
		"txcheck.reads_checked":    uint64(r.ReadsChecked),
		"txcheck.commit_words":     uint64(r.CommitWords),
		"txcheck.violations":       uint64(len(r.Violations)),
		"txcheck.rings_complete":   uint64(r.CompleteRings),
		"txcheck.rings_partial":    uint64(r.PartialRings),
		"txcheck.rings_violated":   uint64(r.ViolatedRings),
		"txcheck.dropped_events":   r.DroppedEvents,
	}
}

// WriteTable renders the per-ring verdict table `tlstm-trace check`
// and `tlstm-stress -check` print: one line per ring, every violation,
// then totals and the checker's own throughput (elapsed is the Check
// call's wall time; pass 0 to omit the rate).
func (r *Report) WriteTable(w io.Writer, elapsed time.Duration) {
	for _, rr := range r.Rings {
		fmt.Fprintf(w, "ring %3d %-24q verdict=%-9s txs=%-6d committed=%-6d aborted=%-6d abortedVerified=%-6d reads=%-7d commitWords=%-7d drops=%-5d seqGaps=%d\n",
			rr.ID, rr.Label, rr.Verdict, rr.Attempts, rr.Committed, rr.Aborted,
			rr.AbortedVerified, rr.ReadsChecked, rr.CommitWords, rr.DroppedEvents, rr.SeqGaps)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION %s\n", v)
	}
	fmt.Fprintf(w, "total: txs=%d committed=%d aborted=%d abortedVerified=%d reads=%d violations=%d rings[complete=%d partial=%d violated=%d]\n",
		r.TxsChecked, r.Committed, r.Aborted, r.AbortedVerified,
		r.ReadsChecked, len(r.Violations), r.CompleteRings, r.PartialRings, r.ViolatedRings)
	verdict := "PASS"
	switch {
	case !r.Ok():
		verdict = "FAIL"
	case !r.Complete():
		verdict = "PASS (partial: ring overwrite lost events; the checked window is a suffix of the run)"
	}
	if elapsed > 0 {
		fmt.Fprintf(w, "opacity: %s (checked %d txs in %v, %.0f txs/sec)\n",
			verdict, r.TxsChecked, elapsed.Round(time.Microsecond),
			float64(r.TxsChecked)/elapsed.Seconds())
	} else {
		fmt.Fprintf(w, "opacity: %s (checked %d txs)\n", verdict, r.TxsChecked)
	}
}

// obs is one checked read: the slot its address hashes to and the
// version stamp the read observed.
type obs struct {
	addr  uint64
	slot  uint64
	stamp uint64
	seq   uint64
}

// attempt is one reconstructed transaction attempt on one ring.
type attempt struct {
	startSeq   uint64
	reads      []obs
	writes     map[uint64]uint64 // slot -> commit stamp (deduped)
	committed  bool
	terminated bool // saw Commit or Abort
	stamp      uint64
	lastSeq    uint64
}

// ringParse is one ring's reconstruction.
type ringParse struct {
	dump     *txtrace.RingDump
	attempts []attempt
	seqGaps  int
	skipped  int
}

// namespace is one runtime's slice of the trace: its rings, its lock
// layout, its clock model, and the per-slot version histories rebuilt
// from its committed transactions.
type namespace struct {
	name      string
	layout    locktable.Layout
	exclusive bool
	clockName string
	rings     []*ringParse
	dropFree  bool
	// hist maps slot -> sorted unique committed stamps on that slot.
	hist map[uint64][]uint64
}

// next returns the smallest committed stamp on slot strictly above v,
// or 0 if none is known (missing history is lenient, never a false
// positive: an unknown displacement cannot shrink the interval).
func (ns *namespace) next(slot, v uint64) uint64 {
	h := ns.hist[slot]
	i := sort.Search(len(h), func(i int) bool { return h[i] > v })
	if i == len(h) {
		return 0
	}
	return h[i]
}

func (ns *namespace) knows(slot, v uint64) bool {
	h := ns.hist[slot]
	i := sort.Search(len(h), func(i int) bool { return h[i] >= v })
	return i < len(h) && h[i] == v
}

// Check reconstructs and verifies every transaction attempt in the
// trace. It needs the runtime metadata a TXTRACE2 dump carries; a
// TXTRACE1 trace (no metadata, no CommitWord events) is rejected.
func Check(t *txtrace.Trace) (*Report, error) {
	if len(t.Meta) == 0 {
		return nil, fmt.Errorf("txcheck: trace carries no runtime metadata (TXTRACE1 dump?): re-record with the current recorder")
	}

	// Group rings by namespace and parse each into attempts.
	byNS := make(map[string]*namespace)
	order := []string{}
	reports := make([]RingReport, len(t.Rings))
	for i := range t.Rings {
		rd := &t.Rings[i]
		name := rd.Label
		if j := strings.IndexByte(name, '-'); j >= 0 {
			name = name[:j]
		}
		ns := byNS[name]
		if ns == nil {
			bitsStr, ok := t.Meta[name+".lockbits"]
			if !ok {
				return nil, fmt.Errorf("txcheck: ring %d (%s): no %q metadata in trace (runtime not armed with this recorder?)", rd.ID, rd.Label, name+".lockbits")
			}
			bits, err := strconv.Atoi(bitsStr)
			if err != nil {
				return nil, fmt.Errorf("txcheck: bad %s.lockbits %q: %v", name, bitsStr, err)
			}
			ns = &namespace{
				name:      name,
				layout:    locktable.NewLayout(bits, 1),
				exclusive: t.Meta[name+".exclusive"] == "true",
				clockName: t.Meta[name+".clock"],
				dropFree:  true,
				hist:      make(map[uint64][]uint64),
			}
			byNS[name] = ns
			order = append(order, name)
		}
		rp := parseRing(rd, ns.layout)
		ns.rings = append(ns.rings, rp)
		if rd.Drops > 0 || rp.seqGaps > 0 {
			ns.dropFree = false
		}
		reports[i] = RingReport{
			ID:            rd.ID,
			Label:         rd.Label,
			Namespace:     name,
			DroppedEvents: rd.Drops,
			SeqGaps:       rp.seqGaps,
			SkippedEvents: rp.skipped,
		}
	}

	rep := &Report{}

	// Rebuild per-slot version histories from committed attempts; under
	// an exclusive clock, flag duplicate (slot, stamp) pairs written by
	// distinct transactions.
	for _, name := range order {
		ns := byNS[name]
		type stampSrc struct {
			ring *ringParse
			seq  uint64
		}
		seen := make(map[[2]uint64]stampSrc)
		for _, rp := range ns.rings {
			for ai := range rp.attempts {
				at := &rp.attempts[ai]
				if !at.committed {
					continue
				}
				for slot, stamp := range at.writes {
					key := [2]uint64{slot, stamp}
					if first, dup := seen[key]; dup {
						if ns.exclusive {
							v := Violation{
								Ring:   rp.dump.Label,
								RingID: rp.dump.ID,
								Seq:    at.lastSeq,
								Code:   CodeDuplicateStamp,
								Msg: fmt.Sprintf("slot %d committed twice at stamp %d (first by ring %d seq %d): exclusive clock %q hands out unique stamps",
									slot, stamp, first.ring.dump.ID, first.seq, ns.clockName),
							}
							ringReportFor(reports, rp.dump.ID).Violations = append(ringReportFor(reports, rp.dump.ID).Violations, v)
						}
						continue
					}
					seen[key] = stampSrc{ring: rp, seq: at.lastSeq}
					ns.hist[slot] = append(ns.hist[slot], stamp)
				}
			}
		}
		for slot := range ns.hist {
			h := ns.hist[slot]
			sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
		}
	}

	// Check every attempt against its namespace's history.
	for _, name := range order {
		ns := byNS[name]
		for _, rp := range ns.rings {
			rr := ringReportFor(reports, rp.dump.ID)
			for ai := range rp.attempts {
				at := &rp.attempts[ai]
				rr.Attempts++
				rr.ReadsChecked += len(at.reads)
				rr.CommitWords += len(at.writes)
				clean := checkAttempt(ns, rp, at, rr)
				switch {
				case at.committed:
					rr.Committed++
				case at.terminated:
					rr.Aborted++
					if clean && len(at.reads) > 0 {
						rr.AbortedVerified++
					}
				default:
					rr.Unresolved++
				}
			}
		}
	}

	// Verdicts and totals.
	for i := range reports {
		rr := &reports[i]
		switch {
		case len(rr.Violations) > 0:
			rr.Verdict = VerdictViolated
			rep.ViolatedRings++
		case rr.DroppedEvents > 0 || rr.SeqGaps > 0:
			rr.Verdict = VerdictPartial
			rep.PartialRings++
		default:
			rr.Verdict = VerdictComplete
			rep.CompleteRings++
		}
		rep.TxsChecked += rr.Attempts
		rep.Committed += rr.Committed
		rep.Aborted += rr.Aborted
		rep.AbortedVerified += rr.AbortedVerified
		rep.Unresolved += rr.Unresolved
		rep.ReadsChecked += rr.ReadsChecked
		rep.CommitWords += rr.CommitWords
		rep.DroppedEvents += rr.DroppedEvents
		rep.Violations = append(rep.Violations, rr.Violations...)
	}
	rep.Rings = reports
	return rep, nil
}

// checkAttempt runs the interval, anchored-commit, and phantom checks
// on one attempt, appending violations to rr. It reports whether the
// attempt passed every check.
func checkAttempt(ns *namespace, rp *ringParse, at *attempt, rr *RingReport) bool {
	if len(at.reads) == 0 {
		return true
	}
	clean := true

	// Serialization interval: [max observed stamp, min next displacement).
	var lo uint64
	hi := uint64(0) // 0 = unbounded
	var hiObs, loObs obs
	for _, o := range at.reads {
		if o.stamp >= lo {
			lo, loObs = o.stamp, o
		}
		nx := ns.next(o.slot, o.stamp)
		if nx != 0 && (hi == 0 || nx < hi) {
			hi, hiObs = nx, o
		}
	}
	if hi != 0 && hi <= lo {
		clean = false
		rr.Violations = append(rr.Violations, Violation{
			Ring:   rp.dump.Label,
			RingID: rp.dump.ID,
			Seq:    hiObs.seq,
			Code:   CodeEmptyInterval,
			Msg: fmt.Sprintf("no serialization point: read of addr %#x observed stamp %d displaced at %d, but read of addr %#x observed stamp %d (attempt at seq %d saw an inconsistent snapshot)",
				hiObs.addr, hiObs.stamp, hi, loObs.addr, loObs.stamp, at.startSeq),
		})
	}

	// Committed writers under an exclusive clock serialize exactly at
	// their commit stamp: every read must survive to it.
	if at.committed && len(at.writes) > 0 && ns.exclusive {
		for _, o := range at.reads {
			nx := ns.next(o.slot, o.stamp)
			if nx != 0 && nx < at.stamp {
				clean = false
				rr.Violations = append(rr.Violations, Violation{
					Ring:   rp.dump.Label,
					RingID: rp.dump.ID,
					Seq:    o.seq,
					Code:   CodeStaleCommit,
					Msg: fmt.Sprintf("committed at stamp %d but read of addr %#x observed stamp %d displaced at %d: serialization cycle under exclusive clock %q",
						at.stamp, o.addr, o.stamp, nx, ns.clockName),
				})
			}
		}
	}

	// Drop-free traces have complete histories: every nonzero observed
	// stamp must have been written by some committed transaction.
	if ns.dropFree {
		for _, o := range at.reads {
			if o.stamp != 0 && !ns.knows(o.slot, o.stamp) {
				clean = false
				rr.Violations = append(rr.Violations, Violation{
					Ring:   rp.dump.Label,
					RingID: rp.dump.ID,
					Seq:    o.seq,
					Code:   CodePhantomVersion,
					Msg: fmt.Sprintf("read of addr %#x observed stamp %d, which no committed transaction wrote to slot %d (torn or fabricated version)",
						o.addr, o.stamp, o.slot),
				})
			}
		}
	}
	return clean
}

// parseRing walks one ring's events and reconstructs its attempts. A
// ring whose oldest events were overwritten starts mid-attempt: parsing
// resyncs to the first AttemptStart (counting what it skipped), and
// does the same after a defensive mid-ring sequence gap.
func parseRing(rd *txtrace.RingDump, layout locktable.Layout) *ringParse {
	rp := &ringParse{dump: rd}
	var cur *attempt
	resync := rd.Drops > 0
	var prevSeq uint64
	flush := func() {
		if cur != nil {
			rp.attempts = append(rp.attempts, *cur)
			cur = nil
		}
	}
	for i, e := range rd.Events {
		if i > 0 && e.Seq != prevSeq+1 {
			// Structurally impossible in a Validate-clean dump; resync
			// defensively and drop the interrupted attempt unchecked
			// (its read set may be missing events).
			rp.seqGaps++
			cur = nil
			resync = true
		}
		prevSeq = e.Seq
		if resync && txtrace.Kind(e.Kind) != txtrace.KindAttemptStart {
			rp.skipped++
			continue
		}
		switch txtrace.Kind(e.Kind) {
		case txtrace.KindAttemptStart:
			resync = false
			flush()
			cur = &attempt{startSeq: e.Seq, lastSeq: e.Seq}
		case txtrace.KindRead:
			// Aux 2 marks a TLSTM intra-thread speculative read (served
			// from a predecessor task's redo chain): it carries no
			// committed version stamp and is justified by the chain
			// order, not the clock.
			if cur != nil && e.Aux != 2 {
				cur.reads = append(cur.reads, obs{
					addr:  e.Arg,
					slot:  layout.Index(tm.Addr(e.Arg)),
					stamp: e.Clock,
					seq:   e.Seq,
				})
				cur.lastSeq = e.Seq
			}
		case txtrace.KindCommitWord:
			if cur != nil {
				if cur.writes == nil {
					cur.writes = make(map[uint64]uint64, 8)
				}
				cur.writes[layout.Index(tm.Addr(e.Arg))] = e.Clock
				cur.lastSeq = e.Seq
			}
		case txtrace.KindCommit:
			if cur != nil {
				cur.committed = true
				cur.terminated = true
				cur.stamp = e.Clock
				cur.lastSeq = e.Seq
				flush()
			}
		case txtrace.KindAbort:
			if cur != nil {
				cur.terminated = true
				cur.lastSeq = e.Seq
				flush()
			}
		}
	}
	flush()
	return rp
}

func ringReportFor(reports []RingReport, id uint32) *RingReport {
	for i := range reports {
		if reports[i].ID == id {
			return &reports[i]
		}
	}
	panic("txcheck: unknown ring id")
}
