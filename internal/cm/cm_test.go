package cm

import (
	"sync/atomic"
	"testing"

	"tlstm/internal/locktable"
)

func newOwner(completed int64, startSerial int64, ts uint64) (*locktable.OwnerRef, *atomic.Int64) {
	var c atomic.Int64
	c.Store(completed)
	var t atomic.Uint64
	t.Store(ts)
	o := &locktable.OwnerRef{
		ThreadID:      1,
		CompletedTask: &c,
	}
	o.StartSerial.Store(startSerial)
	o.Timestamp.Store(&t)
	return o, &c
}

func TestGreedyPolitePhaseAbortsSelf(t *testing.T) {
	var g Greedy
	var myTS atomic.Uint64
	owner, _ := newOwner(0, 0, 0)
	if d := g.Resolve(&myTS, 1, 0, owner); d != AbortSelf {
		t.Fatalf("polite requester should abort self, got %v", d)
	}
	if myTS.Load() != 0 {
		t.Fatal("polite requester must not acquire a timestamp")
	}
}

func TestGreedyOlderWins(t *testing.T) {
	var g Greedy
	var oldTS, youngTS atomic.Uint64
	g.MakeGreedy(&oldTS)
	g.MakeGreedy(&youngTS)
	if oldTS.Load() >= youngTS.Load() {
		t.Fatal("timestamps must be monotonically increasing")
	}

	youngOwner, _ := newOwner(0, 0, youngTS.Load())
	if d := g.Resolve(&oldTS, PoliteWrites+1, 0, youngOwner); d != AbortOwner {
		t.Fatalf("older requester should beat younger owner, got %v", d)
	}
	oldOwner, _ := newOwner(0, 0, oldTS.Load())
	if d := g.Resolve(&youngTS, PoliteWrites+1, 0, oldOwner); d != AbortSelf {
		t.Fatalf("younger requester should yield to older owner, got %v", d)
	}
}

func TestGreedyBeatsPoliteOwner(t *testing.T) {
	var g Greedy
	var myTS atomic.Uint64
	owner, _ := newOwner(0, 0, 0) // polite owner, no timestamp
	if d := g.Resolve(&myTS, PoliteWrites+1, 0, owner); d != AbortOwner {
		t.Fatalf("greedy requester should beat polite owner, got %v", d)
	}
	if myTS.Load() == 0 {
		t.Fatal("requester past the polite threshold must become greedy")
	}
}

func TestMakeGreedyIdempotent(t *testing.T) {
	var g Greedy
	var ts atomic.Uint64
	g.MakeGreedy(&ts)
	first := ts.Load()
	g.MakeGreedy(&ts)
	if ts.Load() != first {
		t.Fatal("MakeGreedy must not reassign an existing timestamp")
	}
}

// The paper's rule: abort the more speculative transaction — the one
// with fewer completed predecessor tasks (Alg. 2, cm-should-abort).
func TestTaskAwareProgressWins(t *testing.T) {
	var ta TaskAware
	var myTS atomic.Uint64

	// Owner progress: completed 5, tx started at serial 4 → progress 1.
	owner, _ := newOwner(5, 4, 0)

	// Requester progress 3 (completed 9, start 6): more progress → owner aborts.
	if d := ta.Resolve(9, 6, &myTS, 0, 0, owner); d != AbortOwner {
		t.Fatalf("less speculative requester must win, got %v", d)
	}
	// Requester progress 0: less progress → requester aborts.
	if d := ta.Resolve(6, 6, &myTS, 0, 0, owner); d != AbortSelf {
		t.Fatalf("more speculative requester must lose, got %v", d)
	}
}

func TestTaskAwareTieFallsBackToGreedy(t *testing.T) {
	var ta TaskAware
	var myTS atomic.Uint64
	ta.Greedy.MakeGreedy(&myTS)

	var ownerTS atomic.Uint64
	ta.Greedy.MakeGreedy(&ownerTS) // younger than myTS
	owner, _ := newOwner(5, 4, ownerTS.Load())

	// Equal progress (1 vs 1): greedy tie-break, older requester wins.
	if d := ta.Resolve(7, 6, &myTS, PoliteWrites+1, 0, owner); d != AbortOwner {
		t.Fatalf("tie must fall back to greedy (older wins), got %v", d)
	}
}
