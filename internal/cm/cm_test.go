package cm

import (
	"sync/atomic"
	"testing"

	"tlstm/internal/locktable"
)

// newOwner builds a cross-thread owner header with the given progress
// and priority, as the runtimes' lock entries would expose it.
func newOwner(completed, startSerial int64, ts uint64) *locktable.OwnerRef {
	var c atomic.Int64
	c.Store(completed)
	var t atomic.Uint64
	t.Store(ts)
	o := &locktable.OwnerRef{
		ThreadID:      1,
		CompletedTask: &c,
	}
	o.StartSerial.Store(startSerial)
	o.Timestamp.Store(&t)
	return o
}

// newSelf builds a requester with its own slot and probe.
func newSelf() *Self {
	return &Self{Timestamp: &atomic.Uint64{}, Probe: &Probe{}}
}

func TestSuicideGraceThenAbort(t *testing.T) {
	var s Suicide
	self := newSelf()

	self.Point = PointEncounter
	self.Waited = 0
	if d := s.OnConflict(self, nil); d != Wait {
		t.Fatalf("encounter round 0: got %v, want Wait (one grace yield)", d)
	}
	self.Waited = encounterGrace
	if d := s.OnConflict(self, nil); d != AbortSelf {
		t.Fatalf("encounter past grace: got %v, want AbortSelf", d)
	}

	self.Point = PointCommit
	self.Waited = commitGrace - 1
	if d := s.OnConflict(self, nil); d != Wait {
		t.Fatalf("commit-point round %d: got %v, want Wait (publish holds are short)", self.Waited, d)
	}
	self.Waited = commitGrace
	if d := s.OnConflict(self, nil); d != AbortSelf {
		t.Fatalf("commit-point past grace: got %v, want AbortSelf", d)
	}
}

func TestClassicBackoffShape(t *testing.T) {
	var s Suicide
	self := newSelf()
	for aborts, want := range map[uint64]int{0: 0, 1: 8, 4: 32, 100: 256} {
		self.Aborts = aborts
		if got := s.OnAbort(self); got != want {
			t.Fatalf("OnAbort(aborts=%d) = %d, want %d", aborts, got, want)
		}
	}
}

func TestBackoffRandomizedWithinWindow(t *testing.T) {
	var b Backoff
	self := newSelf()
	self.Aborts = 3
	window := 8 << 3
	distinct := map[int]bool{}
	for i := 0; i < 200; i++ {
		n := b.OnAbort(self)
		if n < 0 || n >= window {
			t.Fatalf("OnAbort(aborts=3) = %d, want in [0,%d)", n, window)
		}
		distinct[n] = true
	}
	if len(distinct) < 2 {
		t.Fatal("randomized backoff produced a constant; expected a spread")
	}
	// The window saturates instead of overflowing.
	self.Aborts = 63
	for i := 0; i < 50; i++ {
		if n := b.OnAbort(self); n < 0 || n >= backoffCap {
			t.Fatalf("OnAbort(aborts=63) = %d, want in [0,%d)", n, backoffCap)
		}
	}
}

func TestGreedyPolitePhaseAbortsSelf(t *testing.T) {
	var g Greedy
	self := newSelf()
	self.Writes = 1
	owner := newOwner(0, 0, 0)
	if d := g.OnConflict(self, owner); d != AbortSelf {
		t.Fatalf("polite requester should abort self, got %v", d)
	}
	if self.Timestamp.Load() != 0 {
		t.Fatal("polite requester must not acquire a timestamp")
	}
}

func TestGreedyOlderWins(t *testing.T) {
	var g Greedy
	var oldTS, youngTS atomic.Uint64
	g.MakeGreedy(&oldTS)
	g.MakeGreedy(&youngTS)
	if oldTS.Load() >= youngTS.Load() {
		t.Fatal("timestamps must be monotonically increasing")
	}

	older := &Self{Timestamp: &oldTS, Writes: PoliteWrites + 1}
	if d := g.OnConflict(older, newOwner(0, 0, youngTS.Load())); d != AbortOwner {
		t.Fatalf("older requester should beat younger owner, got %v", d)
	}
	younger := &Self{Timestamp: &youngTS, Writes: PoliteWrites + 1}
	if d := g.OnConflict(younger, newOwner(0, 0, oldTS.Load())); d != AbortSelf {
		t.Fatalf("younger requester should yield to older owner, got %v", d)
	}
}

func TestGreedyBeatsPoliteOwner(t *testing.T) {
	var g Greedy
	self := newSelf()
	self.Writes = PoliteWrites + 1
	owner := newOwner(0, 0, 0) // polite owner, no timestamp
	if d := g.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("greedy requester should beat polite owner, got %v", d)
	}
	if self.Timestamp.Load() == 0 {
		t.Fatal("requester past the polite threshold must become greedy")
	}
}

func TestGreedyDefeatEscalates(t *testing.T) {
	var g Greedy
	self := newSelf()
	self.Writes = 1 // small transaction
	self.Defeats = PoliteDefeats
	owner := newOwner(0, 0, 0)
	if d := g.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("requester past PoliteDefeats must escalate and beat a polite owner, got %v", d)
	}
	if self.Timestamp.Load() == 0 {
		t.Fatal("escalation must mint a greedy timestamp")
	}
}

func TestMakeGreedyIdempotent(t *testing.T) {
	var g Greedy
	var ts atomic.Uint64
	g.MakeGreedy(&ts)
	first := ts.Load()
	g.MakeGreedy(&ts)
	if ts.Load() != first {
		t.Fatal("MakeGreedy must not reassign an existing timestamp")
	}
}

func TestKarmaHigherPriorityWins(t *testing.T) {
	var k Karma
	self := newSelf()
	self.Writes = 5
	owner := newOwner(0, 0, 2) // owner published karma 2
	if d := k.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("higher-karma requester must win, got %v", d)
	}
	if got := self.Timestamp.Load(); got != 6 {
		t.Fatalf("requester must publish its karma; slot = %d, want 6", got)
	}
}

func TestKarmaDeficitDefersThenClaims(t *testing.T) {
	var k Karma
	self := newSelf()
	self.Writes = 0 // karma 1
	owner := newOwner(0, 0, 5)
	self.Waited = 0
	if d := k.OnConflict(self, owner); d != Wait {
		t.Fatalf("low-karma requester must defer first, got %v", d)
	}
	self.Waited = 4 // deficit paid
	if d := k.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("requester that paid its deficit claims the lock, got %v", d)
	}
}

func TestKarmaCarriesAcrossRestartsAndResetsOnCommit(t *testing.T) {
	var k Karma
	self := newSelf()
	self.Writes = 7
	k.OnAbort(self)
	if self.Probe.karma != 8 {
		t.Fatalf("carry after abort = %d, want 8 (writes+1)", self.Probe.karma)
	}
	self.Writes = 0
	owner := newOwner(0, 0, 5)
	if d := k.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("carried karma must beat the owner, got %v", d)
	}
	k.OnCommit(self)
	if self.Probe.karma != 0 {
		t.Fatal("commit must settle the karma account")
	}
}

// The paper's rule: abort the more speculative transaction — the one
// with fewer completed predecessor tasks (Alg. 2, cm-should-abort).
func TestTaskAwareProgressWins(t *testing.T) {
	ta := New(KindTaskAware).(*TaskAware)

	// Owner progress: completed 5, tx started at serial 4 → progress 1.
	owner := newOwner(5, 4, 0)

	// Requester progress 3 (completed 9, start 6): more progress → owner aborts.
	self := newSelf()
	self.Completed, self.Start = 9, 6
	if d := ta.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("less speculative requester must win, got %v", d)
	}
	// Requester progress 0: less progress → requester aborts.
	self.Completed, self.Start = 6, 6
	if d := ta.OnConflict(self, owner); d != AbortSelf {
		t.Fatalf("more speculative requester must lose, got %v", d)
	}
}

func TestTaskAwareTieFallsBackToBase(t *testing.T) {
	ta := New(KindTaskAware).(*TaskAware)
	g := ta.Base.(*Greedy)

	self := newSelf()
	g.MakeGreedy(self.Timestamp)

	var ownerTS atomic.Uint64
	g.MakeGreedy(&ownerTS) // younger than self
	owner := newOwner(5, 4, ownerTS.Load())

	// Equal progress (1 vs 1): greedy tie-break, older requester wins.
	self.Completed, self.Start = 7, 6
	self.Writes = PoliteWrites + 1
	if d := ta.OnConflict(self, owner); d != AbortOwner {
		t.Fatalf("tie must fall back to greedy (older wins), got %v", d)
	}
}

func TestResolveDegradesNilOwnerAbortOwner(t *testing.T) {
	g := New(KindGreedy)
	self := newSelf()
	self.Writes = PoliteWrites + 1 // greedy phase → raw verdict AbortOwner

	self.Waited = 0
	if d := Resolve(g, self, nil); d != Wait {
		t.Fatalf("AbortOwner against nil owner must degrade to Wait, got %v", d)
	}
	self.Waited = nilOwnerPatience
	if d := Resolve(g, self, nil); d != AbortSelf {
		t.Fatalf("degraded wait must concede after patience, got %v", d)
	}
}

func TestResolveCountsDecisions(t *testing.T) {
	self := newSelf()
	self.Point = PointEncounter
	self.Waited = encounterGrace // past grace → AbortSelf
	if d := Resolve(Suicide{}, self, nil); d != AbortSelf {
		t.Fatalf("got %v, want AbortSelf", d)
	}
	self.Writes = PoliteWrites + 1
	if d := Resolve(New(KindGreedy), self, newOwner(0, 0, 0)); d != AbortOwner {
		t.Fatalf("got %v, want AbortOwner", d)
	}
	aSelf, aOwner, spins := self.Probe.TakeCounts()
	if aSelf != 1 || aOwner != 1 {
		t.Fatalf("counters = (%d,%d), want (1,1)", aSelf, aOwner)
	}
	if spins != 0 {
		t.Fatalf("spins = %d, want 0 (no backoff yet)", spins)
	}
	self.Aborts = 2
	n := AbortBackoff(Suicide{}, self)
	if _, _, spins := self.Probe.TakeCounts(); spins != uint64(n) {
		t.Fatalf("BackoffSpins = %d, want %d", spins, n)
	}
	if a, b, c := self.Probe.TakeCounts(); a != 0 || b != 0 || c != 0 {
		t.Fatal("TakeCounts must clear the counters")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%q) = (%v, %v), want (%v, nil)", k.String(), got, err, k)
		}
		pol := New(k)
		if pol == nil {
			t.Fatalf("New(%v) = nil", k)
		}
		if pol.Name() != k.String() {
			t.Fatalf("New(%v).Name() = %q, want %q", k, pol.Name(), k.String())
		}
	}
	if k, err := Parse("default"); err != nil || k != KindDefault {
		t.Fatalf("Parse(default) = (%v, %v)", k, err)
	}
	if New(KindDefault) != nil {
		t.Fatal("New(KindDefault) must be nil (runtime's own default)")
	}
	if _, err := Parse("nope"); err == nil {
		t.Fatal("Parse must reject unknown policies")
	}
}
