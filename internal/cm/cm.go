// Package cm is the contention-management subsystem shared by every
// transactional runtime in this repository. It owns the policy question
// every TM must answer — when two transactions want the same write lock,
// who yields? — behind one strategy interface, the same way
// internal/clock owns the commit-timestamp question.
//
// The paper's §3.2 policies (SwissTM's two-phase greedy manager and
// TLSTM's task-aware cm-should-abort rule, Alg. 2) are two of the
// implementations; the others come from the wider STM literature:
//
//   - Suicide: pure self-abort with a short grace wait — the fixed
//     behavior TL2 and the write-through STM inlined before this
//     subsystem existed.
//   - Backoff: Suicide's decisions with randomized exponential backoff
//     between retries, replacing the deterministic aborts*8 spin loops.
//   - Greedy: SwissTM's two-phase greedy manager (polite phase, then a
//     seniority timestamp; older transactions win).
//   - Karma: work-based priority accumulated across restarts (Scherer &
//     Scott); a transaction that has invested more work claims the lock,
//     one that has invested less defers in proportion to its deficit.
//   - TaskAware: the paper's Alg. 2 rule — abort the more speculative
//     user-transaction (fewer completed predecessor tasks) — expressed
//     as a decorator over any base policy for the progress tie.
//
// # The decision model
//
// A runtime that hits a held write lock (or, for runtimes whose locks
// are anonymous version words, a locked location) describes itself in a
// Self record and asks the policy through Resolve. The answer is one of
// three Decisions:
//
//   - AbortSelf: the requester rolls back and retries;
//   - AbortOwner: the requester signals the owner's abort flag and
//     waits for the lock to be released;
//   - Wait: the requester waits one round and resolves again (nobody is
//     signalled).
//
// TL2 and the write-through STM have no cross-thread owner header —
// their locks are bare version words — so they resolve with a nil
// owner. A nil owner cannot be signalled, so Resolve degrades an
// AbortOwner verdict into a bounded wait followed by self-abort: you
// cannot kill what you cannot see, but you must not wait for it
// forever either (two write-through transactions eagerly holding each
// other's next lock would otherwise deadlock).
//
// # Liveness
//
// Every built-in policy is non-blocking in the aggregate: on any
// conflict, within a bounded number of Wait rounds the policy either
// aborts the requester (which releases its locks) or aborts the owner
// (whose abort releases the lock being waited for). The conformance
// suite (conformance_test.go) checks decision totality, the bounded-
// wait property, and termination of two-transaction circular waits for
// every policy, under the race detector.
//
// # Accounting
//
// Each execution context owns a Probe, the per-thread side of the
// subsystem: decision counters (AbortsSelf/AbortsOwner/BackoffSpins)
// folded into the runtime's stats shards, the PRNG state behind
// randomized backoff, and the karma carried across restarts. Probes are
// never shared, so the hot path touches no shared contention-manager
// state except the decisions themselves.
package cm

import (
	"fmt"
	"sync/atomic"

	"tlstm/internal/clock"
	"tlstm/internal/locktable"
	"tlstm/internal/xrand"
)

// Decision is the outcome of resolving a write/write conflict between
// the requesting transaction ("self") and the current lock owner.
type Decision int

const (
	// AbortSelf: the requester must roll back (and retry).
	AbortSelf Decision = iota + 1
	// AbortOwner: the owner has been (or will be) signalled to abort;
	// the requester should wait for the lock to be released.
	AbortOwner
	// Wait: nobody aborts; the requester backs off one round and
	// resolves the conflict again.
	Wait
)

// String returns the decision's name (tests and logs).
func (d Decision) String() string {
	switch d {
	case AbortSelf:
		return "AbortSelf"
	case AbortOwner:
		return "AbortOwner"
	case Wait:
		return "Wait"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Point classifies the conflict site by how long the owner will hold
// the contended lock — the one fact that changes how patient a sane
// policy should be.
type Point int

const (
	// PointEncounter: the lock was taken at encounter time and is held
	// for the owner transaction's whole lifetime (SwissTM/TLSTM write
	// locks, the write-through STM's in-place locks). Waiting it out
	// means waiting for a full transaction.
	PointEncounter Point = iota
	// PointCommit: the lock is held by a committing transaction for the
	// duration of its publish phase only (TL2's commit-time locks, seen
	// by readers and by competing committers). The hold is short and
	// the owner is already past the point of being aborted.
	PointCommit
)

// Probe is the per-context contention-management state: decision
// counters the runtimes fold into their stats shards, plus the private
// backoff/karma state that persists across transactions. Each
// worker/task descriptor owns one Probe; it is never shared.
type Probe struct {
	// AbortsSelf counts AbortSelf decisions since the last TakeCounts —
	// one per lost conflict, since the requester rolls back immediately.
	AbortsSelf uint64
	// AbortsOwner counts AbortOwner decisions. A conflict is re-resolved
	// every round the requester waits for the signalled owner to
	// release, so one won conflict contributes one count per round it
	// took the owner to concede: a measure of rounds spent winning, not
	// of distinct conflicts.
	AbortsOwner uint64
	// BackoffSpins counts scheduler yields charged by policy backoff
	// (OnAbort) since the last TakeCounts.
	BackoffSpins uint64

	// rng is the xorshift state behind randomized backoff; seeded
	// lazily, private to the owning context.
	rng uint64
	// karma is the work carried across restarts by the Karma policy.
	karma uint64
}

// TakeCounts returns and clears the accumulated decision counters (the
// backoff and karma state survives, so a recycled descriptor keeps its
// priority).
func (p *Probe) TakeCounts() (abortsSelf, abortsOwner, backoffSpins uint64) {
	abortsSelf, abortsOwner, backoffSpins = p.AbortsSelf, p.AbortsOwner, p.BackoffSpins
	p.AbortsSelf, p.AbortsOwner, p.BackoffSpins = 0, 0, 0
	return
}

// rand steps the probe's xorshift64 generator.
func (p *Probe) rand() uint64 { return xrand.Next(&p.rng) }

// Self describes the requesting transaction at a contention-management
// decision point. Each transaction descriptor embeds one Self; the
// runtime refreshes the situational fields (Writes, Waited, Point,
// Completed, ...) in place before every Resolve, so the conflict path
// never allocates.
type Self struct {
	// Timestamp is the transaction's cross-thread priority slot — the
	// locktable.OwnerRef.Timestamp word other threads' policies read.
	// Greedy keeps its seniority stamp here, Karma its published
	// priority. nil on runtimes without per-transaction slots.
	Timestamp *atomic.Uint64
	// Probe is the owning context's probe (stats and backoff state).
	Probe *Probe

	// Point classifies the conflict site (see Point).
	Point Point
	// Writes is how many writes the transaction has buffered or locked
	// so far (two-phase greedy's polite threshold, Karma's work input).
	Writes int
	// Defeats counts conflicts this transaction has lost so far
	// (two-phase greedy's escalation input).
	Defeats int
	// Waited counts the rounds already waited on the current conflict;
	// the runtime resets it when a new conflict begins.
	Waited int
	// Aborts is the transaction's abort/restart count, the input to
	// OnAbort's backoff computation.
	Aborts uint64

	// Completed and Start describe task progress for the task-aware
	// policy (paper Alg. 2): the owning thread's completed-task serial
	// and the transaction's start serial. Both zero on flat runtimes.
	Completed int64
	Start     int64
}

// Progress is the paper's progress measure: completed predecessor tasks
// of the transaction (Alg. 2, cm-should-abort).
func (s *Self) Progress() int64 { return s.Completed - s.Start }

// Policy is one contention-management strategy. Implementations must be
// safe for concurrent use by all transactions of a runtime; per-context
// mutable state belongs in the Probe, reached through Self.
//
// Call policies through the Resolve / AbortBackoff / Committed wrappers
// so decision accounting and nil-owner degradation stay uniform across
// runtimes.
type Policy interface {
	// Name is the policy's flag/label name ("suicide", "backoff",
	// "greedy", "karma", "taskaware").
	Name() string

	// OnConflict resolves a write/write conflict between the requester
	// and the lock owner. owner is nil when the runtime's locks carry
	// no cross-thread header (TL2, write-through STM); policies must
	// tolerate nil owner fields, and an AbortOwner verdict against a
	// nil owner is degraded to a bounded wait by Resolve.
	OnConflict(self *Self, owner *locktable.OwnerRef) Decision

	// OnAbort is the bookkeeping hook for a self-abort: it is called
	// once per rollback of the requester (CM defeats and validation
	// failures alike) and returns how many scheduler yields the retry
	// should back off before re-entering the conflict window.
	OnAbort(self *Self) int

	// OnCommit is the bookkeeping hook for a successful commit of the
	// requester's transaction (Karma resets its accumulated priority
	// here; stateless policies do nothing).
	OnCommit(self *Self)
}

// nilOwnerPatience bounds how long a degraded AbortOwner verdict keeps
// an anonymous-owner conflict waiting before conceding: long enough to
// ride out a committing owner, short enough that two write-through
// transactions eagerly holding each other's next lock cannot deadlock.
const nilOwnerPatience = 64

// Resolve asks pol to resolve the conflict, degrades un-signallable
// verdicts (AbortOwner against a nil owner becomes a bounded Wait, then
// AbortSelf), and folds the decision into the probe's counters. All
// runtimes route their conflicts through here.
func Resolve(pol Policy, self *Self, owner *locktable.OwnerRef) Decision {
	d := pol.OnConflict(self, owner)
	if owner == nil && d == AbortOwner {
		if self.Waited < nilOwnerPatience {
			d = Wait
		} else {
			d = AbortSelf
		}
	}
	if p := self.Probe; p != nil {
		switch d {
		case AbortSelf:
			p.AbortsSelf++
		case AbortOwner:
			p.AbortsOwner++
		}
	}
	return d
}

// AbortBackoff asks pol how many scheduler yields the requester's retry
// should back off (OnAbort) and charges them to the probe.
func AbortBackoff(pol Policy, self *Self) int {
	n := pol.OnAbort(self)
	if n < 0 {
		n = 0
	}
	if p := self.Probe; p != nil {
		p.BackoffSpins += uint64(n)
	}
	return n
}

// Committed runs the policy's commit bookkeeping.
func Committed(pol Policy, self *Self) { pol.OnCommit(self) }

// classicBackoff is the deterministic progressive backoff every runtime
// inlined before this subsystem existed: min(aborts·8, 256) yields, so
// the conflict window is not re-entered immediately (and, on a single
// CPU, the lock owner we lost to gets scheduled before we re-acquire).
func classicBackoff(aborts uint64) int {
	return int(min(aborts*8, 256))
}

// ---------------------------------------------------------------------------
// Suicide
// ---------------------------------------------------------------------------

// commitGrace and encounterGrace are Suicide's patience per conflict
// site: a committing owner (PointCommit) holds its locks only through
// the publish phase, so waiting it out is almost always cheaper than
// aborting — TL2's inlined loop spun up to 64 rounds for exactly this
// reason. An encounter-time owner (PointEncounter) holds for its whole
// transaction; the write-through STM's inlined rule was one grace yield
// and then abort, which these constants reproduce.
const (
	commitGrace    = 64
	encounterGrace = 1
)

// Suicide is pure self-abort: the requester never signals anyone and
// rolls itself back after a short site-dependent grace wait. It is the
// zero-cost default for TL2 and the write-through STM — exactly the
// behavior both had hardwired — and the simplest possible baseline for
// policy sweeps. The zero value is ready to use.
type Suicide struct{}

// Name implements Policy.
func (Suicide) Name() string { return KindSuicide.String() }

// OnConflict implements Policy: wait out a committing owner briefly,
// then die; never touch the owner.
func (Suicide) OnConflict(self *Self, _ *locktable.OwnerRef) Decision {
	grace := encounterGrace
	if self.Point == PointCommit {
		grace = commitGrace
	}
	if self.Waited < grace {
		return Wait
	}
	return AbortSelf
}

// OnAbort implements Policy with the classic deterministic backoff.
func (Suicide) OnAbort(self *Self) int { return classicBackoff(self.Aborts) }

// OnCommit implements Policy (stateless).
func (Suicide) OnCommit(*Self) {}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

// Backoff resolves like Suicide but spaces retries with randomized
// exponential backoff: the yield count is drawn uniformly from a window
// that doubles with every abort, so two transactions that keep losing
// to each other de-synchronize instead of re-colliding in lock-step —
// the failure mode the deterministic aborts·8 loop cannot break. The
// zero value is ready to use.
type Backoff struct{}

// backoffCap bounds the randomized window (in scheduler yields).
const backoffCap = 1024

// Name implements Policy.
func (Backoff) Name() string { return KindBackoff.String() }

// OnConflict implements Policy: Suicide's decisions.
func (Backoff) OnConflict(self *Self, owner *locktable.OwnerRef) Decision {
	return Suicide{}.OnConflict(self, owner)
}

// OnAbort implements Policy: a uniform draw from [0, min(8·2^aborts,
// backoffCap)).
func (Backoff) OnAbort(self *Self) int { return randomizedBackoff(self) }

// randomizedBackoff draws a uniform yield count from a window that
// doubles with every abort. Shared by Backoff and Karma: any policy
// whose conflicts can kill BOTH sides of a cycle needs randomized
// restart spacing, or the two victims relaunch in lockstep and re-kill
// each other forever.
func randomizedBackoff(self *Self) int {
	shift := self.Aborts
	if shift > 7 {
		shift = 7
	}
	window := min(uint64(8)<<shift, backoffCap)
	if self.Probe == nil {
		return int(window / 2)
	}
	return int(self.Probe.rand() % window)
}

// OnCommit implements Policy (stateless).
func (Backoff) OnCommit(*Self) {}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

// PoliteWrites is the two-phase threshold: a transaction that has
// performed at most this many writes stays in the polite phase (it
// backs off by aborting itself, never aborting others). Beyond it the
// transaction acquires a greedy timestamp. SwissTM uses a small
// constant for the same purpose.
const PoliteWrites = 10

// PoliteDefeats bounds how many conflicts a transaction may lose while
// polite; past it the transaction escalates to the greedy phase even if
// small. Without this bound, two small transactions whose earlier tasks
// hold each other's next write lock would abort themselves forever
// (circular wait) — the escalation gives one of them a timestamp and
// breaks the cycle, which is the point of SwissTM's two-phase design.
const PoliteDefeats = 1

// Greedy is SwissTM's two-phase greedy contention manager: small
// transactions are polite (self-abort), escalated ones carry a
// seniority timestamp and older beats younger. One instance is shared
// by all transactions of a runtime; the zero value is ready to use.
//
// The greedy-phase ordering comes from a clock.GV4 — the same padded
// fetch-and-add type the commit clock's default strategy uses — so both
// orderings in the system (commit serialization and conflict seniority)
// are built from one shared primitive. It stays a GV4 regardless of the
// runtime's commit-clock strategy: seniority timestamps must be unique
// (two transactions sharing one would deadlock the tie), which is
// exactly the Exclusive property only GV4 provides.
type Greedy struct {
	clock clock.GV4
}

// Name implements Policy.
func (g *Greedy) Name() string { return KindGreedy.String() }

// MakeGreedy assigns ts a greedy timestamp if it does not have one yet.
// Lower timestamps are older and win subsequent conflicts. The
// timestamp slot is shared by all tasks of a user-transaction.
func (g *Greedy) MakeGreedy(ts *atomic.Uint64) {
	if ts.Load() == 0 {
		ts.CompareAndSwap(0, g.clock.Tick(nil))
	}
}

// OnConflict implements Policy: two-phase greedy.
func (g *Greedy) OnConflict(self *Self, owner *locktable.OwnerRef) Decision {
	var my uint64
	if self.Timestamp != nil {
		my = self.Timestamp.Load()
	}
	if my == 0 && self.Writes <= PoliteWrites && self.Defeats < PoliteDefeats {
		// Phase one: be polite, retry on our own dime.
		return AbortSelf
	}
	if my == 0 {
		if self.Timestamp == nil {
			// No slot to escalate into (anonymous-lock runtime): claim
			// the lock; Resolve bounds the wait for the unseeable owner.
			return AbortOwner
		}
		g.MakeGreedy(self.Timestamp)
		my = self.Timestamp.Load()
	}
	if owner == nil {
		return AbortOwner
	}
	// The owner header may belong to a recycled descriptor; the atomic
	// pointer hands us the slot of whatever transaction owns it *now*,
	// which is the one a signalled abort would hit.
	var their uint64
	if slot := owner.Timestamp.Load(); slot != nil {
		their = slot.Load()
	}
	if their == 0 {
		// Owner is still polite; a greedy transaction beats it.
		return AbortOwner
	}
	if my < their {
		return AbortOwner
	}
	return AbortSelf
}

// OnAbort implements Policy with the classic deterministic backoff.
func (g *Greedy) OnAbort(self *Self) int { return classicBackoff(self.Aborts) }

// OnCommit implements Policy (the seniority slot is reset by the
// runtime at transaction start; nothing to do here).
func (g *Greedy) OnCommit(*Self) {}

// ---------------------------------------------------------------------------
// Karma
// ---------------------------------------------------------------------------

// karmaMaxDeference bounds how many rounds a low-karma transaction
// defers to a higher-karma owner before claiming the lock anyway —
// Karma's "pay your dues, then push through" rule (Scherer & Scott).
const karmaMaxDeference = 64

// Karma is work-based priority: a transaction's karma is the work it
// has invested (writes buffered this attempt plus writes lost to every
// earlier aborted attempt, carried in the probe). Higher karma claims
// the lock; lower karma defers one round per point of deficit, then
// claims anyway (Scherer & Scott's push-through rule); commit resets
// the account. Ties are broken by coin flip — both sides see identical
// priorities, so only randomness can break the symmetry.
//
// The push-through rule means a lock CYCLE can kill both of its
// members in the same round (each eventually claims the other's lock),
// so Karma's liveness rests on its randomized restart backoff
// (OnAbort): the victims relaunch at different times and the earlier
// one commits uncontended. A deterministic backoff would replay the
// mutual kill in lockstep forever. The zero value is ready to use.
type Karma struct{}

// Name implements Policy.
func (*Karma) Name() string { return KindKarma.String() }

// karmaOf computes the requester's current priority (always ≥ 1 so a
// published priority is distinguishable from an empty slot).
func karmaOf(self *Self) uint64 {
	k := uint64(self.Writes) + 1
	if self.Probe != nil {
		k += self.Probe.karma
	}
	return k
}

// OnConflict implements Policy.
func (*Karma) OnConflict(self *Self, owner *locktable.OwnerRef) Decision {
	my := karmaOf(self)
	if self.Timestamp != nil {
		// Publish our priority so the owner's own conflicts see it.
		self.Timestamp.Store(my)
	}
	var their uint64
	if owner != nil {
		if slot := owner.Timestamp.Load(); slot != nil {
			their = slot.Load()
		}
	}
	switch {
	case my > their:
		return AbortOwner
	case my < their:
		// In deficit: defer one round per karma point we are short,
		// then claim the lock anyway.
		if uint64(self.Waited) < min(their-my, karmaMaxDeference) {
			return Wait
		}
		return AbortOwner
	default:
		if self.Probe == nil {
			return AbortSelf
		}
		if self.Probe.rand()&1 == 0 {
			return AbortSelf
		}
		return AbortOwner
	}
}

// OnAbort implements Policy: carry the lost work forward as karma, then
// back off by a randomized window (see the type docs: liveness).
func (*Karma) OnAbort(self *Self) int {
	if self.Probe != nil {
		self.Probe.karma += uint64(self.Writes) + 1
	}
	return randomizedBackoff(self)
}

// OnCommit implements Policy: the account is settled.
func (*Karma) OnCommit(self *Self) {
	if self.Probe != nil {
		self.Probe.karma = 0
	}
}

// ---------------------------------------------------------------------------
// TaskAware
// ---------------------------------------------------------------------------

// TaskAware is TLSTM's inter-thread policy (paper Alg. 2,
// cm-should-abort) as a decorator: on a conflict between transactions
// with task progress information, abort the more speculative one — the
// transaction whose thread has completed fewer of its tasks. Progress
// ties (and conflicts with runtimes that expose no progress) fall
// through to the wrapped base policy, so the paper's rule composes with
// any of the flat policies above.
type TaskAware struct {
	// Base resolves progress ties. New(KindTaskAware) wires a Greedy,
	// reproducing the paper's configuration.
	Base Policy
}

// Name implements Policy.
func (t *TaskAware) Name() string { return KindTaskAware.String() }

// OnConflict implements Policy.
func (t *TaskAware) OnConflict(self *Self, owner *locktable.OwnerRef) Decision {
	if owner != nil && owner.CompletedTask != nil {
		selfProgress := self.Progress()
		ownerProgress := owner.CompletedTask.Load() - owner.StartSerial.Load()
		switch {
		case selfProgress > ownerProgress:
			return AbortOwner
		case selfProgress < ownerProgress:
			return AbortSelf
		}
	}
	return t.Base.OnConflict(self, owner)
}

// OnAbort implements Policy (delegated).
func (t *TaskAware) OnAbort(self *Self) int { return t.Base.OnAbort(self) }

// OnCommit implements Policy (delegated).
func (t *TaskAware) OnCommit(self *Self) { t.Base.OnCommit(self) }

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Kind names a built-in policy. The zero value, KindDefault, stands for
// "whatever the runtime's own default is" — New maps it to nil, and the
// runtimes treat a nil Policy as their historical behavior (greedy for
// SwissTM, task-aware greedy for TLSTM, suicide for TL2 and the
// write-through STM).
type Kind int

const (
	// KindDefault selects the runtime's own default policy.
	KindDefault Kind = iota
	// KindSuicide is pure self-abort (TL2/wtstm's historical behavior).
	KindSuicide
	// KindBackoff is self-abort with randomized exponential backoff.
	KindBackoff
	// KindGreedy is SwissTM's two-phase greedy manager.
	KindGreedy
	// KindKarma is work-based priority accumulated across restarts.
	KindKarma
	// KindTaskAware is the paper's Alg. 2 rule over a greedy base.
	KindTaskAware
)

// Kinds lists every concrete built-in policy, in flag order (the
// sweepable set; KindDefault is deliberately absent).
func Kinds() []Kind {
	return []Kind{KindSuicide, KindBackoff, KindGreedy, KindKarma, KindTaskAware}
}

// String returns the flag/label name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDefault:
		return "default"
	case KindSuicide:
		return "suicide"
	case KindBackoff:
		return "backoff"
	case KindGreedy:
		return "greedy"
	case KindKarma:
		return "karma"
	case KindTaskAware:
		return "taskaware"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse maps a flag name to its Kind ("default" selects the runtime's
// own default policy).
func Parse(name string) (Kind, error) {
	if name == KindDefault.String() {
		return KindDefault, nil
	}
	for _, k := range Kinds() {
		if name == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cm: unknown policy %q (want suicide, backoff, greedy, karma, taskaware or default)", name)
}

// New returns a fresh instance of the kind's policy. KindDefault
// returns nil: the runtimes interpret a nil Policy as their own
// default. Policies hold per-runtime state (Greedy's seniority clock),
// so do not share one instance across runtimes.
func New(k Kind) Policy {
	switch k {
	case KindSuicide:
		return Suicide{}
	case KindBackoff:
		return Backoff{}
	case KindGreedy:
		return &Greedy{}
	case KindKarma:
		return &Karma{}
	case KindTaskAware:
		return &TaskAware{Base: &Greedy{}}
	default:
		return nil
	}
}

var (
	_ Policy = Suicide{}
	_ Policy = Backoff{}
	_ Policy = (*Greedy)(nil)
	_ Policy = (*Karma)(nil)
	_ Policy = (*TaskAware)(nil)
)
