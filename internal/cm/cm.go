// Package cm implements the contention-management policies of the paper:
// SwissTM's two-phase greedy manager for inter-thread write/write
// conflicts, and TLSTM's task-aware policy layered on top of it
// (paper §3.2 "Preventing inter-thread deadlocks" and Alg. 2,
// cm-should-abort).
package cm

import (
	"sync/atomic"

	"tlstm/internal/clock"
	"tlstm/internal/locktable"
)

// Decision is the outcome of resolving a write/write conflict between the
// requesting transaction ("self") and the current lock owner.
type Decision int

const (
	// AbortSelf: the requester must roll back (and retry).
	AbortSelf Decision = iota + 1
	// AbortOwner: the owner has been signalled to abort; the requester
	// should wait for the lock to be released.
	AbortOwner
)

// PoliteWrites is the two-phase threshold: a transaction that has
// performed at most this many writes stays in the polite phase (it
// backs off by aborting itself, never aborting others). Beyond it the
// transaction acquires a greedy timestamp. SwissTM uses a small
// constant for the same purpose.
const PoliteWrites = 10

// PoliteDefeats bounds how many conflicts a transaction may lose while
// polite; past it the transaction escalates to the greedy phase even if
// small. Without this bound, two small transactions whose earlier tasks
// hold each other's next write lock would abort themselves forever
// (circular wait) — the escalation gives one of them a timestamp and
// breaks the cycle, which is the point of SwissTM's two-phase design.
const PoliteDefeats = 1

// Greedy is the two-phase greedy contention manager. The zero value is
// ready to use; one instance is shared by all transactions of a runtime.
//
// The greedy-phase ordering comes from a clock.GV4 — the same padded
// fetch-and-add type the commit clock's default strategy uses — so both
// orderings in the system (commit serialization and conflict seniority)
// are built from one shared primitive. It stays a GV4 regardless of the
// runtime's commit-clock strategy: seniority timestamps must be unique
// (two transactions sharing one would deadlock the tie), which is
// exactly the Exclusive property only GV4 provides.
type Greedy struct {
	clock clock.GV4
}

// MakeGreedy assigns tx a greedy timestamp if it does not have one yet.
// Lower timestamps are older and win subsequent conflicts. The timestamp
// slot is shared by all tasks of a user-transaction.
func (g *Greedy) MakeGreedy(ts *atomic.Uint64) {
	if ts.Load() == 0 {
		ts.CompareAndSwap(0, g.clock.Tick(nil))
	}
}

// Resolve applies two-phase greedy between the requester (with greedy
// timestamp slot selfTS, write count selfWrites, and defeats lost
// conflicts so far) and the lock owner.
func (g *Greedy) Resolve(selfTS *atomic.Uint64, selfWrites, defeats int, owner *locktable.OwnerRef) Decision {
	my := selfTS.Load()
	if my == 0 && selfWrites <= PoliteWrites && defeats < PoliteDefeats {
		// Phase one: be polite, retry on our own dime.
		return AbortSelf
	}
	if my == 0 {
		g.MakeGreedy(selfTS)
		my = selfTS.Load()
	}
	// The owner header may belong to a recycled descriptor; the atomic
	// pointer hands us the slot of whatever transaction owns it *now*,
	// which is the one a signalled abort would hit.
	their := owner.Timestamp.Load().Load()
	if their == 0 {
		// Owner is still polite; a greedy transaction beats it.
		return AbortOwner
	}
	if my < their {
		return AbortOwner
	}
	return AbortSelf
}

// TaskAware is TLSTM's inter-thread policy: on a write/write conflict
// between tasks of different user-threads, abort the more speculative
// user-transaction — the one whose thread has completed fewer of the
// transaction's tasks (paper Alg. 2, cm-should-abort). Ties fall back to
// two-phase greedy between the transactions.
type TaskAware struct {
	Greedy Greedy
}

// Resolve decides the conflict between the requesting task (thread
// progress selfCompleted, transaction start selfStart, greedy slot
// selfTS, selfWrites buffered writes, defeats lost conflicts) and the
// entry's owner.
func (t *TaskAware) Resolve(selfCompleted, selfStart int64, selfTS *atomic.Uint64, selfWrites, defeats int, owner *locktable.OwnerRef) Decision {
	selfProgress := selfCompleted - selfStart
	ownerProgress := owner.CompletedTask.Load() - owner.StartSerial.Load()
	switch {
	case selfProgress > ownerProgress:
		return AbortOwner
	case selfProgress < ownerProgress:
		return AbortSelf
	default:
		return t.Greedy.Resolve(selfTS, selfWrites, defeats, owner)
	}
}
