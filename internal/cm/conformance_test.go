package cm

import (
	"sync"
	"sync/atomic"
	"testing"

	"tlstm/internal/locktable"
)

// Shared conformance suite: every contention-management policy must
// satisfy the properties the runtimes' liveness arguments rest on. Run
// with -race: the ABA test doubles as the policies' concurrency
// hammering against recycled owner headers.

// conformancePolicies builds one fresh instance per policy.
func conformancePolicies() map[string]func() Policy {
	m := map[string]func() Policy{}
	for _, k := range Kinds() {
		k := k
		m[k.String()] = func() Policy { return New(k) }
	}
	return m
}

// TestConformance runs the full property set against all policies.
func TestConformance(t *testing.T) {
	for name, mk := range conformancePolicies() {
		t.Run(name, func(t *testing.T) {
			t.Run("DecisionTotality", func(t *testing.T) { conformTotality(t, mk()) })
			t.Run("BoundedWait", func(t *testing.T) { conformBoundedWait(t, mk()) })
			t.Run("CircularWaitTerminates", func(t *testing.T) { conformCircularWait(t, mk()) })
			t.Run("RecycledOwnerABA", func(t *testing.T) { conformABA(t, mk()) })
		})
	}
}

// conformTotality: across the whole input lattice — both conflict
// points, nil and real owners, polite and escalated requesters, fresh
// and long-waiting conflicts — Resolve returns exactly one of the three
// decisions, and never AbortOwner against an owner that cannot be
// signalled.
func conformTotality(t *testing.T, pol Policy) {
	owners := []*locktable.OwnerRef{nil, totOwner(0, 0, 0), totOwner(5, 2, 3)}
	for _, point := range []Point{PointEncounter, PointCommit} {
		for oi, owner := range owners {
			for _, writes := range []int{0, PoliteWrites + 5} {
				for _, defeats := range []int{0, PoliteDefeats, 4} {
					for _, waited := range []int{0, 1, nilOwnerPatience, 500} {
						self := &Self{
							Timestamp: &atomic.Uint64{},
							Probe:     &Probe{},
							Point:     point,
							Writes:    writes,
							Defeats:   defeats,
							Waited:    waited,
						}
						d := Resolve(pol, self, owner)
						if d != AbortSelf && d != AbortOwner && d != Wait {
							t.Fatalf("point=%v owner#%d writes=%d defeats=%d waited=%d: invalid decision %v",
								point, oi, writes, defeats, waited, d)
						}
						if owner == nil && d == AbortOwner {
							t.Fatalf("point=%v writes=%d defeats=%d waited=%d: AbortOwner against nil owner",
								point, writes, defeats, waited)
						}
					}
				}
			}
		}
	}
}

func totOwner(completed, start int64, ts uint64) *locktable.OwnerRef {
	var c atomic.Int64
	c.Store(completed)
	var t atomic.Uint64
	t.Store(ts)
	o := &locktable.OwnerRef{ThreadID: 1, CompletedTask: &c}
	o.StartSerial.Store(start)
	o.Timestamp.Store(&t)
	return o
}

// conformBoundedWait: against an owner that cannot be signalled (nil —
// the write-through STM's whole-lifetime anonymous locks), a fixed
// conflict may not be answered with Wait forever: within a bounded
// number of rounds the policy must abort the requester. Without this
// bound, two write-through transactions eagerly holding each other's
// next lock would deadlock.
func conformBoundedWait(t *testing.T, pol Policy) {
	const bound = 4096
	self := &Self{Timestamp: &atomic.Uint64{}, Probe: &Probe{}, Point: PointEncounter}
	for _, writes := range []int{0, PoliteWrites + 5} {
		self.Writes = writes
		for waited := 0; ; waited++ {
			if waited > bound {
				t.Fatalf("writes=%d: still Waiting after %d rounds against an unsignallable owner", writes, bound)
			}
			self.Waited = waited
			if Resolve(pol, self, nil) != Wait {
				break
			}
		}
	}
}

// conformCircularWait is the two-thread circular-wait regression: two
// transactions each hold a write lock the other needs (the paper's §3.2
// deadlock scenario, and the reason for the PoliteDefeats escalation in
// the two-phase greedy design). Each side repeatedly resolves its
// conflict, restarting with an incremented defeat count whenever it
// loses. The pair must terminate — one side commits — within a bounded
// number of rounds for EVERY policy: politeness escalates, seniority or
// karma orders the pair, coin flips break perfect symmetry.
func conformCircularWait(t *testing.T, pol Policy) {
	const maxRounds = 100_000

	type side struct {
		self    *Self
		abortTx atomic.Bool
		owner   *locktable.OwnerRef
	}
	mkSide := func(id int32) *side {
		s := &side{self: &Self{Timestamp: &atomic.Uint64{}, Probe: &Probe{}, Point: PointEncounter, Writes: 2}}
		var c atomic.Int64
		s.owner = &locktable.OwnerRef{ThreadID: id, CompletedTask: &c}
		s.owner.AbortTx.Store(&s.abortTx)
		s.owner.Timestamp.Store(s.self.Timestamp)
		return s
	}
	a, b := mkSide(1), mkSide(2)

	// step resolves one side's conflict against the other; it reports
	// whether the deadlock broke this round (someone aborted).
	step := func(self, other *side) bool {
		if self.abortTx.Load() {
			// Signalled by the other side: abort, restart politely.
			self.abortTx.Store(false)
			self.self.Defeats++
			self.self.Waited = 0
			return true
		}
		switch Resolve(pol, self.self, other.owner) {
		case AbortSelf:
			self.self.Defeats++
			self.self.Waited = 0
			return true
		case AbortOwner:
			other.abortTx.Store(true)
			self.self.Waited++
		case Wait:
			self.self.Waited++
		}
		return false
	}

	for round := 0; round < maxRounds; round++ {
		if step(a, b) || step(b, a) {
			return // the cycle broke: one side released its locks
		}
	}
	t.Fatalf("circular wait not resolved within %d rounds (defeats: %d vs %d)",
		maxRounds, a.self.Defeats, b.self.Defeats)
}

// conformABA: a policy reading a recycled descriptor's owner header
// must never crash or race while the owner is concurrently re-bound to
// a new transaction (locktable.OwnerRef.BindTx) — the runtimes recycle
// descriptors, so a stale entry pointer hands the policy whatever
// transaction owns the header *now*. Run under -race.
func conformABA(t *testing.T, pol Policy) {
	var completed atomic.Int64
	owner := &locktable.OwnerRef{ThreadID: 7, CompletedTask: &completed}
	var slotA, slotB atomic.Uint64
	var abortA, abortB atomic.Bool
	owner.BindTx(0, &abortA, &slotA)

	const iters = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Rebinder: recycles the owner between two transactions' slots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				slotB.Store(uint64(i + 1))
				owner.BindTx(int64(i), &abortB, &slotB)
			} else {
				slotA.Store(uint64(i + 1))
				owner.BindTx(int64(i), &abortA, &slotA)
			}
			completed.Store(int64(i))
		}
		close(stop)
	}()

	// Resolvers: keep deciding conflicts against the churning header.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			self := &Self{Timestamp: &atomic.Uint64{}, Probe: &Probe{}, Point: PointEncounter, Writes: PoliteWrites + 1}
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := Resolve(pol, self, owner)
				switch d {
				case AbortSelf:
					self.Defeats++
					self.Waited = 0
				case AbortOwner:
					// The slot we signal is whatever transaction owns
					// the header now — at worst a harmless spurious
					// abort, never a write to freed state.
					owner.AbortTx.Load().Store(true)
					self.Waited++
				case Wait:
					self.Waited++
				default:
					t.Errorf("invalid decision %v under recycling", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}
