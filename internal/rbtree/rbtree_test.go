package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tlstm/internal/mem"
	"tlstm/internal/tm"
)

func direct() mem.Direct {
	s := mem.NewStore()
	return mem.Direct{Mem: s, Al: mem.NewAllocator(s)}
}

func TestInsertLookupDelete(t *testing.T) {
	d := direct()
	tr := New(d)
	if !tr.Insert(d, 5, 50) || !tr.Insert(d, 3, 30) || !tr.Insert(d, 8, 80) {
		t.Fatal("fresh inserts must report true")
	}
	if tr.Insert(d, 5, 55) {
		t.Fatal("duplicate insert must report false")
	}
	if v, ok := tr.Lookup(d, 5); !ok || v != 55 {
		t.Fatalf("Lookup(5) = %d,%v; want 55,true", v, ok)
	}
	if tr.Size(d) != 3 {
		t.Fatalf("Size = %d, want 3", tr.Size(d))
	}
	if !tr.Delete(d, 3) {
		t.Fatal("Delete(3) must report true")
	}
	if tr.Delete(d, 3) {
		t.Fatal("Delete(3) twice must report false")
	}
	if tr.Contains(d, 3) {
		t.Fatal("3 still present after delete")
	}
	if msg := tr.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
}

func TestOracleRandomOps(t *testing.T) {
	d := direct()
	tr := New(d)
	oracle := map[int64]uint64{}
	rng := rand.New(rand.NewSource(1))

	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64() % 1000
			_, existed := oracle[k]
			fresh := tr.Insert(d, k, v)
			if fresh == existed {
				t.Fatalf("op %d: Insert(%d) fresh=%v, oracle existed=%v", i, k, fresh, existed)
			}
			oracle[k] = v
		case 1:
			_, existed := oracle[k]
			removed := tr.Delete(d, k)
			if removed != existed {
				t.Fatalf("op %d: Delete(%d) = %v, oracle %v", i, k, removed, existed)
			}
			delete(oracle, k)
		default:
			want, existed := oracle[k]
			got, ok := tr.Lookup(d, k)
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v; want %d,%v", i, k, got, ok, want, existed)
			}
		}
		if i%500 == 0 {
			if msg := tr.CheckInvariants(d); msg != "" {
				t.Fatalf("op %d: %s", i, msg)
			}
			if tr.Size(d) != len(oracle) {
				t.Fatalf("op %d: Size=%d oracle=%d", i, tr.Size(d), len(oracle))
			}
		}
	}
	if msg := tr.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
}

func TestRangeAscending(t *testing.T) {
	d := direct()
	tr := New(d)
	keys := []int64{9, 1, 7, 3, 5, 2, 8, 4, 6}
	for _, k := range keys {
		tr.Insert(d, k, uint64(k*10))
	}
	var got []int64
	tr.Range(d, 2, 7, func(k int64, v uint64) bool {
		got = append(got, k)
		if v != uint64(k*10) {
			t.Fatalf("value mismatch at %d", k)
		}
		return true
	})
	want := []int64{2, 3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Range returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range returned %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	d := direct()
	tr := New(d)
	for k := int64(0); k < 20; k++ {
		tr.Insert(d, k, 1)
	}
	count := 0
	tr.Range(d, 0, 19, func(k int64, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestMinAndSuccessor(t *testing.T) {
	d := direct()
	tr := New(d)
	if _, _, ok := tr.Min(d); ok {
		t.Fatal("Min of empty tree should be not-ok")
	}
	for _, k := range []int64{10, 20, 30} {
		tr.Insert(d, k, uint64(k))
	}
	if k, _, ok := tr.Min(d); !ok || k != 10 {
		t.Fatalf("Min = %d,%v; want 10,true", k, ok)
	}
	if k, _, ok := tr.Successor(d, 10); !ok || k != 20 {
		t.Fatalf("Successor(10) = %d,%v; want 20,true", k, ok)
	}
	if _, _, ok := tr.Successor(d, 30); ok {
		t.Fatal("Successor(30) should be not-ok")
	}
}

func TestDeleteFreesNodes(t *testing.T) {
	d := direct()
	tr := New(d)
	live0 := d.Al.LiveBlocks()
	for k := int64(0); k < 100; k++ {
		tr.Insert(d, k, 1)
	}
	for k := int64(0); k < 100; k++ {
		tr.Delete(d, k)
	}
	if got := d.Al.LiveBlocks(); got != live0 {
		t.Fatalf("LiveBlocks = %d, want %d (deleted nodes must be freed)", got, live0)
	}
}

// Property: after any sequence of inserts and deletes the tree stays a
// valid red-black tree and matches a sorted-keys oracle.
func TestQuickInvariants(t *testing.T) {
	f := func(ins []int16, del []int16) bool {
		d := direct()
		tr := New(d)
		oracle := map[int64]bool{}
		for _, k := range ins {
			tr.Insert(d, int64(k), 1)
			oracle[int64(k)] = true
		}
		for _, k := range del {
			tr.Delete(d, int64(k))
			delete(oracle, int64(k))
		}
		if msg := tr.CheckInvariants(d); msg != "" {
			t.Logf("invariant: %s", msg)
			return false
		}
		var want []int64
		for k := range oracle {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		tr.Range(d, -40000, 40000, func(k int64, v uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

var _ = tm.NilAddr
