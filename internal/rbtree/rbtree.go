// Package rbtree implements the transactional red-black tree used by the
// paper's microbenchmark (§4, Figure 1a) and as an index structure by
// the Vacation application, operating on word-addressed transactional
// memory through the tm.Tx interface — the same data structure runs on
// the SwissTM baseline and on TLSTM tasks.
//
// Layout: the tree is a one-word header holding the root address; nodes
// are 6-word blocks (key, value, left, right, parent, color). All
// pointers are word-encoded addresses; tm.NilAddr is the leaf sentinel.
package rbtree

import "tlstm/internal/tm"

// Node field offsets.
const (
	fKey    = 0
	fVal    = 1
	fLeft   = 2
	fRight  = 3
	fParent = 4
	fColor  = 5

	nodeWords = 6

	red   = 0
	black = 1
)

// Tree is a handle to a transactional red-black tree rooted at a header
// word. The zero value is invalid; use New.
type Tree struct {
	head tm.Addr // head+0: root, head+1: size
}

const headWords = 2

// New allocates an empty tree using tx (which may be a runtime's Direct
// handle during setup).
func New(tx tm.Tx) Tree {
	h := tx.Alloc(headWords)
	tx.Store(h+0, uint64(tm.NilAddr))
	tx.Store(h+1, 0)
	return Tree{head: h}
}

// Handle reconstructs a Tree from its header address (for sharing the
// tree across threads by address).
func Handle(head tm.Addr) Tree { return Tree{head: head} }

// Head exposes the tree's header address.
func (t Tree) Head() tm.Addr { return t.head }

func (t Tree) root(tx tm.Tx) tm.Addr       { return tm.LoadAddr(tx, t.head) }
func (t Tree) setRoot(tx tm.Tx, r tm.Addr) { tm.StoreAddr(tx, t.head, r) }

// Size reports the number of keys in the tree.
func (t Tree) Size(tx tm.Tx) int { return int(tx.Load(t.head + 1)) }

func (t Tree) bumpSize(tx tm.Tx, d int) {
	tx.Store(t.head+1, uint64(int64(tx.Load(t.head+1))+int64(d)))
}

func key(tx tm.Tx, n tm.Addr) int64      { return tm.LoadInt64(tx, n+fKey) }
func val(tx tm.Tx, n tm.Addr) uint64     { return tx.Load(n + fVal) }
func left(tx tm.Tx, n tm.Addr) tm.Addr   { return tm.LoadAddr(tx, n+fLeft) }
func right(tx tm.Tx, n tm.Addr) tm.Addr  { return tm.LoadAddr(tx, n+fRight) }
func parent(tx tm.Tx, n tm.Addr) tm.Addr { return tm.LoadAddr(tx, n+fParent) }
func color(tx tm.Tx, n tm.Addr) uint64 {
	if n == tm.NilAddr {
		return black // nil leaves are black
	}
	return tx.Load(n + fColor)
}

func setLeft(tx tm.Tx, n, v tm.Addr)   { tm.StoreAddr(tx, n+fLeft, v) }
func setRight(tx tm.Tx, n, v tm.Addr)  { tm.StoreAddr(tx, n+fRight, v) }
func setParent(tx tm.Tx, n, v tm.Addr) { tm.StoreAddr(tx, n+fParent, v) }
func setColor(tx tm.Tx, n tm.Addr, c uint64) {
	if n != tm.NilAddr {
		tx.Store(n+fColor, c)
	}
}

// Lookup returns the value stored under k.
func (t Tree) Lookup(tx tm.Tx, k int64) (uint64, bool) {
	n := t.root(tx)
	for n != tm.NilAddr {
		nk := key(tx, n)
		switch {
		case k < nk:
			n = left(tx, n)
		case k > nk:
			n = right(tx, n)
		default:
			return val(tx, n), true
		}
	}
	return 0, false
}

// Contains reports whether k is present.
func (t Tree) Contains(tx tm.Tx, k int64) bool {
	_, ok := t.Lookup(tx, k)
	return ok
}

// Insert adds k→v; if k is already present the value is updated and
// Insert reports false (no new key).
func (t Tree) Insert(tx tm.Tx, k int64, v uint64) bool {
	var p tm.Addr
	n := t.root(tx)
	for n != tm.NilAddr {
		nk := key(tx, n)
		switch {
		case k < nk:
			p = n
			n = left(tx, n)
		case k > nk:
			p = n
			n = right(tx, n)
		default:
			tx.Store(n+fVal, v)
			return false
		}
	}
	nn := tx.Alloc(nodeWords)
	tm.StoreInt64(tx, nn+fKey, k)
	tx.Store(nn+fVal, v)
	setLeft(tx, nn, tm.NilAddr)
	setRight(tx, nn, tm.NilAddr)
	setParent(tx, nn, p)
	setColor(tx, nn, red)
	if p == tm.NilAddr {
		t.setRoot(tx, nn)
	} else if k < key(tx, p) {
		setLeft(tx, p, nn)
	} else {
		setRight(tx, p, nn)
	}
	t.insertFixup(tx, nn)
	t.bumpSize(tx, 1)
	return true
}

func (t Tree) rotateLeft(tx tm.Tx, x tm.Addr) {
	y := right(tx, x)
	yl := left(tx, y)
	setRight(tx, x, yl)
	if yl != tm.NilAddr {
		setParent(tx, yl, x)
	}
	xp := parent(tx, x)
	setParent(tx, y, xp)
	if xp == tm.NilAddr {
		t.setRoot(tx, y)
	} else if x == left(tx, xp) {
		setLeft(tx, xp, y)
	} else {
		setRight(tx, xp, y)
	}
	setLeft(tx, y, x)
	setParent(tx, x, y)
}

func (t Tree) rotateRight(tx tm.Tx, x tm.Addr) {
	y := left(tx, x)
	yr := right(tx, y)
	setLeft(tx, x, yr)
	if yr != tm.NilAddr {
		setParent(tx, yr, x)
	}
	xp := parent(tx, x)
	setParent(tx, y, xp)
	if xp == tm.NilAddr {
		t.setRoot(tx, y)
	} else if x == right(tx, xp) {
		setRight(tx, xp, y)
	} else {
		setLeft(tx, xp, y)
	}
	setRight(tx, y, x)
	setParent(tx, x, y)
}

func (t Tree) insertFixup(tx tm.Tx, z tm.Addr) {
	for {
		zp := parent(tx, z)
		if zp == tm.NilAddr || color(tx, zp) == black {
			break
		}
		zpp := parent(tx, zp)
		if zp == left(tx, zpp) {
			u := right(tx, zpp)
			if color(tx, u) == red {
				setColor(tx, zp, black)
				setColor(tx, u, black)
				setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if z == right(tx, zp) {
				z = zp
				t.rotateLeft(tx, z)
				zp = parent(tx, z)
				zpp = parent(tx, zp)
			}
			setColor(tx, zp, black)
			setColor(tx, zpp, red)
			t.rotateRight(tx, zpp)
		} else {
			u := left(tx, zpp)
			if color(tx, u) == red {
				setColor(tx, zp, black)
				setColor(tx, u, black)
				setColor(tx, zpp, red)
				z = zpp
				continue
			}
			if z == left(tx, zp) {
				z = zp
				t.rotateRight(tx, z)
				zp = parent(tx, z)
				zpp = parent(tx, zp)
			}
			setColor(tx, zp, black)
			setColor(tx, zpp, red)
			t.rotateLeft(tx, zpp)
		}
	}
	setColor(tx, t.root(tx), black)
}

func (t Tree) minimum(tx tm.Tx, n tm.Addr) tm.Addr {
	for {
		l := left(tx, n)
		if l == tm.NilAddr {
			return n
		}
		n = l
	}
}

// Min returns the smallest key (ok=false when empty).
func (t Tree) Min(tx tm.Tx) (int64, uint64, bool) {
	r := t.root(tx)
	if r == tm.NilAddr {
		return 0, 0, false
	}
	n := t.minimum(tx, r)
	return key(tx, n), val(tx, n), true
}

// transplant replaces subtree u with subtree v (v may be nil; vp is v's
// future parent when v is nil).
func (t Tree) transplant(tx tm.Tx, u, v tm.Addr) {
	up := parent(tx, u)
	if up == tm.NilAddr {
		t.setRoot(tx, v)
	} else if u == left(tx, up) {
		setLeft(tx, up, v)
	} else {
		setRight(tx, up, v)
	}
	if v != tm.NilAddr {
		setParent(tx, v, up)
	}
}

// Delete removes k, reporting whether it was present.
func (t Tree) Delete(tx tm.Tx, k int64) bool {
	z := t.root(tx)
	for z != tm.NilAddr {
		zk := key(tx, z)
		if k < zk {
			z = left(tx, z)
		} else if k > zk {
			z = right(tx, z)
		} else {
			break
		}
	}
	if z == tm.NilAddr {
		return false
	}

	y := z
	yOrigColor := color(tx, y)
	var x, xParent tm.Addr

	if left(tx, z) == tm.NilAddr {
		x = right(tx, z)
		xParent = parent(tx, z)
		t.transplant(tx, z, x)
	} else if right(tx, z) == tm.NilAddr {
		x = left(tx, z)
		xParent = parent(tx, z)
		t.transplant(tx, z, x)
	} else {
		y = t.minimum(tx, right(tx, z))
		yOrigColor = color(tx, y)
		x = right(tx, y)
		if parent(tx, y) == z {
			xParent = y
			if x != tm.NilAddr {
				setParent(tx, x, y)
			}
		} else {
			xParent = parent(tx, y)
			t.transplant(tx, y, x)
			setRight(tx, y, right(tx, z))
			setParent(tx, right(tx, y), y)
		}
		t.transplant(tx, z, y)
		setLeft(tx, y, left(tx, z))
		setParent(tx, left(tx, y), y)
		setColor(tx, y, color(tx, z))
	}

	if yOrigColor == black {
		t.deleteFixup(tx, x, xParent)
	}
	tx.Free(z)
	t.bumpSize(tx, -1)
	return true
}

// deleteFixup restores red-black invariants after removing a black node.
// x may be nil, in which case xParent identifies its position.
func (t Tree) deleteFixup(tx tm.Tx, x, xParent tm.Addr) {
	for x != t.root(tx) && color(tx, x) == black {
		if xParent == tm.NilAddr {
			break
		}
		if x == left(tx, xParent) {
			w := right(tx, xParent)
			if color(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, xParent, red)
				t.rotateLeft(tx, xParent)
				w = right(tx, xParent)
			}
			if color(tx, left(tx, w)) == black && color(tx, right(tx, w)) == black {
				setColor(tx, w, red)
				x = xParent
				xParent = parent(tx, x)
			} else {
				if color(tx, right(tx, w)) == black {
					setColor(tx, left(tx, w), black)
					setColor(tx, w, red)
					t.rotateRight(tx, w)
					w = right(tx, xParent)
				}
				setColor(tx, w, color(tx, xParent))
				setColor(tx, xParent, black)
				setColor(tx, right(tx, w), black)
				t.rotateLeft(tx, xParent)
				x = t.root(tx)
				xParent = tm.NilAddr
			}
		} else {
			w := left(tx, xParent)
			if color(tx, w) == red {
				setColor(tx, w, black)
				setColor(tx, xParent, red)
				t.rotateRight(tx, xParent)
				w = left(tx, xParent)
			}
			if color(tx, right(tx, w)) == black && color(tx, left(tx, w)) == black {
				setColor(tx, w, red)
				x = xParent
				xParent = parent(tx, x)
			} else {
				if color(tx, left(tx, w)) == black {
					setColor(tx, right(tx, w), black)
					setColor(tx, w, red)
					t.rotateLeft(tx, w)
					w = left(tx, xParent)
				}
				setColor(tx, w, color(tx, xParent))
				setColor(tx, xParent, black)
				setColor(tx, left(tx, w), black)
				t.rotateRight(tx, xParent)
				x = t.root(tx)
				xParent = tm.NilAddr
			}
		}
	}
	setColor(tx, x, black)
}

// Range calls fn for every key in [lo, hi] in ascending order; fn
// returning false stops the walk.
func (t Tree) Range(tx tm.Tx, lo, hi int64, fn func(k int64, v uint64) bool) {
	t.rangeNode(tx, t.root(tx), lo, hi, fn)
}

func (t Tree) rangeNode(tx tm.Tx, n tm.Addr, lo, hi int64, fn func(k int64, v uint64) bool) bool {
	if n == tm.NilAddr {
		return true
	}
	k := key(tx, n)
	if k > lo {
		if !t.rangeNode(tx, left(tx, n), lo, hi, fn) {
			return false
		}
	}
	if k >= lo && k <= hi {
		if !fn(k, val(tx, n)) {
			return false
		}
	}
	if k < hi {
		return t.rangeNode(tx, right(tx, n), lo, hi, fn)
	}
	return true
}

// Successor returns the smallest key strictly greater than k.
func (t Tree) Successor(tx tm.Tx, k int64) (int64, uint64, bool) {
	var bestK int64
	var bestV uint64
	found := false
	n := t.root(tx)
	for n != tm.NilAddr {
		nk := key(tx, n)
		if nk > k {
			bestK, bestV, found = nk, val(tx, n), true
			n = left(tx, n)
		} else {
			n = right(tx, n)
		}
	}
	return bestK, bestV, found
}

// CheckInvariants walks the tree verifying the red-black properties and
// BST ordering; it returns a descriptive string for the first violation
// found, or "" when the tree is valid. Intended for tests (run it inside
// a transaction or on a Direct handle).
func (t Tree) CheckInvariants(tx tm.Tx) string {
	r := t.root(tx)
	if r == tm.NilAddr {
		return ""
	}
	if color(tx, r) != black {
		return "root is not black"
	}
	if parent(tx, r) != tm.NilAddr {
		return "root has a parent"
	}
	_, msg := t.checkNode(tx, r)
	return msg
}

func (t Tree) checkNode(tx tm.Tx, n tm.Addr) (blackHeight int, msg string) {
	if n == tm.NilAddr {
		return 1, ""
	}
	l, r := left(tx, n), right(tx, n)
	if l != tm.NilAddr {
		if parent(tx, l) != n {
			return 0, "broken parent link (left)"
		}
		if key(tx, l) >= key(tx, n) {
			return 0, "BST order violated (left)"
		}
	}
	if r != tm.NilAddr {
		if parent(tx, r) != n {
			return 0, "broken parent link (right)"
		}
		if key(tx, r) <= key(tx, n) {
			return 0, "BST order violated (right)"
		}
	}
	if color(tx, n) == red && (color(tx, l) == red || color(tx, r) == red) {
		return 0, "red node with red child"
	}
	lh, m := t.checkNode(tx, l)
	if m != "" {
		return 0, m
	}
	rh, m := t.checkNode(tx, r)
	if m != "" {
		return 0, m
	}
	if lh != rh {
		return 0, "black heights differ"
	}
	if color(tx, n) == black {
		lh++
	}
	return lh, ""
}
