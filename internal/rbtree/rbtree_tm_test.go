package rbtree

import (
	"math/rand"
	"sync"
	"testing"

	"tlstm/internal/core"
	"tlstm/internal/stm"
	"tlstm/internal/tm"
)

// The tree must behave identically under the SwissTM baseline.
func TestOracleUnderSTM(t *testing.T) {
	rt := stm.New()
	var tr Tree
	rt.Atomic(nil, func(tx *stm.Tx) { tr = New(tx) })

	rng := rand.New(rand.NewSource(11))
	oracle := map[int64]uint64{}
	for i := 0; i < 800; i++ {
		k := int64(rng.Intn(120))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64() % 999
			rt.Atomic(nil, func(tx *stm.Tx) { tr.Insert(tx, k, v) })
			oracle[k] = v
		case 1:
			rt.Atomic(nil, func(tx *stm.Tx) { tr.Delete(tx, k) })
			delete(oracle, k)
		default:
			var got uint64
			var ok bool
			rt.Atomic(nil, func(tx *stm.Tx) { got, ok = tr.Lookup(tx, k) })
			want, existed := oracle[k]
			if ok != existed || (ok && got != want) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v; want %d,%v", i, k, got, ok, want, existed)
			}
		}
	}
	var msg string
	rt.Atomic(nil, func(tx *stm.Tx) { msg = tr.CheckInvariants(tx) })
	if msg != "" {
		t.Fatal(msg)
	}
}

// The tree must behave identically under TLSTM with multi-task
// transactions (lookups split across speculative tasks, as in the
// paper's Figure 1a microbenchmark).
func TestOracleUnderTLSTM(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 2, LockTableBits: 16})
	thr := rt.NewThread()
	d := rt.Direct()
	tr := New(d)

	rng := rand.New(rand.NewSource(12))
	oracle := map[int64]uint64{}
	for i := 0; i < 250; i++ {
		k1 := int64(rng.Intn(80))
		k2 := int64(rng.Intn(80))
		v := rng.Uint64() % 999
		switch rng.Intn(3) {
		case 0:
			// Two inserts split across two tasks of one transaction.
			err := thr.Atomic(
				func(tk *core.Task) { tr.Insert(tk, k1, v) },
				func(tk *core.Task) { tr.Insert(tk, k2, v+1) },
			)
			if err != nil {
				t.Fatal(err)
			}
			oracle[k1] = v
			oracle[k2] = v + 1
			if k1 == k2 {
				oracle[k1] = v + 1 // task 2 runs after task 1 in program order
			}
		case 1:
			err := thr.Atomic(
				func(tk *core.Task) { tr.Delete(tk, k1) },
				func(tk *core.Task) { tr.Delete(tk, k2) },
			)
			if err != nil {
				t.Fatal(err)
			}
			delete(oracle, k1)
			delete(oracle, k2)
		default:
			var g1, g2 uint64
			var ok1, ok2 bool
			err := thr.Atomic(
				func(tk *core.Task) { g1, ok1 = tr.Lookup(tk, k1) },
				func(tk *core.Task) { g2, ok2 = tr.Lookup(tk, k2) },
			)
			if err != nil {
				t.Fatal(err)
			}
			w1, e1 := oracle[k1]
			w2, e2 := oracle[k2]
			if ok1 != e1 || (ok1 && g1 != w1) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v; want %d,%v", i, k1, g1, ok1, w1, e1)
			}
			if ok2 != e2 || (ok2 && g2 != w2) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v; want %d,%v", i, k2, g2, ok2, w2, e2)
			}
		}
	}
	thr.Sync()
	if msg := tr.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
	if tr.Size(d) != len(oracle) {
		t.Fatalf("Size = %d, oracle %d", tr.Size(d), len(oracle))
	}
}

// Concurrent threads hammering disjoint key ranges of one tree under the
// baseline STM: the tree must stay valid.
func TestConcurrentDisjointRangesSTM(t *testing.T) {
	rt := stm.New()
	var tr Tree
	rt.Atomic(nil, func(tx *stm.Tx) { tr = New(tx) })

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := int64(w * 1000)
			for k := lo; k < lo+100; k++ {
				rt.Atomic(nil, func(tx *stm.Tx) { tr.Insert(tx, k, uint64(k)) })
			}
			for k := lo; k < lo+100; k += 2 {
				rt.Atomic(nil, func(tx *stm.Tx) { tr.Delete(tx, k) })
			}
		}(w)
	}
	wg.Wait()

	var msg string
	var size int
	rt.Atomic(nil, func(tx *stm.Tx) {
		msg = tr.CheckInvariants(tx)
		size = tr.Size(tx)
	})
	if msg != "" {
		t.Fatal(msg)
	}
	if size != workers*50 {
		t.Fatalf("Size = %d, want %d", size, workers*50)
	}
}

var _ tm.Tx = (*core.Task)(nil)
