// Package xrand is the tiny PRNG shared by the per-context probes of
// internal/clock (GV7's randomized increments) and internal/cm
// (randomized backoff, tie coin flips): a lazily splitmix-seeded
// xorshift64 whose state lives in the owning probe, so drawing
// randomness never touches shared state after the first call.
package xrand

import "sync/atomic"

// seedCtr hands every state its own splitmix-derived stream.
var seedCtr atomic.Uint64

// Next steps the xorshift64 generator at state, seeding it on first
// use (zero state). The returned value — and the state left behind —
// is never 0.
func Next(state *uint64) uint64 {
	if *state == 0 {
		z := seedCtr.Add(1) * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		*state = z | 1
	}
	*state ^= *state << 13
	*state ^= *state >> 7
	*state ^= *state << 17
	return *state
}
