// Package xrand is the tiny PRNG shared by the per-context probes of
// internal/clock (GV7's randomized increments) and internal/cm
// (randomized backoff, tie coin flips): a lazily splitmix-seeded
// xorshift64 whose state lives in the owning probe, so drawing
// randomness never touches shared state after the first call.
package xrand

import "sync/atomic"

// seedCtr hands every state its own splitmix-derived stream.
var seedCtr atomic.Uint64

// Next steps the xorshift64 generator at state, seeding it on first
// use (zero state). The returned value — and the state left behind —
// is never 0.
func Next(state *uint64) uint64 {
	if *state == 0 {
		z := seedCtr.Add(1) * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		*state = z | 1
	}
	*state ^= *state << 13
	*state ^= *state >> 7
	*state ^= *state << 17
	return *state
}

// Splitmix steps the splitmix64 generator at state. Unlike Next —
// which lazily replaces a zero state with a draw from the
// process-global seed counter, making its stream depend on seeding
// order — Splitmix is a pure function of the caller's state, which is
// what the stress-style workload generators (cmd/tlstm-stress, the
// core clock/reclamation soak tests) need for reproducible runs.
func Splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
