package locktable

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tlstm/internal/tm"
)

// Memory-model litmus for FreeRing's reuse protocol. A FreeRing is
// deliberately unsynchronized: Get runs on the owning descriptor's
// incarnations while Retire runs on the transaction's commit task — a
// different goroutine — and the only thing keeping the two (and the
// plain entry fields they touch) apart is the committed-frontier
// publish: Retire(e, at, …) happens before the frontier reaches at,
// and Get(horizon) serves e only once horizon ≥ at.
//
// The test plays both roles with that edge, and nothing else, between
// them: an owner goroutine reuses entries and mutates their plain
// fields (Seed, Update), a retirer goroutine reads those fields and
// retires the entry, and the sole cross-goroutine ordering is a pair
// of sequentially consistent counters standing in for the write-log
// handoff and sched.Latch's frontier publish. Run under -race, any
// missing edge in the protocol — an entry served before its stamp
// matured, a promotion that lets reuse overtake retirement — surfaces
// as a data race on Serial/Words; the directed assertions additionally
// pin pointer identity (reuse really recycles the retired entry, the
// ABA the quiescence gate must make safe) and the OnReclaim invariant
// At ≤ horizon.
func TestLitmusFreeRingStampGatesReuse(t *testing.T) {
	const rounds = int64(20000)

	ring := &FreeRing{}
	var (
		handoff  atomic.Pointer[WEntry] // owner → retirer: the entry in use (the redo-chain handoff)
		used     atomic.Int64           // owner → retirer: rounds handed off
		frontier atomic.Int64           // retirer → owner: committed frontier (sched.Latch stand-in)
	)
	pair := &Pair{}
	owner := &OwnerRef{ThreadID: 1}

	var horizon int64 // plain: written by the owner goroutine just before Get
	var audited, matured int64
	ring.OnReclaim = func(at, epoch int64) {
		audited++
		if at > horizon {
			t.Errorf("entry promoted with At=%d above horizon %d", at, horizon)
		}
		if epoch <= 0 {
			t.Errorf("entry promoted with epoch %d", epoch)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // retirer: the commit-task role
		defer wg.Done()
		for r := int64(1); r <= rounds; r++ {
			for used.Load() < r {
				runtime.Gosched()
			}
			e := handoff.Load()
			// Plain reads of the owner's plain writes: ordered only by
			// the `used` publish above.
			if e.Serial != r {
				t.Errorf("round %d: entry carries serial %d", r, e.Serial)
				return
			}
			if v, ok := e.Lookup(tm.Addr(0x40)); !ok || v != uint64(r) {
				t.Errorf("round %d: buffered word lost (v=%d ok=%v)", r, v, ok)
				return
			}
			// Odd rounds retire with a stamp one past the frontier the
			// owner will hold next round: the entry must sit immature
			// for a round before promote may serve it. Stamps stay
			// non-decreasing (1+1=2, 2+0=2, 3+1=4, …), the ring's
			// documented push order.
			at := r + r%2
			ring.Retire(e, at, r, frontier.Load())
			frontier.Store(r) // the publish: everything above happens before reuse
		}
	}()

	var reused, fresh int64
	prev := make(map[*WEntry]int64) // entry → round it was retired in
	for r := int64(1); r <= rounds; r++ {
		for frontier.Load() < r-1 {
			runtime.Gosched()
		}
		horizon = frontier.Load()
		e := ring.Get(horizon)
		if e != nil {
			retiredAt, known := prev[e]
			if !known {
				t.Fatalf("round %d: Get returned an entry that was never retired", r)
			}
			if retiredAt+retiredAt%2 > horizon {
				t.Fatalf("round %d: entry retired at round %d (stamp %d) served under horizon %d",
					r, retiredAt, retiredAt+retiredAt%2, horizon)
			}
			matured++
			e.Seed(r, pair, tm.Addr(0x40), uint64(r))
			reused++
		} else {
			e = NewEntry(owner, r, pair, tm.Addr(0x40), uint64(r))
			fresh++
		}
		e.Update(tm.Addr(0x48), uint64(r)*2) // second plain write: spills Words past one element
		prev[e] = r
		handoff.Store(e)
		used.Store(r)
	}
	wg.Wait()

	if reused == 0 {
		t.Fatalf("no entry was ever recycled; litmus is vacuous (fresh=%d)", fresh)
	}
	if audited != matured {
		t.Fatalf("OnReclaim fired %d times for %d horizon-gated reuses", audited, matured)
	}
	t.Logf("reused=%d fresh=%d audited=%d", reused, fresh, audited)
}
