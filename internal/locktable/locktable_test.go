package locktable

import (
	"sync/atomic"
	"testing"

	"tlstm/internal/tm"
)

func TestMappingStableAndInRange(t *testing.T) {
	tbl := NewTable(8)
	if tbl.Len() != 256 {
		t.Fatalf("Len = %d, want 256", tbl.Len())
	}
	for a := tm.Addr(1); a < 10_000; a += 37 {
		p1 := tbl.For(a)
		p2 := tbl.For(a)
		if p1 != p2 {
			t.Fatalf("mapping not stable for %#x", a)
		}
	}
}

func TestCollisionsShareAPair(t *testing.T) {
	tbl := NewTable(8)
	// Find two distinct addresses hashing to the same slot; they must
	// share a pair (false conflicts are allowed, missed ones are not).
	a := tm.Addr(5)
	var b tm.Addr
	for c := a + 1; ; c++ {
		if tbl.Index(c) == tbl.Index(a) {
			b = c
			break
		}
	}
	if tbl.For(a) != tbl.For(b) {
		t.Fatalf("addresses %#x and %#x share slot %d but not a pair", a, b, tbl.Index(a))
	}
	if tbl.For(a) == tbl.For(a+1) {
		t.Fatal("adjacent addresses should map to different pairs")
	}
}

// TestStridedDistribution is the directed before/after test for the
// Fibonacci mixing hash: a power-of-two-strided scan (the access
// pattern of an array-of-structs walk) collapses onto len/stride slots
// under the old low-bit mask, while the multiplicative hash keeps the
// occupied-slot count near the table size.
func TestStridedDistribution(t *testing.T) {
	const bits = 10
	tbl := NewTable(bits)
	size := uint64(tbl.Len())
	for _, stride := range []uint64{8, 64, 256} {
		n := size // one strided scan of table-size addresses
		masked := make(map[uint64]int)
		hashed := make(map[uint64]int)
		for i := uint64(0); i < n; i++ {
			a := tm.Addr(i * stride)
			masked[uint64(a)&(size-1)]++
			hashed[tbl.Index(a)]++
		}
		// The mask folds the scan onto size/stride slots exactly.
		if got, want := uint64(len(masked)), size/stride; got != want {
			t.Fatalf("stride %d: mask baseline occupies %d slots, want %d", stride, got, want)
		}
		// The hash must spread the same scan over several times as
		// many slots as the mask (an ideal random spread occupies
		// ~63% of the table; a multiplicative hash on an arithmetic
		// progression lands a bit under that, ~40-60%).
		if got := uint64(len(hashed)); got < size/3 || got < 3*uint64(len(masked)) {
			t.Fatalf("stride %d: fib hash occupies %d of %d slots (mask: %d), want >= %d and >= 3x mask",
				stride, got, size, len(masked), size/3)
		}
		// Worst-case pile-up: the mask piles stride addresses per slot.
		maxHashed := 0
		for _, c := range hashed {
			if c > maxHashed {
				maxHashed = c
			}
		}
		if uint64(maxHashed) >= stride {
			t.Fatalf("stride %d: fib hash piles %d addresses on one slot (mask baseline: %d)",
				stride, maxHashed, stride)
		}
	}
}

// TestShardMappingInvariants pins the tentpole's semantic-invisibility
// contract: shards partition the slot space into contiguous equal
// regions, ShardOf agrees with the slot index, the reverse mapping
// ShardOfPair agrees with ShardOf, and For's resolution is identical
// across every shard count — sharding relabels pairs, it never moves
// an address to different lock state.
func TestShardMappingInvariants(t *testing.T) {
	const bits = 8
	flat := NewTable(bits)
	for _, shards := range []int{1, 2, 4, 8} {
		tbl := New(Config{Bits: bits, Shards: shards})
		if tbl.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", tbl.Shards(), shards)
		}
		perShard := tbl.Len() / shards
		counts := make([]int, shards)
		for a := tm.Addr(1); a < 50_000; a += 13 {
			idx := tbl.Index(a)
			s := tbl.ShardOf(a)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: ShardOf(%#x) = %d out of range", shards, a, s)
			}
			if want := int(idx) / perShard; s != want {
				t.Fatalf("shards=%d: ShardOf(%#x) = %d, want contiguous region %d",
					shards, a, s, want)
			}
			if got := tbl.ShardOfPair(tbl.For(a)); got != s {
				t.Fatalf("shards=%d: ShardOfPair = %d, ShardOf = %d", shards, got, s)
			}
			if idx != flat.Index(a) {
				t.Fatalf("shards=%d: Index(%#x) = %d differs from flat %d — sharding must not move addresses",
					shards, a, idx, flat.Index(a))
			}
			counts[s]++
		}
		// Fibonacci hashing over a dense address range should touch
		// every shard.
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("shards=%d: shard %d never hit", shards, s)
			}
		}
	}
}

func TestPaddedTableResolution(t *testing.T) {
	plain := New(Config{Bits: 8, Shards: 4})
	padded := New(Config{Bits: 8, Shards: 4, Padded: true})
	if !padded.Padded() || plain.Padded() {
		t.Fatal("Padded() must report the config knob")
	}
	if plain.Len() != padded.Len() {
		t.Fatalf("padding changed the logical slot count: %d vs %d", plain.Len(), padded.Len())
	}
	for a := tm.Addr(1); a < 20_000; a += 7 {
		if plain.Index(a) != padded.Index(a) {
			t.Fatalf("padding changed slot resolution for %#x", a)
		}
		if padded.For(a) != padded.For(a) {
			t.Fatalf("padded mapping not stable for %#x", a)
		}
		if got, want := padded.ShardOfPair(padded.For(a)), padded.ShardOf(a); got != want {
			t.Fatalf("padded ShardOfPair = %d, ShardOf = %d", got, want)
		}
	}
	// Distinct slots must not alias through the stride arithmetic.
	seen := make(map[*Pair]uint64)
	for a := tm.Addr(1); a < 5_000; a++ {
		p := padded.For(a)
		if idx, ok := seen[p]; ok && idx != padded.Index(a) {
			t.Fatalf("pair aliased by slots %d and %d", idx, padded.Index(a))
		}
		seen[p] = padded.Index(a)
	}
}

func TestNewLayoutRejectsBadShards(t *testing.T) {
	for _, bad := range []struct{ bits, shards int }{{8, 3}, {8, 6}, {4, 32}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLayout(%d, %d) did not panic", bad.bits, bad.shards)
				}
			}()
			NewLayout(bad.bits, bad.shards)
		}()
	}
}

func TestEntryLookupUpdate(t *testing.T) {
	e := &WEntry{}
	if _, hit := e.Lookup(7); hit {
		t.Fatal("empty entry should miss")
	}
	e.Update(7, 100)
	e.Update(8, 200)
	e.Update(7, 300) // overwrite
	if v, hit := e.Lookup(7); !hit || v != 300 {
		t.Fatalf("Lookup(7) = %d,%v; want 300,true", v, hit)
	}
	if v, hit := e.Lookup(8); !hit || v != 200 {
		t.Fatalf("Lookup(8) = %d,%v; want 200,true", v, hit)
	}
	if len(e.Words) != 2 {
		t.Fatalf("Update must overwrite in place; got %d words", len(e.Words))
	}
}

func TestChainPrevLinks(t *testing.T) {
	tbl := NewTable(8)
	p := tbl.For(1)
	e1 := &WEntry{Serial: 1, Pair: p}
	e2 := &WEntry{Serial: 2, Pair: p}
	if !p.W.CompareAndSwap(nil, e1) {
		t.Fatal("install e1")
	}
	e2.Prev.Store(e1)
	if !p.W.CompareAndSwap(e1, e2) {
		t.Fatal("install e2")
	}
	if got := p.W.Load(); got != e2 {
		t.Fatal("head should be e2")
	}
	if got := p.W.Load().Prev.Load(); got != e1 {
		t.Fatal("prev should be e1")
	}
}

func TestNewTablePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable(0) did not panic")
		}
	}()
	NewTable(0)
}

// ---- FreeRing: the horizon-gated entry pool behind TLSTM's epoch-based
// entry reclamation. These unit tests pin its contract in isolation; the
// end-to-end safety proof lives in internal/core/reclaim_test.go.

func ringOwner() *OwnerRef { return &OwnerRef{ThreadID: 1} }

func TestFreeRingHorizonGatesReuse(t *testing.T) {
	var r FreeRing
	o := ringOwner()
	e := NewEntry(o, 1, nil, 10, 100)
	r.Retire(e, 5, 1, 0) // reusable only once the frontier reaches 5
	for _, h := range []int64{0, 3, 4} {
		if got := r.Get(h); got != nil {
			t.Fatalf("Get(horizon=%d) returned an entry with retirement serial 5", h)
		}
	}
	if reclaims, stalls := r.TakeCounts(); reclaims != 0 || stalls != 3 {
		t.Fatalf("counts after 3 stalled Gets = (%d, %d), want (0, 3)", reclaims, stalls)
	}
	if got := r.Get(5); got != e {
		t.Fatalf("Get(horizon=5) = %v, want the retired entry", got)
	}
	if reclaims, stalls := r.TakeCounts(); reclaims != 1 || stalls != 0 {
		t.Fatalf("counts after matured Get = (%d, %d), want (1, 0)", reclaims, stalls)
	}
	if got := r.Get(100); got != nil {
		t.Fatal("empty ring must report nil, not recycle twice")
	}
}

func TestFreeRingFIFOAndPromotion(t *testing.T) {
	var r FreeRing
	o := ringOwner()
	e1 := NewEntry(o, 1, nil, 1, 1)
	e2 := NewEntry(o, 2, nil, 2, 2)
	e3 := NewEntry(o, 3, nil, 3, 3)
	r.Retire(e1, 3, 1, 0)
	r.Retire(e2, 4, 2, 0)
	// Retiring e3 with a horizon past e1 and e2 promotes both to the
	// free tier ("horizon checked every retire").
	r.Retire(e3, 9, 3, 4)
	if free, q := r.Free(), r.Quiescing(); free != 2 || q != 1 {
		t.Fatalf("after promotion: free=%d quiesce=%d, want 2, 1", free, q)
	}
	// Free tier serves LIFO; the quiesce head stays gated.
	if got := r.Get(4); got != e2 {
		t.Fatalf("first Get = entry serial %d, want e2", got.Serial)
	}
	if got := r.Get(4); got != e1 {
		t.Fatalf("second Get = entry serial %d, want e1", got.Serial)
	}
	if got := r.Get(8); got != nil {
		t.Fatal("e3 (retirement serial 9) must stay gated at horizon 8")
	}
	if got := r.Get(9); got != e3 {
		t.Fatal("e3 must mature at horizon 9")
	}
}

func TestFreeRingCapDropsOverflow(t *testing.T) {
	var r FreeRing
	r.SetCap(1)
	o := ringOwner()
	e1 := NewEntry(o, 1, nil, 1, 1)
	e2 := NewEntry(o, 2, nil, 2, 2)
	r.Retire(e1, 5, 1, 0)
	r.Retire(e2, 6, 2, 0) // ring full of immature entries: e2 drops to the GC
	if q := r.Quiescing(); q != 1 {
		t.Fatalf("quiescing = %d, want 1 (cap)", q)
	}
	if got := r.Get(10); got != e1 {
		t.Fatal("the capped ring must still serve its head")
	}
	if got := r.Get(10); got != nil {
		t.Fatal("the dropped entry must not surface")
	}
	// With the head matured, a Retire at cap promotes it first instead
	// of dropping the newcomer.
	e3 := NewEntry(o, 3, nil, 3, 3)
	e4 := NewEntry(o, 4, nil, 4, 4)
	r.Retire(e3, 7, 3, 0)
	r.Retire(e4, 8, 4, 7)
	if free, q := r.Free(), r.Quiescing(); free != 1 || q != 1 {
		t.Fatalf("promote-at-retire: free=%d quiesce=%d, want 1, 1", free, q)
	}
}

func TestFreeRingPutBypassesHorizon(t *testing.T) {
	var r FreeRing
	o := ringOwner()
	e := NewEntry(o, 1, nil, 1, 1)
	e.Prev.Store(NewEntry(o, 0, nil, 0, 0))
	r.Put(e) // never-published entry: no quiescence needed
	got := r.Get(0)
	if got != e {
		t.Fatal("Put entry must be immediately reusable")
	}
	if got.Prev.Load() != nil {
		t.Fatal("Put must drop the unpublished entry's chain link")
	}
}

func TestFreeRingOnReclaimHook(t *testing.T) {
	var r FreeRing
	var gotAt, gotEpoch int64
	calls := 0
	r.OnReclaim = func(at, epoch int64) { gotAt, gotEpoch = at, epoch; calls++ }
	o := ringOwner()
	r.Put(NewEntry(o, 0, nil, 0, 0))
	if r.Get(0) == nil || calls != 0 {
		t.Fatal("free-tier reuse must not invoke the audit hook (nothing quiesced)")
	}
	r.Retire(NewEntry(o, 1, nil, 1, 1), 5, 7, 0)
	if r.Get(5) == nil {
		t.Fatal("matured entry must be served")
	}
	if calls != 1 || gotAt != 5 || gotEpoch != 7 {
		t.Fatalf("hook saw (calls=%d at=%d epoch=%d), want (1, 5, 7)", calls, gotAt, gotEpoch)
	}
}

// BenchmarkAdjacentPairContention hammers two adjacent slots' r-locks
// from parallel goroutines: a flat table packs four 16 B pairs per
// 64 B cache line, so this is the false-sharing worst case the Padded
// mode eliminates (each pair gets its own line at PadStride spacing).
// On the repo's 1-CPU CI container goroutines interleave instead of
// truly contending, so read the flat-vs-padded legs as a trend to be
// confirmed on multi-core hardware, not a wall-clock verdict.
func BenchmarkAdjacentPairContention(b *testing.B) {
	for _, padded := range []bool{false, true} {
		name := "flat"
		if padded {
			name = "padded"
		}
		b.Run(name, func(b *testing.B) {
			tbl := New(Config{Bits: 8, Padded: padded})
			// Two addresses resolving to adjacent slots: same cache
			// line when flat, distinct lines when padded.
			var addrs [2]tm.Addr
			found := 0
			for a := tm.Addr(1); found < 2; a++ {
				if int(tbl.Index(a)) == found {
					addrs[found] = a
					found++
				}
			}
			var next atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				p := tbl.For(addrs[next.Add(1)&1])
				for pb.Next() {
					p.R.Add(1)
				}
			})
		})
	}
}
