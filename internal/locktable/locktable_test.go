package locktable

import (
	"testing"

	"tlstm/internal/tm"
)

func TestMappingStableAndInRange(t *testing.T) {
	tbl := NewTable(8)
	if tbl.Len() != 256 {
		t.Fatalf("Len = %d, want 256", tbl.Len())
	}
	for a := tm.Addr(1); a < 10_000; a += 37 {
		p1 := tbl.For(a)
		p2 := tbl.For(a)
		if p1 != p2 {
			t.Fatalf("mapping not stable for %#x", a)
		}
	}
}

func TestCollisionsShareAPair(t *testing.T) {
	tbl := NewTable(8)
	a := tm.Addr(5)
	b := a + 256 // one full table stride away
	if tbl.For(a) != tbl.For(b) {
		t.Fatal("addresses one stride apart must share a pair")
	}
	if tbl.For(a) == tbl.For(a+1) {
		t.Fatal("adjacent addresses should map to different pairs")
	}
}

func TestEntryLookupUpdate(t *testing.T) {
	e := &WEntry{}
	if _, hit := e.Lookup(7); hit {
		t.Fatal("empty entry should miss")
	}
	e.Update(7, 100)
	e.Update(8, 200)
	e.Update(7, 300) // overwrite
	if v, hit := e.Lookup(7); !hit || v != 300 {
		t.Fatalf("Lookup(7) = %d,%v; want 300,true", v, hit)
	}
	if v, hit := e.Lookup(8); !hit || v != 200 {
		t.Fatalf("Lookup(8) = %d,%v; want 200,true", v, hit)
	}
	if len(e.Words) != 2 {
		t.Fatalf("Update must overwrite in place; got %d words", len(e.Words))
	}
}

func TestChainPrevLinks(t *testing.T) {
	tbl := NewTable(8)
	p := tbl.For(1)
	e1 := &WEntry{Serial: 1, Pair: p}
	e2 := &WEntry{Serial: 2, Pair: p}
	if !p.W.CompareAndSwap(nil, e1) {
		t.Fatal("install e1")
	}
	e2.Prev.Store(e1)
	if !p.W.CompareAndSwap(e1, e2) {
		t.Fatal("install e2")
	}
	if got := p.W.Load(); got != e2 {
		t.Fatal("head should be e2")
	}
	if got := p.W.Load().Prev.Load(); got != e1 {
		t.Fatal("prev should be e1")
	}
}

func TestNewTablePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable(0) did not panic")
		}
	}()
	NewTable(0)
}

// ---- FreeRing: the horizon-gated entry pool behind TLSTM's epoch-based
// entry reclamation. These unit tests pin its contract in isolation; the
// end-to-end safety proof lives in internal/core/reclaim_test.go.

func ringOwner() *OwnerRef { return &OwnerRef{ThreadID: 1} }

func TestFreeRingHorizonGatesReuse(t *testing.T) {
	var r FreeRing
	o := ringOwner()
	e := NewEntry(o, 1, nil, 10, 100)
	r.Retire(e, 5, 1, 0) // reusable only once the frontier reaches 5
	for _, h := range []int64{0, 3, 4} {
		if got := r.Get(h); got != nil {
			t.Fatalf("Get(horizon=%d) returned an entry with retirement serial 5", h)
		}
	}
	if reclaims, stalls := r.TakeCounts(); reclaims != 0 || stalls != 3 {
		t.Fatalf("counts after 3 stalled Gets = (%d, %d), want (0, 3)", reclaims, stalls)
	}
	if got := r.Get(5); got != e {
		t.Fatalf("Get(horizon=5) = %v, want the retired entry", got)
	}
	if reclaims, stalls := r.TakeCounts(); reclaims != 1 || stalls != 0 {
		t.Fatalf("counts after matured Get = (%d, %d), want (1, 0)", reclaims, stalls)
	}
	if got := r.Get(100); got != nil {
		t.Fatal("empty ring must report nil, not recycle twice")
	}
}

func TestFreeRingFIFOAndPromotion(t *testing.T) {
	var r FreeRing
	o := ringOwner()
	e1 := NewEntry(o, 1, nil, 1, 1)
	e2 := NewEntry(o, 2, nil, 2, 2)
	e3 := NewEntry(o, 3, nil, 3, 3)
	r.Retire(e1, 3, 1, 0)
	r.Retire(e2, 4, 2, 0)
	// Retiring e3 with a horizon past e1 and e2 promotes both to the
	// free tier ("horizon checked every retire").
	r.Retire(e3, 9, 3, 4)
	if free, q := r.Free(), r.Quiescing(); free != 2 || q != 1 {
		t.Fatalf("after promotion: free=%d quiesce=%d, want 2, 1", free, q)
	}
	// Free tier serves LIFO; the quiesce head stays gated.
	if got := r.Get(4); got != e2 {
		t.Fatalf("first Get = entry serial %d, want e2", got.Serial)
	}
	if got := r.Get(4); got != e1 {
		t.Fatalf("second Get = entry serial %d, want e1", got.Serial)
	}
	if got := r.Get(8); got != nil {
		t.Fatal("e3 (retirement serial 9) must stay gated at horizon 8")
	}
	if got := r.Get(9); got != e3 {
		t.Fatal("e3 must mature at horizon 9")
	}
}

func TestFreeRingCapDropsOverflow(t *testing.T) {
	var r FreeRing
	r.SetCap(1)
	o := ringOwner()
	e1 := NewEntry(o, 1, nil, 1, 1)
	e2 := NewEntry(o, 2, nil, 2, 2)
	r.Retire(e1, 5, 1, 0)
	r.Retire(e2, 6, 2, 0) // ring full of immature entries: e2 drops to the GC
	if q := r.Quiescing(); q != 1 {
		t.Fatalf("quiescing = %d, want 1 (cap)", q)
	}
	if got := r.Get(10); got != e1 {
		t.Fatal("the capped ring must still serve its head")
	}
	if got := r.Get(10); got != nil {
		t.Fatal("the dropped entry must not surface")
	}
	// With the head matured, a Retire at cap promotes it first instead
	// of dropping the newcomer.
	e3 := NewEntry(o, 3, nil, 3, 3)
	e4 := NewEntry(o, 4, nil, 4, 4)
	r.Retire(e3, 7, 3, 0)
	r.Retire(e4, 8, 4, 7)
	if free, q := r.Free(), r.Quiescing(); free != 1 || q != 1 {
		t.Fatalf("promote-at-retire: free=%d quiesce=%d, want 1, 1", free, q)
	}
}

func TestFreeRingPutBypassesHorizon(t *testing.T) {
	var r FreeRing
	o := ringOwner()
	e := NewEntry(o, 1, nil, 1, 1)
	e.Prev.Store(NewEntry(o, 0, nil, 0, 0))
	r.Put(e) // never-published entry: no quiescence needed
	got := r.Get(0)
	if got != e {
		t.Fatal("Put entry must be immediately reusable")
	}
	if got.Prev.Load() != nil {
		t.Fatal("Put must drop the unpublished entry's chain link")
	}
}

func TestFreeRingOnReclaimHook(t *testing.T) {
	var r FreeRing
	var gotAt, gotEpoch int64
	calls := 0
	r.OnReclaim = func(at, epoch int64) { gotAt, gotEpoch = at, epoch; calls++ }
	o := ringOwner()
	r.Put(NewEntry(o, 0, nil, 0, 0))
	if r.Get(0) == nil || calls != 0 {
		t.Fatal("free-tier reuse must not invoke the audit hook (nothing quiesced)")
	}
	r.Retire(NewEntry(o, 1, nil, 1, 1), 5, 7, 0)
	if r.Get(5) == nil {
		t.Fatal("matured entry must be served")
	}
	if calls != 1 || gotAt != 5 || gotEpoch != 7 {
		t.Fatalf("hook saw (calls=%d at=%d epoch=%d), want (1, 5, 7)", calls, gotAt, gotEpoch)
	}
}
