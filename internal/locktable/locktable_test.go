package locktable

import (
	"testing"

	"tlstm/internal/tm"
)

func TestMappingStableAndInRange(t *testing.T) {
	tbl := NewTable(8)
	if tbl.Len() != 256 {
		t.Fatalf("Len = %d, want 256", tbl.Len())
	}
	for a := tm.Addr(1); a < 10_000; a += 37 {
		p1 := tbl.For(a)
		p2 := tbl.For(a)
		if p1 != p2 {
			t.Fatalf("mapping not stable for %#x", a)
		}
	}
}

func TestCollisionsShareAPair(t *testing.T) {
	tbl := NewTable(8)
	a := tm.Addr(5)
	b := a + 256 // one full table stride away
	if tbl.For(a) != tbl.For(b) {
		t.Fatal("addresses one stride apart must share a pair")
	}
	if tbl.For(a) == tbl.For(a+1) {
		t.Fatal("adjacent addresses should map to different pairs")
	}
}

func TestEntryLookupUpdate(t *testing.T) {
	e := &WEntry{}
	if _, hit := e.Lookup(7); hit {
		t.Fatal("empty entry should miss")
	}
	e.Update(7, 100)
	e.Update(8, 200)
	e.Update(7, 300) // overwrite
	if v, hit := e.Lookup(7); !hit || v != 300 {
		t.Fatalf("Lookup(7) = %d,%v; want 300,true", v, hit)
	}
	if v, hit := e.Lookup(8); !hit || v != 200 {
		t.Fatalf("Lookup(8) = %d,%v; want 200,true", v, hit)
	}
	if len(e.Words) != 2 {
		t.Fatalf("Update must overwrite in place; got %d words", len(e.Words))
	}
}

func TestChainPrevLinks(t *testing.T) {
	tbl := NewTable(8)
	p := tbl.For(1)
	e1 := &WEntry{Serial: 1, Pair: p}
	e2 := &WEntry{Serial: 2, Pair: p}
	if !p.W.CompareAndSwap(nil, e1) {
		t.Fatal("install e1")
	}
	e2.Prev.Store(e1)
	if !p.W.CompareAndSwap(e1, e2) {
		t.Fatal("install e2")
	}
	if got := p.W.Load(); got != e2 {
		t.Fatal("head should be e2")
	}
	if got := p.W.Load().Prev.Load(); got != e1 {
		t.Fatal("prev should be e1")
	}
}

func TestNewTablePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable(0) did not panic")
		}
	}()
	NewTable(0)
}
