// Package locktable implements SwissTM's global lock table, shared by the
// baseline STM and the TLSTM runtime.
//
// Every word address maps to a pair of locks:
//
//   - the r-lock holds either a version number (the global commit
//     timestamp at which the word's current value was published) or the
//     Locked sentinel while a committing transaction is publishing it;
//   - the w-lock is either unlocked (nil) or points to the newest
//     write-log entry for that location — in TLSTM, the head of the
//     location's redo-log chain, whose Prev links reach entries written
//     by past tasks of the same user-thread (paper §3.3, "Reading").
//
// Entries carry an OwnerRef header with exactly the cross-thread state
// the paper's contention manager and abort machinery consult: the owner's
// transaction start serial, the owning thread's completed-task counter,
// and the two abort signals (abort-transaction and aborted-internally).
package locktable

import (
	"sync/atomic"
	"unsafe"

	"tlstm/internal/tm"
)

// Locked is the r-lock sentinel installed while a commit publishes the
// location (paper Alg. 3, line 83).
const Locked = ^uint64(0)

// Pair is one (r-lock, w-lock) pair.
type Pair struct {
	// R is the read lock: a version number, or Locked.
	R atomic.Uint64
	// W is the write lock: nil when unlocked, else the newest redo-log
	// entry (its Prev chain holds older same-location entries).
	W atomic.Pointer[WEntry]
}

// WordVal is one buffered write: the target word and its new value.
type WordVal struct {
	Addr tm.Addr
	Val  uint64
}

// WEntry is a write-log entry, and at the same time a node of a
// location's redo-log chain. It extends SwissTM's entry with the serial
// number and user-thread identity of the owning task and the link to the
// previous entry for the same location (paper §3.3).
//
// Words is appended to only by the owning task while it runs; other tasks
// of the same thread read it only after observing (through the thread's
// atomic completed-task counter) that the owner completed, which
// establishes the necessary happens-before edge.
type WEntry struct {
	Owner  *OwnerRef
	Serial int64
	Pair   *Pair // the lock pair this entry is (or was) installed under
	Prev   atomic.Pointer[WEntry]
	Words  []WordVal

	// buf is the inline backing array Words starts on: most entries
	// buffer one or two words (a counter update, a pointer swing), so
	// seeding Words from buf makes a fresh single-word entry cost one
	// allocation instead of two. Updates past cap spill to the heap as
	// usual. Use NewEntry (or reseed Words from Seed) to get the inline
	// storage; a literal WEntry{Words: ...} forgoes it harmlessly.
	buf [2]WordVal
}

// NewEntry allocates an entry carrying one buffered word, with Words
// seeded on the entry's inline buffer.
func NewEntry(owner *OwnerRef, serial int64, p *Pair, a tm.Addr, v uint64) *WEntry {
	e := &WEntry{Owner: owner, Serial: serial, Pair: p}
	e.Words = append(e.buf[:0], WordVal{Addr: a, Val: v})
	return e
}

// Seed resets Words onto the inline buffer with a single buffered word.
// Pool recyclers (txlog.WriteLog) use it so a reused entry sheds any
// heap spill a previous life accumulated.
func (e *WEntry) Seed(serial int64, p *Pair, a tm.Addr, v uint64) {
	e.Serial = serial
	e.Pair = p
	e.Prev.Store(nil)
	e.Words = append(e.buf[:0], WordVal{Addr: a, Val: v})
}

// Lookup returns the buffered value for a in this entry, if present.
// A single entry can carry several words when distinct addresses collide
// on one lock pair (SwissTM's lock granularity has the same property).
func (e *WEntry) Lookup(a tm.Addr) (uint64, bool) {
	// Scan backwards so the newest write to a wins.
	for i := len(e.Words) - 1; i >= 0; i-- {
		if e.Words[i].Addr == a {
			return e.Words[i].Val, true
		}
	}
	return 0, false
}

// Update buffers value v for address a in this entry, overwriting a
// previous buffered write to the same address if any.
func (e *WEntry) Update(a tm.Addr, v uint64) {
	for i := len(e.Words) - 1; i >= 0; i-- {
		if e.Words[i].Addr == a {
			e.Words[i].Val = v
			return
		}
	}
	e.Words = append(e.Words, WordVal{Addr: a, Val: v})
}

// OwnerRef is the cross-thread header describing the task (TLSTM) or
// transaction (SwissTM baseline) that owns a write lock. Contention
// managers and the abort machinery read it from other threads, and —
// now that both runtimes recycle their descriptors — a stale entry
// pointer may outlive the incarnation that installed it. The header is
// therefore split into two kinds of field:
//
//   - per-context fields (ThreadID, CompletedTask, AbortInternal) are
//     written exactly once, when the owning descriptor is created, and
//     stay valid for the descriptor's whole pooled lifetime;
//   - per-transaction fields (StartSerial, AbortTx, Timestamp) are
//     re-pointed every time the descriptor is recycled onto a new
//     user-transaction, so they are atomics: a reader holding a stale
//     entry gets the *current* transaction's signal slots. The worst
//     a stale reader can do is signal a spurious abort, which costs
//     one harmless retry — the documented price of an allocation-free
//     hot path (see internal/stm's descriptor-reuse note).
type OwnerRef struct {
	// ThreadID identifies the owning user-thread.
	ThreadID int32
	// StartSerial is the first serial of the owner's user-transaction
	// (tx-start-serial). The task-aware CM computes the owner's progress
	// as completed-task − StartSerial (paper Alg. 2, cm-should-abort).
	StartSerial atomic.Int64
	// CompletedTask points at the owning thread's completed-task
	// counter.
	CompletedTask *atomic.Int64
	// AbortTx points at the abort-transaction signal shared by every
	// task of the owner's current user-transaction.
	AbortTx atomic.Pointer[atomic.Bool]
	// AbortInternal is the owner task's aborted-internally signal
	// (intra-thread WAW, paper Alg. 2 line 47). The flag object lives in
	// the task descriptor and survives recycling, so the pointer is
	// wired once.
	AbortInternal *atomic.Bool
	// Timestamp points at the greedy contention-manager priority of the
	// owner's current user-transaction; lower values are older and win
	// conflicts. Zero means the transaction is still in the polite phase
	// of the two-phase greedy CM. It is shared by every task of the
	// transaction, hence a pointer.
	Timestamp atomic.Pointer[atomic.Uint64]
}

// BindTx re-points the per-transaction fields at a new transaction's
// signal slots: the single mutation a recycled descriptor performs on
// its header. All three stores are atomic, so cross-thread readers
// holding stale entries never race — they just observe the new
// transaction (and may abort it spuriously, which is safe).
func (o *OwnerRef) BindTx(startSerial int64, abortTx *atomic.Bool, timestamp *atomic.Uint64) {
	o.StartSerial.Store(startSerial)
	o.AbortTx.Store(abortTx)
	o.Timestamp.Store(timestamp)
}

// FreeRing is a pool of retired write-lock entries recycled under a
// quiescence horizon: the per-descriptor half of TLSTM's epoch-based
// entry reclamation (ROADMAP "Epoch-based entry reclamation", option
// (b)).
//
// Entries cannot simply be recycled the moment they leave the lock
// table: TLSTM's validate-task keys on bare entry pointers
// (txlog.ReadEntry.FirstPast), so reusing an entry while any task that
// could have recorded it is still mid-attempt is a textbook ABA — a
// stale read could revalidate against the recycled pointer and pass
// falsely. The ring therefore holds two tiers:
//
//   - free: entries that were never published (a lost install CAS) or
//     whose quiescence has already been established. Reusable
//     immediately.
//   - quiesce: a FIFO of retired entries, each stamped with the
//     retirement serial `at` below which it must stay untouched. An
//     entry is reusable only when the caller's horizon — the owning
//     thread's committed-transaction frontier — has reached its stamp:
//     by then every task whose attempt could span the retirement has
//     exited, so no stale FirstPast pointer to the entry survives.
//
// Stamps pushed into one ring are non-decreasing (retirements of one
// descriptor's entries are serialized by the thread's commit order), so
// Get only ever needs to examine the FIFO head.
//
// A FreeRing is owned by one task descriptor: Get is called only by the
// descriptor's own incarnations, and Retire/Put only by contexts already
// ordered before the descriptor's next use (its own attempt, its
// transaction's commit-task, or an abort cleaner sweeping parked
// participants).
type FreeRing struct {
	free    []*WEntry
	quiesce []RetiredEntry
	head    int

	// cap bounds the quiesce FIFO; retirements past the bound drop the
	// entry to the garbage collector instead (0 means unbounded). A cap
	// of 1 is the "aggressive" test configuration: recycling happens on
	// (almost) every commit instead of only under pipelined load.
	cap int

	reclaims uint64 // entries served from the ring instead of the heap
	stalls   uint64 // Get calls that found only immature retired entries

	// OnReclaim, when set, observes every reuse served from the quiesce
	// tier with the entry's retirement stamps — the hook the reclamation
	// invariant checker (core Config.ReclaimAudit) hangs off. It must be
	// wired before the ring is first used and never changed after.
	OnReclaim func(at, epoch int64)
}

// RetiredEntry is one quiescing entry: the entry itself, the retirement
// serial `At` the owner thread's committed frontier must reach before
// reuse, and the thread's retirement epoch `Epoch` at the moment the
// entry was detached (consumed by the reclamation audit: every task
// whose attempt began below this epoch could still hold the entry).
type RetiredEntry struct {
	E         *WEntry
	At, Epoch int64
}

// SetCap bounds the quiesce FIFO at n retired entries (0 = unbounded).
func (r *FreeRing) SetCap(n int) { r.cap = n }

// Put returns an entry that was never published (or whose quiescence
// the caller has already established) straight to the free tier.
func (r *FreeRing) Put(e *WEntry) {
	e.Prev.Store(nil) // unpublished: no reader can hold it; drop the chain link
	r.free = append(r.free, e)
}

// Retire queues a detached entry for reuse once the owner thread's
// committed frontier reaches at. The caller must have unlinked the
// entry from its chain before calling (stale in-flight readers may
// still compare or read it, which is exactly what the horizon protects).
// Retired entries beyond the configured cap are dropped to the GC; the
// current horizon is consulted first so a full FIFO whose head has
// already matured promotes it instead of dropping the newcomer.
func (r *FreeRing) Retire(e *WEntry, at, epoch, horizon int64) {
	r.promote(horizon)
	if r.cap > 0 && len(r.quiesce)-r.head >= r.cap {
		return // ring full of immature entries: leak the newcomer to the GC
	}
	r.quiesce = append(r.quiesce, RetiredEntry{E: e, At: at, Epoch: epoch})
}

// promote moves every matured quiesce entry to the free tier. The
// audit hook fires here rather than at the eventual free-tier pop: the
// quiescence argument holds from the moment the horizon covers the
// stamp (the frontier is monotonic), and auditing at promotion keeps
// every horizon-gated reuse observed exactly once.
func (r *FreeRing) promote(horizon int64) {
	for r.head < len(r.quiesce) && r.quiesce[r.head].At <= horizon {
		re := r.quiesce[r.head]
		r.free = append(r.free, re.E)
		r.quiesce[r.head] = RetiredEntry{}
		r.head++
		if r.OnReclaim != nil {
			r.OnReclaim(re.At, re.Epoch)
		}
	}
	if r.head == len(r.quiesce) {
		r.quiesce = r.quiesce[:0]
		r.head = 0
	}
}

// Get returns a reusable entry, or nil if the ring has none whose
// retirement serial the horizon covers (the caller then allocates
// fresh). The returned entry must be re-initialized with WEntry.Seed
// before use.
func (r *FreeRing) Get(horizon int64) *WEntry {
	if len(r.free) == 0 {
		r.promote(horizon)
	}
	if n := len(r.free); n > 0 {
		e := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		r.reclaims++
		return e
	}
	if r.head < len(r.quiesce) {
		r.stalls++ // only immature retired entries: the caller allocates
	}
	return nil
}

// Quiescing reports how many retired entries are still waiting for
// their horizon (tests).
func (r *FreeRing) Quiescing() int { return len(r.quiesce) - r.head }

// Free reports how many entries are immediately reusable (tests).
func (r *FreeRing) Free() int { return len(r.free) }

// TakeCounts returns and clears the ring's reclaim/stall counters.
func (r *FreeRing) TakeCounts() (reclaims, stalls uint64) {
	reclaims, stalls = r.reclaims, r.stalls
	r.reclaims, r.stalls = 0, 0
	return reclaims, stalls
}

// fibMult is the 64-bit Fibonacci-hashing multiplier (2^64/φ, forced
// odd). Taking the top bits of a*fibMult spreads strided address
// sequences — array scans with power-of-two strides, struct fields at
// fixed offsets — across the whole table, where the old low-bit mask
// folded every stride-2^k scan onto a 1/2^k sliver of the pairs.
const fibMult = 0x9e3779b97f4a7c15

// Layout is the pure address→slot→shard mapping of a sharded lock
// table, separated from Pair storage so the version-lock runtimes
// (tl2, wtstm) can share the exact same sharded geometry over their
// bare lock-word arrays. A Layout is immutable after construction; the
// mapping never changes at runtime (affinity remaps move threads, not
// addresses — see internal/sched.Placement).
//
// Slots are assigned by Fibonacci hashing and shards are the top
// log2(shards) bits of the slot index, so each shard is one contiguous
// region of the table — the "two-level" structure is an indexing
// convention over a single flat allocation, which keeps For at one
// multiply+shift and the N=1 case bit-identical to an unsharded table.
type Layout struct {
	bits       int
	shardShift uint
	shards     int
}

// NewLayout builds the mapping for a table of 2^bits slots split into
// shards contiguous regions. shards must be a power of two (0 and 1
// both mean unsharded) no larger than the slot count.
func NewLayout(bits, shards int) Layout {
	if bits < 4 || bits > 28 {
		panic("locktable: bits out of range [4,28]")
	}
	if shards <= 0 {
		shards = 1
	}
	if shards&(shards-1) != 0 {
		panic("locktable: shard count must be a power of two")
	}
	sb := 0
	for s := shards; s > 1; s >>= 1 {
		sb++
	}
	if sb > bits {
		panic("locktable: more shards than slots")
	}
	return Layout{bits: bits, shardShift: uint(bits - sb), shards: shards}
}

// Index maps an address to its slot in [0, Slots()).
func (l Layout) Index(a tm.Addr) uint64 {
	return (uint64(a) * fibMult) >> (64 - uint(l.bits))
}

// ShardOf maps an address to its shard in [0, Shards()).
func (l Layout) ShardOf(a tm.Addr) int {
	return int(l.Index(a) >> l.shardShift)
}

// ShardOfIndex maps a slot index (as returned by Index) to its shard.
func (l Layout) ShardOfIndex(idx uint64) int {
	return int(idx >> l.shardShift)
}

// Slots reports the number of lock slots.
func (l Layout) Slots() int { return 1 << l.bits }

// Shards reports the shard count (1 for an unsharded table).
func (l Layout) Shards() int { return l.shards }

// PadStride is the slot stride of a padded table: Pair is 16 B, so a
// stride of 4 gives every pair its own 64 B cache line. Adjacent-slot
// commits then cannot false-share a line at 4× the memory cost.
const PadStride = 4

// Config selects a table geometry. The zero value of Shards and Padded
// gives the historical flat, unpadded layout.
type Config struct {
	// Bits is the log2 of the slot count, in [4, 28].
	Bits int
	// Shards is the power-of-two shard count (0 or 1 = unsharded).
	Shards int
	// Padded strides pairs to one per cache line (PadStride slots of
	// backing array per logical slot).
	Padded bool
}

// Table is the global lock table: a Layout plus the Pair storage it
// indexes. Distinct addresses may share a pair, which yields false
// conflicts but never missed ones (SwissTM's lock granularity).
type Table struct {
	Layout
	pairs  []Pair
	stride uint64
}

// New creates a table with the given geometry.
func New(cfg Config) *Table {
	lay := NewLayout(cfg.Bits, cfg.Shards)
	stride := uint64(1)
	if cfg.Padded {
		stride = PadStride
	}
	return &Table{
		Layout: lay,
		pairs:  make([]Pair, uint64(lay.Slots())*stride),
		stride: stride,
	}
}

// NewTable creates a flat, unpadded table with 2^bits lock pairs: the
// Shards=1 degenerate case of New.
func NewTable(bits int) *Table {
	return New(Config{Bits: bits})
}

// For returns the lock pair covering address a.
func (t *Table) For(a tm.Addr) *Pair {
	return &t.pairs[t.Index(a)*t.stride]
}

// ShardOfPair reports the shard of a pair previously returned by For.
// Validation loops hold only the *Pair recorded in a read-log entry, so
// the reverse mapping recovers the shard by pointer arithmetic within
// the table's single contiguous allocation.
func (t *Table) ShardOfPair(p *Pair) int {
	off := (uintptr(unsafe.Pointer(p)) - uintptr(unsafe.Pointer(&t.pairs[0]))) /
		unsafe.Sizeof(Pair{})
	return t.ShardOfIndex(uint64(off) / t.stride)
}

// Padded reports whether pairs are strided to one per cache line.
func (t *Table) Padded() bool { return t.stride > 1 }

// Len reports the number of logical lock pairs (used by tests).
func (t *Table) Len() int { return t.Slots() }
