package harness

import "testing"

func fig1aSynthetic(t2last, t4last float64) Figure {
	x := []float64{2, 4, 8, 16, 32, 64}
	grow := func(last float64) []float64 {
		y := make([]float64, len(x))
		for i := range x {
			y[i] = 1.2 + (last-1.2)*float64(i)/float64(len(x)-1)
		}
		return y
	}
	return Figure{Series: []Series{
		{Name: "TLSTM-2", X: x, Y: grow(t2last)},
		{Name: "TLSTM-4", X: x, Y: grow(t4last)},
	}}
}

func TestCheckFig1aAcceptsPaperShape(t *testing.T) {
	if bad := CheckFig1a(fig1aSynthetic(2.0, 3.3)); len(bad) != 0 {
		t.Fatalf("paper-shaped figure rejected: %v", bad)
	}
}

func TestCheckFig1aRejectsFlatSpeedup(t *testing.T) {
	f := fig1aSynthetic(2.0, 3.3)
	for i := range f.Series[0].Y {
		f.Series[0].Y[i] = 1.0 // TLSTM-2 flat at 1×
	}
	if bad := CheckFig1a(f); len(bad) == 0 {
		t.Fatal("flat TLSTM-2 must be rejected")
	}
}

func TestCheckFig1aRejectsInvertedTaskCounts(t *testing.T) {
	f := fig1aSynthetic(3.3, 2.0) // 2 tasks above 4 tasks
	if bad := CheckFig1a(f); len(bad) == 0 {
		t.Fatal("TLSTM-4 below TLSTM-2 must be rejected")
	}
}

func fig2aSynthetic() Figure {
	x := []float64{0, 20, 40, 60, 80, 100}
	return Figure{Series: []Series{
		{Name: "SwissTM-1", X: x, Y: []float64{0.052, 0.054, 0.056, 0.058, 0.058, 0.060}},
		{Name: "TLSTM-1-3", X: x, Y: []float64{0.047, 0.058, 0.075, 0.099, 0.113, 0.180}},
		{Name: "SwissTM-3", X: x, Y: []float64{0.124, 0.141, 0.126, 0.134, 0.155, 0.181}},
	}}
}

func TestCheckFig2aAcceptsMeasuredShape(t *testing.T) {
	if bad := CheckFig2a(fig2aSynthetic()); len(bad) != 0 {
		t.Fatalf("measured shape rejected: %v", bad)
	}
}

func TestCheckFig2aRejectsMissingInversion(t *testing.T) {
	f := fig2aSynthetic()
	f.Series[1].Y[0] = 0.09 // TLSTM above SwissTM at 0% read
	if bad := CheckFig2a(f); len(bad) == 0 {
		t.Fatal("missing write-dominated inversion must be rejected")
	}
}

func TestCheckFig2aRejectsNoConvergence(t *testing.T) {
	f := fig2aSynthetic()
	f.Series[2].Y[5] = 0.5 // SwissTM-3 far above TLSTM at 100%
	if bad := CheckFig2a(f); len(bad) == 0 {
		t.Fatal("missing convergence must be rejected")
	}
}

func fig2bSynthetic() Figure {
	mk := func(name string, w, rw, r float64) Series {
		return Series{Name: name, X: []float64{0, 1, 2}, Y: []float64{w, rw, r}}
	}
	return Figure{Series: []Series{
		mk("SwissTM-1", 0.054, 0.058, 0.060),
		mk("TLSTM-1-3", 0.056, 0.099, 0.161),
		mk("TLSTM-1-9", 0.060, 0.134, 0.379),
		mk("SwissTM-2", 0.075, 0.096, 0.118),
		mk("TLSTM-2-3", 0.071, 0.131, 0.268),
		mk("TLSTM-2-9", 0.035, 0.044, 0.306),
		mk("SwissTM-3", 0.134, 0.146, 0.155),
		mk("TLSTM-3-3", 0.057, 0.103, 0.313),
		mk("TLSTM-3-9", 0.022, 0.037, 0.136),
	}}
}

func TestCheckFig2bAcceptsMeasuredShape(t *testing.T) {
	if bad := CheckFig2b(fig2bSynthetic()); len(bad) != 0 {
		t.Fatalf("measured shape rejected: %v", bad)
	}
}

func TestCheckFig2bRejectsMissingCollapse(t *testing.T) {
	f := fig2bSynthetic()
	for i := range f.Series {
		if f.Series[i].Name == "TLSTM-2-9" {
			f.Series[i].Y[1] = 0.9 // no collapse on read-write
		}
	}
	if bad := CheckFig2b(f); len(bad) == 0 {
		t.Fatal("missing 9-task collapse must be rejected")
	}
}

func TestCheckFig1bSyntheticShapes(t *testing.T) {
	x := []float64{1, 2, 3}
	good := Figure{Series: []Series{
		{Name: "SwissTM-low", X: x, Y: []float64{5, 10, 15}},
		{Name: "TLSTM-1-low", X: x, Y: []float64{4.8, 9.6, 14.2}},
		{Name: "TLSTM-2-low", X: x, Y: []float64{7, 14, 21}},
	}}
	if bad := CheckFig1b(good); len(bad) != 0 {
		t.Fatalf("good shape rejected: %v", bad)
	}
	badFig := good
	badFig.Series = append([]Series{}, good.Series...)
	badFig.Series[2] = Series{Name: "TLSTM-2-low", X: x, Y: []float64{4, 8, 12}}
	if bad := CheckFig1b(badFig); len(bad) == 0 {
		t.Fatal("TLSTM-2 below SwissTM must be rejected")
	}
}
