package harness

import (
	"fmt"
	"strings"
	"testing"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/core"
	"tlstm/internal/locktable"
	"tlstm/internal/mode"
	"tlstm/internal/sb7"
	"tlstm/internal/stm"
	"tlstm/internal/tl2"
	"tlstm/internal/tm"
	"tlstm/internal/wtstm"
)

func counterWorkload(name string, addr tm.Addr, threads, tasks, txs int) Workload {
	return Workload{
		Name:        name,
		Threads:     threads,
		TxPerThread: txs,
		OpsPerTx:    tasks,
		Make: func(thread, idx int) TxSeq {
			var seq TxSeq
			for i := 0; i < tasks; i++ {
				seq = append(seq, func(tx tm.Tx) {
					tx.Store(addr, tx.Load(addr)+1)
				})
			}
			return seq
		},
	}
}

func TestRunSTMExecutesAllTransactions(t *testing.T) {
	rt := stm.New()
	a := rt.Direct().Alloc(1)
	r := RunSTM(rt, counterWorkload("c", a, 3, 2, 10))
	if got := rt.Direct().Load(a); got != 3*2*10 {
		t.Fatalf("counter = %d, want %d", got, 3*2*10)
	}
	if r.TxCommitted != 30 {
		t.Fatalf("TxCommitted = %d, want 30", r.TxCommitted)
	}
	if r.VirtualUnits == 0 || r.Throughput() <= 0 {
		t.Fatal("virtual time not recorded")
	}
}

func TestRunTLSTMExecutesAllTransactions(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 2})
	a := rt.Direct().Alloc(1)
	r := RunTLSTM(rt, counterWorkload("c", a, 2, 2, 8))
	if got := rt.Direct().Load(a); got != 2*2*8 {
		t.Fatalf("counter = %d, want %d", got, 2*2*8)
	}
	if r.TxCommitted != 16 {
		t.Fatalf("TxCommitted = %d, want 16", r.TxCommitted)
	}
}

func TestRunTL2ExecutesAllTransactions(t *testing.T) {
	rt := tl2.New(16)
	a := rt.Direct().Alloc(1)
	r := RunTL2(rt, counterWorkload("c", a, 3, 2, 10))
	if got := rt.Direct().Load(a); got != 3*2*10 {
		t.Fatalf("counter = %d, want %d", got, 3*2*10)
	}
	if r.TxCommitted != 30 || r.VirtualUnits == 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.Clock != "gv4" {
		t.Fatalf("Clock = %q, want gv4", r.Clock)
	}
}

func TestRunWTSTMExecutesAllTransactions(t *testing.T) {
	rt := wtstm.New(16)
	a := rt.Direct().Alloc(1)
	r := RunWTSTM(rt, counterWorkload("c", a, 3, 2, 10))
	if got := rt.Direct().Load(a); got != 3*2*10 {
		t.Fatalf("counter = %d, want %d", got, 3*2*10)
	}
	if r.TxCommitted != 30 || r.VirtualUnits == 0 {
		t.Fatalf("bad result: %+v", r)
	}
}

// CompareClocks must cover the full strategy × runtime matrix, commit
// everything (the sweep invariant-checks its own end state), and show
// the strategy trade-off in the stats: pre-publishing strategies
// produce snapshot extensions (or extra aborts on TL2, which cannot
// extend) where GV4 produces none of either on this disjoint-write
// workload.
func TestCompareClocksMatrix(t *testing.T) {
	rs := CompareClocks(2, 120)
	if want := len(clock.Kinds()) * 4; len(rs) != want {
		t.Fatalf("CompareClocks returned %d results, want %d (%d strategies × 4 runtimes)", len(rs), want, len(clock.Kinds()))
	}
	labels := map[string]bool{}
	for _, r := range rs {
		if labels[r.Label] {
			t.Fatalf("duplicate label %q", r.Label)
		}
		labels[r.Label] = true
		if r.TxCommitted == 0 {
			t.Fatalf("%s committed nothing", r.Label)
		}
		if r.Clock == "" {
			t.Fatalf("%s has no clock label", r.Label)
		}
		if !strings.HasSuffix(r.Label, "/"+r.Clock) {
			t.Fatalf("label %q does not carry its clock %q", r.Label, r.Clock)
		}
	}
	// The deferred SwissTM run must pay in snapshot extensions; the GV4
	// runs must not retry any clock CAS (GV4 ticks are fetch-and-add).
	var deferredExt, gv4Retries uint64
	for _, r := range rs {
		if r.Clock == clock.KindDeferred.String() && strings.HasPrefix(r.Label, "SwissTM") {
			deferredExt += r.SnapshotExtensions
		}
		if r.Clock == clock.KindGV4.String() {
			gv4Retries += r.ClockCASRetries
		}
	}
	if deferredExt == 0 {
		t.Fatal("deferred SwissTM run shows no snapshot extensions: the strategy's cost is not being measured")
	}
	if gv4Retries != 0 {
		t.Fatalf("GV4 runs report %d clock CAS retries, want 0", gv4Retries)
	}
}

// CompareCM must cover the full policy × runtime matrix, commit
// everything (the sweep invariant-checks its own end state), label each
// run with its policy, and actually exercise the contention managers:
// across the sweep, conflicts must have been resolved (decisions or
// backoff charged) — a sweep with zero CM activity would compare
// nothing.
func TestCompareCMMatrix(t *testing.T) {
	rs := CompareCM(2, 150)
	if want := len(cm.Kinds()) * 4; len(rs) != want {
		t.Fatalf("CompareCM returned %d results, want %d (%d policies × 4 runtimes)", len(rs), want, len(cm.Kinds()))
	}
	labels := map[string]bool{}
	var decisions, spins uint64
	for _, r := range rs {
		if labels[r.Label] {
			t.Fatalf("duplicate label %q", r.Label)
		}
		labels[r.Label] = true
		if r.TxCommitted == 0 {
			t.Fatalf("%s committed nothing", r.Label)
		}
		if r.CM == "" {
			t.Fatalf("%s has no policy label", r.Label)
		}
		if !strings.HasSuffix(r.Label, "/"+r.CM) {
			t.Fatalf("label %q does not carry its policy %q", r.Label, r.CM)
		}
		decisions += r.CMAbortsSelf + r.CMAbortsOwner
		spins += r.BackoffSpins
	}
	if decisions == 0 && spins == 0 {
		t.Fatal("sweep produced no contention-manager activity: the workload is not contended")
	}
}

// CompareModes must cover the full policy × runtime matrix, commit
// everything (the sweep invariant-checks its own end state), label each
// run with its mode policy, and the adaptive rows must keep the ladder
// counters wired through: the per-policy Mode label is what the report
// keys on.
func TestCompareModesMatrix(t *testing.T) {
	rs := CompareModes(2, 150)
	if want := len(mode.Policies()) * 4; len(rs) != want {
		t.Fatalf("CompareModes returned %d results, want %d (%d policies × 4 runtimes)", len(rs), want, len(mode.Policies()))
	}
	labels := map[string]bool{}
	for _, r := range rs {
		if labels[r.Label] {
			t.Fatalf("duplicate label %q", r.Label)
		}
		labels[r.Label] = true
		if r.TxCommitted == 0 {
			t.Fatalf("%s committed nothing", r.Label)
		}
		if r.Mode == "" {
			t.Fatalf("%s has no mode label", r.Label)
		}
		if !strings.HasSuffix(r.Label, "/"+r.Mode) {
			t.Fatalf("label %q does not carry its mode %q", r.Label, r.Mode)
		}
	}
}

func TestChunkCoversRange(t *testing.T) {
	for n := 1; n <= 20; n++ {
		for k := 1; k <= 10; k++ {
			cs := chunk(n, k)
			covered := 0
			for _, c := range cs {
				covered += c[1] - c[0]
			}
			if covered != n || cs[0][0] != 0 || cs[len(cs)-1][1] != n {
				t.Fatalf("chunk(%d,%d) = %v does not cover", n, k, cs)
			}
		}
	}
}

// Virtual-time sanity: splitting read-only work into k tasks must beat
// the unsplit baseline, since the per-task critical path shrinks.
func TestVirtualTimeRewardsSplitting(t *testing.T) {
	mk := func(tasks int) Result {
		rt := core.New(core.Config{SpecDepth: tasks})
		b, err := sb7.Build(rt.Direct(), sb7.Default())
		if err != nil {
			t.Fatal(err)
		}
		return RunTLSTM(rt, sb7Workload(b, "x", 1, tasks, 3, 100))
	}
	r1 := mk(1)
	r3 := mk(3)
	if r3.Throughput() <= r1.Throughput() {
		t.Fatalf("3-task read traversal should beat 1-task: %.3f vs %.3f",
			r3.Throughput(), r1.Throughput())
	}
}

// Write traversals conflict intra-thread; the split must NOT show the
// read-side speedup (the paper's central negative result).
func TestWriteTraversalSplitDoesNotScale(t *testing.T) {
	mk := func(tasks int) Result {
		rt := core.New(core.Config{SpecDepth: tasks})
		b, err := sb7.Build(rt.Direct(), sb7.Default())
		if err != nil {
			t.Fatal(err)
		}
		return RunTLSTM(rt, sb7Workload(b, "x", 1, tasks, 3, 0))
	}
	r1 := mk(1)
	r3 := mk(3)
	readGain := func() float64 {
		rt := core.New(core.Config{SpecDepth: 3})
		b, _ := sb7.Build(rt.Direct(), sb7.Default())
		rr3 := RunTLSTM(rt, sb7Workload(b, "x", 1, 3, 3, 100))
		rt1 := core.New(core.Config{SpecDepth: 1})
		b1, _ := sb7.Build(rt1.Direct(), sb7.Default())
		rr1 := RunTLSTM(rt1, sb7Workload(b1, "x", 1, 1, 3, 100))
		return rr3.Throughput() / rr1.Throughput()
	}()
	writeGain := r3.Throughput() / r1.Throughput()
	if writeGain >= readGain {
		t.Fatalf("write split gain %.3f should trail read split gain %.3f", writeGain, readGain)
	}
}

func TestFigureFormat(t *testing.T) {
	f := Figure{
		Title:  "demo",
		XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 1.5}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{2.5, 3.5}},
		},
	}
	out := f.Format()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "a") || !strings.Contains(out, "3.500") {
		t.Fatalf("format output missing pieces:\n%s", out)
	}
}

// Smoke-run every figure at tiny scale: they must produce full series
// with positive throughputs.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figures are slow")
	}
	sc := Scale{Fig1aTx: 10, Fig1bTx: 2, SB7Tx: 2}

	f1a := Fig1a(sc)
	if len(f1a.Series) != 2 || len(f1a.Series[0].Y) != len(Fig1aOpCounts) {
		t.Fatalf("Fig1a shape wrong: %+v", f1a)
	}
	for _, s := range f1a.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("Fig1a %s[%d] = %f", s.Name, i, y)
			}
		}
	}

	f2a := Fig2a(sc)
	if len(f2a.Series) != 3 || len(f2a.Series[0].Y) != len(Fig2aReadPcts) {
		t.Fatalf("Fig2a shape wrong")
	}
	for _, s := range f2a.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("Fig2a %s has non-positive point", s.Name)
			}
		}
	}
}

// The scheduler counters must flow from thread shards into Result and
// show steady-state pooling: workers bounded by threads×SpecDepth, and
// descriptor reuse dominating once warmed.
func TestResultSurfacesSchedulerCounters(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 3})
	defer rt.Close()
	b, err := sb7.Build(rt.Direct(), sb7.Default())
	if err != nil {
		t.Fatal(err)
	}
	r := RunTLSTM(rt, sb7Workload(b, "x", 2, 3, 5, 100))
	if r.WorkersSpawned == 0 || r.WorkersSpawned > 2*3 {
		t.Fatalf("WorkersSpawned = %d, want in (0, %d]", r.WorkersSpawned, 2*3)
	}
	if r.DescriptorReuses == 0 {
		t.Fatal("DescriptorReuses = 0 on a warmed run")
	}
	if s := r.String(); !strings.Contains(s, "workers=") || !strings.Contains(s, "descReuse=") {
		t.Fatalf("Result.String does not surface scheduler counters: %q", s)
	}
}

// CompareSched runs the same workload under both spawn policies; both
// must commit everything, agree on virtual time (the policies charge
// identical work units), and only the Pooled run may spawn workers.
func TestCompareSchedPolicies(t *testing.T) {
	rs := CompareSched(2, 200)
	if len(rs) != 2 {
		t.Fatalf("CompareSched returned %d results", len(rs))
	}
	pooled, inline := rs[0], rs[1]
	if pooled.TxCommitted != 400 || inline.TxCommitted != 400 {
		t.Fatalf("commits: pooled=%d inline=%d, want 400 each", pooled.TxCommitted, inline.TxCommitted)
	}
	if inline.WorkersSpawned != 0 {
		t.Fatalf("inline run spawned %d workers", inline.WorkersSpawned)
	}
	if pooled.WorkersSpawned == 0 {
		t.Fatal("pooled run spawned no workers")
	}
	if pooled.VirtualUnits != inline.VirtualUnits {
		t.Fatalf("virtual time must be policy-independent: pooled=%d inline=%d",
			pooled.VirtualUnits, inline.VirtualUnits)
	}
}

// CompareMV must cover the depth × runtime × mix matrix, commit
// everything (every read-only scan asserts its snapshot's account
// total in-body, and each run's end state is invariant-checked), and
// actually engage the wait-free path: depth-0 runs report no mv reads,
// every positive depth reports some, and read-only transactions on the
// mv path land in the read-set histogram's zero bucket.
func TestCompareMVMatrix(t *testing.T) {
	rs := CompareMV(2, 200)
	if want := 2 * 4 * 4; len(rs) != want {
		t.Fatalf("CompareMV returned %d results, want %d (2 mixes × 4 depths × 4 runtimes)", len(rs), want)
	}
	labels := map[string]bool{}
	var mvReadsOn uint64
	for _, r := range rs {
		if labels[r.Label] {
			t.Fatalf("duplicate label %q", r.Label)
		}
		labels[r.Label] = true
		if r.TxCommitted != 2*200 {
			t.Fatalf("%s committed %d, want 400", r.Label, r.TxCommitted)
		}
		if r.MV == 0 {
			if r.MVReads != 0 || r.MVMisses != 0 {
				t.Fatalf("%s: mv counters moved with multi-versioning off: %d/%d",
					r.Label, r.MVReads, r.MVMisses)
			}
			continue
		}
		mvReadsOn += r.MVReads
		if !strings.Contains(r.String(), "mv=") {
			t.Fatalf("%s: Result.String does not surface mv counters: %q", r.Label, r.String())
		}
		if r.ReadSets[0] == 0 {
			t.Fatalf("%s: no read-only transaction landed in the empty-read-set bucket", r.Label)
		}
	}
	if mvReadsOn == 0 {
		t.Fatal("no run with multi-versioning on served a single wait-free read")
	}
}

// CompareShards must cover the shard-count × placement × mix × runtime
// matrix, commit everything (each leg's end state is invariant-checked
// inside the sweep itself), and keep the flat degenerate case clean: at
// one shard every conflict is by definition in the only (home) shard,
// so N=1 rows must report zero cross-shard conflicts and zero remaps.
func TestCompareShardsMatrix(t *testing.T) {
	rs := CompareShards(2, 120)
	legs := 0
	for _, n := range ShardCounts {
		legs++
		if n > 1 {
			legs++
		}
	}
	if want := legs * 2 * 4; len(rs) != want {
		t.Fatalf("CompareShards returned %d results, want %d (%d legs × 2 mixes × 4 runtimes)", len(rs), want, legs)
	}
	labels := map[string]bool{}
	for _, r := range rs {
		if labels[r.Label] {
			t.Fatalf("duplicate label %q", r.Label)
		}
		labels[r.Label] = true
		if r.TxCommitted != 2*120 {
			t.Fatalf("%s committed %d, want 240", r.Label, r.TxCommitted)
		}
		if !strings.Contains(r.Label, fmt.Sprintf("/s%d/", r.Shards)) ||
			!strings.HasSuffix(r.Label, "/"+r.Placement) {
			t.Fatalf("label %q does not carry shards=%d placement=%q", r.Label, r.Shards, r.Placement)
		}
		if r.Shards == 1 && (r.CrossShardConflicts != 0 || r.Remaps != 0) {
			t.Fatalf("%s: flat table reports cross-shard activity: xshard=%d remap=%d",
				r.Label, r.CrossShardConflicts, r.Remaps)
		}
	}
}

// On the hot-word mix every conflict lands in one shard, so the
// affinity placement must (a) actually migrate threads there and (b)
// cut the cross-shard conflict count against the static twin — the
// sweep's acceptance trend, asserted here on the SwissTM runtime at a
// size where each thread sees several remap windows.
func TestAffinityReducesCrossShardConflictsHotWord(t *testing.T) {
	const threads, txPerThread, shards = 6, 600, 4
	layout := locktable.NewLayout(stm.DefaultLockTableBits, shards)
	leg := func(affinity bool) Result {
		rt := stm.New(stm.WithShards(shards), stm.WithAffinity(affinity))
		base := rt.Direct().Alloc(shardSweepAlloc(threads))
		hot := hotWordFor(base, layout)
		counters := base + tm.Addr(shardProbeWords)
		fillers := counters + tm.Addr(threads)
		name := "static"
		if affinity {
			name = "affinity"
		}
		w := shardSweepWorkload(name, hot, counters, fillers, threads, txPerThread)
		r := RunSTM(rt, w)
		checkShardSweep(rt.Direct().Load, hot, counters, threads, txPerThread)
		return r
	}
	static := leg(false)
	aff := leg(true)
	if static.CrossShardConflicts == 0 {
		t.Fatal("static hot-word run reports no cross-shard conflicts; the mix is not contending")
	}
	if aff.Remaps == 0 {
		t.Fatal("affinity run never remapped a thread onto the hot shard")
	}
	if aff.CrossShardConflicts >= static.CrossShardConflicts {
		t.Fatalf("affinity did not reduce cross-shard conflicts: affinity=%d static=%d",
			aff.CrossShardConflicts, static.CrossShardConflicts)
	}
}
