package harness

import (
	"fmt"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/core"
	"tlstm/internal/mode"
	"tlstm/internal/rbtree"
	"tlstm/internal/sb7"
	"tlstm/internal/stm"
	"tlstm/internal/tm"
	"tlstm/internal/txtrace"
	"tlstm/internal/vacation"
)

// Scale is the run configuration shared by every figure: it trades run
// time for measurement stability (the number of transactions per thread
// in every figure is multiplied by the Tx fields) and selects the
// commit-clock strategy the runtimes are built with.
type Scale struct {
	// Fig1aTx is transactions per point for the red-black-tree figure.
	Fig1aTx int
	// Fig1bTx is transactions per client for Vacation.
	Fig1bTx int
	// SB7Tx is traversal transactions per thread for Figures 2a/2b.
	SB7Tx int
	// Clock is the commit-clock strategy every runtime in the figures
	// uses (cmd/tlstm-bench -clock); the zero value is GV4.
	Clock clock.Kind
	// CM is the contention-management policy every runtime in the
	// figures uses (cmd/tlstm-bench -cm); the zero value keeps each
	// runtime's own default (greedy for SwissTM, task-aware for TLSTM).
	CM cm.Kind
	// MV is the retained version depth every runtime in the figures is
	// built with (cmd/tlstm-bench -mv); 0 disables multi-versioning.
	// Figure workloads only benefit where they declare transactions
	// read-only, but building the stores is harmless everywhere.
	MV int
	// Trace, when non-nil, arms the flight recorder in every runtime the
	// figures build (cmd/tlstm-bench -trace). All points of a run share
	// one recorder; rings are labeled per runtime thread.
	Trace *txtrace.Recorder
	// Shards is the lock-table shard count every runtime in the figures
	// is built with (cmd/tlstm-bench -shards); 0 or 1 keeps the flat
	// single-shard layout.
	Shards int
	// Affinity selects the conflict-sketch placement policy instead of
	// the static round-robin one (cmd/tlstm-bench -affinity); it only
	// matters with Shards > 1.
	Affinity bool
	// Mode is the execution-mode ladder config every runtime in the
	// figures is built with (cmd/tlstm-bench -mode); the zero value is
	// always-speculative.
	Mode mode.Config
}

// DefaultScale is used by the CLI and benches.
func DefaultScale() Scale { return Scale{Fig1aTx: 300, Fig1bTx: 60, SB7Tx: 24} }

// QuickScale keeps unit-test runs fast.
func QuickScale() Scale { return Scale{Fig1aTx: 40, Fig1bTx: 8, SB7Tx: 4} }

// newSTM builds a SwissTM runtime with the configured clock strategy
// and contention-management policy.
func (sc Scale) newSTM() *stm.Runtime {
	return stm.New(stm.WithClock(clock.New(sc.Clock)), stm.WithCM(cm.New(sc.CM)),
		stm.WithMultiVersion(sc.MV), stm.WithTrace(sc.Trace),
		stm.WithShards(sc.Shards), stm.WithAffinity(sc.Affinity),
		stm.WithMode(sc.Mode))
}

// newTLSTM builds a TLSTM runtime with the configured clock strategy
// and contention-management policy.
func (sc Scale) newTLSTM(depth int) *core.Runtime {
	return core.New(core.Config{SpecDepth: depth, Clock: clock.New(sc.Clock), CM: cm.New(sc.CM),
		MVDepth: sc.MV, Trace: sc.Trace, Shards: sc.Shards, Affinity: sc.Affinity,
		Mode: sc.Mode})
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// chunk splits n operations into k nearly equal consecutive ranges.
func chunk(n, k int) [][2]int {
	if k > n {
		k = n
	}
	var out [][2]int
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 1a: red-black tree speedup, TLSTM with 2 and 4 tasks vs SwissTM,
// one user-thread, transactions of N read-only lookups, N ∈ {2..64}.
// ---------------------------------------------------------------------------

// Fig1aOpCounts is the paper's x-axis.
var Fig1aOpCounts = []int{2, 4, 8, 16, 32, 64}

const fig1aTreeSize = 1 << 14

// rbWorkload builds the lookup workload split into `tasks` chunks.
func rbWorkload(tr rbtree.Tree, name string, opsPerTx, tasks, txs int) Workload {
	return Workload{
		Name:        name,
		Threads:     1,
		TxPerThread: txs,
		OpsPerTx:    opsPerTx,
		Make: func(thread, idx int) TxSeq {
			var seq TxSeq
			for _, c := range chunk(opsPerTx, tasks) {
				lo, hi := c[0], c[1]
				seq = append(seq, func(tx tm.Tx) {
					for j := lo; j < hi; j++ {
						k := int64(mix64(uint64(idx*opsPerTx+j)) % fig1aTreeSize)
						tr.Lookup(tx, k)
					}
				})
			}
			return seq
		},
	}
}

func fig1aTree(d tm.Tx) rbtree.Tree {
	tr := rbtree.New(d)
	for k := int64(0); k < fig1aTreeSize; k++ {
		tr.Insert(d, k, uint64(k))
	}
	return tr
}

// Fig1a reproduces Figure 1a: speedup of TLSTM-2 and TLSTM-4 over the
// SwissTM baseline on the red-black-tree microbenchmark.
func Fig1a(sc Scale) Figure {
	fig := Figure{
		Title:  "Figure 1a: RB-tree speedup vs SwissTM (1 thread, read-only transactions)",
		XLabel: "ops/tx",
		YLabel: "speedup",
		Series: []Series{{Name: "TLSTM-2"}, {Name: "TLSTM-4"}},
	}
	for _, n := range Fig1aOpCounts {
		base := sc.newSTM()
		baseTree := fig1aTree(base.Direct())
		rBase := RunSTM(base, rbWorkload(baseTree, "SwissTM", n, 1, sc.Fig1aTx))

		for si, tasks := range []int{2, 4} {
			rt := sc.newTLSTM(tasks)
			tr := fig1aTree(rt.Direct())
			r := RunTLSTM(rt, rbWorkload(tr, fmt.Sprintf("TLSTM-%d", tasks), n, tasks, sc.Fig1aTx))
			rt.Close() // drain this point's worker pools
			fig.Series[si].X = append(fig.Series[si].X, float64(n))
			fig.Series[si].Y = append(fig.Series[si].Y, r.Throughput()/rBase.Throughput())
		}
	}
	return fig
}

// ---------------------------------------------------------------------------
// Figure 1b: modified STAMP Vacation, throughput vs number of clients
// (user-threads), SwissTM vs TLSTM with 1 and 2 tasks, low and high
// contention.
// ---------------------------------------------------------------------------

// Fig1bClients is the paper's x-axis.
var Fig1bClients = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

const fig1bOpsPerTx = 8 // the paper's modification: 8 operations per transaction

func vacationWorkload(m *vacation.Manager, p vacation.Params, name string, clients, tasks, txs int) Workload {
	return Workload{
		Name:        name,
		Threads:     clients,
		TxPerThread: txs,
		OpsPerTx:    fig1bOpsPerTx,
		Make: func(thread, idx int) TxSeq {
			r := vacation.NewRng(mix64(uint64(thread)<<32 | uint64(idx)))
			ops := make([]vacation.Op, fig1bOpsPerTx)
			for i := range ops {
				ops[i] = p.Generate(r)
			}
			var seq TxSeq
			for _, c := range chunk(fig1bOpsPerTx, tasks) {
				lo, hi := c[0], c[1]
				seq = append(seq, func(tx tm.Tx) {
					for _, op := range ops[lo:hi] {
						m.Execute(tx, op)
					}
				})
			}
			return seq
		},
	}
}

// vacationParams scales the STAMP relation size down for simulator runs.
func vacationParams(high bool) vacation.Params {
	var p vacation.Params
	if high {
		p = vacation.HighContention()
	} else {
		p = vacation.LowContention()
	}
	p.Relations = 1 << 12
	return p
}

// Fig1b reproduces Figure 1b: Vacation throughput with increasing client
// counts for SwissTM, TLSTM-1 and TLSTM-2 under low and high contention.
func Fig1b(sc Scale) Figure {
	fig := Figure{
		Title:  "Figure 1b: Vacation throughput (8 ops/tx) vs number of clients",
		XLabel: "clients",
		YLabel: "ops per 1k work units",
	}
	for _, mode := range []struct {
		high bool
		tag  string
	}{{false, "low"}, {true, "high"}} {
		p := vacationParams(mode.high)
		var sw, t1, t2 Series
		sw.Name = "SwissTM-" + mode.tag
		t1.Name = "TLSTM-1-" + mode.tag
		t2.Name = "TLSTM-2-" + mode.tag
		for _, clients := range Fig1bClients {
			base := sc.newSTM()
			mBase := vacation.NewManager(base.Direct(), 1024)
			vacation.Populate(base.Direct(), mBase, p)
			rBase := RunSTM(base, vacationWorkload(mBase, p, sw.Name, clients, 1, sc.Fig1bTx))
			sw.X = append(sw.X, float64(clients))
			sw.Y = append(sw.Y, rBase.Throughput())

			for tasks, series := range map[int]*Series{1: &t1, 2: &t2} {
				rt := sc.newTLSTM(tasks)
				m := vacation.NewManager(rt.Direct(), 1024)
				vacation.Populate(rt.Direct(), m, p)
				r := RunTLSTM(rt, vacationWorkload(m, p, series.Name, clients, tasks, sc.Fig1bTx))
				rt.Close()
				series.X = append(series.X, float64(clients))
				series.Y = append(series.Y, r.Throughput())
			}
		}
		fig.Series = append(fig.Series, sw, t1, t2)
	}
	return fig
}

// ---------------------------------------------------------------------------
// Figures 2a and 2b: STMBench7 long traversals.
// ---------------------------------------------------------------------------

// sb7Workload runs long-traversal transactions: a fraction pctRead of
// them are read-only. tasks must be 1, 3 (top branches) or 9 (second
// level).
func sb7Workload(b *sb7.Bench, name string, threads, tasks, txs, pctRead int) Workload {
	return Workload{
		Name:        name,
		Threads:     threads,
		TxPerThread: txs,
		OpsPerTx:    1,
		Make: func(thread, idx int) TxSeq {
			seed := mix64(uint64(thread)<<32 | uint64(idx))
			readOnly := int(seed%100) < pctRead
			roots, level := b.SplitRoots(tasks)
			var seq TxSeq
			for _, root := range roots {
				root := root
				seq = append(seq, func(tx tm.Tx) {
					if readOnly {
						b.TraverseRead(tx, root, level)
					} else {
						b.TraverseWrite(tx, root, level, seed)
					}
				})
			}
			return seq
		},
	}
}

// Fig2aReadPcts is the x-axis of Figure 2a.
var Fig2aReadPcts = []int{0, 20, 40, 60, 80, 100}

// Fig2a reproduces Figure 2a: SB7 long-traversal throughput against the
// fraction of read-only transactions, for SwissTM with 1 and 3 threads
// and TLSTM with 1 thread × 3 tasks.
func Fig2a(sc Scale) Figure {
	fig := Figure{
		Title:  "Figure 2a: STMBench7 long traversals vs % read-only transactions",
		XLabel: "%read-only",
		YLabel: "traversals per 1k work units",
		Series: []Series{{Name: "SwissTM-1"}, {Name: "TLSTM-1-3"}, {Name: "SwissTM-3"}},
	}
	for _, pct := range Fig2aReadPcts {
		addPoint := func(si int, y float64) {
			fig.Series[si].X = append(fig.Series[si].X, float64(pct))
			fig.Series[si].Y = append(fig.Series[si].Y, y)
		}

		base1 := sc.newSTM()
		b1, err := sb7.Build(base1.Direct(), sb7.Default())
		must(err)
		addPoint(0, RunSTM(base1, sb7Workload(b1, "SwissTM-1", 1, 1, sc.SB7Tx, pct)).Throughput())

		rt := sc.newTLSTM(3)
		bt, err := sb7.Build(rt.Direct(), sb7.Default())
		must(err)
		addPoint(1, RunTLSTM(rt, sb7Workload(bt, "TLSTM-1-3", 1, 3, sc.SB7Tx, pct)).Throughput())
		rt.Close()

		base3 := sc.newSTM()
		b3, err := sb7.Build(base3.Direct(), sb7.Default())
		must(err)
		addPoint(2, RunSTM(base3, sb7Workload(b3, "SwissTM-3", 3, 1, sc.SB7Tx, pct)).Throughput())
	}
	return fig
}

// Fig2bWorkloads is the x-axis of Figure 2b: STMBench7's standard
// workload mixes (fraction of read-only operations).
var Fig2bWorkloads = []struct {
	Name    string
	PctRead int
}{
	{"write", 10},
	{"read-write", 60},
	{"read", 90},
}

// Fig2b reproduces Figure 2b: SB7 long-traversal throughput for SwissTM
// with 1–3 threads and TLSTM with 1–3 threads × {3,9} tasks, across the
// three standard workloads. X encodes the workload index.
func Fig2b(sc Scale) Figure {
	fig := Figure{
		Title:  "Figure 2b: STMBench7 long traversals, workloads write(10%ro)/read-write(60%ro)/read(90%ro)",
		XLabel: "workload#",
		YLabel: "traversals per 1k work units",
	}
	type cfg struct {
		name    string
		threads int
		tasks   int // 0 = SwissTM baseline
	}
	var cfgs []cfg
	for th := 1; th <= 3; th++ {
		cfgs = append(cfgs, cfg{fmt.Sprintf("SwissTM-%d", th), th, 0})
		cfgs = append(cfgs, cfg{fmt.Sprintf("TLSTM-%d-3", th), th, 3})
		cfgs = append(cfgs, cfg{fmt.Sprintf("TLSTM-%d-9", th), th, 9})
	}
	for _, c := range cfgs {
		s := Series{Name: c.name}
		for wi, wl := range Fig2bWorkloads {
			var y float64
			if c.tasks == 0 {
				rt := sc.newSTM()
				b, err := sb7.Build(rt.Direct(), sb7.Default())
				must(err)
				y = RunSTM(rt, sb7Workload(b, c.name, c.threads, 1, sc.SB7Tx, wl.PctRead)).Throughput()
			} else {
				rt := sc.newTLSTM(c.tasks)
				b, err := sb7.Build(rt.Direct(), sb7.Default())
				must(err)
				y = RunTLSTM(rt, sb7Workload(b, c.name, c.threads, c.tasks, sc.SB7Tx, wl.PctRead)).Throughput()
				rt.Close()
			}
			s.X = append(s.X, float64(wi))
			s.Y = append(s.Y, y)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
