// Package harness drives the paper's four evaluation experiments
// (Figures 1a, 1b, 2a, 2b) over both runtimes and reports throughput.
//
// Hardware substitution (DESIGN.md §3): the paper measured wall-clock
// throughput on 64-hardware-thread machines; this container has one
// CPU, where speculative parallelism cannot shorten wall time. The
// runtimes therefore count *work units* for every operation they
// actually execute — reads, writes, validation steps, commit publishes,
// including all aborted attempts — and the harness reports *virtual
// time*: per user-transaction, its tasks start together and task k
// finishes at max(own work, finish of k−1) plus a commit cost (commits
// are serialized per thread); threads run in parallel, so a run's
// virtual duration is the maximum per-thread virtual time. Conflicts
// and rollbacks lengthen virtual time exactly where they lengthen the
// paper's wall time. Wall-clock numbers are also recorded.
package harness

import (
	"fmt"
	"sync"
	"time"

	"tlstm/internal/core"
	"tlstm/internal/sched"
	"tlstm/internal/stm"
	"tlstm/internal/tm"
)

// TaskBody is one speculative task's work, written against the common
// tm.Tx interface so the same body runs on both runtimes.
type TaskBody func(tx tm.Tx)

// TxSeq is one user-transaction decomposed into task bodies in program
// order. The SwissTM baseline runs the concatenation as a single
// transaction; TLSTM runs one speculative task per element.
type TxSeq []TaskBody

// Workload describes one benchmark configuration.
type Workload struct {
	// Name labels the series this run belongs to.
	Name string
	// Threads is the number of user-threads (paper: hand-parallelized
	// threads / Vacation clients).
	Threads int
	// TxPerThread is the number of user-transactions per thread.
	TxPerThread int
	// OpsPerTx is how many application-level operations one
	// transaction represents (throughput numerator).
	OpsPerTx int
	// Make produces the transaction to run; it must be deterministic in
	// (thread, idx) so runtimes can be compared on identical work.
	Make func(thread, idx int) TxSeq
}

// Result is one configuration's measurement.
type Result struct {
	Label        string
	Ops          uint64
	VirtualUnits uint64
	Wall         time.Duration
	TxCommitted  uint64
	TxAborted    uint64
	TaskRestarts uint64
	// Scheduler counters (TLSTM runs only): worker goroutines spawned
	// across all threads — at most threads×SpecDepth for the whole run —
	// and task/transaction descriptors served from the recycled rings.
	WorkersSpawned   uint64
	DescriptorReuses uint64
}

// Throughput reports application operations per 1000 virtual work units
// (the figures' y-axis; the paper uses ops/s on real hardware).
func (r Result) Throughput() float64 {
	if r.VirtualUnits == 0 {
		return 0
	}
	return float64(r.Ops) * 1000 / float64(r.VirtualUnits)
}

// String formats a result row. Scheduler counters appear only when the
// run produced them (TLSTM runs; the baseline has no task scheduler).
func (r Result) String() string {
	s := fmt.Sprintf("%-22s ops=%-8d tput=%8.3f vtime=%-10d txAbort=%-5d taskRestart=%-6d wall=%s",
		r.Label, r.Ops, r.Throughput(), r.VirtualUnits, r.TxAborted, r.TaskRestarts, r.Wall.Round(time.Millisecond))
	if r.WorkersSpawned > 0 || r.DescriptorReuses > 0 {
		s += fmt.Sprintf(" workers=%-3d descReuse=%d", r.WorkersSpawned, r.DescriptorReuses)
	}
	return s
}

// RunSTM executes the workload on a fresh-thread pool over the SwissTM
// baseline: each TxSeq runs as one flat transaction. Every thread runs
// on its own stm.Worker, so statistics accumulate into unshared shards
// (merged into the runtime aggregate at worker exit) and the hot path
// reuses one pooled transaction descriptor per thread.
func RunSTM(rt *stm.Runtime, w Workload) Result {
	start := time.Now()
	workers := make([]*stm.Worker, w.Threads)
	for th := range workers {
		workers[th] = rt.NewWorker()
	}
	var wg sync.WaitGroup
	for th := 0; th < w.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			wk := workers[th]
			for i := 0; i < w.TxPerThread; i++ {
				seq := w.Make(th, i)
				wk.Atomic(func(tx *stm.Tx) {
					for _, body := range seq {
						body(tx)
					}
				})
			}
		}(th)
	}
	wg.Wait()

	res := Result{
		Label: w.Name,
		Ops:   uint64(w.Threads * w.TxPerThread * w.OpsPerTx),
		Wall:  time.Since(start),
	}
	for _, wk := range workers {
		st := wk.Stats()
		res.TxCommitted += st.Commits
		res.TxAborted += st.Aborts
		if st.Work > res.VirtualUnits {
			res.VirtualUnits = st.Work // threads run in parallel
		}
		wk.Close() // merge the shard into the runtime aggregate
	}
	return res
}

// RunTLSTM executes the workload over TLSTM: each TxSeq element becomes
// one speculative task. The runtime's SpecDepth must be at least the
// longest TxSeq.
func RunTLSTM(rt *core.Runtime, w Workload) Result {
	start := time.Now()
	threads := make([]*core.Thread, w.Threads)
	for th := range threads {
		threads[th] = rt.NewThread()
	}
	var wg sync.WaitGroup
	for th := 0; th < w.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			thr := threads[th]
			for i := 0; i < w.TxPerThread; i++ {
				seq := w.Make(th, i)
				fns := make([]core.TaskFunc, len(seq))
				for j, body := range seq {
					body := body
					fns[j] = func(tk *core.Task) { body(tk) }
				}
				if err := thr.Atomic(fns...); err != nil {
					panic(fmt.Sprintf("harness: %v", err))
				}
			}
			thr.Sync()
		}(th)
	}
	wg.Wait()

	res := Result{
		Label: w.Name,
		Ops:   uint64(w.Threads * w.TxPerThread * w.OpsPerTx),
		Wall:  time.Since(start),
	}
	for _, thr := range threads {
		st := thr.Stats()
		res.TxCommitted += st.TxCommitted
		res.TxAborted += st.TxAborted
		res.TaskRestarts += st.TaskRestarts
		res.WorkersSpawned += st.WorkersSpawned
		res.DescriptorReuses += st.DescriptorReuses
		if st.VirtualTime > res.VirtualUnits {
			res.VirtualUnits = st.VirtualTime
		}
	}
	return res
}

// CompareSched runs one identical depth-1 counter workload under each
// scheduling policy (sched.Pooled and sched.Inline) and reports both
// measurements. Virtual time is policy-independent by construction —
// the same work units are charged either way — so the interesting
// column is Wall: the per-task cost of the worker wake/park protocol
// against running the body on the submitting goroutine.
func CompareSched(threads, txPerThread int) []Result {
	mk := func(policy sched.Policy, label string) Result {
		rt := core.New(core.Config{SpecDepth: 1, Policy: policy})
		defer rt.Close()
		base := rt.Direct().Alloc(threads)
		w := Workload{
			Name:        label,
			Threads:     threads,
			TxPerThread: txPerThread,
			OpsPerTx:    1,
			Make: func(thread, idx int) TxSeq {
				a := base + tm.Addr(thread)
				return TxSeq{func(tx tm.Tx) { tx.Store(a, tx.Load(a)+1) }}
			},
		}
		return RunTLSTM(rt, w)
	}
	return []Result{
		mk(sched.Pooled, fmt.Sprintf("TLSTM-%d-1-pooled", threads)),
		mk(sched.Inline, fmt.Sprintf("TLSTM-%d-1-inline", threads)),
	}
}

// Series is one plotted line: label plus (x, throughput) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced plot: titled series over a common x-axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// CSV renders the figure as comma-separated values with a header row,
// for plotting (x, then one column per series).
func (f Figure) CSV() string {
	out := f.XLabel
	for _, s := range f.Series {
		out += "," + s.Name
	}
	out += "\n"
	if len(f.Series) == 0 {
		return out
	}
	for i := range f.Series[0].X {
		out += fmt.Sprintf("%g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				out += fmt.Sprintf(",%.6f", s.Y[i])
			} else {
				out += ","
			}
		}
		out += "\n"
	}
	return out
}

// Format renders the figure as an aligned text table (x down the rows,
// one column per series).
func (f Figure) Format() string {
	out := fmt.Sprintf("## %s\n%-12s", f.Title, f.XLabel)
	for _, s := range f.Series {
		out += fmt.Sprintf(" %14s", s.Name)
	}
	out += "\n"
	if len(f.Series) == 0 {
		return out
	}
	for i := range f.Series[0].X {
		out += fmt.Sprintf("%-12.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				out += fmt.Sprintf(" %14.3f", s.Y[i])
			} else {
				out += fmt.Sprintf(" %14s", "-")
			}
		}
		out += "\n"
	}
	return out
}
