// Package harness drives the paper's four evaluation experiments
// (Figures 1a, 1b, 2a, 2b) over both runtimes and reports throughput.
//
// Hardware substitution (DESIGN.md §3): the paper measured wall-clock
// throughput on 64-hardware-thread machines; this container has one
// CPU, where speculative parallelism cannot shorten wall time. The
// runtimes therefore count *work units* for every operation they
// actually execute — reads, writes, validation steps, commit publishes,
// including all aborted attempts — and the harness reports *virtual
// time*: per user-transaction, its tasks start together and task k
// finishes at max(own work, finish of k−1) plus a commit cost (commits
// are serialized per thread); threads run in parallel, so a run's
// virtual duration is the maximum per-thread virtual time. Conflicts
// and rollbacks lengthen virtual time exactly where they lengthen the
// paper's wall time. Wall-clock numbers are also recorded.
package harness

import (
	"fmt"
	"sync"
	"time"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/core"
	"tlstm/internal/locktable"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/stm"
	"tlstm/internal/tl2"
	"tlstm/internal/tm"
	"tlstm/internal/txstats"
	"tlstm/internal/wtstm"
)

// TaskBody is one speculative task's work, written against the common
// tm.Tx interface so the same body runs on both runtimes.
type TaskBody func(tx tm.Tx)

// TxSeq is one user-transaction decomposed into task bodies in program
// order. The SwissTM baseline runs the concatenation as a single
// transaction; TLSTM runs one speculative task per element.
type TxSeq []TaskBody

// Workload describes one benchmark configuration.
type Workload struct {
	// Name labels the series this run belongs to.
	Name string
	// Threads is the number of user-threads (paper: hand-parallelized
	// threads / Vacation clients).
	Threads int
	// TxPerThread is the number of user-transactions per thread.
	TxPerThread int
	// OpsPerTx is how many application-level operations one
	// transaction represents (throughput numerator).
	OpsPerTx int
	// Make produces the transaction to run; it must be deterministic in
	// (thread, idx) so runtimes can be compared on identical work.
	Make func(thread, idx int) TxSeq
	// ReadOnly, when non-nil, declares transaction (thread, idx) as
	// read-only: runners route it through the runtime's AtomicRO entry
	// point, which takes the wait-free multi-version read path when the
	// runtime has one configured. The declaration is a hint — a
	// transaction that writes anyway falls back to the validated path —
	// but a truthful one is what the mv= columns measure.
	ReadOnly func(thread, idx int) bool
}

// declaredRO reports whether the workload declares (thread, idx)
// read-only.
func (w Workload) declaredRO(thread, idx int) bool {
	return w.ReadOnly != nil && w.ReadOnly(thread, idx)
}

// Result is one configuration's measurement.
type Result struct {
	Label        string
	Ops          uint64
	VirtualUnits uint64
	Wall         time.Duration
	TxCommitted  uint64
	TxAborted    uint64
	TaskRestarts uint64
	// Scheduler counters (TLSTM runs only): worker goroutines spawned
	// across all threads — at most threads×SpecDepth for the whole run —
	// and task/transaction descriptors served from the recycled rings.
	WorkersSpawned   uint64
	DescriptorReuses uint64
	// Clock is the commit-clock strategy the run used ("gv4",
	// "deferred", "sharded", "gv7"); SnapshotExtensions and
	// ClockCASRetries are the strategy's costs — extra snapshot
	// revalidations and clock CAS spins — folded from the per-thread
	// stats shards.
	Clock              string
	SnapshotExtensions uint64
	ClockCASRetries    uint64
	// CM is the contention-management policy the run used ("suicide",
	// "backoff", "greedy", "karma", "taskaware");
	// CMAbortsSelf counts lost conflicts (one AbortSelf decision each),
	// CMAbortsOwner counts AbortOwner decisions — re-issued every round
	// a requester waits for the signalled owner to concede, so it
	// measures rounds spent winning rather than distinct conflicts —
	// and BackoffSpins the scheduler yields the policy charged between
	// retries; all folded from the per-thread stats shards.
	CM            string
	CMAbortsSelf  uint64
	CMAbortsOwner uint64
	BackoffSpins  uint64
	// EntryReclaims counts write-lock entries recycled from the
	// runtimes' entry pools instead of the heap (for TLSTM, under the
	// epoch-based quiescence horizon); HorizonStalls counts entry
	// requests the horizon forced to allocate fresh — the measured cost
	// of the reclamation safety rule. Folded from the per-thread stats
	// shards.
	EntryReclaims uint64
	HorizonStalls uint64
	// Shards is the run's lock-table shard count (1 = flat) and
	// Placement the thread-placement policy ("static" round-robin or
	// "affinity"). CrossShardConflicts counts conflicts attributed to a
	// shard other than the conflicting thread's home at conflict time;
	// Remaps counts affinity home rebinds. Folded from the per-thread
	// conflict sketches.
	Shards              int
	Placement           string
	CrossShardConflicts uint64
	Remaps              uint64
	// MV is the runtime's retained version depth (0 when
	// multi-versioning is off). MVReads counts loads served on the
	// wait-free multi-version path; MVMisses counts declared read-only
	// transactions that left it (ring overruns, writes under a
	// read-only declaration) and re-executed validated.
	MV       int
	MVReads  uint64
	MVMisses uint64
	// ReadSets and WriteSets are the per-committed-transaction (per
	// task, for TLSTM) set-size histograms folded from the runtimes'
	// stats shards. Multi-version reads are unlogged, so a read-mostly
	// run with mv on shows its read-set mass collapse into bucket 0.
	ReadSets  txstats.Hist
	WriteSets txstats.Hist
	// RestartLatency and CommitLatency are nanosecond histograms of the
	// time burned per aborted attempt and spent by each final successful
	// attempt; Attempts is the attempts-per-committed-transaction
	// distribution (1 = first-try commit). All folded from the runtimes'
	// stats shards.
	RestartLatency txstats.Hist
	CommitLatency  txstats.Hist
	Attempts       txstats.Hist
	// Mode is the run's execution-mode policy ("spec", "adaptive",
	// "serial"); ModeFallbacks counts speculative→serialized ladder
	// transitions, ModeRecoveries the returns to speculation, and
	// RetryWakes the Retry parks woken by a conflicting commit. Folded
	// from the per-thread stats shards.
	Mode           string
	ModeFallbacks  uint64
	ModeRecoveries uint64
	RetryWakes     uint64
}

// Throughput reports application operations per 1000 virtual work units
// (the figures' y-axis; the paper uses ops/s on real hardware).
func (r Result) Throughput() float64 {
	if r.VirtualUnits == 0 {
		return 0
	}
	return float64(r.Ops) * 1000 / float64(r.VirtualUnits)
}

// String formats a result row. Scheduler counters appear only when the
// run produced them (TLSTM runs; the baseline has no task scheduler),
// and clock columns only when the strategy or its costs are
// interesting (a non-default strategy, or nonzero extension/retry
// counts).
func (r Result) String() string {
	s := fmt.Sprintf("%-22s ops=%-8d tput=%8.3f vtime=%-10d txAbort=%-5d taskRestart=%-6d wall=%s",
		r.Label, r.Ops, r.Throughput(), r.VirtualUnits, r.TxAborted, r.TaskRestarts, r.Wall.Round(time.Millisecond))
	if r.WorkersSpawned > 0 || r.DescriptorReuses > 0 {
		s += fmt.Sprintf(" workers=%-3d descReuse=%d", r.WorkersSpawned, r.DescriptorReuses)
	}
	if (r.Clock != "" && r.Clock != clock.KindGV4.String()) || r.SnapshotExtensions > 0 || r.ClockCASRetries > 0 {
		s += fmt.Sprintf(" clock=%-8s ext=%-5d clkRetry=%d", r.Clock, r.SnapshotExtensions, r.ClockCASRetries)
	}
	if r.CMAbortsSelf > 0 || r.CMAbortsOwner > 0 || r.BackoffSpins > 0 {
		s += fmt.Sprintf(" cm=%-9s cmSelf=%-5d cmOwner=%-5d spins=%d", r.CM, r.CMAbortsSelf, r.CMAbortsOwner, r.BackoffSpins)
	}
	if r.EntryReclaims > 0 || r.HorizonStalls > 0 {
		s += fmt.Sprintf(" reclaim=%-6d stall=%d", r.EntryReclaims, r.HorizonStalls)
	}
	if r.Shards > 1 || r.CrossShardConflicts > 0 || r.Remaps > 0 {
		s += fmt.Sprintf(" shards=%-2d place=%-8s xshard=%-6d remap=%d",
			r.Shards, r.Placement, r.CrossShardConflicts, r.Remaps)
	}
	if r.MV > 0 || r.MVReads > 0 || r.MVMisses > 0 {
		s += fmt.Sprintf(" mv=%d mvRead=%-7d mvMiss=%-4d rset[%s] wset[%s]",
			r.MV, r.MVReads, r.MVMisses, r.ReadSets, r.WriteSets)
	}
	if r.CommitLatency.Total() > 0 {
		s += fmt.Sprintf(" commitLat[%s] attempts[%s]", r.CommitLatency, r.Attempts)
		if r.RestartLatency.Total() > 0 {
			s += fmt.Sprintf(" restartLat[%s]", r.RestartLatency)
		}
	}
	if (r.Mode != "" && r.Mode != mode.Speculative.String()) ||
		r.ModeFallbacks > 0 || r.ModeRecoveries > 0 || r.RetryWakes > 0 {
		s += fmt.Sprintf(" mode=%-8s fallback=%-4d recover=%-4d retryWake=%d",
			r.Mode, r.ModeFallbacks, r.ModeRecoveries, r.RetryWakes)
	}
	return s
}

// RunSTM executes the workload on a fresh-thread pool over the SwissTM
// baseline: each TxSeq runs as one flat transaction. Every thread runs
// on its own stm.Worker, so statistics accumulate into unshared shards
// (merged into the runtime aggregate at worker exit) and the hot path
// reuses one pooled transaction descriptor per thread.
func RunSTM(rt *stm.Runtime, w Workload) Result {
	start := time.Now()
	workers := make([]*stm.Worker, w.Threads)
	for th := range workers {
		workers[th] = rt.NewWorker()
	}
	var wg sync.WaitGroup
	for th := 0; th < w.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			wk := workers[th]
			for i := 0; i < w.TxPerThread; i++ {
				seq := w.Make(th, i)
				run := func(tx *stm.Tx) {
					for _, body := range seq {
						body(tx)
					}
				}
				if w.declaredRO(th, i) {
					wk.AtomicRO(run)
				} else {
					wk.Atomic(run)
				}
			}
		}(th)
	}
	wg.Wait()

	res := Result{
		Label:     w.Name,
		Ops:       uint64(w.Threads * w.TxPerThread * w.OpsPerTx),
		Wall:      time.Since(start),
		Clock:     rt.ClockName(),
		CM:        rt.CMName(),
		MV:        rt.MVDepth(),
		Shards:    rt.Shards(),
		Placement: rt.PlacementName(),
	}
	for _, wk := range workers {
		st := wk.Stats()
		res.TxCommitted += st.Commits
		res.TxAborted += st.Aborts
		res.CrossShardConflicts += st.CrossShardConflicts
		res.Remaps += st.Remaps
		res.SnapshotExtensions += st.SnapshotExtensions
		res.ClockCASRetries += st.ClockCASRetries
		res.CMAbortsSelf += st.CMAbortsSelf
		res.CMAbortsOwner += st.CMAbortsOwner
		res.BackoffSpins += st.BackoffSpins
		res.EntryReclaims += st.EntryReclaims
		res.HorizonStalls += st.HorizonStalls
		res.MVReads += st.MVReads
		res.MVMisses += st.MVMisses
		res.ModeFallbacks += st.ModeFallbacks
		res.ModeRecoveries += st.ModeRecoveries
		res.RetryWakes += st.RetryWakes
		res.ReadSets.Merge(st.ReadSetSizes)
		res.WriteSets.Merge(st.WriteSetSizes)
		res.RestartLatency.Merge(st.RestartLatency)
		res.CommitLatency.Merge(st.CommitLatency)
		res.Attempts.Merge(st.Attempts)
		if st.Work > res.VirtualUnits {
			res.VirtualUnits = st.Work // threads run in parallel
		}
		wk.Close() // merge the shard into the runtime aggregate
	}
	return res
}

// flatStats is the counter set a flat (non-speculative) runtime folds
// into a Result; see runFlat.
type flatStats struct {
	commits, aborts, work, extensions, clockRetries uint64
	cmAbortsSelf, cmAbortsOwner, backoffSpins       uint64
	entryReclaims, horizonStalls                    uint64
	mvReads, mvMisses                               uint64
	readSets, writeSets                             txstats.Hist
	restartLat, commitLat, attempts                 txstats.Hist
	crossShardConflicts, remaps                     uint64
	modeFallbacks, modeRecoveries, retryWakes       uint64
}

// runFlat drives a flat-transaction runtime: one goroutine per thread,
// each TxSeq concatenated into one transaction (routed through atomicRO
// when the workload declares it read-only), per-thread statistics
// extracted into the shared Result shape. RunTL2 and RunWTSTM are thin
// wrappers so the fan-out/fold logic exists once.
func runFlat[S any](w Workload, clockName, cmName string, mvDepth, shards int, placement string,
	atomic, atomicRO func(st *S, run func(tm.Tx)), extract func(S) flatStats) Result {
	start := time.Now()
	stats := make([]S, w.Threads)
	var wg sync.WaitGroup
	for th := 0; th < w.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < w.TxPerThread; i++ {
				seq := w.Make(th, i)
				run := func(tx tm.Tx) {
					for _, body := range seq {
						body(tx)
					}
				}
				if w.declaredRO(th, i) {
					atomicRO(&stats[th], run)
				} else {
					atomic(&stats[th], run)
				}
			}
		}(th)
	}
	wg.Wait()

	res := Result{
		Label:     w.Name,
		Ops:       uint64(w.Threads * w.TxPerThread * w.OpsPerTx),
		Wall:      time.Since(start),
		Clock:     clockName,
		CM:        cmName,
		MV:        mvDepth,
		Shards:    shards,
		Placement: placement,
	}
	for _, s := range stats {
		st := extract(s)
		res.TxCommitted += st.commits
		res.TxAborted += st.aborts
		res.CrossShardConflicts += st.crossShardConflicts
		res.Remaps += st.remaps
		res.SnapshotExtensions += st.extensions
		res.ClockCASRetries += st.clockRetries
		res.CMAbortsSelf += st.cmAbortsSelf
		res.CMAbortsOwner += st.cmAbortsOwner
		res.BackoffSpins += st.backoffSpins
		res.EntryReclaims += st.entryReclaims
		res.HorizonStalls += st.horizonStalls
		res.MVReads += st.mvReads
		res.MVMisses += st.mvMisses
		res.ModeFallbacks += st.modeFallbacks
		res.ModeRecoveries += st.modeRecoveries
		res.RetryWakes += st.retryWakes
		res.ReadSets.Merge(st.readSets)
		res.WriteSets.Merge(st.writeSets)
		res.RestartLatency.Merge(st.restartLat)
		res.CommitLatency.Merge(st.commitLat)
		res.Attempts.Merge(st.attempts)
		if st.work > res.VirtualUnits {
			res.VirtualUnits = st.work // threads run in parallel
		}
	}
	return res
}

// RunTL2 executes the workload on the TL2 baseline.
func RunTL2(rt *tl2.Runtime, w Workload) Result {
	return runFlat(w, rt.ClockName(), rt.CMName(), rt.MVDepth(), rt.Shards(), rt.PlacementName(),
		func(st *tl2.Stats, run func(tm.Tx)) {
			rt.Atomic(st, func(tx *tl2.Tx) { run(tx) })
		},
		func(st *tl2.Stats, run func(tm.Tx)) {
			rt.AtomicRO(st, func(tx *tl2.Tx) { run(tx) })
		},
		func(st tl2.Stats) flatStats {
			return flatStats{st.Commits, st.Aborts, st.Work, st.SnapshotExtensions, st.ClockCASRetries,
				st.CMAbortsSelf, st.CMAbortsOwner, st.BackoffSpins,
				st.EntryReclaims, st.HorizonStalls,
				st.MVReads, st.MVMisses, st.ReadSetSizes, st.WriteSetSizes,
				st.RestartLatency, st.CommitLatency, st.Attempts,
				st.CrossShardConflicts, st.Remaps,
				st.ModeFallbacks, st.ModeRecoveries, st.RetryWakes}
		})
}

// RunWTSTM executes the workload on the write-through STM.
func RunWTSTM(rt *wtstm.Runtime, w Workload) Result {
	return runFlat(w, rt.ClockName(), rt.CMName(), rt.MVDepth(), rt.Shards(), rt.PlacementName(),
		func(st *wtstm.Stats, run func(tm.Tx)) {
			rt.Atomic(st, func(tx *wtstm.Tx) { run(tx) })
		},
		func(st *wtstm.Stats, run func(tm.Tx)) {
			rt.AtomicRO(st, func(tx *wtstm.Tx) { run(tx) })
		},
		func(st wtstm.Stats) flatStats {
			return flatStats{st.Commits, st.Aborts, st.Work, st.SnapshotExtensions, st.ClockCASRetries,
				st.CMAbortsSelf, st.CMAbortsOwner, st.BackoffSpins,
				st.EntryReclaims, st.HorizonStalls,
				st.MVReads, st.MVMisses, st.ReadSetSizes, st.WriteSetSizes,
				st.RestartLatency, st.CommitLatency, st.Attempts,
				st.CrossShardConflicts, st.Remaps,
				st.ModeFallbacks, st.ModeRecoveries, st.RetryWakes}
		})
}

// RunTLSTM executes the workload over TLSTM: each TxSeq element becomes
// one speculative task. The runtime's SpecDepth must be at least the
// longest TxSeq.
func RunTLSTM(rt *core.Runtime, w Workload) Result {
	start := time.Now()
	threads := make([]*core.Thread, w.Threads)
	for th := range threads {
		threads[th] = rt.NewThread()
	}
	var wg sync.WaitGroup
	for th := 0; th < w.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			thr := threads[th]
			for i := 0; i < w.TxPerThread; i++ {
				seq := w.Make(th, i)
				fns := make([]core.TaskFunc, len(seq))
				for j, body := range seq {
					body := body
					fns[j] = func(tk *core.Task) { body(tk) }
				}
				var err error
				if w.declaredRO(th, i) {
					err = thr.AtomicRO(fns...)
				} else {
					err = thr.Atomic(fns...)
				}
				if err != nil {
					panic(fmt.Sprintf("harness: %v", err))
				}
			}
			thr.Sync()
		}(th)
	}
	wg.Wait()

	res := Result{
		Label:     w.Name,
		Ops:       uint64(w.Threads * w.TxPerThread * w.OpsPerTx),
		Wall:      time.Since(start),
		Clock:     rt.ClockName(),
		CM:        rt.CMName(),
		MV:        rt.MVDepth(),
		Shards:    rt.Shards(),
		Placement: rt.PlacementName(),
	}
	for _, thr := range threads {
		st := thr.Stats()
		res.TxCommitted += st.TxCommitted
		res.TxAborted += st.TxAborted
		res.TaskRestarts += st.TaskRestarts
		res.CrossShardConflicts += st.CrossShardConflicts
		res.Remaps += st.Remaps
		res.WorkersSpawned += st.WorkersSpawned
		res.DescriptorReuses += st.DescriptorReuses
		res.SnapshotExtensions += st.SnapshotExtensions
		res.ClockCASRetries += st.ClockCASRetries
		res.CMAbortsSelf += st.CMAbortsSelf
		res.CMAbortsOwner += st.CMAbortsOwner
		res.BackoffSpins += st.BackoffSpins
		res.EntryReclaims += st.EntryReclaims
		res.HorizonStalls += st.HorizonStalls
		res.MVReads += st.MVReads
		res.MVMisses += st.MVMisses
		res.ModeFallbacks += st.ModeFallbacks
		res.ModeRecoveries += st.ModeRecoveries
		res.RetryWakes += st.RetryWakes
		res.ReadSets.Merge(st.ReadSetSizes)
		res.WriteSets.Merge(st.WriteSetSizes)
		res.RestartLatency.Merge(st.RestartLatency)
		res.CommitLatency.Merge(st.CommitLatency)
		res.Attempts.Merge(st.Attempts)
		if st.VirtualTime > res.VirtualUnits {
			res.VirtualUnits = st.VirtualTime
		}
	}
	return res
}

// CompareSched runs one identical depth-1 counter workload under each
// scheduling policy (sched.Pooled and sched.Inline) and reports both
// measurements. Virtual time is policy-independent by construction —
// the same work units are charged either way — so the interesting
// column is Wall: the per-task cost of the worker wake/park protocol
// against running the body on the submitting goroutine.
func CompareSched(threads, txPerThread int) []Result {
	mk := func(policy sched.Policy, label string) Result {
		rt := core.New(core.Config{SpecDepth: 1, Policy: policy})
		defer rt.Close()
		base := rt.Direct().Alloc(threads)
		w := Workload{
			Name:        label,
			Threads:     threads,
			TxPerThread: txPerThread,
			OpsPerTx:    1,
			Make: func(thread, idx int) TxSeq {
				a := base + tm.Addr(thread)
				return TxSeq{func(tx tm.Tx) { tx.Store(a, tx.Load(a)+1) }}
			},
		}
		return RunTLSTM(rt, w)
	}
	return []Result{
		mk(sched.Pooled, fmt.Sprintf("TLSTM-%d-1-pooled", threads)),
		mk(sched.Inline, fmt.Sprintf("TLSTM-%d-1-inline", threads)),
	}
}

// clockSweepWorkload is the CompareClocks workload: write-heavy with a
// shared hot word. Every transaction reads the hot word and increments
// the thread's private counter; every fourth also increments the hot
// word. The private writes make every transaction a committer (commit
// clock pressure); the shared reads force each thread to keep meeting
// other threads' fresh stamps (snapshot-extension pressure). Both sides
// of the strategy trade-off are therefore exercised at once.
func clockSweepWorkload(name string, base tm.Addr, threads, txPerThread int) Workload {
	return Workload{
		Name:        name,
		Threads:     threads,
		TxPerThread: txPerThread,
		OpsPerTx:    2,
		Make: func(thread, idx int) TxSeq {
			hot := base
			mine := base + 1 + tm.Addr(thread)
			shared := idx%4 == 0
			return TxSeq{func(tx tm.Tx) {
				h := tx.Load(hot)
				tx.Store(mine, tx.Load(mine)+1)
				if shared {
					tx.Store(hot, h+1)
				}
			}}
		},
	}
}

// checkClockSweep verifies the sweep's end state: with the workload
// above, the hot word must hold the exact number of hot increments and
// each private counter its thread's transaction count — a cheap
// atomicity check that runs under every strategy.
func checkClockSweep(load func(tm.Addr) uint64, base tm.Addr, threads, txPerThread int) {
	hotWant := uint64(threads * ((txPerThread + 3) / 4))
	if got := load(base); got != hotWant {
		panic(fmt.Sprintf("harness: clock sweep hot counter = %d, want %d (atomicity violated)", got, hotWant))
	}
	for th := 0; th < threads; th++ {
		if got := load(base + 1 + tm.Addr(th)); got != uint64(txPerThread) {
			panic(fmt.Sprintf("harness: clock sweep thread %d counter = %d, want %d", th, got, txPerThread))
		}
	}
}

// CompareClocks runs one identical write-heavy workload on all four
// runtimes under each commit-clock strategy (gv4, deferred, sharded)
// and reports every measurement: throughput, abort rate, snapshot
// extensions and clock CAS retries per strategy, across the whole
// runtime matrix at once. Each run's end state is invariant-checked, so
// the sweep doubles as a cross-runtime atomicity test for the
// strategies.
func CompareClocks(threads, txPerThread int) []Result {
	var out []Result
	for _, kind := range clock.Kinds() {
		{
			rt := stm.New(stm.WithClock(clock.New(kind)))
			base := rt.Direct().Alloc(threads + 1)
			w := clockSweepWorkload("SwissTM/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunSTM(rt, w))
			checkClockSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := tl2.New(20, tl2.WithClock(clock.New(kind)))
			base := rt.Direct().Alloc(threads + 1)
			w := clockSweepWorkload("TL2/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunTL2(rt, w))
			checkClockSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := wtstm.New(20, wtstm.WithClock(clock.New(kind)))
			base := rt.Direct().Alloc(threads + 1)
			w := clockSweepWorkload("wtstm/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunWTSTM(rt, w))
			checkClockSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := core.New(core.Config{SpecDepth: 1, Clock: clock.New(kind)})
			base := rt.Direct().Alloc(threads + 1)
			w := clockSweepWorkload("TLSTM/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunTLSTM(rt, w))
			checkClockSweep(rt.Direct().Load, base, threads, txPerThread)
			rt.Close()
		}
	}
	return out
}

// cmSweepFill is the number of private filler reads each CompareCM
// transaction performs while holding the hot word's write lock. The
// filler pushes every transaction past the yield quantum, so on the
// single-CPU simulator transactions genuinely overlap — and because
// eager runtimes take the hot lock before the filler, the lock is held
// across a scheduler slice and every other thread's increment runs
// into it: exactly the sustained write/write conflict the contention
// managers exist to resolve.
const cmSweepFill = 48

// cmSweepAlloc is the number of words a CompareCM runtime must
// allocate: the hot word, one private counter per thread, and each
// thread's filler region.
func cmSweepAlloc(threads int) int { return 1 + threads + threads*cmSweepFill }

// cmSweepWorkload is the CompareCM workload: every transaction
// increments one shared hot word (taking its write lock first), reads
// its thread's filler region while holding it, and increments the
// thread's private counter (so every transaction is a committer).
func cmSweepWorkload(name string, base tm.Addr, threads, txPerThread int) Workload {
	return Workload{
		Name:        name,
		Threads:     threads,
		TxPerThread: txPerThread,
		OpsPerTx:    2,
		Make: func(thread, idx int) TxSeq {
			hot := base
			mine := base + 1 + tm.Addr(thread)
			fill := base + 1 + tm.Addr(threads) + tm.Addr(thread*cmSweepFill)
			return TxSeq{func(tx tm.Tx) {
				tx.Store(hot, tx.Load(hot)+1)
				var sink uint64
				for j := 0; j < cmSweepFill; j++ {
					sink += tx.Load(fill + tm.Addr(j))
				}
				tx.Store(mine, tx.Load(mine)+1+sink)
			}}
		},
	}
}

// checkCMSweep verifies the sweep's end state: the hot word must hold
// exactly one increment per transaction and each private counter its
// thread's transaction count — a cross-runtime atomicity check that
// runs under every policy, so a policy that drops, doubles or tears an
// update is caught by the sweep itself.
func checkCMSweep(load func(tm.Addr) uint64, base tm.Addr, threads, txPerThread int) {
	if got, want := load(base), uint64(threads*txPerThread); got != want {
		panic(fmt.Sprintf("harness: cm sweep hot counter = %d, want %d (atomicity violated)", got, want))
	}
	for th := 0; th < threads; th++ {
		if got := load(base + 1 + tm.Addr(th)); got != uint64(txPerThread) {
			panic(fmt.Sprintf("harness: cm sweep thread %d counter = %d, want %d", th, got, txPerThread))
		}
	}
}

// CompareCM runs one identical write-contended workload on all four
// runtimes under each contention-management policy (suicide, backoff,
// greedy, karma, taskaware) and reports every measurement: throughput,
// abort rate, and the policy's decision counters (conflicts resolved
// against the requester and against the owner, backoff yields charged).
// Each run's end state is invariant-checked, so the sweep doubles as a
// cross-runtime atomicity test for the policies.
func CompareCM(threads, txPerThread int) []Result {
	var out []Result
	for _, kind := range cm.Kinds() {
		{
			rt := stm.New(stm.WithCM(cm.New(kind)))
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("SwissTM/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunSTM(rt, w))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := tl2.New(20, tl2.WithCM(cm.New(kind)))
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("TL2/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunTL2(rt, w))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := wtstm.New(20, wtstm.WithCM(cm.New(kind)))
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("wtstm/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunWTSTM(rt, w))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := core.New(core.Config{SpecDepth: 1, CM: cm.New(kind)})
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("TLSTM/"+kind.String(), base, threads, txPerThread)
			out = append(out, RunTLSTM(rt, w))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
			rt.Close()
		}
	}
	return out
}

// CompareModes runs the CompareCM conflict storm (karma contention
// management, one hot word) on all four runtimes under each execution
// mode policy — always-speculative, the adaptive ladder, and
// always-serialized — and reports throughput, abort rate and the
// ladder's fallback/recovery counters per policy. The storm is exactly
// the workload the serialized rung exists for, so the sweep measures
// what fallback buys (and what the serial rung costs when contention is
// absent the ladder still pays nothing: it only engages on pressure).
// Each run's end state is invariant-checked.
func CompareModes(threads, txPerThread int) []Result {
	var out []Result
	tag := func(r Result, pol mode.Policy) Result {
		r.Mode = pol.String()
		return r
	}
	for _, pol := range mode.Policies() {
		mc := mode.Config{Policy: pol}
		{
			rt := stm.New(stm.WithCM(cm.New(cm.KindKarma)), stm.WithMode(mc))
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("SwissTM/"+pol.String(), base, threads, txPerThread)
			out = append(out, tag(RunSTM(rt, w), pol))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := tl2.New(20, tl2.WithCM(cm.New(cm.KindKarma)), tl2.WithMode(mc))
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("TL2/"+pol.String(), base, threads, txPerThread)
			out = append(out, tag(RunTL2(rt, w), pol))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := wtstm.New(20, wtstm.WithCM(cm.New(cm.KindKarma)), wtstm.WithMode(mc))
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("wtstm/"+pol.String(), base, threads, txPerThread)
			out = append(out, tag(RunWTSTM(rt, w), pol))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
		}
		{
			rt := core.New(core.Config{SpecDepth: 1, CM: cm.New(cm.KindKarma), Mode: mc})
			base := rt.Direct().Alloc(cmSweepAlloc(threads))
			w := cmSweepWorkload("TLSTM/"+pol.String(), base, threads, txPerThread)
			out = append(out, tag(RunTLSTM(rt, w), pol))
			checkCMSweep(rt.Direct().Load, base, threads, txPerThread)
			rt.Close()
		}
	}
	return out
}

// mvSweepWords is the number of shared accounts the CompareMV workload
// scans: large enough that a read-only transaction's validated read set
// is worth eliding, small enough that writers keep every account warm.
const mvSweepWords = 32

// mvScanPasses is how many times a read-only scan traverses the
// accounts. The scan must outlast the yield quantum (see the runtimes'
// forced-interleaving grain) so writers commit mid-scan: that is what
// makes the validated path pay for extensions, revalidations and
// (TL2) aborts that the wait-free path never performs.
const mvScanPasses = 4

// readMostlyWorkload is the CompareMV workload at a given read/write
// mix: one transaction in writerEvery is a writer that transfers one
// unit between two accounts (total preserved), the rest are declared
// read-only scans summing every account. Because transfers conserve the
// (wrapping) total, any consistent snapshot sums to zero — each scan
// asserts it, so every multi-version read is checked against tearing
// and too-new values, not just the end state.
func readMostlyWorkload(name string, base tm.Addr, threads, txPerThread, writerEvery int) Workload {
	return Workload{
		Name:        name,
		Threads:     threads,
		TxPerThread: txPerThread,
		OpsPerTx:    1,
		Make: func(thread, idx int) TxSeq {
			if idx%writerEvery == 0 {
				src := (thread*7 + idx) % mvSweepWords
				dst := (src + 1 + idx%(mvSweepWords-1)) % mvSweepWords
				return TxSeq{func(tx tm.Tx) {
					tx.Store(base+tm.Addr(src), tx.Load(base+tm.Addr(src))-1)
					tx.Store(base+tm.Addr(dst), tx.Load(base+tm.Addr(dst))+1)
				}}
			}
			return TxSeq{func(tx tm.Tx) {
				var sum uint64
				for p := 0; p < mvScanPasses; p++ {
					for j := 0; j < mvSweepWords; j++ {
						sum += tx.Load(base + tm.Addr(j))
					}
				}
				if sum != 0 {
					panic(fmt.Sprintf("harness: mv sweep scan saw inconsistent snapshot (sum=%d, want 0)", sum))
				}
			}}
		},
		ReadOnly: func(thread, idx int) bool { return idx%writerEvery != 0 },
	}
}

// checkMVSweep verifies the sweep's end state: transfers conserve the
// wrapping account total, so the final sum must be zero.
func checkMVSweep(load func(tm.Addr) uint64, base tm.Addr) {
	var sum uint64
	for j := 0; j < mvSweepWords; j++ {
		sum += load(base + tm.Addr(j))
	}
	if sum != 0 {
		panic(fmt.Sprintf("harness: mv sweep end state sum = %d, want 0 (atomicity violated)", sum))
	}
}

// CompareMV runs the read-mostly account-scan workload on all four
// runtimes at two read/write mixes (90/10 and 99/1) across retained
// version depths K = 0 (multi-versioning off: every scan validates and
// extends) through 3, and reports every measurement: throughput, abort
// and extension counts, wait-free reads and fallback misses per depth.
// Both the per-scan snapshot assertion and each run's end-state check
// make the sweep a cross-runtime consistency test for the version
// store.
func CompareMV(threads, txPerThread int) []Result {
	var out []Result
	for _, mix := range []struct {
		tag         string
		writerEvery int
	}{{"90-10", 10}, {"99-1", 100}} {
		for k := 0; k <= 3; k++ {
			label := func(rtName string) string {
				return fmt.Sprintf("%s/%s/mv%d", rtName, mix.tag, k)
			}
			{
				rt := stm.New(stm.WithMultiVersion(k))
				base := rt.Direct().Alloc(mvSweepWords)
				w := readMostlyWorkload(label("SwissTM"), base, threads, txPerThread, mix.writerEvery)
				out = append(out, RunSTM(rt, w))
				checkMVSweep(rt.Direct().Load, base)
			}
			{
				rt := tl2.New(20, tl2.WithMultiVersion(k))
				base := rt.Direct().Alloc(mvSweepWords)
				w := readMostlyWorkload(label("TL2"), base, threads, txPerThread, mix.writerEvery)
				out = append(out, RunTL2(rt, w))
				checkMVSweep(rt.Direct().Load, base)
			}
			{
				rt := wtstm.New(20, wtstm.WithMultiVersion(k))
				base := rt.Direct().Alloc(mvSweepWords)
				w := readMostlyWorkload(label("wtstm"), base, threads, txPerThread, mix.writerEvery)
				out = append(out, RunWTSTM(rt, w))
				checkMVSweep(rt.Direct().Load, base)
			}
			{
				rt := core.New(core.Config{SpecDepth: 2, MVDepth: k})
				base := rt.Direct().Alloc(mvSweepWords)
				w := readMostlyWorkload(label("TLSTM"), base, threads, txPerThread, mix.writerEvery)
				out = append(out, RunTLSTM(rt, w))
				checkMVSweep(rt.Direct().Load, base)
				rt.Close()
			}
		}
	}
	return out
}

// shardSweepFill is the number of private filler reads each hot-word
// CompareShards transaction performs while holding the hot word's write
// lock (same role as cmSweepFill: push transactions past the yield
// quantum so they genuinely overlap on the single-CPU simulator).
const shardSweepFill = 48

// shardSweepAlloc is the number of words a CompareShards runtime
// allocates: a probe region the hot word is picked from, one private
// counter per thread, and each thread's filler region.
func shardSweepAlloc(threads int) int {
	return shardProbeWords + threads + threads*shardSweepFill
}

// shardProbeWords sizes the region scanned for a hot word that maps to
// shard 0. The Fibonacci index spreads any address range about evenly
// across shards, so a few hundred candidates always contain one.
const shardProbeWords = 512

// hotWordFor returns the first address in [base, base+shardProbeWords)
// the layout maps to shard 0, so the sweep's contention concentrates in
// one known shard regardless of the shard count.
func hotWordFor(base tm.Addr, layout locktable.Layout) tm.Addr {
	for off := 0; off < shardProbeWords; off++ {
		if layout.ShardOf(base+tm.Addr(off)) == 0 {
			return base + tm.Addr(off)
		}
	}
	return base
}

// shardSweepWorkload is the hot-word CompareShards workload: every
// transaction increments one shared hot word chosen to live in shard 0,
// reads its thread's filler region while holding the lock, and
// increments the thread's private counter. All contention lands in one
// shard, which is the configuration sharding is about: under static
// round-robin placement every thread homed elsewhere counts each
// conflict as cross-shard, and the affinity policy should migrate every
// thread's home onto the hot shard and drive that counter down.
func shardSweepWorkload(name string, hot, counters, fillers tm.Addr, threads, txPerThread int) Workload {
	return Workload{
		Name:        name,
		Threads:     threads,
		TxPerThread: txPerThread,
		OpsPerTx:    2,
		Make: func(thread, idx int) TxSeq {
			mine := counters + tm.Addr(thread)
			fill := fillers + tm.Addr(thread*shardSweepFill)
			return TxSeq{func(tx tm.Tx) {
				tx.Store(hot, tx.Load(hot)+1)
				var sink uint64
				for j := 0; j < shardSweepFill; j++ {
					sink += tx.Load(fill + tm.Addr(j))
				}
				tx.Store(mine, tx.Load(mine)+1+sink)
			}}
		},
	}
}

// checkShardSweep verifies the hot-word sweep's end state (one hot
// increment per transaction, one private increment per thread
// transaction), so the sweep doubles as an atomicity check across shard
// counts and placement policies.
func checkShardSweep(load func(tm.Addr) uint64, hot, counters tm.Addr, threads, txPerThread int) {
	if got, want := load(hot), uint64(threads*txPerThread); got != want {
		panic(fmt.Sprintf("harness: shard sweep hot counter = %d, want %d (atomicity violated)", got, want))
	}
	for th := 0; th < threads; th++ {
		if got := load(counters + tm.Addr(th)); got != uint64(txPerThread) {
			panic(fmt.Sprintf("harness: shard sweep thread %d counter = %d, want %d", th, got, txPerThread))
		}
	}
}

// ShardCounts is the lock-table geometry CompareShards sweeps.
var ShardCounts = []int{1, 2, 4, 8}

// CompareShards sweeps lock-table shard counts (1 = flat) across all
// four runtimes and two contention mixes — the hot-word mix above,
// whose conflicts concentrate in one shard, and the diffuse 90/10
// read-mostly account mix — and, at every sharded count, runs both
// placement policies. The rows to read against each other: at N >= 2
// the hot-word affinity legs should show Remaps > 0 and materially
// fewer CrossShardConflicts than their static twins (threads migrate
// onto the hot shard), while the diffuse mix's affinity legs should
// show no remaps at all (no shard dominates a window); N = 1 is the
// degenerate flat layout whose throughput bounds the sharding overhead.
// Every run's end state is invariant-checked.
func CompareShards(threads, txPerThread int) []Result {
	var out []Result
	type leg struct {
		shards   int
		affinity bool
	}
	var legs []leg
	for _, n := range ShardCounts {
		legs = append(legs, leg{n, false})
		if n > 1 {
			legs = append(legs, leg{n, true})
		}
	}
	label := func(rtName, mix string, l leg) string {
		p := "static"
		if l.affinity {
			p = "affinity"
		}
		return fmt.Sprintf("%s/%s/s%d/%s", rtName, mix, l.shards, p)
	}
	for _, l := range legs {
		layout := locktable.NewLayout(stm.DefaultLockTableBits, l.shards)
		hotRun := func(rtName string, direct func() (tm.Addr, func(tm.Addr) uint64), run func(Workload) Result) {
			base, load := direct()
			hot := hotWordFor(base, layout)
			counters := base + tm.Addr(shardProbeWords)
			fillers := counters + tm.Addr(threads)
			w := shardSweepWorkload(label(rtName, "hot", l), hot, counters, fillers, threads, txPerThread)
			out = append(out, run(w))
			checkShardSweep(load, hot, counters, threads, txPerThread)
		}
		mixRun := func(rtName string, direct func() (tm.Addr, func(tm.Addr) uint64), run func(Workload) Result) {
			base, load := direct()
			w := readMostlyWorkload(label(rtName, "90-10", l), base, threads, txPerThread, 10)
			out = append(out, run(w))
			checkMVSweep(load, base)
		}
		{
			rt := stm.New(stm.WithShards(l.shards), stm.WithAffinity(l.affinity))
			hotRun("SwissTM",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt.Direct().Alloc(shardSweepAlloc(threads)), rt.Direct().Load
				},
				func(w Workload) Result { return RunSTM(rt, w) })
			rt2 := stm.New(stm.WithShards(l.shards), stm.WithAffinity(l.affinity))
			mixRun("SwissTM",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt2.Direct().Alloc(mvSweepWords), rt2.Direct().Load
				},
				func(w Workload) Result { return RunSTM(rt2, w) })
		}
		{
			rt := tl2.New(stm.DefaultLockTableBits, tl2.WithShards(l.shards), tl2.WithAffinity(l.affinity))
			hotRun("TL2",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt.Direct().Alloc(shardSweepAlloc(threads)), rt.Direct().Load
				},
				func(w Workload) Result { return RunTL2(rt, w) })
			rt2 := tl2.New(stm.DefaultLockTableBits, tl2.WithShards(l.shards), tl2.WithAffinity(l.affinity))
			mixRun("TL2",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt2.Direct().Alloc(mvSweepWords), rt2.Direct().Load
				},
				func(w Workload) Result { return RunTL2(rt2, w) })
		}
		{
			rt := wtstm.New(stm.DefaultLockTableBits, wtstm.WithShards(l.shards), wtstm.WithAffinity(l.affinity))
			hotRun("wtstm",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt.Direct().Alloc(shardSweepAlloc(threads)), rt.Direct().Load
				},
				func(w Workload) Result { return RunWTSTM(rt, w) })
			rt2 := wtstm.New(stm.DefaultLockTableBits, wtstm.WithShards(l.shards), wtstm.WithAffinity(l.affinity))
			mixRun("wtstm",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt2.Direct().Alloc(mvSweepWords), rt2.Direct().Load
				},
				func(w Workload) Result { return RunWTSTM(rt2, w) })
		}
		{
			rt := core.New(core.Config{SpecDepth: 1, Shards: l.shards, Affinity: l.affinity})
			hotRun("TLSTM",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt.Direct().Alloc(shardSweepAlloc(threads)), rt.Direct().Load
				},
				func(w Workload) Result { return RunTLSTM(rt, w) })
			rt.Close()
			rt2 := core.New(core.Config{SpecDepth: 1, Shards: l.shards, Affinity: l.affinity})
			mixRun("TLSTM",
				func() (tm.Addr, func(tm.Addr) uint64) {
					return rt2.Direct().Alloc(mvSweepWords), rt2.Direct().Load
				},
				func(w Workload) Result { return RunTLSTM(rt2, w) })
			rt2.Close()
		}
	}
	return out
}

// Series is one plotted line: label plus (x, throughput) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced plot: titled series over a common x-axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// CSV renders the figure as comma-separated values with a header row,
// for plotting (x, then one column per series).
func (f Figure) CSV() string {
	out := f.XLabel
	for _, s := range f.Series {
		out += "," + s.Name
	}
	out += "\n"
	if len(f.Series) == 0 {
		return out
	}
	for i := range f.Series[0].X {
		out += fmt.Sprintf("%g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				out += fmt.Sprintf(",%.6f", s.Y[i])
			} else {
				out += ","
			}
		}
		out += "\n"
	}
	return out
}

// Format renders the figure as an aligned text table (x down the rows,
// one column per series).
func (f Figure) Format() string {
	out := fmt.Sprintf("## %s\n%-12s", f.Title, f.XLabel)
	for _, s := range f.Series {
		out += fmt.Sprintf(" %14s", s.Name)
	}
	out += "\n"
	if len(f.Series) == 0 {
		return out
	}
	for i := range f.Series[0].X {
		out += fmt.Sprintf("%-12.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				out += fmt.Sprintf(" %14.3f", s.Y[i])
			} else {
				out += fmt.Sprintf(" %14s", "-")
			}
		}
		out += "\n"
	}
	return out
}
