package harness

import "fmt"

// Shape checks: the paper's qualitative claims, machine-verified
// against regenerated figures. Each function returns a list of
// violations (empty = the claim holds). cmd/tlstm-bench -check runs
// them all and fails loudly on any violation, so a regression in the
// runtimes that silently flips a result shape is caught.

// CheckFig1a verifies E1: speedup grows with transaction length; the
// 4-task series dominates the 2-task series from 4 ops on; large
// transactions speed up meaningfully.
func CheckFig1a(f Figure) []string {
	var bad []string
	var t2, t4 Series
	for _, s := range f.Series {
		switch s.Name {
		case "TLSTM-2":
			t2 = s
		case "TLSTM-4":
			t4 = s
		}
	}
	if len(t2.Y) == 0 || len(t4.Y) == 0 {
		return []string{"fig1a: missing series"}
	}
	if t2.Y[len(t2.Y)-1] <= t2.Y[0] {
		bad = append(bad, "fig1a: TLSTM-2 speedup does not grow with transaction size")
	}
	if t4.Y[len(t4.Y)-1] <= t4.Y[0] {
		bad = append(bad, "fig1a: TLSTM-4 speedup does not grow with transaction size")
	}
	for i := range t4.Y {
		if t4.X[i] >= 4 && t4.Y[i] <= t2.Y[i] {
			bad = append(bad, fmt.Sprintf("fig1a: TLSTM-4 not above TLSTM-2 at %g ops", t4.X[i]))
		}
	}
	if last := t2.Y[len(t2.Y)-1]; last < 1.5 {
		bad = append(bad, fmt.Sprintf("fig1a: TLSTM-2 tops out at %.2f, want ≥1.5", last))
	}
	if last := t4.Y[len(t4.Y)-1]; last < 2.5 {
		bad = append(bad, fmt.Sprintf("fig1a: TLSTM-4 tops out at %.2f, want ≥2.5", last))
	}
	return bad
}

// CheckFig1b verifies E2 on the low-contention series (the paper's
// stable regime): TLSTM-2 above SwissTM at every client count, TLSTM-1
// within 20% of SwissTM, and SwissTM scaling with clients.
func CheckFig1b(f Figure) []string {
	var bad []string
	get := func(name string) Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		return Series{}
	}
	sw := get("SwissTM-low")
	t1 := get("TLSTM-1-low")
	t2 := get("TLSTM-2-low")
	if len(sw.Y) == 0 || len(t1.Y) == 0 || len(t2.Y) == 0 {
		return []string{"fig1b: missing series"}
	}
	if sw.Y[len(sw.Y)-1] <= sw.Y[0]*2 {
		bad = append(bad, "fig1b: SwissTM-low does not scale with clients")
	}
	for i := range sw.Y {
		if t2.Y[i] <= sw.Y[i] {
			bad = append(bad, fmt.Sprintf("fig1b: TLSTM-2-low not above SwissTM-low at %g clients", sw.X[i]))
		}
		ratio := t1.Y[i] / sw.Y[i]
		if ratio < 0.8 || ratio > 1.2 {
			bad = append(bad, fmt.Sprintf("fig1b: TLSTM-1-low / SwissTM-low = %.2f at %g clients, want ≈1", ratio, sw.X[i]))
		}
	}
	return bad
}

// CheckFig2a verifies E3: monotone TLSTM curve, write-dominated
// inversion, near-full speedup and convergence with SwissTM-3 at 100%.
func CheckFig2a(f Figure) []string {
	var bad []string
	get := func(name string) Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		return Series{}
	}
	s1 := get("SwissTM-1")
	t13 := get("TLSTM-1-3")
	s3 := get("SwissTM-3")
	if len(s1.Y) == 0 || len(t13.Y) == 0 || len(s3.Y) == 0 {
		return []string{"fig2a: missing series"}
	}
	n := len(t13.Y)
	if t13.Y[0] >= s1.Y[0] {
		bad = append(bad, "fig2a: TLSTM-1-3 should trail SwissTM-1 at 0% read-only")
	}
	if t13.Y[n-1] < 2.5*s1.Y[n-1] {
		bad = append(bad, fmt.Sprintf("fig2a: TLSTM-1-3 speedup at 100%% read is %.2fx, want ≥2.5x", t13.Y[n-1]/s1.Y[n-1]))
	}
	conv := t13.Y[n-1] / s3.Y[n-1]
	if conv < 0.85 || conv > 1.15 {
		bad = append(bad, fmt.Sprintf("fig2a: TLSTM-1-3 and SwissTM-3 should converge at 100%% read (ratio %.2f)", conv))
	}
	for i := 1; i < n; i++ {
		if t13.Y[i] < t13.Y[i-1]*0.95 {
			bad = append(bad, fmt.Sprintf("fig2a: TLSTM-1-3 not monotone at %g%% read", t13.X[i]))
		}
	}
	return bad
}

// CheckFig2b verifies E4's directional claims.
func CheckFig2b(f Figure) []string {
	var bad []string
	get := func(name string) Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		return Series{}
	}
	const writeIdx, rwIdx, readIdx = 0, 1, 2
	for _, k := range []int{1, 2} {
		sw := get(fmt.Sprintf("SwissTM-%d", k))
		t3 := get(fmt.Sprintf("TLSTM-%d-3", k))
		if len(sw.Y) < 3 || len(t3.Y) < 3 {
			return []string{"fig2b: missing series"}
		}
		if t3.Y[readIdx] <= sw.Y[readIdx]*1.2 {
			bad = append(bad, fmt.Sprintf("fig2b: TLSTM-%d-3 should clearly beat SwissTM-%d on the read workload", k, k))
		}
		if t3.Y[writeIdx] > sw.Y[writeIdx]*1.25 {
			bad = append(bad, fmt.Sprintf("fig2b: TLSTM-%d-3 should not outperform SwissTM-%d on the write workload", k, k))
		}
	}
	// 9 tasks: good at one thread on reads, collapsing under
	// multi-thread contention (read-write mix).
	if get("TLSTM-1-9").Y[readIdx] <= get("TLSTM-1-3").Y[readIdx] {
		bad = append(bad, "fig2b: TLSTM-1-9 should beat TLSTM-1-3 on the 1-thread read workload")
	}
	if get("TLSTM-2-9").Y[rwIdx] >= get("TLSTM-2-3").Y[rwIdx] {
		bad = append(bad, "fig2b: TLSTM-2-9 should collapse below TLSTM-2-3 on the read-write workload")
	}
	if get("TLSTM-3-9").Y[writeIdx] >= get("TLSTM-3-3").Y[writeIdx] {
		bad = append(bad, "fig2b: TLSTM-3-9 should collapse below TLSTM-3-3 on the write workload")
	}
	// SwissTM keeps scaling on the write workload where TLSTM stalls.
	if get("SwissTM-3").Y[writeIdx] <= get("SwissTM-1").Y[writeIdx] {
		bad = append(bad, "fig2b: SwissTM should scale with threads on the write workload")
	}
	return bad
}
