// Package wtstm is a write-through (in-place) software transactional
// memory in the style of TinySTM's write-through design (Felber,
// Fetzer, Riegel — PPoPP'08, the paper's reference [16]).
//
// The TLSTM paper's concluding remarks single this design out as future
// work: "The location redo-logs have also showed to add substantial
// overhead. Hence, different approaches for handling speculative writes
// (e.g. in-place writes [4]) should be studied." This package provides
// that alternative for the study bench (BenchmarkAblationWriteHandling):
//
//   - writes eagerly lock the location's versioned lock, save the old
//     value in an undo log, and update memory *in place*;
//   - reads of a locked location abort (the in-place value is
//     uncommitted); unlocked reads validate against the transaction's
//     read version with timestamp extension, like SwissTM;
//   - commit bumps the global clock and publishes by just releasing
//     locks with the new version — no copy-back pass;
//   - abort restores the undo log in reverse order and releases locks.
//
// The trade-off measured by the ablation: cheap commits and no
// redo-chain traversal on read-own-write, against wasted in-place
// writes on abort and reader-hostile eager locking.
package wtstm

import (
	"runtime"
	"sync/atomic"

	"tlstm/internal/mem"
	"tlstm/internal/tm"
)

const locked = ^uint64(0)

const (
	yieldQuantum     = 64
	txStartCost      = 24
	validationStride = 8
)

// Runtime is one write-through STM instance.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator

	clock atomic.Uint64

	locks []atomic.Uint64
	mask  uint64
}

// New creates a runtime with 2^bits versioned locks.
func New(bits int) *Runtime {
	if bits <= 0 {
		bits = 20
	}
	st := mem.NewStore()
	return &Runtime{
		store: st,
		alloc: mem.NewAllocator(st),
		locks: make([]atomic.Uint64, 1<<bits),
		mask:  uint64(1<<bits) - 1,
	}
}

// Direct returns the non-transactional setup handle.
func (rt *Runtime) Direct() mem.Direct { return mem.Direct{Mem: rt.store, Al: rt.alloc} }

// Allocator exposes the allocator (tests).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

func (rt *Runtime) lockFor(a tm.Addr) *atomic.Uint64 {
	return &rt.locks[uint64(a)&rt.mask]
}

// Stats accumulates commits, aborts and work units.
type Stats struct {
	Commits uint64
	Aborts  uint64
	Work    uint64
}

type rollbackSignal struct{}

type undoRec struct {
	addr tm.Addr
	old  uint64
}

type heldLock struct {
	l   *atomic.Uint64
	ver uint64 // displaced version, restored on abort
}

// Tx is one write-through transaction attempt; it implements tm.Tx.
type Tx struct {
	rt *Runtime
	rv uint64

	readLog []readRec
	undo    []undoRec
	held    []heldLock
	mine    map[*atomic.Uint64]bool

	allocs []tm.Addr
	frees  []tm.Addr

	work   uint64
	aborts uint64
}

type readRec struct {
	l   *atomic.Uint64
	ver uint64
}

var _ tm.Tx = (*Tx)(nil)

// Atomic runs fn as one transaction, retrying until commit.
func (rt *Runtime) Atomic(st *Stats, fn func(tx *Tx)) {
	tx := &Tx{rt: rt}
	for {
		tx.rv = rt.clock.Load()
		tx.readLog = tx.readLog[:0]
		tx.undo = tx.undo[:0]
		tx.held = tx.held[:0]
		if tx.mine == nil {
			tx.mine = make(map[*atomic.Uint64]bool)
		} else {
			clear(tx.mine)
		}
		tx.allocs = tx.allocs[:0]
		tx.frees = tx.frees[:0]
		tx.work += txStartCost

		if tx.attempt(fn) {
			break
		}
		tx.aborts++
		for i := uint64(0); i < min(tx.aborts*8, 256); i++ {
			runtime.Gosched()
		}
	}
	if st != nil {
		st.Commits++
		st.Aborts += tx.aborts
		st.Work += tx.work
	}
}

func (tx *Tx) attempt(fn func(tx *Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(rollbackSignal); !is {
				tx.undoAndRelease()
				for _, a := range tx.allocs {
					tx.rt.alloc.Free(a)
				}
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	tx.commit()
	return true
}

// rollback restores in-place writes and unwinds to the retry loop.
func (tx *Tx) rollback() {
	tx.undoAndRelease()
	for _, a := range tx.allocs {
		tx.rt.alloc.Free(a)
	}
	panic(rollbackSignal{})
}

// undoAndRelease rolls the undo log back in reverse order, then
// releases every held lock at its pre-lock version.
func (tx *Tx) undoAndRelease() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.rt.store.StoreWord(tx.undo[i].addr, tx.undo[i].old)
		tx.work++
	}
	for _, h := range tx.held {
		h.l.Store(h.ver)
	}
	tx.undo = tx.undo[:0]
	tx.held = tx.held[:0]
	clear(tx.mine)
}

func (tx *Tx) tick(units uint64) {
	tx.work += units
	if tx.work%yieldQuantum < units {
		runtime.Gosched()
	}
}

// Load implements tm.Tx.
func (tx *Tx) Load(a tm.Addr) uint64 {
	tx.tick(1)
	l := tx.rt.lockFor(a)
	if tx.mine[l] {
		// We hold the lock: memory already has our in-place value.
		return tx.rt.store.LoadWord(a)
	}
	for {
		v1 := l.Load()
		if v1 == locked {
			// Uncommitted in-place data from another transaction: a
			// write-through design cannot read around it; retry and
			// eventually abort.
			tx.work += yieldQuantum
			runtime.Gosched()
			if l.Load() == locked {
				tx.rollback()
			}
			continue
		}
		val := tx.rt.store.LoadWord(a)
		if l.Load() != v1 {
			continue
		}
		if v1 > tx.rv && !tx.extend() {
			tx.rollback()
		}
		if v1 > tx.rv {
			continue
		}
		tx.readLog = append(tx.readLog, readRec{l: l, ver: v1})
		return val
	}
}

// extend revalidates the read log at the current clock and advances rv.
func (tx *Tx) extend() bool {
	ts := tx.rt.clock.Load()
	for i, r := range tx.readLog {
		if i%validationStride == 0 {
			tx.work++
		}
		v := r.l.Load()
		if v == r.ver {
			continue
		}
		if tx.mine[r.l] {
			continue
		}
		return false
	}
	tx.rv = ts
	return true
}

// Store implements tm.Tx: eager lock, undo log, in-place update.
func (tx *Tx) Store(a tm.Addr, v uint64) {
	tx.tick(2)
	l := tx.rt.lockFor(a)
	if !tx.mine[l] {
		for {
			cur := l.Load()
			if cur == locked {
				tx.work += yieldQuantum
				runtime.Gosched()
				if l.Load() == locked {
					tx.rollback() // writer/writer conflict: retry
				}
				continue
			}
			if cur > tx.rv && !tx.extend() {
				tx.rollback()
			}
			if cur > tx.rv {
				continue
			}
			if l.CompareAndSwap(cur, locked) {
				tx.held = append(tx.held, heldLock{l: l, ver: cur})
				tx.mine[l] = true
				break
			}
		}
	}
	tx.undo = append(tx.undo, undoRec{addr: a, old: tx.rt.store.LoadWord(a)})
	tx.rt.store.StoreWord(a, v)
}

// Alloc implements tm.Tx.
func (tx *Tx) Alloc(n int) tm.Addr {
	tx.work++
	a := tx.rt.alloc.Alloc(n)
	tx.allocs = append(tx.allocs, a)
	return a
}

// Free implements tm.Tx.
func (tx *Tx) Free(a tm.Addr) { tx.frees = append(tx.frees, a) }

// commit validates reads, then publishes by releasing locks at the new
// version — the in-place values are already in memory (no copy-back).
func (tx *Tx) commit() {
	if len(tx.held) == 0 {
		for _, a := range tx.frees {
			tx.rt.alloc.Free(a)
		}
		return
	}
	wv := tx.rt.clock.Add(1)
	if wv != tx.rv+1 {
		for i, r := range tx.readLog {
			if i%validationStride == 0 {
				tx.work++
			}
			v := r.l.Load()
			if v != r.ver && !tx.mine[r.l] {
				tx.rollback()
			}
		}
	}
	for _, h := range tx.held {
		h.l.Store(wv)
		tx.work++
	}
	tx.held = tx.held[:0]
	tx.undo = tx.undo[:0]
	clear(tx.mine)
	for _, a := range tx.frees {
		tx.rt.alloc.Free(a)
	}
}
