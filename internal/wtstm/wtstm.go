// Package wtstm is a write-through (in-place) software transactional
// memory in the style of TinySTM's write-through design (Felber,
// Fetzer, Riegel — PPoPP'08, the paper's reference [16]).
//
// The TLSTM paper's concluding remarks single this design out as future
// work: "The location redo-logs have also showed to add substantial
// overhead. Hence, different approaches for handling speculative writes
// (e.g. in-place writes [4]) should be studied." This package provides
// that alternative for the study bench (BenchmarkAblationWriteHandling):
//
//   - writes eagerly lock the location's versioned lock, save the old
//     value in an undo log, and update memory *in place*;
//   - reads of a locked location abort (the in-place value is
//     uncommitted); unlocked reads validate against the transaction's
//     read version with timestamp extension, like SwissTM;
//   - commit bumps the global clock and publishes by just releasing
//     locks with the new version — no copy-back pass;
//   - abort restores the undo log in reverse order and releases locks.
//
// The trade-off measured by the ablation: cheap commits and no
// redo-chain traversal on read-own-write, against wasted in-place
// writes on abort and reader-hostile eager locking.
//
// The engine substrate (version clock, read log, undo log, held-lock
// bookkeeping) comes from internal/clock and internal/txlog;
// descriptors are pooled per runtime, so steady-state transactions
// allocate nothing.
package wtstm

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mem"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/tm"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

const locked = ^uint64(0)

const (
	yieldQuantum     = 64
	txStartCost      = 24
	validationStride = 8
)

// Option configures a Runtime.
type Option func(*Runtime)

// WithClock selects the commit-clock strategy (internal/clock); the
// default is the GV4 fetch-and-add clock. Non-exclusive strategies
// (deferred, sharded) disable the "wv == rv+1 ⇒ skip validation"
// commit shortcut, which is only sound when timestamps are unique.
func WithClock(src clock.Source) Option {
	return func(rt *Runtime) { rt.clk = src }
}

// WithCM selects the contention-management policy (internal/cm); the
// default is cm.Suicide — one grace yield, then self-abort — which is
// the behavior this runtime had hardwired. The write-through locks are
// anonymous version words held for whole transaction lifetimes, so
// policies resolve against a nil owner: they shape the requester's
// waiting, aborting and backoff, and internal/cm bounds any
// wait-for-the-owner verdict so that two transactions eagerly holding
// each other's next lock cannot deadlock. nil keeps the default.
func WithCM(pol cm.Policy) Option {
	return func(rt *Runtime) { rt.cmPol = pol }
}

// WithMultiVersion retains the last k displaced committed versions per
// word and enables the wait-free read path for transactions run through
// AtomicRO. For a write-through runtime this is the difference between
// a reader aborting on any eagerly locked word and reading straight
// past it from the ring. k <= 0 disables multi-versioning (the
// default).
func WithMultiVersion(k int) Option {
	return func(rt *Runtime) {
		if k > 0 {
			rt.mv = txlog.NewVersionedStore(k, txlog.DefaultVersionedStoreBits)
		}
	}
}

// WithTrace attaches a flight recorder (internal/txtrace): every pooled
// descriptor gets its own single-owner event ring and records the
// transaction lifecycle (begin, attempts, reads, writes, validation,
// CM decisions, aborts, commits). nil keeps tracing off — the default
// no-op tracer compiles to a dead branch on the hot paths.
func WithTrace(rec *txtrace.Recorder) Option {
	return func(rt *Runtime) { rt.trace = rec }
}

// WithShards splits the versioned-lock array into n contiguous shards
// (a power of two; 0 and 1 both mean flat). Sharding only relabels
// locks for conflict attribution — address→lock resolution is
// identical at every shard count.
func WithShards(n int) Option {
	return func(rt *Runtime) { rt.shards = n }
}

// WithAffinity replaces the static round-robin thread placement with
// the conflict-sketch affinity policy (sched.Affinity).
func WithAffinity(on bool) Option {
	return func(rt *Runtime) { rt.affinity = on }
}

// WithMode configures the execution-mode ladder (internal/mode): the
// adaptive policy starts transactions speculative and falls back to a
// serialized global-lock rung under sustained conflict, recovering
// once the serialized window drains cleanly. The default keeps the
// ladder disarmed (always speculative).
func WithMode(cfg mode.Config) Option {
	return func(rt *Runtime) { rt.modeCfg = cfg }
}

// Runtime is one write-through STM instance.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator

	clk       clock.Source
	exclusive bool // cached clk.Exclusive() (commit fast path)

	cmPol cm.Policy // contention-management policy (conflict paths only)

	locks  []atomic.Uint64
	layout locktable.Layout // address→lock→shard mapping (shared geometry)

	// shards/affinity are config captured by options; placement is the
	// resulting thread→shard policy. threadIDs hands each caller-owned
	// Stats shard a placement identity on first use.
	shards    int
	affinity  bool
	placement sched.Placement
	threadIDs atomic.Int32

	// mv, when non-nil, is the multi-version word store declared
	// read-only transactions read from without validating.
	mv *txlog.VersionedStore

	// trace, when non-nil, hands each descriptor a flight-recorder ring.
	trace *txtrace.Recorder

	// modeCfg/gate/hub are the execution-mode ladder (WithMode): the
	// gate serializes fallback entrants, the hub parks Retry waiters.
	modeCfg mode.Config
	gate    mode.Gate
	hub     *mode.WaitHub

	txPool sync.Pool // *Tx descriptors, reused across Atomic calls
}

// New creates a runtime with 2^bits versioned locks.
func New(bits int, opts ...Option) *Runtime {
	if bits <= 0 {
		bits = 20
	}
	st := mem.NewStore()
	rt := &Runtime{
		store: st,
		alloc: mem.NewAllocator(st),
	}
	for _, o := range opts {
		o(rt)
	}
	rt.modeCfg = rt.modeCfg.Fill()
	rt.hub = mode.NewWaitHub()
	rt.layout = locktable.NewLayout(bits, rt.shards)
	rt.locks = make([]atomic.Uint64, rt.layout.Slots())
	if rt.affinity {
		rt.placement = sched.NewAffinity(rt.layout.Shards())
	} else {
		rt.placement = sched.NewRoundRobin(rt.layout.Shards())
	}
	if rt.clk == nil {
		rt.clk = clock.New(clock.KindGV4)
	}
	if rt.cmPol == nil {
		rt.cmPol = cm.New(cm.KindSuicide)
	}
	rt.exclusive = rt.clk.Exclusive()
	if rt.trace != nil {
		// The offline opacity checker recomputes lock-table slots and
		// picks its clock model from this metadata (txcheck).
		rt.trace.SetMeta("wtstm.lockbits", strconv.Itoa(bits))
		rt.trace.SetMeta("wtstm.clock", rt.clk.Name())
		rt.trace.SetMeta("wtstm.exclusive", strconv.FormatBool(rt.exclusive))
		rt.trace.SetMeta("wtstm.mvdepth", strconv.Itoa(rt.MVDepth()))
	}
	return rt
}

// MVDepth reports the retained version depth (0 when multi-versioning
// is off).
func (rt *Runtime) MVDepth() int {
	if rt.mv == nil {
		return 0
	}
	return rt.mv.K()
}

// ClockName reports the commit-clock strategy this runtime uses.
func (rt *Runtime) ClockName() string { return rt.clk.Name() }

// CMName reports the contention-management policy this runtime uses.
func (rt *Runtime) CMName() string { return rt.cmPol.Name() }

// Direct returns the non-transactional setup handle.
func (rt *Runtime) Direct() mem.Direct { return mem.Direct{Mem: rt.store, Al: rt.alloc} }

// Allocator exposes the allocator (tests).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

func (rt *Runtime) lockFor(a tm.Addr) *atomic.Uint64 {
	return &rt.locks[rt.layout.Index(a)]
}

// lockShard recovers the shard of a lock word previously returned by
// lockFor, by pointer arithmetic within the contiguous lock array
// (read-set validation holds only the lock pointer, not the address).
func (rt *Runtime) lockShard(l *atomic.Uint64) int {
	idx := (uintptr(unsafe.Pointer(l)) - uintptr(unsafe.Pointer(&rt.locks[0]))) /
		unsafe.Sizeof(atomic.Uint64{})
	return rt.layout.ShardOfIndex(uint64(idx))
}

// Shards reports the lock array's shard count.
func (rt *Runtime) Shards() int { return rt.layout.Shards() }

// PlacementName reports the thread-placement policy in use.
func (rt *Runtime) PlacementName() string { return rt.placement.Name() }

// Stats accumulates commits, aborts and work units.
type Stats struct {
	Commits uint64
	Aborts  uint64
	Work    uint64
	// SnapshotExtensions counts successful read-version extensions
	// (this runtime extends like SwissTM rather than aborting).
	SnapshotExtensions uint64
	// ClockCASRetries counts failed CASes inside commit-clock
	// operations (internal/clock.Probe).
	ClockCASRetries uint64
	// CMAbortsSelf counts lost conflicts (one AbortSelf decision
	// each); CMAbortsOwner counts AbortOwner decisions against the
	// (anonymous) owner, one per waiting round; BackoffSpins counts
	// the scheduler yields the policy charged between retries
	// (internal/cm.Probe).
	CMAbortsSelf  uint64
	CMAbortsOwner uint64
	BackoffSpins  uint64
	// EntryReclaims and HorizonStalls are always 0 for the
	// write-through STM: it updates memory in place under versioned
	// locks and keeps an undo log of plain records, so no lock-table
	// entries exist to reclaim. The fields exist so reclamation sweeps
	// report a uniform column across runtimes.
	EntryReclaims uint64
	HorizonStalls uint64
	// MVReads counts reads served on the multi-version wait-free path;
	// MVMisses counts read-only transactions that fell off it (ring
	// overrun, a word locked by an in-flight writer with no covering
	// version, or an undeclared write) and re-ran validated.
	MVReads  uint64
	MVMisses uint64
	// ReadSetSizes and WriteSetSizes histogram the per-committed-
	// transaction set sizes (logged reads / held locks).
	ReadSetSizes  txstats.Hist
	WriteSetSizes txstats.Hist
	// RestartLatency histograms the nanoseconds burned per aborted
	// attempt; CommitLatency the nanoseconds of each final, successful
	// attempt; Attempts the attempts-per-committed-transaction
	// distribution (1 = first-try commit).
	RestartLatency txstats.Hist
	CommitLatency  txstats.Hist
	Attempts       txstats.Hist
	// ConflictSketch counts aborts and CM defeats per lock-array shard;
	// CrossShardConflicts counts the subset outside the thread's home
	// shard; Remaps counts placement rebinds.
	ConflictSketch      txstats.Sketch
	CrossShardConflicts uint64
	Remaps              uint64
	// ModeFallbacks counts speculative→serialized ladder transitions
	// (mid-transaction escalations included) and ModeRecoveries the
	// returns to speculation; RetryWakes counts Retry parks woken by a
	// conflicting commit's doorbell.
	ModeFallbacks  uint64
	ModeRecoveries uint64
	RetryWakes     uint64

	// This runtime has no thread descriptor (Tx descriptors are pooled
	// per runtime, not per caller), so the caller-owned Stats shard IS
	// the logical thread: its placement identity lives here, assigned
	// on the shard's first transaction and touched only by the owning
	// goroutine — as is the execution-mode controller.
	bound        bool
	threadID     int32
	home         int32
	txSinceRemap int
	remapWindow  txstats.Sketch
	ctl          mode.Controller
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Work += o.Work
	s.SnapshotExtensions += o.SnapshotExtensions
	s.ClockCASRetries += o.ClockCASRetries
	s.CMAbortsSelf += o.CMAbortsSelf
	s.CMAbortsOwner += o.CMAbortsOwner
	s.BackoffSpins += o.BackoffSpins
	s.EntryReclaims += o.EntryReclaims
	s.HorizonStalls += o.HorizonStalls
	s.MVReads += o.MVReads
	s.MVMisses += o.MVMisses
	s.ReadSetSizes.Merge(o.ReadSetSizes)
	s.WriteSetSizes.Merge(o.WriteSetSizes)
	s.RestartLatency.Merge(o.RestartLatency)
	s.CommitLatency.Merge(o.CommitLatency)
	s.Attempts.Merge(o.Attempts)
	s.ConflictSketch.Merge(o.ConflictSketch)
	s.CrossShardConflicts += o.CrossShardConflicts
	s.Remaps += o.Remaps
	s.ModeFallbacks += o.ModeFallbacks
	s.ModeRecoveries += o.ModeRecoveries
	s.RetryWakes += o.RetryWakes
}

type rollbackSignal struct{}

// Tx is one write-through transaction descriptor; it implements tm.Tx.
// It is pooled by the runtime and reused across Atomic calls: its read
// log, undo log and held-lock scratch keep their backing storage.
type Tx struct {
	rt *Runtime
	rv uint64

	readLog txlog.VersionedReadLog
	undo    txlog.UndoLog
	held    txlog.LockSet

	allocs []tm.Addr
	frees  []tm.Addr

	work    uint64
	aborts  uint64
	extends uint64

	// home is the calling thread's home shard for this transaction;
	// sketch/crossShard attribute its aborts and CM defeats to shards.
	// Per-transaction, folded into the caller's Stats after commit.
	home       int32
	sketch     txstats.Sketch
	crossShard uint64

	// ro marks a transaction declared read-only (AtomicRO); mvOn is
	// true while it runs the multi-version wait-free read path. A miss
	// clears mvOn for the rest of the transaction and re-runs it
	// validated — never an error.
	ro       bool
	mvOn     bool
	mvReads  uint64
	mvMisses uint64

	// mvSeen dedupes undo records per address during the commit-time
	// version publish (the undo log holds one record per Store, and only
	// the first per address carries the original committed value).
	mvSeen map[tm.Addr]struct{}

	// lastWrites snapshots held.Len() at commit, before Publish empties
	// the set, for the write-set-size histogram.
	lastWrites int

	// clkProbe accumulates clock CAS retries (and pins this descriptor
	// to a shard under the sharded strategy).
	clkProbe clock.Probe

	// cmSelf/cmProbe are the descriptor's contention-management
	// identity and counters (internal/cm); greedTS is the priority slot
	// policies publish into (no other transaction reads it — the locks
	// carry no owner header — but it lets priority policies track their
	// own escalation state).
	cmSelf  cm.Self
	cmProbe cm.Probe
	greedTS atomic.Uint64

	// inSerial marks a transaction running under the ladder's
	// serialized gate (exempt from the gate-yield wait-loop breaks);
	// gateYield asks the retry loop for one SpinInit backoff after an
	// abort taken to let a gate entrant pass.
	inSerial  bool
	gateYield bool

	// waiter/parkPending/parkFP are the Retry cond-var state: Retry
	// subscribes the read-set fingerprint and sets parkPending; the
	// retry loop parks before the next attempt. retryAborts counts
	// Retry unwinds, excluded from the ladder's escalation signals.
	waiter      mode.Waiter
	parkPending bool
	parkFP      uint64
	retryAborts uint64

	// tr is this descriptor's flight recorder (txtrace.Nop unless the
	// runtime was built WithTrace); traced caches tr.Enabled() so the
	// hot paths pay one predictable branch.
	tr     txtrace.Tracer
	traced bool
}

var _ tm.Tx = (*Tx)(nil)

// Atomic runs fn as one transaction, retrying until commit.
func (rt *Runtime) Atomic(st *Stats, fn func(tx *Tx)) {
	rt.run(st, fn, false)
}

// AtomicRO runs fn as one transaction declared read-only. With
// multi-versioning enabled (WithMultiVersion), the transaction reads
// the newest version with timestamp <= its snapshot, logs nothing,
// skips validation, and commits unconditionally; a reader overrun by
// more than K writers — or an undeclared store — silently re-runs the
// transaction on the validated path.
func (rt *Runtime) AtomicRO(st *Stats, fn func(tx *Tx)) {
	rt.run(st, fn, true)
}

func (rt *Runtime) run(st *Stats, fn func(tx *Tx), ro bool) {
	tx, _ := rt.txPool.Get().(*Tx)
	if tx == nil {
		tx = &Tx{rt: rt}
		tx.cmSelf.Timestamp = &tx.greedTS
		tx.cmSelf.Probe = &tx.cmProbe
		tx.tr = txtrace.Nop
		if rt.trace != nil {
			tx.tr = rt.trace.NewRing("wtstm-tx")
			tx.traced = true
		}
	}
	tx.work = 0
	tx.aborts = 0
	tx.retryAborts = 0
	tx.gateYield = false
	tx.extends = 0
	tx.greedTS.Store(0)
	tx.cmSelf.Defeats = 0
	tx.ro = ro
	tx.mvOn = ro && rt.mv != nil
	tx.mvReads = 0
	tx.mvMisses = 0
	tx.lastWrites = 0
	tx.sketch = txstats.Sketch{}
	tx.crossShard = 0
	tx.home = 0
	if st != nil {
		if !st.bound {
			st.bound = true
			st.threadID = rt.threadIDs.Add(1) - 1
			st.home = int32(rt.placement.Home(int(st.threadID)))
			st.ctl = mode.NewController(rt.modeCfg)
		}
		tx.home = st.home
	}
	if tx.traced {
		tx.tr.Record(txtrace.KindTxBegin, rt.clk.Now(), 0, 0)
	}
	// Ladder: a serialized transaction takes the runtime gate before
	// its first attempt (announcing itself so speculative wait loops
	// yield) and runs the unchanged write-through protocol under it —
	// opacity by construction, serialization only against other
	// fallback entrants.
	serial := st != nil && st.ctl.Serial()
	if serial {
		tx.enterGate()
	}
	var lastAttempt time.Time
	for {
		if tx.parkPending {
			tx.parkRetry(st, serial)
		}
		lastAttempt = time.Now()
		tx.rv = rt.clk.Now()
		tx.readLog.Reset()
		tx.undo.Reset()
		tx.held.Reset()
		tx.allocs = tx.allocs[:0]
		tx.frees = tx.frees[:0]
		tx.work += txStartCost
		if tx.traced {
			tx.tr.Record(txtrace.KindAttemptStart, tx.rv, tx.aborts+1, 0)
		}

		if tx.attempt(fn) {
			break
		}
		if st != nil {
			st.RestartLatency.Observe(int(time.Since(lastAttempt)))
		}
		tx.aborts++
		if tx.parkPending {
			// A Retry unwound this attempt; it parks at the top of the
			// loop — no contention backoff, no escalation pressure.
			tx.retryAborts++
			continue
		}
		if !serial && st != nil && st.ctl.Escalate(int(tx.aborts-tx.retryAborts)) {
			// Attempt budget exhausted mid-transaction (TK_NUM_TRIES):
			// move this transaction under the gate and retry there.
			serial = true
			st.ModeFallbacks++
			if tx.traced {
				tx.tr.Record(txtrace.KindModeShift, rt.clk.Now(),
					uint64(mode.StateSerial), uint32(mode.StateSpec))
			}
			tx.enterGate()
			continue
		}
		if tx.gateYield {
			// We aborted to let a gate entrant pass: back off SpinInit
			// yields so the serialized cohort gets cycles first.
			tx.gateYield = false
			for i := 0; i < rt.modeCfg.SpinInit; i++ {
				runtime.Gosched()
			}
		}
		tx.cmSelf.Aborts = tx.aborts
		for i, n := 0, cm.AbortBackoff(rt.cmPol, &tx.cmSelf); i < n; i++ {
			runtime.Gosched()
		}
	}
	if serial {
		tx.exitGate()
	}
	if st != nil {
		if fell, rec := st.ctl.OnOutcome(tx.aborts-tx.retryAborts, tx.cmSelf.Defeats > 0); fell || rec {
			if fell {
				st.ModeFallbacks++
			} else {
				st.ModeRecoveries++
			}
			if tx.traced {
				tx.tr.Record(txtrace.KindModeShift, rt.clk.Now(),
					uint64(st.ctl.State()), uint32(1-st.ctl.State()))
			}
		}
	}
	cm.Committed(rt.cmPol, &tx.cmSelf)
	cmSelf, cmOwner, spins := tx.cmProbe.TakeCounts()
	if st != nil {
		st.Commits++
		st.Aborts += tx.aborts
		st.Work += tx.work
		st.SnapshotExtensions += tx.extends
		st.ClockCASRetries += tx.clkProbe.TakeRetries()
		st.CMAbortsSelf += cmSelf
		st.CMAbortsOwner += cmOwner
		st.BackoffSpins += spins
		st.MVReads += tx.mvReads
		st.MVMisses += tx.mvMisses
		st.ReadSetSizes.Observe(tx.readLog.Len())
		st.WriteSetSizes.Observe(tx.lastWrites)
		st.CommitLatency.Observe(int(time.Since(lastAttempt)))
		st.Attempts.Observe(int(tx.aborts) + 1)
		st.ConflictSketch.Merge(tx.sketch)
		st.CrossShardConflicts += tx.crossShard
		rt.maybeRemap(st, tx)
	}
	tx.ro = false
	rt.txPool.Put(tx)
}

// enterGate moves the transaction under the serialized rung: pending
// is raised before the lock is contended so speculative wait loops
// start yielding immediately.
func (tx *Tx) enterGate() {
	tx.inSerial = true
	tx.rt.gate.Enter()
}

func (tx *Tx) exitGate() {
	tx.rt.gate.Exit()
	tx.inSerial = false
}

// parkRetry blocks the transaction on its Retry doorbell until a
// conflicting commit rings it. A serialized transaction releases the
// gate across the park (its producer may need the serialized rung) and
// re-enters after.
func (tx *Tx) parkRetry(st *Stats, serial bool) {
	tx.parkPending = false
	if tx.traced {
		tx.tr.Record(txtrace.KindRetryPark, tx.rt.clk.Now(), tx.parkFP, 0)
	}
	if serial {
		tx.exitGate()
	}
	tx.waiter.Park()
	tx.rt.hub.Unsubscribe(&tx.waiter)
	if serial {
		tx.enterGate()
	}
	if st != nil {
		st.RetryWakes++
	}
	if tx.traced {
		tx.tr.Record(txtrace.KindRetryPark, tx.rt.clk.Now(), tx.parkFP, 1)
	}
}

// remapPeriod is how many transactions a thread commits between
// consecutive Rebalance offers to the placement policy.
const remapPeriod = 64

// maybeRemap is the commit-epilogue placement step, run on the calling
// thread against its own Stats shard: every remapPeriod transactions
// offer the accumulated conflict-sketch window to the placement policy
// and refresh the shard's home.
func (rt *Runtime) maybeRemap(st *Stats, tx *Tx) {
	st.remapWindow.Merge(tx.sketch)
	st.txSinceRemap++
	if st.txSinceRemap < remapPeriod {
		return
	}
	st.txSinceRemap = 0
	moved := rt.placement.Rebalance(int(st.threadID), st.remapWindow)
	st.remapWindow = txstats.Sketch{}
	if moved {
		old := st.home
		st.home = int32(rt.placement.Home(int(st.threadID)))
		st.Remaps++
		if tx.traced {
			tx.tr.Record(txtrace.KindRemap, rt.clk.Now(), uint64(st.home), uint32(old))
		}
	}
}

// noteConflict attributes one abort or CM defeat at address a to its
// lock-array shard (cold path).
func (tx *Tx) noteConflict(a tm.Addr) {
	shard := tx.rt.layout.ShardOf(a)
	tx.sketch.Observe(shard)
	if int32(shard) != tx.home {
		tx.crossShard++
	}
}

// noteConflictLock is noteConflict for sites that hold only the lock
// word (read-set validation).
func (tx *Tx) noteConflictLock(l *atomic.Uint64) {
	shard := tx.rt.lockShard(l)
	tx.sketch.Observe(shard)
	if int32(shard) != tx.home {
		tx.crossShard++
	}
}

func (tx *Tx) attempt(fn func(tx *Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(rollbackSignal); !is {
				tx.undoAndRelease()
				for _, a := range tx.allocs {
					tx.rt.alloc.Free(a)
				}
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	tx.commit()
	return true
}

// abort records the abort reason on the flight recorder, then rolls
// back (every rollback site routes through here so traces carry the
// cause alongside the count).
func (tx *Tx) abort(reason uint32) {
	if tx.traced {
		tx.tr.Record(txtrace.KindAbort, tx.rv, 0, reason)
	}
	tx.rollback()
}

// rollback restores in-place writes and unwinds to the retry loop.
func (tx *Tx) rollback() {
	tx.undoAndRelease()
	for _, a := range tx.allocs {
		tx.rt.alloc.Free(a)
	}
	panic(rollbackSignal{})
}

// undoAndRelease rolls the undo log back in reverse order, then
// releases every held lock at its pre-lock version.
func (tx *Tx) undoAndRelease() {
	recs := tx.undo.Recs()
	for i := len(recs) - 1; i >= 0; i-- {
		tx.rt.store.StoreWord(recs[i].Addr, recs[i].Old)
		tx.work++
	}
	tx.undo.Reset()
	tx.held.Restore()
}

func (tx *Tx) tick(units uint64) {
	tx.work += units
	if tx.work%yieldQuantum < units {
		runtime.Gosched()
	}
}

// Load implements tm.Tx.
func (tx *Tx) Load(a tm.Addr) uint64 {
	if tx.mvOn {
		return tx.loadMV(a)
	}
	tx.tick(1)
	l := tx.rt.lockFor(a)
	if tx.held.Holds(l) {
		// We hold the lock: memory already has our in-place value.
		return tx.rt.store.LoadWord(a)
	}
	waited := 0
	for {
		v1 := l.Load()
		if v1 == locked {
			// Uncommitted in-place data from another transaction: a
			// write-through design cannot read around it. The policy
			// decides between waiting the owner out and aborting (the
			// Suicide default gives one grace yield, then dies — the
			// owner holds the lock for its whole lifetime).
			tx.cmSelf.Point = cm.PointEncounter
			tx.cmSelf.Writes = tx.held.Len()
			tx.cmSelf.Waited = waited
			dec := cm.Resolve(tx.rt.cmPol, &tx.cmSelf, nil)
			if tx.traced {
				tx.tr.Record(txtrace.KindCMDecision, tx.rv, uint64(a),
					txtrace.CMAux(int(dec), int(cm.PointEncounter)))
			}
			if dec == cm.AbortSelf {
				tx.cmSelf.Defeats++
				tx.noteConflict(a)
				tx.abort(txtrace.AbortCM)
			}
			if !tx.inSerial && tx.rt.gate.Pending() {
				// A serialized entrant holds or awaits the gate: riding
				// this conflict out could deadlock against it (the
				// eager lock's owner may itself be parked behind the
				// gate). Yield instead — the retry loop charges
				// SpinInit backoff first.
				tx.cmSelf.Defeats++
				tx.gateYield = true
				tx.noteConflict(a)
				tx.abort(txtrace.AbortCM)
			}
			waited++
			tx.work += yieldQuantum
			runtime.Gosched()
			continue
		}
		val := tx.rt.store.LoadWord(a)
		if l.Load() != v1 {
			continue
		}
		if v1 > tx.rv && !tx.extendTo(v1) {
			tx.noteConflict(a)
			tx.abort(txtrace.AbortExtend)
		}
		if v1 > tx.rv {
			continue
		}
		tx.readLog.Append(l, v1)
		if tx.traced {
			tx.tr.Record(txtrace.KindRead, v1, uint64(a), 0)
		}
		return val
	}
}

// loadMV is the wait-free read path of a declared read-only transaction
// under multi-versioning: serve the newest version with timestamp <=
// the frozen read version — from memory when the current version
// qualifies, else from the version ring — logging nothing and never
// consulting the contention manager. For this write-through runtime the
// ring is what lets a reader pass a word another transaction holds
// eagerly locked for its whole lifetime: memory holds uncommitted
// in-place data, but the last committed versions are retained. A miss
// (ring overrun, or a locked word whose committed value predates the
// ring) re-runs the whole transaction validated — the owner can hold
// the lock arbitrarily long, so waiting here is not an option.
func (tx *Tx) loadMV(a tm.Addr) uint64 {
	tx.tick(1)
	l := tx.rt.lockFor(a)
	for {
		v1 := l.Load()
		if v1 != locked && v1 <= tx.rv {
			val := tx.rt.store.LoadWord(a)
			if l.Load() == v1 {
				tx.mvReads++
				if tx.traced {
					tx.tr.Record(txtrace.KindRead, v1, uint64(a), 1)
				}
				return val
			}
			continue // torn read: version moved underneath us
		}
		if val, from, ok := tx.rt.mv.ReadAt(a, tx.rv); ok {
			tx.mvReads++
			if tx.traced {
				// Clock carries the served version's birth stamp, not the
				// snapshot: the opacity checker needs the observed version.
				tx.tr.Record(txtrace.KindRead, from, uint64(a), 1)
			}
			return val
		}
		tx.mvMisses++
		tx.mvOn = false
		tx.abort(txtrace.AbortSpec)
	}
}

// extendTo revalidates the read log and advances rv after asking the
// clock to cover the witnessed stamp (pre-publishing strategies only
// advance on Observe; without it the stamp that sent us here would
// stay forever ahead of rv and the read would livelock).
func (tx *Tx) extendTo(witness uint64) bool {
	ts := tx.rt.clk.Observe(witness, &tx.clkProbe)
	for i, re := range tx.readLog.Entries() {
		if i%validationStride == 0 {
			tx.work++
		}
		v := re.Lock.Load()
		if v == re.Version {
			continue
		}
		if tx.held.Holds(re.Lock) {
			continue
		}
		if tx.traced {
			tx.tr.Record(txtrace.KindExtend, ts, witness, 0)
		}
		return false
	}
	if ts > tx.rv {
		tx.extends++
		if tx.traced {
			tx.tr.Record(txtrace.KindExtend, ts, witness, 1)
		}
	}
	tx.rv = ts
	return true
}

// Store implements tm.Tx: eager lock, undo log, in-place update.
func (tx *Tx) Store(a tm.Addr, v uint64) {
	if tx.mvOn {
		// A store in a declared read-only transaction: the earlier
		// multi-version reads were unlogged at a frozen read version, so
		// re-run the attempt on the validated read-write path.
		tx.mvOn = false
		tx.abort(txtrace.AbortSpec)
	}
	tx.tick(2)
	l := tx.rt.lockFor(a)
	if !tx.held.Holds(l) {
		waited := 0
		for {
			cur := l.Load()
			if cur == locked {
				// Writer/writer conflict against an anonymous eager
				// lock: the policy decides (Suicide: one grace yield,
				// then self-abort and retry).
				tx.cmSelf.Point = cm.PointEncounter
				tx.cmSelf.Writes = tx.held.Len()
				tx.cmSelf.Waited = waited
				dec := cm.Resolve(tx.rt.cmPol, &tx.cmSelf, nil)
				if tx.traced {
					tx.tr.Record(txtrace.KindCMDecision, tx.rv, uint64(a),
						txtrace.CMAux(int(dec), int(cm.PointEncounter)))
				}
				if dec == cm.AbortSelf {
					tx.cmSelf.Defeats++
					tx.noteConflict(a)
					tx.abort(txtrace.AbortCM)
				}
				if !tx.inSerial && tx.rt.gate.Pending() {
					tx.cmSelf.Defeats++
					tx.gateYield = true
					tx.noteConflict(a)
					tx.abort(txtrace.AbortCM)
				}
				waited++
				tx.work += yieldQuantum
				runtime.Gosched()
				continue
			}
			if cur > tx.rv && !tx.extendTo(cur) {
				tx.noteConflict(a)
				tx.abort(txtrace.AbortExtend)
			}
			if cur > tx.rv {
				continue
			}
			if l.CompareAndSwap(cur, locked) {
				tx.held.Add(l, cur)
				break
			}
		}
	}
	tx.undo.Append(a, tx.rt.store.LoadWord(a))
	tx.rt.store.StoreWord(a, v)
	if tx.traced {
		tx.tr.Record(txtrace.KindWrite, tx.rv, uint64(a), 0)
	}
}

// Retry is the transactional cond-var wait: abandon this attempt and
// block until a commit whose write set intersects this attempt's read
// set publishes, then re-run fn against a fresh snapshot. The waiter
// subscribes its read-set fingerprint first, then re-validates the
// read log — a commit that published before the subscription fails the
// validation (immediate re-run, no park); one that publishes after it
// finds the waiter registered and rings its doorbell. An empty or
// already-stale read set never parks.
func (tx *Tx) Retry() {
	if tx.mvOn {
		// Multi-version reads are unlogged: nothing to fingerprint.
		// Re-run on the validated path, where the next Retry can park.
		tx.mvOn = false
		tx.abort(txtrace.AbortRetry)
	}
	var fp mode.Fingerprint
	for _, re := range tx.readLog.Entries() {
		fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(re.Lock)))
	}
	if fp != 0 {
		hub := tx.rt.hub
		hub.Subscribe(&tx.waiter, fp)
		valid := true
		for _, re := range tx.readLog.Entries() {
			if re.Lock.Load() != re.Version && !tx.held.Holds(re.Lock) {
				valid = false
				break
			}
		}
		if valid {
			tx.parkPending = true
			tx.parkFP = uint64(fp)
		} else {
			hub.Unsubscribe(&tx.waiter)
		}
	}
	tx.abort(txtrace.AbortRetry)
}

// Alloc implements tm.Tx.
func (tx *Tx) Alloc(n int) tm.Addr {
	tx.work++
	a := tx.rt.alloc.Alloc(n)
	tx.allocs = append(tx.allocs, a)
	return a
}

// Free implements tm.Tx.
func (tx *Tx) Free(a tm.Addr) { tx.frees = append(tx.frees, a) }

// commit validates reads, then publishes by releasing locks at the new
// version — the in-place values are already in memory (no copy-back).
func (tx *Tx) commit() {
	if tx.held.Len() == 0 {
		tx.applyFrees()
		if tx.traced {
			tx.tr.Record(txtrace.KindCommit, tx.rv, 0, 0)
		}
		return
	}
	wv := tx.rt.clk.Tick(&tx.clkProbe)
	// The wv == rv+1 validation skip is sound only on exclusive clocks
	// (see the TL2 commit for the argument).
	if !tx.rt.exclusive || wv != tx.rv+1 {
		for i, re := range tx.readLog.Entries() {
			if i%validationStride == 0 {
				tx.work++
			}
			v := re.Lock.Load()
			if v != re.Version && !tx.held.Holds(re.Lock) {
				if tx.traced {
					tx.tr.Record(txtrace.KindValidate, wv, uint64(tx.readLog.Len()), 0)
				}
				tx.noteConflictLock(re.Lock)
				tx.abort(txtrace.AbortValidation)
			}
		}
		if tx.traced {
			tx.tr.Record(txtrace.KindValidate, wv, uint64(tx.readLog.Len()), 1)
		}
	}
	tx.work += uint64(tx.held.Len())
	// Feed the multi-version store before the undo log is dropped:
	// memory already holds this transaction's in-place values, so the
	// displaced committed value of each written word lives in its first
	// undo record, valid over [displaced lock version, wv).
	if mv := tx.rt.mv; mv != nil {
		tx.publishVersions(wv)
	}
	if tx.traced {
		// Written-word identities for the opacity checker, taken from the
		// undo log before it is dropped. Per-address repeats (a word this
		// transaction overwrote more than once) are fine: the checker
		// dedups (slot, stamp) pairs within one attempt.
		for _, rec := range tx.undo.Recs() {
			tx.tr.Record(txtrace.KindCommitWord, wv, uint64(rec.Addr), 0)
		}
	}
	// The write set's lock identities live in the undo log, which is
	// dropped before Publish: fingerprint Retry waiters now, ring them
	// after the locks are released at wv (so a woken waiter's
	// validation sees the published versions). The no-waiter fast path
	// is one atomic load; bloom repeats per address are idempotent.
	var notifyFP mode.Fingerprint
	if hub := tx.rt.hub; hub.Active() {
		for _, rec := range tx.undo.Recs() {
			notifyFP = mode.FPAdd(notifyFP, uintptr(unsafe.Pointer(tx.rt.lockFor(rec.Addr))))
		}
	}
	tx.lastWrites = tx.held.Len()
	tx.undo.Reset()
	tx.held.Publish(wv)
	if notifyFP != 0 {
		tx.rt.hub.Notify(notifyFP)
	}
	tx.applyFrees()
	if tx.traced {
		tx.tr.Record(txtrace.KindCommit, wv, uint64(tx.lastWrites), 0)
	}
}

// publishVersions walks the undo log in append order, keeping the first
// record per address (the original committed value — later records for
// the same address saved this transaction's own in-place writes).
func (tx *Tx) publishVersions(wv uint64) {
	if tx.mvSeen == nil {
		tx.mvSeen = make(map[tm.Addr]struct{}, 16)
	}
	for _, rec := range tx.undo.Recs() {
		if _, dup := tx.mvSeen[rec.Addr]; dup {
			continue
		}
		tx.mvSeen[rec.Addr] = struct{}{}
		pre, _ := tx.held.Displaced(tx.rt.lockFor(rec.Addr))
		tx.rt.mv.Publish(rec.Addr, rec.Old, pre, wv)
	}
	clear(tx.mvSeen)
}

func (tx *Tx) applyFrees() {
	for _, a := range tx.frees {
		tx.rt.alloc.Free(a)
	}
}
