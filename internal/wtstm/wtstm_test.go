package wtstm

import (
	"sync"
	"testing"

	"tlstm/internal/rbtree"
	"tlstm/internal/tm"
)

func TestReadWriteRoundTrip(t *testing.T) {
	rt := New(14)
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) {
		a = tx.Alloc(2)
		tx.Store(a, 5)
		tx.Store(a+1, 6)
		if tx.Load(a) != 5 || tx.Load(a+1) != 6 {
			t.Error("read-own-write failed")
		}
	})
	rt.Atomic(nil, func(tx *Tx) {
		if tx.Load(a) != 5 || tx.Load(a+1) != 6 {
			t.Error("committed values lost")
		}
	})
}

func TestUndoRestoresOnAbort(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	a := d.Alloc(1)
	d.Store(a, 42)
	// Force one attempt to fail mid-flight via a user panic that must
	// roll back the in-place write.
	func() {
		defer func() { _ = recover() }()
		rt.Atomic(nil, func(tx *Tx) {
			tx.Store(a, 99)
			panic("boom")
		})
	}()
	if got := d.Load(a); got != 42 {
		t.Fatalf("in-place write not undone: %d, want 42", got)
	}
	// The lock must be free again.
	done := make(chan struct{})
	go func() {
		rt.Atomic(nil, func(tx *Tx) { tx.Store(a, 1) })
		close(done)
	}()
	<-done
}

func TestMultipleWritesSameWordUndoOrder(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	a := d.Alloc(1)
	d.Store(a, 7)
	func() {
		defer func() { _ = recover() }()
		rt.Atomic(nil, func(tx *Tx) {
			tx.Store(a, 8)
			tx.Store(a, 9)
			tx.Store(a, 10)
			panic("boom")
		})
	}()
	if got := d.Load(a); got != 7 {
		t.Fatalf("reverse-order undo broken: %d, want 7", got)
	}
}

func TestConcurrentCounter(t *testing.T) {
	rt := New(14)
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	const workers, per = 6, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rt.Atomic(nil, func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
			}
		}()
	}
	wg.Wait()
	if got := rt.Direct().Load(a); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestSnapshotInvariant(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	x := d.Alloc(1)
	y := d.Alloc(1)
	d.Store(x, 500)
	d.Store(y, 500)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.Atomic(nil, func(tx *Tx) {
				vx := tx.Load(x)
				tx.Store(x, vx-1)
				tx.Store(y, tx.Load(y)+1)
			})
		}
	}()
	violations := 0
	for i := 0; i < 300; i++ {
		rt.Atomic(nil, func(tx *Tx) {
			if tx.Load(x)+tx.Load(y) != 1000 {
				violations++
			}
		})
	}
	close(stop)
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d torn snapshots", violations)
	}
}

func TestRBTreeOnWriteThrough(t *testing.T) {
	rt := New(14)
	var tr rbtree.Tree
	rt.Atomic(nil, func(tx *Tx) { tr = rbtree.New(tx) })
	for k := int64(0); k < 200; k++ {
		rt.Atomic(nil, func(tx *Tx) { tr.Insert(tx, k, uint64(k)) })
	}
	for k := int64(0); k < 200; k += 2 {
		rt.Atomic(nil, func(tx *Tx) { tr.Delete(tx, k) })
	}
	d := rt.Direct()
	if msg := tr.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
	if tr.Size(d) != 100 {
		t.Fatalf("Size = %d, want 100", tr.Size(d))
	}
}

func TestBankInvariant(t *testing.T) {
	rt := New(14)
	d := rt.Direct()
	const accounts, initial = 16, 1000
	base := d.Alloc(accounts)
	for i := 0; i < accounts; i++ {
		d.Store(base+tm.Addr(i), initial)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := seed
			next := func() uint64 { s = s*6364136223846793005 + 1; return s >> 33 }
			for i := 0; i < 150; i++ {
				from := base + tm.Addr(next()%accounts)
				to := base + tm.Addr(next()%accounts)
				amt := next() % 9
				rt.Atomic(nil, func(tx *Tx) {
					f := tx.Load(from)
					if from != to && f >= amt {
						tx.Store(from, f-amt)
						tx.Store(to, tx.Load(to)+amt)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	var sum uint64
	for i := 0; i < accounts; i++ {
		sum += d.Load(base + tm.Addr(i))
	}
	if sum != accounts*initial {
		t.Fatalf("sum = %d, want %d", sum, accounts*initial)
	}
}
