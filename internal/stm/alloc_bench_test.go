package stm_test

import (
	"testing"

	"tlstm/internal/stm"
	"tlstm/internal/tm"
)

// Allocation-regression benchmarks for the SwissTM hot paths: a warmed
// Worker must run read/write transactions — including the commit's
// r-lock scratch — without allocating. Companion assertions live in
// alloc_norace_test.go (testing.AllocsPerRun is not meaningful under
// the race detector).

const benchAddrs = 8

func setupWorker(tb testing.TB) (*stm.Worker, []tm.Addr, func(tx *stm.Tx)) {
	tb.Helper()
	rt := stm.New()
	d := rt.Direct()
	addrs := make([]tm.Addr, benchAddrs)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	w := rt.NewWorker()
	body := func(tx *stm.Tx) {
		for _, a := range addrs {
			tx.Store(a, tx.Load(a)+1)
		}
	}
	w.Atomic(body) // warm logs, scratch and the entry pool
	return w, addrs, body
}

// BenchmarkWorkerAtomicReadWrite measures one full transaction — begin,
// 8 reads, 8 writes, writer commit — on a warmed Worker. allocs/op must
// be 0.
func BenchmarkWorkerAtomicReadWrite(b *testing.B) {
	w, _, body := setupWorker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Atomic(body)
	}
}

// BenchmarkWorkerAtomicReadOnly measures a read-only transaction on a
// warmed Worker. allocs/op must be 0.
func BenchmarkWorkerAtomicReadOnly(b *testing.B) {
	w, addrs, _ := setupWorker(b)
	var sink uint64
	body := func(tx *stm.Tx) {
		for _, a := range addrs {
			sink += tx.Load(a)
		}
	}
	w.Atomic(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Atomic(body)
	}
	_ = sink
}

// setupMVWorkers builds a writer/reader pair over a depth-2
// multi-version runtime for the wait-free read-path benchmarks and the
// companion zero-alloc assertion.
func setupMVWorkers(tb testing.TB) (writer, reader *stm.Worker, addrs []tm.Addr) {
	tb.Helper()
	rt := stm.New(stm.WithMultiVersion(2))
	d := rt.Direct()
	addrs = make([]tm.Addr, benchAddrs)
	for i := range addrs {
		addrs[i] = d.Alloc(1)
	}
	return rt.NewWorker(), rt.NewWorker(), addrs
}

// BenchmarkWorkerAtomicROMultiVersion measures one declared read-only
// transaction on the wait-free multi-version path — begin, 8 unlogged
// reads, unconditional commit. allocs/op must be 0; compare against
// BenchmarkWorkerAtomicReadOnly for the validated-path cost.
func BenchmarkWorkerAtomicROMultiVersion(b *testing.B) {
	_, reader, addrs := setupMVWorkers(b)
	var sink uint64
	scan := func(tx *stm.Tx) {
		for _, a := range addrs {
			sink += tx.Load(a)
		}
	}
	reader.AtomicRO(scan)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reader.AtomicRO(scan)
	}
	_ = sink
}

// BenchmarkRuntimeAtomicPooled measures the descriptor-per-call
// compatibility entry point, which borrows a pooled Worker. allocs/op
// must also be 0 at steady state.
func BenchmarkRuntimeAtomicPooled(b *testing.B) {
	rt := stm.New()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) }
	rt.Atomic(nil, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Atomic(nil, body)
	}
}
