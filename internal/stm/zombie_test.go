package stm

import (
	"sync"
	"testing"
)

// TestExtensionRefusesZombieAcrossOwnWriteLock pins the opacity fix the
// trace checker forced: snapshot extension must NOT exempt pairs whose
// w-lock the transaction holds, because the r-lock may have been
// advanced by a foreign commit between our read and our acquisition.
//
// The directed interleaving: the victim reads X at its initial
// version, a writer then commits {X, Y} atomically, the victim
// write-locks X (free again after the writer released it) and reads Y.
// Extension over Y's new version must kill the attempt — with the old
// w-lock exemption it skipped X's moved version, extended, and let the
// victim observe old-X alongside new-Y: a zombie running on a mixed
// snapshot (it could never commit, but opacity forbids it ever
// *seeing* that state).
func TestExtensionRefusesZombieAcrossOwnWriteLock(t *testing.T) {
	rt := New()
	d := rt.Direct()
	base := d.Alloc(2)
	addrX, addrY := base, base+1

	start := make(chan struct{})
	committed := make(chan struct{})
	var once sync.Once
	go func() {
		<-start
		rt.Atomic(nil, func(tx *Tx) {
			tx.Store(addrX, 1)
			tx.Store(addrY, 1)
		})
		close(committed)
	}()

	attempts := 0
	torn := false
	rt.Atomic(nil, func(tx *Tx) {
		attempts++
		x := tx.Load(addrX)
		once.Do(func() {
			close(start)
			<-committed
		})
		<-committed // no-op after the first attempt; orders the retry too
		tx.Store(addrX, x+2)
		y := tx.Load(addrY)
		if x == 0 && y == 1 {
			torn = true
		}
	})

	if torn {
		t.Fatalf("attempt observed old X with new Y: zombie snapshot survived extension")
	}
	if attempts < 2 {
		t.Fatalf("victim committed in %d attempt(s); the interleaving never forced the doomed first attempt", attempts)
	}
	if got := d.Load(addrX); got != 3 {
		t.Fatalf("X = %d, want 3 (writer's 1 + victim's +2)", got)
	}
	if got := d.Load(addrY); got != 1 {
		t.Fatalf("Y = %d, want 1", got)
	}
}
