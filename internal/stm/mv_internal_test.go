package stm

import (
	"testing"

	"tlstm/internal/tm"
)

// TestMVReadOnlyLogsNothing pins the "zero validation-loop iterations"
// half of the wait-free claim from inside the package: a committed
// multi-version read-only transaction has an empty read log (there is
// nothing for validate/extendTo to iterate) and an empty write log.
func TestMVReadOnlyLogsNothing(t *testing.T) {
	rt := New(WithMultiVersion(2))
	d := rt.Direct()
	base := d.Alloc(4)
	for i := 0; i < 4; i++ {
		d.Store(base+tm.Addr(i), uint64(i))
	}
	w := rt.NewWorker()
	var sum uint64
	w.AtomicRO(func(tx *Tx) {
		for i := 0; i < 4; i++ {
			sum += tx.Load(base + tm.Addr(i))
		}
	})
	if sum != 0+1+2+3 {
		t.Fatalf("scan sum = %d, want 6", sum)
	}
	if n := w.tx.readLog.Len(); n != 0 {
		t.Fatalf("mv read-only transaction logged %d reads, want 0", n)
	}
	if n := w.tx.writeLog.Len(); n != 0 {
		t.Fatalf("mv read-only transaction logged %d writes, want 0", n)
	}
	if w.tx.extends != 0 {
		t.Fatalf("mv read-only transaction extended %d times, want 0", w.tx.extends)
	}
}
