// Package stm is a from-scratch Go implementation of SwissTM
// (Dragojević, Guerraoui, Kapałka — PLDI'09), the baseline software
// transactional memory that TLSTM extends (paper §3.1).
//
// Algorithm summary, as described in the paper:
//
//   - a global commit counter (commit-ts) acts as a wall clock,
//     incremented by every non-read-only transaction at commit;
//   - every word maps to an (r-lock, w-lock) pair in a global lock
//     table; writers eagerly acquire the w-lock (pessimistic write/write
//     detection) and buffer writes in a redo log;
//   - reads are optimistic and validated lazily: each transaction keeps
//     a valid-ts timestamp up to which all its reads are known
//     consistent, extending it (by revalidating the read log) whenever
//     it observes a newer version;
//   - at commit, writers lock the r-locks of written locations, take a
//     new commit timestamp, validate the read log once more, publish the
//     buffered values, and release both locks;
//   - write/write conflicts go through a two-phase greedy contention
//     manager.
//
// The transaction-engine bookkeeping (read/write logs, commit scratch,
// the commit clock, stats sharding) lives in the shared infrastructure
// packages internal/txlog, internal/clock and internal/txstats; this
// package contributes only the SwissTM protocol itself. Hot paths are
// allocation-free at steady state: a Worker owns a pooled transaction
// descriptor whose logs, scratch buffers and write-lock entries are
// reused across transactions.
package stm

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mem"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/tm"
	"tlstm/internal/txlog"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
)

// Option configures a Runtime.
type Option func(*config)

type config struct {
	lockTableBits int
	shards        int
	affinity      bool
	padded        bool
	clk           clock.Source
	pol           cm.Policy
	mvDepth       int
	trace         *txtrace.Recorder
	mode          mode.Config
}

// DefaultLockTableBits is the lock-table size (2^bits pairs) used when
// WithLockTableBits is not given; the other runtimes' constructors and
// the harness use it as the common geometry.
const DefaultLockTableBits = 20

// WithLockTableBits sets the lock table to 2^bits pairs.
func WithLockTableBits(bits int) Option {
	return func(c *config) { c.lockTableBits = bits }
}

// WithShards splits the lock table into n contiguous shards (a power of
// two; 0 and 1 both mean the flat table). Sharding only relabels pairs
// for conflict attribution and placement — address→pair resolution is
// identical at every shard count.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithAffinity replaces the static round-robin thread placement with
// the conflict-sketch affinity policy (sched.Affinity): workers are
// periodically rebound toward the shard their aborts concentrate in.
func WithAffinity(on bool) Option {
	return func(c *config) { c.affinity = on }
}

// WithPaddedLockTable strides lock pairs to one per cache line
// (locktable.Config.Padded): 4x the table memory for zero false
// sharing between adjacent pairs.
func WithPaddedLockTable(on bool) Option {
	return func(c *config) { c.padded = on }
}

// WithClock selects the commit-clock strategy (internal/clock). The
// default is the GV4 fetch-and-add clock.
func WithClock(src clock.Source) Option {
	return func(c *config) { c.clk = src }
}

// WithCM selects the contention-management policy (internal/cm). The
// default is SwissTM's two-phase greedy manager; nil keeps it.
func WithCM(pol cm.Policy) Option {
	return func(c *config) { c.pol = pol }
}

// WithMultiVersion retains the last k displaced committed versions per
// word (txlog.VersionedStore) and enables the wait-free read path for
// transactions run through AtomicRO. k <= 0 disables multi-versioning
// (the default).
func WithMultiVersion(k int) Option {
	return func(c *config) { c.mvDepth = k }
}

// WithTrace arms flight-recorder tracing: every Worker records its
// transactional events into its own txtrace ring registered with rec.
// nil (the default) keeps the no-op tracer and the zero-alloc hot path.
func WithTrace(rec *txtrace.Recorder) Option {
	return func(c *config) { c.trace = rec }
}

// WithMode configures the execution-mode ladder (internal/mode): each
// Worker owns a controller that, under mode.Adaptive, falls back from
// speculation to the runtime's serialized gate when the configured
// contention thresholds trip, and recovers when the storm passes. The
// default (mode.Speculative) disarms the ladder entirely.
func WithMode(cfg mode.Config) Option {
	return func(c *config) { c.mode = cfg }
}

// Runtime is one SwissTM instance: a word store, an allocator, a lock
// table, the global commit clock and a contention manager. Independent
// Runtimes are fully isolated from each other.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator
	locks *locktable.Table

	clk clock.Source
	cm  cm.Policy

	// mv, when non-nil, is the multi-version word store declared
	// read-only transactions read from without validating.
	mv *txlog.VersionedStore

	// trace, when non-nil, is the flight recorder Workers register
	// their event rings with (WithTrace).
	trace *txtrace.Recorder

	// modeCfg is the filled ladder configuration Workers build their
	// controllers from; gate is the serialized-fallback lock and hub
	// the Retry/Wait registry, both runtime-global.
	modeCfg mode.Config
	gate    mode.Gate
	hub     *mode.WaitHub

	// placement maps workers to home lock-table shards; workers offer
	// it their conflict-sketch windows at commit boundaries.
	placement sched.Placement

	// workerIDs hands each Worker a placement identity at creation.
	workerIDs atomic.Int32

	// stats aggregates the shards merged by Worker.Close (SNIPPETS-style
	// per-thread stats: workers accumulate unshared, merge at exit).
	stats txstats.Aggregate[Stats, *Stats]

	// workerPool backs the descriptor-per-call compatibility entry point
	// (*Runtime).Atomic with reusable Workers.
	workerPool sync.Pool
}

// New creates a SwissTM runtime.
func New(opts ...Option) *Runtime {
	c := config{lockTableBits: DefaultLockTableBits}
	for _, o := range opts {
		o(&c)
	}
	if c.clk == nil {
		c.clk = clock.New(clock.KindGV4)
	}
	if c.pol == nil {
		c.pol = cm.New(cm.KindGreedy)
	}
	st := mem.NewStore()
	rt := &Runtime{
		store: st,
		alloc: mem.NewAllocator(st),
		locks: locktable.New(locktable.Config{
			Bits:   c.lockTableBits,
			Shards: c.shards,
			Padded: c.padded,
		}),
		clk:     c.clk,
		cm:      c.pol,
		trace:   c.trace,
		modeCfg: c.mode.Fill(),
		hub:     mode.NewWaitHub(),
	}
	if c.affinity {
		rt.placement = sched.NewAffinity(rt.locks.Shards())
	} else {
		rt.placement = sched.NewRoundRobin(rt.locks.Shards())
	}
	if c.mvDepth > 0 {
		rt.mv = txlog.NewVersionedStore(c.mvDepth, txlog.DefaultVersionedStoreBits)
	}
	if rt.trace != nil {
		// The opacity checker recomputes lock-table slots and gates its
		// stamp-uniqueness checks on the clock strategy; the dump's
		// metadata section is where it learns both.
		rt.trace.SetMeta("stm.lockbits", strconv.Itoa(c.lockTableBits))
		rt.trace.SetMeta("stm.clock", rt.clk.Name())
		rt.trace.SetMeta("stm.exclusive", strconv.FormatBool(rt.clk.Exclusive()))
		rt.trace.SetMeta("stm.mvdepth", strconv.Itoa(c.mvDepth))
	}
	return rt
}

// Shards reports the lock table's shard count.
func (rt *Runtime) Shards() int { return rt.locks.Shards() }

// PlacementName reports the thread-placement policy in use.
func (rt *Runtime) PlacementName() string { return rt.placement.Name() }

// MVDepth reports the retained version depth (0 when multi-versioning
// is off).
func (rt *Runtime) MVDepth() int {
	if rt.mv == nil {
		return 0
	}
	return rt.mv.K()
}

// CommitTS exposes the current global commit timestamp (for tests).
func (rt *Runtime) CommitTS() uint64 { return rt.clk.Now() }

// ClockName reports the commit-clock strategy this runtime uses.
func (rt *Runtime) ClockName() string { return rt.clk.Name() }

// CMName reports the contention-management policy this runtime uses.
func (rt *Runtime) CMName() string { return rt.cm.Name() }

// Allocator exposes the runtime's allocator for non-transactional setup
// code (building initial data structures before threads start).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

// Direct returns a non-transactional tm.Tx for single-threaded setup,
// before any transaction runs.
func (rt *Runtime) Direct() mem.Direct {
	return mem.Direct{Mem: rt.store, Al: rt.alloc}
}

// StoreWordRaw writes a word non-transactionally. It must only be used
// during single-threaded setup, before transactions run.
func (rt *Runtime) StoreWordRaw(a tm.Addr, v uint64) { rt.store.StoreWord(a, v) }

// LoadWordRaw reads a word non-transactionally (setup/verification only).
func (rt *Runtime) LoadWordRaw(a tm.Addr) uint64 { return rt.store.LoadWord(a) }

// Stats accumulates per-worker execution statistics across Atomic calls.
// Work is in abstract work units (one unit ≈ one TM operation or one
// validation step, aborted attempts included); the benchmark harness
// feeds it into the virtual-time model described in DESIGN.md §3.
type Stats struct {
	Commits uint64
	Aborts  uint64
	Work    uint64
	// SnapshotExtensions counts successful valid-ts extensions: how
	// often a read ran past the snapshot and the read log revalidated
	// forward instead of aborting. Pre-publishing clock strategies
	// (deferred, sharded) trade commit-path contention for these.
	SnapshotExtensions uint64
	// ClockCASRetries counts failed CASes inside commit-clock
	// operations (internal/clock.Probe), the direct measure of clock
	// contention under each strategy.
	ClockCASRetries uint64
	// CMAbortsSelf counts lost write/write conflicts (one AbortSelf
	// decision each); CMAbortsOwner counts AbortOwner decisions, one
	// per round spent waiting for a signalled owner to concede;
	// BackoffSpins counts the scheduler yields the policy charged
	// between retries (internal/cm.Probe).
	CMAbortsSelf  uint64
	CMAbortsOwner uint64
	BackoffSpins  uint64
	// EntryReclaims counts write-lock entries served from the write
	// log's pool instead of the heap. The baseline recycles entries
	// unconditionally at attempt boundaries (no quiescence needed:
	// validation here is version-based, not pointer-based), so
	// HorizonStalls — requests blocked on TLSTM's reclamation horizon —
	// is always 0; the field exists so reclamation sweeps report a
	// uniform column across runtimes.
	EntryReclaims uint64
	HorizonStalls uint64
	// MVReads counts reads served on the multi-version wait-free path
	// (current version within snapshot, or a retained version covering
	// it); MVMisses counts read-only transactions that fell off that
	// path — a version ring overrun or an undeclared write — and re-ran
	// validated.
	MVReads  uint64
	MVMisses uint64
	// ReadSetSizes and WriteSetSizes histogram the per-committed-
	// transaction set sizes (logged reads / locked pairs); read-only
	// transactions on the multi-version path log nothing, so they land
	// in bucket 0.
	ReadSetSizes  txstats.Hist
	WriteSetSizes txstats.Hist
	// RestartLatency histograms attempt-start → abort deltas in
	// nanoseconds (one observation per aborted attempt); CommitLatency
	// histograms attempt-start → commit deltas for the final,
	// successful attempt. Attempts histograms attempts per committed
	// transaction (1 = committed first try).
	RestartLatency txstats.Hist
	CommitLatency  txstats.Hist
	Attempts       txstats.Hist
	// ConflictSketch counts aborts and CM defeats per lock-table shard
	// — the feedback signal the affinity placement policy consumes.
	// CrossShardConflicts counts the subset that landed outside the
	// worker's home shard at the time; Remaps counts placement rebinds
	// (home-shard changes) the worker underwent.
	ConflictSketch      txstats.Sketch
	CrossShardConflicts uint64
	Remaps              uint64
	// ModeFallbacks counts speculative→serialized ladder transitions
	// (mid-transaction escalations included) and ModeRecoveries the
	// returns to speculation; RetryWakes counts Retry parks woken by a
	// conflicting commit's doorbell.
	ModeFallbacks  uint64
	ModeRecoveries uint64
	RetryWakes     uint64
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Work += o.Work
	s.SnapshotExtensions += o.SnapshotExtensions
	s.ClockCASRetries += o.ClockCASRetries
	s.CMAbortsSelf += o.CMAbortsSelf
	s.CMAbortsOwner += o.CMAbortsOwner
	s.BackoffSpins += o.BackoffSpins
	s.EntryReclaims += o.EntryReclaims
	s.HorizonStalls += o.HorizonStalls
	s.MVReads += o.MVReads
	s.MVMisses += o.MVMisses
	s.ReadSetSizes.Merge(o.ReadSetSizes)
	s.WriteSetSizes.Merge(o.WriteSetSizes)
	s.RestartLatency.Merge(o.RestartLatency)
	s.CommitLatency.Merge(o.CommitLatency)
	s.Attempts.Merge(o.Attempts)
	s.ConflictSketch.Merge(o.ConflictSketch)
	s.CrossShardConflicts += o.CrossShardConflicts
	s.Remaps += o.Remaps
	s.ModeFallbacks += o.ModeFallbacks
	s.ModeRecoveries += o.ModeRecoveries
	s.RetryWakes += o.RetryWakes
}

// Stats returns the runtime-global aggregate: the sum of every shard
// merged so far by Worker.Close.
func (rt *Runtime) Stats() Stats { return rt.stats.Snapshot() }

// rollbackSignal is the panic value used internally to unwind a
// transaction attempt back to the retry loop in Atomic. It never escapes
// the package: Atomic recovers it. (Panic/recover is the conventional
// mechanism for non-local abort in Go STMs; user code simply re-runs.)
type rollbackSignal struct{}

// yieldQuantum is the forced-interleaving grain: a transaction yields
// the processor every yieldQuantum work units. On the paper's hardware
// transactions overlap in real time; on a single-CPU simulator a
// transaction would otherwise run to completion in one scheduler slice
// and inter-thread contention would never materialize. Waiting on
// another thread's lock is charged one quantum per spin iteration — the
// lock owner progresses by about one quantum per scheduler round.
const yieldQuantum = 64

// txStartCost models transaction setup (descriptor and log
// initialization, timestamp read) in work units; TLSTM charges the same
// constant per task, which is what bounds its achievable task-split
// speedup (paper Fig. 1a tops out well below the task count).
const txStartCost = 24

// validationStride discounts validation steps: one work unit per this
// many read-log entries checked. A validation step is a version
// compare — roughly an order of magnitude cheaper than an instrumented
// transactional load.
const validationStride = 8

// tick charges work units and enforces the interleaving grain.
func (tx *Tx) tick(units uint64) {
	tx.work += units
	if tx.work%yieldQuantum < units {
		runtime.Gosched()
	}
}

// Tx is one transaction descriptor. It implements tm.Tx. A Tx is only
// valid inside the function passed to Atomic and must not be retained
// or shared across goroutines.
//
// The descriptor is embedded in its Worker and reused across attempts
// and transactions: logs and scratch buffers keep their backing
// storage, retired write-lock entries are recycled through the write
// log's pool, and the owner header and abort/greedy slots are reset in
// place. A consequence of reuse is that a contention manager holding a
// stale entry pointer may signal our abort slot just after a new
// attempt begins; that costs one spurious (harmless) retry and is the
// price of an allocation-free hot path.
type Tx struct {
	rt      *Runtime
	validTS uint64

	// owner is the stable cross-thread header installed in this
	// descriptor's write-lock entries. Its pointer fields are wired to
	// the atomics below once, at Worker creation.
	owner   locktable.OwnerRef
	abortTx atomic.Bool
	greedTS atomic.Uint64 // greedy CM slot, persists across retries

	readLog  txlog.ReadLog
	writeLog txlog.WriteLog
	scratch  txlog.CommitScratch

	allocs []tm.Addr // fresh blocks to release on abort
	frees  []tm.Addr // deferred frees to apply on commit

	work    uint64 // work units of the current transaction (all attempts)
	aborts  uint64
	extends uint64 // successful snapshot extensions (all attempts)

	// home is the worker's current home lock-table shard (refreshed
	// from the placement policy at remap boundaries); sketch and
	// crossShard attribute this transaction's aborts and CM defeats to
	// shards, relative to home. All per-transaction, folded into the
	// stats shard at commit.
	home       int32
	sketch     txstats.Sketch
	crossShard uint64

	// ro marks a transaction declared read-only (AtomicRO); mvOn is
	// true while the current transaction runs the multi-version
	// wait-free read path. A miss clears mvOn for the rest of the
	// transaction and re-runs it validated — never an error.
	ro       bool
	mvOn     bool
	mvReads  uint64
	mvMisses uint64

	// cmSelf is the transaction's contention-management identity: its
	// situational fields are refreshed in place before every conflict
	// resolution, so the conflict path never allocates. cmProbe holds
	// the per-descriptor decision counters and backoff state.
	cmSelf  cm.Self
	cmProbe cm.Probe

	// clkProbe accumulates clock CAS retries (and pins this descriptor
	// to a shard under the sharded strategy); folded into the stats
	// shard per transaction.
	clkProbe clock.Probe

	// tr is this descriptor's flight recorder (txtrace.Nop by default);
	// traced caches tr.Enabled() so the disabled hot path costs one
	// predicted branch instead of an interface call per operation.
	tr     txtrace.Tracer
	traced bool

	// inSerial marks a transaction running under the runtime's
	// serialized-fallback gate: it is exempt from the gate-pending
	// yield in the conflict wait loop (it IS the entrant).
	inSerial bool
	// gateYield asks the retry loop for one SpinInit backoff: the
	// attempt aborted itself to let a gate entrant pass.
	gateYield bool
	// waiter/parkPending/parkFP implement Retry: the attempt that
	// called Retry subscribed the waiter and unwinds; the retry loop
	// parks it before re-running.
	waiter      mode.Waiter
	parkPending bool
	parkFP      uint64
	retryAborts uint64
}

// completedZero is a shared always-zero counter: the baseline has no
// task pipeline, so OwnerRef progress is constant.
var completedZero atomic.Int64

// Worker is one execution context — the software analogue of the
// per-thread transaction descriptor every serious TM implementation
// keeps. It owns a reusable Tx and an unshared statistics shard, so at
// steady state Atomic neither allocates nor touches shared stats state.
// A Worker must be used by one goroutine at a time.
type Worker struct {
	rt    *Runtime
	tx    Tx
	stats Stats // unshared shard; merged into rt.stats by Close

	// ctl is the worker's execution-mode controller (single-owner, no
	// atomics): disarmed under mode.Speculative, it costs two branches
	// per transaction.
	ctl mode.Controller

	// id is the worker's placement identity; remapWindow accumulates
	// the conflict sketch since the last Rebalance offer, made every
	// remapPeriod transactions.
	id           int
	remapWindow  txstats.Sketch
	txSinceRemap int
}

// remapPeriod is how many transactions a worker commits between
// consecutive Rebalance offers to the placement policy. Large enough
// that the policy sees a meaningful sketch window, small enough that a
// shifted workload re-homes within tens of microseconds of work.
const remapPeriod = 64

// NewWorker creates a worker context for this runtime.
func (rt *Runtime) NewWorker() *Worker {
	w := &Worker{rt: rt, id: int(rt.workerIDs.Add(1) - 1)}
	w.ctl = mode.NewController(rt.modeCfg)
	w.tx.rt = rt
	w.tx.home = int32(rt.placement.Home(w.id))
	w.tx.owner = locktable.OwnerRef{
		ThreadID:      -1,
		CompletedTask: &completedZero,
		AbortInternal: &w.tx.abortTx, // no intra-thread signals in the baseline
	}
	// The baseline has no task pipeline and one transaction at a time
	// per descriptor, so the per-transaction slots are bound once.
	w.tx.owner.BindTx(0, &w.tx.abortTx, &w.tx.greedTS)
	w.tx.cmSelf.Timestamp = &w.tx.greedTS
	w.tx.cmSelf.Probe = &w.tx.cmProbe
	w.tx.tr = txtrace.Nop
	if rt.trace != nil {
		w.tx.tr = rt.trace.NewRing("stm-worker")
		w.tx.traced = true
	}
	return w
}

// Atomic runs fn as one transaction, retrying on conflict until it
// commits, and accumulates commit/abort counts and work units into the
// worker's private stats shard. fn must be re-executable: it may run
// several times and must not perform external side effects.
func (w *Worker) Atomic(fn func(tx *Tx)) {
	w.atomic(&w.stats, fn)
}

// AtomicRO runs fn as one transaction declared read-only. With
// multi-versioning enabled (WithMultiVersion), the transaction reads
// the newest version with timestamp <= its snapshot, appends nothing to
// the read log, skips validation and extension entirely, and commits
// unconditionally; a reader overrun by more than K writers falls back
// to the validated path. If fn stores after all, the transaction
// silently restarts in validated read-write mode — declaring wrongly
// costs performance, never correctness.
func (w *Worker) AtomicRO(fn func(tx *Tx)) {
	w.tx.ro = true
	w.atomic(&w.stats, fn)
	w.tx.ro = false
}

// Stats returns a snapshot of the worker's unshared shard.
func (w *Worker) Stats() Stats { return w.stats }

// Close merges the worker's shard into the runtime-global aggregate and
// zeroes the shard. The worker stays usable (Close acts as a flush).
func (w *Worker) Close() {
	w.rt.stats.Merge(w.stats)
	w.stats = Stats{}
}

// Atomic runs fn as one transaction, retrying on conflict until it
// commits. If st is non-nil, commit/abort counts and work units are
// accumulated into it. fn must be re-executable: it may run several
// times and must not perform external side effects.
//
// This entry point borrows a pooled Worker per call; code with a
// natural per-thread structure should create Workers directly.
func (rt *Runtime) Atomic(st *Stats, fn func(tx *Tx)) {
	w, _ := rt.workerPool.Get().(*Worker)
	if w == nil {
		w = rt.NewWorker()
	}
	w.atomic(st, fn)
	rt.workerPool.Put(w)
}

// AtomicRO is Atomic with the transaction declared read-only (see
// Worker.AtomicRO).
func (rt *Runtime) AtomicRO(st *Stats, fn func(tx *Tx)) {
	w, _ := rt.workerPool.Get().(*Worker)
	if w == nil {
		w = rt.NewWorker()
	}
	w.tx.ro = true
	w.atomic(st, fn)
	w.tx.ro = false
	rt.workerPool.Put(w)
}

// atomic is the retry loop shared by both entry points.
func (w *Worker) atomic(st *Stats, fn func(tx *Tx)) {
	tx := &w.tx
	tx.greedTS.Store(0)
	tx.cmSelf.Defeats = 0
	tx.work = 0
	tx.aborts = 0
	tx.retryAborts = 0
	tx.extends = 0
	tx.sketch = txstats.Sketch{}
	tx.crossShard = 0
	tx.mvOn = tx.ro && tx.rt.mv != nil
	tx.mvReads = 0
	tx.mvMisses = 0
	if tx.traced {
		tx.tr.Record(txtrace.KindTxBegin, tx.rt.clk.Now(), 0, 0)
	}
	// Ladder: a serialized transaction takes the runtime gate before
	// its first attempt (announcing itself so speculative wait loops
	// yield) and runs the unchanged STM protocol under it — opacity by
	// construction, serialization only against other fallback entrants.
	serial := w.ctl.Serial()
	if serial {
		w.enterGate()
	}
	var lastAttempt time.Time
	for {
		if tx.parkPending {
			w.parkRetry(st, serial)
		}
		lastAttempt = time.Now()
		tx.beginAttempt()
		if tx.traced {
			tx.tr.Record(txtrace.KindAttemptStart, tx.validTS, tx.aborts+1, 0)
		}
		if tx.attempt(fn) {
			break
		}
		if st != nil {
			st.RestartLatency.Observe(int(time.Since(lastAttempt)))
		}
		tx.aborts++
		if tx.parkPending {
			// A Retry unwound this attempt; it parks at the top of the
			// loop — no contention backoff, no escalation pressure.
			tx.retryAborts++
			continue
		}
		if !serial && w.ctl.Escalate(int(tx.aborts-tx.retryAborts)) {
			// Attempt budget exhausted mid-transaction (TK_NUM_TRIES):
			// move this transaction under the gate and retry there.
			serial = true
			if st != nil {
				st.ModeFallbacks++
			}
			if tx.traced {
				tx.tr.Record(txtrace.KindModeShift, tx.rt.clk.Now(),
					uint64(mode.StateSerial), uint32(mode.StateSpec))
			}
			w.enterGate()
			continue
		}
		if tx.gateYield {
			// We aborted to let a gate entrant pass: back off SpinInit
			// yields so the serialized cohort gets cycles first.
			tx.gateYield = false
			for i := 0; i < tx.rt.modeCfg.SpinInit; i++ {
				runtime.Gosched()
			}
		}
		// Back off per policy so the conflict window is not re-entered
		// immediately (and, on a single CPU, so the lock owner we lost
		// to gets scheduled before we re-acquire).
		tx.cmSelf.Aborts = tx.aborts
		for i, n := 0, cm.AbortBackoff(tx.rt.cm, &tx.cmSelf); i < n; i++ {
			runtime.Gosched()
		}
	}
	if serial {
		w.exitGate()
	}
	if fell, rec := w.ctl.OnOutcome(tx.aborts-tx.retryAborts, tx.cmSelf.Defeats > 0); fell || rec {
		if st != nil {
			if fell {
				st.ModeFallbacks++
			} else {
				st.ModeRecoveries++
			}
		}
		if tx.traced {
			tx.tr.Record(txtrace.KindModeShift, tx.rt.clk.Now(),
				uint64(w.ctl.State()), uint32(1-w.ctl.State()))
		}
	}
	cm.Committed(tx.rt.cm, &tx.cmSelf)
	cmSelf, cmOwner, spins := tx.cmProbe.TakeCounts()
	reclaims, stalls := tx.writeLog.TakeReclaimCounts()
	if st != nil {
		st.Commits++
		st.Aborts += tx.aborts
		st.Work += tx.work
		st.SnapshotExtensions += tx.extends
		st.ClockCASRetries += tx.clkProbe.TakeRetries()
		st.CMAbortsSelf += cmSelf
		st.CMAbortsOwner += cmOwner
		st.BackoffSpins += spins
		st.EntryReclaims += reclaims
		st.HorizonStalls += stalls
		st.MVReads += tx.mvReads
		st.MVMisses += tx.mvMisses
		st.ReadSetSizes.Observe(tx.readLog.Len())
		st.WriteSetSizes.Observe(tx.writeLog.Len())
		st.CommitLatency.Observe(int(time.Since(lastAttempt)))
		st.Attempts.Observe(int(tx.aborts) + 1)
		st.ConflictSketch.Merge(tx.sketch)
		st.CrossShardConflicts += tx.crossShard
	}
	w.maybeRemap(st)
}

// enterGate moves the worker's transaction under the serialized
// fallback gate. The baseline has no speculative pipeline of its own to
// drain — the in-flight attempt (if any) has already unwound — so
// announcing and locking is the whole entry protocol.
func (w *Worker) enterGate() {
	w.rt.gate.Enter()
	w.tx.inSerial = true
}

func (w *Worker) exitGate() {
	w.tx.inSerial = false
	w.rt.gate.Exit()
}

// parkRetry blocks the worker on its Retry doorbell until a
// conflicting commit rings it. A serialized transaction releases the
// gate across the park (parking while holding it would block every
// fallback entrant, possibly including the very producer it waits for)
// and re-enters afterwards.
func (w *Worker) parkRetry(st *Stats, serial bool) {
	tx := &w.tx
	tx.parkPending = false
	if tx.traced {
		tx.tr.Record(txtrace.KindRetryPark, tx.rt.clk.Now(), tx.parkFP, 0)
	}
	if serial {
		w.exitGate()
	}
	tx.waiter.Park()
	tx.rt.hub.Unsubscribe(&tx.waiter)
	if serial {
		w.enterGate()
	}
	if st != nil {
		st.RetryWakes++
	}
	if tx.traced {
		tx.tr.Record(txtrace.KindRetryPark, tx.rt.clk.Now(), tx.parkFP, 1)
	}
}

// maybeRemap is the commit-epilogue placement step: every remapPeriod
// transactions the worker offers its conflict-sketch window to the
// placement policy and refreshes its home shard. Runs on the worker's
// own goroutine — the "periodic controller" is decentralized, like the
// sharded clock's Observe reconciliation.
func (w *Worker) maybeRemap(st *Stats) {
	w.remapWindow.Merge(w.tx.sketch)
	w.txSinceRemap++
	if w.txSinceRemap < remapPeriod {
		return
	}
	w.txSinceRemap = 0
	moved := w.rt.placement.Rebalance(w.id, w.remapWindow)
	w.remapWindow = txstats.Sketch{}
	if moved {
		old := w.tx.home
		w.tx.home = int32(w.rt.placement.Home(w.id))
		if st != nil {
			st.Remaps++
		}
		if w.tx.traced {
			w.tx.tr.Record(txtrace.KindRemap, w.rt.clk.Now(),
				uint64(w.tx.home), uint32(old))
		}
	}
}

// noteConflict attributes one abort or CM defeat at address a to its
// lock-table shard (cold path: runs only when an attempt dies).
func (tx *Tx) noteConflict(a tm.Addr) {
	shard := tx.rt.locks.ShardOf(a)
	tx.sketch.Observe(shard)
	if int32(shard) != tx.home {
		tx.crossShard++
	}
}

// noteConflictPair is noteConflict for sites that hold only the *Pair
// recorded in a read-log entry (commit validation).
func (tx *Tx) noteConflictPair(p *locktable.Pair) {
	shard := tx.rt.locks.ShardOfPair(p)
	tx.sketch.Observe(shard)
	if int32(shard) != tx.home {
		tx.crossShard++
	}
}

// beginAttempt resets the descriptor for one attempt. Entries retired
// by the previous attempt (or previous transaction) are detached from
// the lock table by then, so they are recycled into the entry pool.
func (tx *Tx) beginAttempt() {
	tx.abortTx.Store(false)
	tx.validTS = tx.rt.clk.Now()
	tx.work += txStartCost
	tx.readLog.Reset()
	tx.writeLog.Recycle()
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
}

// attempt runs fn once and tries to commit; it reports success and
// converts rollbackSignal panics into a false return.
func (tx *Tx) attempt(fn func(tx *Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(rollbackSignal); !is {
				// A genuine user panic: release our locks and undo
				// speculative allocation so the rest of the system stays
				// live, then propagate.
				tx.releaseWrites()
				for _, a := range tx.allocs {
					tx.rt.alloc.Free(a)
				}
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	tx.commit()
	return true
}

// rollback releases every lock and undoes speculative allocation, then
// unwinds to the retry loop.
func (tx *Tx) rollback() {
	tx.releaseWrites()
	for _, a := range tx.allocs {
		tx.rt.alloc.Free(a)
	}
	panic(rollbackSignal{})
}

// abort records the rollback's reason on the trace and unwinds.
func (tx *Tx) abort(reason uint32) {
	if tx.traced {
		tx.tr.Record(txtrace.KindAbort, tx.validTS, 0, reason)
	}
	tx.rollback()
}

func (tx *Tx) releaseWrites() {
	for _, e := range tx.writeLog.Entries() {
		// The baseline never stacks entries: eager W/W locking admits
		// one writer per pair, so our entry is the head with no Prev.
		e.Pair.W.CompareAndSwap(e, nil)
	}
}

// checkSignals aborts the attempt if another transaction's contention
// manager asked us to.
func (tx *Tx) checkSignals() {
	if tx.abortTx.Load() {
		tx.abort(txtrace.AbortSignal)
	}
}

// Load implements tm.Tx (paper §3.1; TLSTM Alg. 1 line 16 is this path).
func (tx *Tx) Load(a tm.Addr) uint64 {
	if tx.mvOn {
		return tx.loadMV(a)
	}
	tx.tick(1)
	p := tx.rt.locks.For(a)
	if e := p.W.Load(); e != nil && e.Owner == &tx.owner {
		if v, hit := e.Lookup(a); hit {
			return v
		}
		// Lock-pair collision: we own the pair but never wrote this
		// address; its committed value is still in memory.
	}
	return tx.loadCommitted(p, a)
}

func (tx *Tx) loadCommitted(p *locktable.Pair, a tm.Addr) uint64 {
	for {
		tx.checkSignals()
		v1 := p.R.Load()
		if v1 == locktable.Locked {
			// A committer is publishing this location; wait it out.
			runtime.Gosched()
			continue
		}
		val := tx.rt.store.LoadWord(a)
		if p.R.Load() != v1 {
			continue // torn read: version moved underneath us
		}
		if v1 > tx.validTS && !tx.extendTo(v1) {
			tx.noteConflict(a)
			tx.abort(txtrace.AbortExtend)
		}
		if v1 > tx.validTS {
			continue // extended, but not far enough; re-read
		}
		tx.readLog.Append(p, v1, nil)
		if tx.traced {
			tx.tr.Record(txtrace.KindRead, v1, uint64(a), 0)
		}
		return val
	}
}

// loadMV is the wait-free read path of a declared read-only transaction
// under multi-versioning: serve the newest version with timestamp <=
// the frozen snapshot — from memory when the current version qualifies,
// else from the version ring — logging nothing and never validating. A
// ring overrun (more than K commits displaced the version the snapshot
// needs) re-runs the whole transaction on the validated path: the
// snapshot cannot be extended in place, because the reads taken so far
// were unlogged and could not be revalidated forward.
func (tx *Tx) loadMV(a tm.Addr) uint64 {
	tx.tick(1)
	p := tx.rt.locks.For(a)
	for {
		v1 := p.R.Load()
		if v1 != locktable.Locked && v1 <= tx.validTS {
			val := tx.rt.store.LoadWord(a)
			if p.R.Load() == v1 {
				tx.mvReads++
				if tx.traced {
					tx.tr.Record(txtrace.KindRead, v1, uint64(a), 1)
				}
				return val
			}
			continue // torn read: version moved underneath us
		}
		if val, from, ok := tx.rt.mv.ReadAt(a, tx.validTS); ok {
			tx.mvReads++
			if tx.traced {
				// Clock carries the served version's birth stamp, not the
				// snapshot: the opacity checker needs the observed version.
				tx.tr.Record(txtrace.KindRead, from, uint64(a), 1)
			}
			return val
		}
		if v1 == locktable.Locked {
			// A committer is publishing this pair; its displaced version
			// lands in the ring, so wait out the brief lock and retry.
			runtime.Gosched()
			continue
		}
		tx.mvMisses++
		tx.mvOn = false
		tx.abort(txtrace.AbortSpec)
	}
}

// extend implements lazy snapshot extension: revalidate the read log at
// the current commit timestamp and advance valid-ts on success.
func (tx *Tx) extend() bool { return tx.extendTo(0) }

// extendTo is extend with a witnessed stamp: the clock is first asked
// to cover `witness` (pre-publishing strategies advance on Observe —
// without it a deferred or sharded clock would never catch up to the
// stamp that sent us here and the read would livelock).
func (tx *Tx) extendTo(witness uint64) bool {
	ts := tx.rt.clk.Observe(witness, &tx.clkProbe)
	for i, re := range tx.readLog.Entries() {
		if i%validationStride == 0 {
			tx.work++
		}
		cur := re.Pair.R.Load()
		if cur == re.Version {
			continue
		}
		// No exemption for pairs whose w-lock we hold: owning the
		// w-lock freezes the r-lock from acquisition onward, but the
		// version may have moved between our read and our acquisition
		// (another transaction committed the pair while it was free).
		// Skipping the check here let exactly that zombie extend its
		// snapshot past the conflicting commit and keep running on a
		// mixed read set until commit-time validation — the opacity
		// violation the trace checker flagged under high contention.
		if tx.traced {
			tx.tr.Record(txtrace.KindExtend, ts, witness, 0)
		}
		return false
	}
	if ts > tx.validTS {
		tx.extends++
		if tx.traced {
			tx.tr.Record(txtrace.KindExtend, ts, witness, 1)
		}
	}
	tx.validTS = ts
	return true
}

// Store implements tm.Tx: eager w-lock acquisition with redo logging.
func (tx *Tx) Store(a tm.Addr, v uint64) {
	if tx.mvOn {
		// A store in a declared read-only transaction: the earlier
		// multi-version reads were unlogged at a frozen snapshot, so the
		// attempt cannot be upgraded in place — re-run it on the
		// validated read-write path.
		tx.mvOn = false
		tx.abort(txtrace.AbortSpec)
	}
	tx.tick(2)
	p := tx.rt.locks.For(a)
	waited := 0
	for {
		tx.checkSignals()
		e := p.W.Load()
		if e != nil {
			if e.Owner == &tx.owner {
				e.Update(a, v)
				return
			}
			tx.cmSelf.Point = cm.PointEncounter
			tx.cmSelf.Writes = tx.writeLog.Len()
			tx.cmSelf.Waited = waited
			dec := cm.Resolve(tx.rt.cm, &tx.cmSelf, e.Owner)
			if tx.traced {
				tx.tr.Record(txtrace.KindCMDecision, tx.validTS, uint64(a),
					txtrace.CMAux(int(dec), int(cm.PointEncounter)))
			}
			switch dec {
			case cm.AbortSelf:
				tx.cmSelf.Defeats++
				tx.noteConflict(a)
				tx.abort(txtrace.AbortCM)
			case cm.AbortOwner:
				e.Owner.AbortTx.Load().Store(true)
			}
			if !tx.inSerial && tx.rt.gate.Pending() {
				// A serialized entrant holds or awaits the gate: riding
				// this conflict out could deadlock against it (the owner
				// may be parked behind the same gate). Yield instead —
				// the retry loop charges SpinInit backoff first.
				tx.cmSelf.Defeats++
				tx.gateYield = true
				tx.noteConflict(a)
				tx.abort(txtrace.AbortCM)
			}
			// AbortOwner and Wait both ride the conflict out for a
			// round; waiting costs real parallel time (the owner
			// progresses about one quantum per scheduler round).
			waited++
			tx.work += yieldQuantum
			runtime.Gosched()
			continue
		}
		ne := tx.writeLog.NewEntry(&tx.owner, 0, p, a, v)
		if p.W.CompareAndSwap(nil, ne) {
			tx.writeLog.Append(ne)
			break
		}
		tx.writeLog.Release(ne) // CAS lost; recycle the unused entry
	}
	if tx.traced {
		tx.tr.Record(txtrace.KindWrite, tx.validTS, uint64(a), 0)
	}
	// Mirror of TLSTM Alg. 2 line 52: if the location moved past our
	// snapshot, extend or die.
	if ver := p.R.Load(); ver != locktable.Locked && ver > tx.validTS && !tx.extendTo(ver) {
		tx.noteConflict(a)
		tx.abort(txtrace.AbortExtend)
	}
}

// Retry is the transactional cond-var wait (aahtm TM_COND_VARS): a
// transaction whose predicate over transactional reads is not yet
// satisfied calls Retry to abandon the attempt and block until a
// conflicting commit — one whose write set intersects this attempt's
// read set — publishes, then re-runs from the top. fn observes a new
// snapshot on each wake, so the predicate is simply re-evaluated.
//
// The lost-wakeup guard: the waiter subscribes its read-set
// fingerprint first, then re-validates the read log. A commit that
// published before the subscription is caught by the validation (no
// park); one that publishes after it finds the waiter registered and
// rings its doorbell. Retry never parks on an empty or already-stale
// read set — those cases restart immediately.
func (tx *Tx) Retry() {
	if tx.mvOn {
		// Multi-version reads are unlogged: there is nothing to
		// fingerprint or validate. Re-run on the validated path, where
		// the next Retry can park.
		tx.mvOn = false
		tx.abort(txtrace.AbortRetry)
	}
	var fp mode.Fingerprint
	for _, re := range tx.readLog.Entries() {
		fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(re.Pair)))
	}
	if fp != 0 {
		hub := tx.rt.hub
		hub.Subscribe(&tx.waiter, fp)
		valid := true
		for _, re := range tx.readLog.Entries() {
			if re.Pair.R.Load() != re.Version {
				valid = false
				break
			}
		}
		if valid {
			tx.parkPending = true
			tx.parkFP = uint64(fp)
		} else {
			hub.Unsubscribe(&tx.waiter)
		}
	}
	tx.abort(txtrace.AbortRetry)
}

// Alloc implements tm.Tx: allocation is undone if the attempt aborts.
func (tx *Tx) Alloc(n int) tm.Addr {
	tx.work++
	a := tx.rt.alloc.Alloc(n)
	tx.allocs = append(tx.allocs, a)
	return a
}

// Free implements tm.Tx: the release is deferred to commit.
func (tx *Tx) Free(a tm.Addr) {
	tx.frees = append(tx.frees, a)
}

// commit validates and publishes the transaction (paper §3.1).
func (tx *Tx) commit() {
	if tx.writeLog.Len() == 0 {
		// Read-only transactions are consistent by construction at
		// valid-ts; nothing to publish.
		tx.applyFrees()
		if tx.traced {
			tx.tr.Record(txtrace.KindCommit, tx.validTS, 0, 0)
		}
		return
	}
	tx.checkSignals()

	// Phase 1: lock the r-locks of written pairs, remembering the
	// versions we displace so a failed validation can restore them.
	// Eager W/W locking guarantees one entry per pair, so every
	// LockPair is a fresh acquisition.
	tx.scratch.Reset()
	for _, e := range tx.writeLog.Entries() {
		tx.scratch.LockPair(e.Pair)
		tx.work++
	}

	ts := tx.rt.clk.Tick(&tx.clkProbe)

	failed := tx.validateCommit()
	if tx.traced {
		var aux uint32
		if failed == nil {
			aux = 1
		}
		tx.tr.Record(txtrace.KindValidate, ts, uint64(tx.readLog.Len()), aux)
	}
	if failed != nil {
		tx.scratch.Restore()
		tx.noteConflictPair(failed)
		tx.abort(txtrace.AbortValidation)
	}

	// Feed the multi-version store while memory still holds the values
	// this commit is about to overwrite: each written word's old value
	// was the committed value over [displaced version, ts).
	if mv := tx.rt.mv; mv != nil {
		for _, e := range tx.writeLog.Entries() {
			pre, _ := tx.scratch.Saved(e.Pair)
			for _, w := range e.Words {
				mv.Publish(w.Addr, tx.rt.store.LoadWord(w.Addr), pre, ts)
			}
		}
	}

	// Phase 2: publish values, then release locks with the new version.
	for _, e := range tx.writeLog.Entries() {
		for _, w := range e.Words {
			tx.rt.store.StoreWord(w.Addr, w.Val)
			if tx.traced {
				// Written-word identities, between Validate and Commit:
				// the opacity checker rebuilds per-slot version
				// histories from these.
				tx.tr.Record(txtrace.KindCommitWord, ts, uint64(w.Addr), 0)
			}
			tx.work++
		}
	}
	for _, e := range tx.writeLog.Entries() {
		e.Pair.R.Store(ts)
		e.Pair.W.CompareAndSwap(e, nil)
	}
	// Ring Retry waiters whose read fingerprints intersect this write
	// set. The fast path (no waiters) is one atomic load; the
	// fingerprint is only computed when someone is parked.
	if hub := tx.rt.hub; hub.Active() {
		var fp mode.Fingerprint
		for _, e := range tx.writeLog.Entries() {
			fp = mode.FPAdd(fp, uintptr(unsafe.Pointer(e.Pair)))
		}
		hub.Notify(fp)
	}
	tx.applyFrees()
	if tx.traced {
		tx.tr.Record(txtrace.KindCommit, ts, uint64(tx.writeLog.Len()), 0)
	}
}

// validateCommit re-checks the read log; pairs this commit holds
// r-locked compare against the version they had when we locked them
// (the commit scratch remembers exactly that). It returns the first
// pair that fails validation (for shard attribution), or nil when the
// whole read set is still consistent.
func (tx *Tx) validateCommit() *locktable.Pair {
	for i, re := range tx.readLog.Entries() {
		if i%validationStride == 0 {
			tx.work++
		}
		cur := re.Pair.R.Load()
		if cur == re.Version {
			continue
		}
		if cur == locktable.Locked {
			if pre, ours := tx.scratch.Saved(re.Pair); ours && pre == re.Version {
				continue
			}
		}
		return re.Pair
	}
	return nil
}

func (tx *Tx) applyFrees() {
	for _, a := range tx.frees {
		tx.rt.alloc.Free(a)
	}
}

var _ tm.Tx = (*Tx)(nil)
