// Package stm is a from-scratch Go implementation of SwissTM
// (Dragojević, Guerraoui, Kapałka — PLDI'09), the baseline software
// transactional memory that TLSTM extends (paper §3.1).
//
// Algorithm summary, as described in the paper:
//
//   - a global commit counter (commit-ts) acts as a wall clock,
//     incremented by every non-read-only transaction at commit;
//   - every word maps to an (r-lock, w-lock) pair in a global lock
//     table; writers eagerly acquire the w-lock (pessimistic write/write
//     detection) and buffer writes in a redo log;
//   - reads are optimistic and validated lazily: each transaction keeps
//     a valid-ts timestamp up to which all its reads are known
//     consistent, extending it (by revalidating the read log) whenever
//     it observes a newer version;
//   - at commit, writers lock the r-locks of written locations, take a
//     new commit timestamp, validate the read log once more, publish the
//     buffered values, and release both locks;
//   - write/write conflicts go through a two-phase greedy contention
//     manager.
package stm

import (
	"runtime"
	"sync/atomic"

	"tlstm/internal/cm"
	"tlstm/internal/locktable"
	"tlstm/internal/mem"
	"tlstm/internal/tm"
)

// Option configures a Runtime.
type Option func(*config)

type config struct {
	lockTableBits int
}

// WithLockTableBits sets the lock table to 2^bits pairs.
func WithLockTableBits(bits int) Option {
	return func(c *config) { c.lockTableBits = bits }
}

// Runtime is one SwissTM instance: a word store, an allocator, a lock
// table, the global commit counter and a contention manager. Independent
// Runtimes are fully isolated from each other.
type Runtime struct {
	store *mem.Store
	alloc *mem.Allocator
	locks *locktable.Table

	commitTS atomic.Uint64
	cm       cm.Greedy
}

// New creates a SwissTM runtime.
func New(opts ...Option) *Runtime {
	c := config{lockTableBits: 20}
	for _, o := range opts {
		o(&c)
	}
	st := mem.NewStore()
	return &Runtime{
		store: st,
		alloc: mem.NewAllocator(st),
		locks: locktable.NewTable(c.lockTableBits),
	}
}

// CommitTS exposes the current global commit timestamp (for tests).
func (rt *Runtime) CommitTS() uint64 { return rt.commitTS.Load() }

// Allocator exposes the runtime's allocator for non-transactional setup
// code (building initial data structures before threads start).
func (rt *Runtime) Allocator() *mem.Allocator { return rt.alloc }

// Direct returns a non-transactional tm.Tx for single-threaded setup,
// before any transaction runs.
func (rt *Runtime) Direct() mem.Direct {
	return mem.Direct{Mem: rt.store, Al: rt.alloc}
}

// StoreWordRaw writes a word non-transactionally. It must only be used
// during single-threaded setup, before transactions run.
func (rt *Runtime) StoreWordRaw(a tm.Addr, v uint64) { rt.store.StoreWord(a, v) }

// LoadWordRaw reads a word non-transactionally (setup/verification only).
func (rt *Runtime) LoadWordRaw(a tm.Addr) uint64 { return rt.store.LoadWord(a) }

// Stats accumulates per-worker execution statistics across Atomic calls.
// Work is in abstract work units (one unit ≈ one TM operation or one
// validation step, aborted attempts included); the benchmark harness
// feeds it into the virtual-time model described in DESIGN.md §3.
type Stats struct {
	Commits uint64
	Aborts  uint64
	Work    uint64
}

// Add folds o into s.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Work += o.Work
}

// rollbackSignal is the panic value used internally to unwind a
// transaction attempt back to the retry loop in Atomic. It never escapes
// the package: Atomic recovers it. (Panic/recover is the conventional
// mechanism for non-local abort in Go STMs; user code simply re-runs.)
type rollbackSignal struct{}

// yieldQuantum is the forced-interleaving grain: a transaction yields
// the processor every yieldQuantum work units. On the paper's hardware
// transactions overlap in real time; on a single-CPU simulator a
// transaction would otherwise run to completion in one scheduler slice
// and inter-thread contention would never materialize. Waiting on
// another thread's lock is charged one quantum per spin iteration — the
// lock owner progresses by about one quantum per scheduler round.
const yieldQuantum = 64

// txStartCost models transaction setup (descriptor and log
// initialization, timestamp read) in work units; TLSTM charges the same
// constant per task, which is what bounds its achievable task-split
// speedup (paper Fig. 1a tops out well below the task count).
const txStartCost = 24

// validationStride discounts validation steps: one work unit per this
// many read-log entries checked. A validation step is a version
// compare — roughly an order of magnitude cheaper than an instrumented
// transactional load.
const validationStride = 8

// tick charges work units and enforces the interleaving grain.
func (tx *Tx) tick(units uint64) {
	tx.work += units
	if tx.work%yieldQuantum < units {
		runtime.Gosched()
	}
}

// Tx is one transaction attempt handle. It implements tm.Tx. A Tx is
// only valid inside the function passed to Atomic and must not be
// retained or shared across goroutines.
type Tx struct {
	rt      *Runtime
	validTS uint64

	owner   *locktable.OwnerRef
	greedTS *atomic.Uint64 // greedy CM slot, persists across retries

	readLog  []readEntry
	writeLog []*locktable.WEntry

	allocs []tm.Addr // fresh blocks to release on abort
	frees  []tm.Addr // deferred frees to apply on commit

	work      uint64 // work units of the current attempt
	aborts    uint64
	cmDefeats int // conflicts lost so far (two-phase greedy escalation)
}

type readEntry struct {
	pair    *locktable.Pair
	version uint64
}

// completedZero is a shared always-zero counter: the baseline has no
// task pipeline, so OwnerRef progress is constant.
var completedZero atomic.Int64

func (rt *Runtime) newOwner(greedTS *atomic.Uint64, abortTx *atomic.Bool) *locktable.OwnerRef {
	return &locktable.OwnerRef{
		ThreadID:      -1,
		StartSerial:   0,
		CompletedTask: &completedZero,
		AbortTx:       abortTx,
		AbortInternal: abortTx, // no intra-thread signals in the baseline
		Timestamp:     greedTS,
	}
}

// Atomic runs fn as one transaction, retrying on conflict until it
// commits. If st is non-nil, commit/abort counts and work units are
// accumulated into it. fn must be re-executable: it may run several
// times and must not perform external side effects.
func (rt *Runtime) Atomic(st *Stats, fn func(tx *Tx)) {
	var greedTS atomic.Uint64
	tx := &Tx{rt: rt, greedTS: &greedTS, cmDefeats: 0}
	for {
		var abortTx atomic.Bool
		tx.owner = rt.newOwner(&greedTS, &abortTx)
		tx.validTS = rt.commitTS.Load()
		tx.work += txStartCost
		tx.readLog = tx.readLog[:0]
		tx.writeLog = tx.writeLog[:0]
		tx.allocs = tx.allocs[:0]
		tx.frees = tx.frees[:0]

		if tx.attempt(fn) {
			break
		}
		tx.aborts++
		// Back off progressively so the conflict window is not
		// re-entered immediately (and, on a single CPU, so the lock
		// owner we lost to gets scheduled before we re-acquire).
		for i := uint64(0); i < min(tx.aborts*8, 256); i++ {
			runtime.Gosched()
		}
	}
	if st != nil {
		st.Commits++
		st.Aborts += tx.aborts
		st.Work += tx.work
	}
}

// attempt runs fn once and tries to commit; it reports success and
// converts rollbackSignal panics into a false return.
func (tx *Tx) attempt(fn func(tx *Tx)) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(rollbackSignal); !is {
				// A genuine user panic: release our locks and undo
				// speculative allocation so the rest of the system stays
				// live, then propagate.
				tx.releaseWrites()
				for _, a := range tx.allocs {
					tx.rt.alloc.Free(a)
				}
				panic(r)
			}
			ok = false
		}
	}()
	fn(tx)
	tx.commit()
	return true
}

// rollback releases every lock and undoes speculative allocation, then
// unwinds to the retry loop.
func (tx *Tx) rollback() {
	tx.releaseWrites()
	for _, a := range tx.allocs {
		tx.rt.alloc.Free(a)
	}
	panic(rollbackSignal{})
}

func (tx *Tx) releaseWrites() {
	for _, e := range tx.writeLog {
		// The baseline never stacks entries: eager W/W locking admits
		// one writer per pair, so our entry is the head with no Prev.
		e.Pair.W.CompareAndSwap(e, nil)
	}
}

// checkSignals aborts the attempt if another transaction's contention
// manager asked us to.
func (tx *Tx) checkSignals() {
	if tx.owner.AbortTx.Load() {
		tx.rollback()
	}
}

// Load implements tm.Tx (paper §3.1; TLSTM Alg. 1 line 16 is this path).
func (tx *Tx) Load(a tm.Addr) uint64 {
	tx.tick(1)
	p := tx.rt.locks.For(a)
	if e := p.W.Load(); e != nil && e.Owner == tx.owner {
		if v, hit := e.Lookup(a); hit {
			return v
		}
		// Lock-pair collision: we own the pair but never wrote this
		// address; its committed value is still in memory.
	}
	return tx.loadCommitted(p, a)
}

func (tx *Tx) loadCommitted(p *locktable.Pair, a tm.Addr) uint64 {
	for {
		tx.checkSignals()
		v1 := p.R.Load()
		if v1 == locktable.Locked {
			// A committer is publishing this location; wait it out.
			runtime.Gosched()
			continue
		}
		val := tx.rt.store.LoadWord(a)
		if p.R.Load() != v1 {
			continue // torn read: version moved underneath us
		}
		if v1 > tx.validTS && !tx.extend() {
			tx.rollback()
		}
		if v1 > tx.validTS {
			continue // extended, but not far enough; re-read
		}
		tx.readLog = append(tx.readLog, readEntry{pair: p, version: v1})
		return val
	}
}

// extend implements lazy snapshot extension: revalidate the read log at
// the current commit timestamp and advance valid-ts on success.
func (tx *Tx) extend() bool {
	ts := tx.rt.commitTS.Load()
	for i, re := range tx.readLog {
		if i%validationStride == 0 {
			tx.work++
		}
		cur := re.pair.R.Load()
		if cur == re.version {
			continue
		}
		if tx.ownsPair(re.pair) {
			continue // we hold the w-lock; nobody else can have changed it
		}
		return false
	}
	tx.validTS = ts
	return true
}

func (tx *Tx) ownsPair(p *locktable.Pair) bool {
	e := p.W.Load()
	return e != nil && e.Owner == tx.owner
}

// Store implements tm.Tx: eager w-lock acquisition with redo logging.
func (tx *Tx) Store(a tm.Addr, v uint64) {
	tx.tick(2)
	p := tx.rt.locks.For(a)
	for {
		tx.checkSignals()
		e := p.W.Load()
		if e != nil {
			if e.Owner == tx.owner {
				e.Update(a, v)
				return
			}
			switch tx.rt.cm.Resolve(tx.greedTS, len(tx.writeLog), tx.cmDefeats, e.Owner) {
			case cm.AbortSelf:
				tx.cmDefeats++
				tx.rollback()
			case cm.AbortOwner:
				e.Owner.AbortTx.Store(true)
				// Waiting for the owner costs real parallel time: it
				// progresses about one quantum per scheduler round.
				tx.work += yieldQuantum
				runtime.Gosched()
			}
			continue
		}
		ne := &locktable.WEntry{
			Owner: tx.owner,
			Pair:  p,
			Words: []locktable.WordVal{{Addr: a, Val: v}},
		}
		if p.W.CompareAndSwap(nil, ne) {
			tx.writeLog = append(tx.writeLog, ne)
			break
		}
	}
	// Mirror of TLSTM Alg. 2 line 52: if the location moved past our
	// snapshot, extend or die.
	if ver := p.R.Load(); ver != locktable.Locked && ver > tx.validTS && !tx.extend() {
		tx.rollback()
	}
}

// Alloc implements tm.Tx: allocation is undone if the attempt aborts.
func (tx *Tx) Alloc(n int) tm.Addr {
	tx.work++
	a := tx.rt.alloc.Alloc(n)
	tx.allocs = append(tx.allocs, a)
	return a
}

// Free implements tm.Tx: the release is deferred to commit.
func (tx *Tx) Free(a tm.Addr) {
	tx.frees = append(tx.frees, a)
}

// commit validates and publishes the transaction (paper §3.1).
func (tx *Tx) commit() {
	if len(tx.writeLog) == 0 {
		// Read-only transactions are consistent by construction at
		// valid-ts; nothing to publish.
		tx.applyFrees()
		return
	}
	tx.checkSignals()

	// Phase 1: lock the r-locks of written pairs, remembering the
	// versions we displace so a failed validation can restore them.
	saved := make([]uint64, len(tx.writeLog))
	for i, e := range tx.writeLog {
		saved[i] = e.Pair.R.Swap(locktable.Locked)
		tx.work++
	}

	ts := tx.rt.commitTS.Add(1)

	if !tx.validateCommit(saved) {
		for i, e := range tx.writeLog {
			e.Pair.R.Store(saved[i])
		}
		tx.rollback()
	}

	// Phase 2: publish values, then release locks with the new version.
	for _, e := range tx.writeLog {
		for _, w := range e.Words {
			tx.rt.store.StoreWord(w.Addr, w.Val)
			tx.work++
		}
	}
	for _, e := range tx.writeLog {
		e.Pair.R.Store(ts)
		e.Pair.W.CompareAndSwap(e, nil)
	}
	tx.applyFrees()
}

// validateCommit re-checks the read log; pairs we hold r-locked compare
// against the version they had when we locked them.
func (tx *Tx) validateCommit(saved []uint64) bool {
	var pre map[*locktable.Pair]uint64
	for i, re := range tx.readLog {
		if i%validationStride == 0 {
			tx.work++
		}
		cur := re.pair.R.Load()
		if cur == re.version {
			continue
		}
		if cur == locktable.Locked && tx.ownsPair(re.pair) {
			if pre == nil {
				pre = make(map[*locktable.Pair]uint64, len(tx.writeLog))
				for i, e := range tx.writeLog {
					pre[e.Pair] = saved[i]
				}
			}
			if pre[re.pair] == re.version {
				continue
			}
		}
		return false
	}
	return true
}

func (tx *Tx) applyFrees() {
	for _, a := range tx.frees {
		tx.rt.alloc.Free(a)
	}
}

var _ tm.Tx = (*Tx)(nil)
