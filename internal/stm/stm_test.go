package stm

import (
	"sync"
	"testing"

	"tlstm/internal/tm"
)

func TestSingleTxReadWrite(t *testing.T) {
	rt := New()
	var addr tm.Addr
	rt.Atomic(nil, func(tx *Tx) {
		addr = tx.Alloc(2)
		tx.Store(addr, 11)
		tx.Store(addr+1, 22)
		if tx.Load(addr) != 11 || tx.Load(addr+1) != 22 {
			t.Error("read-own-write mismatch")
		}
	})
	rt.Atomic(nil, func(tx *Tx) {
		if tx.Load(addr) != 11 || tx.Load(addr+1) != 22 {
			t.Error("committed values not visible")
		}
	})
}

func TestCommitTSAdvancesOnlyOnWrites(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	before := rt.CommitTS()
	rt.Atomic(nil, func(tx *Tx) { tx.Load(a) })
	if rt.CommitTS() != before {
		t.Fatal("read-only transaction must not advance commit-ts")
	}
	rt.Atomic(nil, func(tx *Tx) { tx.Store(a, 1) })
	if rt.CommitTS() != before+1 {
		t.Fatal("write transaction must advance commit-ts by one")
	}
}

func TestConcurrentCounter(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rt.Atomic(nil, func(tx *Tx) {
					tx.Store(a, tx.Load(a)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.LoadWordRaw(a); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// Bank invariant: concurrent random transfers preserve the total.
func TestBankTransferInvariant(t *testing.T) {
	rt := New()
	const accounts = 32
	const initial = 1000
	var base tm.Addr
	rt.Atomic(nil, func(tx *Tx) {
		base = tx.Alloc(accounts)
		for i := 0; i < accounts; i++ {
			tx.Store(base+tm.Addr(i), initial)
		}
	})

	const workers, transfers = 6, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := seed
			next := func() uint64 { r = r*6364136223846793005 + 1442695040888963407; return r >> 33 }
			for i := 0; i < transfers; i++ {
				from := tm.Addr(next() % accounts)
				to := tm.Addr(next() % accounts)
				amt := next() % 10
				rt.Atomic(nil, func(tx *Tx) {
					f := tx.Load(base + from)
					g := tx.Load(base + to)
					if from != to && f >= amt {
						tx.Store(base+from, f-amt)
						tx.Store(base+to, g+amt)
					}
				})
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	var total uint64
	rt.Atomic(nil, func(tx *Tx) {
		total = 0
		for i := 0; i < accounts; i++ {
			total += tx.Load(base + tm.Addr(i))
		}
	})
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d", total, accounts*initial)
	}
}

// Opacity smoke: writers keep x+y constant; concurrent readers must never
// observe a violated invariant inside a transaction.
func TestSnapshotInvariant(t *testing.T) {
	rt := New()
	var x, y tm.Addr
	rt.Atomic(nil, func(tx *Tx) {
		x = tx.Alloc(1)
		y = tx.Alloc(1)
		tx.Store(x, 500)
		tx.Store(y, 500)
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rt.Atomic(nil, func(tx *Tx) {
				vx := tx.Load(x)
				vy := tx.Load(y)
				tx.Store(x, vx-1)
				tx.Store(y, vy+1)
			})
		}
	}()

	violations := 0
	for i := 0; i < 500; i++ {
		rt.Atomic(nil, func(tx *Tx) {
			if tx.Load(x)+tx.Load(y) != 1000 {
				violations++
			}
		})
	}
	close(stop)
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d snapshot violations", violations)
	}
}

func TestStatsCountCommitsAndWork(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	var st Stats
	for i := 0; i < 5; i++ {
		rt.Atomic(&st, func(tx *Tx) { tx.Store(a, uint64(i)) })
	}
	if st.Commits != 5 {
		t.Fatalf("Commits = %d, want 5", st.Commits)
	}
	if st.Work == 0 {
		t.Fatal("work units not accumulated")
	}
}

func TestAbortedAllocIsReclaimed(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })

	live := rt.Allocator().LiveBlocks()
	// Force one abort: two transactions racing on the same word with a
	// deliberate conflict window is hard to stage deterministically, so
	// instead exercise the rollback path directly via a user panic that
	// is converted to cleanup + propagation.
	func() {
		defer func() { _ = recover() }()
		rt.Atomic(nil, func(tx *Tx) {
			tx.Alloc(8)
			tx.Store(a, 1)
			panic("boom")
		})
	}()
	if got := rt.Allocator().LiveBlocks(); got != live {
		t.Fatalf("leaked blocks after aborted tx: %d != %d", got, live)
	}
	// The lock taken before the panic must have been released.
	done := make(chan struct{})
	go func() {
		rt.Atomic(nil, func(tx *Tx) { tx.Store(a, 2) })
		close(done)
	}()
	<-done
}

func TestFreeAppliedOnlyOnCommit(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(4) })
	live := rt.Allocator().LiveBlocks()
	rt.Atomic(nil, func(tx *Tx) { tx.Free(a) })
	if got := rt.Allocator().LiveBlocks(); got != live-1 {
		t.Fatalf("free not applied at commit: %d != %d", got, live-1)
	}
}

func TestLargeReadSetExtend(t *testing.T) {
	rt := New()
	const n = 2000
	var base tm.Addr
	rt.Atomic(nil, func(tx *Tx) {
		base = tx.Alloc(n)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			rt.Atomic(nil, func(tx *Tx) {
				tx.Store(base+tm.Addr(i%n), uint64(i))
			})
		}
	}()
	for i := 0; i < 20; i++ {
		rt.Atomic(nil, func(tx *Tx) {
			var sum uint64
			for j := 0; j < n; j++ {
				sum += tx.Load(base + tm.Addr(j))
			}
			_ = sum
		})
	}
	wg.Wait()
}
