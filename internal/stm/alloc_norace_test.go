//go:build !race

package stm_test

import (
	"testing"

	"tlstm/internal/stm"
)

// Zero-allocation assertions for the SwissTM hot paths. They live
// behind !race because the race detector's instrumentation perturbs
// allocation counting.

func TestWorkerAtomicReadWriteZeroAlloc(t *testing.T) {
	w, _, body := setupWorker(t)
	if n := testing.AllocsPerRun(200, func() { w.Atomic(body) }); n != 0 {
		t.Fatalf("warmed read/write Atomic allocates %.1f objects/op, want 0", n)
	}
}

func TestWorkerAtomicReadOnlyZeroAlloc(t *testing.T) {
	w, addrs, _ := setupWorker(t)
	var sink uint64
	body := func(tx *stm.Tx) {
		for _, a := range addrs {
			sink += tx.Load(a)
		}
	}
	w.Atomic(body)
	if n := testing.AllocsPerRun(200, func() { w.Atomic(body) }); n != 0 {
		t.Fatalf("warmed read-only Atomic allocates %.1f objects/op, want 0", n)
	}
}

// TestWorkerAtomicROMultiVersionZeroAlloc asserts the headline property
// of the wait-free read path: a warmed declared read-only transaction
// on a multi-version runtime allocates nothing — even with a writer
// committing between scans, which forces the reader through the version
// ring (Publish and ReadAt are allocation-free by construction).
func TestWorkerAtomicROMultiVersionZeroAlloc(t *testing.T) {
	writer, reader, addrs := setupMVWorkers(t)
	var sink uint64
	scan := func(tx *stm.Tx) {
		for _, a := range addrs {
			sink += tx.Load(a)
		}
	}
	inc := func(tx *stm.Tx) {
		for _, a := range addrs {
			tx.Store(a, tx.Load(a)+1)
		}
	}
	writer.Atomic(inc)
	reader.AtomicRO(scan)
	if n := testing.AllocsPerRun(200, func() {
		writer.Atomic(inc)
		reader.AtomicRO(scan)
	}); n != 0 {
		t.Fatalf("warmed mv read-only Atomic (with interleaved writer) allocates %.1f objects/op, want 0", n)
	}
	_ = sink
}

func TestRuntimeAtomicPooledZeroAlloc(t *testing.T) {
	rt := stm.New()
	d := rt.Direct()
	a := d.Alloc(1)
	body := func(tx *stm.Tx) { tx.Store(a, tx.Load(a)+1) }
	rt.Atomic(nil, body)
	if n := testing.AllocsPerRun(200, func() { rt.Atomic(nil, body) }); n != 0 {
		t.Fatalf("pooled Runtime.Atomic allocates %.1f objects/op, want 0", n)
	}
}
