package stm

import (
	"testing"

	"tlstm/internal/locktable"
	"tlstm/internal/tm"
)

// White-box tests for SwissTM's validation and locking internals.

func TestExtendAdvancesValidTS(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })

	rt.Atomic(nil, func(tx *Tx) {
		tx.Load(a)
		before := tx.validTS
		// Another transaction commits elsewhere, moving the clock.
		done := make(chan struct{})
		go func() {
			rt.Atomic(nil, func(tx2 *Tx) { tx2.Store(tx2.Alloc(1), 1) })
			close(done)
		}()
		<-done
		if !tx.extend() {
			t.Error("extension over a disjoint commit must succeed")
		}
		if tx.validTS <= before {
			t.Error("extend must advance valid-ts")
		}
	})
}

func TestExtendFailsOnOverwrittenRead(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })

	attempts := 0
	rt.Atomic(nil, func(tx *Tx) {
		attempts++
		tx.Load(a)
		if attempts == 1 {
			// Overwrite the read location from another transaction:
			// the first attempt must abort (extension fails), the
			// retry must succeed.
			done := make(chan struct{})
			go func() {
				rt.Atomic(nil, func(tx2 *Tx) { tx2.Store(a, 99) })
				close(done)
			}()
			<-done
			if tx.extend() {
				t.Error("extension over an overwritten read must fail")
			}
			tx.rollback()
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one forced abort)", attempts)
	}
}

func TestWriteLockReleasedAfterCommitAndAbort(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	p := rt.locks.For(a)

	rt.Atomic(nil, func(tx *Tx) { tx.Store(a, 1) })
	if p.W.Load() != nil {
		t.Fatal("w-lock held after commit")
	}
	ver := p.R.Load()
	if ver == 0 || ver == locktable.Locked {
		t.Fatalf("r-lock version not published: %d", ver)
	}

	func() {
		defer func() { _ = recover() }()
		rt.Atomic(nil, func(tx *Tx) {
			tx.Store(a, 2)
			panic("boom")
		})
	}()
	if p.W.Load() != nil {
		t.Fatal("w-lock held after user panic")
	}
	if p.R.Load() != ver {
		t.Fatal("r-lock version must be unchanged after an abort")
	}
	if rt.LoadWordRaw(a) != 1 {
		t.Fatal("aborted write leaked to memory (redo logging broken)")
	}
}

func TestReadOwnWriteThroughEntry(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	rt.Atomic(nil, func(tx *Tx) {
		tx.Store(a, 7)
		if got := tx.Load(a); got != 7 {
			t.Fatalf("read-own-write = %d", got)
		}
		if rt.LoadWordRaw(a) == 7 {
			t.Fatal("redo write must not reach memory before commit")
		}
	})
	if rt.LoadWordRaw(a) != 7 {
		t.Fatal("commit did not publish")
	}
}

// Lock-pair collisions: two addresses sharing a pair must still commit
// their own values correctly.
func TestCollisionSharedPairValues(t *testing.T) {
	rt := New(WithLockTableBits(4)) // 16 pairs
	d := rt.Direct()
	a := d.Alloc(1)
	b := a + 16 // same pair by construction (stride = table size)
	if rt.locks.For(a) != rt.locks.For(b) {
		t.Skip("allocator layout changed; addresses no longer collide")
	}
	rt.Atomic(nil, func(tx *Tx) {
		tx.Store(a, 1)
		tx.Store(b, 2)
		if tx.Load(a) != 1 || tx.Load(b) != 2 {
			t.Error("collided writes must stay distinct in the entry")
		}
	})
	if d.Load(a) != 1 || d.Load(b) != 2 {
		t.Fatal("collided writes published incorrectly")
	}
}

func TestWorkChargesIncludeAbortedAttempts(t *testing.T) {
	rt := New()
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })

	var st Stats
	attempts := 0
	rt.Atomic(&st, func(tx *Tx) {
		attempts++
		tx.Load(a)
		if attempts == 1 {
			tx.rollback() // simulate a conflict-induced retry
		}
	})
	if st.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", st.Aborts)
	}
	// Two attempts must be charged at least two tx-start costs.
	if st.Work < 2*txStartCost {
		t.Fatalf("Work = %d, want ≥ %d (aborted attempt must be charged)", st.Work, 2*txStartCost)
	}
}
