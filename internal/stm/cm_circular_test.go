package stm

import (
	"testing"
	"time"

	"tlstm/internal/cm"
	"tlstm/internal/tm"
)

// TestCircularWaitTerminatesPerPolicy is the two-thread circular-wait
// regression on the real runtime: two workers repeatedly run
// transactions that write the same two words in OPPOSITE order, with
// enough filler work in between that, on the single-CPU scheduler, both
// transactions are regularly in flight holding one lock and wanting the
// other — the paper's §3.2 deadlock scenario and the reason for the
// PoliteDefeats escalation in the two-phase greedy design. Every policy
// must drive the pair to completion (no deadlock, no livelock): polite
// phases escalate, seniority/karma orders the pair, randomized backoff
// breaks symmetry. The final counter values double as the atomicity
// check.
func TestCircularWaitTerminatesPerPolicy(t *testing.T) {
	const txPerWorker = 150
	const fill = 96

	for _, kind := range cm.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := New(WithCM(cm.New(kind)))
			d := rt.Direct()
			a := d.Alloc(2)
			b := a + 1
			filler := d.Alloc(2 * fill)

			run := func(first, second tm.Addr, fillBase tm.Addr, done chan<- struct{}) {
				w := rt.NewWorker()
				for i := 0; i < txPerWorker; i++ {
					w.Atomic(func(tx *Tx) {
						tx.Store(first, tx.Load(first)+1)
						var sink uint64
						for j := 0; j < fill; j++ {
							sink += tx.Load(fillBase + tm.Addr(j))
						}
						tx.Store(second, tx.Load(second)+1+sink)
					})
				}
				w.Close()
				done <- struct{}{}
			}

			done := make(chan struct{}, 2)
			go run(a, b, filler, done)
			go run(b, a, filler+fill, done)

			deadline := time.After(60 * time.Second)
			for i := 0; i < 2; i++ {
				select {
				case <-done:
				case <-deadline:
					t.Fatalf("policy %v: circular-wait workload did not terminate (deadlock or livelock)", kind)
				}
			}
			want := uint64(2 * txPerWorker)
			if got := d.Load(a); got != want {
				t.Fatalf("policy %v: counter a = %d, want %d", kind, got, want)
			}
			if got := d.Load(b); got != want {
				t.Fatalf("policy %v: counter b = %d, want %d", kind, got, want)
			}
		})
	}
}
