package stm_test

import (
	"testing"

	"tlstm/internal/stm"
	"tlstm/internal/tm"
)

// mvSetup allocates n words initialized to init under a multi-version
// runtime of depth k.
func mvSetup(k, n int, init uint64) (*stm.Runtime, tm.Addr) {
	rt := stm.New(stm.WithMultiVersion(k))
	d := rt.Direct()
	base := d.Alloc(n)
	for i := 0; i < n; i++ {
		d.Store(base+tm.Addr(i), init)
	}
	return rt, base
}

// TestAtomicROMVSingleWriterMultiReaderSoak is the acceptance soak,
// driven from one goroutine so the assertions are deterministic: a
// writer commits a transfer, then every reader scans the array as a
// declared read-only transaction. On the multi-version path each scan
// must commit unconditionally — zero aborts, zero fallback misses, zero
// snapshot extensions, and nothing logged for validation. (The
// concurrent version of this scenario runs in the race/stress smokes,
// where fallbacks are legitimate under preemption.)
func TestAtomicROMVSingleWriterMultiReaderSoak(t *testing.T) {
	const words, init, iters = 8, 100, 500
	rt, base := mvSetup(2, words, init)
	writer := rt.NewWorker()
	readers := []*stm.Worker{rt.NewWorker(), rt.NewWorker(), rt.NewWorker()}

	scan := func(tx *stm.Tx) {
		var sum uint64
		for i := 0; i < words; i++ {
			sum += tx.Load(base + tm.Addr(i))
		}
		if sum != words*init {
			t.Errorf("scan saw total %d, want %d", sum, words*init)
		}
	}
	for i := 0; i < iters; i++ {
		src, dst := tm.Addr(i%words), tm.Addr((i+1)%words)
		writer.Atomic(func(tx *stm.Tx) {
			tx.Store(base+src, tx.Load(base+src)-1)
			tx.Store(base+dst, tx.Load(base+dst)+1)
		})
		for _, r := range readers {
			r.AtomicRO(scan)
		}
	}
	for i, r := range readers {
		st := r.Stats()
		if st.Commits != iters {
			t.Errorf("reader %d: commits = %d, want %d", i, st.Commits, iters)
		}
		if st.Aborts != 0 || st.MVMisses != 0 || st.SnapshotExtensions != 0 {
			t.Errorf("reader %d left the wait-free path: aborts=%d misses=%d ext=%d",
				i, st.Aborts, st.MVMisses, st.SnapshotExtensions)
		}
		if want := uint64(iters * words); st.MVReads != want {
			t.Errorf("reader %d: MVReads = %d, want %d", i, st.MVReads, want)
		}
		if st.ReadSetSizes.Max() != 0 || st.WriteSetSizes.Max() != 0 {
			t.Errorf("reader %d logged entries on the mv path: rset[%s] wset[%s]",
				i, st.ReadSetSizes, st.WriteSetSizes)
		}
	}
}

// TestAtomicROMVServesDisplacedVersion parks a reader across a
// conflicting commit: the writer overwrites a word after the reader's
// snapshot, and the reader's later load of that word must be served
// from the version ring — the displaced value, not the too-new one —
// without extension or abort.
func TestAtomicROMVServesDisplacedVersion(t *testing.T) {
	rt, base := mvSetup(2, 2, 0)
	d := rt.Direct()
	d.Store(base, 10)
	d.Store(base+1, 20)
	reader, writer := rt.NewWorker(), rt.NewWorker()

	attempts := 0
	reader.AtomicRO(func(tx *stm.Tx) {
		attempts++
		a := tx.Load(base)
		if attempts == 1 {
			writer.Atomic(func(wtx *stm.Tx) { wtx.Store(base+1, 99) })
		}
		b := tx.Load(base + 1)
		if a != 10 || b != 20 {
			t.Errorf("frozen snapshot broken: read (%d, %d), want (10, 20)", a, b)
		}
	})
	if attempts != 1 {
		t.Fatalf("reader ran %d attempts, want 1 (wait-free commit)", attempts)
	}
	st := reader.Stats()
	if st.MVReads != 2 || st.MVMisses != 0 || st.Aborts != 0 {
		t.Fatalf("stats = mvRead=%d mvMiss=%d aborts=%d, want 2/0/0",
			st.MVReads, st.MVMisses, st.Aborts)
	}
}

// TestAtomicROMVRingWraparoundFallsBack is the directed overrun
// regression: a reader parked across a full ring wraparound of K+2
// commits to one word must fall back to the validated path — never
// return a torn or too-new value — and then commit consistently.
func TestAtomicROMVRingWraparoundFallsBack(t *testing.T) {
	const k, total = 2, 1000
	rt, base := mvSetup(k, 2, 0)
	d := rt.Direct()
	d.Store(base, total) // invariant: base + base+1 == total
	reader, writer := rt.NewWorker(), rt.NewWorker()

	attempts := 0
	reader.AtomicRO(func(tx *stm.Tx) {
		attempts++
		a := tx.Load(base)
		if attempts == 1 {
			// K+2 transfers: every version of base+1 that covered the
			// reader's snapshot is evicted from the depth-K ring.
			for i := 0; i < k+2; i++ {
				writer.Atomic(func(wtx *stm.Tx) {
					wtx.Store(base, wtx.Load(base)-1)
					wtx.Store(base+1, wtx.Load(base+1)+1)
				})
			}
		}
		b := tx.Load(base + 1)
		if a+b != total {
			t.Errorf("inconsistent read after wraparound: %d + %d != %d", a, b, total)
		}
	})
	if attempts != 2 {
		t.Fatalf("reader ran %d attempts, want 2 (fallback re-run)", attempts)
	}
	st := reader.Stats()
	if st.MVMisses != 1 || st.Aborts != 1 {
		t.Fatalf("fallback not recorded: mvMiss=%d aborts=%d, want 1/1", st.MVMisses, st.Aborts)
	}
	if st.MVReads != 1 {
		t.Fatalf("MVReads = %d, want 1 (only the pre-overrun load)", st.MVReads)
	}
	if got := d.Load(base) + d.Load(base+1); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
}

// TestAtomicROMVStoreFallsBackToValidated: declaring wrongly costs
// performance, never correctness — a store inside a declared read-only
// transaction restarts it in validated read-write mode.
func TestAtomicROMVStoreFallsBackToValidated(t *testing.T) {
	rt, base := mvSetup(2, 1, 5)
	w := rt.NewWorker()
	attempts := 0
	w.AtomicRO(func(tx *stm.Tx) {
		attempts++
		tx.Store(base, tx.Load(base)+1)
	})
	if attempts != 2 {
		t.Fatalf("mis-declared writer ran %d attempts, want 2", attempts)
	}
	if got := rt.LoadWordRaw(base); got != 6 {
		t.Fatalf("store lost: word = %d, want 6", got)
	}
	if st := w.Stats(); st.Commits != 1 {
		t.Fatalf("commits = %d, want 1", st.Commits)
	}
}

// TestAtomicRODisabledMVBehavesValidated: without WithMultiVersion the
// declared read-only entry point is just the validated path.
func TestAtomicRODisabledMVBehavesValidated(t *testing.T) {
	rt := stm.New()
	if rt.MVDepth() != 0 {
		t.Fatalf("MVDepth = %d, want 0", rt.MVDepth())
	}
	d := rt.Direct()
	a := d.Alloc(1)
	d.Store(a, 7)
	w := rt.NewWorker()
	var got uint64
	w.AtomicRO(func(tx *stm.Tx) { got = tx.Load(a) })
	if got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
	if st := w.Stats(); st.MVReads != 0 || st.MVMisses != 0 {
		t.Fatalf("mv counters moved without multi-versioning: %d/%d", st.MVReads, st.MVMisses)
	}
}
