package stm

import (
	"sync"
	"testing"

	"tlstm/internal/clock"
	"tlstm/internal/tm"
)

// White-box checks of the snapshot rule under each commit-clock
// strategy: a value stamped t is never readable by a transaction whose
// valid-ts is below t without a snapshot extension first covering t.

// TestDeferredStampRequiresExtension drives the deferred clock's
// defining scenario end to end: a writer publishes at Now()+1 while the
// clock stays put, so the next reader MUST extend (and thereby advance
// the clock) before it can see the value.
func TestDeferredStampRequiresExtension(t *testing.T) {
	rt := New(WithClock(clock.New(clock.KindDeferred)))
	var a tm.Addr
	rt.Atomic(nil, func(tx *Tx) { a = tx.Alloc(1) })
	rt.Atomic(nil, func(tx *Tx) { tx.Store(a, 42) })

	var st Stats
	rt.Atomic(&st, func(tx *Tx) {
		before := tx.validTS
		if got := tx.Load(a); got != 42 {
			t.Fatalf("Load = %d, want 42", got)
		}
		// The read returned, so the snapshot must now cover the stamp:
		// the published version is ahead of the begin-time clock and is
		// only reachable through extendTo/Observe.
		if tx.validTS <= before && before < tx.rt.clk.Now() {
			t.Fatalf("validTS did not advance over a pre-published stamp (validTS=%d, clock=%d)", tx.validTS, tx.rt.clk.Now())
		}
	})
	if st.SnapshotExtensions == 0 {
		t.Fatal("reading a deferred stamp must cost a snapshot extension")
	}
}

// TestSnapshotNeverCoversFreshStamp asserts the invariant directly on
// the internals, for every strategy: whenever a transaction records a
// read version, that version is ≤ validTS, and validTS is ≤ the clock's
// current reading (the snapshot never runs ahead of what the clock can
// justify).
func TestSnapshotNeverCoversFreshStamp(t *testing.T) {
	for _, kind := range clock.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := New(WithClock(clock.New(kind)))
			d := rt.Direct()
			a := d.Alloc(1)
			b := d.Alloc(1)

			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 200; i++ {
					rt.Atomic(nil, func(tx *Tx) { tx.Store(b, tx.Load(b)+1) })
				}
			}()
			for i := 0; i < 200; i++ {
				rt.Atomic(nil, func(tx *Tx) {
					tx.Load(a)
					tx.Load(b)
					for _, re := range tx.readLog.Entries() {
						if re.Version > tx.validTS {
							t.Errorf("recorded version %d above validTS %d", re.Version, tx.validTS)
						}
					}
					if now := rt.clk.Now(); tx.validTS > now {
						t.Errorf("validTS %d ran ahead of the clock %d", tx.validTS, now)
					}
				})
			}
			<-done
		})
	}
}

// TestClockStrategiesCounterAtomicity hammers one shared counter from
// several workers under each strategy: the committed total must be
// exact. Run with -race in CI.
func TestClockStrategiesCounterAtomicity(t *testing.T) {
	const workers, perWorker = 4, 300
	for _, kind := range clock.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt := New(WithClock(clock.New(kind)))
			a := rt.Direct().Alloc(1)

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					wk := rt.NewWorker()
					defer wk.Close()
					for i := 0; i < perWorker; i++ {
						wk.Atomic(func(tx *Tx) { tx.Store(a, tx.Load(a)+1) })
					}
				}()
			}
			wg.Wait()
			if got := rt.LoadWordRaw(a); got != workers*perWorker {
				t.Fatalf("clock %v: counter = %d, want %d", kind, got, workers*perWorker)
			}
			st := rt.Stats()
			if st.Commits != workers*perWorker {
				t.Fatalf("clock %v: commits = %d, want %d", kind, st.Commits, workers*perWorker)
			}
		})
	}
}
