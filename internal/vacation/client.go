package vacation

import "tlstm/internal/tm"

// Params mirror STAMP Vacation's command-line knobs. The paper runs the
// original low- and high-contention configurations, modified so each
// client issues eight operations per transaction (§4).
type Params struct {
	// Relations is the number of ids per table (STAMP -r).
	Relations int64
	// QueryRange is the percentage of the relation each query may touch
	// (STAMP -q): smaller ranges concentrate accesses → more contention.
	QueryRange int
	// PctUser is the percentage of MakeReservation operations (STAMP
	// -u); the rest split evenly between DeleteCustomer and UpdateTables.
	PctUser int
	// QueriesPerOp is the number of (table,id) queries inside one
	// operation (STAMP -n).
	QueriesPerOp int
}

// LowContention reproduces STAMP's vacation-low configuration, scaled to
// simulator-friendly relation sizes.
func LowContention() Params {
	return Params{Relations: 1 << 14, QueryRange: 90, PctUser: 98, QueriesPerOp: 2}
}

// HighContention reproduces STAMP's vacation-high configuration.
func HighContention() Params {
	return Params{Relations: 1 << 14, QueryRange: 10, PctUser: 90, QueriesPerOp: 4}
}

// OpKind is the type of one client operation.
type OpKind int

// Operation kinds (STAMP's ACTION_*).
const (
	OpMakeReservation OpKind = iota + 1
	OpDeleteCustomer
	OpUpdateTables
)

// Query is one (table,id) probe inside an operation.
type Query struct {
	Kind ResourceKind
	ID   int64
	// Add applies only to OpUpdateTables: true adds capacity, false
	// removes it.
	Add bool
}

// Op is one pre-generated client operation. Operations are generated
// outside transactions so speculative re-execution replays identical
// work (the generator is the non-transactional part of STAMP's client
// loop).
type Op struct {
	Kind     OpKind
	Customer int64
	Queries  []Query
}

// Rng is a small deterministic generator (splitmix-style), one per
// client, mirroring STAMP's per-client random streams.
type Rng struct{ s uint64 }

// NewRng seeds a client generator.
func NewRng(seed uint64) *Rng { return &Rng{s: seed*2654435761 + 1} }

// Next returns the next pseudo-random value.
func (r *Rng) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0,n).
func (r *Rng) Intn(n int64) int64 { return int64(r.Next() % uint64(n)) }

// Generate produces the next operation for a client (STAMP client_run's
// body, lifted out of the transaction).
func (p Params) Generate(r *Rng) Op {
	rangeSize := p.Relations * int64(p.QueryRange) / 100
	if rangeSize < 1 {
		rangeSize = 1
	}
	pick := func() int64 { return r.Intn(rangeSize) }

	roll := int(r.Next() % 100)
	switch {
	case roll < p.PctUser:
		op := Op{Kind: OpMakeReservation, Customer: pick()}
		for i := 0; i < p.QueriesPerOp; i++ {
			op.Queries = append(op.Queries, Query{
				Kind: ResourceKind(r.Intn(numKinds) + 1),
				ID:   pick(),
			})
		}
		return op
	case roll < p.PctUser+(100-p.PctUser)/2:
		return Op{Kind: OpDeleteCustomer, Customer: pick()}
	default:
		op := Op{Kind: OpUpdateTables}
		for i := 0; i < p.QueriesPerOp; i++ {
			op.Queries = append(op.Queries, Query{
				Kind: ResourceKind(r.Intn(numKinds) + 1),
				ID:   pick(),
				Add:  r.Next()%2 == 0,
			})
		}
		return op
	}
}

// Execute runs one operation against the manager inside the caller's
// transaction or task (STAMP client_run's transactional body).
func (m *Manager) Execute(tx tm.Tx, op Op) {
	switch op.Kind {
	case OpMakeReservation:
		// Find the highest-priced available resource among the queries,
		// then reserve it (STAMP reserves the max-priced candidate).
		bestIdx := -1
		var bestPrice int64 = -1
		for i, q := range op.Queries {
			if m.QueryFree(tx, q.Kind, q.ID) > 0 {
				if p := m.QueryPrice(tx, q.Kind, q.ID); p > bestPrice {
					bestPrice = p
					bestIdx = i
				}
			}
		}
		if bestIdx >= 0 {
			m.AddCustomer(tx, op.Customer)
			q := op.Queries[bestIdx]
			m.Reserve(tx, op.Customer, q.Kind, q.ID)
		}
	case OpDeleteCustomer:
		m.DeleteCustomer(tx, op.Customer)
	case OpUpdateTables:
		for _, q := range op.Queries {
			if q.Add {
				m.AddResource(tx, q.Kind, q.ID, 100, q.ID%50+10)
			} else {
				m.DeleteResource(tx, q.Kind, q.ID, 100)
			}
		}
	}
}

// Populate fills the tables as STAMP's initializer does: every id in
// every table gets an initial capacity and price, and the customer base
// is pre-registered.
func Populate(tx tm.Tx, m *Manager, p Params) {
	for kind := Car; kind <= Room; kind++ {
		for id := int64(0); id < p.Relations; id++ {
			m.AddResource(tx, kind, id, 100, id%50+10)
		}
	}
	for id := int64(0); id < p.Relations; id++ {
		m.AddCustomer(tx, id)
	}
}
