package vacation

import (
	"sync"
	"testing"

	"tlstm/internal/tl2"
	"tlstm/internal/wtstm"
)

// The Vacation application must run unmodified — and keep its
// accounting invariants — on every runtime that implements tm.Tx. This
// exercises the TL2 and write-through baselines on a real application.

func TestWorkloadInvariantsTL2(t *testing.T) {
	rt := tl2.New(16)
	p := smallParams()
	m := NewManager(rt.Direct(), 64)
	Populate(rt.Direct(), m, p)

	const clients, txs = 3, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := NewRng(seed)
			for i := 0; i < txs; i++ {
				ops := make([]Op, 4)
				for j := range ops {
					ops[j] = p.Generate(r)
				}
				rt.Atomic(nil, func(tx *tl2.Tx) {
					for _, op := range ops {
						m.Execute(tx, op)
					}
				})
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	if msg := m.CheckInvariants(rt.Direct()); msg != "" {
		t.Fatal(msg)
	}
}

func TestWorkloadInvariantsWriteThrough(t *testing.T) {
	rt := wtstm.New(16)
	p := smallParams()
	m := NewManager(rt.Direct(), 64)
	Populate(rt.Direct(), m, p)

	const clients, txs = 3, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := NewRng(seed)
			for i := 0; i < txs; i++ {
				ops := make([]Op, 4)
				for j := range ops {
					ops[j] = p.Generate(r)
				}
				rt.Atomic(nil, func(tx *wtstm.Tx) {
					for _, op := range ops {
						m.Execute(tx, op)
					}
				})
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	if msg := m.CheckInvariants(rt.Direct()); msg != "" {
		t.Fatal(msg)
	}
}
