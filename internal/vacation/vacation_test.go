package vacation

import (
	"sync"
	"testing"

	"tlstm/internal/core"
	"tlstm/internal/mem"
	"tlstm/internal/stm"
)

func direct() mem.Direct {
	s := mem.NewStore()
	return mem.Direct{Mem: s, Al: mem.NewAllocator(s)}
}

func smallParams() Params {
	return Params{Relations: 64, QueryRange: 90, PctUser: 80, QueriesPerOp: 2}
}

func TestManagerBasics(t *testing.T) {
	d := direct()
	m := NewManager(d, 16)
	if !m.AddResource(d, Car, 1, 10, 50) {
		t.Fatal("AddResource failed")
	}
	if m.QueryFree(d, Car, 1) != 10 || m.QueryPrice(d, Car, 1) != 50 {
		t.Fatal("query mismatch")
	}
	if !m.AddCustomer(d, 7) || m.AddCustomer(d, 7) {
		t.Fatal("AddCustomer duplicate handling wrong")
	}
	if !m.Reserve(d, 7, Car, 1) {
		t.Fatal("Reserve failed")
	}
	if m.Reserve(d, 7, Car, 1) {
		t.Fatal("double reservation of the same resource must fail")
	}
	if m.QueryFree(d, Car, 1) != 9 {
		t.Fatal("free count not decremented")
	}
	if msg := m.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
	if !m.Cancel(d, 7, Car, 1) {
		t.Fatal("Cancel failed")
	}
	if m.QueryFree(d, Car, 1) != 10 {
		t.Fatal("free count not restored")
	}
	if msg := m.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
}

func TestDeleteCustomerReleasesAll(t *testing.T) {
	d := direct()
	m := NewManager(d, 16)
	m.AddResource(d, Car, 1, 5, 10)
	m.AddResource(d, Room, 2, 5, 20)
	m.AddCustomer(d, 3)
	m.Reserve(d, 3, Car, 1)
	m.Reserve(d, 3, Room, 2)
	if bill := m.DeleteCustomer(d, 3); bill != 30 {
		t.Fatalf("bill = %d, want 30", bill)
	}
	if m.QueryFree(d, Car, 1) != 5 || m.QueryFree(d, Room, 2) != 5 {
		t.Fatal("capacity not released")
	}
	if m.DeleteCustomer(d, 3) != -1 {
		t.Fatal("deleting a missing customer must return -1")
	}
	if msg := m.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
}

func TestDeleteResourceBounds(t *testing.T) {
	d := direct()
	m := NewManager(d, 4)
	m.AddResource(d, Flight, 9, 10, 5)
	if m.DeleteResource(d, Flight, 9, 20) {
		t.Fatal("removing more capacity than free must fail")
	}
	if !m.DeleteResource(d, Flight, 9, 10) {
		t.Fatal("removing free capacity must succeed")
	}
	if m.QueryFree(d, Flight, 9) != 0 {
		t.Fatal("free must be zero")
	}
	if msg := m.CheckInvariants(d); msg != "" {
		t.Fatal(msg)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := smallParams()
	r1, r2 := NewRng(5), NewRng(5)
	for i := 0; i < 100; i++ {
		a, b := p.Generate(r1), p.Generate(r2)
		if a.Kind != b.Kind || a.Customer != b.Customer || len(a.Queries) != len(b.Queries) {
			t.Fatal("generator must be deterministic per seed")
		}
	}
}

func TestGeneratorMix(t *testing.T) {
	p := smallParams()
	r := NewRng(1)
	counts := map[OpKind]int{}
	for i := 0; i < 2000; i++ {
		counts[p.Generate(r).Kind]++
	}
	if counts[OpMakeReservation] < 1400 || counts[OpMakeReservation] > 1900 {
		t.Fatalf("reservation mix off: %v", counts)
	}
	if counts[OpDeleteCustomer] == 0 || counts[OpUpdateTables] == 0 {
		t.Fatalf("missing op kinds: %v", counts)
	}
}

// The workload preserves manager invariants under the SwissTM baseline
// with concurrent clients.
func TestWorkloadInvariantsSTM(t *testing.T) {
	rt := stm.New(stm.WithLockTableBits(16))
	d := mem.Direct{}
	_ = d
	p := smallParams()
	var m *Manager
	setup := rt.Direct()
	m = NewManager(setup, 64)
	Populate(setup, m, p)

	const clients, txs = 4, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := NewRng(seed)
			for i := 0; i < txs; i++ {
				ops := make([]Op, 8)
				for j := range ops {
					ops[j] = p.Generate(r)
				}
				rt.Atomic(nil, func(tx *stm.Tx) {
					for _, op := range ops {
						m.Execute(tx, op)
					}
				})
			}
		}(uint64(c + 1))
	}
	wg.Wait()
	if msg := m.CheckInvariants(rt.Direct()); msg != "" {
		t.Fatal(msg)
	}
}

// The same workload under TLSTM, with the paper's 8-operation
// transactions split into two tasks of four operations.
func TestWorkloadInvariantsTLSTM(t *testing.T) {
	rt := core.New(core.Config{SpecDepth: 2, LockTableBits: 16})
	p := smallParams()
	setup := rt.Direct()
	m := NewManager(setup, 64)
	Populate(setup, m, p)

	const clients, txs = 3, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		thr := rt.NewThread()
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := NewRng(seed)
			for i := 0; i < txs; i++ {
				ops := make([]Op, 8)
				for j := range ops {
					ops[j] = p.Generate(r)
				}
				first, second := ops[:4], ops[4:]
				_ = thr.Atomic(
					func(tk *core.Task) {
						for _, op := range first {
							m.Execute(tk, op)
						}
					},
					func(tk *core.Task) {
						for _, op := range second {
							m.Execute(tk, op)
						}
					},
				)
			}
			thr.Sync()
		}(uint64(c + 1))
	}
	wg.Wait()
	if msg := m.CheckInvariants(rt.Direct()); msg != "" {
		t.Fatal(msg)
	}
}
