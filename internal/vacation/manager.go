// Package vacation is a port of the STAMP Vacation application (Cao
// Minh et al., IISWC'08) to word-addressed transactional memory: an
// online travel-reservation OLTP system with three resource tables
// (cars, flights, rooms) and a customer table, exercised by clients
// issuing reservation, cancellation and table-update operations.
//
// The paper modifies Vacation for TLSTM (§4, Figure 1b): each client
// issues eight operations inside one application-server transaction,
// which splits naturally into two speculative tasks of four operations.
// This package provides the manager and the operation generator; the
// split across SwissTM transactions and TLSTM tasks is driven by the
// benchmark harness.
package vacation

import (
	"tlstm/internal/rbtree"
	"tlstm/internal/tm"
	"tlstm/internal/tmhash"
	"tlstm/internal/tmlist"
)

// ResourceKind selects one of the three reservation tables.
type ResourceKind int

// Resource kinds (STAMP's RESERVATION_CAR/FLIGHT/ROOM).
const (
	Car ResourceKind = iota + 1
	Flight
	Room
	numKinds = 3
)

// Reservation record layout: one block per resource id.
const (
	rNumUsed  = 0
	rNumFree  = 1
	rNumTotal = 2
	rPrice    = 3

	reservationWords = 4
)

// Customer record layout.
const (
	cID   = 0
	cList = 1 // head address of the reservation-info list

	customerWords = 2
)

// Manager owns the four tables. The handle is plain data (addresses) and
// may be shared across threads; all mutation goes through tm.Tx.
type Manager struct {
	tables    [numKinds]rbtree.Tree // car, flight, room: id → reservation block
	customers tmhash.Map            // id → customer block
}

// NewManager allocates empty tables. Call during single-threaded setup
// (Direct) or inside a transaction.
func NewManager(tx tm.Tx, customerBuckets int) *Manager {
	m := &Manager{}
	for i := 0; i < numKinds; i++ {
		m.tables[i] = rbtree.New(tx)
	}
	m.customers = tmhash.New(tx, customerBuckets)
	return m
}

func (m *Manager) table(k ResourceKind) rbtree.Tree {
	return m.tables[k-1]
}

// AddResource creates or grows the resource (kind,id) by num units at
// the given price (STAMP manager_add*). A negative num shrinks the free
// pool (but never below zero, and never below used slots).
func (m *Manager) AddResource(tx tm.Tx, kind ResourceKind, id int64, num int64, price int64) bool {
	t := m.table(kind)
	if blk, ok := t.Lookup(tx, id); ok {
		b := tm.Addr(blk)
		free := tm.LoadInt64(tx, b+rNumFree)
		total := tm.LoadInt64(tx, b+rNumTotal)
		if num < 0 && free+num < 0 {
			return false
		}
		tm.StoreInt64(tx, b+rNumFree, free+num)
		tm.StoreInt64(tx, b+rNumTotal, total+num)
		if price >= 0 {
			tm.StoreInt64(tx, b+rPrice, price)
		}
		return true
	}
	if num < 0 {
		return false
	}
	b := tx.Alloc(reservationWords)
	tm.StoreInt64(tx, b+rNumUsed, 0)
	tm.StoreInt64(tx, b+rNumFree, num)
	tm.StoreInt64(tx, b+rNumTotal, num)
	tm.StoreInt64(tx, b+rPrice, price)
	t.Insert(tx, id, uint64(b))
	return true
}

// DeleteResource removes num units of capacity (STAMP manager_delete*).
func (m *Manager) DeleteResource(tx tm.Tx, kind ResourceKind, id int64, num int64) bool {
	return m.AddResource(tx, kind, id, -num, -1)
}

// QueryFree returns the free unit count of (kind,id), or -1 if absent.
func (m *Manager) QueryFree(tx tm.Tx, kind ResourceKind, id int64) int64 {
	blk, ok := m.table(kind).Lookup(tx, id)
	if !ok {
		return -1
	}
	return tm.LoadInt64(tx, tm.Addr(blk)+rNumFree)
}

// QueryPrice returns the price of (kind,id), or -1 if absent.
func (m *Manager) QueryPrice(tx tm.Tx, kind ResourceKind, id int64) int64 {
	blk, ok := m.table(kind).Lookup(tx, id)
	if !ok {
		return -1
	}
	return tm.LoadInt64(tx, tm.Addr(blk)+rPrice)
}

// AddCustomer registers the customer if absent (STAMP manager_addCustomer).
func (m *Manager) AddCustomer(tx tm.Tx, id int64) bool {
	if m.customers.Contains(tx, id) {
		return false
	}
	c := tx.Alloc(customerWords)
	tm.StoreInt64(tx, c+cID, id)
	l := tmlist.New(tx)
	tm.StoreAddr(tx, c+cList, l.Head())
	m.customers.Insert(tx, id, uint64(c))
	return true
}

// reservationKey packs (kind,id) into one list key.
func reservationKey(kind ResourceKind, id int64) int64 {
	return int64(kind)<<40 | id
}

// Reserve books one unit of (kind,id) for the customer, recording the
// price paid in the customer's reservation list (STAMP manager_reserve).
func (m *Manager) Reserve(tx tm.Tx, customer int64, kind ResourceKind, id int64) bool {
	cBlk, ok := m.customers.Lookup(tx, customer)
	if !ok {
		return false
	}
	blk, ok := m.table(kind).Lookup(tx, id)
	if !ok {
		return false
	}
	b := tm.Addr(blk)
	free := tm.LoadInt64(tx, b+rNumFree)
	if free <= 0 {
		return false
	}
	list := tmlist.Handle(tm.LoadAddr(tx, tm.Addr(cBlk)+cList))
	key := reservationKey(kind, id)
	if list.Contains(tx, key) {
		return false // already holds one (STAMP allows one per resource)
	}
	tm.StoreInt64(tx, b+rNumFree, free-1)
	tm.StoreInt64(tx, b+rNumUsed, tm.LoadInt64(tx, b+rNumUsed)+1)
	list.Insert(tx, key, uint64(tm.LoadInt64(tx, b+rPrice)))
	return true
}

// Cancel releases the customer's booking of (kind,id).
func (m *Manager) Cancel(tx tm.Tx, customer int64, kind ResourceKind, id int64) bool {
	cBlk, ok := m.customers.Lookup(tx, customer)
	if !ok {
		return false
	}
	list := tmlist.Handle(tm.LoadAddr(tx, tm.Addr(cBlk)+cList))
	key := reservationKey(kind, id)
	if !list.Delete(tx, key) {
		return false
	}
	blk, ok := m.table(kind).Lookup(tx, id)
	if !ok {
		return false
	}
	b := tm.Addr(blk)
	tm.StoreInt64(tx, b+rNumFree, tm.LoadInt64(tx, b+rNumFree)+1)
	tm.StoreInt64(tx, b+rNumUsed, tm.LoadInt64(tx, b+rNumUsed)-1)
	return true
}

// DeleteCustomer removes the customer, releasing every booking and
// returning the total bill (STAMP manager_deleteCustomer), or -1 if the
// customer does not exist.
func (m *Manager) DeleteCustomer(tx tm.Tx, customer int64) int64 {
	cBlk, ok := m.customers.Lookup(tx, customer)
	if !ok {
		return -1
	}
	list := tmlist.Handle(tm.LoadAddr(tx, tm.Addr(cBlk)+cList))
	var bill int64
	var keys []int64
	list.Each(tx, func(k int64, v uint64) bool {
		bill += int64(v)
		keys = append(keys, k)
		return true
	})
	for _, k := range keys {
		kind := ResourceKind(k >> 40)
		id := k & (1<<40 - 1)
		if blk, ok := m.table(kind).Lookup(tx, id); ok {
			b := tm.Addr(blk)
			tm.StoreInt64(tx, b+rNumFree, tm.LoadInt64(tx, b+rNumFree)+1)
			tm.StoreInt64(tx, b+rNumUsed, tm.LoadInt64(tx, b+rNumUsed)-1)
		}
	}
	list.Clear(tx)
	tx.Free(tm.LoadAddr(tx, tm.Addr(cBlk)+cList)) // the list header block
	m.customers.Delete(tx, customer)
	tx.Free(tm.Addr(cBlk))
	return bill
}

// CheckInvariants verifies, non-transactionally (setup/teardown or under
// a quiesced runtime), that every resource satisfies used+free == total,
// used ≥ 0, free ≥ 0, and that customer bookings exactly account for the
// used units. It returns "" when consistent.
func (m *Manager) CheckInvariants(tx tm.Tx) string {
	used := map[int64]int64{} // reservationKey → used count from tables
	for kind := Car; kind <= Room; kind++ {
		bad := ""
		m.table(kind).Range(tx, 0, 1<<40, func(id int64, blk uint64) bool {
			b := tm.Addr(blk)
			u := tm.LoadInt64(tx, b+rNumUsed)
			f := tm.LoadInt64(tx, b+rNumFree)
			tot := tm.LoadInt64(tx, b+rNumTotal)
			if u < 0 || f < 0 || u+f != tot {
				bad = "resource accounting broken"
				return false
			}
			if u != 0 {
				used[reservationKey(kind, id)] = u
			}
			return true
		})
		if bad != "" {
			return bad
		}
	}
	booked := map[int64]int64{}
	m.customers.Each(tx, func(id int64, cBlk uint64) bool {
		list := tmlist.Handle(tm.LoadAddr(tx, tm.Addr(cBlk)+cList))
		list.Each(tx, func(k int64, v uint64) bool {
			booked[k]++
			return true
		})
		return true
	})
	if len(used) != len(booked) {
		return "used resources do not match customer bookings"
	}
	for k, u := range used {
		if booked[k] != u {
			return "used count does not match bookings"
		}
	}
	return ""
}
