// Package txtrace is the flight-recorder tracing layer of the runtime:
// per-thread, allocation-free ring buffers of compact binary event
// records, written through a Tracer interface whose default
// implementation is a no-op so the warmed hot paths keep their
// zero-alloc guarantee when tracing is off.
//
// The design follows the txstats shard idiom: every recording context
// (an stm Worker, a tl2/wtstm pooled descriptor, a TLSTM task) owns one
// Ring and is the only writer to it, so the record path is a plain
// store into a pre-allocated slot — no atomics except the drop counter,
// no locks, no allocation. Rings are registered with a Recorder, which
// dumps them after the run has quiesced (every owner joined); the
// happens-before edge that makes the dump race-free is the caller's
// join/Sync, exactly like the stats merge.
//
// Events carry the commit-clock value current at the probe point and a
// monotonic per-ring sequence number, so a dump can be merged across
// rings into one timeline and checked for per-thread monotonicity. The
// binary dump format (see dump.go) is deliberately the input the
// trace-based opacity checker will parse: it is self-describing,
// versioned by magic, and loses nothing the checker needs (a ring
// overrun drops oldest events and says how many).
package txtrace

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one trace event. The kinds cover the probe points
// every runtime shares; a runtime that lacks a phase (TL2 cannot
// extend) simply never emits that kind.
type Kind uint8

const (
	// KindTxBegin marks the start of a transaction (first attempt of
	// the whole transaction, not of one retry). Arg: transaction serial
	// where the runtime has one, else 0.
	KindTxBegin Kind = iota + 1
	// KindAttemptStart marks the start of one attempt (initial or
	// retry). Arg: attempt ordinal, 1-based.
	KindAttemptStart
	// KindRead records one transactional load. Arg: word address.
	KindRead
	// KindWrite records one transactional store. Arg: word address.
	KindWrite
	// KindValidate records a read-set validation pass. Arg: read-set
	// length; Aux: 1 if the validation succeeded, 0 if it failed.
	KindValidate
	// KindExtend records a snapshot extension. Arg: the new snapshot
	// bound; Aux: 1 on success, 0 on failure.
	KindExtend
	// KindCMDecision records a contention-manager verdict. Aux packs
	// the decision and conflict point (CMAux); Arg: word address of the
	// contended location where available.
	KindCMDecision
	// KindAbort records an attempt rollback. Aux: abort-reason code
	// (Abort* constants).
	KindAbort
	// KindCommit records a successful final commit. Clock carries the
	// commit timestamp; Arg: write-set length.
	KindCommit
	// KindReclaim records a write-lock entry reuse served from a
	// quiescence ring. Arg: retirement serial; Aux: low bits of the
	// retirement epoch.
	KindReclaim
	// KindRemap records an affinity placement rebind: the recording
	// thread's home lock-table shard changed. Arg: the new home shard;
	// Aux: the previous home shard.
	KindRemap
	// KindCommitWord records one word published by a committing
	// transaction, emitted between a successful KindValidate and the
	// closing KindCommit. Arg: word address; Clock: the commit
	// timestamp. These events give the opacity checker the written-word
	// identities it needs to rebuild per-slot version histories.
	KindCommitWord
	// KindModeShift records an execution-mode ladder transition on the
	// recording thread. Arg: the new mode.State; Aux: the previous one.
	KindModeShift
	// KindRetryPark records the Retry/Wait cond-var path. Aux: 0 when
	// the transaction parks on its doorbell, 1 when a conflicting
	// commit wakes it; Arg: the read-set fingerprint it parked on.
	KindRetryPark

	kindMax
)

var kindNames = [...]string{
	KindTxBegin:      "TxBegin",
	KindAttemptStart: "AttemptStart",
	KindRead:         "Read",
	KindWrite:        "Write",
	KindValidate:     "Validate",
	KindExtend:       "Extend",
	KindCMDecision:   "CMDecision",
	KindAbort:        "Abort",
	KindCommit:       "Commit",
	KindReclaim:      "Reclaim",
	KindRemap:        "Remap",
	KindCommitWord:   "CommitWord",
	KindModeShift:    "ModeShift",
	KindRetryPark:    "RetryPark",
}

// String names the kind for dumps.
func (k Kind) String() string {
	if k >= 1 && k < kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Abort-reason codes carried in the Aux field of KindAbort events.
const (
	// AbortValidation: read-set validation failed (stale read).
	AbortValidation uint32 = iota + 1
	// AbortConflict: a write/lock conflict aborted this attempt.
	AbortConflict
	// AbortExtend: a snapshot extension failed.
	AbortExtend
	// AbortCM: the contention manager chose this side as the victim.
	AbortCM
	// AbortSignal: another context signalled this transaction to abort
	// (TLSTM inter-task abort, abort-owner verdicts).
	AbortSignal
	// AbortSpec: a TLSTM task restarted for a speculation-specific
	// reason (stale intra-thread read, redo-chain change, sandboxing).
	AbortSpec
	// AbortRetry: the transaction called Retry — the attempt unwinds,
	// parks on the wait hub, and re-runs after a conflicting commit.
	AbortRetry
)

// AbortReasonString names an abort code for dumps.
func AbortReasonString(code uint32) string {
	switch code {
	case AbortValidation:
		return "validation"
	case AbortConflict:
		return "conflict"
	case AbortExtend:
		return "extend"
	case AbortCM:
		return "cm"
	case AbortSignal:
		return "signal"
	case AbortSpec:
		return "speculation"
	case AbortRetry:
		return "retry"
	default:
		return fmt.Sprintf("reason(%d)", code)
	}
}

// CMAux packs a contention-manager decision and conflict point into the
// Aux field of a KindCMDecision event. decision and point are the
// integer values of cm.Decision and cm.Point (not imported here: txtrace
// must stay leaf-level so every package can use it).
func CMAux(decision, point int) uint32 {
	return uint32(decision)&0xff | uint32(point)<<8
}

// CMAuxDecode splits an Aux packed by CMAux.
func CMAuxDecode(aux uint32) (decision, point int) {
	return int(aux & 0xff), int(aux >> 8)
}

// Event is one fixed-size trace record. Time is nanoseconds since the
// Recorder's base instant (monotonic); Clock is the commit-clock value
// observed at the probe point; Seq is the ring's monotonic sequence
// number. Arg and Aux are kind-specific (see the Kind constants).
type Event struct {
	Seq   uint64
	Time  int64
	Clock uint64
	Arg   uint64
	Aux   uint32
	Kind  uint8
}

// Tracer is the interface the runtimes record through. The default
// implementation (Nop) reports disabled and records nothing; the
// runtimes additionally cache Enabled() in a plain bool so the disabled
// hot path costs one predicted branch, not an interface call.
type Tracer interface {
	// Enabled reports whether Record does anything. Constant over the
	// tracer's lifetime.
	Enabled() bool
	// Record appends one event. Owner-only: a Tracer must only be
	// called from the single context that owns it.
	Record(k Kind, clock, arg uint64, aux uint32)
}

type nopTracer struct{}

func (nopTracer) Enabled() bool                       { return false }
func (nopTracer) Record(Kind, uint64, uint64, uint32) {}

// Nop is the default tracer: records nothing, reports disabled.
var Nop Tracer = nopTracer{}

// DefaultRingCap is the per-ring event capacity used when a Recorder is
// built with cap <= 0: 64 KiB of events per ring (40 B each, ~2.6 MiB).
const DefaultRingCap = 1 << 16

// Ring is a single-owner flight-recorder ring: a pre-allocated
// power-of-two buffer of events plus a monotonic cursor. Record
// overwrites the oldest event once full and bumps the drop counter —
// the recorder never blocks and never allocates on the record path.
//
// Ownership: exactly one goroutine-context calls Record (the runtimes
// hand each Worker/descriptor/Task its own ring). Drops is the only
// field read concurrently (live metrics), hence the only atomic. The
// buffer itself is read by Dump only after the owner has quiesced.
type Ring struct {
	rec   *Recorder
	id    uint32
	label string
	buf   []Event
	mask  uint64
	next  uint64 // owner-only cursor: total events ever recorded
	drops atomic.Uint64
}

// Enabled implements Tracer: a real ring always records.
func (r *Ring) Enabled() bool { return true }

// Record implements Tracer: one plain store into the pre-allocated
// buffer. 0 allocs/op (asserted in alloc_norace_test.go).
func (r *Ring) Record(k Kind, clock, arg uint64, aux uint32) {
	if r.next >= uint64(len(r.buf)) {
		r.drops.Add(1) // overwriting the oldest event
	}
	r.buf[r.next&r.mask] = Event{
		Seq:   r.next,
		Time:  int64(time.Since(r.rec.base)),
		Clock: clock,
		Arg:   arg,
		Aux:   aux,
		Kind:  uint8(k),
	}
	r.next++
}

// ID reports the ring's recorder-assigned identity (the Perfetto tid).
func (r *Ring) ID() uint32 { return r.id }

// Label reports the owner label the ring was registered with.
func (r *Ring) Label() string { return r.label }

// Drops reports how many oldest events have been overwritten. Safe to
// read concurrently with the owner recording.
func (r *Ring) Drops() uint64 { return r.drops.Load() }

// events returns the retained events oldest-first. Owner-quiesced only.
func (r *Ring) events() []Event {
	n := r.next
	if n <= uint64(len(r.buf)) {
		out := make([]Event, n)
		copy(out, r.buf[:n])
		return out
	}
	out := make([]Event, len(r.buf))
	start := n & r.mask
	copy(out, r.buf[start:])
	copy(out[uint64(len(r.buf))-start:], r.buf[:start])
	return out
}

// Recorder owns a run's rings: it hands them out (NewRing), sums their
// drop counters for live metrics, and serializes them (Dump) once every
// owner has quiesced. The registry mutex guards registration only —
// recording never takes it.
type Recorder struct {
	base    time.Time
	started int64 // wall-clock ns at base, for the dump header
	ringCap int

	mu    sync.Mutex
	rings []*Ring
	meta  map[string]string
}

// NewRecorder builds a recorder whose rings each hold ringCap events,
// rounded up to a power of two (DefaultRingCap if ringCap <= 0).
func NewRecorder(ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	if ringCap&(ringCap-1) != 0 {
		ringCap = 1 << bits.Len(uint(ringCap))
	}
	now := time.Now()
	return &Recorder{base: now, started: now.UnixNano(), ringCap: ringCap}
}

// NewRing registers and returns a new ring for one recording context.
// Labels need not be unique (pooled descriptors register one ring per
// incarnation); the auto-assigned ID is.
func (rec *Recorder) NewRing(label string) *Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := &Ring{
		rec:   rec,
		id:    uint32(len(rec.rings)),
		label: label,
		buf:   make([]Event, rec.ringCap),
		mask:  uint64(rec.ringCap - 1),
	}
	rec.rings = append(rec.rings, r)
	return r
}

// SetMeta records one key/value pair in the recorder's metadata table,
// serialized into the dump header (TXTRACE2). Runtimes register the
// configuration the offline checker needs to reinterpret raw events —
// lock-table bits, clock strategy — under namespaced keys ("stm.lockbits",
// "core.clock", ...) so several runtimes can share one recorder.
// Registration-time only, like NewRing: never called on a hot path.
func (rec *Recorder) SetMeta(key, value string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.meta == nil {
		rec.meta = make(map[string]string)
	}
	rec.meta[key] = value
}

// Meta returns a copy of the recorder's metadata table.
func (rec *Recorder) Meta() map[string]string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make(map[string]string, len(rec.meta))
	for k, v := range rec.meta {
		out[k] = v
	}
	return out
}

// Rings returns the registered rings (registration order).
func (rec *Recorder) Rings() []*Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]*Ring(nil), rec.rings...)
}

// Drops sums every ring's drop counter. Safe to call live.
func (rec *Recorder) Drops() uint64 {
	var n uint64
	for _, r := range rec.Rings() {
		n += r.Drops()
	}
	return n
}

// Events reports the total number of retained events across rings.
// Owner-quiesced only (reads the owner cursors).
func (rec *Recorder) Events() uint64 {
	var n uint64
	for _, r := range rec.Rings() {
		if r.next < uint64(len(r.buf)) {
			n += r.next
		} else {
			n += uint64(len(r.buf))
		}
	}
	return n
}
