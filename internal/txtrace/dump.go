package txtrace

// Binary trace serialization. The format is the contract between the
// recorder, cmd/tlstm-trace, and the txcheck opacity checker, so it is
// deliberately boring: little-endian, fixed-width, versioned by an
// 8-byte magic, nothing implicit.
//
//	header:   magic "TXTRACE2" | startUnixNanos i64 | ringCount u32 |
//	          metaCount u32 | metaCount × meta
//	meta:     keyLen u32 | key bytes | valLen u32 | val bytes
//	per ring: id u32 | labelLen u32 | label bytes | drops u64 | count u64
//	          count × event
//	event:    seq u64 | time i64 | clock u64 | arg u64 | aux u32 |
//	          kind u8 | pad [3]u8                       (40 bytes)
//
// ReadTrace also accepts the previous "TXTRACE1" magic, which lacks the
// metaCount section (everything after ringCount is identical). Dump
// always writes TXTRACE2.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Magic identifies (and versions) the binary trace format.
const Magic = "TXTRACE2"

// MagicV1 is the previous format version: no metadata section.
// ReadTrace still accepts it; Dump no longer writes it.
const MagicV1 = "TXTRACE1"

// EventSize is the on-disk size of one event record.
const EventSize = 40

// RingDump is one ring's deserialized section.
type RingDump struct {
	ID     uint32
	Label  string
	Drops  uint64
	Events []Event
}

// Trace is a deserialized dump. Meta is nil for TXTRACE1 traces.
type Trace struct {
	StartUnixNanos int64
	Meta           map[string]string
	Rings          []RingDump
}

func putEvent(b []byte, e Event) {
	binary.LittleEndian.PutUint64(b[0:], e.Seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(e.Time))
	binary.LittleEndian.PutUint64(b[16:], e.Clock)
	binary.LittleEndian.PutUint64(b[24:], e.Arg)
	binary.LittleEndian.PutUint32(b[32:], e.Aux)
	b[36] = e.Kind
	b[37], b[38], b[39] = 0, 0, 0
}

func getEvent(b []byte) Event {
	return Event{
		Seq:   binary.LittleEndian.Uint64(b[0:]),
		Time:  int64(binary.LittleEndian.Uint64(b[8:])),
		Clock: binary.LittleEndian.Uint64(b[16:]),
		Arg:   binary.LittleEndian.Uint64(b[24:]),
		Aux:   binary.LittleEndian.Uint32(b[32:]),
		Kind:  b[36],
	}
}

// Dump serializes every registered ring to w. The caller must have
// quiesced every ring owner first (joined the workers / Synced the
// threads): Dump reads the owner-only cursors and buffers, and the
// quiesce is the happens-before edge that makes that sound — the same
// contract as the stats fold.
func (rec *Recorder) Dump(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	rings := rec.Rings()
	meta := rec.Meta()

	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(rec.started))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(rings)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(meta)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic dumps
	var lenBuf [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(k)))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(meta[k])))
		if _, err := bw.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(meta[k]); err != nil {
			return err
		}
	}

	var scratch [EventSize]byte
	for _, r := range rings {
		evs := r.events()
		var rh [8]byte
		binary.LittleEndian.PutUint32(rh[0:], r.id)
		binary.LittleEndian.PutUint32(rh[4:], uint32(len(r.label)))
		if _, err := bw.Write(rh[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.label); err != nil {
			return err
		}
		var rc [16]byte
		binary.LittleEndian.PutUint64(rc[0:], r.Drops())
		binary.LittleEndian.PutUint64(rc[8:], uint64(len(evs)))
		if _, err := bw.Write(rc[:]); err != nil {
			return err
		}
		for _, e := range evs {
			putEvent(scratch[:], e)
			if _, err := bw.Write(scratch[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// maxLabelLen bounds label allocations when parsing untrusted input.
const maxLabelLen = 1 << 16

// ReadTrace deserializes a dump produced by Recorder.Dump.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("txtrace: reading magic: %w", err)
	}
	if string(magic) != Magic && string(magic) != MagicV1 {
		return nil, fmt.Errorf("txtrace: bad magic %q (not a %s trace)", magic, Magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("txtrace: reading header: %w", err)
	}
	tr := &Trace{StartUnixNanos: int64(binary.LittleEndian.Uint64(hdr[0:]))}
	ringCount := binary.LittleEndian.Uint32(hdr[8:])
	if string(magic) == Magic {
		var mc [4]byte
		if _, err := io.ReadFull(br, mc[:]); err != nil {
			return nil, fmt.Errorf("txtrace: reading meta count: %w", err)
		}
		metaCount := binary.LittleEndian.Uint32(mc[:])
		if metaCount > 0 {
			tr.Meta = make(map[string]string, metaCount)
		}
		for i := uint32(0); i < metaCount; i++ {
			key, err := readLenString(br)
			if err != nil {
				return nil, fmt.Errorf("txtrace: meta %d key: %w", i, err)
			}
			val, err := readLenString(br)
			if err != nil {
				return nil, fmt.Errorf("txtrace: meta %d value: %w", i, err)
			}
			tr.Meta[key] = val
		}
	}

	var scratch [EventSize]byte
	for i := uint32(0); i < ringCount; i++ {
		var rh [8]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			return nil, fmt.Errorf("txtrace: ring %d header: %w", i, err)
		}
		rd := RingDump{ID: binary.LittleEndian.Uint32(rh[0:])}
		labelLen := binary.LittleEndian.Uint32(rh[4:])
		if labelLen > maxLabelLen {
			return nil, fmt.Errorf("txtrace: ring %d label length %d exceeds limit", i, labelLen)
		}
		label := make([]byte, labelLen)
		if _, err := io.ReadFull(br, label); err != nil {
			return nil, fmt.Errorf("txtrace: ring %d label: %w", i, err)
		}
		rd.Label = string(label)
		var rc [16]byte
		if _, err := io.ReadFull(br, rc[:]); err != nil {
			return nil, fmt.Errorf("txtrace: ring %d counts: %w", i, err)
		}
		rd.Drops = binary.LittleEndian.Uint64(rc[0:])
		count := binary.LittleEndian.Uint64(rc[8:])
		rd.Events = make([]Event, 0, min64(count, 1<<20))
		for j := uint64(0); j < count; j++ {
			if _, err := io.ReadFull(br, scratch[:]); err != nil {
				return nil, fmt.Errorf("txtrace: ring %d event %d: %w", i, j, err)
			}
			rd.Events = append(rd.Events, getEvent(scratch[:]))
		}
		tr.Rings = append(tr.Rings, rd)
	}
	// A well-formed stream ends exactly here.
	if _, err := br.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, errors.New("txtrace: trailing bytes after last ring")
		}
		return nil, err
	}
	return tr, nil
}

// readLenString reads a u32 length-prefixed string, bounded like labels.
func readLenString(br *bufio.Reader) (string, error) {
	var lb [4]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n > maxLabelLen {
		return "", fmt.Errorf("length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Validate checks the structural invariants a sound dump must have:
// per-ring monotonic sequences (consecutive, given drops offset the
// start), known kinds, and non-decreasing timestamps per ring. It
// returns the first violation found.
func (t *Trace) Validate() error {
	for _, rd := range t.Rings {
		var prevSeq uint64
		var prevTime int64
		for i, e := range rd.Events {
			if e.Kind == 0 || Kind(e.Kind) >= kindMax {
				return fmt.Errorf("ring %d (%s): event %d has unknown kind %d", rd.ID, rd.Label, i, e.Kind)
			}
			if i > 0 {
				if e.Seq != prevSeq+1 {
					return fmt.Errorf("ring %d (%s): sequence gap %d -> %d at event %d (torn or reordered record)",
						rd.ID, rd.Label, prevSeq, e.Seq, i)
				}
				if e.Time < prevTime {
					return fmt.Errorf("ring %d (%s): time regression %d -> %d at event %d",
						rd.ID, rd.Label, prevTime, e.Time, i)
				}
			} else if rd.Drops > 0 && e.Seq != rd.Drops {
				return fmt.Errorf("ring %d (%s): first retained seq %d does not match drop count %d",
					rd.ID, rd.Label, e.Seq, rd.Drops)
			}
			prevSeq, prevTime = e.Seq, e.Time
		}
	}
	return nil
}
