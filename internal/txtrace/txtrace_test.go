package txtrace

import (
	"bytes"
	"sync"
	"testing"
)

func TestRingRecordAndDumpRoundTrip(t *testing.T) {
	rec := NewRecorder(16)
	a := rec.NewRing("thread-0")
	b := rec.NewRing("thread-1")

	for i := 0; i < 5; i++ {
		a.Record(KindRead, uint64(100+i), uint64(i), 0)
	}
	b.Record(KindCommit, 7, 3, 0)

	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(tr.Rings) != 2 {
		t.Fatalf("rings = %d, want 2", len(tr.Rings))
	}
	r0 := tr.Rings[0]
	if r0.Label != "thread-0" || r0.ID != 0 || r0.Drops != 0 {
		t.Fatalf("ring 0 header = %+v", r0)
	}
	if len(r0.Events) != 5 {
		t.Fatalf("ring 0 events = %d, want 5", len(r0.Events))
	}
	for i, e := range r0.Events {
		if e.Seq != uint64(i) || e.Clock != uint64(100+i) || e.Arg != uint64(i) || Kind(e.Kind) != KindRead {
			t.Fatalf("ring 0 event %d = %+v", i, e)
		}
	}
	r1 := tr.Rings[1]
	if len(r1.Events) != 1 || Kind(r1.Events[0].Kind) != KindCommit || r1.Events[0].Clock != 7 {
		t.Fatalf("ring 1 events = %+v", r1.Events)
	}
}

// TestRingWraparound is the directed overrun test: a ring overrun must
// overwrite the oldest events, bump the drop counter by exactly the
// number overwritten, and retain the newest capacity-many events in
// consecutive sequence order.
func TestRingWraparound(t *testing.T) {
	const ringCap = 8
	rec := NewRecorder(ringCap)
	r := rec.NewRing("w")

	const total = 3*ringCap + 5
	for i := 0; i < total; i++ {
		r.Record(KindWrite, 0, uint64(i), 0)
	}
	if got, want := r.Drops(), uint64(total-ringCap); got != want {
		t.Fatalf("Drops = %d, want %d", got, want)
	}
	if got, want := rec.Drops(), uint64(total-ringCap); got != want {
		t.Fatalf("Recorder.Drops = %d, want %d", got, want)
	}
	evs := r.events()
	if len(evs) != ringCap {
		t.Fatalf("retained %d events, want %d", len(evs), ringCap)
	}
	for i, e := range evs {
		wantSeq := uint64(total - ringCap + i)
		if e.Seq != wantSeq || e.Arg != wantSeq {
			t.Fatalf("event %d: seq=%d arg=%d, want %d (oldest-first order broken)", i, e.Seq, e.Arg, wantSeq)
		}
	}

	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after wraparound: %v", err)
	}
	if tr.Rings[0].Drops != uint64(total-ringCap) {
		t.Fatalf("dumped drops = %d, want %d", tr.Rings[0].Drops, total-ringCap)
	}
}

// TestRingCapRounding: non-power-of-two capacities round up.
func TestRingCapRounding(t *testing.T) {
	rec := NewRecorder(100)
	r := rec.NewRing("r")
	if len(r.buf) != 128 {
		t.Fatalf("ring cap = %d, want 128", len(r.buf))
	}
	if rec2 := NewRecorder(0); len(rec2.NewRing("d").buf) != DefaultRingCap {
		t.Fatalf("default ring cap not applied")
	}
}

// TestRecorderConcurrentOwners is the race soak: many goroutines, each
// owning its own ring, record past wraparound while another goroutine
// polls the live drop counters. Run under -race this proves the record
// path shares nothing but the drop atomics; after the join, the dump
// must show every ring fully consistent (no torn records: every
// retained event's payload matches the generator function of its
// sequence number).
func TestRecorderConcurrentOwners(t *testing.T) {
	const (
		owners  = 8
		ringCap = 64
		perRing = 10 * ringCap
	)
	rec := NewRecorder(ringCap)
	rings := make([]*Ring, owners)
	for i := range rings {
		rings[i] = rec.NewRing("owner")
	}

	var poller sync.WaitGroup
	stop := make(chan struct{})
	poller.Add(1)
	go func() { // live reader of the only shared state
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = rec.Drops()
			}
		}
	}()
	var own sync.WaitGroup
	for i, r := range rings {
		own.Add(1)
		go func(id uint64, r *Ring) {
			defer own.Done()
			for s := uint64(0); s < perRing; s++ {
				r.Record(KindRead, id<<32|s, s*3+id, uint32(s))
			}
		}(uint64(i), r)
	}
	own.Wait() // the join is the happens-before edge Dump relies on
	close(stop)
	poller.Wait()

	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for ri, rd := range tr.Rings {
		if rd.Drops != perRing-ringCap {
			t.Fatalf("ring %d drops = %d, want %d", ri, rd.Drops, perRing-ringCap)
		}
		for _, e := range rd.Events {
			id := e.Clock >> 32
			s := e.Clock & 0xffffffff
			if s != e.Seq || e.Arg != s*3+id || e.Aux != uint32(s) {
				t.Fatalf("ring %d: torn record %+v", ri, e)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACE-AT-ALL"))); err == nil {
		t.Fatalf("garbage accepted")
	}
	// Truncated valid stream.
	rec := NewRecorder(8)
	rec.NewRing("x").Record(KindCommit, 1, 1, 0)
	var buf bytes.Buffer
	if err := rec.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatalf("truncated stream accepted")
	}
}

func TestCMAuxPacking(t *testing.T) {
	aux := CMAux(2, 1)
	d, p := CMAuxDecode(aux)
	if d != 2 || p != 1 {
		t.Fatalf("CMAux round trip: got (%d,%d)", d, p)
	}
}

func TestKindAndAbortStrings(t *testing.T) {
	if KindTxBegin.String() != "TxBegin" || KindReclaim.String() != "Reclaim" {
		t.Fatalf("kind names wrong")
	}
	if Kind(0).String() != "Kind(0)" {
		t.Fatalf("unknown kind name wrong")
	}
	if AbortReasonString(AbortCM) != "cm" || AbortReasonString(99) != "reason(99)" {
		t.Fatalf("abort reason names wrong")
	}
}
