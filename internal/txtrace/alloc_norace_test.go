//go:build !race

package txtrace

import "testing"

// The record path must be allocation-free even when tracing is armed:
// the ring is pre-allocated and Record is a plain store plus the
// monotonic-clock read. (The race detector instruments allocations, so
// this assertion only runs in normal builds — same split as the other
// alloc_norace suites.)
func TestRecordZeroAlloc(t *testing.T) {
	rec := NewRecorder(1 << 10)
	r := rec.NewRing("alloc")
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindRead, i, i, 0)
		i++
	})
	if allocs != 0 {
		t.Fatalf("armed Record allocates %.1f per op, want 0", allocs)
	}
}

// The no-op tracer must be free too (it is what every hot path holds by
// default).
func TestNopZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		Nop.Record(KindRead, 0, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("Nop.Record allocates %.1f per op, want 0", allocs)
	}
}
