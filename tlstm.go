// Package tlstm is the public API of this repository: a Go
// implementation of TLSTM, the unified Software Transactional Memory +
// Software Thread-Level Speculation runtime of
//
//	Barreto, Dragojević, Ferreira, Filipe, Guerraoui:
//	"Unifying Thread-Level Speculation and Transactional Memory",
//	Middleware 2012, LNCS 7662.
//
// The model (paper §2): programs are hand-parallelized into
// user-threads whose critical sections are user-transactions; the
// runtime further decomposes each user-transaction into speculative
// tasks that execute out of order and commit in program order. Reads
// and writes of shared state go through word-addressed transactional
// memory; opacity is preserved across user-transactions even when their
// tasks run speculatively.
//
// # Quick start
//
//	rt := tlstm.New(tlstm.Config{SpecDepth: 3})
//	defer rt.Close()                 // drain the scheduler's worker pools
//	d := rt.Direct()                 // non-transactional setup handle
//	counter := d.Alloc(1)
//
//	thr := rt.NewThread()            // one user-thread
//	_ = thr.Atomic(                  // one user-transaction, two tasks
//		func(t *tlstm.Task) { t.Store(counter, t.Load(counter)+1) },
//		func(t *tlstm.Task) { t.Store(counter, t.Load(counter)+1) },
//	)
//	thr.Sync()
//
// Task bodies must be re-executable: speculation may run them several
// times, so they must not have external side effects.
//
// # Worker lifecycle
//
// Speculative tasks do not get fresh goroutines: each Thread owns a
// ring of SpecDepth recycled task descriptors executed by SpecDepth
// long-lived worker goroutines (internal/sched), spawned lazily on the
// thread's first Submits and parked between tasks. At steady state a
// Submit therefore allocates nothing and spawns nothing; Stats reports
// the totals as WorkersSpawned and DescriptorReuses. The lifecycle is:
// NewThread creates the rings, Submit/Atomic dispatch onto them, Sync
// quiesces a thread (workers stay parked, ready for more), and
// Runtime.Close — after every thread has Synced — drains and joins all
// workers. Submitting after Close panics. Under Config.Policy ==
// SchedInline (SpecDepth 1 only) there are no workers at all: task
// bodies run on the submitting goroutine and Submit returns committed.
//
// # Waiting on transactions
//
// Submit returns a TxHandle by value: the (thread, commit-serial) pair
// of one submitted transaction. Wait blocks until that transaction has
// committed, through the thread's reusable completion latch rather
// than a per-transaction channel. Because commit serials are never
// reused, a handle stays meaningful after the transaction's recycled
// descriptors have moved on: Wait is idempotent, may be called from
// any goroutine, and at worst observes "already committed". Handles
// must not be used after Runtime.Close, and must not outlive their
// Thread.
//
// The package also exposes the SwissTM baseline (NewBaseline) that
// TLSTM extends, the transactional data structures used by the paper's
// benchmarks (red-black tree, sorted list, hash map), and the benchmark
// harness that regenerates the paper's figures (see cmd/tlstm-bench).
package tlstm

import (
	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/core"
	"tlstm/internal/mem"
	"tlstm/internal/mode"
	"tlstm/internal/rbtree"
	"tlstm/internal/sched"
	"tlstm/internal/stm"
	"tlstm/internal/tm"
	"tlstm/internal/tmhash"
	"tlstm/internal/tmlist"
)

// Core model types.
type (
	// Addr identifies one 64-bit word of transactional memory.
	Addr = tm.Addr
	// Tx is the runtime-agnostic access interface implemented by both
	// *Task (TLSTM) and *BaselineTx (SwissTM); data structures are
	// written against it.
	Tx = tm.Tx

	// Runtime is a TLSTM instance.
	Runtime = core.Runtime
	// Config configures a Runtime (SpecDepth is the paper's SPECDEPTH;
	// Shards/Affinity select the sharded lock-table geometry and the
	// conflict-sketch thread placement policy).
	Config = core.Config
	// Thread is a user-thread: a serial stream of user-transactions.
	Thread = core.Thread
	// Task is a speculative task handle; it implements Tx.
	Task = core.Task
	// TaskFunc is a speculative task body.
	TaskFunc = core.TaskFunc
	// TxHandle tracks a submitted user-transaction. It is a plain
	// value; see "Waiting on transactions" in the package docs for the
	// Wait contract.
	TxHandle = core.TxHandle
	// Stats aggregates per-thread execution statistics, including the
	// scheduler counters WorkersSpawned and DescriptorReuses, the
	// entry-reclamation counters EntryReclaims and HorizonStalls, and
	// the placement counters CrossShardConflicts and Remaps.
	Stats = core.Stats
	// SchedPolicy selects how speculative tasks are dispatched; see
	// Config.Policy and the worker-lifecycle package docs.
	SchedPolicy = sched.Policy

	// ClockSource is a commit-clock strategy for Config.Clock (and
	// NewBaselineWithClock): how the global commit timestamp is
	// maintained. See NewClock for the built-in strategies.
	ClockSource = clock.Source

	// CMPolicy is a contention-management policy for Config.CM (and
	// NewBaselineWithCM): how write/write conflicts between
	// transactions are resolved. See NewCM for the built-in policies.
	CMPolicy = cm.Policy

	// ModeConfig tunes the execution-mode ladder for Config.Mode: the
	// zero value keeps transactions always-speculative; Policy
	// ModeAdaptive arms per-thread fallback to a serialized global-lock
	// rung under sustained conflict (and recovery once the storm
	// passes). See ParseMode for the policy names.
	ModeConfig = mode.Config
	// ModePolicy selects the execution-mode ladder's behavior; see
	// ModeSpeculative, ModeAdaptive and ModeSerial.
	ModePolicy = mode.Policy

	// Direct is the non-transactional setup handle returned by
	// (*Runtime).Direct and (*BaselineRuntime).Direct; it implements Tx.
	Direct = mem.Direct
)

// NewClock builds one of the built-in commit-clock strategies by name:
//
//   - "gv4": the default fetch-and-add clock — dense unique timestamps,
//     one atomic RMW on a shared line per writer commit;
//   - "deferred": GV5-style — writers stamp without ticking, readers
//     advance the clock on observation; no commit-path RMW at the cost
//     of extra snapshot extensions;
//   - "sharded": per-context shards with read-side reconciliation;
//     commits touch only their own shard's cache line.
//
// Each Runtime needs its own ClockSource instance; do not share one
// across runtimes.
func NewClock(name string) (ClockSource, error) {
	k, err := clock.Parse(name)
	if err != nil {
		return nil, err
	}
	return clock.New(k), nil
}

// NewCM builds one of the built-in contention-management policies by
// name:
//
//   - "suicide": pure self-abort with a short grace wait (TL2's and the
//     write-through STM's historical behavior);
//   - "backoff": self-abort with randomized exponential backoff between
//     retries;
//   - "greedy": SwissTM's two-phase greedy manager (polite phase, then
//     seniority timestamps — older wins);
//   - "karma": work-based priority accumulated across restarts;
//   - "taskaware": the paper's Alg. 2 rule (abort the more speculative
//     transaction) over a greedy base — TLSTM's default;
//   - "default": each runtime's own default policy (returns nil).
//
// Each Runtime needs its own CMPolicy instance; do not share one
// across runtimes.
func NewCM(name string) (CMPolicy, error) {
	k, err := cm.Parse(name)
	if err != nil {
		return nil, err
	}
	return cm.New(k), nil
}

// NilAddr is the nil word address (a NULL pointer for word-encoded
// structures).
const NilAddr = tm.NilAddr

// Execution-mode policies for Config.Mode.Policy.
const (
	// ModeSpeculative runs every transaction optimistically (the
	// default; zero value).
	ModeSpeculative = mode.Speculative
	// ModeAdaptive starts speculative and falls back to the serialized
	// global-lock rung when the abort-rate window or a CM-defeat streak
	// says speculation is losing, recovering after a served residency.
	ModeAdaptive = mode.Adaptive
	// ModeSerial runs every transaction under the global gate
	// (measurement baseline for the ladder).
	ModeSerial = mode.Serial
)

// ParseMode parses an execution-mode policy name: "spec" (or ""),
// "adaptive" or "serial".
func ParseMode(name string) (ModePolicy, error) { return mode.Parse(name) }

// Scheduling policies for Config.Policy.
const (
	// SchedPooled dispatches tasks to each thread's ring of long-lived
	// worker goroutines (the default; zero value).
	SchedPooled = sched.Pooled
	// SchedInline runs task bodies on the submitting goroutine; it
	// requires SpecDepth 1 (New panics otherwise) and is the fast path
	// when there is no intra-thread speculation to overlap.
	SchedInline = sched.Inline
)

// New creates a TLSTM runtime.
func New(cfg Config) *Runtime { return core.New(cfg) }

// Baseline SwissTM (the STM that TLSTM extends; used for comparisons).
type (
	// BaselineRuntime is a SwissTM instance.
	BaselineRuntime = stm.Runtime
	// BaselineTx is a SwissTM transaction handle; it implements Tx.
	BaselineTx = stm.Tx
	// BaselineStats accumulates SwissTM execution statistics.
	BaselineStats = stm.Stats
	// BaselineWorker is a per-thread SwissTM execution context: it owns
	// a pooled transaction descriptor (so steady-state transactions
	// allocate nothing) and an unshared statistics shard merged into
	// the runtime aggregate by Close. Create one per worker goroutine
	// with (*BaselineRuntime).NewWorker.
	BaselineWorker = stm.Worker
)

// NewBaseline creates a SwissTM runtime.
func NewBaseline() *BaselineRuntime { return stm.New() }

// NewBaselineWithClock creates a SwissTM runtime on the given
// commit-clock strategy (see NewClock).
func NewBaselineWithClock(src ClockSource) *BaselineRuntime {
	return stm.New(stm.WithClock(src))
}

// NewBaselineWithCM creates a SwissTM runtime on the given
// contention-management policy (see NewCM; nil keeps the two-phase
// greedy default).
func NewBaselineWithCM(pol CMPolicy) *BaselineRuntime {
	return stm.New(stm.WithCM(pol))
}

// Loop decomposition (paper §3.3 — spec-DOALL and spec-DOACROSS) is
// available on Thread:
//
//	thr.SpecDOALL(n, tasks, func(t *tlstm.Task, i int) { ... })
//	thr.SpecDOACROSS(n, func(t *tlstm.Task, i int) { ... })
//
// and flat transaction nesting (§2) via (*Task).Nest.

// Transactional data structures (usable on either runtime through Tx).
type (
	// RBTree is a transactional red-black tree (the paper's
	// microbenchmark structure).
	RBTree = rbtree.Tree
	// List is a transactional sorted linked list.
	List = tmlist.List
	// HashMap is a transactional fixed-bucket hash map.
	HashMap = tmhash.Map
)

// NewRBTree allocates an empty transactional red-black tree.
func NewRBTree(tx Tx) RBTree { return rbtree.New(tx) }

// NewList allocates an empty transactional sorted list.
func NewList(tx Tx) List { return tmlist.New(tx) }

// NewHashMap allocates an empty transactional hash map with the given
// bucket count.
func NewHashMap(tx Tx, buckets int) HashMap { return tmhash.New(tx, buckets) }

// Word-encoding helpers re-exported for transactional code.
var (
	// LoadInt64 reads a word as an int64.
	LoadInt64 = tm.LoadInt64
	// StoreInt64 writes an int64 word.
	StoreInt64 = tm.StoreInt64
	// LoadAddr reads a word-encoded pointer.
	LoadAddr = tm.LoadAddr
	// StoreAddr writes a word-encoded pointer.
	StoreAddr = tm.StoreAddr
)
