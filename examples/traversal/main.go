// Traversal: STMBench7 long traversals split into speculative tasks
// (§4, Figures 2a/2b). Shows the paper's central contrast on one
// screen: read-only traversals split three ways enjoy near-full
// speedup, while write traversals — whose tasks all update the shared
// composite parts and module metadata — degenerate to nearly serial
// execution and lose to the unsplit run.
package main

import (
	"fmt"

	"tlstm"
	"tlstm/internal/harness"
	"tlstm/internal/sb7"
	"tlstm/internal/tm"
)

const traversals = 12

func run(tasks, pctRead int) harness.Result {
	rt := tlstm.New(tlstm.Config{SpecDepth: max(tasks, 1)})
	defer rt.Close()
	b, err := sb7.Build(rt.Direct(), sb7.Default())
	if err != nil {
		panic(err)
	}
	w := harness.Workload{
		Name:        fmt.Sprintf("sb7-%d-tasks-%d%%read", tasks, pctRead),
		Threads:     1,
		TxPerThread: traversals,
		OpsPerTx:    1,
		Make: func(thread, idx int) harness.TxSeq {
			seed := uint64(idx)*0x9e3779b97f4a7c15 + 1
			readOnly := idx%100 < pctRead
			roots, level := b.SplitRoots(tasks)
			var seq harness.TxSeq
			for _, root := range roots {
				root := root
				seq = append(seq, func(tx tm.Tx) {
					if readOnly {
						b.TraverseRead(tx, root, level)
					} else {
						b.TraverseWrite(tx, root, level, seed)
					}
				})
			}
			return seq
		},
	}
	return harness.RunTLSTM(rt, w)
}

func main() {
	read1 := run(1, 100)
	read3 := run(3, 100)
	write1 := run(1, 0)
	write3 := run(3, 0)

	fmt.Println(read1.String())
	fmt.Println(read3.String())
	fmt.Println(write1.String())
	fmt.Println(write3.String())

	fmt.Printf("\nread-only split speedup:  %.2fx (paper: near-full with 3 tasks)\n",
		read3.Throughput()/read1.Throughput())
	fmt.Printf("write split speedup:      %.2fx (paper: below 1 — tasks conflict intra-thread)\n",
		write3.Throughput()/write1.Throughput())
	fmt.Printf("write-split task restarts: %d (the conflicts that serialize the tasks)\n",
		write3.TaskRestarts)
}
