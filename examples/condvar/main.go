// Condvar: transactional Retry as a condition variable. A bounded
// queue lives in transactional memory; the consumer calls Retry when
// the queue is empty and the producer calls Retry when it is full.
// Retry unwinds the transaction, subscribes its read-set fingerprint
// to the runtime's wait hub, and parks the thread; the first
// conflicting commit rings the doorbell and the transaction re-runs —
// no polling loop, no lost wakeups (a commit between the unwind and
// the park is caught by the pre-park recheck).
//
// RetryWakes in the final stats counts parks that were woken by a
// conflicting commit: nonzero proves the threads actually slept
// instead of spinning on the predicate.
package main

import (
	"fmt"
	"time"

	"tlstm"
)

const (
	capacity = 4
	items    = 1000
)

func main() {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	defer rt.Close()
	d := rt.Direct()

	// Queue layout: head, tail, then capacity slots. head/tail are
	// free-running; the slot index is their value mod capacity.
	head := d.Alloc(1)
	tail := d.Alloc(1)
	ring := d.Alloc(capacity)

	producer := rt.NewThread()
	consumer := rt.NewThread()

	prodDone := make(chan error, 1)
	go func() {
		// Let the consumer reach the empty queue first: its first
		// transaction then parks on Retry and the first produce commit
		// below is the doorbell that wakes it.
		time.Sleep(100 * time.Millisecond)
		for i := uint64(1); i <= items; i++ {
			v := i
			if err := producer.Atomic(func(t *tlstm.Task) {
				h, tl := t.Load(head), t.Load(tail)
				if tl-h == capacity {
					t.Retry() // queue full: park until a consume commits
				}
				t.Store(ring+tlstm.Addr(tl%capacity), v)
				t.Store(tail, tl+1)
			}); err != nil {
				prodDone <- err
				return
			}
		}
		producer.Sync()
		prodDone <- nil
	}()

	var sum uint64
	consDone := make(chan error, 1)
	go func() {
		for i := 0; i < items; i++ {
			// Task bodies may re-run, so the body only assigns; the
			// accumulation happens after the transaction commits.
			var got uint64
			if err := consumer.Atomic(func(t *tlstm.Task) {
				h, tl := t.Load(head), t.Load(tail)
				if h == tl {
					t.Retry() // queue empty: park until a produce commits
				}
				got = t.Load(ring + tlstm.Addr(h%capacity))
				t.Store(head, h+1)
			}); err != nil {
				consDone <- err
				return
			}
			sum += got
		}
		consumer.Sync()
		consDone <- nil
	}()

	if err := <-prodDone; err != nil {
		panic(err)
	}
	if err := <-consDone; err != nil {
		panic(err)
	}

	want := uint64(items) * (items + 1) / 2
	if sum != want {
		panic(fmt.Sprintf("consumed sum %d, want %d", sum, want))
	}
	ps, cs := producer.Stats(), consumer.Stats()
	fmt.Printf("%d items through a %d-slot transactional queue: sum=%d (correct)\n",
		items, capacity, sum)
	fmt.Printf("producer: committed=%d retryWakes=%d retryRestarts=%d\n",
		ps.TxCommitted, ps.RetryWakes, ps.RestartRetry)
	fmt.Printf("consumer: committed=%d retryWakes=%d retryRestarts=%d\n",
		cs.TxCommitted, cs.RetryWakes, cs.RestartRetry)
	if ps.RetryWakes+cs.RetryWakes == 0 {
		panic("no Retry park was ever woken: the queue never blocked")
	}
	fmt.Println("\nnonzero retryWakes: the blocked side parked on its read set")
	fmt.Println("and was woken by the other side's conflicting commit.")
}
