// Quickstart: one user-thread, user-transactions split into speculative
// tasks. Demonstrates the core TLSTM model from the paper: the
// programmer delimits transactions; the runtime executes their tasks
// out of order and commits them in program order.
package main

import (
	"fmt"

	"tlstm"
)

func main() {
	rt := tlstm.New(tlstm.Config{SpecDepth: 3})
	defer rt.Close() // drain the scheduler worker pools

	// Non-transactional setup: allocate shared words before threads run.
	d := rt.Direct()
	counter := d.Alloc(1)
	history := d.Alloc(8)

	thr := rt.NewThread()

	// One user-transaction, three speculative tasks. The tasks run in
	// parallel speculatively; their effects appear in program order:
	// the second task sees the first task's increment.
	err := thr.Atomic(
		func(t *tlstm.Task) { t.Store(counter, t.Load(counter)+1) },
		func(t *tlstm.Task) { t.Store(counter, t.Load(counter)*10) },
		func(t *tlstm.Task) { t.Store(history, t.Load(counter)) },
	)
	if err != nil {
		panic(err)
	}

	// Pipelined transactions: Submit returns before commit, letting
	// tasks of later transactions speculate while earlier ones are
	// still active ("speculatively execute future transactions", §1).
	var handles []tlstm.TxHandle
	for i := 0; i < 5; i++ {
		h, err := thr.Submit(func(t *tlstm.Task) {
			t.Store(counter, t.Load(counter)+1)
		})
		if err != nil {
			panic(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Wait()
	}
	thr.Sync()

	fmt.Printf("counter = %d (want 15)\n", d.Load(counter))
	fmt.Printf("history = %d (want 10)\n", d.Load(history))
	st := thr.Stats()
	fmt.Printf("transactions committed = %d, task restarts = %d\n",
		st.TxCommitted, st.TaskRestarts)
}
