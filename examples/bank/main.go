// Bank: multiple user-threads transfer money concurrently, each
// transfer decomposed into speculative tasks (withdraw task + deposit
// task). Demonstrates TLSTM's inter-thread transactional guarantees
// under intra-thread speculation: the global balance is preserved
// exactly despite constant conflicts.
package main

import (
	"fmt"
	"sync"

	"tlstm"
)

const (
	accounts = 64
	initial  = 1_000
	threads  = 4
	transfer = 500
)

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func main() {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	defer rt.Close() // drain the scheduler worker pools
	d := rt.Direct()
	base := d.Alloc(accounts)
	for i := 0; i < accounts; i++ {
		d.Store(base+tlstm.Addr(i), initial)
	}

	var wg sync.WaitGroup
	stats := make([]tlstm.Stats, threads)
	for w := 0; w < threads; w++ {
		thr := rt.NewThread()
		scratch := d.Alloc(1) // per-thread word carrying the withdrawn amount
		wg.Add(1)
		go func(w int, scratch tlstm.Addr) {
			defer wg.Done()
			r := &rng{s: uint64(w + 1)}
			for i := 0; i < transfer; i++ {
				from := base + tlstm.Addr(r.next()%accounts)
				to := base + tlstm.Addr(r.next()%accounts)
				amt := r.next() % 20
				// Task 1 withdraws and records the amount; task 2 reads
				// the record speculatively and deposits. TLSTM forwards
				// task 1's uncommitted write to task 2 (paper §3.3,
				// "Reading").
				err := thr.Atomic(
					func(t *tlstm.Task) {
						f := t.Load(from)
						if from != to && f >= amt {
							t.Store(from, f-amt)
							t.Store(scratch, amt)
						} else {
							t.Store(scratch, 0)
						}
					},
					func(t *tlstm.Task) {
						if a := t.Load(scratch); a != 0 {
							t.Store(to, t.Load(to)+a)
						}
					},
				)
				if err != nil {
					panic(err)
				}
			}
			thr.Sync()
			stats[w] = thr.Stats()
		}(w, scratch)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < accounts; i++ {
		total += d.Load(base + tlstm.Addr(i))
	}
	var agg tlstm.Stats
	for _, st := range stats {
		agg.Add(st)
	}
	fmt.Printf("total = %d (want %d)\n", total, accounts*initial)
	fmt.Printf("committed=%d txAborts=%d taskRestarts=%d\n",
		agg.TxCommitted, agg.TxAborted, agg.TaskRestarts)
	if total != accounts*initial {
		panic("balance invariant violated")
	}
}
