// Pipeline: cross-transaction speculation. With SpecDepth larger than
// the transaction size, Submit lets tasks of *future* transactions run
// while earlier transactions are still active ("TLSTM can even be more
// optimistic and speculatively execute future transactions", paper §1).
//
// This example demonstrates the semantics, not a speedup claim: orders
// are admitted into a speculation window and commit strictly in program
// order whatever the window depth; when consecutive orders touch the
// same SKU, the runtime forwards the uncommitted stock level to the
// speculated order (intra-thread forwarding) or rolls it back (WAW),
// and the final state is always the sequential one.
package main

import (
	"fmt"

	"tlstm"
)

const (
	orders = 300
	skus   = 64
)

func run(depth int) (tlstm.Stats, uint64) {
	rt := tlstm.New(tlstm.Config{SpecDepth: depth})
	defer rt.Close()
	d := rt.Direct()

	inventory := d.Alloc(skus)
	sold := d.Alloc(skus)
	for i := 0; i < skus; i++ {
		d.Store(inventory+tlstm.Addr(i), 50)
	}

	thr := rt.NewThread()
	var handles []tlstm.TxHandle
	for i := 0; i < orders; i++ {
		sku := tlstm.Addr(uint64(i*2654435761>>8) % skus)
		qty := uint64(i%3 + 1)
		h, err := thr.Submit(func(t *tlstm.Task) {
			stock := t.Load(inventory + sku)
			if stock >= qty {
				t.Store(inventory+sku, stock-qty)
				t.Store(sold+sku, t.Load(sold+sku)+qty)
			}
		})
		if err != nil {
			panic(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		h.Wait()
	}
	thr.Sync()

	var totalSold uint64
	for i := 0; i < skus; i++ {
		totalSold += d.Load(sold + tlstm.Addr(i))
	}
	return thr.Stats(), totalSold
}

func main() {
	fmt.Printf("%d orders, one transaction each, speculation windows of 1/4/8:\n\n", orders)
	var ref uint64
	for _, depth := range []int{1, 4, 8} {
		st, sold := run(depth)
		if depth == 1 {
			ref = sold
		}
		fmt.Printf("depth=%d: sold=%-5d committed=%d txAborts=%d taskRestarts=%d\n",
			depth, sold, st.TxCommitted, st.TxAborted, st.TaskRestarts)
		if sold != ref {
			panic("speculation changed the committed result")
		}
	}
	fmt.Println("\nevery window depth commits the identical sequential result;")
	fmt.Println("restarts show where speculation crossed an order on the same SKU.")
}
