// Vacation: the paper's modified STAMP workload (§4, Figure 1b) as an
// application example. Several clients (user-threads) issue
// travel-reservation transactions of eight operations each; TLSTM
// splits every transaction into two speculative tasks of four
// operations. The example compares TLSTM against the SwissTM baseline
// on identical work and verifies the manager's accounting afterwards.
package main

import (
	"fmt"

	"tlstm"
	"tlstm/internal/harness"
	"tlstm/internal/stm"
	"tlstm/internal/tm"
	"tlstm/internal/vacation"
)

const (
	clients     = 4
	txPerClient = 50
	opsPerTx    = 8
)

func workload(m *vacation.Manager, p vacation.Params, tasks int) harness.Workload {
	return harness.Workload{
		Name:        fmt.Sprintf("vacation-%d-tasks", tasks),
		Threads:     clients,
		TxPerThread: txPerClient,
		OpsPerTx:    opsPerTx,
		Make: func(thread, idx int) harness.TxSeq {
			r := vacation.NewRng(uint64(thread*1_000_003 + idx))
			ops := make([]vacation.Op, opsPerTx)
			for i := range ops {
				ops[i] = p.Generate(r)
			}
			var seq harness.TxSeq
			per := opsPerTx / tasks
			for t := 0; t < tasks; t++ {
				part := ops[t*per : (t+1)*per]
				seq = append(seq, func(tx tm.Tx) {
					for _, op := range part {
						m.Execute(tx, op)
					}
				})
			}
			return seq
		},
	}
}

func main() {
	p := vacation.LowContention()
	p.Relations = 1 << 10

	// SwissTM baseline: the eight operations run as one flat transaction.
	base := stm.New()
	mBase := vacation.NewManager(base.Direct(), 256)
	vacation.Populate(base.Direct(), mBase, p)
	rBase := harness.RunSTM(base, workload(mBase, p, 1))

	// TLSTM: the same transactions split into two speculative tasks.
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	defer rt.Close() // drain the scheduler worker pools
	m := vacation.NewManager(rt.Direct(), 256)
	vacation.Populate(rt.Direct(), m, p)
	r2 := harness.RunTLSTM(rt, workload(m, p, 2))

	fmt.Println(rBase.String())
	fmt.Println(r2.String())
	fmt.Printf("TLSTM-2 vs SwissTM throughput ratio: %.2fx (paper: TLSTM-2 improves on the base STM)\n",
		r2.Throughput()/rBase.Throughput())

	if msg := m.CheckInvariants(rt.Direct()); msg != "" {
		panic("TLSTM manager inconsistent: " + msg)
	}
	if msg := mBase.CheckInvariants(base.Direct()); msg != "" {
		panic("baseline manager inconsistent: " + msg)
	}
	fmt.Println("manager accounting verified on both runtimes")
}
