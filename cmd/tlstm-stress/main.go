// Command tlstm-stress hammers the TLSTM runtime with adversarial
// concurrent workloads and checks its two fundamental guarantees:
//
//   - TLS sequential semantics: each user-thread's random program,
//     decomposed into random speculative tasks, leaves memory exactly
//     as its sequential execution would;
//   - transactional atomicity across threads: concurrent random
//     transfers over a shared account array preserve the global total.
//
// It is meant for long soak runs: tlstm-stress -seconds 60 -threads 4.
// The soak runs under any commit-clock strategy (-clock deferred) and
// any contention-management policy (-cm karma); -clocks swaps the soak
// for the invariant-checked clock-strategy sweep across all four
// runtimes (harness.CompareClocks), and -cms for the policy sweep
// (harness.CompareCM). -mode adaptive arms the execution-mode ladder
// (speculative until sustained conflict, then a serialized global-lock
// rung, recovering once the storm passes); -modes swaps the soak for
// the invariant-checked mode sweep (harness.CompareModes). Entry reclamation can be forced aggressive
// (-reclaim 1: single-slot quiescence rings, recycling on almost every
// commit) and audited (-audit: every recycle re-verifies the
// quiescence invariant and panics on violation). -mv K retains K
// committed versions per word and -romix P makes P% of the soak's
// transactions declared read-only full-array scans, each asserting the
// exact preserved total at its snapshot — the strongest cheap check of
// the wait-free multi-version read path; -mvs swaps the soak for the
// invariant-checked depth sweep across all four runtimes
// (harness.CompareMV). The soak's lock table can be sharded (-shards 4)
// with optional conflict-sketch thread placement (-affinity); -shardss
// swaps the soak for the invariant-checked shard-count sweep across all
// four runtimes (harness.CompareShards).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/core"
	"tlstm/internal/harness"
	"tlstm/internal/mode"
	"tlstm/internal/sched"
	"tlstm/internal/tm"
	"tlstm/internal/txcheck"
	"tlstm/internal/txmetrics"
	"tlstm/internal/txstats"
	"tlstm/internal/txtrace"
	"tlstm/internal/xrand"
)

func main() {
	os.Exit(run())
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 { return xrand.Splitmix(&r.s) }

func run() int {
	seconds := flag.Int("seconds", 10, "soak duration")
	threads := flag.Int("threads", 3, "user-threads")
	depth := flag.Int("depth", 3, "SPECDEPTH / tasks per transaction")
	accounts := flag.Int("accounts", 64, "shared accounts")
	schedMode := flag.String("sched", "pooled", `scheduling policy: "pooled" or "inline" (inline requires -depth 1)`)
	clockName := flag.String("clock", "gv4", `commit-clock strategy: "gv4", "deferred", "sharded" or "gv7"`)
	clockCmp := flag.Bool("clocks", false, "run the invariant-checked clock-strategy sweep (all strategies × all runtimes) instead of the soak; -seconds scales the transaction count")
	cmName := flag.String("cm", "default", `contention-management policy: "suicide", "backoff", "greedy", "karma", "taskaware" or "default" (task-aware)`)
	cmCmp := flag.Bool("cms", false, "run the invariant-checked contention-policy sweep (all policies × all runtimes) instead of the soak; -seconds scales the transaction count")
	modeName := flag.String("mode", "spec", `execution-mode policy: "spec" (always speculative), "adaptive" (ladder with serialized fallback under sustained conflict) or "serial"`)
	modeCmp := flag.Bool("modes", false, "run the invariant-checked execution-mode sweep (all policies × all runtimes, karma conflict storm) instead of the soak; -seconds scales the transaction count")
	reclaimRing := flag.Int("reclaim", 0, "cap each descriptor's quiescence ring of retired write-lock entries (0 = unbounded; 1 = aggressive, recycling exercised on almost every commit)")
	reclaimAudit := flag.Bool("audit", false, "enable the entry-reclamation invariant checker: every recycle re-verifies the quiescence horizon against all live task attempts (panics on violation)")
	mvDepth := flag.Int("mv", 0, "retained version depth for the soak runtime (0 disables multi-versioning)")
	mvCmp := flag.Bool("mvs", false, "run the invariant-checked multi-version depth sweep (K=0..3 × all runtimes, read-mostly mixes) instead of the soak; -seconds scales the transaction count")
	roMix := flag.Int("romix", 0, "percent of soak transactions that are declared read-only scans: each task sums every account at the transaction's snapshot and requires the exact preserved total")
	shards := flag.Int("shards", 0, "lock-table shard count for the soak runtime (a power of two; 0 or 1 keeps the flat table)")
	affinity := flag.Bool("affinity", false, "replace static round-robin thread placement with the conflict-sketch affinity policy (only meaningful with -shards > 1)")
	shardCmp := flag.Bool("shardss", false, "run the invariant-checked lock-table shard-count sweep (N=1,2,4,8 plus affinity legs × all runtimes, hot-word and 90/10 mixes) instead of the soak; -seconds scales the transaction count")
	traceFile := flag.String("trace", "", "arm the flight recorder and write the binary trace dump (TXTRACE2) to this file when the soak ends; inspect with tlstm-trace")
	check := flag.Bool("check", false, "arm the flight recorder (even without -trace) and run the offline opacity checker (internal/txcheck) on the recorded trace at soak exit; fails the run on any violation")
	metricsAddr := flag.String("metrics", "", "serve live metrics over HTTP on this address (/debug/vars, /debug/pprof) and print one-line stat deltas every 2s; threads sync their stats shards periodically so the feed is live")
	flag.Parse()

	// Fail fast on malformed flags: every one of these used to be
	// swallowed (clamped, ignored, or deferred to a panic mid-soak), so a
	// typo cost a full soak run before anyone noticed.
	if *roMix < 0 || *roMix > 100 {
		fmt.Fprintf(os.Stderr, "tlstm-stress: -romix %d: must be a percentage in 0..100\n", *roMix)
		return 2
	}
	if *mvDepth < 0 {
		fmt.Fprintf(os.Stderr, "tlstm-stress: -mv %d: retained version depth cannot be negative\n", *mvDepth)
		return 2
	}
	if *reclaimRing < 0 {
		fmt.Fprintf(os.Stderr, "tlstm-stress: -reclaim %d: ring cap cannot be negative\n", *reclaimRing)
		return 2
	}
	if *shards < 0 || (*shards > 1 && *shards&(*shards-1) != 0) {
		fmt.Fprintf(os.Stderr, "tlstm-stress: -shards %d: shard count must be a power of two\n", *shards)
		return 2
	}
	if *affinity && *shards <= 1 {
		fmt.Fprintf(os.Stderr, "tlstm-stress: -affinity requires -shards > 1 (a flat lock table has nowhere to place threads)\n")
		return 2
	}

	if *shardCmp {
		txs := 2_000 * *seconds
		fmt.Printf("## Lock-table shard sweep (%d threads, %d tx/thread)\n", *threads, txs)
		for _, r := range harness.CompareShards(*threads, txs) {
			fmt.Println(r)
		}
		fmt.Println("OK: all geometry/runtime end states verified")
		return 0
	}

	if *mvCmp {
		txs := 5_000 * *seconds
		fmt.Printf("## Multi-version depth sweep (%d threads, %d tx/thread)\n", *threads, txs)
		for _, r := range harness.CompareMV(*threads, txs) {
			fmt.Println(r)
		}
		fmt.Println("OK: all depth/runtime snapshots and end states verified")
		return 0
	}

	if *clockCmp {
		// ~10k transactions per thread per requested second: a short,
		// deterministic stand-in for the soak that still runs every
		// strategy on every runtime with end-state invariant checks.
		txs := 10_000 * *seconds
		fmt.Printf("## Commit-clock strategy sweep (%d threads, %d tx/thread)\n", *threads, txs)
		for _, r := range harness.CompareClocks(*threads, txs) {
			fmt.Println(r)
		}
		fmt.Println("OK: all strategy/runtime end states verified")
		return 0
	}
	if *cmCmp {
		txs := 5_000 * *seconds
		fmt.Printf("## Contention-management policy sweep (%d threads, %d tx/thread)\n", *threads, txs)
		for _, r := range harness.CompareCM(*threads, txs) {
			fmt.Println(r)
		}
		fmt.Println("OK: all policy/runtime end states verified")
		return 0
	}
	if *modeCmp {
		txs := 5_000 * *seconds
		fmt.Printf("## Execution-mode policy sweep (%d threads, %d tx/thread)\n", *threads, txs)
		for _, r := range harness.CompareModes(*threads, txs) {
			fmt.Println(r)
		}
		fmt.Println("OK: all mode/runtime end states verified")
		return 0
	}

	policy := sched.Pooled
	if *schedMode == "inline" {
		policy = sched.Inline
	}
	kind, err := clock.Parse(*clockName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-stress: %v\n", err)
		return 2
	}
	cmKind, err := cm.Parse(*cmName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-stress: %v\n", err)
		return 2
	}
	modePol, err := mode.Parse(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-stress: %v\n", err)
		return 2
	}
	var rec *txtrace.Recorder
	var traceOut *os.File
	if *traceFile != "" || *check {
		rec = txtrace.NewRecorder(0)
	}
	if *traceFile != "" {
		// Create the dump file before the soak: an unwritable -trace path
		// fails here in a millisecond instead of after the whole run.
		traceOut, err = os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: -trace: %v\n", err)
			return 2
		}
	}
	rt := core.New(core.Config{
		SpecDepth: *depth, Policy: policy, Clock: clock.New(kind), CM: cm.New(cmKind),
		ReclaimRing: *reclaimRing, ReclaimAudit: *reclaimAudit, MVDepth: *mvDepth,
		Shards: *shards, Affinity: *affinity,
		Mode:  mode.Config{Policy: modePol},
		Trace: rec,
	})
	defer rt.Close()

	// checkReport holds the opacity checker's verdicts once -check has
	// run at soak exit; the txcheck metrics source below reads it, so
	// the counters appear on /debug/vars scrapes taken after the check.
	var checkReport atomic.Pointer[txcheck.Report]

	// syncEvery > 0 makes each soak thread merge its stats shard into
	// the runtime aggregate every N transactions, so the live metrics
	// feed moves during the run instead of only at the end. A Sync after
	// a completed Atomic is nearly free (the thread is quiescent).
	syncEvery := 0
	stopMetrics := make(chan struct{})
	if *metricsAddr != "" {
		syncEvery = 512
		pub := txmetrics.New()
		pub.AddSource("tlstm", func() txmetrics.Snapshot {
			st := rt.Stats()
			return txmetrics.Snapshot{
				Counters: map[string]uint64{
					"committed": st.TxCommitted, "txAborts": st.TxAborted,
					"taskRestarts": st.TaskRestarts, "work": st.Work,
					"extensions": st.SnapshotExtensions, "clockRetries": st.ClockCASRetries,
					"cmAbortsSelf": st.CMAbortsSelf, "cmAbortsOwner": st.CMAbortsOwner,
					"backoffSpins": st.BackoffSpins, "entryReclaims": st.EntryReclaims,
					"horizonStalls": st.HorizonStalls, "mvReads": st.MVReads, "mvMisses": st.MVMisses,
					"crossShardConflicts": st.CrossShardConflicts, "remaps": st.Remaps,
					"modeFallbacks": st.ModeFallbacks, "modeRecoveries": st.ModeRecoveries,
					"retryWakes": st.RetryWakes,
				},
				Hists: map[string]txstats.Hist{
					"commitLat": st.CommitLatency, "restartLat": st.RestartLatency,
					"attempts": st.Attempts,
				},
			}
		})
		if rec != nil {
			pub.SetTrace(rec)
		}
		if *check {
			pub.AddSource("txcheck", func() txmetrics.Snapshot {
				rep := checkReport.Load()
				if rep == nil {
					return txmetrics.Snapshot{}
				}
				return txmetrics.Snapshot{Counters: rep.Counters()}
			})
			pub.Publish("txcheck")
		}
		pub.Publish("tlstm")
		bound, err := txmetrics.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: -metrics: %v\n", err)
			return 2
		}
		fmt.Printf("metrics: serving http://%s/debug/vars (pprof at /debug/pprof)\n", bound)
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stopMetrics:
					return
				case <-tick.C:
					if line := pub.DeltaLine(); line != "" {
						fmt.Printf("metrics: %s\n", line)
					}
				}
			}
		}()
	}
	d := rt.Direct()
	const initial = 1_000_000
	base := d.Alloc(*accounts)
	for i := 0; i < *accounts; i++ {
		d.Store(base+tm.Addr(i), initial)
	}

	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	done := make(chan core.Stats, *threads)

	for w := 0; w < *threads; w++ {
		thr := rt.NewThread()
		go func(seed uint64) {
			r := &rng{s: seed}
			nAcct := *accounts
			want := uint64(nAcct) * initial
			// scan is one read-only task: sum every account at the
			// transaction's snapshot. Transfers preserve the total, so
			// ANY consistent snapshot — wait-free multi-version or
			// validated — must see it exactly; a stale, torn or too-new
			// multi-version read almost surely breaks the sum. The panic
			// is safe under speculation: an inconsistent validated
			// attempt is sandbox-restarted, and the wait-free path reads
			// one frozen snapshot, so its sums can only fail for real
			// bugs.
			scan := func(tk *core.Task) {
				var sum uint64
				for i := 0; i < nAcct; i++ {
					sum += tk.Load(base + tm.Addr(i))
				}
				if sum != want {
					panic(fmt.Sprintf("tlstm-stress: read-only scan saw total=%d want=%d", sum, want))
				}
			}
			txSinceSync := 0
			for time.Now().Before(deadline) {
				if syncEvery > 0 {
					if txSinceSync++; txSinceSync >= syncEvery {
						thr.Sync() // publish this shard to the live metrics feed
						txSinceSync = 0
					}
				}
				if *roMix > 0 && r.next()%100 < uint64(*roMix) {
					// Every task of the declared read-only transaction
					// scans independently; with SPECDEPTH > 1 this also
					// exercises the shared frozen snapshot across tasks.
					fns := make([]core.TaskFunc, *depth)
					for i := range fns {
						fns[i] = scan
					}
					if err := thr.AtomicRO(fns...); err != nil {
						panic(err)
					}
					continue
				}
				// A transaction of `depth` tasks moving money along a
				// random cycle: task i moves amt from a_i to a_{i+1}.
				n := *depth
				idx := make([]tm.Addr, n+1)
				for i := range idx {
					idx[i] = base + tm.Addr(r.next()%uint64(*accounts))
				}
				amt := r.next() % 100
				fns := make([]core.TaskFunc, n)
				for i := 0; i < n; i++ {
					from, to := idx[i], idx[i+1]
					fns[i] = func(tk *core.Task) {
						f := tk.Load(from)
						if from != to && f >= amt {
							tk.Store(from, f-amt)
							tk.Store(to, tk.Load(to)+amt)
						}
					}
				}
				if err := thr.Atomic(fns...); err != nil {
					panic(err)
				}
			}
			thr.Sync()
			done <- thr.Stats()
		}(uint64(w + 1))
	}

	var total core.Stats
	for w := 0; w < *threads; w++ {
		total.Add(<-done)
	}
	close(stopMetrics)

	if traceOut != nil {
		// Every thread has Synced and its completion was received above,
		// so every ring owner is quiesced: the dump is race-free. The
		// file itself was created before the soak started.
		if err := rec.Dump(traceOut); err != nil {
			traceOut.Close()
			fmt.Fprintf(os.Stderr, "tlstm-stress: writing trace: %v\n", err)
			return 1
		}
		if err := traceOut.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: writing trace: %v\n", err)
			return 1
		}
		fmt.Printf("trace: %d rings, %d events, %d dropped -> %s\n",
			len(rec.Rings()), rec.Events(), rec.Drops(), *traceFile)
	}

	if *check {
		// Same quiesce argument as the file dump above: every ring owner
		// has joined, so serializing to memory and checking is race-free.
		checkStart := time.Now()
		var buf bytes.Buffer
		if err := rec.Dump(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: -check: dumping trace: %v\n", err)
			return 1
		}
		tr, err := txtrace.ReadTrace(&buf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: -check: reading trace back: %v\n", err)
			return 1
		}
		if err := tr.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: -check: invalid trace: %v\n", err)
			return 1
		}
		rep, err := txcheck.Check(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlstm-stress: -check: %v\n", err)
			return 1
		}
		checkReport.Store(rep)
		rep.WriteTable(os.Stdout, time.Since(checkStart))
		if !rep.Ok() {
			fmt.Println("FAIL: opacity violated (see violations above)")
			return 1
		}
	}

	var sum uint64
	for i := 0; i < *accounts; i++ {
		sum += d.Load(base + tm.Addr(i))
	}
	want := uint64(*accounts) * initial
	fmt.Printf("committed=%d txAborts=%d taskRestarts=%d work=%d workers=%d descReuse=%d clock=%s ext=%d clkRetry=%d cm=%s cmSelf=%d cmOwner=%d spins=%d mode=%s fallback=%d recover=%d retryWake=%d reclaim=%d stall=%d mv=%d mvRead=%d mvMiss=%d shards=%d place=%s xshard=%d remap=%d rset[%s] wset[%s] commitLat[%s] attempts[%s] restartLat[%s]\n",
		total.TxCommitted, total.TxAborted, total.TaskRestarts, total.Work,
		total.WorkersSpawned, total.DescriptorReuses,
		rt.ClockName(), total.SnapshotExtensions, total.ClockCASRetries,
		rt.CMName(), total.CMAbortsSelf, total.CMAbortsOwner, total.BackoffSpins,
		rt.ModeName(), total.ModeFallbacks, total.ModeRecoveries, total.RetryWakes,
		total.EntryReclaims, total.HorizonStalls,
		rt.MVDepth(), total.MVReads, total.MVMisses,
		rt.Shards(), rt.PlacementName(), total.CrossShardConflicts, total.Remaps,
		total.ReadSetSizes, total.WriteSetSizes,
		total.CommitLatency, total.Attempts, total.RestartLatency)
	if sum != want {
		fmt.Printf("FAIL: total=%d want=%d (atomicity violated)\n", sum, want)
		return 1
	}
	fmt.Println("OK: total preserved")
	return 0
}
