// Command tlstm-bench regenerates the paper's evaluation figures
// (Middleware'12, Figures 1a, 1b, 2a, 2b) and the headline comparison
// numbers, printing each as an aligned text table.
//
// Usage:
//
//	tlstm-bench                 # all figures at default scale
//	tlstm-bench -fig 2a         # one figure
//	tlstm-bench -quick          # reduced transaction counts
//	tlstm-bench -headline       # §4 headline numbers (from Fig2b data)
//	tlstm-bench -clock deferred # figures under the GV5-style clock
//	tlstm-bench -clocks         # clock-strategy sweep across runtimes
//	tlstm-bench -cm karma       # figures under the Karma contention manager
//	tlstm-bench -cms            # contention-policy sweep across runtimes
//	tlstm-bench -mode adaptive  # figures under the adaptive execution-mode ladder
//	tlstm-bench -modes          # execution-mode sweep (karma conflict storm)
//	tlstm-bench -mv 2           # figures with 2 retained versions per word
//	tlstm-bench -mvs            # multi-version depth sweep (read-mostly mixes)
//	tlstm-bench -mvs -json out.json  # ... also persisted as JSON
//	tlstm-bench -shards 4       # figures with a 4-shard lock table
//	tlstm-bench -shards 4 -affinity  # ... plus conflict-sketch thread placement
//	tlstm-bench -shardss        # shard-count sweep (hot-word and 90/10 mixes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tlstm/internal/clock"
	"tlstm/internal/cm"
	"tlstm/internal/harness"
	"tlstm/internal/mode"
	"tlstm/internal/txtrace"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", `figure to regenerate: "1a", "1b", "2a", "2b" or "all"`)
	quick := flag.Bool("quick", false, "use reduced transaction counts")
	headline := flag.Bool("headline", false, "print the paper's §4 headline ratios (computed from Figure 2b)")
	check := flag.Bool("check", false, "regenerate all figures and verify the paper's qualitative claims; exit non-zero on violation")
	schedCmp := flag.Bool("sched", false, "compare the pooled and inline scheduling policies on a depth-1 workload (wall time is the interesting column; virtual time is policy-independent)")
	clockName := flag.String("clock", "gv4", `commit-clock strategy for figure/headline runs: "gv4", "deferred", "sharded" or "gv7"`)
	clockCmp := flag.Bool("clocks", false, "sweep all commit-clock strategies across all four runtimes on a write-heavy workload (throughput, abort rate, snapshot extensions and clock CAS retries per strategy)")
	cmName := flag.String("cm", "default", `contention-management policy for figure/headline runs: "suicide", "backoff", "greedy", "karma", "taskaware" or "default" (each runtime's own)`)
	cmCmp := flag.Bool("cms", false, "sweep all contention-management policies across all four runtimes on a write-contended workload (throughput, abort rate and policy decision counters per policy)")
	modeName := flag.String("mode", "spec", `execution-mode policy for figure/headline runs: "spec" (always speculative), "adaptive" (ladder with serialized fallback) or "serial"`)
	modeCmp := flag.Bool("modes", false, "sweep all execution-mode policies across all four runtimes on the karma conflict storm (throughput, abort rate and ladder fallback/recovery counters per policy)")
	mvDepth := flag.Int("mv", 0, "retained version depth for figure/headline runs (0 disables multi-versioning)")
	mvCmp := flag.Bool("mvs", false, "sweep retained version depths K=0..3 across all four runtimes on read-mostly workloads at 90/10 and 99/1 mixes (throughput, aborts, wait-free reads and fallback misses per depth)")
	shards := flag.Int("shards", 0, "lock-table shard count for figure/headline runs (a power of two; 0 or 1 keeps the flat table)")
	affinity := flag.Bool("affinity", false, "replace static round-robin thread placement with the conflict-sketch affinity policy (only meaningful with -shards > 1)")
	shardCmp := flag.Bool("shardss", false, "sweep lock-table shard counts N=1,2,4,8 (plus an affinity leg at each N>1) across all four runtimes on hot-word and 90/10 mixes (throughput, aborts, cross-shard conflicts and remaps per geometry)")
	jsonPath := flag.String("json", "", "with -mvs or -shardss: also write the sweep results as JSON to this file")
	format := flag.String("format", "table", `output format: "table" or "csv"`)
	traceFile := flag.String("trace", "", "arm the flight recorder in every runtime the figures build and write the binary trace dump (TXTRACE1) here on exit; inspect with tlstm-trace")
	flag.Parse()

	// Fail fast on malformed flags instead of clamping or misbehaving
	// several minutes into a figure run.
	if *mvDepth < 0 {
		fmt.Fprintf(os.Stderr, "tlstm-bench: -mv %d: retained version depth cannot be negative\n", *mvDepth)
		return 2
	}
	if *shards < 0 || (*shards > 1 && *shards&(*shards-1) != 0) {
		fmt.Fprintf(os.Stderr, "tlstm-bench: -shards %d: shard count must be a power of two\n", *shards)
		return 2
	}
	if *affinity && *shards <= 1 {
		fmt.Fprintf(os.Stderr, "tlstm-bench: -affinity requires -shards > 1 (a flat lock table has nowhere to place threads)\n")
		return 2
	}

	sc := harness.DefaultScale()
	if *quick {
		sc = harness.QuickScale()
	}
	if *traceFile != "" {
		sc.Trace = txtrace.NewRecorder(0)
		defer func() {
			// Figure runs join every worker/thread before returning, so
			// all ring owners are quiesced by the time we get here.
			f, err := os.Create(*traceFile)
			if err == nil {
				err = sc.Trace.Dump(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "tlstm-bench: -trace: %v\n", err)
				return
			}
			fmt.Printf("trace: %d rings, %d events, %d dropped -> %s\n",
				len(sc.Trace.Rings()), sc.Trace.Events(), sc.Trace.Drops(), *traceFile)
		}()
	}
	kind, err := clock.Parse(*clockName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-bench: %v\n", err)
		return 2
	}
	sc.Clock = kind
	cmKind, err := cm.Parse(*cmName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-bench: %v\n", err)
		return 2
	}
	sc.CM = cmKind
	modePol, err := mode.Parse(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-bench: %v\n", err)
		return 2
	}
	sc.Mode = mode.Config{Policy: modePol}
	sc.MV = *mvDepth
	sc.Shards = *shards
	sc.Affinity = *affinity

	if *shardCmp {
		threads, txs := 4, 5_000
		if *quick {
			txs = 500
		}
		fmt.Printf("## Lock-table shard sweep (hot-word and 90/10 mixes, %d threads, %d tx/thread)\n", threads, txs)
		results := harness.CompareShards(threads, txs)
		for _, r := range results {
			fmt.Println(r)
		}
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, "shards", threads, txs, results); err != nil {
				fmt.Fprintf(os.Stderr, "tlstm-bench: %v\n", err)
				return 1
			}
		}
		return 0
	}
	if *mvCmp {
		threads, txs := 4, 10_000
		if *quick {
			txs = 1_000
		}
		fmt.Printf("## Multi-version depth sweep (read-mostly, %d threads, %d tx/thread)\n", threads, txs)
		results := harness.CompareMV(threads, txs)
		for _, r := range results {
			fmt.Println(r)
		}
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, "mv", threads, txs, results); err != nil {
				fmt.Fprintf(os.Stderr, "tlstm-bench: %v\n", err)
				return 1
			}
		}
		return 0
	}
	if *clockCmp {
		txs := 50_000
		if *quick {
			txs = 5_000
		}
		fmt.Println("## Commit-clock strategy comparison (write-heavy, 4 threads, all runtimes)")
		for _, r := range harness.CompareClocks(4, txs) {
			fmt.Println(r)
		}
		return 0
	}
	if *cmCmp {
		txs := 20_000
		if *quick {
			txs = 2_000
		}
		fmt.Println("## Contention-management policy comparison (write-contended, 4 threads, all runtimes)")
		for _, r := range harness.CompareCM(4, txs) {
			fmt.Println(r)
		}
		return 0
	}
	if *modeCmp {
		txs := 20_000
		if *quick {
			txs = 2_000
		}
		fmt.Println("## Execution-mode policy comparison (karma conflict storm, 4 threads, all runtimes)")
		for _, r := range harness.CompareModes(4, txs) {
			fmt.Println(r)
		}
		return 0
	}
	if *headline {
		printHeadline(sc)
		return 0
	}
	if *schedCmp {
		txs := 200_000
		if *quick {
			txs = 20_000
		}
		fmt.Println("## Scheduling-policy comparison (SpecDepth 1, per-thread counters)")
		for _, r := range harness.CompareSched(2, txs) {
			fmt.Println(r)
		}
		return 0
	}
	if *check {
		return runCheck(sc)
	}

	type job struct {
		name string
		run  func(harness.Scale) harness.Figure
	}
	jobs := []job{
		{"1a", harness.Fig1a},
		{"1b", harness.Fig1b},
		{"2a", harness.Fig2a},
		{"2b", harness.Fig2b},
	}
	ran := 0
	for _, j := range jobs {
		if *fig != "all" && *fig != j.name {
			continue
		}
		f := j.run(sc)
		if *format == "csv" {
			fmt.Println(f.CSV())
		} else {
			fmt.Println(f.Format())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "tlstm-bench: unknown figure %q\n", *fig)
		return 2
	}
	return 0
}

// writeJSON persists a sweep as an indented JSON document (the
// perf-trajectory format committed as BENCH_<pr>.json).
func writeJSON(path, sweep string, threads, txPerThread int, results []harness.Result) error {
	doc := struct {
		Sweep       string           `json:"sweep"`
		Threads     int              `json:"threads"`
		TxPerThread int              `json:"txPerThread"`
		Results     []harness.Result `json:"results"`
	}{sweep, threads, txPerThread, results}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runCheck regenerates every figure and verifies the paper's
// qualitative claims (harness.CheckFig*).
func runCheck(sc harness.Scale) int {
	type job struct {
		name  string
		run   func(harness.Scale) harness.Figure
		check func(harness.Figure) []string
	}
	jobs := []job{
		{"1a", harness.Fig1a, harness.CheckFig1a},
		{"1b", harness.Fig1b, harness.CheckFig1b},
		{"2a", harness.Fig2a, harness.CheckFig2a},
		{"2b", harness.Fig2b, harness.CheckFig2b},
	}
	violations := 0
	for _, j := range jobs {
		f := j.run(sc)
		bad := j.check(f)
		if len(bad) == 0 {
			fmt.Printf("figure %s: all shape claims hold\n", j.name)
			continue
		}
		violations += len(bad)
		for _, msg := range bad {
			fmt.Printf("figure %s: VIOLATION: %s\n", j.name, msg)
		}
	}
	if violations > 0 {
		fmt.Printf("%d violations\n", violations)
		return 1
	}
	fmt.Println("all figures reproduce the paper's shapes")
	return 0
}

// printHeadline derives the §4 claims from the Figure 2b series:
// TLSTM-1-3 vs SwissTM-1 (paper: ≈ +80%) and TLSTM-2-3 vs SwissTM-2
// (paper: ≈ +48%) on the read-dominated workload, plus the
// write-dominated inversion.
func printHeadline(sc harness.Scale) {
	f := harness.Fig2b(sc)
	get := func(name string, wi int) float64 {
		for _, s := range f.Series {
			if s.Name == name {
				return s.Y[wi]
			}
		}
		return 0
	}
	const readIdx, writeIdx = 2, 0 // Fig2bWorkloads order: write, read-write, read
	ratio := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return (a/b - 1) * 100
	}
	fmt.Println("## §4 headline numbers (paper → measured)")
	fmt.Printf("read-dominated, 1 thread:  TLSTM-1-3 vs SwissTM-1: paper ≈ +80%%, measured %+.1f%%\n",
		ratio(get("TLSTM-1-3", readIdx), get("SwissTM-1", readIdx)))
	fmt.Printf("read-dominated, 2 threads: TLSTM-2-3 vs SwissTM-2: paper ≈ +48%%, measured %+.1f%%\n",
		ratio(get("TLSTM-2-3", readIdx), get("SwissTM-2", readIdx)))
	fmt.Printf("write-dominated, 1 thread: TLSTM-1-3 vs SwissTM-1: paper: negative, measured %+.1f%%\n",
		ratio(get("TLSTM-1-3", writeIdx), get("SwissTM-1", writeIdx)))
	fmt.Printf("9 tasks, 1 thread read:    TLSTM-1-9 vs TLSTM-1-3: paper: positive, measured %+.1f%%\n",
		ratio(get("TLSTM-1-9", readIdx), get("TLSTM-1-3", readIdx)))
	fmt.Printf("9 tasks, 2 threads read:   TLSTM-2-9 vs TLSTM-2-3: paper: negative, measured %+.1f%%\n",
		ratio(get("TLSTM-2-9", readIdx), get("TLSTM-2-3", readIdx)))
}
